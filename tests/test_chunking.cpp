#include "nd/chunking.hpp"

#include <gtest/gtest.h>

#include <map>

#include "nd/raster.hpp"

namespace h4d {
namespace {

TEST(ChunkOverlap, IsRoiMinusOne) {
  EXPECT_EQ(chunk_overlap({7, 7, 3, 3}), Vec4(6, 6, 2, 2));
  EXPECT_EQ(chunk_overlap({1, 1, 1, 1}), Vec4(0, 0, 0, 0));
}

TEST(RoiOrigins, CountsAndRegion) {
  const Vec4 dims{10, 10, 4, 4};
  const Vec4 roi{3, 3, 2, 2};
  const Region4 r = roi_origin_region(dims, roi);
  EXPECT_EQ(r.origin, Vec4(0, 0, 0, 0));
  EXPECT_EQ(r.size, Vec4(8, 8, 3, 3));
  EXPECT_EQ(num_roi_origins(dims, roi), 8 * 8 * 3 * 3);
}

TEST(RoiOrigins, RoiEqualToVolumeHasOneOrigin) {
  EXPECT_EQ(num_roi_origins({5, 5, 5, 5}, {5, 5, 5, 5}), 1);
}

TEST(PartitionOverlapping, SingleChunkWhenChunkCoversVolume) {
  const auto chunks = partition_overlapping({8, 8, 4, 4}, {8, 8, 4, 4}, {3, 3, 2, 2});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].region, Region4::whole({8, 8, 4, 4}));
  EXPECT_EQ(chunks[0].owned_origins, roi_origin_region({8, 8, 4, 4}, {3, 3, 2, 2}));
}

TEST(PartitionOverlapping, Rejections) {
  EXPECT_THROW(partition_overlapping({4, 4, 4, 4}, {4, 4, 4, 4}, {5, 4, 4, 4}),
               std::invalid_argument);  // roi > dims
  EXPECT_THROW(partition_overlapping({8, 8, 8, 8}, {2, 8, 8, 8}, {3, 3, 3, 3}),
               std::invalid_argument);  // chunk < roi
  EXPECT_THROW(partition_overlapping({8, 8, 8, 0}, {4, 4, 4, 4}, {2, 2, 2, 2}),
               std::invalid_argument);  // bad dims
}

// Property: owned origin ranges tile the full ROI origin space exactly once,
// and every owned ROI fits inside its chunk's region.
void check_partition(const Vec4& dims, const Vec4& chunk_dims, const Vec4& roi) {
  const auto chunks = partition_overlapping(dims, chunk_dims, roi);
  std::map<Vec4, int, Vec4Less> seen;
  for (const Chunk& c : chunks) {
    EXPECT_TRUE(Region4::whole(dims).contains(c.region)) << c.region.str();
    for (const Vec4& o : raster(c.owned_origins)) {
      seen[o]++;
      EXPECT_TRUE(c.region.contains(Region4{o, roi}))
          << "chunk " << c.region.str() << " origin " << o.str();
    }
  }
  const Region4 all = roi_origin_region(dims, roi);
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), all.volume());
  for (const auto& [o, n] : seen) {
    EXPECT_EQ(n, 1) << "origin " << o.str() << " owned by " << n << " chunks";
    EXPECT_TRUE(all.contains(o));
  }
}

TEST(PartitionOverlapping, TilesOriginsExactly_Even) {
  check_partition({16, 16, 8, 8}, {8, 8, 4, 4}, {3, 3, 2, 2});
}

TEST(PartitionOverlapping, TilesOriginsExactly_Ragged) {
  check_partition({17, 13, 7, 5}, {8, 6, 4, 3}, {3, 2, 2, 2});
}

TEST(PartitionOverlapping, TilesOriginsExactly_RoiOne) {
  check_partition({9, 9, 3, 3}, {4, 4, 2, 2}, {1, 1, 1, 1});
}

TEST(PartitionOverlapping, TilesOriginsExactly_ChunkEqualsRoi) {
  // step = 1 per dim: one chunk per origin.
  const Vec4 dims{5, 4, 3, 3};
  const Vec4 roi{2, 2, 2, 2};
  check_partition(dims, roi, roi);
  const auto chunks = partition_overlapping(dims, roi, roi);
  EXPECT_EQ(static_cast<std::int64_t>(chunks.size()), num_roi_origins(dims, roi));
}

TEST(PartitionOverlapping, AdjacentChunksOverlapByRoiMinusOne) {
  const Vec4 roi{3, 3, 2, 2};
  const auto chunks = partition_overlapping({20, 8, 4, 4}, {8, 8, 4, 4}, roi);
  // Chunks along x: origins 0, 6, 12 (step = 8-3+1 = 6).
  ASSERT_GE(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].region.origin.x(), 0);
  EXPECT_EQ(chunks[1].region.origin.x(), 6);
  const std::int64_t overlap =
      chunks[0].region.end().x() - chunks[1].region.origin.x();
  EXPECT_EQ(overlap, roi.x() - 1);
}

TEST(PartitionOverlapping, IdsAreSequentialRasterOrder) {
  const auto chunks = partition_overlapping({16, 16, 4, 4}, {8, 8, 4, 4}, {3, 3, 2, 2});
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].id, static_cast<std::int64_t>(i));
  }
}

TEST(PartitionPlain, CoversVolumeDisjointly) {
  const Vec4 dims{10, 7, 3, 5};
  const auto blocks = partition_plain(dims, {4, 4, 2, 2});
  std::int64_t total = 0;
  for (const Region4& b : blocks) {
    EXPECT_TRUE(Region4::whole(dims).contains(b));
    total += b.volume();
    for (const Region4& o : blocks) {
      if (&o != &b) {
        EXPECT_FALSE(b.intersects(o)) << b.str() << " vs " << o.str();
      }
    }
  }
  EXPECT_EQ(total, dims.volume());
}

TEST(PartitionPlain, SliceGranularity) {
  // RFR->IIC chunks of one whole slice each: dims (X, Y, 1, 1).
  const Vec4 dims{16, 16, 4, 3};
  const auto blocks = partition_plain(dims, {16, 16, 1, 1});
  EXPECT_EQ(blocks.size(), 12u);  // 4 slices x 3 timesteps
}

}  // namespace
}  // namespace h4d
