#include "nd/vec4.hpp"

#include <gtest/gtest.h>

#include <map>

namespace h4d {
namespace {

TEST(Vec4, DefaultIsZero) {
  Vec4 v;
  EXPECT_EQ(v, Vec4(0, 0, 0, 0));
  EXPECT_EQ(v.volume(), 0);
}

TEST(Vec4, ComponentAccessors) {
  const Vec4 v{1, 2, 3, 4};
  EXPECT_EQ(v.x(), 1);
  EXPECT_EQ(v.y(), 2);
  EXPECT_EQ(v.z(), 3);
  EXPECT_EQ(v.t(), 4);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 4);
}

TEST(Vec4, Arithmetic) {
  const Vec4 a{1, 2, 3, 4};
  const Vec4 b{10, 20, 30, 40};
  EXPECT_EQ(a + b, Vec4(11, 22, 33, 44));
  EXPECT_EQ(b - a, Vec4(9, 18, 27, 36));
  EXPECT_EQ(a * 3, Vec4(3, 6, 9, 12));
  EXPECT_EQ(-a, Vec4(-1, -2, -3, -4));
}

TEST(Vec4, MinMax) {
  const Vec4 a{1, 20, 3, 40};
  const Vec4 b{10, 2, 30, 4};
  EXPECT_EQ(Vec4::min(a, b), Vec4(1, 2, 3, 4));
  EXPECT_EQ(Vec4::max(a, b), Vec4(10, 20, 30, 40));
}

TEST(Vec4, Volume) {
  EXPECT_EQ(Vec4(2, 3, 4, 5).volume(), 120);
  EXPECT_EQ(Vec4(1, 1, 1, 1).volume(), 1);
}

TEST(Vec4, Predicates) {
  EXPECT_TRUE(Vec4(1, 1, 1, 1).all_positive());
  EXPECT_FALSE(Vec4(1, 0, 1, 1).all_positive());
  EXPECT_TRUE(Vec4(0, 0, 0, 0).all_non_negative());
  EXPECT_FALSE(Vec4(0, -1, 0, 0).all_non_negative());
  EXPECT_TRUE(Vec4(1, 2, 3, 4).all_le(Vec4(1, 2, 3, 4)));
  EXPECT_FALSE(Vec4(1, 2, 3, 5).all_le(Vec4(1, 2, 3, 4)));
  EXPECT_TRUE(Vec4(0, 0, 0, 0).all_lt(Vec4(1, 1, 1, 1)));
  EXPECT_FALSE(Vec4(1, 0, 0, 0).all_lt(Vec4(1, 1, 1, 1)));
}

TEST(Vec4, LessIsStrictWeakOrder) {
  Vec4Less less;
  const Vec4 a{1, 2, 3, 4};
  const Vec4 b{1, 2, 4, 0};
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_FALSE(less(a, a));
}

TEST(Vec4, UsableAsMapKey) {
  std::map<Vec4, int, Vec4Less> m;
  m[{0, 0, 0, 0}] = 1;
  m[{1, 0, 0, 0}] = 2;
  m[{0, 1, 0, 0}] = 3;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ((m[{0, 1, 0, 0}]), 3);
}

TEST(Vec4, Str) { EXPECT_EQ(Vec4(1, 2, 3, 4).str(), "(1,2,3,4)"); }

}  // namespace
}  // namespace h4d
