#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "haralick/directions.hpp"
#include "io/phantom.hpp"
#include "nd/quantize.hpp"

namespace h4d::core {
namespace {

TEST(ApportionSplit, BasicCases) {
  EXPECT_EQ(apportion_split(4.0, 5), (std::pair{4, 1}));
  EXPECT_EQ(apportion_split(4.33, 16), (std::pair{13, 3}));  // paper's 13+3
  EXPECT_EQ(apportion_split(1.0, 8), (std::pair{4, 4}));
  EXPECT_EQ(apportion_split(4.0, 1), (std::pair{1, 0}));  // single node co-locates
}

TEST(ApportionSplit, AlwaysAtLeastOneEach) {
  for (const double r : {0.01, 0.5, 1.0, 10.0, 1000.0}) {
    for (int n = 2; n <= 24; ++n) {
      const auto [hcc, hpc] = apportion_split(r, n);
      EXPECT_GE(hcc, 1) << r << " " << n;
      EXPECT_GE(hpc, 1) << r << " " << n;
      EXPECT_EQ(hcc + hpc, n);
    }
  }
}

TEST(ApportionSplit, MonotoneInRatio) {
  int prev = 1;
  for (const double r : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto [hcc, hpc] = apportion_split(r, 16);
    EXPECT_GE(hcc, prev);
    prev = hcc;
  }
}

TEST(ApportionSplit, Rejections) {
  EXPECT_THROW(apportion_split(0.0, 4), std::invalid_argument);
  EXPECT_THROW(apportion_split(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(apportion_split(4.0, 0), std::invalid_argument);
}

class PlannerFixture : public ::testing::Test {
 protected:
  Volume4<Level> probe() const {
    io::PhantomConfig cfg;
    cfg.dims = {24, 24, 8, 6};
    cfg.seed = 12;
    return quantize_volume(io::generate_phantom(cfg).volume, 32);
  }

  haralick::EngineConfig paper_engine() const {
    haralick::EngineConfig e;
    e.roi_dims = {5, 5, 3, 3};
    e.num_levels = 32;
    e.features = haralick::FeatureSet::paper_eval();
    e.directions = haralick::axis_directions(haralick::ActiveDims::all4());
    return e;
  }
};

TEST_F(PlannerFixture, PaperConfigurationGivesPaperRatio) {
  // The cost model is calibrated so HCC is ~4-5x HPC (paper Sec. 5.2);
  // the planner must recover that ratio and hence the 13+3 split.
  const SplitPlan plan = plan_split(probe(), paper_engine(), sim::CostModel{}, 16);
  EXPECT_GT(plan.cost_ratio, 3.0);
  EXPECT_LT(plan.cost_ratio, 6.5);
  EXPECT_GE(plan.hcc_nodes, 12);
  EXPECT_LE(plan.hcc_nodes, 14);
  EXPECT_EQ(plan.hcc_nodes + plan.hpc_nodes, 16);
}

TEST_F(PlannerFixture, MoreDirectionsRaiseHccShare) {
  haralick::EngineConfig few = paper_engine();
  haralick::EngineConfig many = paper_engine();
  many.directions = haralick::unique_directions(haralick::ActiveDims::all4());
  const SplitPlan a = plan_split(probe(), few, sim::CostModel{}, 16);
  const SplitPlan b = plan_split(probe(), many, sim::CostModel{}, 16);
  EXPECT_GT(b.cost_ratio, a.cost_ratio);
  EXPECT_GE(b.hcc_nodes, a.hcc_nodes);
}

TEST_F(PlannerFixture, SparseRepresentationLowersHpcCost) {
  haralick::EngineConfig full = paper_engine();
  haralick::EngineConfig sparse = paper_engine();
  sparse.representation = haralick::Representation::Sparse;
  const SplitPlan a = plan_split(probe(), full, sim::CostModel{}, 16);
  const SplitPlan b = plan_split(probe(), sparse, sim::CostModel{}, 16);
  EXPECT_LT(b.hpc_cost_per_roi, a.hpc_cost_per_roi);
  EXPECT_GT(b.cost_ratio, a.cost_ratio);
}

TEST_F(PlannerFixture, Rejections) {
  haralick::EngineConfig e = paper_engine();
  e.roi_dims = {100, 100, 100, 100};
  EXPECT_THROW(plan_split(probe(), e, sim::CostModel{}, 16), std::invalid_argument);
  EXPECT_THROW(plan_split(probe(), paper_engine(), sim::CostModel{}, 16, 0),
               std::invalid_argument);
}

TEST_F(PlannerFixture, DeterministicForSameInput) {
  const SplitPlan a = plan_split(probe(), paper_engine(), sim::CostModel{}, 12);
  const SplitPlan b = plan_split(probe(), paper_engine(), sim::CostModel{}, 12);
  EXPECT_DOUBLE_EQ(a.cost_ratio, b.cost_ratio);
  EXPECT_EQ(a.hcc_nodes, b.hcc_nodes);
}

}  // namespace
}  // namespace h4d::core
