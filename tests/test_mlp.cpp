#include "ml/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>

namespace h4d::ml {
namespace {

namespace fsys = std::filesystem;

TEST(Matrix, Layout) {
  Matrix m(2, 3);
  m.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.data[5], 7.0);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 7.0);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Matrix x(4, 2);
  const double vals[4][2] = {{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c) x.at(r, c) = vals[r][c];
  const Standardizer s = Standardizer::fit(x);
  Matrix z = x;
  s.apply(z);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    for (std::size_t r = 0; r < 4; ++r) mean += z.at(r, c);
    mean /= 4;
    for (std::size_t r = 0; r < 4; ++r) var += (z.at(r, c) - mean) * (z.at(r, c) - mean);
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var / 4, 1.0, 1e-12);
  }
}

TEST(Standardizer, ConstantFeaturePassesThroughCentered) {
  Matrix x(3, 1);
  for (std::size_t r = 0; r < 3; ++r) x.at(r, 0) = 5.0;
  const Standardizer s = Standardizer::fit(x);
  EXPECT_DOUBLE_EQ(s.apply(std::vector<double>{5.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.apply(std::vector<double>{6.0})[0], 1.0);
}

TEST(Mlp, ConstructionValidation) {
  EXPECT_THROW(Mlp({4}), std::invalid_argument);
  EXPECT_THROW(Mlp({4, 2}), std::invalid_argument);  // output must be 1
  EXPECT_THROW(Mlp({4, 0, 1}), std::invalid_argument);
  EXPECT_NO_THROW(Mlp({4, 8, 1}));
}

TEST(Mlp, GradientMatchesNumericalDifferentiation) {
  Mlp net({3, 5, 4, 1}, 7);
  const std::vector<double> x{0.3, -1.2, 0.8};
  const double y = 1.0;

  const std::vector<double> analytic = net.gradient(x.data(), y);
  std::vector<double> params = net.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  const double h = 1e-6;
  const auto loss_at = [&](const std::vector<double>& p) {
    Mlp probe({3, 5, 4, 1}, 7);
    probe.set_parameters(p);
    const double prob = probe.predict(x);
    const double c = std::clamp(prob, 1e-12, 1.0 - 1e-12);
    return -(y * std::log(c) + (1 - y) * std::log(1 - c));
  };
  for (std::size_t i = 0; i < params.size(); i += 7) {  // sample every 7th param
    std::vector<double> plus = params, minus = params;
    plus[i] += h;
    minus[i] -= h;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * h);
    EXPECT_NEAR(analytic[i], numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
        << "param " << i;
  }
}

TEST(Mlp, LearnsXor) {
  Matrix x(4, 2);
  std::vector<double> y{0, 1, 1, 0};
  const double inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c) x.at(r, c) = inputs[r][c];

  Mlp net({2, 8, 1}, 3);
  TrainOptions opt;
  opt.epochs = 3000;
  opt.batch_size = 4;
  opt.learning_rate = 0.5;
  opt.l2 = 0.0;
  const TrainReport report = net.train(x, y, opt);
  EXPECT_LT(report.final_loss, 0.1);
  EXPECT_LT(net.predict(std::vector<double>{0, 0}), 0.5);
  EXPECT_GT(net.predict(std::vector<double>{0, 1}), 0.5);
  EXPECT_GT(net.predict(std::vector<double>{1, 0}), 0.5);
  EXPECT_LT(net.predict(std::vector<double>{1, 1}), 0.5);
}

TEST(Mlp, TrainingLossDecreases) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> noise(0.0, 0.3);
  Matrix x(200, 2);
  std::vector<double> y(200);
  for (std::size_t r = 0; r < 200; ++r) {
    const double cls = r % 2 ? 1.0 : -1.0;
    x.at(r, 0) = cls + noise(rng);
    x.at(r, 1) = -cls + noise(rng);
    y[r] = cls > 0 ? 1.0 : 0.0;
  }
  Mlp net({2, 6, 1}, 9);
  TrainOptions opt;
  opt.epochs = 50;
  const TrainReport report = net.train(x, y, opt);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_LT(report.final_loss, 0.2);
}

TEST(Mlp, DeterministicGivenSeeds) {
  Matrix x(50, 3);
  std::vector<double> y(50);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-1, 1);
  for (auto& v : x.data) v = u(rng);
  for (std::size_t i = 0; i < 50; ++i) y[i] = u(rng) > 0 ? 1.0 : 0.0;

  Mlp a({3, 4, 1}, 2);
  Mlp b({3, 4, 1}, 2);
  TrainOptions opt;
  opt.epochs = 10;
  a.train(x, y, opt);
  b.train(x, y, opt);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(Mlp, SaveLoadRoundTrip) {
  const fsys::path path =
      fsys::temp_directory_path() / ("h4d_mlp_" + std::to_string(::getpid()) + ".txt");
  Mlp net({4, 6, 3, 1}, 13);
  net.save(path);
  const Mlp back = Mlp::load(path);
  EXPECT_EQ(back.layer_sizes(), net.layer_sizes());
  EXPECT_EQ(back.parameters(), net.parameters());
  const std::vector<double> x{0.1, -0.5, 2.0, 0.7};
  EXPECT_DOUBLE_EQ(back.predict(x), net.predict(x));
  fsys::remove(path);
}

TEST(Mlp, LoadRejectsGarbage) {
  const fsys::path path =
      fsys::temp_directory_path() / ("h4d_mlp_bad_" + std::to_string(::getpid()) + ".txt");
  std::ofstream(path) << "not an mlp";
  EXPECT_THROW(Mlp::load(path), std::runtime_error);
  fsys::remove(path);
  EXPECT_THROW(Mlp::load(path), std::runtime_error);  // missing file
}

TEST(Mlp, TrainValidation) {
  Mlp net({2, 3, 1});
  Matrix x(4, 3);  // wrong width
  std::vector<double> y(4, 0.0);
  EXPECT_THROW(net.train(x, y, {}), std::invalid_argument);
  Matrix ok(3, 2);
  EXPECT_THROW(net.train(ok, y, {}), std::invalid_argument);  // rows != labels
}

TEST(RocAuc, PerfectAndRandomAndInverted) {
  EXPECT_DOUBLE_EQ(roc_auc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(roc_auc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);  // all tied
  EXPECT_DOUBLE_EQ(roc_auc({0.3, 0.7}, {1, 1}), 0.5);                  // one class only
}

TEST(RocAuc, HandChecked) {
  // scores: n(0.1) p(0.4) n(0.35) p(0.8) => one inversion-free ordering
  // except p(0.4) vs n(0.35): AUC = 4/4 = 1? ranks: 0.1 n, 0.35 n, 0.4 p, 0.8 p -> 1.0
  EXPECT_DOUBLE_EQ(roc_auc({0.1, 0.4, 0.35, 0.8}, {0, 1, 0, 1}), 1.0);
  // Swap one pair: p(0.2) below n(0.35): U = 1 of 4 pairs misordered -> 0.75.
  EXPECT_DOUBLE_EQ(roc_auc({0.1, 0.2, 0.35, 0.8}, {0, 1, 0, 1}), 0.75);
}

TEST(Accuracy, Basics) {
  EXPECT_DOUBLE_EQ(accuracy({0.9, 0.1}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({0.9, 0.1}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy({0.6, 0.6, 0.4, 0.4}, {1, 0, 1, 0}), 0.5);
  EXPECT_THROW(accuracy({0.5}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace h4d::ml
