#include "io/mhd.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <random>

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

class MhdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fsys::temp_directory_path() /
           ("h4d_mhd_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override { fsys::remove_all(dir_); }

  static Volume4<std::uint16_t> sample(Vec4 dims, unsigned seed = 1) {
    Volume4<std::uint16_t> v(dims);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> u(0, 4000);
    for (auto& x : v.storage()) x = static_cast<std::uint16_t>(u(rng));
    return v;
  }

  fsys::path dir_;
};

TEST_F(MhdTest, RoundTrips4D) {
  const auto vol = sample({6, 5, 4, 3});
  write_mhd(dir_ / "study.mhd", vol);
  const auto back = read_mhd(dir_ / "study.mhd");
  EXPECT_EQ(back.dims(), vol.dims());
  EXPECT_EQ(back.storage(), vol.storage());
}

TEST_F(MhdTest, SingleTimestepWritesAs3D) {
  const auto vol = sample({6, 5, 4, 1});
  write_mhd(dir_ / "v3.mhd", vol);
  std::ifstream h(dir_ / "v3.mhd");
  std::string text((std::istreambuf_iterator<char>(h)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("NDims = 3"), std::string::npos);
  const auto back = read_mhd(dir_ / "v3.mhd");
  EXPECT_EQ(back.dims(), vol.dims());  // reader pads t back to 1
  EXPECT_EQ(back.storage(), vol.storage());
}

TEST_F(MhdTest, Reads2DImage) {
  std::ofstream h(dir_ / "img.mhd");
  h << "ObjectType = Image\nNDims = 2\nDimSize = 4 3\nElementType = MET_UCHAR\n"
    << "ElementDataFile = img.raw\n";
  h.close();
  std::ofstream raw(dir_ / "img.raw", std::ios::binary);
  for (int i = 0; i < 12; ++i) raw.put(static_cast<char>(i * 10));
  raw.close();

  const auto vol = read_mhd(dir_ / "img.mhd");
  EXPECT_EQ(vol.dims(), Vec4(4, 3, 1, 1));
  EXPECT_EQ(vol.at(0, 0, 0, 0), 0);
  EXPECT_EQ(vol.at(1, 0, 0, 0), 10);
  EXPECT_EQ(vol.at(3, 2, 0, 0), 110);
}

TEST_F(MhdTest, RejectsBadHeaders) {
  const auto write_header = [&](const std::string& body) {
    std::ofstream h(dir_ / "bad.mhd");
    h << body;
  };
  write_header("NDims = 5\nDimSize = 1 1 1 1 1\nElementType = MET_USHORT\n"
               "ElementDataFile = x.raw\n");
  EXPECT_THROW(read_mhd(dir_ / "bad.mhd"), std::runtime_error);

  write_header("NDims = 3\nDimSize = 2 2 2\nElementType = MET_FLOAT\n"
               "ElementDataFile = x.raw\n");
  EXPECT_THROW(read_mhd(dir_ / "bad.mhd"), std::runtime_error);

  write_header("NDims = 3\nDimSize = 2 2 2\nElementType = MET_USHORT\n"
               "BinaryDataByteOrderMSB = True\nElementDataFile = x.raw\n");
  EXPECT_THROW(read_mhd(dir_ / "bad.mhd"), std::runtime_error);

  write_header("NDims = 3\nDimSize = 2 2 2\nElementType = MET_USHORT\n"
               "ElementDataFile = LOCAL\n");
  EXPECT_THROW(read_mhd(dir_ / "bad.mhd"), std::runtime_error);

  write_header("NDims = 3\nDimSize = 2 2 2\nElementType = MET_USHORT\n"
               "ElementDataFile = missing.raw\n");
  EXPECT_THROW(read_mhd(dir_ / "bad.mhd"), std::runtime_error);

  // Truncated data file.
  write_header("NDims = 3\nDimSize = 2 2 2\nElementType = MET_USHORT\n"
               "ElementDataFile = short.raw\n");
  std::ofstream raw(dir_ / "short.raw", std::ios::binary);
  raw.put(0);
  raw.close();
  EXPECT_THROW(read_mhd(dir_ / "bad.mhd"), std::runtime_error);

  EXPECT_THROW(read_mhd(dir_ / "does_not_exist.mhd"), std::runtime_error);
}

TEST_F(MhdTest, UnknownKeysIgnored) {
  const auto vol = sample({3, 3, 2, 1});
  write_mhd(dir_ / "v.mhd", vol);
  // Append harmless extra keys.
  std::ofstream h(dir_ / "v.mhd", std::ios::app);
  h << "ElementSpacing = 1 1 1\nOffset = 0 0 0\nTransformMatrix = 1 0 0 0 1 0 0 0 1\n";
  h.close();
  EXPECT_EQ(read_mhd(dir_ / "v.mhd").storage(), vol.storage());
}

TEST_F(MhdTest, ImportProducesEquivalentDataset) {
  const auto vol = sample({8, 8, 4, 3});
  write_mhd(dir_ / "study.mhd", vol);
  const DiskDataset ds = import_mhd(dir_ / "study.mhd", dir_ / "dataset", 3);
  EXPECT_EQ(ds.meta().dims, vol.dims());
  EXPECT_EQ(ds.num_nodes(), 3);
  EXPECT_EQ(ds.read_all().storage(), vol.storage());
}

}  // namespace
}  // namespace h4d::io
