#include "fs/graph.hpp"

#include <gtest/gtest.h>

namespace h4d::fs {
namespace {

class NullFilter final : public Filter {
 public:
  std::string_view name() const override { return "null"; }
};

FilterFactory null_factory() {
  return [] { return std::make_unique<NullFilter>(); };
}

TEST(FilterGraph, AddFilterValidation) {
  FilterGraph g;
  EXPECT_THROW(g.add_filter({"", null_factory(), 1, {}}), std::invalid_argument);
  EXPECT_THROW(g.add_filter({"a", nullptr, 1, {}}), std::invalid_argument);
  EXPECT_THROW(g.add_filter({"a", null_factory(), 0, {}}), std::invalid_argument);
  EXPECT_THROW(g.add_filter({"a", null_factory(), 2, {0}}), std::invalid_argument);
  EXPECT_EQ(g.add_filter({"a", null_factory(), 2, {0, 1}}), 0);
  EXPECT_EQ(g.add_filter({"b", null_factory(), 1, {}}), 1);
}

TEST(FilterGraph, ConnectValidation) {
  FilterGraph g;
  const int a = g.add_filter({"a", null_factory(), 1, {}});
  const int b = g.add_filter({"b", null_factory(), 1, {}});
  EXPECT_THROW(g.connect(a, 0, 99), std::invalid_argument);
  EXPECT_THROW(g.connect(-1, 0, b), std::invalid_argument);
  EXPECT_THROW(g.connect(a, -1, b), std::invalid_argument);
  EXPECT_THROW(g.connect(a, 0, b, Policy::Explicit), std::invalid_argument);  // no route
  EXPECT_NO_THROW(g.connect(a, 0, b, Policy::Explicit,
                            [](const BufferHeader&, int) { return 0; }));
  EXPECT_NO_THROW(g.connect(a, 0, b));
}

TEST(FilterGraph, EdgeQueries) {
  FilterGraph g;
  const int a = g.add_filter({"a", null_factory(), 1, {}});
  const int b = g.add_filter({"b", null_factory(), 1, {}});
  const int c = g.add_filter({"c", null_factory(), 1, {}});
  g.connect(a, 0, b);
  g.connect(a, 1, c);
  g.connect(b, 0, c);

  EXPECT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.in_edges(c).size(), 2u);
  EXPECT_TRUE(g.is_source(a));
  EXPECT_FALSE(g.is_source(b));
}

TEST(FilterGraph, ValidateRejectsCycle) {
  FilterGraph g;
  const int a = g.add_filter({"a", null_factory(), 1, {}});
  const int b = g.add_filter({"b", null_factory(), 1, {}});
  g.connect(a, 0, b);
  g.connect(b, 0, a);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(FilterGraph, ValidateRejectsEmpty) {
  FilterGraph g;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(FilterGraph, ValidateAcceptsDag) {
  FilterGraph g;
  const int a = g.add_filter({"a", null_factory(), 2, {0, 1}});
  const int b = g.add_filter({"b", null_factory(), 3, {}});
  const int c = g.add_filter({"c", null_factory(), 1, {}});
  g.connect(a, 0, b);
  g.connect(b, 0, c);
  g.connect(a, 1, c);
  EXPECT_NO_THROW(g.validate());
}

TEST(FilterSpec, PlacementDefaultsToNodeZero) {
  FilterSpec s{"a", null_factory(), 3, {}};
  EXPECT_EQ(s.node_of_copy(0), 0);
  EXPECT_EQ(s.node_of_copy(2), 0);
  FilterSpec p{"b", null_factory(), 3, {5, 6, 7}};
  EXPECT_EQ(p.node_of_copy(0), 5);
  EXPECT_EQ(p.node_of_copy(2), 7);
}

TEST(RunStats, AggregationHelpers) {
  RunStats s;
  CopyStats a;
  a.filter = "HCC";
  a.busy_seconds = 2.0;
  a.finish_time = 5.0;
  a.meter.bytes_out = 100;
  CopyStats b = a;
  b.busy_seconds = 3.0;
  b.finish_time = 7.0;
  CopyStats other;
  other.filter = "HPC";
  other.busy_seconds = 1.0;
  s.copies = {a, b, other};

  EXPECT_DOUBLE_EQ(s.filter_busy_seconds("HCC"), 5.0);
  EXPECT_DOUBLE_EQ(s.filter_finish_time("HCC"), 7.0);
  EXPECT_EQ(s.total_bytes_out("HCC"), 200);
  EXPECT_DOUBLE_EQ(s.filter_busy_seconds("none"), 0.0);
}

TEST(PolicyNames, AllNamed) {
  EXPECT_EQ(policy_name(Policy::RoundRobin), "round-robin");
  EXPECT_EQ(policy_name(Policy::DemandDriven), "demand-driven");
  EXPECT_EQ(policy_name(Policy::Broadcast), "broadcast");
  EXPECT_EQ(policy_name(Policy::Explicit), "explicit");
}

}  // namespace
}  // namespace h4d::fs
