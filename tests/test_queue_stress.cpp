// Concurrency stress suite for both inbox implementations, built on the
// stress_queue.hpp harness. Every scenario checks exact item conservation
// and per-producer FIFO order; the suite is part of the TSan CI tier, which
// is what actually proves the MpmcQueue slot protocol and parking layer are
// race-free (see DESIGN §13).
#include "stress_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fs/mpmc_queue.hpp"
#include "fs/queue.hpp"

namespace h4d::fs {
namespace {

template <typename Q>
class QueueStress : public ::testing::Test {};

struct ImplName {
  template <typename Q>
  static std::string GetName(int) {
    return std::string(queue_impl_name(Q::kImpl));
  }
};

using Impls = ::testing::Types<BoundedQueue<std::uint64_t>, MpmcQueue<std::uint64_t>>;
TYPED_TEST_SUITE(QueueStress, Impls, ImplName);

TYPED_TEST(QueueStress, ConservationManyProducersManyConsumers) {
  stress::Plan plan;
  plan.producers = 4;
  plan.consumers = 4;
  plan.items_per_producer = 2000;
  plan.capacity = 16;
  plan.seed = 11;
  TypeParam q(plan.capacity);
  const stress::Outcome out = stress::run_plan(q, plan);
  stress::check_all(out);
  EXPECT_EQ(out.closed_pushes, 0);  // close happens after producers join
  EXPECT_GE(q.stats().max_depth, 1u);
}

TYPED_TEST(QueueStress, TinyCapacityMaximizesContention) {
  // capacity 1 forces every push through the full/parked path and every
  // hand-off through a wakeup — the worst case for lost-wakeup bugs.
  stress::Plan plan;
  plan.producers = 4;
  plan.consumers = 2;
  plan.items_per_producer = 500;
  plan.capacity = 1;
  plan.seed = 23;
  TypeParam q(plan.capacity);
  const stress::Outcome out = stress::run_plan(q, plan);
  stress::check_all(out);
  EXPECT_LE(q.stats().max_depth, plan.capacity);  // backpressure is exact
}

TYPED_TEST(QueueStress, MidStreamCloseNeverStrandsOrInventsItems) {
  // close() races in-flight pushes: whatever was accepted must come out,
  // whatever was rejected must not. Several delays vary where the close
  // lands relative to the producers' progress.
  for (const long long close_us : {0LL, 200LL, 2000LL}) {
    stress::Plan plan;
    plan.producers = 4;
    plan.consumers = 2;
    plan.items_per_producer = 5000;
    plan.capacity = 8;
    plan.seed = 31 + static_cast<unsigned>(close_us);
    plan.close_after = std::chrono::microseconds(close_us);
    TypeParam q(plan.capacity);
    const stress::Outcome out = stress::run_plan(q, plan);
    stress::check_all(out);
  }
}

TYPED_TEST(QueueStress, TimeoutStormConservesAcceptedItems) {
  // The executor's heartbeat pattern under heavy backpressure: short timed
  // slices against a tiny queue and slow consumers produce a storm of
  // Timeout outcomes; every slice that reported Ok must still be conserved,
  // and a timed-out item must never leak into the queue.
  stress::Plan plan;
  plan.producers = 4;
  plan.consumers = 1;
  plan.items_per_producer = 300;
  plan.capacity = 2;
  plan.seed = 47;
  plan.timed_push = true;
  plan.slice = std::chrono::microseconds(50);
  plan.max_jitter = std::chrono::microseconds(200);
  TypeParam q(plan.capacity);
  const stress::Outcome out = stress::run_plan(q, plan);
  stress::check_all(out);
}

TYPED_TEST(QueueStress, TimedPushesRacingMidStreamClose) {
  stress::Plan plan;
  plan.producers = 4;
  plan.consumers = 2;
  plan.items_per_producer = 5000;
  plan.capacity = 4;
  plan.seed = 59;
  plan.timed_push = true;
  plan.slice = std::chrono::microseconds(100);
  plan.close_after = std::chrono::microseconds(500);
  TypeParam q(plan.capacity);
  const stress::Outcome out = stress::run_plan(q, plan);
  stress::check_all(out);
}

TYPED_TEST(QueueStress, WatchdogDrainersRaceBlockingConsumers) {
  // Non-blocking try_pop bursts (the dead-copy inbox drain) interleaved
  // with blocking pop(): both kinds of streams must keep per-producer FIFO
  // and together account for every item exactly once.
  stress::Plan plan;
  plan.producers = 4;
  plan.consumers = 2;
  plan.items_per_producer = 2000;
  plan.capacity = 8;
  plan.seed = 67;
  plan.drainers = 2;
  TypeParam q(plan.capacity);
  const stress::Outcome out = stress::run_plan(q, plan);
  stress::check_all(out);
}

TYPED_TEST(QueueStress, NonPowerOfTwoCapacityBlockingPushes) {
  // Non-power-of-two capacities leave the ring larger than the logical
  // capacity, so a parked producer can be waiting on a slot recycle (the
  // dif<0 path) rather than on backpressure: the pop that frees its slot
  // observes enq - pos == ring_, not == capacity_. A wake gate that tests
  // exact equality with capacity_ misses that edge (and the racing-claim
  // capacity_+1 read) and leaves a blocking push() parked forever — this
  // plan uses blocking pushes so a lost wakeup is a hang, not a flake.
  // Jitter widens the consumer's deq-CAS -> seq-store window where the
  // racing producer claim lands.
  for (const std::size_t capacity : {3u, 5u, 6u, 7u}) {
    stress::Plan plan;
    plan.producers = 6;
    plan.consumers = 2;
    plan.items_per_producer = 1500;
    plan.capacity = capacity;
    plan.seed = 71 + static_cast<unsigned>(capacity);
    plan.max_jitter = std::chrono::microseconds(100);
    SCOPED_TRACE("capacity " + std::to_string(capacity));
    TypeParam q(plan.capacity);
    const stress::Outcome out = stress::run_plan(q, plan);
    stress::check_all(out);
    EXPECT_LE(q.stats().max_depth, plan.capacity);  // logical, not ring, bound
  }
}

TYPED_TEST(QueueStress, RandomizedSchedules) {
  // Seeded sweep over plan shapes: producer/consumer counts, capacities,
  // jitter, timed vs blocking pushes, early and late closes. The point is
  // interleaving diversity, not volume — each plan is small.
  for (unsigned seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed * 2654435761u);
    stress::Plan plan;
    plan.seed = seed;
    plan.producers = 1 + static_cast<int>(rng() % 4);
    plan.consumers = 1 + static_cast<int>(rng() % 4);
    plan.items_per_producer = 200 + rng() % 800;
    plan.capacity = 1 + rng() % 16;
    plan.timed_push = (rng() % 2) == 0;
    plan.slice = std::chrono::microseconds(50 + rng() % 200);
    plan.drainers = static_cast<int>(rng() % 2);
    plan.max_jitter = std::chrono::microseconds(rng() % 150);
    if (rng() % 2 == 0) {
      plan.close_after = std::chrono::microseconds(rng() % 3000);
    }
    SCOPED_TRACE("seed " + std::to_string(seed));
    TypeParam q(plan.capacity);
    const stress::Outcome out = stress::run_plan(q, plan);
    stress::check_all(out);
  }
}

}  // namespace
}  // namespace h4d::fs
