#include "fs/executor_threads.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "toy_filters.hpp"

namespace h4d::fs {
namespace {

using testing::CollectSink;
using testing::NumberSource;
using testing::PoisonFilter;
using testing::ScaleFilter;
using testing::SinkState;

FilterGraph linear_graph(std::shared_ptr<SinkState> state, int items, int scale_copies,
                         Policy policy) {
  FilterGraph g;
  const int src = g.add_filter({"source", [items] { return std::make_unique<NumberSource>(items); },
                                1, {}});
  const int mid = g.add_filter(
      {"scale", [] { return std::make_unique<ScaleFilter>(3); }, scale_copies, {}});
  const int sink =
      g.add_filter({"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, mid, policy);
  g.connect(mid, 0, sink, Policy::DemandDriven);
  return g;
}

std::int64_t expected_sum(int items, std::int64_t factor) {
  return factor * static_cast<std::int64_t>(items) * (items - 1) / 2;
}

TEST(ThreadedExecutor, LinearPipelineDeliversEverything) {
  auto state = std::make_shared<SinkState>();
  const RunStats stats = run_threaded(linear_graph(state, 100, 1, Policy::RoundRobin));
  EXPECT_EQ(state->count(), 100u);
  EXPECT_EQ(state->sum(), expected_sum(100, 3));
  EXPECT_EQ(state->flushes.load(), 1);
  EXPECT_GT(stats.total_seconds, 0.0);
}

class CopiesAndPolicies
    : public ::testing::TestWithParam<std::tuple<int, Policy>> {};

TEST_P(CopiesAndPolicies, ResultsIndependentOfParallelismAndPolicy) {
  const auto [copies, policy] = GetParam();
  auto state = std::make_shared<SinkState>();
  run_threaded(linear_graph(state, 200, copies, policy));
  EXPECT_EQ(state->count(), 200u);
  EXPECT_EQ(state->sum(), expected_sum(200, 3));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CopiesAndPolicies,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(Policy::RoundRobin, Policy::DemandDriven)));

TEST(ThreadedExecutor, RoundRobinSpreadsEvenly) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src =
      g.add_filter({"source", [] { return std::make_unique<NumberSource>(90); }, 1, {}});
  const int mid =
      g.add_filter({"scale", [] { return std::make_unique<ScaleFilter>(1); }, 3, {}});
  auto sink_state = state;
  const int sink = g.add_filter(
      {"sink", [sink_state] { return std::make_unique<CollectSink>(sink_state); }, 1, {}});
  g.connect(src, 0, mid, Policy::RoundRobin);
  g.connect(mid, 0, sink);
  const RunStats stats = run_threaded(g);

  for (const CopyStats& c : stats.copies) {
    if (c.filter == "scale") EXPECT_EQ(c.meter.buffers_in, 30);
  }
}

TEST(ThreadedExecutor, BroadcastDuplicatesToEveryCopy) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src =
      g.add_filter({"source", [] { return std::make_unique<NumberSource>(10); }, 1, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 4, {}});
  g.connect(src, 0, sink, Policy::Broadcast);
  run_threaded(g);
  EXPECT_EQ(state->count(), 40u);  // every copy got all 10
  EXPECT_EQ(state->flushes.load(), 4);
}

TEST(ThreadedExecutor, ExplicitRoutingHonored) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src =
      g.add_filter({"source", [] { return std::make_unique<NumberSource>(20); }, 1, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 2, {}});
  // Evens to copy 0, odds to copy 1.
  g.connect(src, 0, sink, Policy::Explicit,
            [](const BufferHeader& h, int) { return static_cast<int>(h.seq % 2); });
  const RunStats stats = run_threaded(g);
  EXPECT_EQ(state->count(), 20u);
  for (const CopyStats& c : stats.copies) {
    if (c.filter == "sink") EXPECT_EQ(c.meter.buffers_in, 10);
  }
}

TEST(ThreadedExecutor, ExplicitRouteOutOfRangeSurfacesError) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src =
      g.add_filter({"source", [] { return std::make_unique<NumberSource>(3); }, 1, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 2, {}});
  g.connect(src, 0, sink, Policy::Explicit, [](const BufferHeader&, int) { return 7; });
  EXPECT_THROW(run_threaded(g), std::out_of_range);
}

TEST(ThreadedExecutor, FilterExceptionPropagates) {
  FilterGraph g;
  const int src =
      g.add_filter({"source", [] { return std::make_unique<NumberSource>(10); }, 1, {}});
  const int bad =
      g.add_filter({"poison", [] { return std::make_unique<PoisonFilter>(5); }, 1, {}});
  auto state = std::make_shared<SinkState>();
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, bad);
  g.connect(bad, 0, sink);
  EXPECT_THROW(run_threaded(g), std::runtime_error);
}

TEST(ThreadedExecutor, MultiStageFanInCountsAllProducers) {
  // Two sources fan into one sink; sink must see both streams end.
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int s1 =
      g.add_filter({"s1", [] { return std::make_unique<NumberSource>(5); }, 1, {}});
  const int s2 =
      g.add_filter({"s2", [] { return std::make_unique<NumberSource>(7); }, 1, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(s1, 0, sink);
  g.connect(s2, 0, sink);
  run_threaded(g);
  EXPECT_EQ(state->count(), 12u);
  EXPECT_EQ(state->flushes.load(), 1);
}

TEST(ThreadedExecutor, SourceCopiesEachRun) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src =
      g.add_filter({"source", [] { return std::make_unique<NumberSource>(4); }, 3, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, sink);
  run_threaded(g);
  EXPECT_EQ(state->count(), 12u);  // 3 copies x 4 items
}

TEST(ThreadedExecutor, StatsCarryMeterAndBytes) {
  auto state = std::make_shared<SinkState>();
  const RunStats stats = run_threaded(linear_graph(state, 50, 2, Policy::RoundRobin));
  std::int64_t source_out = 0, sink_in = 0;
  for (const CopyStats& c : stats.copies) {
    if (c.filter == "source") source_out += c.meter.buffers_out;
    if (c.filter == "sink") sink_in += c.meter.buffers_in;
  }
  EXPECT_EQ(source_out, 50);
  EXPECT_EQ(sink_in, 50);
}

TEST(ThreadedExecutor, SmallQueueCapacityStillCompletes) {
  auto state = std::make_shared<SinkState>();
  ThreadedOptions opt;
  opt.queue_capacity = 1;  // maximal backpressure
  run_threaded(linear_graph(state, 300, 2, Policy::DemandDriven), opt);
  EXPECT_EQ(state->count(), 300u);
}

}  // namespace
}  // namespace h4d::fs
