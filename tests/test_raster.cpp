#include "nd/raster.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace h4d {
namespace {

TEST(Raster, VisitsAllPointsInOrder) {
  const Region4 r{{1, 2, 3, 4}, {2, 2, 1, 2}};
  std::vector<Vec4> pts;
  for (const Vec4& p : raster(r)) pts.push_back(p);
  ASSERT_EQ(pts.size(), 8u);
  EXPECT_EQ(pts[0], Vec4(1, 2, 3, 4));
  EXPECT_EQ(pts[1], Vec4(2, 2, 3, 4));  // x fastest
  EXPECT_EQ(pts[2], Vec4(1, 3, 3, 4));
  EXPECT_EQ(pts[3], Vec4(2, 3, 3, 4));
  EXPECT_EQ(pts[4], Vec4(1, 2, 3, 5));  // then t (z has extent 1)
  EXPECT_EQ(pts.back(), Vec4(2, 3, 3, 5));
}

TEST(Raster, EmptyRegionYieldsNothing) {
  const Region4 r{{0, 0, 0, 0}, {0, 3, 3, 3}};
  int n = 0;
  for ([[maybe_unused]] const Vec4& p : raster(r)) ++n;
  EXPECT_EQ(n, 0);
  EXPECT_EQ(raster(r).size(), 0);
}

TEST(Raster, SizeMatchesVolume) {
  const Region4 r{{5, 5, 5, 5}, {3, 4, 5, 6}};
  EXPECT_EQ(raster(r).size(), 360);
  std::int64_t n = 0;
  for ([[maybe_unused]] const Vec4& p : raster(r)) ++n;
  EXPECT_EQ(n, 360);
}

TEST(Raster, SinglePoint) {
  const Region4 r{{7, 8, 9, 10}, {1, 1, 1, 1}};
  std::vector<Vec4> pts;
  for (const Vec4& p : raster(r)) pts.push_back(p);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0], Vec4(7, 8, 9, 10));
}

TEST(Raster, AgreesWithDelinearize) {
  const Region4 r{{2, 0, 1, 0}, {3, 2, 2, 2}};
  std::int64_t k = 0;
  for (const Vec4& p : raster(r)) {
    EXPECT_EQ(p, r.origin + delinearize(k, r.size));
    ++k;
  }
}

}  // namespace
}  // namespace h4d
