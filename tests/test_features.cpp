#include "haralick/features.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "haralick/directions.hpp"
#include "haralick/fast_log.hpp"

namespace h4d::haralick {
namespace {

TEST(FastLog, AccuracyContractAgainstLibm) {
  // The documented bound: |fast_log(x) - log(x)| <= 1e-10 * max(1, |log x|)
  // for normal positive doubles. Sweep the probability range the entropy
  // terms actually see plus wide magnitude extremes.
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> u01(1e-12, 1.0);
  std::uniform_real_distribution<double> uexp(-300.0, 300.0);
  auto check = [](double x) {
    const double want = std::log(x);
    const double got = fast_log(x);
    EXPECT_NEAR(got, want, 1e-10 * std::max(1.0, std::abs(want))) << "x=" << x;
  };
  for (int k = 0; k < 20000; ++k) check(u01(rng));
  for (int k = 0; k < 2000; ++k) check(std::exp2(uexp(rng)));
  for (double x : {1.0, 2.0, 0.5, 1.0 / 3.0, 1e-300, 1e300,
                   1.4142135623730951, 0.7071067811865476}) {
    check(x);
  }
}

TEST(FastLog, XlogxMatchesReferenceShape) {
  EXPECT_EQ(fast_xlogx(0.0), 0.0);
  EXPECT_EQ(fast_xlogx(-1.0), 0.0);
  EXPECT_NEAR(fast_xlogx(0.25), 0.25 * std::log(0.25), 1e-12);
  EXPECT_NEAR(fast_xlogx(1.0), 0.0, 1e-15);
}

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

Glcm sample_glcm(int ng, unsigned seed, Vec4 dims = {7, 7, 3, 3}) {
  const Volume4<Level> v = random_volume(dims, ng, seed);
  Glcm g(ng);
  g.accumulate(v.view(), Region4::whole(dims), unique_directions(ActiveDims::all4()));
  return g;
}

TEST(FeatureSet, BasicOperations) {
  FeatureSet s;
  EXPECT_EQ(s.count(), 0);
  s.set(Feature::Entropy);
  s.set(Feature::Contrast);
  EXPECT_TRUE(s.has(Feature::Entropy));
  EXPECT_FALSE(s.has(Feature::Correlation));
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(FeatureSet::all().count(), kNumFeatures);
  EXPECT_EQ(FeatureSet::from_mask(s.mask()), s);
}

TEST(FeatureSet, PaperEvalSelection) {
  const FeatureSet s = FeatureSet::paper_eval();
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.has(Feature::AngularSecondMoment));
  EXPECT_TRUE(s.has(Feature::Correlation));
  EXPECT_TRUE(s.has(Feature::SumOfSquaresVariance));
  EXPECT_TRUE(s.has(Feature::InverseDifferenceMoment));
}

TEST(FeatureNames, AllDistinct) {
  for (int i = 0; i < kNumFeatures; ++i) {
    for (int j = i + 1; j < kNumFeatures; ++j) {
      EXPECT_NE(feature_name(static_cast<Feature>(i)), feature_name(static_cast<Feature>(j)));
      EXPECT_NE(feature_slug(static_cast<Feature>(i)), feature_slug(static_cast<Feature>(j)));
    }
  }
}

// ---- hand-checked values on a tiny known matrix ----
//
// 2-level GLCM from counts {{2,1},{1,4}}: total 8.
// p = {{.25, .125}, {.125, .5}}
Glcm tiny_glcm() {
  Glcm g(2);
  g.set_raw({2, 1, 1, 4}, 8);
  return g;
}

TEST(Features, HandCheckedTinyMatrix) {
  const Glcm g = tiny_glcm();
  const FeatureVector f = compute_features(g, FeatureSet::all(), ZeroPolicy::VisitAll);

  // ASM = .0625 + .015625 + .015625 + .25 = .34375
  EXPECT_NEAR(f[Feature::AngularSecondMoment], 0.34375, 1e-12);
  // Contrast = sum k^2 p_diff(k); p_diff(1) = .25 => f2 = .25
  EXPECT_NEAR(f[Feature::Contrast], 0.25, 1e-12);
  // px = {.375, .625}; mu = .625; var = .625*.375 = .234375
  EXPECT_NEAR(f[Feature::SumOfSquaresVariance], 0.234375, 1e-12);
  // sum ij p = p(1,1) = .5; corr = (.5 - .625^2)/.234375 = .109375/.234375
  EXPECT_NEAR(f[Feature::Correlation], 0.109375 / 0.234375, 1e-12);
  // IDM = .25 + .5 + (.125+.125)/2 = .875
  EXPECT_NEAR(f[Feature::InverseDifferenceMoment], 0.875, 1e-12);
  // p_sum = {.25, .25, .5}; f6 = 0*.25 + 1*.25 + 2*.5 = 1.25
  EXPECT_NEAR(f[Feature::SumAverage], 1.25, 1e-12);
  // f7 = (0-1.25)^2*.25 + (1-1.25)^2*.25 + (2-1.25)^2*.5 = .6875
  EXPECT_NEAR(f[Feature::SumVariance], 0.6875, 1e-12);
  // f8 = -(.25 ln .25)*2 - .5 ln .5
  EXPECT_NEAR(f[Feature::SumEntropy], -2 * 0.25 * std::log(0.25) - 0.5 * std::log(0.5), 1e-12);
  // f9 = -(.25ln.25 + .5ln.5 + 2*.125ln.125)
  const double hxy = -(0.25 * std::log(0.25) + 0.5 * std::log(0.5) +
                       2 * 0.125 * std::log(0.125));
  EXPECT_NEAR(f[Feature::Entropy], hxy, 1e-12);
  // p_diff = {.75, .25}; mu_d = .25; f10 = .25*.75*... variance of Bernoulli(.25) = .1875
  EXPECT_NEAR(f[Feature::DifferenceVariance], 0.1875, 1e-12);
  EXPECT_NEAR(f[Feature::DifferenceEntropy],
              -(0.75 * std::log(0.75) + 0.25 * std::log(0.25)), 1e-12);
  // HX = -(.375 ln .375 + .625 ln .625); f12 = (HXY - 2HX)/HX
  const double hx = -(0.375 * std::log(0.375) + 0.625 * std::log(0.625));
  EXPECT_NEAR(f[Feature::InfoMeasureCorrelation1], (hxy - 2 * hx) / hx, 1e-12);
  EXPECT_NEAR(f[Feature::InfoMeasureCorrelation2],
              std::sqrt(1.0 - std::exp(-2.0 * (2 * hx - hxy))), 1e-12);
  // f14 in [0, 1]
  EXPECT_GE(f[Feature::MaximalCorrelationCoeff], 0.0);
  EXPECT_LE(f[Feature::MaximalCorrelationCoeff], 1.0);
}

// ---- path equivalence: the paper's three computation paths must agree ----

class FeaturePathEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(FeaturePathEquivalence, AllThreePathsAgree) {
  const Glcm g = sample_glcm(32, GetParam());
  const SparseGlcm s = SparseGlcm::from_dense(g);
  const FeatureSet set = FeatureSet::all();

  const FeatureVector a = compute_features(g, set, ZeroPolicy::VisitAll);
  const FeatureVector b = compute_features(g, set, ZeroPolicy::SkipZeros);
  const FeatureVector c = compute_features(s, set);

  for (int i = 0; i < kNumFeatures; ++i) {
    const Feature f = static_cast<Feature>(i);
    const double scale = std::max({1.0, std::abs(a[f])});
    EXPECT_NEAR(a[f], b[f], 1e-9 * scale) << feature_name(f);
    EXPECT_NEAR(a[f], c[f], 1e-9 * scale) << feature_name(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeaturePathEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 10u, 20u, 42u));

// ---- invariants over random matrices ----

class FeatureInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(FeatureInvariants, RangesAndSanity) {
  const Glcm g = sample_glcm(32, GetParam());
  const FeatureVector f = compute_features(g, FeatureSet::all(), ZeroPolicy::SkipZeros);

  EXPECT_GT(f[Feature::AngularSecondMoment], 0.0);
  EXPECT_LE(f[Feature::AngularSecondMoment], 1.0);
  EXPECT_GE(f[Feature::Contrast], 0.0);
  EXPECT_GE(f[Feature::Correlation], -1.0 - 1e-9);
  EXPECT_LE(f[Feature::Correlation], 1.0 + 1e-9);
  EXPECT_GE(f[Feature::SumOfSquaresVariance], 0.0);
  EXPECT_GT(f[Feature::InverseDifferenceMoment], 0.0);
  EXPECT_LE(f[Feature::InverseDifferenceMoment], 1.0);
  EXPECT_GE(f[Feature::Entropy], 0.0);
  EXPECT_GE(f[Feature::SumEntropy], 0.0);
  EXPECT_GE(f[Feature::DifferenceEntropy], 0.0);
  EXPECT_LE(f[Feature::InfoMeasureCorrelation1], 0.0 + 1e-9);  // HXY <= HXY1
  EXPECT_GE(f[Feature::InfoMeasureCorrelation2], 0.0);
  EXPECT_LE(f[Feature::InfoMeasureCorrelation2], 1.0);
  EXPECT_GE(f[Feature::MaximalCorrelationCoeff], 0.0);
  EXPECT_LE(f[Feature::MaximalCorrelationCoeff], 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureInvariants,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

TEST(Features, ConstantRegionExtremes) {
  // All pixels identical: ASM = 1, contrast = 0, IDM = 1, entropy = 0,
  // correlation defined as 1 (degenerate).
  Glcm g(32);
  std::vector<std::uint32_t> table(32 * 32, 0);
  table[5 * 32 + 5] = 100;
  g.set_raw(std::move(table), 100);
  const FeatureVector f = compute_features(g, FeatureSet::all(), ZeroPolicy::SkipZeros);
  EXPECT_DOUBLE_EQ(f[Feature::AngularSecondMoment], 1.0);
  EXPECT_DOUBLE_EQ(f[Feature::Contrast], 0.0);
  EXPECT_DOUBLE_EQ(f[Feature::InverseDifferenceMoment], 1.0);
  EXPECT_DOUBLE_EQ(f[Feature::Entropy], 0.0);
  EXPECT_DOUBLE_EQ(f[Feature::Correlation], 1.0);
  EXPECT_DOUBLE_EQ(f[Feature::SumOfSquaresVariance], 0.0);
}

TEST(Features, CheckerboardAntiCorrelated) {
  // Perfect alternation: p(0,1) = p(1,0) = .5 => correlation = -1.
  Glcm g(2);
  g.set_raw({0, 50, 50, 0}, 100);
  const FeatureVector f =
      compute_features(g, {Feature::Correlation, Feature::Contrast}, ZeroPolicy::SkipZeros);
  EXPECT_NEAR(f[Feature::Correlation], -1.0, 1e-12);
  EXPECT_NEAR(f[Feature::Contrast], 1.0, 1e-12);
}

TEST(Features, EmptyMatrixProducesZeros) {
  const Glcm g(16);
  const FeatureVector f = compute_features(g, FeatureSet::all(), ZeroPolicy::VisitAll);
  EXPECT_DOUBLE_EQ(f[Feature::AngularSecondMoment], 0.0);
  EXPECT_DOUBLE_EQ(f[Feature::Entropy], 0.0);
}

TEST(Features, UnselectedSlotsStayZero) {
  const Glcm g = sample_glcm(16, 3);
  const FeatureVector f =
      compute_features(g, {Feature::Contrast}, ZeroPolicy::SkipZeros);
  EXPECT_NE(f[Feature::Contrast], 0.0);
  EXPECT_DOUBLE_EQ(f[Feature::Entropy], 0.0);
  EXPECT_DOUBLE_EQ(f[Feature::AngularSecondMoment], 0.0);
}

TEST(Features, WorkCountersReflectZeroSkip) {
  // Smooth data gives a genuinely sparse matrix (uniform noise would not).
  Volume4<Level> v({7, 7, 3, 3});
  for (std::int64_t t = 0; t < 3; ++t)
    for (std::int64_t z = 0; z < 3; ++z)
      for (std::int64_t y = 0; y < 7; ++y)
        for (std::int64_t x = 0; x < 7; ++x)
          v.at(x, y, z, t) = static_cast<Level>((2 * x + y + z + t) / 2);
  Glcm g(32);
  g.accumulate(v.view(), Region4::whole(v.dims()), unique_directions(ActiveDims::all4()));
  ASSERT_LT(g.nonzero_upper(), 32 * 32 / 4);  // genuinely sparse sample

  WorkCounters all{}, skip{}, sparse{};
  compute_features(g, FeatureSet::paper_eval(), ZeroPolicy::VisitAll, &all);
  compute_features(g, FeatureSet::paper_eval(), ZeroPolicy::SkipZeros, &skip);
  compute_features(SparseGlcm::from_dense(g), FeatureSet::paper_eval(), &sparse);

  EXPECT_EQ(all.feature_cells_scanned, 32 * 32);
  EXPECT_EQ(skip.feature_cells_scanned, 32 * 32);  // still scans all cells
  EXPECT_GT(all.feature_cell_ops, skip.feature_cell_ops);  // but computes fewer
  EXPECT_LT(sparse.feature_cells_scanned, skip.feature_cells_scanned);
  EXPECT_EQ(sparse.feature_cell_ops, skip.feature_cell_ops);  // same math cells
}

TEST(Features, MaxCorrSparseMatchesDense) {
  for (unsigned seed : {31u, 32u, 33u}) {
    const Glcm g = sample_glcm(32, seed);
    const SparseGlcm s = SparseGlcm::from_dense(g);
    const FeatureVector a =
        compute_features(g, {Feature::MaximalCorrelationCoeff}, ZeroPolicy::SkipZeros);
    const FeatureVector b = compute_features(s, {Feature::MaximalCorrelationCoeff});
    EXPECT_NEAR(a[Feature::MaximalCorrelationCoeff], b[Feature::MaximalCorrelationCoeff],
                1e-8);
  }
}

}  // namespace
}  // namespace h4d::haralick
