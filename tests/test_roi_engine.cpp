#include "haralick/roi_engine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"
#include "nd/raster.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.roi_dims = {3, 3, 2, 2};
  cfg.num_levels = 8;
  cfg.features = FeatureSet::paper_eval();
  return cfg;
}

TEST(EngineConfig, DefaultDirectionsAreAll4D) {
  EngineConfig cfg;
  EXPECT_EQ(cfg.effective_directions().size(), 40u);
  cfg.directions = {{1, 0, 0, 0}};
  EXPECT_EQ(cfg.effective_directions().size(), 1u);
}

TEST(AnalyzeVolume, ProducesOneBlockPerFeature) {
  const Volume4<Level> v = random_volume({6, 6, 3, 3}, 8, 1);
  const EngineConfig cfg = small_config();
  const auto blocks = analyze_volume(v, cfg);
  ASSERT_EQ(blocks.size(), 4u);
  const Region4 want = roi_origin_region(v.dims(), cfg.roi_dims);
  for (const auto& b : blocks) {
    EXPECT_EQ(b.origins, want);
    EXPECT_EQ(static_cast<std::int64_t>(b.values.size()), want.volume());
  }
}

TEST(AnalyzeVolume, RejectsOversizeRoi) {
  const Volume4<Level> v = random_volume({4, 4, 2, 2}, 8, 2);
  EngineConfig cfg = small_config();
  cfg.roi_dims = {5, 4, 2, 2};
  EXPECT_THROW(analyze_volume(v, cfg), std::invalid_argument);
}

TEST(AnalyzeVolume, ValuesMatchDirectPerRoiComputation) {
  const Volume4<Level> v = random_volume({6, 5, 3, 3}, 8, 3);
  EngineConfig cfg = small_config();
  cfg.representation = Representation::Full;
  const auto blocks = analyze_volume(v, cfg);

  const auto dirs = cfg.effective_directions();
  std::int64_t k = 0;
  for (const Vec4& o : raster(blocks[0].origins)) {
    const Glcm g = glcm_for_roi(v.view(), Region4{o, cfg.roi_dims}, dirs, cfg.num_levels);
    const FeatureVector f = compute_features(g, cfg.features, cfg.zero_policy);
    EXPECT_FLOAT_EQ(blocks[0].values[static_cast<std::size_t>(k)],
                    static_cast<float>(f[Feature::AngularSecondMoment]));
    EXPECT_FLOAT_EQ(blocks[3].values[static_cast<std::size_t>(k)],
                    static_cast<float>(f[Feature::InverseDifferenceMoment]));
    ++k;
  }
}

TEST(AnalyzeVolume, FullAndSparseRepresentationsAgree) {
  const Volume4<Level> v = random_volume({7, 6, 4, 3}, 16, 4);
  EngineConfig full = small_config();
  full.num_levels = 16;
  full.features = FeatureSet::all();
  EngineConfig sparse = full;
  sparse.representation = Representation::Sparse;

  const auto a = analyze_volume(v, full);
  const auto b = analyze_volume(v, sparse);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].values.size(), b[i].values.size());
    for (std::size_t j = 0; j < a[i].values.size(); ++j) {
      EXPECT_NEAR(a[i].values[j], b[i].values[j],
                  1e-5 * std::max(1.0f, std::abs(a[i].values[j])))
          << feature_name(a[i].feature) << " @" << j;
    }
  }
}

// Chunking must be invisible: per-chunk analysis reassembles to exactly the
// monolithic result (core out-of-core invariant).
class ChunkingInvisible : public ::testing::TestWithParam<Vec4> {};

TEST_P(ChunkingInvisible, ChunkedEqualsMonolithic) {
  const Vec4 dims{12, 10, 5, 4};
  const Volume4<Level> v = random_volume(dims, 8, 5);
  EngineConfig cfg = small_config();

  const auto mono = analyze_volume(v, cfg);
  const Region4 all = roi_origin_region(dims, cfg.roi_dims);
  const Volume4<float> mono_map =
      assemble_feature_map({&mono[0]}, all);

  const Vec4 chunk_dims = GetParam();
  const auto chunks = partition_overlapping(dims, chunk_dims, cfg.roi_dims);
  EXPECT_GT(chunks.size(), 1u);

  std::vector<std::vector<FeatureBlock>> per_chunk;
  for (const Chunk& c : chunks) {
    Volume4<Level> local(c.region.size);
    copy_region<Level>(v.view(), Region4::whole(dims), local.view(), c.region);
    per_chunk.push_back(analyze_chunk(local.view(), c.region, c.owned_origins, cfg));
  }

  std::vector<const FeatureBlock*> first_feature;
  for (const auto& blocks : per_chunk) first_feature.push_back(&blocks[0]);
  const Volume4<float> chunked_map = assemble_feature_map(first_feature, all);

  ASSERT_EQ(chunked_map.size(), mono_map.size());
  for (std::int64_t i = 0; i < mono_map.size(); ++i) {
    EXPECT_FLOAT_EQ(chunked_map.storage()[static_cast<std::size_t>(i)],
                    mono_map.storage()[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkShapes, ChunkingInvisible,
                         ::testing::Values(Vec4{6, 6, 3, 3}, Vec4{5, 4, 4, 4},
                                           Vec4{12, 10, 3, 3}, Vec4{4, 4, 2, 2}));

TEST(AnalyzeChunk, RejectsViewRegionMismatch) {
  const Volume4<Level> v = random_volume({6, 6, 3, 3}, 8, 6);
  const EngineConfig cfg = small_config();
  EXPECT_THROW(analyze_chunk(v.view(), Region4{{0, 0, 0, 0}, {5, 6, 3, 3}},
                             Region4{{0, 0, 0, 0}, {1, 1, 1, 1}}, cfg),
               std::invalid_argument);
}

TEST(AnalyzeChunk, EmptyOwnedOriginsGiveEmptyBlocks) {
  const Volume4<Level> v = random_volume({6, 6, 3, 3}, 8, 7);
  const EngineConfig cfg = small_config();
  const auto blocks = analyze_chunk(v.view(), Region4::whole(v.dims()),
                                    Region4{{0, 0, 0, 0}, {0, 0, 0, 0}}, cfg);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_TRUE(b.values.empty());
}

TEST(AnalyzeChunk, WorkCountersAccumulate) {
  const Volume4<Level> v = random_volume({6, 6, 3, 3}, 8, 8);
  const EngineConfig cfg = small_config();
  WorkCounters wc{};
  analyze_volume(v, cfg, &wc);
  const std::int64_t n = num_roi_origins(v.dims(), cfg.roi_dims);
  EXPECT_EQ(wc.matrices_built, n);
  EXPECT_GT(wc.glcm_pair_updates, 0);
  EXPECT_GT(wc.feature_cell_ops, 0);
}

TEST(AssembleFeatureMap, FillsMissingWithDefault) {
  FeatureBlock b;
  b.feature = Feature::Contrast;
  b.origins = Region4{{0, 0, 0, 0}, {2, 1, 1, 1}};
  b.values = {1.0f, 2.0f};
  const Region4 all{{0, 0, 0, 0}, {4, 1, 1, 1}};
  const Volume4<float> map = assemble_feature_map({&b}, all, -7.0f);
  EXPECT_FLOAT_EQ(map.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(map.at(1, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(map.at(2, 0, 0, 0), -7.0f);
  EXPECT_FLOAT_EQ(map.at(3, 0, 0, 0), -7.0f);
}

}  // namespace
}  // namespace h4d::haralick
