// A FilterContext capturing emissions for unit-testing filters in isolation.
#pragma once

#include <vector>

#include "fs/filter.hpp"

namespace h4d::fs::testing {

class MockContext final : public FilterContext {
 public:
  explicit MockContext(int copy = 0, int copies = 1) : copy_(copy), copies_(copies) {}

  void emit(int port, BufferPtr buffer) override {
    buffer->header.from_copy = copy_;
    emitted.push_back({port, std::move(buffer)});
  }
  int copy_index() const override { return copy_; }
  int num_copies() const override { return copies_; }
  WorkMeter& meter() override { return meter_; }

  struct Emission {
    int port;
    BufferPtr buffer;
  };
  std::vector<Emission> emitted;
  const WorkMeter& work() const { return meter_; }

  /// Emissions of one buffer kind.
  std::vector<BufferPtr> of_kind(BufferKind kind) const {
    std::vector<BufferPtr> out;
    for (const Emission& e : emitted) {
      if (e.buffer->header.kind == kind) out.push_back(e.buffer);
    }
    return out;
  }

 private:
  int copy_;
  int copies_;
  WorkMeter meter_;
};

}  // namespace h4d::fs::testing
