// Scrub/repair round trips: damage a replicated dataset in controlled ways,
// check the scrub inventory names the damage, and check repair restores a
// CRC-clean dataset with the original bytes.
#include "io/scrub.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "io/dataset.hpp"
#include "json_lite.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

class ScrubRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_scrub_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    vol_ = Volume4<std::uint16_t>({6, 5, 4, 3});
    std::mt19937_64 rng(19);
    std::uniform_int_distribution<int> u(0, 4000);
    for (auto& x : vol_.storage()) x = static_cast<std::uint16_t>(u(rng));
  }
  void TearDown() override { fsys::remove_all(root_); }

  void create(int nodes, int replicas) { DiskDataset::create(root_, vol_, nodes, replicas); }

  fsys::path slice_path(int node, std::int64_t t, std::int64_t z) const {
    return root_ / node_dir_name(node) / slice_filename(t, z);
  }

  void flip_byte(const fsys::path& p, std::int64_t offset) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << p;
    f.seekg(offset);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(offset);
    f.write(&c, 1);
  }

  // Rewrite a node's index without the CRC column (pre-checksum format).
  void strip_checksums(int node) {
    const fsys::path index = root_ / node_dir_name(node) / kIndexFileName;
    std::ifstream in(index);
    ASSERT_TRUE(in.is_open()) << index;
    std::ostringstream kept;
    std::int64_t t = 0, z = 0;
    std::string filename, crc;
    while (in >> t >> z >> filename) {
      std::getline(in, crc);  // drop the rest of the line
      kept << t << ' ' << z << ' ' << filename << '\n';
    }
    in.close();
    std::ofstream out(index, std::ios::trunc);
    out << kept.str();
  }

  void expect_intact() {
    const auto back = DiskDataset::open(root_).read_all();
    EXPECT_EQ(back.storage(), vol_.storage());
  }

  fsys::path root_;
  Volume4<std::uint16_t> vol_{Vec4{1, 1, 1, 1}};
};

TEST_F(ScrubRepairTest, CleanDatasetScrubsClean) {
  create(3, 2);
  const ScrubReport r = scrub_dataset(root_);
  EXPECT_TRUE(r.clean()) << r.summary();
  EXPECT_EQ(r.slices_checked, 12);
  EXPECT_EQ(r.copies_expected, 24);
  EXPECT_EQ(r.copies_verified, 24);
  EXPECT_EQ(r.copies_unverified, 0);
}

TEST_F(ScrubRepairTest, BitFlipIsDetectedAndRepaired) {
  create(3, 2);
  flip_byte(slice_path(0, 0, 0), 7);

  const ScrubReport before = scrub_dataset(root_);
  ASSERT_EQ(before.findings.size(), 1u) << before.summary();
  EXPECT_EQ(before.findings[0].kind, ScrubDefect::ChecksumMismatch);
  EXPECT_EQ(before.findings[0].t, 0);
  EXPECT_EQ(before.findings[0].z, 0);
  EXPECT_EQ(before.findings[0].node, 0);
  EXPECT_EQ(before.copies_verified, 23);

  const RepairReport repair = repair_dataset(root_);
  EXPECT_TRUE(repair.complete()) << repair.summary();
  EXPECT_EQ(repair.copies_recloned, 1);

  EXPECT_TRUE(scrub_dataset(root_).clean());
  expect_intact();
}

TEST_F(ScrubRepairTest, TruncatedCopyIsDetectedAndRepaired) {
  create(3, 2);
  fsys::resize_file(slice_path(1, 1, 2), 10);

  const ScrubReport before = scrub_dataset(root_);
  ASSERT_EQ(before.findings.size(), 1u) << before.summary();
  EXPECT_EQ(before.findings[0].kind, ScrubDefect::SizeMismatch);

  EXPECT_TRUE(repair_dataset(root_).complete());
  EXPECT_TRUE(scrub_dataset(root_).clean());
  expect_intact();
}

TEST_F(ScrubRepairTest, DeletedCopyIsDetectedAndRepaired) {
  create(3, 2);
  // Slice (t=0, z=2) is global slice 2: rank-0 copy on node 2.
  ASSERT_TRUE(fsys::remove(slice_path(2, 0, 2)));

  const ScrubReport before = scrub_dataset(root_);
  ASSERT_EQ(before.findings.size(), 1u) << before.summary();
  EXPECT_EQ(before.findings[0].kind, ScrubDefect::MissingCopy);

  const RepairReport repair = repair_dataset(root_);
  EXPECT_TRUE(repair.complete());
  EXPECT_EQ(repair.copies_recloned, 1);
  EXPECT_TRUE(scrub_dataset(root_).clean());
  expect_intact();
}

TEST_F(ScrubRepairTest, LostNodeDirectoryIsRebuiltWithIndex) {
  create(3, 2);
  fsys::remove_all(root_ / node_dir_name(1));

  const ScrubReport before = scrub_dataset(root_);
  EXPECT_FALSE(before.clean());
  bool node_level = false;
  for (const ScrubFinding& f : before.findings) {
    if (f.kind == ScrubDefect::MissingNodeDir && f.node == 1) node_level = true;
  }
  EXPECT_TRUE(node_level) << before.summary();

  const RepairReport repair = repair_dataset(root_);
  EXPECT_TRUE(repair.complete()) << repair.summary();
  EXPECT_GE(repair.indexes_rebuilt, 1);
  EXPECT_GT(repair.copies_recloned, 0);

  const ScrubReport after = scrub_dataset(root_);
  EXPECT_TRUE(after.clean()) << after.summary();
  EXPECT_EQ(after.copies_verified, 24);
  expect_intact();
}

TEST_F(ScrubRepairTest, RepairIsIdempotent) {
  create(3, 2);
  // Slice (t=0, z=1) is global slice 1: replicas on nodes 1 and 2.
  ASSERT_TRUE(fsys::remove(slice_path(1, 0, 1)));
  EXPECT_TRUE(repair_dataset(root_).complete());
  const RepairReport second = repair_dataset(root_);
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.copies_recloned, 0);
  EXPECT_EQ(second.indexes_rebuilt, 0);
}

TEST_F(ScrubRepairTest, UnreplicatedCorruptionIsUnrepairable) {
  create(3, 1);
  flip_byte(slice_path(0, 0, 0), 3);

  const RepairReport repair = repair_dataset(root_);
  EXPECT_FALSE(repair.complete());
  ASSERT_EQ(repair.unrepairable.size(), 1u);
  EXPECT_EQ(repair.unrepairable[0].t, 0);
  EXPECT_EQ(repair.unrepairable[0].z, 0);
  // The damaged copy is never laundered into a "repaired" state: the scrub
  // still reports the mismatch.
  EXPECT_FALSE(scrub_dataset(root_).clean());
}

TEST_F(ScrubRepairTest, ScrubJsonInventoryIsWellFormed) {
  create(2, 2);
  flip_byte(slice_path(0, 1, 1), 0);
  const ScrubReport r = scrub_dataset(root_);
  std::ostringstream os;
  r.write_json(os);
  testing::json::Value doc;
  ASSERT_NO_THROW(doc = testing::json::Parser(os.str()).parse());
  EXPECT_EQ(doc.at("schema").str(), "h4d-scrub-v1");
  EXPECT_EQ(doc.at("slices_checked").num(), 12.0);
  EXPECT_EQ(doc.at("clean").boolean, false);
  const auto& findings = doc.at("findings").array;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].at("kind").str(), "checksum_mismatch");
  EXPECT_EQ(findings[0].at("t").num(), 1.0);
  EXPECT_EQ(findings[0].at("z").num(), 1.0);
}

TEST_F(ScrubRepairTest, AddChecksumsBackfillsPreChecksumIndexes) {
  create(3, 2);
  for (int n = 0; n < 3; ++n) strip_checksums(n);

  const ScrubReport before = scrub_dataset(root_);
  EXPECT_TRUE(before.clean()) << before.summary();  // whole, just unverifiable
  EXPECT_EQ(before.copies_verified, 0);
  EXPECT_EQ(before.copies_unverified, 24);

  const ChecksumMigrationReport mig = add_checksums(root_);
  EXPECT_EQ(mig.entries_backfilled, 24);
  EXPECT_EQ(mig.slices_divergent, 0);

  const ScrubReport after = scrub_dataset(root_);
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.copies_verified, 24);
  EXPECT_EQ(after.copies_unverified, 0);
  expect_intact();

  // Idempotent: nothing left to backfill.
  EXPECT_EQ(add_checksums(root_).entries_backfilled, 0);
}

TEST_F(ScrubRepairTest, AddChecksumsSkipsDivergentSlices) {
  create(2, 2);
  for (int n = 0; n < 2; ++n) strip_checksums(n);
  flip_byte(slice_path(0, 0, 0), 5);  // replicas now disagree, no CRC arbitrates

  const ChecksumMigrationReport mig = add_checksums(root_);
  EXPECT_EQ(mig.slices_divergent, 1);
  // 12 slices, 2 copies each; the divergent slice's 2 entries are skipped.
  EXPECT_EQ(mig.entries_backfilled, 22);
}

}  // namespace
}  // namespace h4d::io
