#include "nd/quantize.hpp"

#include <gtest/gtest.h>

#include <random>

namespace h4d {
namespace {

TEST(EqualizedQuantizer, RejectsBadArguments) {
  EXPECT_THROW(EqualizedQuantizer({}, 4), std::invalid_argument);
  EXPECT_THROW(EqualizedQuantizer({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(EqualizedQuantizer({1.0}, 300), std::invalid_argument);
}

TEST(EqualizedQuantizer, UniformSamplesGiveEqualBins) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(i);
  const EqualizedQuantizer q(samples, 4);
  int hist[4] = {};
  for (double v : samples) hist[q(v)]++;
  for (int h : hist) EXPECT_NEAR(h, 250, 2);
}

TEST(EqualizedQuantizer, SkewedDistributionStillBalanced) {
  // Heavily skewed data: linear min/max quantization would put almost
  // everything into the bottom level; equalization balances the levels.
  std::mt19937_64 rng(1);
  std::exponential_distribution<double> expo(1.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(expo(rng));

  const EqualizedQuantizer eq(samples, 8);
  const auto [lo, hi] = std::pair{*std::min_element(samples.begin(), samples.end()),
                                  *std::max_element(samples.begin(), samples.end())};
  const Quantizer linear(lo, hi, 8);

  int eq_hist[8] = {}, lin_hist[8] = {};
  for (double v : samples) {
    eq_hist[eq(v)]++;
    lin_hist[linear(v)]++;
  }
  // Linear: bottom level dominated; equalized: every level populated evenly.
  EXPECT_GT(lin_hist[0], 10000);
  for (int h : eq_hist) {
    EXPECT_GT(h, 20000 / 8 / 2);
    EXPECT_LT(h, 20000 / 8 * 2);
  }
}

TEST(EqualizedQuantizer, MonotoneMapping) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> norm(100.0, 15.0);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(norm(rng));
  const EqualizedQuantizer q(samples, 32);
  Level prev = q(-1e9);
  for (double v = 40; v <= 160; v += 0.5) {
    const Level l = q(v);
    EXPECT_GE(l, prev);
    prev = l;
  }
  EXPECT_EQ(q(-1e9), 0);
  EXPECT_EQ(q(1e9), 31);
}

TEST(EqualizedQuantizer, ConstantSamplesMapToZero) {
  const EqualizedQuantizer q(std::vector<double>(100, 7.0), 16);
  EXPECT_EQ(q(7.0), 0);  // all thresholds equal 7; upper_bound(7) == begin
  EXPECT_EQ(q(6.0), 0);
  EXPECT_EQ(q(8.0), 15);
}

TEST(EqualizedQuantizer, ScaleInvarianceOfLevels) {
  // Gain drift: scaling all intensities by a constant must not change the
  // level assignment when the quantizer is rebuilt from the scaled data —
  // the robustness property motivating equalization.
  std::mt19937_64 rng(3);
  std::lognormal_distribution<double> dist(3.0, 0.5);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(dist(rng));
  std::vector<double> scaled;
  for (double v : samples) scaled.push_back(v * 1.37);

  const EqualizedQuantizer a(samples, 16);
  const EqualizedQuantizer b(scaled, 16);
  for (std::size_t i = 0; i < samples.size(); i += 7) {
    EXPECT_EQ(a(samples[i]), b(samples[i] * 1.37));
  }
}

TEST(EqualizedQuantizer, ThresholdCountAndOrder) {
  std::vector<double> samples{5, 1, 3, 2, 4, 9, 7, 8, 6, 0};
  const EqualizedQuantizer q(samples, 5);
  ASSERT_EQ(q.thresholds().size(), 4u);
  EXPECT_TRUE(std::is_sorted(q.thresholds().begin(), q.thresholds().end()));
}

}  // namespace
}  // namespace h4d
