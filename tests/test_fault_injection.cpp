// Resilience layer: deterministic fault injection, retry/backoff, graceful
// degradation, and end-to-end pipeline behavior under injected storage
// faults (retry must be bit-identical to a fault-free run; skip_and_fill
// must complete with an exact damage inventory).
#include "io/fault.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <random>
#include <set>

#include "core/analysis.hpp"
#include "io/dataset.hpp"
#include "io/phantom.hpp"
#include "io/resilient_reader.hpp"
#include "nd/chunking.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

TEST(Crc32, KnownAnswer) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, Chainable) {
  const char* s = "haralick4d";
  const std::uint32_t whole = crc32(s, 10);
  const std::uint32_t part = crc32(s, 4);
  EXPECT_EQ(crc32(s + 4, 6, part), whole);
}

TEST(FaultConfig, ParseRoundTrip) {
  const FaultConfig cfg =
      FaultConfig::parse("seed=42,open=0.1,read=0.2,corrupt=0.05,stall=0.01,max_transient=3");
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.p_fail_open, 0.1);
  EXPECT_DOUBLE_EQ(cfg.p_short_read, 0.2);
  EXPECT_DOUBLE_EQ(cfg.p_corrupt, 0.05);
  EXPECT_DOUBLE_EQ(cfg.p_stall, 0.01);
  EXPECT_EQ(cfg.max_transient_per_slice, 3);
  EXPECT_TRUE(cfg.enabled());
  EXPECT_FALSE(FaultConfig::parse("").enabled());
  EXPECT_THROW(FaultConfig::parse("open=2.0"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("bogus=1"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("open"), std::runtime_error);
}

TEST(FaultConfig, ParseStallCap) {
  const FaultConfig cfg = FaultConfig::parse("stall=0.5,stall_ms=3,stall_cap=2");
  EXPECT_DOUBLE_EQ(cfg.stall_ms, 3.0);
  EXPECT_DOUBLE_EQ(cfg.stall_cap_ms, 2.0);
}

// A NaN or negative duration/budget would silently disable the stall cap or
// poison the deterministic schedule, so parse rejects them with the same
// typed error as a non-number.
TEST(FaultConfig, ParseRejectsNegativeAndNaNValues) {
  for (const char* bad : {"stall_ms=-1", "stall_ms=nan", "stall_ms=x",
                          "stall_cap=-0.5", "stall_cap=nan",
                          "max_transient=-2", "max_transient=many"}) {
    EXPECT_THROW(FaultConfig::parse(bad), std::runtime_error) << bad;
  }
  try {
    FaultConfig::parse("stall_ms=-1");
    FAIL() << "expected a typed parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad fault spec value for stall_ms"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultConfig, ParseTailKeysRoundTrip) {
  const FaultConfig cfg = FaultConfig::parse(
      "stall=1,stall_ms=2,stall_dist=pareto,pareto_alpha=1.2,slow_nodes=0:16;2:4");
  EXPECT_EQ(cfg.stall_dist, StallDist::Pareto);
  EXPECT_DOUBLE_EQ(cfg.pareto_alpha, 1.2);
  ASSERT_EQ(cfg.slow_nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.slow_nodes.at(0), 16.0);
  EXPECT_DOUBLE_EQ(cfg.slow_nodes.at(2), 4.0);
  // str() round-trips the tail shape (the defaults elide it).
  const FaultConfig again = FaultConfig::parse(cfg.str());
  EXPECT_EQ(again.stall_dist, StallDist::Pareto);
  EXPECT_DOUBLE_EQ(again.pareto_alpha, 1.2);
  EXPECT_EQ(again.slow_nodes, cfg.slow_nodes);
  EXPECT_EQ(FaultConfig::parse("").stall_dist, StallDist::Fixed);
  for (const char* bad : {"stall_dist=bogus", "pareto_alpha=0", "pareto_alpha=-1",
                          "pareto_alpha=nan", "slow_nodes=0", "slow_nodes=-1:2",
                          "slow_nodes=0:-2", "slow_nodes=0:nan", "slow_nodes=a:b"}) {
    EXPECT_THROW(FaultConfig::parse(bad), std::runtime_error) << bad;
  }
}

TEST(FaultInjector, StallSleepIsCappedAndCounted) {
  // A mis-typed stall_ms=60000 must not block the process for a minute per
  // fault: the real sleep is clipped to stall_cap_ms, and the clip counted.
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.p_stall = 1.0;
  cfg.stall_ms = 60000.0;
  cfg.stall_cap_ms = 5.0;
  FaultInjector inj(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const AttemptPlan plan = inj.plan_attempt(0, 0);
  EXPECT_TRUE(plan.stall);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
  EXPECT_EQ(inj.stats().stalls.load(), 1);
  EXPECT_EQ(inj.stats().stalls_capped.load(), 1);
}

TEST(FaultInjector, StallsBelowCapAreNotCounted) {
  FaultConfig cfg;
  cfg.p_stall = 1.0;
  cfg.stall_ms = 1.0;  // well under the 25 ms default cap
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.plan_attempt(0, 0).stall);
  EXPECT_EQ(inj.stats().stalls.load(), 1);
  EXPECT_EQ(inj.stats().stalls_capped.load(), 0);
}

TEST(FaultInjector, SeededDecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.p_fail_open = 0.3;
  cfg.p_short_read = 0.3;
  cfg.p_corrupt = 0.5;
  cfg.really_sleep = false;

  FaultInjector a(cfg), b(cfg);
  for (std::int64_t t = 0; t < 8; ++t) {
    for (std::int64_t z = 0; z < 8; ++z) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        const AttemptPlan pa = a.plan_attempt(t, z);
        const AttemptPlan pb = b.plan_attempt(t, z);
        EXPECT_EQ(pa.fail_open, pb.fail_open) << t << "," << z << "#" << attempt;
        EXPECT_EQ(pa.short_read, pb.short_read) << t << "," << z << "#" << attempt;
      }
      EXPECT_EQ(a.is_slice_corrupted(t, z), b.is_slice_corrupted(t, z));
    }
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
  FaultConfig ca, cb;
  ca.p_corrupt = cb.p_corrupt = 0.5;
  ca.seed = 1;
  cb.seed = 2;
  const FaultInjector a(ca), b(cb);
  int differing = 0;
  for (std::int64_t s = 0; s < 256; ++s) {
    if (a.is_slice_corrupted(0, s) != b.is_slice_corrupted(0, s)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, CorruptionIsStickyAcrossAttempts) {
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.p_corrupt = 0.5;
  FaultInjector inj(cfg);
  for (std::int64_t z = 0; z < 32; ++z) {
    const bool first = inj.is_slice_corrupted(0, z);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(inj.is_slice_corrupted(0, z), first);
  }
}

TEST(FaultInjector, CorruptionChangesBytesDeterministically) {
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.p_corrupt = 1.0;
  FaultInjector inj(cfg), inj2(cfg);
  std::vector<std::uint8_t> buf(64, 0xEE), buf2(64, 0xEE);
  inj.apply_corruption(1, 2, buf.data(), buf.size());
  inj2.apply_corruption(1, 2, buf2.data(), buf2.size());
  EXPECT_EQ(buf, buf2);  // same damage on every read
  EXPECT_NE(buf, std::vector<std::uint8_t>(64, 0xEE));  // guaranteed damage
}

TEST(FaultInjector, TransientFaultsStopAfterBudget) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.p_fail_open = 1.0;  // every attempt would fail...
  cfg.max_transient_per_slice = 2;  // ...but only twice per slice
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.plan_attempt(0, 0).fail_open);
  EXPECT_TRUE(inj.plan_attempt(0, 0).fail_open);
  EXPECT_FALSE(inj.plan_attempt(0, 0).fail_open);
  EXPECT_FALSE(inj.plan_attempt(0, 0).fail_open);
  EXPECT_EQ(inj.attempts(0, 0), 4);
  // Other slices have their own budget.
  EXPECT_TRUE(inj.plan_attempt(0, 1).fail_open);
}

// The modeled Pareto stall length is a pure hash of (seed, slice, attempt):
// two injectors with the same config agree exactly, and the per-node slow
// multiplier scales the modeled duration without changing any decision.
TEST(FaultInjector, ParetoStallsAreDeterministicAndNodeScaled) {
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.p_stall = 1.0;
  cfg.stall_ms = 2.0;
  cfg.stall_dist = StallDist::Pareto;
  cfg.pareto_alpha = 1.5;
  cfg.slow_nodes[1] = 16.0;
  cfg.really_sleep = false;
  FaultInjector a(cfg), b(cfg);
  bool saw_tail = false;
  for (std::int64_t z = 0; z < 32; ++z) {
    const AttemptPlan pa = a.plan_attempt(0, z, /*node=*/0);
    const AttemptPlan pb = b.plan_attempt(0, z, /*node=*/0);
    ASSERT_TRUE(pa.stall);
    EXPECT_DOUBLE_EQ(pa.stall_ms, pb.stall_ms) << "z=" << z;
    EXPECT_GE(pa.stall_ms, cfg.stall_ms);  // Pareto multiplier is >= 1
    if (pa.stall_ms > 4.0 * cfg.stall_ms) saw_tail = true;
    // Same (slice, attempt) on the slow node: exactly 16x the modeled stall.
    const AttemptPlan pslow = b.plan_attempt(0, z, /*node=*/1);
    EXPECT_DOUBLE_EQ(pslow.stall_ms, 16.0 * a.plan_attempt(0, z, 0).stall_ms);
  }
  EXPECT_TRUE(saw_tail) << "heavy tail must produce outliers";
}

TEST(RetryPolicy, BackoffIsExponentialAndBounded) {
  RetryPolicy p;
  p.backoff_base_ms = 2.0;
  p.backoff_factor = 3.0;
  p.backoff_max_ms = 20.0;
  EXPECT_DOUBLE_EQ(p.backoff_ms(0), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(1), 6.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(2), 18.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(3), 20.0);  // capped
  double prev = 0.0;
  for (int r = 0; r < 40; ++r) {
    const double ms = p.backoff_ms(r);
    EXPECT_GE(ms, prev);
    EXPECT_LE(ms, p.backoff_max_ms);
    prev = ms;
  }
}

// The total budget spans every attempt of one slice read: individual delays
// are clipped to whatever remains (flagged as clipped), and once the budget
// is spent every further delay is a counted zero.
TEST(RetryPolicy, TotalBackoffBudgetClipsDelays) {
  RetryPolicy p;
  p.backoff_base_ms = 4.0;
  p.backoff_factor = 2.0;
  p.backoff_max_ms = 64.0;
  p.total_backoff_cap_ms = 10.0;
  bool clipped = true;
  EXPECT_DOUBLE_EQ(p.capped_backoff_ms(0, 0.0, clipped), 4.0);
  EXPECT_FALSE(clipped);  // 4 fits in the remaining 10
  EXPECT_DOUBLE_EQ(p.capped_backoff_ms(1, 4.0, clipped), 6.0);
  EXPECT_TRUE(clipped);   // wanted 8, only 6 left
  EXPECT_DOUBLE_EQ(p.capped_backoff_ms(2, 10.0, clipped), 0.0);
  EXPECT_TRUE(clipped);   // budget exhausted: counted zero
  // Simulated retry sequence never sleeps past the budget in total.
  double spent = 0.0;
  for (int r = 0; r < 20; ++r) {
    bool c = false;
    spent += p.capped_backoff_ms(r, spent, c);
    EXPECT_LE(spent, p.total_backoff_cap_ms);
  }
  EXPECT_DOUBLE_EQ(spent, p.total_backoff_cap_ms);
}

class ResilientReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_fault_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    vol_ = Volume4<std::uint16_t>({6, 5, 4, 3});
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<int> u(0, 3000);
    for (auto& x : vol_.storage()) x = static_cast<std::uint16_t>(u(rng));
  }
  void TearDown() override { fsys::remove_all(root_); }

  static ResilienceConfig fast_retry(DegradePolicy policy, int max_attempts = 4) {
    ResilienceConfig rc;
    rc.policy = policy;
    rc.retry.max_attempts = max_attempts;
    rc.retry.really_sleep = false;
    return rc;
  }

  fsys::path root_;
  Volume4<std::uint16_t> vol_{Vec4{1, 1, 1, 1}};
};

// bytes_read() counts only bytes that reached the caller: retried attempts
// and irrecoverable slices contribute nothing (the raw attempt traffic is
// attempted_bytes_read()). Pins the delivered-bytes semantics under faults.
TEST_F(ResilientReadTest, BytesReadCountsOnlyDeliveredBytes) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  const std::int64_t slice_bytes = 6 * 5 * 2;  // full-slice rects below

  {  // Healthy: delivered == attempted == one slice per read.
    ResilientReader reader(ds.node_reader(0), fast_retry(DegradePolicy::Retry));
    std::vector<std::uint16_t> out(6 * 5);
    for (const SliceRef& s : reader.slices()) {
      EXPECT_TRUE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
    }
    const auto n = static_cast<std::int64_t>(reader.slices().size());
    EXPECT_EQ(reader.bytes_read(), n * slice_bytes);
    EXPECT_EQ(reader.attempted_bytes_read(), n * slice_bytes);
  }
  {  // Transient short reads: the failed attempts' bytes never reach the
     // caller, so delivered stays exactly one slice per slice while the raw
     // attempt traffic runs ahead. (This is the double-count regression pin:
     // retried slices must not count twice.)
    FaultConfig fc;
    fc.seed = 3;
    fc.p_short_read = 1.0;
    fc.max_transient_per_slice = 1;
    fc.really_sleep = false;
    FaultInjector inj(fc);
    ResilientReader reader(ds.node_reader(0), fast_retry(DegradePolicy::Retry), &inj);
    std::vector<std::uint16_t> out(6 * 5);
    for (const SliceRef& s : reader.slices()) {
      EXPECT_TRUE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
    }
    const auto n = static_cast<std::int64_t>(reader.slices().size());
    EXPECT_GT(reader.report().read_retries, 0);
    EXPECT_EQ(reader.bytes_read(), n * slice_bytes);
    EXPECT_GE(reader.attempted_bytes_read(), n * slice_bytes);
  }
  {  // Irrecoverable (sticky corruption, no replica to fail over to): the
     // fill_value output delivers nothing; the wasted traffic still shows
     // in attempted_bytes_read().
    FaultConfig fc;
    fc.seed = 5;
    fc.p_corrupt = 1.0;
    fc.really_sleep = false;
    FaultInjector inj(fc);
    ResilienceConfig rc = fast_retry(DegradePolicy::SkipAndFill, 2);
    rc.fill_value = 99;
    ResilientReader reader(ds.node_reader(0), rc, &inj);
    std::vector<std::uint16_t> out(6 * 5);
    for (const SliceRef& s : reader.slices()) {
      EXPECT_FALSE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
    }
    EXPECT_EQ(reader.bytes_read(), 0);
    EXPECT_GT(reader.attempted_bytes_read(), 0);
  }
}

TEST_F(ResilientReadTest, RetriesUntilSuccessAndReportsRecovery) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);

  FaultConfig fc;
  fc.seed = 1;
  fc.p_fail_open = 1.0;
  fc.max_transient_per_slice = 2;  // first two attempts of each slice fail
  fc.really_sleep = false;
  FaultInjector inj(fc);

  ResilientReader reader(ds.node_reader(0), fast_retry(DegradePolicy::Retry), &inj);
  const SliceRef& s = reader.slices().front();
  std::vector<std::uint16_t> out(6 * 5);
  EXPECT_TRUE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
  for (std::int64_t y = 0; y < 5; ++y)
    for (std::int64_t x = 0; x < 6; ++x) {
      EXPECT_EQ(out[static_cast<std::size_t>(y * 6 + x)], vol_.at(x, y, s.z, s.t));
    }
  EXPECT_EQ(reader.report().read_retries, 2);
  EXPECT_EQ(reader.report().slices_recovered, 1);
  EXPECT_EQ(reader.report().slices_skipped, 0);
}

TEST_F(ResilientReadTest, FailFastDoesNotRetry) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  FaultConfig fc;
  fc.seed = 1;
  fc.p_fail_open = 1.0;
  FaultInjector inj(fc);
  ResilientReader reader(ds.node_reader(0), fast_retry(DegradePolicy::FailFast), &inj);
  const SliceRef s = reader.slices().front();
  std::vector<std::uint16_t> out(6 * 5);
  EXPECT_THROW(reader.read_slice_region(s, 0, 0, 6, 5, out.data()), std::runtime_error);
  EXPECT_EQ(inj.attempts(s.t, s.z), 1);  // exactly one attempt, no retries
  EXPECT_EQ(reader.report().read_retries, 0);
}

TEST_F(ResilientReadTest, RetryExhaustionPropagates) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  FaultConfig fc;
  fc.seed = 1;
  fc.p_fail_open = 1.0;  // unbounded transient budget: never recovers
  FaultInjector inj(fc);
  ResilientReader reader(ds.node_reader(0), fast_retry(DegradePolicy::Retry, 3), &inj);
  const SliceRef s = reader.slices().front();
  std::vector<std::uint16_t> out(6 * 5);
  try {
    reader.read_slice_region(s, 0, 0, 6, 5, out.data());
    FAIL() << "expected exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3 attempts"), std::string::npos) << e.what();
  }
  EXPECT_EQ(reader.report().read_retries, 2);
}

// Budget clips are counted in the report (bookkeeping, not a fault): with a
// 10 ms budget and 4/8/16/32/64 wanted delays, exactly the last four clip.
TEST_F(ResilientReadTest, BackoffBudgetClipsAreCountedInReport) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  FaultConfig fc;
  fc.seed = 2;
  fc.p_fail_open = 1.0;  // unbounded transient budget: never recovers
  fc.really_sleep = false;
  FaultInjector inj(fc);
  ResilienceConfig rc = fast_retry(DegradePolicy::SkipAndFill, 6);
  rc.retry.backoff_base_ms = 4.0;
  rc.retry.backoff_factor = 2.0;
  rc.retry.backoff_max_ms = 64.0;
  rc.retry.total_backoff_cap_ms = 10.0;
  ResilientReader reader(ds.node_reader(0), rc, &inj);
  const SliceRef& s = reader.slices().front();
  std::vector<std::uint16_t> out(6 * 5);
  EXPECT_FALSE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
  EXPECT_EQ(reader.report().read_retries, 5);
  EXPECT_EQ(reader.report().backoffs_capped, 4);
  EXPECT_EQ(reader.report().slices_skipped, 1);
  // Clips are bookkeeping: a clean() report never depends on them.
  FaultReport r;
  r.backoffs_capped = 3;
  EXPECT_TRUE(r.clean());
}

TEST_F(ResilientReadTest, SkipAndFillProducesCompleteVolumeAndExactReport) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 2);

  FaultConfig fc;
  fc.seed = 17;
  fc.p_corrupt = 0.4;  // sticky: checksum verification must catch these
  fc.really_sleep = false;
  FaultInjector inj(fc);

  // The expected damage inventory is exactly the injector's sticky set.
  std::set<std::pair<std::int64_t, std::int64_t>> expected;
  for (std::int64_t t = 0; t < vol_.dims()[3]; ++t)
    for (std::int64_t z = 0; z < vol_.dims()[2]; ++z) {
      if (inj.is_slice_corrupted(t, z)) expected.insert({t, z});
    }
  ASSERT_FALSE(expected.empty()) << "seed must corrupt at least one slice";
  ASSERT_LT(expected.size(), static_cast<std::size_t>(vol_.dims()[2] * vol_.dims()[3]));

  ResilienceConfig rc = fast_retry(DegradePolicy::SkipAndFill, 2);
  rc.fill_value = 1234;
  FaultReport report;
  const Volume4<std::uint16_t> got =
      ds.read_region(Region4::whole(vol_.dims()), rc, &inj, &report);

  ASSERT_EQ(got.dims(), vol_.dims());  // complete volume despite the damage
  for (std::int64_t t = 0; t < vol_.dims()[3]; ++t)
    for (std::int64_t z = 0; z < vol_.dims()[2]; ++z) {
      const bool bad = expected.count({t, z}) != 0;
      for (std::int64_t y = 0; y < vol_.dims()[1]; ++y)
        for (std::int64_t x = 0; x < vol_.dims()[0]; ++x) {
          if (bad) {
            ASSERT_EQ(got.at(x, y, z, t), 1234) << "t=" << t << " z=" << z;
          } else {
            ASSERT_EQ(got.at(x, y, z, t), vol_.at(x, y, z, t)) << "t=" << t << " z=" << z;
          }
        }
    }

  std::set<std::pair<std::int64_t, std::int64_t>> reported;
  for (const SkippedSlice& s : report.skipped) reported.insert({s.t, s.z});
  EXPECT_EQ(reported, expected);
  EXPECT_EQ(report.slices_skipped, static_cast<std::int64_t>(expected.size()));
  EXPECT_EQ(static_cast<std::size_t>(report.slices_skipped), report.skipped.size());
  EXPECT_GE(report.checksum_failures, report.slices_skipped);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.summary().find("skipped"), std::string::npos);
}

struct FaultE2E : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_fault_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    PhantomConfig pcfg;
    pcfg.dims = {16, 14, 5, 4};
    pcfg.num_tumors = 1;
    pcfg.seed = 13;
    phantom_ = generate_phantom(pcfg).volume;
    DiskDataset::create(root_, phantom_, 2);
  }
  void TearDown() override { fsys::remove_all(root_); }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.dataset_root = root_;
    cfg.engine.roi_dims = {5, 5, 3, 3};
    cfg.engine.num_levels = 16;
    cfg.engine.features = haralick::FeatureSet::paper_eval();
    cfg.texture_chunk = {10, 10, 4, 3};
    cfg.rfr_copies = 2;
    cfg.variant = core::Variant::HMP;
    cfg.hmp_copies = 2;
    cfg.resilience.retry.really_sleep = false;
    return cfg;
  }

  fsys::path root_;
  Volume4<std::uint16_t> phantom_{Vec4{1, 1, 1, 1}};
};

TEST_F(FaultE2E, RetryPolicyIsBitIdenticalToFaultFreeRun) {
  const core::AnalysisResult clean = core::analyze_threaded(config());
  ASSERT_TRUE(clean.faults.clean());

  core::PipelineConfig cfg = config();
  cfg.faults.seed = 29;
  cfg.faults.p_fail_open = 0.25;
  cfg.faults.p_short_read = 0.25;
  cfg.faults.max_transient_per_slice = 2;
  cfg.faults.really_sleep = false;
  cfg.resilience.policy = io::DegradePolicy::Retry;
  cfg.resilience.retry.max_attempts = 4;  // > transient budget: must recover
  const core::AnalysisResult faulty = core::analyze_threaded(cfg);

  EXPECT_GT(faulty.faults.read_retries, 0);
  EXPECT_GT(faulty.faults.slices_recovered, 0);
  EXPECT_EQ(faulty.faults.slices_skipped, 0);

  ASSERT_EQ(clean.maps.size(), faulty.maps.size());
  for (const auto& [feature, map] : clean.maps) {
    ASSERT_EQ(map.storage(), faulty.maps.at(feature).storage())
        << haralick::feature_name(feature);
  }

  // The retries surfaced in the executor's work meters too.
  std::int64_t metered_retries = 0;
  for (const auto& c : faulty.stats.copies) metered_retries += c.meter.read_retries;
  EXPECT_EQ(metered_retries, faulty.faults.read_retries);
}

TEST_F(FaultE2E, SkipAndFillCompletesWithExactDamageInventory) {
  core::PipelineConfig cfg = config();
  cfg.faults.seed = 47;
  cfg.faults.p_corrupt = 0.2;
  cfg.faults.really_sleep = false;
  cfg.resilience.policy = io::DegradePolicy::SkipAndFill;
  cfg.resilience.retry.max_attempts = 2;

  FaultInjector oracle(cfg.faults);
  std::set<std::pair<std::int64_t, std::int64_t>> expected;
  for (std::int64_t t = 0; t < phantom_.dims()[3]; ++t)
    for (std::int64_t z = 0; z < phantom_.dims()[2]; ++z) {
      if (oracle.is_slice_corrupted(t, z)) expected.insert({t, z});
    }
  ASSERT_FALSE(expected.empty()) << "seed must corrupt at least one slice";

  const core::AnalysisResult r = core::analyze_threaded(cfg);  // must complete
  std::set<std::pair<std::int64_t, std::int64_t>> reported;
  for (const SkippedSlice& s : r.faults.skipped) reported.insert({s.t, s.z});
  EXPECT_EQ(reported, expected);
  EXPECT_EQ(r.faults.slices_skipped, static_cast<std::int64_t>(expected.size()));
  EXPECT_GT(r.faults.checksum_failures, 0);

  std::int64_t metered_skips = 0, metered_checksum = 0;
  for (const auto& c : r.stats.copies) {
    metered_skips += c.meter.slices_skipped;
    metered_checksum += c.meter.checksum_failures;
  }
  EXPECT_EQ(metered_skips, r.faults.slices_skipped);
  EXPECT_EQ(metered_checksum, r.faults.checksum_failures);

  // Maps still cover every ROI origin (the run really did complete).
  const Region4 origins =
      roi_origin_region(phantom_.dims(), cfg.engine.roi_dims);
  for (const auto& [feature, map] : r.maps) {
    EXPECT_EQ(map.dims(), origins.size) << haralick::feature_name(feature);
  }
}

}  // namespace
}  // namespace h4d::io
