#include "nd/volume4.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace h4d {
namespace {

Volume4<int> make_counting(Vec4 dims) {
  Volume4<int> v(dims);
  std::iota(v.storage().begin(), v.storage().end(), 0);
  return v;
}

TEST(Volume4, ConstructsWithFill) {
  Volume4<int> v({2, 3, 4, 5}, 7);
  EXPECT_EQ(v.size(), 120);
  EXPECT_EQ(v.at(0, 0, 0, 0), 7);
  EXPECT_EQ(v.at(1, 2, 3, 4), 7);
}

TEST(Volume4, RejectsNonPositiveDims) {
  EXPECT_THROW(Volume4<int>({0, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(Volume4<int>({1, 1, -2, 1}), std::invalid_argument);
}

TEST(Volume4, AtMatchesLinearLayout) {
  const Volume4<int> v = make_counting({3, 4, 5, 6});
  for (std::int64_t t = 0; t < 6; ++t)
    for (std::int64_t z = 0; z < 5; ++z)
      for (std::int64_t y = 0; y < 4; ++y)
        for (std::int64_t x = 0; x < 3; ++x) {
          EXPECT_EQ(v.at(x, y, z, t), linear_index({x, y, z, t}, v.dims()));
        }
}

TEST(Vol4View, SubviewSharesStorage) {
  Volume4<int> v = make_counting({4, 4, 4, 4});
  const Region4 r{{1, 1, 1, 1}, {2, 2, 2, 2}};
  Vol4View<int> sub = v.subview(r);
  EXPECT_EQ(sub.dims(), Vec4(2, 2, 2, 2));
  EXPECT_EQ(sub.at(0, 0, 0, 0), v.at(1, 1, 1, 1));
  EXPECT_EQ(sub.at(1, 1, 1, 1), v.at(2, 2, 2, 2));
  sub.at(0, 0, 0, 0) = -1;
  EXPECT_EQ(v.at(1, 1, 1, 1), -1);
}

TEST(Vol4View, NestedSubview) {
  Volume4<int> v = make_counting({6, 6, 6, 6});
  Vol4View<int> a = v.subview({{1, 1, 1, 1}, {4, 4, 4, 4}});
  Vol4View<int> b = a.subview({{1, 1, 1, 1}, {2, 2, 2, 2}});
  EXPECT_EQ(b.at(0, 0, 0, 0), v.at(2, 2, 2, 2));
}

TEST(CopyRegion, FullCopy) {
  Volume4<int> src = make_counting({3, 3, 3, 3});
  Volume4<int> dst({3, 3, 3, 3}, -1);
  const Region4 whole = Region4::whole({3, 3, 3, 3});
  copy_region(src, whole, dst, whole);
  EXPECT_EQ(src.storage(), dst.storage());
}

TEST(CopyRegion, PartialOverlapInGlobalFrames) {
  // src covers global region [0,4)^4; dst covers [2,6)^4. Only [2,4)^4
  // should transfer.
  Volume4<int> src = make_counting({4, 4, 4, 4});
  Volume4<int> dst({4, 4, 4, 4}, -1);
  const Region4 src_region{{0, 0, 0, 0}, {4, 4, 4, 4}};
  const Region4 dst_region{{2, 2, 2, 2}, {4, 4, 4, 4}};
  copy_region(src, src_region, dst, dst_region);
  // Global point (2,2,2,2) is src(2,2,2,2) and dst(0,0,0,0).
  EXPECT_EQ(dst.at(0, 0, 0, 0), src.at(2, 2, 2, 2));
  EXPECT_EQ(dst.at(1, 1, 1, 1), src.at(3, 3, 3, 3));
  // Outside the overlap stays untouched.
  EXPECT_EQ(dst.at(2, 0, 0, 0), -1);
  EXPECT_EQ(dst.at(3, 3, 3, 3), -1);
}

TEST(CopyRegion, DisjointIsNoOp) {
  Volume4<int> src = make_counting({2, 2, 2, 2});
  Volume4<int> dst({2, 2, 2, 2}, -1);
  copy_region(src, Region4{{0, 0, 0, 0}, {2, 2, 2, 2}}, dst,
              Region4{{5, 5, 5, 5}, {2, 2, 2, 2}});
  for (int i : dst.storage()) EXPECT_EQ(i, -1);
}

TEST(CopyRegion, StridedSubviewDestination) {
  Volume4<int> src = make_counting({2, 2, 2, 2});
  Volume4<int> big({6, 6, 6, 6}, 0);
  Vol4View<int> hole = big.subview({{2, 2, 2, 2}, {2, 2, 2, 2}});
  copy_region<int>(src.view().as_const(), Region4::whole({2, 2, 2, 2}), hole,
                   Region4::whole({2, 2, 2, 2}));
  EXPECT_EQ(big.at(2, 2, 2, 2), src.at(0, 0, 0, 0));
  EXPECT_EQ(big.at(3, 3, 3, 3), src.at(1, 1, 1, 1));
  EXPECT_EQ(big.at(1, 2, 2, 2), 0);
}

}  // namespace
}  // namespace h4d
