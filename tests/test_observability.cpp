// Observability round-trip tests: meter fold, trace JSON, metrics export,
// and the bottleneck report on a deliberately throttled graph.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "fs/executor_threads.hpp"
#include "fs/meter.hpp"
#include "fs/metrics.hpp"
#include "fs/trace.hpp"
#include "json_lite.hpp"
#include "sim/executor_sim.hpp"
#include "toy_filters.hpp"

namespace h4d::fs {
namespace {

namespace json = h4d::testing::json;
using h4d::fs::testing::CollectSink;
using h4d::fs::testing::NumberSource;
using h4d::fs::testing::ScaleFilter;
using h4d::fs::testing::SinkState;
using h4d::fs::testing::SlowFilter;

// ---- WorkMeter fold (the delta() drift bugfix) ----

TEST(MeterFold, FieldListCoversTheWholeStruct) {
  // The static_asserts in meter.hpp are the real guard; restate them as a
  // runtime check so a failure shows up in test output too.
  EXPECT_EQ(WorkMeter::kFieldNames.size() * sizeof(std::int64_t), sizeof(WorkMeter));
}

TEST(MeterFold, PlusEqualsAndDeltaVisitEveryField) {
  WorkMeter a;
  std::int64_t v = 1;
  WorkMeter::for_each_field(a, [&](std::string_view, std::int64_t& x) { x = v++; });
  // Every field must now be distinct and non-zero.
  WorkMeter::for_each_field(a, [&](std::string_view name, std::int64_t x) {
    EXPECT_GT(x, 0) << name;
  });

  WorkMeter b = a;
  b += a;  // b = 2a, field-wise
  const WorkMeter d = delta(a, b);  // should recover a exactly
  std::int64_t expect = 1;
  WorkMeter::for_each_field(d, [&](std::string_view name, std::int64_t x) {
    EXPECT_EQ(x, expect++) << "delta() lost field " << name;
  });

  // delta(x, x) must be all-zero for every field.
  const WorkMeter z = delta(b, b);
  WorkMeter::for_each_field(z, [&](std::string_view name, std::int64_t x) {
    EXPECT_EQ(x, 0) << name;
  });
}

// ---- shared toy graphs ----

FilterGraph pipeline_graph(std::shared_ptr<SinkState> state, int items,
                           std::int64_t work = 0) {
  FilterGraph g;
  const int src = g.add_filter(
      {"source", [items, work] { return std::make_unique<NumberSource>(items, work); }, 1, {}});
  const int mid = g.add_filter(
      {"scale", [work] { return std::make_unique<ScaleFilter>(2, work); }, 2, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, mid, Policy::RoundRobin);
  g.connect(mid, 0, sink);
  return g;
}

std::int64_t copy_sum(const RunStats& stats, std::int64_t WorkMeter::*field) {
  std::int64_t s = 0;
  for (const auto& c : stats.copies) s += c.meter.*field;
  return s;
}

// ---- trace recorder ----

TEST(Trace, ThreadedRunEmitsValidChromeTrace) {
  auto state = std::make_shared<SinkState>();
  TraceRecorder trace;
  ThreadedOptions opt;
  opt.trace = &trace;
  const RunStats stats = run_threaded(pipeline_graph(state, 32), opt);
  EXPECT_EQ(state->count(), 32u);
  EXPECT_FALSE(trace.empty());

  std::ostringstream os;
  trace.write_json(os);
  const json::Value doc = json::parse(os.str());  // throws on malformed JSON
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is(json::Value::Type::Array));
  ASSERT_FALSE(events.array.empty());

  int spans = 0, metadata = 0, instants = 0;
  bool saw_scale_span = false, saw_handoff = false;
  for (const auto& e : events.array) {
    const std::string& ph = e.at("ph").str();
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("ts").num(), 0.0);
      EXPECT_GE(e.at("dur").num(), 0.0);
      if (e.at("name").str().rfind("scale", 0) == 0) saw_scale_span = true;
    } else if (ph == "M") {
      ++metadata;
    } else if (ph == "i") {
      ++instants;
      if (e.at("name").str().rfind("handoff:", 0) == 0) {
        saw_handoff = true;
        EXPECT_TRUE(e.at("args").has("bytes"));
      }
    }
  }
  // 4 copies => at least 4 process/thread name records and activity spans.
  EXPECT_GE(metadata, 7);  // 3 process names + 4 thread names
  EXPECT_GE(spans, 32);    // every process() call of every copy
  EXPECT_GT(instants, 0);
  EXPECT_TRUE(saw_scale_span);
  EXPECT_TRUE(saw_handoff);
  (void)stats;
}

TEST(Trace, SimulatedRunEmitsSpansInVirtualTime) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src = g.add_filter(
      {"source", [] { return std::make_unique<NumberSource>(20, 1'000'000); }, 1, {0}});
  const int mid = g.add_filter(
      {"scale", [] { return std::make_unique<ScaleFilter>(2, 2'000'000); }, 2, {0, 1}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {0}});
  g.connect(src, 0, mid);
  g.connect(mid, 0, sink);

  TraceRecorder trace;
  sim::SimOptions opt;
  opt.cluster.add_cluster("test", 2, 1.0, 1, 100 * sim::kMbit, 100e-6);
  opt.trace = &trace;
  const sim::SimStats stats = sim::run_simulated(g, opt);
  EXPECT_EQ(state->count(), 20u);
  EXPECT_FALSE(trace.empty());

  std::ostringstream os;
  trace.write_json(os);
  const json::Value doc = json::parse(os.str());
  int spans = 0;
  double max_end = 0.0;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").str() == "X") {
      ++spans;
      max_end = std::max(max_end, e.at("ts").num() + e.at("dur").num());
    }
  }
  EXPECT_GT(spans, 0);
  // Spans live on the virtual timeline: none may end after the makespan
  // (both in microseconds vs. seconds — convert).
  EXPECT_LE(max_end, stats.total_seconds * 1e6 * 1.001);
}

// ---- metrics export ----

TEST(Metrics, JsonMatchesInMemoryMeterSums) {
  auto state = std::make_shared<SinkState>();
  const RunStats stats = run_threaded(pipeline_graph(state, 24, 100), {});

  const BottleneckReport report = analyze_bottleneck(stats);
  std::ostringstream os;
  write_metrics_object(os, stats, report, {{"answer", 42.0}});
  const json::Value doc = json::parse(os.str());

  EXPECT_EQ(doc.at("schema").str(), "h4d-metrics-v1");
  EXPECT_GT(doc.at("makespan_seconds").num(), 0.0);
  EXPECT_EQ(doc.at("extra").at("answer").num(), 42.0);

  const auto& copies = doc.at("copies");
  ASSERT_EQ(copies.array.size(), stats.copies.size());

  // Per-copy counters in the file must reproduce the in-memory meters, and
  // the per-filter aggregates must equal the sum of their copies — the
  // acceptance criterion for the export.
  double file_buffers_in = 0, file_bytes_out = 0;
  for (const auto& c : copies.array) {
    file_buffers_in += c.at("meter").at("buffers_in").num();
    file_bytes_out += c.at("meter").at("bytes_out").num();
  }
  EXPECT_EQ(static_cast<std::int64_t>(file_buffers_in),
            copy_sum(stats, &WorkMeter::buffers_in));
  EXPECT_EQ(static_cast<std::int64_t>(file_bytes_out),
            copy_sum(stats, &WorkMeter::bytes_out));

  double agg_buffers_in = 0;
  for (const auto& f : doc.at("filters").array) {
    agg_buffers_in += f.at("meter").at("buffers_in").num();
    const double u = f.at("utilization").num();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    // Every meter field name must be present in the export.
    for (const auto name : WorkMeter::kFieldNames) {
      EXPECT_TRUE(f.at("meter").has(std::string(name))) << name;
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(agg_buffers_in),
            copy_sum(stats, &WorkMeter::buffers_in));

  const auto& bn = doc.at("bottleneck");
  EXPECT_TRUE(bn.has("bound_filter"));
  EXPECT_TRUE(bn.has("verdict"));
}

TEST(Metrics, CsvHasOneRowPerCopyAndEveryCounterColumn) {
  auto state = std::make_shared<SinkState>();
  const RunStats stats = run_threaded(pipeline_graph(state, 8), {});

  std::ostringstream os;
  write_metrics_csv(os, stats);
  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  for (const auto name : WorkMeter::kFieldNames) {
    EXPECT_NE(header.find(name), std::string::npos) << name;
  }
  EXPECT_NE(header.find("busy_seconds"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, stats.copies.size());
}

TEST(Metrics, SimulatedRunExportsCleanly) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src = g.add_filter(
      {"source", [] { return std::make_unique<NumberSource>(16, 500'000); }, 1, {0}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state, 4'000'000); }, 1, {1}});
  g.connect(src, 0, sink);
  sim::SimOptions opt;
  opt.cluster.add_cluster("test", 2, 1.0, 1, 100 * sim::kMbit, 100e-6);
  const sim::SimStats stats = sim::run_simulated(g, opt);

  const BottleneckReport report = analyze_bottleneck(stats);
  std::ostringstream os;
  write_metrics_object(os, stats, report);
  const json::Value doc = json::parse(os.str());
  EXPECT_EQ(doc.at("schema").str(), "h4d-metrics-v1");
  // The sink does 8x the source's work on an equal node: it must be the
  // bound filter in virtual time too.
  EXPECT_EQ(doc.at("bottleneck").at("bound_filter").str(), "sink");
  for (const auto& c : doc.at("copies").array) {
    EXPECT_GE(c.at("busy_seconds").num(), 0.0);
    EXPECT_GE(c.at("blocked_input_seconds").num(), -1e-9);
    EXPECT_GE(c.at("blocked_output_seconds").num(), -1e-9);
  }
}

// ---- bottleneck report ----

TEST(Bottleneck, ReportNamesTheThrottledFilter) {
  auto state = std::make_shared<SinkState>();
  FilterGraph g;
  const int src = g.add_filter(
      {"source", [] { return std::make_unique<NumberSource>(40); }, 1, {}});
  const int slow = g.add_filter(
      {"slow", [] { return std::make_unique<SlowFilter>(std::chrono::milliseconds(3)); },
       1, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, slow);
  g.connect(slow, 0, sink);

  ThreadedOptions opt;
  opt.queue_capacity = 2;  // force the source to stall against the slow stage
  const RunStats stats = run_threaded(g, opt);
  EXPECT_EQ(state->count(), 40u);

  const BottleneckReport report = analyze_bottleneck(stats);
  EXPECT_EQ(report.bound_filter, "slow");
  EXPECT_GT(report.bound_utilization, 0.5);
  EXPECT_NE(report.verdict.find("slow"), std::string::npos);

  // Backpressure must be visible in the raw stats: the source blocked
  // pushing, and the slow copy's inbox recorded the stalls.
  double source_blocked = 0, slow_stall = 0;
  std::int64_t slow_stalled_pushes = 0;
  for (const auto& c : stats.copies) {
    if (c.filter == "source") source_blocked += c.blocked_output_seconds;
    if (c.filter == "slow") {
      slow_stall += c.enqueue_stall_seconds;
      slow_stalled_pushes += c.stalled_pushes;
    }
  }
  EXPECT_GT(source_blocked, 0.0);
  EXPECT_GT(slow_stall, 0.0);
  EXPECT_GT(slow_stalled_pushes, 0);

  std::ostringstream os;
  print_bottleneck_report(os, report);
  EXPECT_NE(os.str().find("slow"), std::string::npos);
  EXPECT_NE(os.str().find("verdict"), std::string::npos);
}

TEST(Bottleneck, BalancedGraphGetsBalancedVerdict) {
  auto state = std::make_shared<SinkState>();
  const RunStats stats = run_threaded(pipeline_graph(state, 16), {});
  const BottleneckReport report = analyze_bottleneck(stats);
  // No filter does real work: nothing should look like a hot bound stage.
  EXPECT_LT(report.bound_utilization, 0.5);
  EXPECT_NE(report.verdict.find("balanced"), std::string::npos);
}

}  // namespace
}  // namespace h4d::fs
