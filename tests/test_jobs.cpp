// Multi-tenant JobManager: typed admission rejection, quotas, weighted fair
// queueing, priority shedding, deadlines (pending expiry and cooperative
// mid-run cancellation), retry with salted fault seeds, degraded admission,
// byte-identity of accepted jobs against solo runs, checkpoint-manifest
// ownership, and the accounting identity
//   submitted == completed + rejected + shed + failed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "io/dataset.hpp"
#include "io/manifest.hpp"
#include "io/phantom.hpp"
#include "svc/job_manager.hpp"
#include "svc/jobs_metrics.hpp"
#include "svc/workload.hpp"

namespace h4d::svc {
namespace {

namespace fsys = std::filesystem;

struct JobsFixture : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_jobs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    fsys::create_directories(root_);

    io::PhantomConfig pcfg;
    pcfg.dims = {20, 20, 6, 4};
    pcfg.num_tumors = 2;
    pcfg.seed = 7;
    const io::Phantom phantom = io::generate_phantom(pcfg);
    ds_ = root_ / "ds";
    io::DiskDataset::create(ds_, phantom.volume, /*nodes=*/2, /*replicas=*/1);
  }
  void TearDown() override { fsys::remove_all(root_); }

  /// A small, fast job against the fixture dataset.
  JobSpec small_job() const {
    JobSpec spec;
    spec.config.dataset_root = ds_;
    spec.config.engine.roi_dims = {5, 5, 3, 3};
    spec.config.engine.num_levels = 8;
    spec.config.engine.features = haralick::FeatureSet::paper_eval();
    spec.config.texture_chunk = {20, 20, 6, 4};
    spec.config.rfr_copies = 2;
    spec.config.variant = core::Variant::HMP;
    spec.config.hmp_copies = 2;
    return spec;
  }

  fsys::path root_;
  fsys::path ds_;
};

// --- typed admission rejection --------------------------------------------

TEST_F(JobsFixture, TypedRejectionsAndAccountingIdentity) {
  JobManager::Options opt;
  opt.workers = 1;
  opt.max_pending = 2;
  opt.tenant_max_pending = 2;
  opt.start_paused = true;
  JobManager mgr(opt);

  // Deadline infeasible: the estimate alone exceeds the budget.
  JobSpec infeasible = small_job();
  infeasible.deadline_s = 0.1;
  infeasible.est_seconds = 10.0;
  const auto r0 = mgr.submit(infeasible);
  EXPECT_FALSE(r0.admitted);
  EXPECT_EQ(r0.reason, RejectReason::DeadlineInfeasible);
  EXPECT_EQ(mgr.job(r0.id).state, JobState::Rejected);

  // Fill the queue, then exceed the tenant quota.
  JobSpec a = small_job();
  a.tenant = "alice";
  EXPECT_TRUE(mgr.submit(a).admitted);
  EXPECT_TRUE(mgr.submit(a).admitted);
  const auto r3 = mgr.submit(a);
  EXPECT_FALSE(r3.admitted);
  EXPECT_EQ(r3.reason, RejectReason::QuotaExceeded);

  // Queue full and the newcomer does not outrank anyone: rejected.
  JobSpec b = small_job();
  b.tenant = "bob";
  const auto r4 = mgr.submit(b);
  EXPECT_FALSE(r4.admitted);
  EXPECT_EQ(r4.reason, RejectReason::QueueFull);

  mgr.drain();
  mgr.shutdown();
  const ServiceStats s = mgr.snapshot();
  EXPECT_EQ(s.counters.submitted, 5);
  EXPECT_EQ(s.counters.rejected, 3);
  EXPECT_EQ(s.counters.rejected_deadline, 1);
  EXPECT_EQ(s.counters.rejected_quota, 1);
  EXPECT_EQ(s.counters.rejected_queue_full, 1);
  EXPECT_EQ(s.counters.completed, 2);
  EXPECT_EQ(s.counters.submitted, s.counters.completed + s.counters.rejected +
                                      s.counters.shed + s.counters.failed);
}

// --- priority shedding ----------------------------------------------------

TEST_F(JobsFixture, ShedsLowestPriorityDeterministically) {
  JobManager::Options opt;
  opt.workers = 1;
  opt.max_pending = 3;
  opt.start_paused = true;
  JobManager mgr(opt);

  JobSpec low = small_job();
  low.priority = JobPriority::Low;
  JobSpec normal = small_job();
  normal.priority = JobPriority::Normal;
  JobSpec high = small_job();
  high.priority = JobPriority::High;

  const auto low0 = mgr.submit(low);      // id 0
  const auto norm1 = mgr.submit(normal);  // id 1
  const auto low2 = mgr.submit(low);      // id 2
  ASSERT_EQ(mgr.pending_count(), 3u);

  // A high-priority submit displaces the *latest* low-priority job (largest
  // WFQ virtual finish time) — deterministic, not arbitrary.
  const auto high3 = mgr.submit(high);
  EXPECT_TRUE(high3.admitted);
  EXPECT_EQ(mgr.job(low2.id).state, JobState::Shed);
  EXPECT_EQ(mgr.job(low0.id).state, JobState::Pending);

  // Another high displaces the remaining low.
  const auto high4 = mgr.submit(high);
  EXPECT_TRUE(high4.admitted);
  EXPECT_EQ(mgr.job(low0.id).state, JobState::Shed);

  // Low cannot displace normal or high: rejected, not shed.
  const auto low5 = mgr.submit(low);
  EXPECT_FALSE(low5.admitted);
  EXPECT_EQ(low5.reason, RejectReason::QueueFull);
  EXPECT_EQ(mgr.job(norm1.id).state, JobState::Pending);

  mgr.drain();
  mgr.shutdown();
  const ServiceStats s = mgr.snapshot();
  EXPECT_EQ(s.counters.shed, 2);
  EXPECT_EQ(s.counters.completed, 3);  // normal + two highs
  EXPECT_EQ(s.counters.submitted, s.counters.completed + s.counters.rejected +
                                      s.counters.shed + s.counters.failed);
}

// --- weighted fair queueing -----------------------------------------------

TEST_F(JobsFixture, DispatchOrderFollowsPriorityThenVirtualFinishTime) {
  JobManager::Options opt;
  opt.workers = 1;  // serial dispatch: the order is exactly pop order
  opt.max_pending = 16;
  opt.tenant_weights = {{"heavy", 2.0}, {"light", 1.0}};
  opt.start_paused = true;
  JobManager mgr(opt);

  // Alternating submissions, equal cost. WFQ virtual finish times:
  //   light: 1.0, 2.0   heavy (weight 2): 0.5, 1.0
  JobSpec l = small_job();
  l.tenant = "light";
  l.est_seconds = 1.0;
  JobSpec h = small_job();
  h.tenant = "heavy";
  h.est_seconds = 1.0;
  JobSpec hi = small_job();
  hi.tenant = "light";
  hi.est_seconds = 1.0;
  hi.priority = JobPriority::High;

  const auto l0 = mgr.submit(l);   // vft 1.0
  const auto h1 = mgr.submit(h);   // vft 0.5
  const auto l2 = mgr.submit(l);   // vft 2.0
  const auto h3 = mgr.submit(h);   // vft 1.0
  const auto p4 = mgr.submit(hi);  // High: ahead of every Normal

  mgr.drain();
  mgr.shutdown();

  // High first; then by vft ascending, ties by submission order:
  // h1 (0.5), l0 (1.0, id 0), h3 (1.0, id 3), l2 (2.0).
  EXPECT_EQ(mgr.job(p4.id).dispatch_order, 0);
  EXPECT_EQ(mgr.job(h1.id).dispatch_order, 1);
  EXPECT_EQ(mgr.job(l0.id).dispatch_order, 2);
  EXPECT_EQ(mgr.job(h3.id).dispatch_order, 3);
  EXPECT_EQ(mgr.job(l2.id).dispatch_order, 4);
}

// --- deadlines ------------------------------------------------------------

TEST_F(JobsFixture, PendingJobPastDeadlineFailsWithoutRunning) {
  JobManager::Options opt;
  opt.workers = 1;
  opt.start_paused = true;  // never dispatched
  JobManager mgr(opt);

  JobSpec spec = small_job();
  spec.deadline_s = 0.03;
  const auto r = mgr.submit(spec);
  ASSERT_TRUE(r.admitted);
  const JobRecord rec = mgr.wait(r.id);
  EXPECT_EQ(rec.state, JobState::Failed);
  EXPECT_TRUE(rec.deadline_missed);
  EXPECT_FALSE(rec.cancelled);
  EXPECT_EQ(rec.attempts, 0);
  mgr.shutdown();
  const ServiceStats s = mgr.snapshot();
  EXPECT_EQ(s.counters.deadline_missed, 1);
  EXPECT_EQ(s.counters.failed, 1);
}

TEST_F(JobsFixture, RunningJobIsCancelledCooperativelyAtDeadline) {
  JobManager::Options opt;
  opt.workers = 1;
  opt.checkpoint_dir = root_ / "ckpt";
  JobManager mgr(opt);

  // A deliberately slow job with a deadline far below its runtime: every
  // read stalls for a real (capped) sleep, so the run outlives the deadline
  // on any machine and the watcher must cancel it mid-run.
  JobSpec spec = small_job();
  spec.config.engine.num_levels = 64;
  spec.config.engine.features = haralick::FeatureSet::all();
  spec.config.texture_chunk = {10, 10, 4, 3};
  spec.config.faults.seed = 11;
  spec.config.faults.p_stall = 1.0;
  spec.config.faults.stall_ms = 25.0;
  spec.config.faults.really_sleep = true;
  spec.deadline_s = 0.15;
  const auto r = mgr.submit(spec);
  ASSERT_TRUE(r.admitted);
  const JobRecord rec = mgr.wait(r.id);
  EXPECT_EQ(rec.state, JobState::Failed);
  EXPECT_TRUE(rec.deadline_missed);
  EXPECT_TRUE(rec.cancelled);
  // No hang past deadline + grace: the cancel poll period bounds the
  // overshoot (generous margin for slow CI machines).
  EXPECT_LT(rec.run_seconds, 10.0);

  // The job's namespaced manifest survived the cancellation, readable and
  // ownership-stamped: the cancelled run is resumable, not damaged.
  const fsys::path ckpt = opt.checkpoint_dir / ("job_" + std::to_string(r.id) + ".ckpt");
  EXPECT_TRUE(fsys::exists(ckpt));
  EXPECT_FALSE(io::ChunkManifest::load_owner(ckpt).empty());

  mgr.shutdown();
  const ServiceStats s = mgr.snapshot();
  EXPECT_EQ(s.counters.cancelled, 1);
  EXPECT_EQ(s.counters.deadline_missed, 1);
}

// --- retries --------------------------------------------------------------

TEST_F(JobsFixture, FailedJobRetriesWithBackoffThenFails) {
  JobManager::Options opt;
  opt.workers = 1;
  JobManager mgr(opt);

  // Every slice open fails deterministically; the pipeline throws on every
  // attempt, so the job burns its retries and fails.
  JobSpec spec = small_job();
  spec.config.faults.seed = 11;
  spec.config.faults.p_fail_open = 1.0;
  spec.max_retries = 2;
  spec.retry_backoff_s = 0.01;
  const auto r = mgr.submit(spec);
  ASSERT_TRUE(r.admitted);
  const JobRecord rec = mgr.wait(r.id);
  EXPECT_EQ(rec.state, JobState::Failed);
  EXPECT_EQ(rec.attempts, 3);  // initial + 2 retries
  EXPECT_FALSE(rec.error.empty());
  mgr.shutdown();
  EXPECT_EQ(mgr.snapshot().counters.retried, 2);
}

// --- degraded admission ---------------------------------------------------

TEST_F(JobsFixture, OverloadDegradesLowPriorityQuantization) {
  JobManager::Options opt;
  opt.workers = 1;
  opt.degrade_watermark = 1;
  opt.degraded_levels = 8;
  opt.start_paused = true;
  JobManager mgr(opt);

  JobSpec filler = small_job();
  EXPECT_TRUE(mgr.submit(filler).admitted);  // backlog reaches the watermark

  JobSpec low = small_job();
  low.priority = JobPriority::Low;
  low.config.engine.num_levels = 32;
  const auto r = mgr.submit(low);
  ASSERT_TRUE(r.admitted);
  EXPECT_TRUE(mgr.job(r.id).degraded);

  // Normal priority is never degraded.
  JobSpec normal = small_job();
  normal.config.engine.num_levels = 32;
  const auto rn = mgr.submit(normal);
  EXPECT_FALSE(mgr.job(rn.id).degraded);

  mgr.drain();
  mgr.shutdown();
  const ServiceStats s = mgr.snapshot();
  EXPECT_EQ(s.counters.degraded, 1);
  EXPECT_EQ(s.counters.completed, 3);
}

// --- byte-identity against solo runs --------------------------------------

TEST_F(JobsFixture, AcceptedJobsAreByteIdenticalToSoloRuns) {
  // Solo reference run.
  JobSpec ref = small_job();
  const core::AnalysisResult solo = core::analyze_threaded(ref.config);
  const std::uint32_t want = result_checksum(solo);
  ASSERT_NE(want, 0u);

  JobManager::Options opt;
  opt.workers = 2;
  JobManager mgr(opt);
  // Same configuration as a threaded job amid unrelated concurrent jobs.
  JobSpec other = small_job();
  other.config.engine.num_levels = 16;
  mgr.submit(other);
  const auto rt = mgr.submit(small_job());
  mgr.submit(other);
  mgr.drain();
  mgr.shutdown();
  EXPECT_EQ(mgr.job(rt.id).state, JobState::Completed);
  EXPECT_EQ(mgr.job(rt.id).result_crc, want);
}

TEST_F(JobsFixture, SimulatedJobsMatchThreadedResults) {
  JobSpec ref = small_job();
  const core::AnalysisResult solo = core::analyze_threaded(ref.config);
  const std::uint32_t want = result_checksum(solo);

  JobManager::Options opt;
  opt.workers = 1;
  JobManager mgr(opt);
  JobSpec sim_spec = small_job();
  sim_spec.simulate = true;
  sim_spec.config.rfr_nodes = {0, 1};
  sim_spec.config.iic_nodes = {2};
  sim_spec.config.uso_nodes = {3};
  sim_spec.config.hmp_nodes = {4, 5};
  sim_spec.sim.cluster = sim::make_piii_cluster(8);
  const auto r = mgr.submit(sim_spec);
  mgr.drain();
  mgr.shutdown();
  EXPECT_EQ(mgr.job(r.id).state, JobState::Completed);
  EXPECT_EQ(mgr.job(r.id).result_crc, want);  // sim is bit-identical
}

// --- cancel API -----------------------------------------------------------

TEST_F(JobsFixture, CancelPendingShedsAndUnknownIsFalse) {
  JobManager::Options opt;
  opt.workers = 1;
  opt.start_paused = true;
  JobManager mgr(opt);
  const auto r = mgr.submit(small_job());
  EXPECT_TRUE(mgr.cancel(r.id));
  EXPECT_EQ(mgr.job(r.id).state, JobState::Shed);
  EXPECT_FALSE(mgr.cancel(r.id));   // already terminal
  EXPECT_FALSE(mgr.cancel(999));    // unknown
  mgr.shutdown();
}

// --- checkpoint-manifest ownership (satellite of this layer) ---------------

TEST_F(JobsFixture, ManifestOwnershipRefusesForeignResume) {
  core::PipelineConfig cfg;
  cfg.dataset_root = ds_;
  cfg.engine.roi_dims = {5, 5, 3, 3};
  cfg.engine.num_levels = 8;
  cfg.engine.features = haralick::FeatureSet::paper_eval();
  cfg.texture_chunk = {20, 20, 6, 4};
  cfg.rfr_copies = 2;
  cfg.checkpoint_path = root_ / "owned.ckpt";
  cfg.job_tag = "job-1";
  { auto params = core::make_params(cfg); }  // stamps the ownership header
  ASSERT_FALSE(io::ChunkManifest::load_owner(cfg.checkpoint_path).empty());

  // A different job resuming the same file must be refused...
  core::PipelineConfig other = cfg;
  other.job_tag = "job-2";
  other.resume = true;
  EXPECT_THROW({ auto p = core::make_params(other); }, std::runtime_error);

  // ...and so must the same job with a different chunk grid.
  core::PipelineConfig regrid = cfg;
  regrid.texture_chunk = {10, 10, 6, 4};
  regrid.resume = true;
  EXPECT_THROW({ auto p = core::make_params(regrid); }, std::runtime_error);

  // The rightful owner resumes fine; legacy headerless manifests also load.
  core::PipelineConfig same = cfg;
  same.resume = true;
  EXPECT_NO_THROW({ auto p = core::make_params(same); });
}

// --- workload generator ---------------------------------------------------

TEST_F(JobsFixture, WorkloadIsDeterministicPerSeed) {
  WorkloadConfig wc;
  wc.jobs = 50;
  wc.tenants = 3;
  wc.seed = 42;
  wc.arrival_ms = 5.0;
  wc.base = small_job();
  const auto a = make_workload(wc);
  const auto b = make_workload(wc);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.tenant, b[i].spec.tenant);
    EXPECT_EQ(a[i].spec.priority, b[i].spec.priority);
    EXPECT_EQ(a[i].spec.config.engine.num_levels, b[i].spec.config.engine.num_levels);
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
  }
  wc.seed = 43;
  const auto c = make_workload(wc);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].spec.tenant != c[i].spec.tenant ||
               a[i].spec.config.engine.num_levels != c[i].spec.config.engine.num_levels;
  }
  EXPECT_TRUE(any_diff);
}

// --- overload soak + metrics export ---------------------------------------

TEST_F(JobsFixture, OverloadSoakHoldsAccountingIdentityAndExportsMetrics) {
  WorkloadConfig wc;
  wc.jobs = 60;
  wc.tenants = 4;
  wc.seed = 9;
  wc.deadline_fraction = 0.2;
  wc.deadline_s = 5.0;
  wc.base = small_job();
  const auto workload = make_workload(wc);

  JobManager::Options opt;
  opt.workers = 2;
  opt.max_pending = 8;  // flood at far above the sustainable rate
  opt.degrade_watermark = 4;
  JobManager mgr(opt);
  for (const auto& wj : workload) mgr.submit(wj.spec);
  mgr.drain();
  mgr.shutdown();

  const ServiceStats s = mgr.snapshot();
  EXPECT_EQ(s.counters.submitted, 60);
  EXPECT_EQ(s.counters.submitted, s.counters.completed + s.counters.rejected +
                                      s.counters.shed + s.counters.failed);
  EXPECT_EQ(s.counters.rejected, s.counters.rejected_queue_full +
                                     s.counters.rejected_quota +
                                     s.counters.rejected_deadline);
  EXPECT_GT(s.counters.rejected + s.counters.shed, 0);  // overload really bit
  EXPECT_GT(s.counters.completed, 0);

  // Per-job rows agree with the counters.
  std::int64_t completed = 0, rejected = 0, shed = 0, failed = 0;
  for (const auto& j : s.jobs) {
    ASSERT_TRUE(state_terminal(j.state)) << "job " << j.id << " not terminal";
    completed += j.state == JobState::Completed;
    rejected += j.state == JobState::Rejected;
    shed += j.state == JobState::Shed;
    failed += j.state == JobState::Failed;
  }
  EXPECT_EQ(completed, s.counters.completed);
  EXPECT_EQ(rejected, s.counters.rejected);
  EXPECT_EQ(shed, s.counters.shed);
  EXPECT_EQ(failed, s.counters.failed);

  // The export is well-formed enough to contain the schema and counters
  // (full validation: tools/check_metrics.py in CI).
  const fsys::path mpath = root_ / "jobs.json";
  write_jobs_metrics_file(mpath, s);
  std::ifstream in(mpath);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("h4d-jobs-v1"), std::string::npos);
  EXPECT_NE(json.find("\"submitted\": 60"), std::string::npos);
  EXPECT_NE(json.find("\"per_job\""), std::string::npos);
}

}  // namespace
}  // namespace h4d::svc
