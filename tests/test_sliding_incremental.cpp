// Property tests for the incremental feature accumulators of SlidingGlcm:
// after any walk of one-voxel slides, features() must equal — bit for bit —
// features() of a window freshly reset() at the same origin (the
// accumulators are exact integers, so the finalize inputs are independent
// of the walk history), and must agree with the reference feature pass to
// floating-point accumulation-order tolerance.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "haralick/directions.hpp"
#include "haralick/features.hpp"
#include "haralick/roi_engine.hpp"
#include "haralick/sliding.hpp"
#include "nd/raster.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

// Bit-exact agreement with a freshly positioned window: the incremental
// state must be indistinguishable from a from-scratch one.
void expect_path_independent(const SlidingGlcm& walked, Vol4View<const Level> vol,
                             const Vec4& roi, const std::vector<Vec4>& dirs, int ng,
                             SweepMode mode) {
  SlidingGlcm fresh(vol, roi, dirs, ng);
  fresh.reset(walked.origin());
  const FeatureVector a = walked.features(FeatureSet::all(), nullptr, mode);
  const FeatureVector b = fresh.features(FeatureSet::all(), nullptr, mode);
  for (int f = 0; f < kNumFeatures; ++f) {
    const auto idx = static_cast<std::size_t>(f);
    EXPECT_EQ(a.value[idx], b.value[idx])
        << "feature " << f << " diverged from recompute at origin "
        << walked.origin().str();
  }
}

// Tolerance-bounded agreement with the reference feature pass (different
// but mathematically equivalent summation: integer marginals divided once
// vs per-cell probabilities accumulated in doubles).
void expect_matches_reference(const SlidingGlcm& s, Vol4View<const Level> vol,
                              const Vec4& roi, const std::vector<Vec4>& dirs, int ng) {
  Glcm g(ng);
  g.accumulate(vol, Region4{s.origin(), roi}, dirs);
  const FeatureVector ref = compute_features(g, FeatureSet::all(), ZeroPolicy::SkipZeros);
  const FeatureVector inc = s.features(FeatureSet::all(), nullptr, SweepMode::Strict);
  for (int f = 0; f < kNumFeatures; ++f) {
    const auto idx = static_cast<std::size_t>(f);
    const double scale = std::max(1.0, std::abs(ref.value[idx]));
    EXPECT_NEAR(inc.value[idx], ref.value[idx], 1e-9 * scale) << "feature " << f;
  }
}

class IncrementalNg : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalNg, RandomWalksMatchRecomputeFromScratch) {
  const int ng = GetParam();
  const auto v = random_volume({9, 8, 6, 5}, ng, 17u + static_cast<unsigned>(ng));
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{4, 3, 3, 2};
  std::mt19937_64 rng(99u + static_cast<unsigned>(ng));

  for (int trial = 0; trial < 4; ++trial) {
    // Random legal start, then a random walk of +1 slides.
    Vec4 o;
    for (int k = 0; k < kDims; ++k) {
      std::uniform_int_distribution<std::int64_t> u(0, (v.dims()[k] - roi[k]) / 2);
      o[k] = u(rng);
    }
    SlidingGlcm s(v.view(), roi, dirs, ng);
    s.reset(o);
    expect_path_independent(s, v.view(), roi, dirs, ng, SweepMode::Fast);
    std::uniform_int_distribution<int> ax(0, kDims - 1);
    for (int step = 0; step < 12; ++step) {
      const int axis = ax(rng);
      if (o[axis] + roi[axis] >= v.dims()[axis]) continue;
      s.slide(axis);
      o[axis] += 1;
      const SweepMode mode = step % 2 == 0 ? SweepMode::Fast : SweepMode::Strict;
      expect_path_independent(s, v.view(), roi, dirs, ng, mode);
    }
    expect_matches_reference(s, v.view(), roi, dirs, ng);
  }
}

TEST_P(IncrementalNg, FullRasterScanMatchesEverywhere) {
  const int ng = GetParam();
  const auto v = random_volume({11, 5, 4, 3}, ng, 5u + static_cast<unsigned>(ng));
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{4, 3, 3, 2};
  SlidingGlcm s(v.view(), roi, dirs, ng);
  s.reset({0, 0, 0, 0});
  for (std::int64_t x = 0; x + roi[0] <= v.dims()[0]; ++x) {
    if (x > 0) s.slide(0);
    expect_path_independent(s, v.view(), roi, dirs, ng, SweepMode::Fast);
  }
  expect_matches_reference(s, v.view(), roi, dirs, ng);
}

INSTANTIATE_TEST_SUITE_P(NgSweep, IncrementalNg, ::testing::Values(2, 32, 256));

TEST(SlidingIncremental, SubviewWalkMatchesRecompute) {
  // Drive the window over a strided subview of a larger volume — the
  // boundary-delta walk must see exactly the voxels the subview exposes.
  const int ng = 16;
  const auto v = random_volume({14, 12, 8, 6}, ng, 77);
  const Region4 sub{{2, 3, 1, 1}, {9, 7, 5, 4}};
  const Vol4View<const Level> view = v.subview(sub);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{4, 3, 3, 2};
  SlidingGlcm s(view, roi, dirs, ng);
  Vec4 o{1, 1, 0, 0};
  s.reset(o);
  for (const int axis : {0, 0, 1, 2, 3, 0, 1, 1, 2, 0}) {
    s.slide(axis);
    o[axis] += 1;
    expect_path_independent(s, view, roi, dirs, ng, SweepMode::Fast);
  }
  expect_matches_reference(s, view, roi, dirs, ng);
}

TEST(SlidingIncremental, EngineSlidingMatchesNonSlidingAllFeatures) {
  const auto v = random_volume({10, 8, 5, 4}, 16, 31);
  EngineConfig cfg;
  cfg.roi_dims = {4, 3, 3, 2};
  cfg.num_levels = 16;
  cfg.features = FeatureSet::all();
  EngineConfig slid = cfg;
  slid.sliding_window = true;
  const auto a = analyze_volume(v, cfg);
  const auto b = analyze_volume(v, slid);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    ASSERT_EQ(a[f].values.size(), b[f].values.size());
    for (std::size_t k = 0; k < a[f].values.size(); ++k) {
      EXPECT_FLOAT_EQ(a[f].values[k], b[f].values[k])
          << "feature block " << f << " position " << k;
    }
  }
}

TEST(SlidingIncremental, FeaturesBeforeResetThrows) {
  const auto v = random_volume({6, 6, 4, 4}, 8, 3);
  SlidingGlcm s(v.view(), {3, 3, 3, 3}, axis_directions(ActiveDims::all4()), 8);
  EXPECT_THROW((void)s.features(FeatureSet::all()), std::logic_error);
}

}  // namespace
}  // namespace h4d::haralick
