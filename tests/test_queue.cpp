#include "fs/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace h4d::fs {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, SizeTracksContents) {
  BoundedQueue<int> q(8);
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // push after close fails
  EXPECT_EQ(q.pop(), 1);    // existing items drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(4);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop(), 42);  // blocks until the producer delivers
  producer.join();
}

TEST(BoundedQueue, PushBlocksWhenFull) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);  // blocks until a pop frees a slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueue, CloseUnblocksWaitingPop) {
  BoundedQueue<int> q(4);
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_EQ(q.pop(), std::nullopt);
  closer.join();
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 500;
  BoundedQueue<int> q(16);
  std::atomic<long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) q.push(p * kItemsEach + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        count++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  const long n = kProducers * kItemsEach;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueue, StatsRecordDepthAndStalls) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.stats().max_depth, 0u);
  q.push(1);
  q.push(2);
  {
    const QueueStats s = q.stats();
    EXPECT_EQ(s.max_depth, 2u);
    EXPECT_EQ(s.stalled_pushes, 0);
    EXPECT_EQ(s.stall_seconds, 0.0);
  }
  std::thread producer([&] { q.push(3); });  // stalls against the full queue
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  const QueueStats s = q.stats();
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.stalled_pushes, 1);
  EXPECT_GT(s.stall_seconds, 0.0);
}

TEST(BoundedQueue, ZeroCapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  q.push(9);
  EXPECT_EQ(q.pop(), 9);
}

TEST(BoundedQueue, CloseUnblocksWaitingPush) {
  // The fatal-error path relies on this: a producer blocked on a wedged
  // consumer's full inbox must unwind (push returns false) once the
  // supervisor closes every stream.
  BoundedQueue<int> q(1);
  q.push(1);
  std::atomic<bool> unblocked{false};
  std::atomic<bool> accepted{true};
  std::thread producer([&] {
    accepted = q.push(2);
    unblocked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(unblocked.load());
  q.close();
  producer.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_FALSE(accepted.load());
}

TEST(BoundedQueue, PushForEnqueuesWhenSpaceAvailable) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.push_for(1, std::chrono::milliseconds(1)), PushOutcome::Ok);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.stats().stalled_pushes, 0);
}

TEST(BoundedQueue, PushForTimesOutAgainstFullQueue) {
  BoundedQueue<int> q(1);
  q.push(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(30)), PushOutcome::Timeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(25));
  EXPECT_EQ(q.pop(), 1);  // the timed-out item was never enqueued
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, PushForReportsClosed) {
  BoundedQueue<int> q(1);
  q.close();
  EXPECT_EQ(q.push_for(1, std::chrono::milliseconds(1)), PushOutcome::Closed);

  // Closing while a timed push waits also unblocks it with Closed.
  BoundedQueue<int> full(1);
  full.push(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    full.close();
  });
  EXPECT_EQ(full.push_for(2, std::chrono::seconds(10)), PushOutcome::Closed);
  closer.join();
}

TEST(BoundedQueue, PushForSucceedsWhenSlotFreesUp) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.pop();
  });
  EXPECT_EQ(q.push_for(2, std::chrono::seconds(10)), PushOutcome::Ok);
  consumer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, PushForStallAccountingIsOptional) {
  BoundedQueue<int> q(1);
  q.push(1);
  // A retry loop counts the stall once (first slice), not per slice: the
  // executor passes count_stall=false on follow-up slices.
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(5)), PushOutcome::Timeout);
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(5), /*count_stall=*/false),
            PushOutcome::Timeout);
  const QueueStats s = q.stats();
  EXPECT_EQ(s.stalled_pushes, 1);
  EXPECT_GT(s.stall_seconds, 0.0);  // waited time is always accounted
}

TEST(BoundedQueue, TryPopIsNonBlockingAndFreesASlot) {
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.try_pop(), std::nullopt);  // empty: returns immediately
  q.push(7);
  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    q.push(8);  // blocked: queue full
    unblocked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(unblocked.load());
  EXPECT_EQ(q.try_pop(), 7);  // frees the slot, waking the producer
  producer.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_EQ(q.try_pop(), 8);

  q.close();
  EXPECT_EQ(q.try_pop(), std::nullopt);  // closed and drained
}

}  // namespace
}  // namespace h4d::fs
