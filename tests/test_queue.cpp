// Contract tests for the filter-inbox queues. The whole suite is typed over
// both implementations (BoundedQueue and MpmcQueue) — the executor selects
// one per run (--queue), so anything asserted here is asserted for both.
// The heavy concurrency schedules live in test_queue_stress.cpp; this file
// pins the single-threaded semantics, the blocking/unblocking edges, the
// stats accounting, and (at the bottom) a trace-equivalence property test
// that replays random op traces against both queues side by side.
#include "fs/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fs/mpmc_queue.hpp"

namespace h4d::fs {
namespace {

template <typename Q>
class QueueContract : public ::testing::Test {};

struct ImplName {
  template <typename Q>
  static std::string GetName(int) {
    return std::string(queue_impl_name(Q::kImpl));
  }
};

using Impls = ::testing::Types<BoundedQueue<int>, MpmcQueue<int>>;
TYPED_TEST_SUITE(QueueContract, Impls, ImplName);

TYPED_TEST(QueueContract, FifoOrder) {
  TypeParam q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TYPED_TEST(QueueContract, SizeTracksContents) {
  TypeParam q(8);
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TYPED_TEST(QueueContract, CloseDrainsThenReturnsNullopt) {
  TypeParam q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // push after close fails
  EXPECT_EQ(q.pop(), 1);    // existing items drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TYPED_TEST(QueueContract, PopBlocksUntilPush) {
  TypeParam q(4);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop(), 42);  // blocks until the producer delivers
  producer.join();
}

TYPED_TEST(QueueContract, PushBlocksWhenFull) {
  TypeParam q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);  // blocks until a pop frees a slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TYPED_TEST(QueueContract, CloseUnblocksWaitingPop) {
  TypeParam q(4);
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_EQ(q.pop(), std::nullopt);
  closer.join();
}

TYPED_TEST(QueueContract, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 500;
  TypeParam q(16);
  std::atomic<long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) q.push(p * kItemsEach + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        count++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  const long n = kProducers * kItemsEach;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TYPED_TEST(QueueContract, StatsRecordDepthAndStalls) {
  TypeParam q(2);
  EXPECT_EQ(q.stats().max_depth, 0u);
  q.push(1);
  q.push(2);
  {
    const QueueStats s = q.stats();
    EXPECT_EQ(s.max_depth, 2u);
    EXPECT_EQ(s.stalled_pushes, 0);
    EXPECT_EQ(s.stall_seconds, 0.0);
  }
  std::thread producer([&] { q.push(3); });  // stalls against the full queue
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  const QueueStats s = q.stats();
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.stalled_pushes, 1);
  EXPECT_GT(s.stall_seconds, 0.0);
}

TYPED_TEST(QueueContract, StatsUnderProducerContention) {
  // Several producers stall against a full queue at once while a slow
  // consumer drains: max_depth must saturate at (and never exceed) the
  // capacity, every producer's first blocked push must be counted, and the
  // waited time must accumulate from all of them.
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 50;
  TypeParam q(2);
  q.push(-1);
  q.push(-2);  // full before any contender arrives

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) q.push(p * kItemsEach + i);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  int popped = 0;
  while (q.pop()) {
    if (++popped % 16 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (popped == 2 + kProducers * kItemsEach) break;
  }
  for (std::thread& t : producers) t.join();
  q.close();

  EXPECT_EQ(popped, 2 + kProducers * kItemsEach);
  const QueueStats s = q.stats();
  EXPECT_EQ(s.max_depth, 2u);  // backpressure held: never above capacity
  EXPECT_GE(s.stalled_pushes, kProducers);  // each contender stalled at least once
  EXPECT_GT(s.stall_seconds, 0.0);
}

TYPED_TEST(QueueContract, ZeroCapacityClampedToOne) {
  TypeParam q(0);
  EXPECT_EQ(q.capacity(), 1u);
  q.push(9);
  EXPECT_EQ(q.pop(), 9);
}

TYPED_TEST(QueueContract, CloseUnblocksWaitingPush) {
  // The fatal-error path relies on this: a producer blocked on a wedged
  // consumer's full inbox must unwind (push returns false) once the
  // supervisor closes every stream.
  TypeParam q(1);
  q.push(1);
  std::atomic<bool> unblocked{false};
  std::atomic<bool> accepted{true};
  std::thread producer([&] {
    accepted = q.push(2);
    unblocked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(unblocked.load());
  q.close();
  producer.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_FALSE(accepted.load());
}

TYPED_TEST(QueueContract, PushForEnqueuesWhenSpaceAvailable) {
  TypeParam q(2);
  EXPECT_EQ(q.push_for(1, std::chrono::milliseconds(1)), PushOutcome::Ok);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.stats().stalled_pushes, 0);
}

TYPED_TEST(QueueContract, PushForTimesOutAgainstFullQueue) {
  TypeParam q(1);
  q.push(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(30)), PushOutcome::Timeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(25));
  EXPECT_EQ(q.pop(), 1);  // the timed-out item was never enqueued
  EXPECT_EQ(q.size(), 0u);
}

TYPED_TEST(QueueContract, PushForReportsClosed) {
  TypeParam q(1);
  q.close();
  EXPECT_EQ(q.push_for(1, std::chrono::milliseconds(1)), PushOutcome::Closed);

  // Closing while a timed push waits also unblocks it with Closed.
  TypeParam full(1);
  full.push(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    full.close();
  });
  EXPECT_EQ(full.push_for(2, std::chrono::seconds(10)), PushOutcome::Closed);
  closer.join();
}

TYPED_TEST(QueueContract, PushForSucceedsWhenSlotFreesUp) {
  TypeParam q(1);
  q.push(1);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.pop();
  });
  EXPECT_EQ(q.push_for(2, std::chrono::seconds(10)), PushOutcome::Ok);
  consumer.join();
  EXPECT_EQ(q.pop(), 2);
}

TYPED_TEST(QueueContract, PushForStallAccountingIsOptional) {
  TypeParam q(1);
  q.push(1);
  // A retry loop counts the stall once (first slice), not per slice: the
  // executor passes count_stall=false on follow-up slices.
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(5)), PushOutcome::Timeout);
  EXPECT_EQ(q.push_for(2, std::chrono::milliseconds(5), /*count_stall=*/false),
            PushOutcome::Timeout);
  const QueueStats s = q.stats();
  EXPECT_EQ(s.stalled_pushes, 1);
  EXPECT_GT(s.stall_seconds, 0.0);  // waited time is always accounted
}

TYPED_TEST(QueueContract, TryPopIsNonBlockingAndFreesASlot) {
  TypeParam q(1);
  EXPECT_EQ(q.try_pop(), std::nullopt);  // empty: returns immediately
  q.push(7);
  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    q.push(8);  // blocked: queue full
    unblocked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(unblocked.load());
  EXPECT_EQ(q.try_pop(), 7);  // frees the slot, waking the producer
  producer.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_EQ(q.try_pop(), 8);

  q.close();
  EXPECT_EQ(q.try_pop(), std::nullopt);  // closed and drained
}

// --- factory / adapter ----------------------------------------------------

TEST(MakeQueue, BuildsTheSelectedImplementation) {
  auto locked = make_queue<int>(QueueImpl::Locked, 4);
  auto mpmc = make_queue<int>(QueueImpl::Mpmc, 4);
  EXPECT_EQ(locked->impl(), QueueImpl::Locked);
  EXPECT_EQ(mpmc->impl(), QueueImpl::Mpmc);
  for (QueueInterface<int>* q : {locked.get(), mpmc.get()}) {
    EXPECT_EQ(q->capacity(), 4u);
    EXPECT_TRUE(q->push(1));
    EXPECT_EQ(q->push_for(2, std::chrono::milliseconds(1), true), PushOutcome::Ok);
    EXPECT_EQ(q->pop(), 1);
    EXPECT_EQ(q->try_pop(), 2);
    q->close();
    EXPECT_FALSE(q->push(3));
    EXPECT_EQ(q->pop(), std::nullopt);
  }
}

TEST(QueueImplNames, RoundTripAndErrors) {
  EXPECT_EQ(queue_impl_name(QueueImpl::Locked), "locked");
  EXPECT_EQ(queue_impl_name(QueueImpl::Mpmc), "mpmc");
  EXPECT_EQ(queue_impl_from_name("locked"), QueueImpl::Locked);
  EXPECT_EQ(queue_impl_from_name("mpmc"), QueueImpl::Mpmc);
  EXPECT_THROW(queue_impl_from_name("lockfree"), std::runtime_error);
}

// --- trace equivalence property -------------------------------------------
//
// Both implementations must be observationally identical for any
// single-threaded op trace: same PushOutcome sequence, same popped values,
// same sizes, same stalled_pushes/max_depth accounting. (stall_seconds is
// wall time and excluded.) Traces avoid ops that would block forever in one
// thread: blocking push only when the queue has room or is closed, pop only
// when non-empty or closed; timed pushes use a tiny timeout so a full queue
// reports Timeout instead of hanging.

enum class Op { Push, PushFor, PushForNoStall, TryPop, Pop, Close, Size };

template <typename Q>
std::string step(Q& q, Op op, int value) {
  switch (op) {
    case Op::Push:
      return q.push(value) ? "push:ok" : "push:closed";
    case Op::PushFor:
    case Op::PushForNoStall: {
      const PushOutcome r = q.push_for(value, std::chrono::microseconds(50),
                                       op == Op::PushFor);
      return r == PushOutcome::Ok       ? "push_for:ok"
             : r == PushOutcome::Closed ? "push_for:closed"
                                        : "push_for:timeout";
    }
    case Op::TryPop: {
      auto v = q.try_pop();
      return v ? "try_pop:" + std::to_string(*v) : "try_pop:none";
    }
    case Op::Pop: {
      auto v = q.pop();
      return v ? "pop:" + std::to_string(*v) : "pop:none";
    }
    case Op::Close:
      q.close();
      return "close";
    case Op::Size:
      return "size:" + std::to_string(q.size());
  }
  return "?";
}

TEST(QueueTraceEquivalence, RandomTracesMatchAcrossImplementations) {
  for (unsigned seed = 1; seed <= 50; ++seed) {
    std::mt19937 rng(seed * 48271u);
    const std::size_t capacity = 1 + rng() % 6;
    BoundedQueue<int> locked(capacity);
    MpmcQueue<int> mpmc(capacity);
    SCOPED_TRACE("seed " + std::to_string(seed) + " capacity " +
                 std::to_string(capacity));

    bool closed = false;
    std::size_t depth = 0;  // tracked to keep blocking ops from hanging
    int next_value = 0;
    for (int i = 0; i < 200; ++i) {
      Op op = static_cast<Op>(rng() % 7);
      if (op == Op::Push && depth >= capacity && !closed) op = Op::PushFor;
      if (op == Op::Pop && depth == 0 && !closed) op = Op::TryPop;
      const int value = next_value++;

      const std::string a = step(locked, op, value);
      const std::string b = step(mpmc, op, value);
      EXPECT_EQ(a, b) << "op " << i << " diverged";
      if (a != b) return;

      if (op == Op::Close) closed = true;
      if ((op == Op::Push || op == Op::PushFor || op == Op::PushForNoStall) &&
          a.ends_with(":ok")) {
        depth++;
      }
      if ((op == Op::TryPop || op == Op::Pop) && !a.ends_with(":none")) depth--;
    }

    const QueueStats sa = locked.stats();
    const QueueStats sb = mpmc.stats();
    EXPECT_EQ(sa.max_depth, sb.max_depth);
    EXPECT_EQ(sa.stalled_pushes, sb.stalled_pushes);
  }
}

}  // namespace
}  // namespace h4d::fs
