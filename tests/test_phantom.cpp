#include "io/phantom.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "haralick/directions.hpp"
#include "haralick/glcm_sparse.hpp"
#include "nd/quantize.hpp"

namespace h4d::io {
namespace {

PhantomConfig small_config() {
  PhantomConfig cfg;
  cfg.dims = {24, 24, 8, 6};
  cfg.num_tumors = 2;
  cfg.seed = 99;
  return cfg;
}

TEST(EnhancementCurve, PeaksAtOneAndDecays) {
  const double up = 1.5, down = 0.15;
  const double tpeak = std::log(up / down) / (up - down);
  EXPECT_NEAR(enhancement_curve(tpeak, up, down), 1.0, 1e-12);
  EXPECT_NEAR(enhancement_curve(0.0, up, down), 0.0, 1e-12);
  // Monotone rise before the peak, decay after.
  EXPECT_LT(enhancement_curve(tpeak / 2, up, down), 1.0);
  EXPECT_GT(enhancement_curve(tpeak / 2, up, down), 0.0);
  EXPECT_LT(enhancement_curve(tpeak * 4, up, down), enhancement_curve(tpeak, up, down));
}

TEST(EnhancementCurve, RejectsUnphysicalRates) {
  EXPECT_THROW(enhancement_curve(1.0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(enhancement_curve(1.0, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(enhancement_curve(1.0, 0.5, -0.1), std::invalid_argument);
}

TEST(Phantom, DeterministicForSeed) {
  const Phantom a = generate_phantom(small_config());
  const Phantom b = generate_phantom(small_config());
  EXPECT_EQ(a.volume.storage(), b.volume.storage());
  ASSERT_EQ(a.tumors.size(), b.tumors.size());
  for (std::size_t i = 0; i < a.tumors.size(); ++i) {
    EXPECT_EQ(a.tumors[i].center, b.tumors[i].center);
  }
}

TEST(Phantom, DifferentSeedDiffers) {
  PhantomConfig c1 = small_config();
  PhantomConfig c2 = small_config();
  c2.seed = 100;
  EXPECT_NE(generate_phantom(c1).volume.storage(), generate_phantom(c2).volume.storage());
}

TEST(Phantom, RequestedDimsAndTumorCount) {
  const Phantom p = generate_phantom(small_config());
  EXPECT_EQ(p.volume.dims(), Vec4(24, 24, 8, 6));
  EXPECT_EQ(p.tumors.size(), 2u);
}

TEST(Phantom, TumorsEnhanceOverTime) {
  PhantomConfig cfg = small_config();
  cfg.noise_sigma = 0.0;  // isolate the enhancement signal
  const Phantom p = generate_phantom(cfg);
  for (const Tumor& tu : p.tumors) {
    const Vec4 c = tu.center;
    // Center voxel brightens from t=0 to its uptake peak.
    const double t0 = p.volume.at(c[0], c[1], c[2], 0);
    double peak = t0;
    for (std::int64_t t = 1; t < cfg.dims[3]; ++t) {
      peak = std::max(peak, static_cast<double>(p.volume.at(c[0], c[1], c[2], t)));
    }
    EXPECT_GT(peak, t0 + 0.3 * tu.amplitude)
        << "tumor at " << c.str() << " does not enhance";
  }
}

TEST(Phantom, IntensitiesWithinU16AndNonDegenerate) {
  const Phantom p = generate_phantom(small_config());
  std::uint16_t lo = 65535, hi = 0;
  for (auto v : p.volume.storage()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, hi);
  EXPECT_GT(hi, 500);  // carries real signal
}

TEST(Phantom, ZeroTumorsAllowed) {
  PhantomConfig cfg = small_config();
  cfg.num_tumors = 0;
  const Phantom p = generate_phantom(cfg);
  EXPECT_TRUE(p.tumors.empty());
}

TEST(Phantom, RejectsBadConfig) {
  PhantomConfig cfg = small_config();
  cfg.dims = {0, 24, 8, 6};
  EXPECT_THROW(generate_phantom(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.num_tumors = -1;
  EXPECT_THROW(generate_phantom(cfg), std::invalid_argument);
}

TEST(Phantom, GlcmsAreSparseAtNg32) {
  // The paper's premise (Sec. 4.4.1): requantized MRI-like data yields ~1%
  // dense co-occurrence matrices on typical ROIs. Verify the phantom
  // reproduces that property (the motivation for the sparse representation).
  PhantomConfig cfg;
  cfg.dims = {32, 32, 8, 6};
  cfg.seed = 5;
  const Phantom p = generate_phantom(cfg);
  const Volume4<Level> q = quantize_volume(p.volume, 32);

  const auto dirs = haralick::unique_directions(haralick::ActiveDims::all4());
  const Vec4 roi{7, 7, 3, 3};
  double total_nnz = 0;
  int n = 0;
  for (std::int64_t x = 0; x + roi[0] <= 32; x += 6) {
    for (std::int64_t y = 0; y + roi[1] <= 32; y += 6) {
      haralick::Glcm g(32);
      g.accumulate(q.view(), Region4{{x, y, 2, 1}, roi}, dirs);
      total_nnz += static_cast<double>(g.nonzero_upper());
      ++n;
    }
  }
  const double avg_density = total_nnz / n / (32.0 * 32.0);
  EXPECT_LT(avg_density, 0.12) << "phantom GLCMs not sparse enough";
  EXPECT_GT(avg_density, 0.001) << "phantom GLCMs degenerate";
}

}  // namespace
}  // namespace h4d::io
