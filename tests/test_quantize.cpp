#include "nd/quantize.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace h4d {
namespace {

TEST(Quantizer, MapsRangeOntoLevels) {
  const Quantizer q(0.0, 100.0, 4);
  EXPECT_EQ(q(0.0), 0);
  EXPECT_EQ(q(24.9), 0);
  EXPECT_EQ(q(25.0), 1);
  EXPECT_EQ(q(50.0), 2);
  EXPECT_EQ(q(75.0), 3);
  EXPECT_EQ(q(100.0), 3);  // max clamps into the top level
}

TEST(Quantizer, ClampsOutOfRange) {
  const Quantizer q(10.0, 20.0, 8);
  EXPECT_EQ(q(-100.0), 0);
  EXPECT_EQ(q(1000.0), 7);
}

TEST(Quantizer, DegenerateRangeMapsToZero) {
  const Quantizer q(5.0, 5.0, 32);
  EXPECT_EQ(q(5.0), 0);
  EXPECT_EQ(q(4.0), 0);
  EXPECT_EQ(q(6.0), 0);
}

TEST(Quantizer, RejectsBadLevelCount) {
  EXPECT_THROW(Quantizer(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Quantizer(0, 1, 257), std::invalid_argument);
  EXPECT_NO_THROW(Quantizer(0, 1, 2));
  EXPECT_NO_THROW(Quantizer(0, 1, 256));
}

TEST(QuantizeVolume, UsesGlobalMinMax) {
  Volume4<std::uint16_t> v({4, 1, 1, 1});
  v.at(0, 0, 0, 0) = 100;
  v.at(1, 0, 0, 0) = 200;
  v.at(2, 0, 0, 0) = 300;
  v.at(3, 0, 0, 0) = 400;
  const Volume4<Level> q = quantize_volume(v, 4);
  EXPECT_EQ(q.at(0, 0, 0, 0), 0);
  EXPECT_EQ(q.at(1, 0, 0, 0), 1);
  EXPECT_EQ(q.at(2, 0, 0, 0), 2);
  EXPECT_EQ(q.at(3, 0, 0, 0), 3);
}

TEST(QuantizeVolume, ConstantVolumeAllZero) {
  Volume4<std::uint16_t> v({3, 3, 2, 2}, 123);
  const Volume4<Level> q = quantize_volume(v, 32);
  for (Level l : q.storage()) EXPECT_EQ(l, 0);
}

TEST(QuantizeVolume, AllLevelsReachable) {
  // 0..255 input, 32 levels => exactly 8 input values per level.
  Volume4<std::uint16_t> v({256, 1, 1, 1});
  for (std::int64_t x = 0; x < 256; ++x) v.at(x, 0, 0, 0) = static_cast<std::uint16_t>(x);
  const Volume4<Level> q = quantize_volume(v, 32);
  EXPECT_EQ(q.at(0, 0, 0, 0), 0);
  EXPECT_EQ(q.at(255, 0, 0, 0), 31);
  int hist[32] = {};
  for (Level l : q.storage()) hist[l]++;
  for (int h : hist) EXPECT_EQ(h, 8);
}

TEST(QuantizeInto, MatchesQuantizerOnSubview) {
  Volume4<float> src({4, 4, 1, 1});
  for (std::int64_t y = 0; y < 4; ++y)
    for (std::int64_t x = 0; x < 4; ++x) src.at(x, y, 0, 0) = static_cast<float>(x * 4 + y);
  const Quantizer q(0.0, 15.0, 16);
  Volume4<Level> dst({4, 4, 1, 1}, 255);
  quantize_into<float>(src.view().as_const(), q, dst.view());
  for (std::int64_t y = 0; y < 4; ++y)
    for (std::int64_t x = 0; x < 4; ++x) {
      EXPECT_EQ(dst.at(x, y, 0, 0), q(src.at(x, y, 0, 0)));
    }
}

}  // namespace
}  // namespace h4d
