// End-to-end correctness of the full pipeline: every execution mode, filter
// composition, representation and distribution policy must produce feature
// maps identical to the sequential reference of paper Fig. 2.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/analysis.hpp"
#include "fs/executor_threads.hpp"
#include "io/phantom.hpp"

namespace h4d::core {
namespace {

namespace fsys = std::filesystem;
using haralick::Feature;
using haralick::Representation;

struct E2EFixture : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);

    io::PhantomConfig pcfg;
    pcfg.dims = {20, 18, 6, 5};
    pcfg.num_tumors = 1;
    pcfg.seed = 11;
    phantom_ = io::generate_phantom(pcfg).volume;
  }
  void TearDown() override { fsys::remove_all(root_); }

  haralick::EngineConfig engine() const {
    haralick::EngineConfig e;
    e.roi_dims = {5, 5, 3, 3};
    e.num_levels = 16;
    e.features = haralick::FeatureSet::paper_eval();
    return e;
  }

  PipelineConfig base_config(int storage_nodes, int replicas = 1) {
    DiskDataset_ = std::make_unique<io::DiskDataset>(
        io::DiskDataset::create(root_, phantom_, storage_nodes, replicas));
    PipelineConfig cfg;
    cfg.dataset_root = root_;
    cfg.engine = engine();
    cfg.texture_chunk = {12, 12, 5, 4};
    cfg.rfr_copies = storage_nodes;
    return cfg;
  }

  void expect_matches_reference(const AnalysisResult& got, double tol = 1e-5) {
    const AnalysisResult ref = analyze_in_memory(phantom_, engine());
    ASSERT_EQ(got.maps.size(), ref.maps.size());
    for (const auto& [f, map] : ref.maps) {
      ASSERT_TRUE(got.maps.count(f)) << haralick::feature_name(f);
      const auto& gmap = got.maps.at(f);
      ASSERT_EQ(gmap.dims(), map.dims());
      for (std::int64_t i = 0; i < map.size(); ++i) {
        const float a = map.storage()[static_cast<std::size_t>(i)];
        const float b = gmap.storage()[static_cast<std::size_t>(i)];
        ASSERT_NEAR(a, b, tol * std::max(1.0f, std::abs(a)))
            << haralick::feature_name(f) << " @" << i;
      }
    }
  }

  Volume4<std::uint16_t> phantom_{Vec4{1, 1, 1, 1}};
  fsys::path root_;
  std::unique_ptr<io::DiskDataset> DiskDataset_;
};

TEST_F(E2EFixture, HmpThreadedMatchesReference) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::HMP;
  cfg.hmp_copies = 3;
  expect_matches_reference(analyze_threaded(cfg));
}

TEST_F(E2EFixture, SplitThreadedFullMatchesReference) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::Split;
  cfg.engine.representation = Representation::Full;
  cfg.hcc_copies = 3;
  cfg.hpc_copies = 2;
  expect_matches_reference(analyze_threaded(cfg));
}

TEST_F(E2EFixture, SplitThreadedSparseMatchesReference) {
  PipelineConfig cfg = base_config(3);
  cfg.variant = Variant::Split;
  cfg.engine.representation = Representation::Sparse;
  cfg.hcc_copies = 4;
  cfg.hpc_copies = 1;
  expect_matches_reference(analyze_threaded(cfg));
}

TEST_F(E2EFixture, HmpSparseRepresentationMatchesReference) {
  PipelineConfig cfg = base_config(1);
  cfg.variant = Variant::HMP;
  cfg.engine.representation = Representation::Sparse;
  cfg.hmp_copies = 2;
  expect_matches_reference(analyze_threaded(cfg));
}

TEST_F(E2EFixture, MultipleIicCopiesMatchReference) {
  PipelineConfig cfg = base_config(4);
  cfg.variant = Variant::HMP;
  cfg.iic_copies = 3;
  cfg.hmp_copies = 2;
  expect_matches_reference(analyze_threaded(cfg));
}

TEST_F(E2EFixture, RoundRobinChunkPolicyMatchesReference) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::Split;
  cfg.chunk_policy = fs::Policy::RoundRobin;
  cfg.matrix_policy = fs::Policy::RoundRobin;
  cfg.hcc_copies = 2;
  cfg.hpc_copies = 2;
  expect_matches_reference(analyze_threaded(cfg));
}

TEST_F(E2EFixture, MpmcQueueProducesByteIdenticalMaps) {
  // --queue selects the inbox machinery, not the computation: on the paper
  // phantom config the mpmc run must reproduce the locked run bit for bit,
  // and both runs must report which implementation they used.
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::Split;
  cfg.engine.representation = Representation::Sparse;
  cfg.hcc_copies = 3;
  cfg.hpc_copies = 2;

  fs::ThreadedOptions locked_opt;
  locked_opt.queue = fs::QueueImpl::Locked;
  fs::ThreadedOptions mpmc_opt;
  mpmc_opt.queue = fs::QueueImpl::Mpmc;

  const AnalysisResult locked = analyze_threaded(cfg, locked_opt);
  const AnalysisResult mpmc = analyze_threaded(cfg, mpmc_opt);

  EXPECT_EQ(locked.stats.exec.queue_impl, "locked");
  EXPECT_EQ(mpmc.stats.exec.queue_impl, "mpmc");
  ASSERT_EQ(mpmc.maps.size(), locked.maps.size());
  for (const auto& [f, map] : locked.maps) {
    ASSERT_EQ(mpmc.maps.at(f).storage(), map.storage()) << haralick::feature_name(f);
  }
  expect_matches_reference(mpmc);
}

TEST_F(E2EFixture, SimulatedRunProducesIdenticalMaps) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::Split;
  cfg.engine.representation = Representation::Sparse;
  cfg.hcc_copies = 3;
  cfg.hpc_copies = 1;
  cfg.rfr_nodes = {0, 1};
  cfg.iic_nodes = {2};
  cfg.hcc_nodes = {3, 4, 5};
  cfg.hpc_nodes = {6};
  cfg.uso_nodes = {7};

  sim::SimOptions sopt;
  sopt.cluster = sim::make_piii_cluster(8);

  const AnalysisResult threaded = analyze_threaded(cfg);
  const AnalysisResult simulated = analyze_simulated(cfg, sopt);

  ASSERT_EQ(threaded.maps.size(), simulated.maps.size());
  for (const auto& [f, map] : threaded.maps) {
    const auto& smap = simulated.maps.at(f);
    ASSERT_EQ(map.storage(), smap.storage()) << haralick::feature_name(f);
  }
  expect_matches_reference(simulated);
  EXPECT_GT(simulated.sim.total_seconds, 0.0);
  EXPECT_GT(simulated.sim.network_transfers, 0);
}

TEST_F(E2EFixture, SimulatedHmpMatchesReference) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::HMP;
  cfg.hmp_copies = 4;
  cfg.rfr_nodes = {0, 1};
  cfg.iic_nodes = {2};
  cfg.hmp_nodes = {3, 4, 5, 6};
  cfg.uso_nodes = {7};
  sim::SimOptions sopt;
  sopt.cluster = sim::make_piii_cluster(8);
  expect_matches_reference(analyze_simulated(cfg, sopt));
}

TEST_F(E2EFixture, AllFourteenFeaturesThroughPipeline) {
  PipelineConfig cfg = base_config(2);
  cfg.engine.features = haralick::FeatureSet::all();
  cfg.variant = Variant::Split;
  cfg.hcc_copies = 2;
  cfg.hpc_copies = 2;
  const AnalysisResult ref = analyze_in_memory(phantom_, cfg.engine);
  const AnalysisResult got = analyze_threaded(cfg);
  ASSERT_EQ(got.maps.size(), static_cast<std::size_t>(haralick::kNumFeatures));
  for (const auto& [f, map] : ref.maps) {
    const auto& gmap = got.maps.at(f);
    for (std::int64_t i = 0; i < map.size(); ++i) {
      ASSERT_NEAR(map.storage()[static_cast<std::size_t>(i)],
                  gmap.storage()[static_cast<std::size_t>(i)],
                  1e-4 * std::max(1.0f, std::abs(map.storage()[static_cast<std::size_t>(i)])))
          << haralick::feature_name(f);
    }
  }
}

TEST_F(E2EFixture, ReplicatedHealthyRunMatchesReferenceWithoutFailovers) {
  PipelineConfig cfg = base_config(3, 2);
  cfg.variant = Variant::HMP;
  cfg.hmp_copies = 2;
  const AnalysisResult got = analyze_threaded(cfg);
  expect_matches_reference(got);
  // Replication must not duplicate reads or reroute anything while every
  // node is healthy.
  EXPECT_EQ(got.stats.exec.replica_failovers, 0);
  EXPECT_EQ(got.stats.exec.nodes_evicted, 0);
}

TEST_F(E2EFixture, ReplicatedRunSurvivesDeletedNodeDirByteIdentical) {
  PipelineConfig cfg = base_config(3, 2);
  cfg.variant = Variant::HMP;
  cfg.hmp_copies = 2;
  const AnalysisResult healthy = analyze_threaded(cfg);

  fsys::remove_all(root_ / io::node_dir_name(1));
  const AnalysisResult degraded = analyze_threaded(cfg);

  ASSERT_EQ(degraded.maps.size(), healthy.maps.size());
  for (const auto& [f, map] : healthy.maps) {
    ASSERT_EQ(degraded.maps.at(f).storage(), map.storage()) << haralick::feature_name(f);
  }
  // The rerouted reads are visible in the run's accounting.
  EXPECT_GT(degraded.faults.replica_failovers, 0);
  EXPECT_EQ(degraded.stats.exec.replica_failovers, degraded.faults.replica_failovers);
}

TEST_F(E2EFixture, DeadNodesFlagReroutesWithoutChangingOutput) {
  PipelineConfig cfg = base_config(3, 2);
  cfg.variant = Variant::Split;
  cfg.hcc_copies = 2;
  cfg.hpc_copies = 2;
  cfg.dead_nodes = {2};  // directory still exists; operator declared it dead
  const AnalysisResult got = analyze_threaded(cfg);
  expect_matches_reference(got);
  EXPECT_GT(got.faults.replica_failovers, 0);
}

TEST_F(E2EFixture, UnreplicatedRunRefusesToStartWithoutCoverage) {
  PipelineConfig cfg = base_config(3, 1);
  fsys::remove_all(root_ / io::node_dir_name(0));
  // With r = 1 a lost node means lost slices; the run must fail up front
  // instead of producing silently incomplete maps.
  EXPECT_THROW(analyze_threaded(cfg), std::runtime_error);
}

TEST_F(E2EFixture, RfrCopyCountMustMatchStorageNodes) {
  PipelineConfig cfg = base_config(2);
  cfg.rfr_copies = 3;
  EXPECT_THROW(build_pipeline(cfg, std::make_shared<filters::CollectedResults>()),
               std::invalid_argument);
}

TEST_F(E2EFixture, CollectModeRequiresSink) {
  PipelineConfig cfg = base_config(2);
  cfg.output = OutputMode::Collect;
  EXPECT_THROW(build_pipeline(cfg, nullptr), std::invalid_argument);
}

TEST_F(E2EFixture, UnstitchedOutputWritesSampleFiles) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::HMP;
  cfg.output = OutputMode::Unstitched;
  cfg.output_dir = root_ / "out";
  const fs::FilterGraph g = build_pipeline(cfg);
  fs::run_threaded(g);

  std::size_t files = 0, bytes = 0;
  for (const auto& e : fsys::directory_iterator(cfg.output_dir)) {
    ++files;
    bytes += fsys::file_size(e.path());
  }
  EXPECT_EQ(files, 4u);  // one per paper-eval feature, single USO copy
  const std::int64_t samples =
      num_roi_origins(phantom_.dims(), cfg.engine.roi_dims) * 4;
  EXPECT_EQ(bytes, static_cast<std::size_t>(samples) * sizeof(filters::FeatureSample));
}

TEST_F(E2EFixture, ImageOutputWritesPgmSeries) {
  PipelineConfig cfg = base_config(2);
  cfg.variant = Variant::HMP;
  cfg.output = OutputMode::Images;
  cfg.output_dir = root_ / "img";
  fs::run_threaded(build_pipeline(cfg));

  std::size_t pgms = 0;
  for (const auto& e : fsys::directory_iterator(cfg.output_dir)) {
    if (e.path().extension() == ".pgm") ++pgms;
  }
  const Region4 origins = roi_origin_region(phantom_.dims(), cfg.engine.roi_dims);
  EXPECT_EQ(pgms, static_cast<std::size_t>(4 * origins.size[2] * origins.size[3]));
}

}  // namespace
}  // namespace h4d::core
