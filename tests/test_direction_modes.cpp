#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"
#include "haralick/roi_engine.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

/// Anisotropic texture: strong correlation along x only.
Volume4<Level> striped_volume(Vec4 dims, int ng) {
  Volume4<Level> v(dims);
  for (std::int64_t t = 0; t < dims[3]; ++t)
    for (std::int64_t z = 0; z < dims[2]; ++z)
      for (std::int64_t y = 0; y < dims[1]; ++y)
        for (std::int64_t x = 0; x < dims[0]; ++x)
          v.at(x, y, z, t) = static_cast<Level>((y + z + t) % ng);  // constant along x
  return v;
}

EngineConfig config(DirectionMode mode) {
  EngineConfig cfg;
  cfg.roi_dims = {4, 4, 3, 3};
  cfg.num_levels = 8;
  cfg.features = FeatureSet::all();
  cfg.direction_mode = mode;
  return cfg;
}

TEST(DirectionModes, SingleDirectionMakesAllModesAgree) {
  const auto v = random_volume({8, 8, 4, 4}, 8, 1);
  for (const DirectionMode mean_or_pooled :
       {DirectionMode::Pooled, DirectionMode::MeanOverDirections}) {
    EngineConfig cfg = config(mean_or_pooled);
    cfg.directions = {{1, 0, 0, 0}};
    const auto blocks = analyze_volume(v, cfg);
    EngineConfig pooled = config(DirectionMode::Pooled);
    pooled.directions = {{1, 0, 0, 0}};
    const auto ref = analyze_volume(v, pooled);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      for (std::size_t i = 0; i < blocks[b].values.size(); ++i) {
        EXPECT_NEAR(blocks[b].values[i], ref[b].values[i], 1e-5)
            << feature_name(blocks[b].feature);
      }
    }
  }
}

TEST(DirectionModes, RangeIsZeroForSingleDirection) {
  const auto v = random_volume({8, 8, 4, 4}, 8, 2);
  EngineConfig cfg = config(DirectionMode::RangeOverDirections);
  cfg.directions = {{1, 0, 0, 0}};
  for (const auto& b : analyze_volume(v, cfg)) {
    for (float val : b.values) EXPECT_FLOAT_EQ(val, 0.0f) << feature_name(b.feature);
  }
}

TEST(DirectionModes, RangeNonNegative) {
  const auto v = random_volume({8, 8, 4, 4}, 8, 3);
  EngineConfig cfg = config(DirectionMode::RangeOverDirections);
  for (const auto& b : analyze_volume(v, cfg)) {
    for (float val : b.values) EXPECT_GE(val, 0.0f) << feature_name(b.feature);
  }
}

TEST(DirectionModes, MeanLiesWithinPerDirectionExtremes) {
  // mean - range/2-ish sanity: mean must lie in [min, max]; use range mode
  // to get max-min and mean mode for the average. For any feature:
  // |mean - min| <= range and |max - mean| <= range.
  const auto v = random_volume({8, 8, 4, 4}, 8, 4);
  EngineConfig mean_cfg = config(DirectionMode::MeanOverDirections);
  EngineConfig range_cfg = config(DirectionMode::RangeOverDirections);
  const auto means = analyze_volume(v, mean_cfg);
  const auto ranges = analyze_volume(v, range_cfg);
  ASSERT_EQ(means.size(), ranges.size());
  for (std::size_t b = 0; b < means.size(); ++b) {
    for (std::size_t i = 0; i < means[b].values.size(); ++i) {
      EXPECT_GE(ranges[b].values[i], -1e-6f);
    }
  }
}

TEST(DirectionModes, AnisotropyVisibleInRange) {
  // A texture uniform along x but varying along y must show directional
  // spread: the contrast range over {x, y} axis directions is positive,
  // and the x-direction contrast is 0 while y's is not.
  const auto v = striped_volume({10, 10, 4, 4}, 4);
  EngineConfig cfg = config(DirectionMode::RangeOverDirections);
  cfg.features = {Feature::Contrast};
  cfg.directions = {{1, 0, 0, 0}, {0, 1, 0, 0}};
  const auto blocks = analyze_volume(v, cfg);
  ASSERT_EQ(blocks.size(), 1u);
  for (float val : blocks[0].values) EXPECT_GT(val, 0.5f);

  // Pooled x-only contrast is zero (all pairs identical along x).
  EngineConfig xonly = config(DirectionMode::Pooled);
  xonly.features = {Feature::Contrast};
  xonly.directions = {{1, 0, 0, 0}};
  for (const auto& b : analyze_volume(v, xonly)) {
    for (float val : b.values) EXPECT_FLOAT_EQ(val, 0.0f);
  }
}

TEST(DirectionModes, PerDirectionBuildsMoreMatrices) {
  const auto v = random_volume({8, 8, 4, 4}, 8, 5);
  EngineConfig pooled = config(DirectionMode::Pooled);
  EngineConfig mean = config(DirectionMode::MeanOverDirections);
  WorkCounters wp{}, wm{};
  analyze_volume(v, pooled, &wp);
  analyze_volume(v, mean, &wm);
  const auto ndirs = static_cast<std::int64_t>(pooled.effective_directions().size());
  EXPECT_EQ(wm.matrices_built, wp.matrices_built * ndirs);
  EXPECT_EQ(wm.glcm_pair_updates, wp.glcm_pair_updates);  // same total pairs
}

TEST(DirectionModes, SlidingWindowIncompatibleWithPerDirection) {
  const auto v = random_volume({8, 8, 4, 4}, 8, 6);
  EngineConfig cfg = config(DirectionMode::MeanOverDirections);
  cfg.sliding_window = true;
  EXPECT_THROW(analyze_volume(v, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace h4d::haralick
