// Geometric symmetry properties of the pooled analysis: the full unique
// 4D direction set is closed under axis permutation and reflection, so
// pooled GLCM features must be invariant under transposing the volume.
#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"
#include "haralick/roi_engine.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

/// Transpose x and y of a volume.
Volume4<Level> transpose_xy(const Volume4<Level>& v) {
  const Vec4 d = v.dims();
  Volume4<Level> out({d[1], d[0], d[2], d[3]});
  for (std::int64_t t = 0; t < d[3]; ++t)
    for (std::int64_t z = 0; z < d[2]; ++z)
      for (std::int64_t y = 0; y < d[1]; ++y)
        for (std::int64_t x = 0; x < d[0]; ++x) out.at(y, x, z, t) = v.at(x, y, z, t);
  return out;
}

/// Mirror the volume along x.
Volume4<Level> mirror_x(const Volume4<Level>& v) {
  const Vec4 d = v.dims();
  Volume4<Level> out(d);
  for (std::int64_t t = 0; t < d[3]; ++t)
    for (std::int64_t z = 0; z < d[2]; ++z)
      for (std::int64_t y = 0; y < d[1]; ++y)
        for (std::int64_t x = 0; x < d[0]; ++x)
          out.at(d[0] - 1 - x, y, z, t) = v.at(x, y, z, t);
  return out;
}

TEST(SymmetryProperties, PooledFeaturesInvariantUnderXyTranspose) {
  const auto v = random_volume({9, 9, 4, 4}, 8, 1);
  const auto vt = transpose_xy(v);

  EngineConfig cfg;
  cfg.roi_dims = {4, 4, 3, 3};  // square in x/y so the window transposes onto itself
  cfg.num_levels = 8;
  cfg.features = FeatureSet::all();

  const auto a = analyze_volume(v, cfg);
  const auto b = analyze_volume(vt, cfg);
  ASSERT_EQ(a.size(), b.size());
  // Origin (x, y) of the original corresponds to (y, x) of the transposed.
  const Region4 origins = a[0].origins;
  for (std::size_t f = 0; f < a.size(); ++f) {
    for (std::int64_t t = 0; t < origins.size[3]; ++t)
      for (std::int64_t z = 0; z < origins.size[2]; ++z)
        for (std::int64_t y = 0; y < origins.size[1]; ++y)
          for (std::int64_t x = 0; x < origins.size[0]; ++x) {
            const auto ia = linear_index({x, y, z, t}, origins.size);
            const auto ib = linear_index({y, x, z, t}, b[f].origins.size);
            EXPECT_NEAR(a[f].values[static_cast<std::size_t>(ia)],
                        b[f].values[static_cast<std::size_t>(ib)], 1e-4)
                << feature_name(a[f].feature);
          }
  }
}

TEST(SymmetryProperties, PooledFeaturesInvariantUnderMirror) {
  const auto v = random_volume({10, 8, 4, 4}, 8, 2);
  const auto vm = mirror_x(v);

  EngineConfig cfg;
  cfg.roi_dims = {4, 4, 3, 3};
  cfg.num_levels = 8;
  cfg.features = FeatureSet::all();

  const auto a = analyze_volume(v, cfg);
  const auto b = analyze_volume(vm, cfg);
  const Region4 origins = a[0].origins;
  for (std::size_t f = 0; f < a.size(); ++f) {
    for (std::int64_t t = 0; t < origins.size[3]; ++t)
      for (std::int64_t z = 0; z < origins.size[2]; ++z)
        for (std::int64_t y = 0; y < origins.size[1]; ++y)
          for (std::int64_t x = 0; x < origins.size[0]; ++x) {
            // Mirrored ROI origin: x' = Nx - roi_x - x.
            const std::int64_t xm = origins.size[0] - 1 - x;
            const auto ia = linear_index({x, y, z, t}, origins.size);
            const auto ib = linear_index({xm, y, z, t}, origins.size);
            EXPECT_NEAR(a[f].values[static_cast<std::size_t>(ia)],
                        b[f].values[static_cast<std::size_t>(ib)], 1e-4)
                << feature_name(a[f].feature);
          }
  }
}

TEST(SymmetryProperties, LevelComplementPreservesContrastAndEntropy) {
  // Complementing gray levels (l -> Ng-1-l) reverses intensity but keeps
  // neighbor *differences*, so contrast/entropy/ASM/IDM are invariant.
  const int ng = 8;
  const auto v = random_volume({8, 8, 4, 4}, ng, 3);
  Volume4<Level> c(v.dims());
  for (std::int64_t i = 0; i < v.size(); ++i) {
    c.storage()[static_cast<std::size_t>(i)] =
        static_cast<Level>(ng - 1 - v.storage()[static_cast<std::size_t>(i)]);
  }
  EngineConfig cfg;
  cfg.roi_dims = {4, 4, 3, 3};
  cfg.num_levels = ng;
  cfg.features = {Feature::AngularSecondMoment, Feature::Contrast, Feature::Entropy,
                  Feature::InverseDifferenceMoment, Feature::Correlation};
  const auto a = analyze_volume(v, cfg);
  const auto b = analyze_volume(c, cfg);
  for (std::size_t f = 0; f < a.size(); ++f) {
    for (std::size_t i = 0; i < a[f].values.size(); ++i) {
      EXPECT_NEAR(a[f].values[i], b[f].values[i], 1e-4) << feature_name(a[f].feature);
    }
  }
}

}  // namespace
}  // namespace h4d::haralick
