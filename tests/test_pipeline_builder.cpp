// Structural tests of the pipeline builder and failure injection through
// the executors.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/analysis.hpp"
#include "fs/executor_threads.hpp"
#include "io/phantom.hpp"

namespace h4d::core {
namespace {

namespace fsys = std::filesystem;

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_builder_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    io::PhantomConfig pcfg;
    pcfg.dims = {14, 12, 5, 4};
    const auto phantom = io::generate_phantom(pcfg).volume;
    io::DiskDataset::create(root_, phantom, 2);
  }
  void TearDown() override { fsys::remove_all(root_); }

  PipelineConfig config(Variant v) const {
    PipelineConfig cfg;
    cfg.dataset_root = root_;
    cfg.engine.roi_dims = {4, 4, 3, 3};
    cfg.engine.num_levels = 16;
    cfg.texture_chunk = {8, 8, 5, 4};
    cfg.variant = v;
    cfg.rfr_copies = 2;
    return cfg;
  }

  std::vector<std::string> filter_names(const fs::FilterGraph& g) const {
    std::vector<std::string> names;
    for (const auto& f : g.filters()) names.push_back(f.name);
    return names;
  }

  fsys::path root_;
};

TEST_F(BuilderTest, HmpGraphShape) {
  const fs::FilterGraph g = build_pipeline(config(Variant::HMP));
  EXPECT_EQ(filter_names(g), (std::vector<std::string>{"RFR", "IIC", "HMP", "USO"}));
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_EQ(g.edges()[0].policy, fs::Policy::Explicit);  // RFR->IIC routing
}

TEST_F(BuilderTest, SplitGraphShape) {
  const fs::FilterGraph g = build_pipeline(config(Variant::Split));
  EXPECT_EQ(filter_names(g),
            (std::vector<std::string>{"RFR", "IIC", "HCC", "HPC", "USO"}));
  EXPECT_EQ(g.edges().size(), 4u);
}

TEST_F(BuilderTest, ImageOutputAppendsHicJiw) {
  PipelineConfig cfg = config(Variant::HMP);
  cfg.output = OutputMode::Images;
  const fs::FilterGraph g = build_pipeline(cfg);
  EXPECT_EQ(filter_names(g),
            (std::vector<std::string>{"RFR", "IIC", "HMP", "HIC", "JIW"}));
}

TEST_F(BuilderTest, CollectOutputAppendsCollector) {
  PipelineConfig cfg = config(Variant::Split);
  cfg.output = OutputMode::Collect;
  auto collected = std::make_shared<filters::CollectedResults>();
  const fs::FilterGraph g = build_pipeline(cfg, collected);
  EXPECT_EQ(filter_names(g), (std::vector<std::string>{"RFR", "IIC", "HCC", "HPC", "HIC",
                                                       "Collector"}));
}

TEST_F(BuilderTest, CopiesAndPlacementPropagate) {
  PipelineConfig cfg = config(Variant::Split);
  cfg.hcc_copies = 3;
  cfg.hcc_nodes = {5, 6, 7};
  cfg.hpc_copies = 2;
  cfg.hpc_nodes = {8, 9};
  const fs::FilterGraph g = build_pipeline(cfg);
  const auto& hcc = g.filters()[2];
  EXPECT_EQ(hcc.copies, 3);
  EXPECT_EQ(hcc.placement, (std::vector<int>{5, 6, 7}));
  EXPECT_EQ(g.filters()[3].copies, 2);
}

TEST_F(BuilderTest, MissingDatasetThrows) {
  PipelineConfig cfg = config(Variant::HMP);
  cfg.dataset_root = root_ / "nonexistent";
  EXPECT_THROW(build_pipeline(cfg), std::runtime_error);
}

TEST_F(BuilderTest, ChunkSmallerThanRoiThrows) {
  PipelineConfig cfg = config(Variant::HMP);
  cfg.texture_chunk = {2, 2, 2, 2};
  EXPECT_THROW(build_pipeline(cfg), std::invalid_argument);
}

TEST_F(BuilderTest, CorruptDatasetSurfacesThroughExecutor) {
  // Delete one slice file: the RFR filter must fail, and run_threaded must
  // propagate the error instead of hanging.
  bool deleted = false;
  for (const auto& e : fsys::recursive_directory_iterator(root_)) {
    if (e.path().extension() == ".raw") {
      fsys::remove(e.path());
      deleted = true;
      break;
    }
  }
  ASSERT_TRUE(deleted);
  EXPECT_THROW(analyze_threaded(config(Variant::HMP)), std::runtime_error);
}

TEST_F(BuilderTest, TruncatedSliceSurfacesShortRead) {
  for (const auto& e : fsys::recursive_directory_iterator(root_)) {
    if (e.path().extension() == ".raw") {
      fsys::resize_file(e.path(), 4);
      break;
    }
  }
  EXPECT_THROW(analyze_threaded(config(Variant::Split)), std::runtime_error);
}

}  // namespace
}  // namespace h4d::core
