#include "sim/executor_sim.hpp"

#include <gtest/gtest.h>

#include "toy_filters.hpp"

namespace h4d::sim {
namespace {

using fs::FilterGraph;
using fs::Policy;
using fs::RunStats;
using fs::testing::CollectSink;
using fs::testing::NumberSource;
using fs::testing::ScaleFilter;
using fs::testing::SinkState;

constexpr std::int64_t kWork = 1'000'000;  // 5 ms at the default cost model

/// source -> scale(copies) -> sink, with explicit placement.
FilterGraph make_graph(std::shared_ptr<SinkState> state, int items, int copies,
                       std::vector<int> scale_nodes, Policy policy = Policy::DemandDriven,
                       int src_node = 0, int sink_node = 0) {
  FilterGraph g;
  const int src = g.add_filter(
      {"source", [items] { return std::make_unique<NumberSource>(items, kWork / 10); }, 1,
       {src_node}});
  const int mid = g.add_filter(
      {"scale", [] { return std::make_unique<ScaleFilter>(2, kWork); }, copies,
       std::move(scale_nodes)});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state, kWork / 100); }, 1,
       {sink_node}});
  g.connect(src, 0, mid, policy);
  g.connect(mid, 0, sink, Policy::DemandDriven);
  return g;
}

SimOptions single_node_options(int nodes = 1, int cores = 1) {
  SimOptions opt;
  opt.cluster.add_cluster("test", nodes, 1.0, cores, 100 * kMbit, 100e-6);
  return opt;
}

TEST(SimExecutor, DeliversSameResultsAsLogicRequires) {
  auto state = std::make_shared<SinkState>();
  const auto stats =
      run_simulated(make_graph(state, 50, 1, {0}), single_node_options());
  EXPECT_EQ(state->count(), 50u);
  std::int64_t sum = state->sum();
  EXPECT_EQ(sum, 2 * 50 * 49 / 2);
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(SimExecutor, DeterministicVirtualTime) {
  auto s1 = std::make_shared<SinkState>();
  auto s2 = std::make_shared<SinkState>();
  const auto a = run_simulated(make_graph(s1, 40, 2, {0, 0}), single_node_options());
  const auto b = run_simulated(make_graph(s2, 40, 2, {0, 0}), single_node_options());
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
}

TEST(SimExecutor, MoreNodesReduceMakespan) {
  // The headline scaling property behind paper Fig. 7.
  double prev = 1e18;
  for (int n : {1, 2, 4, 8}) {
    auto state = std::make_shared<SinkState>();
    std::vector<int> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(i);
    const auto stats = run_simulated(make_graph(state, 64, n, nodes),
                                     single_node_options(/*nodes=*/n));
    EXPECT_EQ(state->count(), 64u);
    EXPECT_LT(stats.total_seconds, prev) << n << " nodes";
    prev = stats.total_seconds;
  }
}

TEST(SimExecutor, TwoCopiesOneCoreNoSpeedup) {
  // Two copies multiplexed on a single-CPU node share its power
  // (paper Sec. 5.2): makespan must not improve materially.
  auto s1 = std::make_shared<SinkState>();
  auto s2 = std::make_shared<SinkState>();
  const auto one = run_simulated(make_graph(s1, 64, 1, {0}), single_node_options(1, 1));
  const auto two = run_simulated(make_graph(s2, 64, 2, {0, 0}), single_node_options(1, 1));
  EXPECT_GE(two.total_seconds, 0.95 * one.total_seconds);
}

TEST(SimExecutor, DualCoreNodeRunsTwoCopies) {
  auto s1 = std::make_shared<SinkState>();
  auto s2 = std::make_shared<SinkState>();
  const auto one = run_simulated(make_graph(s1, 64, 1, {0}), single_node_options(1, 2));
  const auto two = run_simulated(make_graph(s2, 64, 2, {0, 0}), single_node_options(1, 2));
  EXPECT_LT(two.total_seconds, 0.7 * one.total_seconds);
}

TEST(SimExecutor, FasterNodesFinishSooner) {
  SimOptions slow;
  slow.cluster.add_cluster("slow", 2, 1.0, 1, 100 * kMbit, 100e-6);
  SimOptions fast;
  fast.cluster.add_cluster("fast", 2, 2.6, 1, 100 * kMbit, 100e-6);
  auto s1 = std::make_shared<SinkState>();
  auto s2 = std::make_shared<SinkState>();
  const auto a = run_simulated(make_graph(s1, 48, 1, {1}), slow);
  const auto b = run_simulated(make_graph(s2, 48, 1, {1}), fast);
  EXPECT_GT(a.total_seconds, 1.5 * b.total_seconds);
}

TEST(SimExecutor, RemoteStreamsCostMoreThanColocated) {
  auto s1 = std::make_shared<SinkState>();
  auto s2 = std::make_shared<SinkState>();
  // Co-located everything vs worker on another node.
  const auto local = run_simulated(make_graph(s1, 64, 1, {0}), single_node_options(2));
  const auto remote = run_simulated(make_graph(s2, 64, 1, {1}), single_node_options(2));
  EXPECT_GT(remote.total_seconds, local.total_seconds);
  EXPECT_GT(remote.network_transfers, 0);
  EXPECT_EQ(s1->sum(), s2->sum());
}

TEST(SimExecutor, DemandDrivenBeatsRoundRobinOnHeterogeneousWorkers) {
  // Paper Fig. 11: demand-driven buffer scheduling outperforms round-robin
  // when transparent copies drain at different speeds.
  SimOptions opt;
  opt.cluster.add_cluster("mixed", 1, 1.0, 1, kGbit, 50e-6);   // node 0: slow (src/sink)
  opt.cluster.nodes.push_back({"fast", 0, 4.0, 1});            // node 1: fast worker
  opt.cluster.nodes.push_back({"slowworker", 0, 1.0, 1});      // node 2: slow worker

  auto s_rr = std::make_shared<SinkState>();
  auto s_dd = std::make_shared<SinkState>();
  const auto rr = run_simulated(make_graph(s_rr, 80, 2, {1, 2}, Policy::RoundRobin), opt);
  const auto dd = run_simulated(make_graph(s_dd, 80, 2, {1, 2}, Policy::DemandDriven), opt);
  EXPECT_LT(dd.total_seconds, rr.total_seconds);
  EXPECT_EQ(s_rr->sum(), s_dd->sum());  // scheduling never changes results
}

TEST(SimExecutor, SharedInterClusterLinkSerializesFlows) {
  // Two clusters joined by a link; sending to two remote workers through a
  // shared link is slower than through dedicated ones.
  auto build = [](int shared_group) {
    SimOptions opt;
    opt.cluster.add_cluster("a", 1, 1.0, 1, kGbit, 50e-6);
    opt.cluster.add_cluster("b", 2, 1.0, 1, kGbit, 50e-6);
    opt.cluster.link_clusters(0, 1, 10 * kMbit, 1e-3, shared_group);
    return opt;
  };
  auto s1 = std::make_shared<SinkState>();
  const auto shared =
      run_simulated(make_graph(s1, 40, 2, {1, 2}, Policy::RoundRobin, 0, 0), build(0));
  EXPECT_EQ(s1->count(), 40u);
  EXPECT_GT(shared.network_bytes, 0);
  EXPECT_GT(shared.network_busy_seconds, 0.0);
}

TEST(SimExecutor, InvalidPlacementRejected) {
  auto state = std::make_shared<SinkState>();
  EXPECT_THROW(run_simulated(make_graph(state, 4, 1, {5}), single_node_options(2)),
               std::invalid_argument);
}

TEST(SimExecutor, MissingInterClusterLinkRejected) {
  SimOptions opt;
  opt.cluster.add_cluster("a", 1, 1.0, 1, kGbit, 50e-6);
  opt.cluster.add_cluster("b", 1, 1.0, 1, kGbit, 50e-6);
  // no link_clusters call
  auto state = std::make_shared<SinkState>();
  EXPECT_THROW(run_simulated(make_graph(state, 4, 1, {1}), opt), std::invalid_argument);
}

TEST(SimExecutor, BusySecondsAccountedPerCopy) {
  auto state = std::make_shared<SinkState>();
  const auto stats = run_simulated(make_graph(state, 32, 2, {0, 1}),
                                   single_node_options(2));
  const double scale_busy = stats.filter_busy_seconds("scale");
  // 32 items x kWork updates at the model's per-update cost.
  const double expect = 32.0 * static_cast<double>(kWork) * CostModel{}.glcm_update;
  EXPECT_NEAR(scale_busy, expect, 0.3 * expect);
}

TEST(SimExecutor, FinishTimesMonotoneDownThePipeline) {
  auto state = std::make_shared<SinkState>();
  const auto stats =
      run_simulated(make_graph(state, 16, 1, {0}), single_node_options());
  EXPECT_LE(stats.filter_finish_time("source"), stats.filter_finish_time("sink"));
  EXPECT_NEAR(stats.filter_finish_time("sink"), stats.total_seconds, 1e-9);
}

// --- failure model ---------------------------------------------------------

FailureModel restart_model(double p_crash, int poison = 12, int max_restarts = 100000) {
  FailureModel fm;
  fm.seed = 42;
  fm.p_crash = p_crash;
  fm.restart_delay_s = 0.5;
  fm.max_restarts = max_restarts;
  fm.poison_threshold = poison;
  fm.policy = fs::SupervisePolicy::RestartCopy;
  return fm;
}

TEST(SimExecutor, FailureRestartRecoversWithoutChangingResults) {
  auto clean_state = std::make_shared<SinkState>();
  const auto clean =
      run_simulated(make_graph(clean_state, 40, 1, {0}), single_node_options());

  auto state = std::make_shared<SinkState>();
  SimOptions opt = single_node_options();
  opt.failures = restart_model(0.3);
  const auto faulty = run_simulated(make_graph(state, 40, 1, {0}), opt);

  // Retried work re-executes exactly once: outputs are bit-identical to the
  // clean run, while rebuild delays make the faulty makespan strictly longer.
  EXPECT_EQ(state->count(), 40u);
  EXPECT_EQ(state->sum(), clean_state->sum());
  EXPECT_GT(faulty.exec.copy_restarts, 0);
  EXPECT_GT(faulty.total_seconds, clean.total_seconds);
  EXPECT_TRUE(clean.exec.clean());
  EXPECT_FALSE(faulty.exec.clean());
}

TEST(SimExecutor, FailureScheduleDeterministicForSeed) {
  auto s1 = std::make_shared<SinkState>();
  auto s2 = std::make_shared<SinkState>();
  SimOptions opt = single_node_options();
  opt.failures = restart_model(0.3);
  const auto a = run_simulated(make_graph(s1, 40, 2, {0, 0}), opt);
  const auto b = run_simulated(make_graph(s2, 40, 2, {0, 0}), opt);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.exec.copy_restarts, b.exec.copy_restarts);
  EXPECT_EQ(s1->sum(), s2->sum());
}

TEST(SimExecutor, FailureFailFastThrows) {
  auto state = std::make_shared<SinkState>();
  SimOptions opt = single_node_options();
  opt.failures = restart_model(1.0);
  opt.failures.policy = fs::SupervisePolicy::FailFast;
  EXPECT_THROW(run_simulated(make_graph(state, 8, 1, {0}), opt), std::runtime_error);
}

TEST(SimExecutor, FailureQuarantineInventoryMatchesSchedule) {
  // Every Data task crashes on every attempt; under quarantine each task
  // crashes poison_threshold times, rebuilds the copy after each crash, then
  // lands in the damage inventory — and the run still completes.
  auto state = std::make_shared<SinkState>();
  SimOptions opt = single_node_options();
  opt.failures = restart_model(1.0, /*poison=*/2);
  opt.failures.policy = fs::SupervisePolicy::Quarantine;
  const auto stats = run_simulated(make_graph(state, 12, 1, {0}), opt);

  EXPECT_EQ(state->count(), 0u);  // nothing survives the scale stage
  EXPECT_EQ(stats.exec.chunks_quarantined, 12);
  EXPECT_EQ(stats.exec.quarantined.size(), 12u);
  EXPECT_EQ(stats.exec.copy_restarts, 2 * 12);
}

TEST(SimExecutor, FailureRestartBudgetExhaustionEscalates) {
  auto state = std::make_shared<SinkState>();
  SimOptions opt = single_node_options();
  opt.failures = restart_model(1.0, /*poison=*/1000, /*max_restarts=*/3);
  EXPECT_THROW(run_simulated(make_graph(state, 8, 1, {0}), opt), std::runtime_error);
}

TEST(SimExecutor, FailureModelParseRoundtrip) {
  const FailureModel fm =
      FailureModel::parse("seed=7,crash=0.05,delay=2,max_restarts=5,poison=3,policy=quarantine");
  EXPECT_TRUE(fm.enabled());
  EXPECT_EQ(fm.seed, 7u);
  EXPECT_DOUBLE_EQ(fm.p_crash, 0.05);
  EXPECT_DOUBLE_EQ(fm.restart_delay_s, 2.0);
  EXPECT_EQ(fm.max_restarts, 5);
  EXPECT_EQ(fm.poison_threshold, 3);
  EXPECT_EQ(fm.policy, fs::SupervisePolicy::Quarantine);
  EXPECT_EQ(FailureModel::parse(fm.str()).str(), fm.str());

  EXPECT_FALSE(FailureModel::parse("").enabled());
  EXPECT_FALSE(FailureModel::parse("off").enabled());
  EXPECT_THROW(FailureModel::parse("bogus=1"), std::runtime_error);
  EXPECT_THROW(FailureModel::parse("crash=2.0"), std::runtime_error);
  EXPECT_THROW(FailureModel::parse("crash"), std::runtime_error);
}

}  // namespace
}  // namespace h4d::sim
