#include "haralick/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <random>

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

EngineConfig config() {
  EngineConfig cfg;
  cfg.roi_dims = {4, 4, 3, 3};
  cfg.num_levels = 16;
  cfg.features = FeatureSet::paper_eval();
  return cfg;
}

void expect_blocks_equal(const std::vector<FeatureBlock>& a,
                         const std::vector<FeatureBlock>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feature, b[i].feature);
    EXPECT_EQ(a[i].origins, b[i].origins);
    ASSERT_EQ(a[i].values.size(), b[i].values.size());
    for (std::size_t j = 0; j < a[i].values.size(); ++j) {
      EXPECT_FLOAT_EQ(a[i].values[j], b[i].values[j])
          << feature_name(a[i].feature) << " @" << j;
    }
  }
}

class ParallelThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelThreads, MatchesSequentialExactly) {
  const auto v = random_volume({14, 12, 6, 5}, 16, 1);
  const EngineConfig cfg = config();
  const auto seq = analyze_volume(v, cfg);
  ParallelOptions opt;
  opt.threads = GetParam();
  const auto par = analyze_volume_parallel(v, cfg, opt);
  expect_blocks_equal(seq, par);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreads, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelEngine, ExplicitChunkDimsRespected) {
  const auto v = random_volume({14, 12, 6, 5}, 16, 2);
  const EngineConfig cfg = config();
  ParallelOptions opt;
  opt.threads = 3;
  opt.chunk_dims = {7, 7, 4, 4};
  expect_blocks_equal(analyze_volume(v, cfg), analyze_volume_parallel(v, cfg, opt));
}

TEST(ParallelEngine, SlidingWindowComposes) {
  const auto v = random_volume({16, 12, 5, 5}, 16, 3);
  EngineConfig cfg = config();
  cfg.sliding_window = true;
  ParallelOptions opt;
  opt.threads = 4;
  EngineConfig plain = config();
  expect_blocks_equal(analyze_volume(v, plain), analyze_volume_parallel(v, cfg, opt));
}

TEST(ParallelEngine, SparseRepresentationComposes) {
  const auto v = random_volume({12, 12, 5, 4}, 16, 4);
  EngineConfig cfg = config();
  cfg.representation = Representation::Sparse;
  ParallelOptions opt;
  opt.threads = 4;
  const auto seq = analyze_volume(v, config());
  const auto par = analyze_volume_parallel(v, cfg, opt);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (std::size_t j = 0; j < seq[i].values.size(); ++j) {
      EXPECT_NEAR(seq[i].values[j], par[i].values[j],
                  1e-5f * std::max(1.0f, std::abs(seq[i].values[j])));
    }
  }
}

TEST(ParallelEngine, WorkCountersSummed) {
  const auto v = random_volume({12, 12, 5, 4}, 16, 5);
  const EngineConfig cfg = config();
  WorkCounters seq{}, par{};
  analyze_volume(v, cfg, &seq);
  ParallelOptions opt;
  opt.threads = 4;
  analyze_volume_parallel(v, cfg, opt, &par);
  EXPECT_EQ(par.matrices_built, seq.matrices_built);
  // Chunk overlap means the parallel path may do slightly more GLCM work
  // only if chunks were smaller than the volume... pair updates are
  // per-ROI, so they match exactly.
  EXPECT_EQ(par.glcm_pair_updates, seq.glcm_pair_updates);
}

TEST(ParallelEngine, OversizeRoiRejected) {
  const auto v = random_volume({6, 6, 4, 4}, 16, 6);
  EngineConfig cfg = config();
  cfg.roi_dims = {8, 4, 3, 3};
  EXPECT_THROW(analyze_volume_parallel(v, cfg), std::invalid_argument);
}

TEST(ParallelEngine, DefaultsWork) {
  const auto v = random_volume({10, 10, 5, 4}, 16, 7);
  const auto blocks = analyze_volume_parallel(v, config());
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].origins, roi_origin_region(v.dims(), config().roi_dims));
}

}  // namespace
}  // namespace h4d::haralick
