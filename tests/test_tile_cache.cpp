// Shared out-of-core tile cache: budget enforcement, deterministic eviction
// per policy, corrupt-slice exclusion under fault injection, byte-identity
// of cached runs, and a concurrent stress (TSan tier).
#include "io/tile_cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <random>
#include <set>
#include <thread>

#include "core/analysis.hpp"
#include "io/dataset.hpp"
#include "io/fault.hpp"
#include "io/phantom.hpp"
#include "io/resilient_reader.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

/// A standalone meta (no disk) for direct-cache tests: W x H u16 slices.
DatasetMeta make_meta(std::int64_t w, std::int64_t h, std::int64_t nz,
                      std::int64_t nt) {
  DatasetMeta meta;
  meta.dims = {w, h, nz, nt};
  meta.dtype = Dtype::U16;
  meta.value_max = 65535.0;
  return meta;
}

/// Slice bytes with a per-element signature of (t, z, x, y), so a served
/// rectangle can be checked against what the slice held.
std::vector<std::uint8_t> make_slice(const DatasetMeta& meta, std::int64_t t,
                                     std::int64_t z) {
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(meta.slice_bytes()));
  auto* px = reinterpret_cast<std::uint16_t*>(bytes.data());
  for (std::int64_t y = 0; y < meta.dims[1]; ++y)
    for (std::int64_t x = 0; x < meta.dims[0]; ++x) {
      px[y * meta.dims[0] + x] =
          static_cast<std::uint16_t>(1000 * t + 100 * z + 10 * y + x);
    }
  return bytes;
}

TEST(TileCacheConfig, PolicyNamesRoundTrip) {
  EXPECT_EQ(cache_policy_from_name("lru"), CachePolicy::Lru);
  EXPECT_EQ(cache_policy_from_name("clock"), CachePolicy::Clock);
  EXPECT_EQ(cache_policy_from_name("cost"), CachePolicy::Cost);
  EXPECT_EQ(cache_policy_name(CachePolicy::Lru), "lru");
  EXPECT_EQ(cache_policy_name(CachePolicy::Clock), "clock");
  EXPECT_EQ(cache_policy_name(CachePolicy::Cost), "cost");
  EXPECT_THROW(cache_policy_from_name("mru"), std::runtime_error);
}

TEST(TileCache, ServesExactBytesOnFullHitAndCountsProbes) {
  const DatasetMeta meta = make_meta(32, 24, 2, 2);
  TileCacheConfig cfg;
  cfg.budget_bytes = 1 << 20;
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);
  const int tenant = cache.tenant_id("");

  std::vector<std::uint16_t> out(32 * 24, 0xFFFF);
  TileRectStats s0;
  // Nothing resident: the first probe misses and probing stops there.
  EXPECT_FALSE(cache.read_rect(ds, meta, 0, 0, 0, 0, 32, 24, out.data(), tenant, s0));
  EXPECT_EQ(s0.hits, 0);
  EXPECT_EQ(s0.misses, 1);
  EXPECT_EQ(s0.bytes_served, 0);

  const auto bytes = make_slice(meta, 0, 0);
  cache.insert_slice(ds, meta, 0, 0, bytes.data(), 1.0, false, tenant);
  EXPECT_TRUE(cache.slice_fully_cached(ds, meta, 0, 0));
  EXPECT_FALSE(cache.slice_fully_cached(ds, meta, 0, 1));

  // Full-slice rect: 2x2 tile grid => 4 probes, all hits, every byte right.
  TileRectStats s1;
  EXPECT_TRUE(cache.read_rect(ds, meta, 0, 0, 0, 0, 32, 24, out.data(), tenant, s1));
  EXPECT_EQ(s1.hits, 4);
  EXPECT_EQ(s1.misses, 0);
  EXPECT_EQ(s1.bytes_served, 32 * 24 * 2);
  const auto* px = reinterpret_cast<const std::uint16_t*>(bytes.data());
  for (std::int64_t i = 0; i < 32 * 24; ++i) ASSERT_EQ(out[i], px[i]) << i;

  // An unaligned interior rect spanning all 4 tiles.
  std::vector<std::uint16_t> rect(20 * 10, 0);
  TileRectStats s2;
  EXPECT_TRUE(cache.read_rect(ds, meta, 0, 0, 5, 9, 20, 10, rect.data(), tenant, s2));
  EXPECT_EQ(s2.hits, 4);
  for (std::int64_t y = 0; y < 10; ++y)
    for (std::int64_t x = 0; x < 20; ++x) {
      ASSERT_EQ(rect[y * 20 + x], px[(y + 9) * 32 + (x + 5)]) << x << "," << y;
    }

  const TileCacheStats totals = cache.stats();
  EXPECT_EQ(totals.lookups, totals.hits + totals.misses);
  EXPECT_EQ(totals.hits, 8);
  EXPECT_EQ(totals.misses, 1);
}

TEST(TileCache, BudgetIsEnforcedAndEvictionsCounted) {
  const DatasetMeta meta = make_meta(16, 16, 8, 4);  // one 512-byte tile/slice
  TileCacheConfig cfg;
  cfg.budget_bytes = 4 * 512;  // room for exactly 4 tiles
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  cfg.shards = 1;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);
  const int tenant = cache.tenant_id("");

  for (std::int64_t t = 0; t < 4; ++t)
    for (std::int64_t z = 0; z < 8; ++z) {
      const auto bytes = make_slice(meta, t, z);
      cache.insert_slice(ds, meta, t, z, bytes.data(), 1.0, false, tenant);
      EXPECT_LE(cache.resident_bytes(), cfg.budget_bytes);
    }
  const TileCacheStats s = cache.stats();
  EXPECT_EQ(s.resident_tiles, 4);
  EXPECT_EQ(s.resident_bytes, 4 * 512);
  EXPECT_EQ(s.evictions, 32 - 4);

  // Oversized tiles are skipped, not force-fitted.
  const DatasetMeta big = make_meta(128, 128, 1, 1);
  TileCacheConfig tiny;
  tiny.budget_bytes = 1024;  // < one 128x128x2 tile
  tiny.tile_w = 128;
  tiny.tile_h = 128;
  tiny.shards = 1;
  TileCache small(tiny);
  const auto bytes = make_slice(big, 0, 0);
  small.insert_slice(TileCache::dataset_key("/y", big), big, 0, 0, bytes.data(), 1.0,
                     false, small.tenant_id(""));
  EXPECT_EQ(small.resident_bytes(), 0);
}

/// Which slices (single-tile each) survive after inserting 0..n-1 into a
/// k-slice-capacity cache, touching `touched` in order between the fill and
/// the overflow inserts.
std::set<std::int64_t> survivors(CachePolicy policy,
                                 const std::vector<std::int64_t>& touched) {
  const DatasetMeta meta = make_meta(16, 16, 8, 1);
  TileCacheConfig cfg;
  cfg.budget_bytes = 4 * 512;
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  cfg.shards = 1;  // single shard pins the global eviction order
  cfg.policy = policy;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);
  const int tenant = cache.tenant_id("");

  for (std::int64_t z = 0; z < 4; ++z) {
    const auto bytes = make_slice(meta, 0, z);
    cache.insert_slice(ds, meta, 0, z, bytes.data(), 1.0, false, tenant);
  }
  std::vector<std::uint16_t> out(16 * 16);
  for (const std::int64_t z : touched) {
    TileRectStats s;
    EXPECT_TRUE(cache.read_rect(ds, meta, 0, z, 0, 0, 16, 16, out.data(), tenant, s));
  }
  for (std::int64_t z = 4; z < 6; ++z) {  // two inserts => two evictions
    const auto bytes = make_slice(meta, 0, z);
    cache.insert_slice(ds, meta, 0, z, bytes.data(), 1.0, false, tenant);
  }
  std::set<std::int64_t> alive;
  for (std::int64_t z = 0; z < 8; ++z) {
    if (cache.slice_fully_cached(ds, meta, 0, z)) alive.insert(z);
  }
  return alive;
}

TEST(TileCache, LruEvictsLeastRecentlyUsedDeterministically) {
  // Fill 0,1,2,3; touch 0 and 1; insert 4,5 => victims are 2 then 3.
  const std::set<std::int64_t> alive = survivors(CachePolicy::Lru, {0, 1});
  EXPECT_EQ(alive, (std::set<std::int64_t>{0, 1, 4, 5}));
  // Repeatability: the same sequence gives the same survivors.
  EXPECT_EQ(survivors(CachePolicy::Lru, {0, 1}), alive);
}

TEST(TileCache, ClockGivesTouchedTilesASecondChance) {
  // Fill 0,1,2,3; touch 0 and 1 (sets their ref bits); insert 4,5. The clock
  // hand clears 0/1's ref bits instead of evicting them, so the untouched
  // 2 and 3 go — same survivors as LRU here, reached via second chance.
  const std::set<std::int64_t> alive = survivors(CachePolicy::Clock, {0, 1});
  EXPECT_EQ(alive, (std::set<std::int64_t>{0, 1, 4, 5}));
  // Divergence from LRU: touch everything, then insert. LRU evicts the two
  // oldest-touched (0, 1); clock clears every ref bit on the first sweep and
  // then evicts from the cold end deterministically.
  const std::set<std::int64_t> lru = survivors(CachePolicy::Lru, {3, 2, 1, 0});
  EXPECT_EQ(lru, (std::set<std::int64_t>{0, 1, 4, 5}));
  const std::set<std::int64_t> clock = survivors(CachePolicy::Clock, {3, 2, 1, 0});
  EXPECT_EQ(clock.size(), 4u);
  EXPECT_EQ(survivors(CachePolicy::Clock, {3, 2, 1, 0}), clock);  // deterministic
}

TEST(TileCache, CostPolicyKeepsExpensiveTiles) {
  const DatasetMeta meta = make_meta(16, 16, 8, 1);
  TileCacheConfig cfg;
  cfg.budget_bytes = 4 * 512;
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  cfg.shards = 1;
  cfg.policy = CachePolicy::Cost;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);
  const int tenant = cache.tenant_id("");

  // Slice 0 was a degraded-replica read (expensive to refetch); 1..3 cheap.
  for (std::int64_t z = 0; z < 4; ++z) {
    const auto bytes = make_slice(meta, 0, z);
    cache.insert_slice(ds, meta, 0, z, bytes.data(), z == 0 ? 4.0 : 1.0, false, tenant);
  }
  for (std::int64_t z = 4; z < 7; ++z) {
    const auto bytes = make_slice(meta, 0, z);
    cache.insert_slice(ds, meta, 0, z, bytes.data(), 1.0, false, tenant);
  }
  // Three evictions happened; the expensive slice 0 must have survived all.
  EXPECT_TRUE(cache.slice_fully_cached(ds, meta, 0, 0));
  EXPECT_EQ(cache.stats().evictions, 3);
}

TEST(TileCache, PerTenantAccountingSumsToGlobal) {
  const DatasetMeta meta = make_meta(16, 16, 4, 1);
  TileCacheConfig cfg;
  cfg.budget_bytes = 1 << 20;
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);
  const int alice = cache.tenant_id("alice");
  const int bob = cache.tenant_id("bob");
  EXPECT_NE(alice, bob);
  EXPECT_EQ(alice, cache.tenant_id("alice"));  // interning is stable

  const auto b0 = make_slice(meta, 0, 0);
  const auto b1 = make_slice(meta, 0, 1);
  cache.insert_slice(ds, meta, 0, 0, b0.data(), 1.0, false, alice);
  cache.insert_slice(ds, meta, 0, 1, b1.data(), 1.0, false, bob);
  std::vector<std::uint16_t> out(16 * 16);
  TileRectStats s;
  EXPECT_TRUE(cache.read_rect(ds, meta, 0, 0, 0, 0, 16, 16, out.data(), alice, s));
  EXPECT_TRUE(cache.read_rect(ds, meta, 0, 1, 0, 0, 16, 16, out.data(), alice, s));
  EXPECT_FALSE(cache.read_rect(ds, meta, 0, 2, 0, 0, 16, 16, out.data(), bob, s));

  std::int64_t hits = 0, misses = 0, resident = 0;
  for (const TenantCacheStats& t : cache.tenant_stats()) {
    hits += t.hits;
    misses += t.misses;
    resident += t.resident_bytes;
    if (t.tenant == "alice") {
      EXPECT_EQ(t.hits, 2);
      EXPECT_EQ(t.resident_bytes, 512);  // alice filled slice 0
    }
    if (t.tenant == "bob") {
      EXPECT_EQ(t.misses, 1);
      EXPECT_EQ(t.resident_bytes, 512);
    }
  }
  const TileCacheStats g = cache.stats();
  EXPECT_EQ(hits, g.hits);
  EXPECT_EQ(misses, g.misses);
  EXPECT_EQ(resident, g.resident_bytes);
}

TEST(TileCache, DrainUnmeteredConservesTotals) {
  const DatasetMeta meta = make_meta(16, 16, 8, 1);
  TileCacheConfig cfg;
  cfg.budget_bytes = 2 * 512;
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  cfg.shards = 1;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);
  const int tenant = cache.tenant_id("");
  for (std::int64_t z = 0; z < 6; ++z) {
    const auto bytes = make_slice(meta, 0, z);
    cache.insert_slice(ds, meta, 0, z, bytes.data(), 1.0, /*prefetched=*/z % 2 == 0,
                       tenant);
  }
  std::int64_t ev = 0, pi = 0, pu = 0;
  cache.drain_unmetered(ev, pi, pu);
  EXPECT_EQ(ev, cache.stats().evictions);
  EXPECT_EQ(pi, cache.stats().prefetch_issued);
  // A second drain yields nothing: the counters land exactly once.
  std::int64_t ev2 = 0, pi2 = 0, pu2 = 0;
  cache.drain_unmetered(ev2, pi2, pu2);
  EXPECT_EQ(ev2 + pi2 + pu2, 0);
  EXPECT_LE(cache.stats().prefetch_useful, cache.stats().prefetch_issued);
  (void)pu;
}

class TileCacheDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_tile_cache_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    vol_ = Volume4<std::uint16_t>({12, 10, 6, 4});
    std::mt19937_64 rng(4242);
    std::uniform_int_distribution<int> u(0, 4000);
    for (auto& x : vol_.storage()) x = static_cast<std::uint16_t>(u(rng));
  }
  void TearDown() override { fsys::remove_all(root_); }

  fsys::path root_;
  Volume4<std::uint16_t> vol_{Vec4{1, 1, 1, 1}};
};

TEST_F(TileCacheDiskTest, CorruptSlicesAreNeverCached) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);

  FaultConfig fc;
  fc.seed = 17;
  fc.p_corrupt = 0.4;  // sticky per-slice corruption
  fc.really_sleep = false;
  FaultInjector inj(fc);
  std::set<std::int64_t> corrupt;
  for (std::int64_t t = 0; t < vol_.dims()[3]; ++t)
    for (std::int64_t z = 0; z < vol_.dims()[2]; ++z) {
      if (inj.is_slice_corrupted(t, z)) corrupt.insert(t * vol_.dims()[2] + z);
    }
  ASSERT_FALSE(corrupt.empty());
  ASSERT_LT(corrupt.size(), static_cast<std::size_t>(vol_.dims()[2] * vol_.dims()[3]));

  TileCacheConfig ccfg;
  ccfg.budget_bytes = 1 << 20;
  ccfg.tile_w = 12;
  ccfg.tile_h = 10;
  TileCache cache(ccfg);
  const std::uint64_t key = TileCache::dataset_key(root_.string(), ds.meta());

  ResilienceConfig rc;
  rc.policy = DegradePolicy::SkipAndFill;
  rc.retry.max_attempts = 2;
  rc.retry.really_sleep = false;
  rc.fill_value = 777;
  ResilientReader reader(ds.node_reader(0), rc, &inj);
  reader.attach_cache(&cache, key, cache.tenant_id(""));

  std::vector<std::uint16_t> out(12 * 10);
  for (const SliceRef& s : reader.slices()) {
    const bool ok = reader.read_slice_region(s, 0, 0, 12, 10, out.data());
    const bool bad = corrupt.count(s.t * vol_.dims()[2] + s.z) != 0;
    EXPECT_EQ(ok, !bad) << "t=" << s.t << " z=" << s.z;
    // The cache holds exactly the verified slices; a corrupt slice's tiles
    // must never appear, not even after the skip-and-fill completed.
    EXPECT_EQ(cache.slice_fully_cached(key, ds.meta(), s.t, s.z), !bad)
        << "t=" << s.t << " z=" << s.z;
  }
  EXPECT_GT(cache.stats().resident_tiles, 0);
}

TEST_F(TileCacheDiskTest, CachedRereadIsByteIdenticalAndTouchesNoDisk) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  TileCacheConfig ccfg;
  ccfg.budget_bytes = 1 << 20;
  ccfg.tile_w = 8;
  ccfg.tile_h = 8;
  TileCache cache(ccfg);
  const std::uint64_t key = TileCache::dataset_key(root_.string(), ds.meta());

  ResilienceConfig rc;
  rc.retry.really_sleep = false;

  std::vector<std::uint16_t> cold(12 * 10), warm(12 * 10);
  std::int64_t cold_bytes = 0;
  {
    ResilientReader reader(ds.node_reader(0), rc);
    reader.attach_cache(&cache, key, cache.tenant_id(""));
    for (const SliceRef& s : reader.slices()) {
      EXPECT_TRUE(reader.read_slice_region(s, 0, 0, 12, 10, cold.data()));
    }
    cold_bytes = reader.bytes_read();
    EXPECT_GT(cold_bytes, 0);
  }
  {
    ResilientReader reader(ds.node_reader(0), rc);
    reader.attach_cache(&cache, key, cache.tenant_id(""));
    for (const SliceRef& s : reader.slices()) {
      EXPECT_TRUE(reader.read_slice_region(s, 0, 0, 12, 10, warm.data()));
      for (std::int64_t y = 0; y < 10; ++y)
        for (std::int64_t x = 0; x < 12; ++x) {
          ASSERT_EQ(warm[y * 12 + x], vol_.at(x, y, s.z, s.t));
        }
    }
    EXPECT_EQ(reader.bytes_read(), 0);  // fully served from cache
    EXPECT_GT(reader.cache_bytes_served(), 0);
    EXPECT_EQ(reader.cache_misses(), 0);
  }
}

TEST(TileCacheStress, ConcurrentReadersAndWritersKeepBudgetAndIdentity) {
  const DatasetMeta meta = make_meta(32, 32, 16, 4);
  TileCacheConfig cfg;
  cfg.budget_bytes = 48 * 1024;  // forces steady eviction under load
  cfg.tile_w = 16;
  cfg.tile_h = 16;
  cfg.shards = 4;
  TileCache cache(cfg);
  const std::uint64_t ds = TileCache::dataset_key("/x", meta);

  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const int tenant = cache.tenant_id("t" + std::to_string(i % 3));
      std::mt19937_64 rng(static_cast<std::uint64_t>(i) * 7919 + 1);
      std::vector<std::uint16_t> out(32 * 32);
      for (int iter = 0; iter < kIters; ++iter) {
        const auto t = static_cast<std::int64_t>(rng() % 4);
        const auto z = static_cast<std::int64_t>(rng() % 16);
        TileRectStats s;
        if (cache.read_rect(ds, meta, t, z, 0, 0, 32, 32, out.data(), tenant, s)) {
          // Served bytes must carry the slice's signature: stale or torn
          // tiles would break here.
          const auto expect = make_slice(meta, t, z);
          const auto* px = reinterpret_cast<const std::uint16_t*>(expect.data());
          for (std::int64_t k = 0; k < 32 * 32; ++k) ASSERT_EQ(out[k], px[k]);
        } else {
          const auto bytes = make_slice(meta, t, z);
          cache.insert_slice(ds, meta, t, z, bytes.data(), 1.0, iter % 2 == 0, tenant);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const TileCacheStats s = cache.stats();
  EXPECT_LE(cache.resident_bytes(), cfg.budget_bytes);
  EXPECT_EQ(s.lookups, s.hits + s.misses);
  EXPECT_LE(s.prefetch_useful, s.prefetch_issued);
  std::int64_t tenant_resident = 0;
  for (const TenantCacheStats& t : cache.tenant_stats()) {
    tenant_resident += t.resident_bytes;
  }
  EXPECT_EQ(tenant_resident, s.resident_bytes);
}

/// End-to-end: an analysis with the cache (and prefetch) on must produce
/// byte-identical feature maps, with the cache counters conserved in the
/// run's meters and metrics report.
class CacheE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_cache_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    PhantomConfig pcfg;
    pcfg.dims = {16, 14, 5, 4};
    pcfg.num_tumors = 1;
    pcfg.seed = 13;
    phantom_ = generate_phantom(pcfg).volume;
    DiskDataset::create(root_, phantom_, 2, 2);
  }
  void TearDown() override { fsys::remove_all(root_); }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.dataset_root = root_;
    cfg.engine.roi_dims = {5, 5, 3, 3};
    cfg.engine.num_levels = 16;
    cfg.engine.features = haralick::FeatureSet::paper_eval();
    cfg.texture_chunk = {10, 10, 4, 3};
    cfg.rfr_copies = 2;
    cfg.variant = core::Variant::HMP;
    cfg.hmp_copies = 2;
    cfg.resilience.retry.really_sleep = false;
    return cfg;
  }

  static void expect_identical(const core::AnalysisResult& a,
                               const core::AnalysisResult& b) {
    ASSERT_EQ(a.maps.size(), b.maps.size());
    for (const auto& [feature, map] : a.maps) {
      ASSERT_EQ(map.storage(), b.maps.at(feature).storage())
          << haralick::feature_name(feature);
    }
  }

  fsys::path root_;
  Volume4<std::uint16_t> phantom_{Vec4{1, 1, 1, 1}};
};

TEST_F(CacheE2E, CacheOnIsByteIdenticalAndReportsCounters) {
  const core::AnalysisResult off = core::analyze_threaded(config());

  core::PipelineConfig cfg = config();
  cfg.cache.budget_bytes = 4 << 20;
  cfg.cache.tile_w = 8;
  cfg.cache.tile_h = 8;
  cfg.cache.prefetch_depth = 2;
  const core::AnalysisResult on = core::analyze_threaded(cfg);
  expect_identical(off, on);

  ASSERT_TRUE(on.stats.cache.present);
  EXPECT_FALSE(off.stats.cache.present);
  const fs::CacheReport& c = on.stats.cache;
  EXPECT_EQ(c.lookups, c.hits + c.misses);
  EXPECT_LE(c.prefetch_useful, c.prefetch_issued);
  EXPECT_GT(c.lookups, 0);
  // The report's counters are exactly the meter sums (conservation).
  std::int64_t hits = 0, misses = 0, served = 0, issued = 0;
  for (const auto& copy : on.stats.copies) {
    hits += copy.meter.cache_hits;
    misses += copy.meter.cache_misses;
    served += copy.meter.cache_bytes_served;
    issued += copy.meter.prefetch_issued;
  }
  EXPECT_EQ(c.hits, hits);
  EXPECT_EQ(c.misses, misses);
  EXPECT_EQ(c.bytes_served_cache, served);
  EXPECT_EQ(c.prefetch_issued, issued);
}

TEST_F(CacheE2E, SecondRunThroughSharedCacheSkipsDisk) {
  core::PipelineConfig cfg = config();
  cfg.cache.budget_bytes = 8 << 20;
  cfg.cache.prefetch_depth = 0;  // isolate demand caching
  cfg.tile_cache = std::make_shared<TileCache>(cfg.cache);

  const core::AnalysisResult cold = core::analyze_threaded(cfg);
  const core::AnalysisResult warm = core::analyze_threaded(cfg);
  expect_identical(cold, warm);

  ASSERT_TRUE(warm.stats.cache.present);
  EXPECT_LT(warm.stats.cache.bytes_read_disk, cold.stats.cache.bytes_read_disk / 2);
  EXPECT_GT(warm.stats.cache.hits, 0);
  const double rate = static_cast<double>(warm.stats.cache.hits) /
                      static_cast<double>(warm.stats.cache.lookups);
  EXPECT_GE(rate, 0.6);
}

TEST_F(CacheE2E, DegradedReplicaRunWithCacheStaysByteIdentical) {
  const core::AnalysisResult healthy = core::analyze_threaded(config());

  core::PipelineConfig cfg = config();
  cfg.dead_nodes = {0};
  cfg.cache.budget_bytes = 4 << 20;
  cfg.cache.prefetch_depth = 2;
  const core::AnalysisResult degraded = core::analyze_threaded(cfg);
  expect_identical(healthy, degraded);
  ASSERT_TRUE(degraded.stats.cache.present);
}

TEST_F(CacheE2E, FaultedRunWithCacheMatchesFaultedRunWithout) {
  core::PipelineConfig cfg = config();
  cfg.faults.seed = 47;
  cfg.faults.p_corrupt = 0.2;
  cfg.faults.really_sleep = false;
  cfg.resilience.policy = io::DegradePolicy::SkipAndFill;
  cfg.resilience.retry.max_attempts = 2;
  const core::AnalysisResult off = core::analyze_threaded(cfg);
  // With replicas=2 the corrupt primaries fail over, so the drill shows up
  // as checksum failures (not skips) — what matters is that faults fired.
  ASSERT_GT(off.faults.checksum_failures, 0);

  cfg.cache.budget_bytes = 4 << 20;
  cfg.cache.prefetch_depth = 2;  // must be ignored under injection
  const core::AnalysisResult on = core::analyze_threaded(cfg);
  expect_identical(off, on);
  EXPECT_EQ(on.faults.slices_skipped, off.faults.slices_skipped);
  EXPECT_EQ(on.faults.checksum_failures, off.faults.checksum_failures);
  ASSERT_TRUE(on.stats.cache.present);
  EXPECT_EQ(on.stats.cache.prefetch_issued, 0);  // prefetch off under faults
}

TEST_F(CacheE2E, ResumedRunWithCacheStaysByteIdentical) {
  const core::AnalysisResult reference = core::analyze_threaded(config());

  const fsys::path ckpt = root_ / "cache.ckpt";
  core::PipelineConfig cfg = config();
  cfg.checkpoint_path = ckpt;
  cfg.cache.budget_bytes = 4 << 20;
  cfg.cache.prefetch_depth = 2;
  const core::AnalysisResult first = core::analyze_threaded(cfg);
  expect_identical(reference, first);

  // Resume over the completed manifest: everything prunes, and the (cached)
  // run still reports a well-formed cache section.
  cfg.resume = true;
  const core::AnalysisResult resumed = core::analyze_threaded(cfg);
  std::int64_t resumed_chunks = 0;
  for (const auto& copy : resumed.stats.copies) {
    resumed_chunks += copy.meter.chunks_resumed;
  }
  EXPECT_GT(resumed_chunks, 0);
  ASSERT_TRUE(resumed.stats.cache.present);
  EXPECT_EQ(resumed.stats.cache.lookups,
            resumed.stats.cache.hits + resumed.stats.cache.misses);
}

}  // namespace
}  // namespace h4d::io
