// Supervised execution: crash policies, poison quarantine, watchdog kills.
//
// Every fault here is injected deterministically (a toy filter crashes or
// hangs on specific payload values), so the resulting ExecutionReport can be
// compared against the seeded fault schedule exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "fs/executor_threads.hpp"
#include "toy_filters.hpp"

namespace h4d::fs {
namespace {

using testing::CollectSink;
using testing::FlakyFilter;
using testing::FlakyState;
using testing::HangFilter;
using testing::NumberSource;
using testing::PoisonFilter;
using testing::SinkState;

ThreadedOptions supervised(SupervisePolicy policy, int max_restarts = 3,
                           int poison_threshold = 2) {
  ThreadedOptions opt;
  opt.supervise.policy = policy;
  opt.supervise.max_restarts = max_restarts;
  opt.supervise.poison_threshold = poison_threshold;
  return opt;
}

/// source(items) -> mid (from `factory`, `copies` wide) -> sink.
template <typename Factory>
FilterGraph mid_graph(std::shared_ptr<SinkState> state, int items, Factory factory,
                      int copies = 1, Policy policy = Policy::RoundRobin) {
  FilterGraph g;
  const int src = g.add_filter(
      {"source", [items] { return std::make_unique<NumberSource>(items); }, 1, {}});
  const int mid = g.add_filter({"mid", factory, copies, {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, mid, policy);
  g.connect(mid, 0, sink, Policy::DemandDriven);
  return g;
}

std::int64_t count_incidents(const ExecutionReport& r, CopyIncident::Kind kind) {
  return std::count_if(r.incidents.begin(), r.incidents.end(),
                       [kind](const CopyIncident& i) { return i.kind == kind; });
}

// --- fail_fast ------------------------------------------------------------

TEST(Supervisor, FailFastRethrowsAfterJoin) {
  auto state = std::make_shared<SinkState>();
  const auto g = mid_graph(
      state, 10, [] { return std::make_unique<PoisonFilter>(5); });
  EXPECT_THROW(run_threaded(g, supervised(SupervisePolicy::FailFast)),
               std::runtime_error);
}

TEST(Supervisor, FailFastUnderMaxBackpressureDoesNotDeadlock) {
  // Regression: queue_capacity=1 with many in-flight buffers used to leave
  // the producer blocked forever on the crashed consumer's full inbox. The
  // fatal path must close every stream so blocked pushes unwind.
  auto state = std::make_shared<SinkState>();
  ThreadedOptions opt = supervised(SupervisePolicy::FailFast);
  opt.queue_capacity = 1;
  const auto g = mid_graph(
      state, 500, [] { return std::make_unique<PoisonFilter>(150); });
  EXPECT_THROW(run_threaded(g, opt), std::runtime_error);
}

// --- restart_copy ---------------------------------------------------------

TEST(Supervisor, RestartCopyRecoversTransientCrashesWithoutDataLoss) {
  auto state = std::make_shared<SinkState>();
  auto flaky = std::make_shared<FlakyState>();
  const auto g = mid_graph(state, 20, [flaky] {
    return std::make_unique<FlakyFilter>(flaky, std::vector<std::int64_t>{5, 11}, 1);
  });
  const RunStats stats = run_threaded(g, supervised(SupervisePolicy::RestartCopy));

  EXPECT_EQ(state->count(), 20u);  // both crashed buffers were retried
  EXPECT_EQ(state->sum(), 20 * 19 / 2);
  EXPECT_EQ(stats.exec.copy_restarts, 2);
  EXPECT_EQ(stats.exec.chunks_quarantined, 0);
  EXPECT_EQ(stats.exec.buffers_lost, 0);
  EXPECT_EQ(count_incidents(stats.exec, CopyIncident::Kind::Restart), 2);
  std::int64_t meter_restarts = 0;
  for (const CopyStats& c : stats.copies) {
    if (c.filter == "mid") meter_restarts += c.meter.copy_restarts;
  }
  EXPECT_EQ(meter_restarts, 2);
}

TEST(Supervisor, RestartCopyEscalatesOnPoisonBuffer) {
  // The same buffer crashing poison_threshold times means restarts cannot
  // help; under restart_copy that escalates to the fatal path.
  auto state = std::make_shared<SinkState>();
  const auto g = mid_graph(
      state, 10, [] { return std::make_unique<PoisonFilter>(7); });
  EXPECT_THROW(
      run_threaded(g, supervised(SupervisePolicy::RestartCopy, /*max_restarts=*/10)),
      std::runtime_error);
}

TEST(Supervisor, RestartCopyEscalatesWhenBudgetExhausted) {
  // Four distinct buffers each crash once; a budget of 3 rebuilds runs out
  // on the fourth.
  auto state = std::make_shared<SinkState>();
  auto flaky = std::make_shared<FlakyState>();
  const auto g = mid_graph(state, 20, [flaky] {
    return std::make_unique<FlakyFilter>(flaky, std::vector<std::int64_t>{3, 6, 9, 12},
                                         1);
  });
  EXPECT_THROW(
      run_threaded(g, supervised(SupervisePolicy::RestartCopy, /*max_restarts=*/3)),
      std::runtime_error);
}

// --- quarantine -----------------------------------------------------------

TEST(Supervisor, QuarantineInventoryMatchesSeededFaultSchedule) {
  auto state = std::make_shared<SinkState>();
  auto flaky = std::make_shared<FlakyState>();
  // Buffers 4 and 9 crash on every attempt (10 >> poison threshold); the run
  // must complete with exactly those two in the damage inventory.
  const auto g = mid_graph(state, 20, [flaky] {
    return std::make_unique<FlakyFilter>(flaky, std::vector<std::int64_t>{4, 9}, 10);
  });
  const RunStats stats = run_threaded(
      g, supervised(SupervisePolicy::Quarantine, /*max_restarts=*/100,
                    /*poison_threshold=*/2));

  EXPECT_EQ(state->count(), 18u);  // everything except the two poison buffers
  EXPECT_EQ(state->sum(), 20 * 19 / 2 - 4 - 9);
  EXPECT_EQ(stats.exec.chunks_quarantined, 2);
  ASSERT_EQ(stats.exec.quarantined.size(), 2u);
  std::vector<std::int64_t> seqs;
  for (const QuarantinedBuffer& q : stats.exec.quarantined) {
    EXPECT_EQ(q.filter, "mid");
    EXPECT_FALSE(q.reason.empty());
    seqs.push_back(q.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{4, 9}));
  // Each poison buffer costs poison_threshold crashes, and every crash
  // rebuilds the copy.
  EXPECT_EQ(stats.exec.copy_restarts, 4);
  EXPECT_FALSE(stats.exec.clean());
  EXPECT_NE(stats.exec.summary().find("2 quarantined"), std::string::npos);
}

TEST(Supervisor, QuarantineCompletesCleanRunUntouched) {
  auto state = std::make_shared<SinkState>();
  const auto g = mid_graph(
      state, 30, [] { return std::make_unique<PoisonFilter>(-1); }, 2);
  const RunStats stats = run_threaded(g, supervised(SupervisePolicy::Quarantine));
  EXPECT_EQ(state->count(), 30u);
  EXPECT_TRUE(stats.exec.clean());
}

// --- watchdog -------------------------------------------------------------

TEST(Supervisor, WatchdogKillsHungCopyAndSiblingsTakeOver) {
  auto state = std::make_shared<SinkState>();
  // Two transparent copies; the one that draws buffer 6 wedges for 1.5 s.
  // The watchdog (200 ms deadline) must declare it dead, re-route its
  // pending buffers to the live sibling, and send EOS on its behalf so the
  // run completes degraded instead of hanging.
  const auto g = mid_graph(
      state, 40,
      [] {
        return std::make_unique<HangFilter>(6, std::chrono::milliseconds(1500));
      },
      /*copies=*/2, Policy::RoundRobin);
  ThreadedOptions opt;
  opt.supervise.watchdog_deadline_ms = 200.0;
  // A tiny inbox keeps the source blocked on the wedged copy at kill time —
  // which also proves a producer blocked on backpressure is never the one
  // declared dead (its heartbeat refreshes while it waits).
  opt.queue_capacity = 2;
  const RunStats stats = run_threaded(g, opt);

  // The victim buffer itself is gone (its call never produced output); every
  // other buffer must arrive through the surviving copy.
  EXPECT_EQ(state->count() + static_cast<std::size_t>(stats.exec.buffers_lost), 39u);
  EXPECT_EQ(stats.exec.watchdog_kills, 1);
  EXPECT_EQ(count_incidents(stats.exec, CopyIncident::Kind::WatchdogKill), 1);
  std::int64_t killed_copies = 0;
  for (const CopyStats& c : stats.copies) killed_copies += c.meter.watchdog_kills;
  EXPECT_EQ(killed_copies, 1);
}

TEST(Supervisor, WatchdogWithoutSiblingsRunsDegradedAndReportsLoss) {
  auto state = std::make_shared<SinkState>();
  const auto g = mid_graph(state, 12, [] {
    return std::make_unique<HangFilter>(2, std::chrono::milliseconds(1200));
  });
  ThreadedOptions opt;
  opt.supervise.watchdog_deadline_ms = 150.0;
  const RunStats stats = run_threaded(g, opt);  // must not throw or hang

  EXPECT_EQ(stats.exec.watchdog_kills, 1);
  // Buffers stranded in the dead copy's inbox have no live sibling: they are
  // inventoried as lost, and the sink still terminates via the proxy EOS.
  EXPECT_EQ(state->count() + static_cast<std::size_t>(stats.exec.buffers_lost), 11u);
  EXPECT_LT(state->count(), 12u);
}

TEST(Supervisor, WatchdogLeavesHealthyRunAlone) {
  auto state = std::make_shared<SinkState>();
  const auto g = mid_graph(
      state, 50, [] { return std::make_unique<PoisonFilter>(-1); }, 2);
  ThreadedOptions opt;
  opt.supervise.watchdog_deadline_ms = 30000.0;
  const RunStats stats = run_threaded(g, opt);
  EXPECT_EQ(state->count(), 50u);
  EXPECT_EQ(stats.exec.watchdog_kills, 0);
  EXPECT_TRUE(stats.exec.clean());
}

// --- policy names ---------------------------------------------------------

TEST(Supervisor, PolicyNamesRoundTrip) {
  EXPECT_EQ(supervise_policy_from_name("fail"), SupervisePolicy::FailFast);
  EXPECT_EQ(supervise_policy_from_name("fail_fast"), SupervisePolicy::FailFast);
  EXPECT_EQ(supervise_policy_from_name("restart"), SupervisePolicy::RestartCopy);
  EXPECT_EQ(supervise_policy_from_name("restart_copy"), SupervisePolicy::RestartCopy);
  EXPECT_EQ(supervise_policy_from_name("quarantine"), SupervisePolicy::Quarantine);
  EXPECT_THROW(supervise_policy_from_name("bogus"), std::runtime_error);
  EXPECT_EQ(supervise_policy_name(SupervisePolicy::Quarantine), "quarantine");
}

}  // namespace
}  // namespace h4d::fs
