#include "haralick/glcm.hpp"

#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"

namespace h4d::haralick {
namespace {

// 2x2 checkerboard slice: levels 0/1 alternating.
Volume4<Level> checkerboard(Vec4 dims) {
  Volume4<Level> v(dims);
  for (std::int64_t t = 0; t < dims[3]; ++t)
    for (std::int64_t z = 0; z < dims[2]; ++z)
      for (std::int64_t y = 0; y < dims[1]; ++y)
        for (std::int64_t x = 0; x < dims[0]; ++x)
          v.at(x, y, z, t) = static_cast<Level>((x + y + z + t) % 2);
  return v;
}

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

TEST(Glcm, RejectsBadLevelCount) {
  EXPECT_THROW(Glcm(1), std::invalid_argument);
  EXPECT_THROW(Glcm(300), std::invalid_argument);
}

TEST(Glcm, RejectsRoiOutsideVolume) {
  const Volume4<Level> v = checkerboard({4, 4, 1, 1});
  Glcm g(2);
  const auto dirs = axis_directions(ActiveDims::planar2());
  EXPECT_THROW(g.accumulate(v.view(), Region4{{2, 2, 0, 0}, {4, 4, 1, 1}}, dirs),
               std::invalid_argument);
}

TEST(Glcm, HorizontalPairsOnCheckerboard) {
  // 4x4 checkerboard, horizontal distance 1: every adjacent pair is (0,1) or
  // (1,0). 4 rows x 3 pairs = 12 anchor pairs, counted both directions = 24.
  const Volume4<Level> v = checkerboard({4, 4, 1, 1});
  Glcm g(2);
  const std::vector<Vec4> dirs{{1, 0, 0, 0}};
  g.accumulate(v.view(), Region4::whole({4, 4, 1, 1}), dirs);
  EXPECT_EQ(g.total(), 24);
  EXPECT_EQ(g.count(0, 0), 0u);
  EXPECT_EQ(g.count(1, 1), 0u);
  EXPECT_EQ(g.count(0, 1), 12u);
  EXPECT_EQ(g.count(1, 0), 12u);
}

TEST(Glcm, ConstantRegionIsAllDiagonal) {
  Volume4<Level> v({3, 3, 2, 2}, 0);
  for (Level& l : v.storage()) l = 5;
  Glcm g(8);
  const auto dirs = unique_directions(ActiveDims::all4());
  g.accumulate(v.view(), Region4::whole(v.dims()), dirs);
  EXPECT_GT(g.total(), 0);
  EXPECT_EQ(g.count(5, 5), static_cast<std::uint32_t>(g.total()));
}

TEST(Glcm, SymmetricByConstruction) {
  const Volume4<Level> v = random_volume({6, 6, 3, 3}, 16, 1);
  Glcm g(16);
  g.accumulate(v.view(), Region4::whole(v.dims()), unique_directions(ActiveDims::all4()));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Glcm, OppositeDirectionGivesSameMatrix) {
  // Paper Sec. 3: opposite angles yield the same co-occurrence matrix.
  const Volume4<Level> v = random_volume({8, 8, 2, 2}, 8, 2);
  const Region4 roi{{1, 1, 0, 0}, {5, 5, 2, 2}};
  Glcm a(8), b(8);
  a.accumulate(v.view(), roi, {Vec4{1, 1, 0, 0}});
  b.accumulate(v.view(), roi, {Vec4{-1, -1, 0, 0}});
  EXPECT_EQ(a.total(), b.total());
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) EXPECT_EQ(a.count(i, j), b.count(i, j));
}

TEST(Glcm, TotalMatchesPairCountFormula) {
  // For direction d within an ROI of size S, anchor count is
  // prod(S_k - |d_k|); total += 2x that per direction.
  const Volume4<Level> v = random_volume({10, 9, 4, 3}, 32, 3);
  const Region4 roi{{2, 1, 0, 0}, {7, 6, 3, 3}};
  const auto dirs = unique_directions(ActiveDims::all4());
  Glcm g(32);
  g.accumulate(v.view(), roi, dirs);
  std::int64_t expect = 0;
  for (const Vec4& d : dirs) {
    std::int64_t anchors = 1;
    for (int k = 0; k < kDims; ++k) {
      const std::int64_t a = roi.size[k] - std::abs(d[k]);
      anchors *= a > 0 ? a : 0;
    }
    expect += 2 * anchors;
  }
  EXPECT_EQ(g.total(), expect);
}

TEST(Glcm, AccumulateReturnsUpdateCount) {
  const Volume4<Level> v = random_volume({5, 5, 2, 2}, 4, 4);
  Glcm g(4);
  const std::int64_t updates =
      g.accumulate(v.view(), Region4::whole(v.dims()), unique_directions(ActiveDims::all4()));
  EXPECT_EQ(updates, g.total());
}

TEST(Glcm, ClearResets) {
  const Volume4<Level> v = random_volume({4, 4, 2, 2}, 4, 5);
  Glcm g(4);
  g.accumulate(v.view(), Region4::whole(v.dims()), {Vec4{1, 0, 0, 0}});
  ASSERT_GT(g.total(), 0);
  g.clear();
  EXPECT_EQ(g.total(), 0);
  EXPECT_EQ(g.nonzero_upper(), 0);
}

TEST(Glcm, NormalizedProbabilitiesSumToOne) {
  const Volume4<Level> v = random_volume({7, 7, 3, 3}, 32, 6);
  Glcm g(32);
  g.accumulate(v.view(), Region4::whole(v.dims()), unique_directions(ActiveDims::all4()));
  double sum = 0.0;
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; ++j) sum += g.p(i, j);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Glcm, EmptyMatrixProbabilityIsZero) {
  Glcm g(4);
  EXPECT_EQ(g.total(), 0);
  EXPECT_DOUBLE_EQ(g.p(0, 0), 0.0);
}

TEST(Glcm, DirectionLargerThanRoiContributesNothing) {
  const Volume4<Level> v = random_volume({4, 4, 1, 1}, 4, 7);
  Glcm g(4);
  g.accumulate(v.view(), Region4{{0, 0, 0, 0}, {2, 2, 1, 1}}, {Vec4{3, 0, 0, 0}});
  EXPECT_EQ(g.total(), 0);
}

TEST(Glcm, MatrixSizeIndependentOfDirectionAndDistance) {
  // The GLCM is always Ng x Ng (paper Sec. 3).
  Glcm g(32);
  EXPECT_EQ(g.num_levels(), 32);
  const Volume4<Level> v = random_volume({8, 8, 1, 1}, 32, 8);
  g.accumulate(v.view(), Region4::whole(v.dims()), {Vec4{3, 3, 0, 0}});
  EXPECT_EQ(g.num_levels(), 32);
}

}  // namespace
}  // namespace h4d::haralick
