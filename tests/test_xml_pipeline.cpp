// End-to-end: the paper's split pipeline described as an XML document
// (DataCutter style) produces the same results as the programmatic builder.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/analysis.hpp"
#include "filters/registry.hpp"
#include "fs/executor_threads.hpp"
#include "io/phantom.hpp"

namespace h4d {
namespace {

namespace fsys = std::filesystem;

TEST(XmlPipeline, SplitPipelineFromXmlMatchesReference) {
  const fsys::path root =
      fsys::temp_directory_path() / ("h4d_xml_e2e_" + std::to_string(::getpid()));
  fsys::remove_all(root);

  io::PhantomConfig pcfg;
  pcfg.dims = {18, 16, 6, 5};
  pcfg.seed = 3;
  const auto phantom = io::generate_phantom(pcfg).volume;
  io::DiskDataset::create(root, phantom, 2);

  core::PipelineConfig cfg;
  cfg.dataset_root = root;
  cfg.engine.roi_dims = {5, 5, 3, 3};
  cfg.engine.num_levels = 16;
  cfg.engine.representation = haralick::Representation::Sparse;
  cfg.texture_chunk = {12, 12, 5, 4};
  const filters::ParamsPtr params = core::make_params(cfg);

  auto collected = std::make_shared<filters::CollectedResults>();
  const fs::FilterRegistry reg = filters::make_pipeline_registry(params, {}, collected);

  const fs::FilterGraph graph = fs::graph_from_xml(R"(
    <?xml version="1.0"?>
    <!-- the paper's split HCC+HPC chain, Fig. 5 -->
    <filtergraph>
      <filter name="reader"  type="rfr" copies="2"/>
      <filter name="stitch"  type="iic"/>
      <filter name="matrices" type="hcc" copies="2"/>
      <filter name="features" type="hpc" copies="2"/>
      <filter name="outstitch" type="hic"/>
      <filter name="collect" type="collector"/>
      <stream from="reader"   to="stitch"    policy="explicit-aux"/>
      <stream from="stitch"   to="matrices"  policy="demand-driven"/>
      <stream from="matrices" to="features"  policy="round-robin"/>
      <stream from="features" to="outstitch" policy="round-robin"/>
      <stream from="outstitch" to="collect"/>
    </filtergraph>)",
                                                   reg);
  fs::run_threaded(graph);

  const core::AnalysisResult ref = core::analyze_in_memory(phantom, cfg.engine);
  std::lock_guard lk(collected->mu);
  ASSERT_EQ(collected->maps.size(), ref.maps.size());
  for (const auto& [f, map] : ref.maps) {
    const auto& got = collected->maps.at(f);
    ASSERT_EQ(got.dims(), map.dims());
    for (std::int64_t i = 0; i < map.size(); ++i) {
      EXPECT_NEAR(got.storage()[static_cast<std::size_t>(i)],
                  map.storage()[static_cast<std::size_t>(i)],
                  1e-5 * std::max(1.0f, std::abs(map.storage()[static_cast<std::size_t>(i)])))
          << haralick::feature_name(f);
    }
  }
  fsys::remove_all(root);
}

TEST(XmlPipeline, RegistryExposesAllPaperFilterTypes) {
  core::PipelineConfig cfg;
  // Registry construction needs params but not a real dataset on disk for
  // the factories themselves; use a throwaway dataset.
  const fsys::path root =
      fsys::temp_directory_path() / ("h4d_xml_reg_" + std::to_string(::getpid()));
  fsys::remove_all(root);
  Volume4<std::uint16_t> v({8, 8, 3, 3}, 5);
  io::DiskDataset::create(root, v, 1);
  cfg.dataset_root = root;
  cfg.engine.roi_dims = {3, 3, 2, 2};
  const filters::ParamsPtr params = core::make_params(cfg);

  const fs::FilterRegistry reg = filters::make_pipeline_registry(params);
  for (const char* type : {"rfr", "iic", "hmp", "hcc", "hpc", "uso", "hic", "jiw"}) {
    EXPECT_TRUE(reg.has(type)) << type;
    EXPECT_NE(reg.get(type)(), nullptr) << type;
  }
  EXPECT_FALSE(reg.has("collector"));  // only with a CollectedResults
  fsys::remove_all(root);
}

}  // namespace
}  // namespace h4d
