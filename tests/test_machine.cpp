#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace h4d::sim {
namespace {

TEST(ClusterSpec, AddClusterValidation) {
  ClusterSpec s;
  EXPECT_THROW(s.add_cluster("x", 0, 1.0, 1, kGbit, 1e-4), std::invalid_argument);
  EXPECT_THROW(s.add_cluster("x", 2, 0.0, 1, kGbit, 1e-4), std::invalid_argument);
  EXPECT_THROW(s.add_cluster("x", 2, 1.0, 0, kGbit, 1e-4), std::invalid_argument);
  EXPECT_EQ(s.add_cluster("a", 3, 1.0, 1, kGbit, 1e-4), 0);
  EXPECT_EQ(s.add_cluster("b", 2, 2.0, 2, kGbit, 1e-4), 1);
  EXPECT_EQ(s.num_nodes(), 5);
}

TEST(ClusterSpec, NodesInCluster) {
  ClusterSpec s;
  s.add_cluster("a", 3, 1.0, 1, kGbit, 1e-4);
  s.add_cluster("b", 2, 2.0, 2, kGbit, 1e-4);
  EXPECT_EQ(s.nodes_in_cluster(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s.nodes_in_cluster(1), (std::vector<int>{3, 4}));
  EXPECT_TRUE(s.nodes_in_cluster(9).empty());
}

TEST(ClusterSpec, InterLinkLookupIsSymmetric) {
  ClusterSpec s;
  s.add_cluster("a", 1, 1.0, 1, kGbit, 1e-4);
  s.add_cluster("b", 1, 1.0, 1, kGbit, 1e-4);
  EXPECT_EQ(s.find_inter_link(0, 1), -1);
  s.link_clusters(0, 1, 100 * kMbit, 1e-3);
  EXPECT_EQ(s.find_inter_link(0, 1), 0);
  EXPECT_EQ(s.find_inter_link(1, 0), 0);
  EXPECT_THROW(s.link_clusters(1, 1, kGbit, 1e-3), std::invalid_argument);
}

TEST(ClusterSpec, PaperTestbedLayout) {
  const ClusterSpec s = make_paper_testbed();
  EXPECT_EQ(s.num_nodes(), 24 + 5 + 6);
  EXPECT_EQ(s.nodes_in_cluster(kPiii).size(), 24u);
  EXPECT_EQ(s.nodes_in_cluster(kXeon).size(), 5u);
  EXPECT_EQ(s.nodes_in_cluster(kOpteron).size(), 6u);

  // Single CPU on PIII, dual elsewhere; relative speeds ordered.
  EXPECT_EQ(s.nodes[0].cores, 1);
  EXPECT_EQ(s.nodes[24].cores, 2);
  EXPECT_EQ(s.nodes[29].cores, 2);
  EXPECT_GT(s.nodes[24].speed, s.nodes[29].speed);  // Xeon > Opteron
  EXPECT_GT(s.nodes[29].speed, s.nodes[0].speed);   // Opteron > PIII

  // PIII reaches both Gigabit clusters through one shared 100 Mbit uplink.
  const int a = s.find_inter_link(kPiii, kXeon);
  const int b = s.find_inter_link(kPiii, kOpteron);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_EQ(s.inter_links[static_cast<std::size_t>(a)].shared_group,
            s.inter_links[static_cast<std::size_t>(b)].shared_group);
  EXPECT_GE(s.inter_links[static_cast<std::size_t>(a)].shared_group, 0);
  EXPECT_DOUBLE_EQ(s.inter_links[static_cast<std::size_t>(a)].bandwidth, 100 * kMbit);
  // XEON <-> OPTERON is a dedicated Gigabit path.
  const int c = s.find_inter_link(kXeon, kOpteron);
  ASSERT_GE(c, 0);
  EXPECT_EQ(s.inter_links[static_cast<std::size_t>(c)].shared_group, -1);
  EXPECT_DOUBLE_EQ(s.inter_links[static_cast<std::size_t>(c)].bandwidth, kGbit);
}

TEST(ClusterSpec, PiiiPresetSized) {
  EXPECT_EQ(make_piii_cluster().num_nodes(), 24);
  EXPECT_EQ(make_piii_cluster(30).num_nodes(), 30);
  EXPECT_DOUBLE_EQ(make_piii_cluster().clusters[0].nic_bandwidth, 100 * kMbit);
}

}  // namespace
}  // namespace h4d::sim
