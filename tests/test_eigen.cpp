#include "haralick/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace h4d::haralick {
namespace {

TEST(Eigen, EmptyAndScalar) {
  EXPECT_TRUE(symmetric_eigenvalues({}, 0).empty());
  const auto e = symmetric_eigenvalues({4.0}, 1);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e[0], 4.0);
}

TEST(Eigen, DiagonalMatrix) {
  const auto e = symmetric_eigenvalues({3, 0, 0, 0, 1, 0, 0, 0, 2}, 3);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0], 3.0, 1e-12);
  EXPECT_NEAR(e[1], 2.0, 1e-12);
  EXPECT_NEAR(e[2], 1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const auto e = symmetric_eigenvalues({2, 1, 1, 2}, 2);
  EXPECT_NEAR(e[0], 3.0, 1e-10);
  EXPECT_NEAR(e[1], 1.0, 1e-10);
}

TEST(Eigen, RejectsSizeMismatch) {
  EXPECT_THROW(symmetric_eigenvalues({1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(symmetric_eigenvalues({1}, -1), std::invalid_argument);
}

TEST(Eigen, TraceAndFrobeniusPreserved) {
  // Random symmetric matrices: sum of eigenvalues == trace, sum of squares
  // == Frobenius norm^2.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int n : {2, 5, 16, 32}) {
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        const double v = u(rng);
        a[static_cast<std::size_t>(i) * n + j] = v;
        a[static_cast<std::size_t>(j) * n + i] = v;
      }
    }
    double trace = 0.0, frob2 = 0.0;
    for (int i = 0; i < n; ++i) trace += a[static_cast<std::size_t>(i) * n + i];
    for (double v : a) frob2 += v * v;

    const auto e = symmetric_eigenvalues(a, n);
    double esum = 0.0, e2sum = 0.0;
    for (double v : e) {
      esum += v;
      e2sum += v * v;
    }
    EXPECT_NEAR(esum, trace, 1e-8) << "n=" << n;
    EXPECT_NEAR(e2sum, frob2, 1e-8) << "n=" << n;
  }
}

TEST(Eigen, SortedDescending) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  const int n = 12;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = u(rng);
      a[static_cast<std::size_t>(i) * n + j] = v;
      a[static_cast<std::size_t>(j) * n + i] = v;
    }
  const auto e = symmetric_eigenvalues(a, n);
  for (std::size_t i = 1; i < e.size(); ++i) EXPECT_GE(e[i - 1], e[i]);
}

TEST(Eigen, RankOneMatrix) {
  // v v^T with |v|^2 = 14 has eigenvalues {14, 0, 0}.
  const std::vector<double> v{1, 2, 3};
  std::vector<double> a(9);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      a[static_cast<std::size_t>(i) * 3 + j] = v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(j)];
  const auto e = symmetric_eigenvalues(a, 3);
  EXPECT_NEAR(e[0], 14.0, 1e-10);
  EXPECT_NEAR(e[1], 0.0, 1e-10);
  EXPECT_NEAR(e[2], 0.0, 1e-10);
}

}  // namespace
}  // namespace h4d::haralick
