#include "haralick/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace h4d::haralick {
namespace {

TEST(Eigen, EmptyAndScalar) {
  EXPECT_TRUE(symmetric_eigenvalues({}, 0).empty());
  const auto e = symmetric_eigenvalues({4.0}, 1);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e[0], 4.0);
}

TEST(Eigen, DiagonalMatrix) {
  const auto e = symmetric_eigenvalues({3, 0, 0, 0, 1, 0, 0, 0, 2}, 3);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0], 3.0, 1e-12);
  EXPECT_NEAR(e[1], 2.0, 1e-12);
  EXPECT_NEAR(e[2], 1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const auto e = symmetric_eigenvalues({2, 1, 1, 2}, 2);
  EXPECT_NEAR(e[0], 3.0, 1e-10);
  EXPECT_NEAR(e[1], 1.0, 1e-10);
}

TEST(Eigen, RejectsSizeMismatch) {
  EXPECT_THROW(symmetric_eigenvalues({1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(symmetric_eigenvalues({1}, -1), std::invalid_argument);
}

TEST(Eigen, TraceAndFrobeniusPreserved) {
  // Random symmetric matrices: sum of eigenvalues == trace, sum of squares
  // == Frobenius norm^2.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int n : {2, 5, 16, 32}) {
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        const double v = u(rng);
        a[static_cast<std::size_t>(i) * n + j] = v;
        a[static_cast<std::size_t>(j) * n + i] = v;
      }
    }
    double trace = 0.0, frob2 = 0.0;
    for (int i = 0; i < n; ++i) trace += a[static_cast<std::size_t>(i) * n + i];
    for (double v : a) frob2 += v * v;

    const auto e = symmetric_eigenvalues(a, n);
    double esum = 0.0, e2sum = 0.0;
    for (double v : e) {
      esum += v;
      e2sum += v * v;
    }
    EXPECT_NEAR(esum, trace, 1e-8) << "n=" << n;
    EXPECT_NEAR(e2sum, frob2, 1e-8) << "n=" << n;
  }
}

TEST(Eigen, SortedDescending) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  const int n = 12;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = u(rng);
      a[static_cast<std::size_t>(i) * n + j] = v;
      a[static_cast<std::size_t>(j) * n + i] = v;
    }
  const auto e = symmetric_eigenvalues(a, n);
  for (std::size_t i = 1; i < e.size(); ++i) EXPECT_GE(e[i - 1], e[i]);
}

TEST(EigenFast, MatchesJacobiOracleOnRandomSymmetric) {
  // The tridiagonal QL path must agree with the Jacobi oracle to tight
  // absolute tolerance across sizes spanning the f14 support range.
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int n : {1, 2, 3, 5, 16, 32, 64}) {
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i)
      for (int j = i; j < n; ++j) {
        const double v = u(rng);
        a[static_cast<std::size_t>(i) * n + j] = v;
        a[static_cast<std::size_t>(j) * n + i] = v;
      }
    const auto slow = symmetric_eigenvalues(a, n);
    std::vector<double> scratch = a, fast, e;
    EXPECT_TRUE(symmetric_eigenvalues_fast(scratch, n, fast, e)) << "n=" << n;
    ASSERT_EQ(slow.size(), fast.size()) << "n=" << n;
    for (std::size_t i = 0; i < slow.size(); ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-9) << "n=" << n << " idx=" << i;
    }
  }
}

TEST(EigenFast, MatchesJacobiOnPsdGramMatrices) {
  // f14 feeds S = A A^T (PSD, spectral radius 1). Cross-check on that shape.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int n : {4, 8, 32}) {
    std::vector<double> b(static_cast<std::size_t>(n) * n);
    for (double& v : b) v = u(rng);
    std::vector<double> s(static_cast<std::size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int k = 0; k < n; ++k)
          acc += b[static_cast<std::size_t>(i) * n + k] * b[static_cast<std::size_t>(j) * n + k];
        s[static_cast<std::size_t>(i) * n + j] = acc;
      }
    const auto slow = symmetric_eigenvalues(s, n);
    std::vector<double> scratch = s, fast, e;
    EXPECT_TRUE(symmetric_eigenvalues_fast(scratch, n, fast, e)) << "n=" << n;
    for (std::size_t i = 0; i < slow.size(); ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-8) << "n=" << n << " idx=" << i;
    }
  }
}

TEST(EigenFast, EdgeCasesAndErrors) {
  EXPECT_TRUE(symmetric_eigenvalues_fast({}, 0).empty());
  const auto one = symmetric_eigenvalues_fast({4.0}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 4.0);
  const auto diag = symmetric_eigenvalues_fast({3, 0, 0, 0, 1, 0, 0, 0, 2}, 3);
  EXPECT_NEAR(diag[0], 3.0, 1e-12);
  EXPECT_NEAR(diag[1], 2.0, 1e-12);
  EXPECT_NEAR(diag[2], 1.0, 1e-12);
  EXPECT_THROW(symmetric_eigenvalues_fast({1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(symmetric_eigenvalues_fast({1}, -1), std::invalid_argument);
}

TEST(EigenLambda2, MatchesJacobiSecondEigenvalue) {
  std::mt19937_64 rng(5150);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int n : {2, 3, 8, 22, 32, 64}) {
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i)
      for (int j = i; j < n; ++j) {
        const double v = u(rng);
        a[static_cast<std::size_t>(i) * n + j] = v;
        a[static_cast<std::size_t>(j) * n + i] = v;
      }
    const auto slow = symmetric_eigenvalues(a, n);
    const double l2 = symmetric_lambda2(a, n);
    EXPECT_NEAR(l2, slow[1], 1e-10) << "n=" << n;
  }
}

TEST(EigenLambda2, RepeatedTopEigenvalue) {
  // Two identical decoupled blocks: lambda1 == lambda2. Bisection must land
  // on the repeated value, not between clusters.
  // diag blocks [[2,1],[1,2]] twice -> eigenvalues {3, 3, 1, 1}.
  const std::vector<double> a{2, 1, 0, 0,  //
                              1, 2, 0, 0,  //
                              0, 0, 2, 1,  //
                              0, 0, 1, 2};
  EXPECT_NEAR(symmetric_lambda2(a, 4), 3.0, 1e-12);
}

TEST(EigenLambda2, EdgeCases) {
  EXPECT_EQ(symmetric_lambda2({}, 0), 0.0);
  EXPECT_EQ(symmetric_lambda2({7.0}, 1), 0.0);
  EXPECT_NEAR(symmetric_lambda2({2, 1, 1, 2}, 2), 1.0, 1e-12);
  EXPECT_THROW(symmetric_lambda2({1, 2, 3}, 2), std::invalid_argument);
}

TEST(Eigen, RankOneMatrix) {
  // v v^T with |v|^2 = 14 has eigenvalues {14, 0, 0}.
  const std::vector<double> v{1, 2, 3};
  std::vector<double> a(9);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      a[static_cast<std::size_t>(i) * 3 + j] = v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(j)];
  const auto e = symmetric_eigenvalues(a, 3);
  EXPECT_NEAR(e[0], 14.0, 1e-10);
  EXPECT_NEAR(e[1], 0.0, 1e-10);
  EXPECT_NEAR(e[2], 0.0, 1e-10);
}

}  // namespace
}  // namespace h4d::haralick
