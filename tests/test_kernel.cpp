// Equivalence proofs for the cache-aware kernel (kernel.hpp): construction
// and fused feature results must be bit-identical to the reference paths
// (DESIGN.md §11) across level counts, direction sets, strided views, and
// the uint16 tile-saturation spill.
#include "haralick/kernel.hpp"

#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"
#include "haralick/glcm_sparse.hpp"
#include "haralick/roi_engine.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

std::vector<Vec4> random_directions(std::mt19937_64& rng, int count, int max_mag) {
  std::uniform_int_distribution<int> u(-max_mag, max_mag);
  std::vector<Vec4> dirs;
  while (static_cast<int>(dirs.size()) < count) {
    const Vec4 d{u(rng), u(rng), u(rng), u(rng)};
    if (d == Vec4{0, 0, 0, 0}) continue;
    dirs.push_back(d);
  }
  return dirs;
}

void expect_same_matrix(const Glcm& a, const Glcm& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  EXPECT_EQ(a.total(), b.total());
  for (int i = 0; i < a.num_levels(); ++i) {
    for (int j = 0; j < a.num_levels(); ++j) {
      ASSERT_EQ(a.count(i, j), b.count(i, j)) << "cell (" << i << ", " << j << ")";
    }
  }
}

TEST(Kernel, MatchesReferenceAcrossLevelCounts) {
  std::mt19937_64 rng(11);
  for (const int ng : {2, 32, 256}) {
    for (int trial = 0; trial < 8; ++trial) {
      const Vec4 dims{9, 8, 5, 4};
      const auto v = random_volume(dims, ng, static_cast<unsigned>(100 + trial + ng));
      const auto dirs = random_directions(rng, 5, 2);
      const Region4 roi{{1, 1, 1, 0}, {7, 6, 3, 3}};

      Glcm ref(ng);
      const std::int64_t ref_updates = ref.accumulate_reference(v.view(), roi, dirs);
      Glcm ker(ng);
      const std::int64_t ker_updates = ker.accumulate(v.view(), roi, dirs);
      EXPECT_EQ(ker_updates, ref_updates);
      expect_same_matrix(ker, ref);
      EXPECT_TRUE(ker.is_symmetric());
    }
  }
}

TEST(Kernel, MatchesReferenceOnPaperConfiguration) {
  const int ng = 32;
  const auto v = random_volume({13, 13, 7, 7}, ng, 7);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Region4 roi{{2, 2, 2, 2}, {7, 7, 3, 3}};

  Glcm ref(ng);
  const auto ref_updates = ref.accumulate_reference(v.view(), roi, dirs);
  KernelScratch scratch(ng);
  Glcm ker(ng);
  const auto ker_updates = ker.accumulate(v.view(), roi, dirs, &scratch);
  EXPECT_EQ(ker_updates, ref_updates);
  expect_same_matrix(ker, ref);
}

TEST(Kernel, MatchesReferenceOnNonContiguousSubviews) {
  // A strided chunk view: every other x/y element of a larger volume, so the
  // x-stride is 2 and the kernel's generic (non unit-stride) loop runs.
  const int ng = 32;
  const auto v = random_volume({20, 18, 4, 3}, ng, 23);
  const Vec4 sub_dims{10, 9, 4, 3};
  const Vec4 strides{2, 2 * 20, 20 * 18, 20 * 18 * 4};
  const Vol4View<const Level> strided(v.data(), sub_dims, strides);
  ASSERT_EQ(strided.strides()[0], 2);

  std::mt19937_64 rng(5);
  const auto dirs = random_directions(rng, 6, 2);
  const Region4 roi{{1, 0, 0, 0}, {8, 8, 3, 3}};

  Glcm ref(ng);
  ref.accumulate_reference(strided, roi, dirs);
  Glcm ker(ng);
  ker.accumulate(strided, roi, dirs);
  expect_same_matrix(ker, ref);

  // Interior subview of a contiguous volume (unit x-stride, offset base).
  const Region4 inner{{3, 2, 1, 0}, {12, 12, 3, 3}};
  Glcm ref2(ng);
  ref2.accumulate_reference(v.view().subview(inner), roi, dirs);
  Glcm ker2(ng);
  ker2.accumulate(v.view().subview(inner), roi, dirs);
  expect_same_matrix(ker2, ref2);
}

TEST(Kernel, AccumulatesOnTopOfExistingCounts) {
  const int ng = 16;
  const auto v = random_volume({8, 8, 3, 3}, ng, 3);
  const std::vector<Vec4> d1{{1, 0, 0, 0}, {0, 1, 0, 0}};
  const std::vector<Vec4> d2{{1, 1, 0, 0}, {0, 0, 1, 1}};
  const Region4 roi = Region4::whole(v.dims());

  Glcm ref(ng);
  ref.accumulate_reference(v.view(), roi, d1);
  ref.accumulate_reference(v.view(), roi, d2);

  KernelScratch scratch(ng);
  Glcm ker(ng);
  ker.accumulate(v.view(), roi, d1, &scratch);
  ker.accumulate(v.view(), roi, d2, &scratch);
  expect_same_matrix(ker, ref);
}

TEST(Kernel, Uint16TileSaturationSpillsToWideTable) {
  // A constant volume funnels every pair into cell (0, 0). The tile is split
  // across two banks, so forcing a uint16 wrap needs > 2 * 65,535 pairs: a
  // 600x300 ROI with one x-direction makes 179,700 (~89,850 per bank).
  const Volume4<Level> v({600, 300, 1, 1}, 0);
  const std::vector<Vec4> dirs{{1, 0, 0, 0}};
  const Region4 roi = Region4::whole(v.dims());

  KernelScratch scratch(8);
  const std::int64_t updates = scratch.accumulate(v.view(), roi, dirs);
  EXPECT_EQ(updates, 2 * 599 * 300);
  EXPECT_TRUE(scratch.spilled());
  Glcm ker(8);
  scratch.finalize_add(ker);

  Glcm ref(8);
  ref.accumulate_reference(v.view(), roi, dirs);
  expect_same_matrix(ker, ref);

  // The scratch resets after finalize: a small follow-up ROI is unpolluted.
  const Region4 small{{0, 0, 0, 0}, {4, 4, 1, 1}};
  Glcm ker2(8), ref2(8);
  ker2.accumulate(v.view(), small, dirs, &scratch);
  EXPECT_FALSE(scratch.spilled());
  ref2.accumulate_reference(v.view(), small, dirs);
  expect_same_matrix(ker2, ref2);
}

TEST(Kernel, RepeatedAccumulationCrossesCheckedThreshold) {
  // Many accumulations into one scratch push pairs_since_reset past 65,535,
  // switching the branch-free loop to the wrap-checked variant mid-stream;
  // the fold must still match the reference exactly.
  const int ng = 2;  // two levels -> individual cells actually wrap
  const auto v = random_volume({40, 40, 2, 2}, ng, 57);
  const std::vector<Vec4> dirs{{1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 1, 1}};
  const Region4 roi = Region4::whole(v.dims());

  Glcm ref(ng);
  KernelScratch scratch(ng);
  Glcm ker(ng);
  for (int rep = 0; rep < 50; ++rep) {
    ref.accumulate_reference(v.view(), roi, dirs);
    scratch.accumulate(v.view(), roi, dirs);
  }
  EXPECT_TRUE(scratch.spilled());
  scratch.finalize_add(ker);
  expect_same_matrix(ker, ref);
}

TEST(Kernel, FusedFeaturesBitIdenticalToSparseReference) {
  std::mt19937_64 rng(29);
  for (const int ng : {2, 32, 256}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto v = random_volume({9, 9, 4, 3}, ng, static_cast<unsigned>(40 + trial));
      const auto dirs = random_directions(rng, 4, 1);
      const Region4 roi{{0, 1, 0, 0}, {8, 7, 3, 3}};

      // Reference: dense build -> from_dense -> sparse feature path.
      Glcm ref(ng);
      ref.accumulate_reference(v.view(), roi, dirs);
      const SparseGlcm ref_sparse = SparseGlcm::from_dense(ref);
      const FeatureVector ref_fv = compute_features(ref_sparse, FeatureSet::all());

      // Kernel: accumulate + fused sweep, no dense table at all.
      KernelScratch scratch(ng);
      scratch.accumulate(v.view(), roi, dirs);
      SparseGlcm fused_sparse;
      const FeatureVector fv =
          scratch.features_fused(FeatureSet::all(), nullptr, &fused_sparse);

      EXPECT_EQ(fused_sparse.entries(), ref_sparse.entries());
      EXPECT_EQ(fused_sparse.total(), ref_sparse.total());
      for (int f = 0; f < kNumFeatures; ++f) {
        const auto feat = static_cast<Feature>(f);
        EXPECT_EQ(fv[feat], ref_fv[feat]) << feature_name(feat);  // bit-identical
      }
    }
  }
}

TEST(Kernel, FastSweepMatchesStrictWithinUlpBound) {
  // SweepMode::Fast reorders the reductions and batches entropy through the
  // fast_log polynomial; every feature must still agree with Strict (and so
  // with the reference path) to tight relative tolerance, and the emitted
  // entry list must be identical.
  std::mt19937_64 rng(31);
  for (const int ng : {2, 32, 256}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto v = random_volume({9, 9, 4, 3}, ng, static_cast<unsigned>(60 + trial));
      const auto dirs = random_directions(rng, 4, 1);
      const Region4 roi{{0, 1, 0, 0}, {8, 7, 3, 3}};

      KernelScratch scratch(ng);
      scratch.accumulate(v.view(), roi, dirs);
      SparseGlcm strict_sparse;
      const FeatureVector strict =
          scratch.features_fused(FeatureSet::all(), nullptr, &strict_sparse, SweepMode::Strict);

      scratch.accumulate(v.view(), roi, dirs);
      SparseGlcm fast_sparse;
      const FeatureVector fast =
          scratch.features_fused(FeatureSet::all(), nullptr, &fast_sparse, SweepMode::Fast);

      EXPECT_EQ(fast_sparse.entries(), strict_sparse.entries());
      EXPECT_EQ(fast_sparse.total(), strict_sparse.total());
      for (int f = 0; f < kNumFeatures; ++f) {
        const auto feat = static_cast<Feature>(f);
        EXPECT_NEAR(fast[feat], strict[feat],
                    1e-9 * std::max(1.0, std::abs(strict[feat])))
            << feature_name(feat) << " ng=" << ng;
      }
    }
  }
}

TEST(Kernel, FastSweepWorkCountersMatchStrict) {
  const int ng = 32;
  const auto v = random_volume({9, 9, 4, 3}, ng, 78);
  const auto dirs = axis_directions(ActiveDims::all4());
  const Region4 roi{{0, 0, 0, 0}, {7, 7, 3, 3}};

  WorkCounters strict_wc, fast_wc;
  KernelScratch scratch(ng);
  scratch.accumulate(v.view(), roi, dirs);
  scratch.features_fused(FeatureSet::all(), &strict_wc, nullptr, SweepMode::Strict);
  scratch.accumulate(v.view(), roi, dirs);
  scratch.features_fused(FeatureSet::all(), &fast_wc, nullptr, SweepMode::Fast);

  EXPECT_EQ(fast_wc.sparse_entries_emitted, strict_wc.sparse_entries_emitted);
  EXPECT_EQ(fast_wc.sparse_compress_cells, strict_wc.sparse_compress_cells);
  EXPECT_EQ(fast_wc.feature_cells_scanned, strict_wc.feature_cells_scanned);
  EXPECT_EQ(fast_wc.feature_cell_ops, strict_wc.feature_cell_ops);
}

TEST(Kernel, FusedFeatureWorkCountersMatchReferencePath) {
  const int ng = 32;
  const auto v = random_volume({9, 9, 4, 3}, ng, 77);
  const auto dirs = axis_directions(ActiveDims::all4());
  const Region4 roi{{0, 0, 0, 0}, {7, 7, 3, 3}};

  WorkCounters ref_wc;
  Glcm ref(ng);
  ref.accumulate_reference(v.view(), roi, dirs);
  const SparseGlcm ref_sparse = SparseGlcm::from_dense(ref);
  ref_wc.sparse_entries_emitted += static_cast<std::int64_t>(ref_sparse.nnz());
  ref_wc.sparse_compress_cells += static_cast<std::int64_t>(ng) * ng;
  compute_features(ref_sparse, FeatureSet::paper_eval(), &ref_wc);

  WorkCounters wc;
  KernelScratch scratch(ng);
  scratch.accumulate(v.view(), roi, dirs);
  scratch.features_fused(FeatureSet::paper_eval(), &wc);

  EXPECT_EQ(wc.sparse_entries_emitted, ref_wc.sparse_entries_emitted);
  EXPECT_EQ(wc.sparse_compress_cells, ref_wc.sparse_compress_cells);
  EXPECT_EQ(wc.feature_cells_scanned, ref_wc.feature_cells_scanned);
  EXPECT_EQ(wc.feature_cell_ops, ref_wc.feature_cell_ops);
}

TEST(Kernel, AnalyzeChunkWithSharedScratchMatchesFreshScratch) {
  const int ng = 32;
  const auto v = random_volume({16, 14, 6, 5}, ng, 91);
  EngineConfig cfg;
  cfg.roi_dims = {5, 5, 3, 3};
  cfg.num_levels = ng;
  const Region4 whole = Region4::whole(v.dims());
  const Region4 owned = roi_origin_region(v.dims(), cfg.roi_dims);

  for (const Representation repr : {Representation::Full, Representation::Sparse}) {
    cfg.representation = repr;
    const auto fresh = analyze_chunk(v.view(), whole, owned, cfg);
    KernelScratch scratch(2);  // wrong Ng on purpose; analyze_chunk reconfigures
    const auto a = analyze_chunk(v.view(), whole, owned, cfg, nullptr, &scratch);
    const auto b = analyze_chunk(v.view(), whole, owned, cfg, nullptr, &scratch);
    ASSERT_EQ(fresh.size(), a.size());
    for (std::size_t s = 0; s < fresh.size(); ++s) {
      EXPECT_EQ(a[s].values, fresh[s].values);
      EXPECT_EQ(b[s].values, fresh[s].values);
    }
  }
}

TEST(Kernel, RejectsRoiOutsideVolumeAndNgMismatch) {
  const Volume4<Level> v({4, 4, 1, 1}, 0);
  KernelScratch scratch(8);
  EXPECT_THROW(scratch.accumulate(v.view(), Region4{{2, 2, 0, 0}, {4, 4, 1, 1}},
                                  {Vec4{1, 0, 0, 0}}),
               std::invalid_argument);
  scratch.accumulate(v.view(), Region4::whole(v.dims()), {Vec4{1, 0, 0, 0}});
  Glcm wrong(16);
  EXPECT_THROW(scratch.finalize_add(wrong), std::invalid_argument);
  EXPECT_THROW(KernelScratch(1), std::invalid_argument);
  EXPECT_THROW(KernelScratch(257), std::invalid_argument);
}

TEST(Glcm, FromDenseSkipsEmptyRowsViaOccupancyBitmap) {
  // Build a matrix with many empty rows through set_raw and adjust_pair and
  // check the compressed form is exactly the brute-force scan.
  const int ng = 64;
  Glcm g(ng);
  std::vector<std::uint32_t> table(static_cast<std::size_t>(ng) * ng, 0);
  table[static_cast<std::size_t>(3) * ng + 60] = 5;
  table[static_cast<std::size_t>(60) * ng + 3] = 5;
  table[static_cast<std::size_t>(17) * ng + 17] = 4;
  g.set_raw(std::move(table), 14);
  g.adjust_pair(40, 41, +1);

  EXPECT_TRUE(g.row_possibly_occupied(3));
  EXPECT_TRUE(g.row_possibly_occupied(17));
  EXPECT_TRUE(g.row_possibly_occupied(40));
  EXPECT_TRUE(g.row_possibly_occupied(60));
  EXPECT_FALSE(g.row_possibly_occupied(0));
  EXPECT_FALSE(g.row_possibly_occupied(63));

  const SparseGlcm sparse = SparseGlcm::from_dense(g);
  std::vector<SparseEntry> expected;
  for (int i = 0; i < ng; ++i) {
    for (int j = i; j < ng; ++j) {
      if (g.count(i, j) != 0) {
        expected.push_back({static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j),
                            g.count(i, j)});
      }
    }
  }
  EXPECT_EQ(sparse.entries(), expected);
  EXPECT_EQ(g.nonzero_upper(), static_cast<std::int64_t>(expected.size()));
}

}  // namespace
}  // namespace h4d::haralick
