#include "io/dataset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_dataset_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
  }
  void TearDown() override { fsys::remove_all(root_); }

  static Volume4<std::uint16_t> sample_volume(Vec4 dims, unsigned seed = 7) {
    Volume4<std::uint16_t> v(dims);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> u(0, 4000);
    for (auto& x : v.storage()) x = static_cast<std::uint16_t>(u(rng));
    return v;
  }

  fsys::path root_;
};

TEST_F(DatasetTest, CreateAndReadAllRoundTrips) {
  const auto vol = sample_volume({8, 8, 4, 3});
  const DiskDataset ds = DiskDataset::create(root_, vol, 3);
  const auto back = ds.read_all();
  EXPECT_EQ(back.dims(), vol.dims());
  EXPECT_EQ(back.storage(), vol.storage());
}

TEST_F(DatasetTest, MetaPersistsRangeAndLayout) {
  auto vol = sample_volume({4, 4, 2, 2});
  vol.at(0, 0, 0, 0) = 17;
  vol.at(1, 0, 0, 0) = 3999;
  DiskDataset::create(root_, vol, 2);

  const DiskDataset ds = DiskDataset::open(root_);
  EXPECT_EQ(ds.meta().dims, Vec4(4, 4, 2, 2));
  EXPECT_EQ(ds.meta().storage_nodes, 2);
  EXPECT_EQ(ds.meta().dtype, Dtype::U16);
  double lo = 1e9, hi = -1;
  for (auto v : vol.storage()) {
    lo = std::min<double>(lo, v);
    hi = std::max<double>(hi, v);
  }
  EXPECT_DOUBLE_EQ(ds.meta().value_min, lo);
  EXPECT_DOUBLE_EQ(ds.meta().value_max, hi);
}

TEST_F(DatasetTest, RoundRobinSliceDistribution) {
  const auto vol = sample_volume({4, 4, 3, 4});  // 12 slices
  const DiskDataset ds = DiskDataset::create(root_, vol, 3);
  // Every node holds exactly 4 slices, and node_of_slice matches the index.
  for (int n = 0; n < 3; ++n) {
    const StorageNodeReader reader = ds.node_reader(n);
    EXPECT_EQ(reader.slices().size(), 4u) << "node " << n;
    for (const SliceRef& s : reader.slices()) {
      EXPECT_EQ(ds.meta().node_of_slice(s.z, s.t), n);
    }
  }
}

TEST_F(DatasetTest, NodeReaderReadsLocalSubregion) {
  const auto vol = sample_volume({8, 6, 2, 2});
  const DiskDataset ds = DiskDataset::create(root_, vol, 2);
  const StorageNodeReader reader = ds.node_reader(0);
  ASSERT_FALSE(reader.slices().empty());
  const SliceRef s = reader.slices().front();

  std::vector<std::uint16_t> out(3 * 2);
  reader.read_slice_region(s, 2, 1, 3, 2, out.data());
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      EXPECT_EQ(out[static_cast<std::size_t>(y * 3 + x)], vol.at(2 + x, 1 + y, s.z, s.t));
    }
  }
}

TEST_F(DatasetTest, NodeReaderRejectsForeignSlice) {
  const auto vol = sample_volume({4, 4, 2, 2});
  const DiskDataset ds = DiskDataset::create(root_, vol, 2);
  const StorageNodeReader reader0 = ds.node_reader(0);
  const StorageNodeReader reader1 = ds.node_reader(1);
  const SliceRef foreign = reader1.slices().front();
  std::vector<std::uint16_t> out(16);
  EXPECT_THROW(reader0.read_slice_region(foreign, 0, 0, 4, 4, out.data()),
               std::invalid_argument);
}

TEST_F(DatasetTest, NodeReaderRejectsOutOfBoundsRect) {
  const auto vol = sample_volume({4, 4, 2, 2});
  const DiskDataset ds = DiskDataset::create(root_, vol, 1);
  const StorageNodeReader reader = ds.node_reader(0);
  const SliceRef s = reader.slices().front();
  std::vector<std::uint16_t> out(100);
  EXPECT_THROW(reader.read_slice_region(s, 2, 0, 3, 4, out.data()), std::invalid_argument);
  EXPECT_THROW(reader.read_slice_region(s, 0, 0, 0, 4, out.data()), std::invalid_argument);
}

TEST_F(DatasetTest, ReadRegionMatchesMemory) {
  const auto vol = sample_volume({10, 9, 4, 5});
  const DiskDataset ds = DiskDataset::create(root_, vol, 4);
  const Region4 r{{2, 3, 1, 1}, {5, 4, 2, 3}};
  const auto sub = ds.read_region(r);
  for (std::int64_t t = 0; t < r.size[3]; ++t)
    for (std::int64_t z = 0; z < r.size[2]; ++z)
      for (std::int64_t y = 0; y < r.size[1]; ++y)
        for (std::int64_t x = 0; x < r.size[0]; ++x) {
          EXPECT_EQ(sub.at(x, y, z, t), vol.at(r.origin[0] + x, r.origin[1] + y,
                                               r.origin[2] + z, r.origin[3] + t));
        }
}

TEST_F(DatasetTest, ReadRegionRejectsOutOfBounds) {
  const auto vol = sample_volume({4, 4, 2, 2});
  const DiskDataset ds = DiskDataset::create(root_, vol, 1);
  EXPECT_THROW(ds.read_region(Region4{{0, 0, 0, 0}, {5, 4, 2, 2}}), std::invalid_argument);
  EXPECT_THROW(ds.read_region(Region4{{0, 0, 0, 0}, {0, 0, 0, 0}}), std::invalid_argument);
}

TEST_F(DatasetTest, SeekAccountingFullVsPartialRows) {
  const auto vol = sample_volume({16, 16, 2, 1});
  const DiskDataset ds = DiskDataset::create(root_, vol, 1);
  const StorageNodeReader reader = ds.node_reader(0);
  const SliceRef s = reader.slices().front();

  std::vector<std::uint16_t> out(16 * 16);
  reader.read_slice_region(s, 0, 0, 16, 16, out.data());
  const std::int64_t after_full = reader.seeks_performed();
  EXPECT_EQ(after_full, 1);  // full-width read: one seek

  reader.read_slice_region(s, 4, 0, 8, 16, out.data());
  EXPECT_EQ(reader.seeks_performed() - after_full, 16);  // one per partial row
}

TEST_F(DatasetTest, CreateRejectsBadNodeCount) {
  const auto vol = sample_volume({4, 4, 1, 1});
  EXPECT_THROW(DiskDataset::create(root_, vol, 0), std::invalid_argument);
}

TEST_F(DatasetTest, OpenMissingDatasetThrows) {
  EXPECT_THROW(DiskDataset::open(root_ / "nope"), std::runtime_error);
}

TEST_F(DatasetTest, MoreNodesThanSlicesStillWorks) {
  const auto vol = sample_volume({4, 4, 1, 2});  // 2 slices, 5 nodes
  const DiskDataset ds = DiskDataset::create(root_, vol, 5);
  EXPECT_EQ(ds.read_all().storage(), vol.storage());
  EXPECT_TRUE(ds.node_reader(4).slices().empty());
}

}  // namespace
}  // namespace h4d::io
