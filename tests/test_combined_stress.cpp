// Combined-mode stress: every hardened subsystem armed at once.
//
// Each robustness feature was proven alone; this file proves they compose:
//   * threaded executor: --queue mpmc + --supervise restart + injected
//     filter crashes + injected storage faults, simultaneously, with
//     byte-identical output to a clean run and a clean shutdown (the TSan CI
//     tier runs this binary);
//   * simulator: --sim-failures (copy crashes + restarts in virtual time)
//     together with injected storage faults, byte-identical to a clean run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <vector>

#include "core/analysis.hpp"
#include "fs/executor_threads.hpp"
#include "io/dataset.hpp"
#include "io/fault.hpp"
#include "io/phantom.hpp"
#include "toy_filters.hpp"

namespace h4d::fs {
namespace {

namespace fsys = std::filesystem;

using testing::CollectSink;
using testing::FlakyFilter;
using testing::FlakyState;
using testing::NumberSource;
using testing::SinkState;

// --- toy graph: mpmc + restart supervision + crashes under load ------------

TEST(CombinedStress, MpmcQueueSurvivesRestartSupervisionUnderLoad) {
  // Many items through narrow lock-free inboxes while copies keep crashing
  // and restarting: the handoff machinery (parking, slot sequencing) and the
  // supervisor's rebuild path must compose without losing or duplicating a
  // single buffer. Data races here are what the TSan tier exists to catch.
  constexpr int kItems = 400;
  auto state = std::make_shared<SinkState>();
  auto flaky = std::make_shared<FlakyState>();
  std::vector<std::int64_t> crash_on;
  for (int i = 7; i < kItems; i += 37) crash_on.push_back(i);

  FilterGraph g;
  const int src = g.add_filter(
      {"source", [] { return std::make_unique<NumberSource>(int{kItems}); }, 1, {}});
  const int mid = g.add_filter({"mid",
                                [flaky, crash_on] {
                                  return std::make_unique<FlakyFilter>(flaky, crash_on,
                                                                       /*crashes_each=*/1);
                                },
                                3,
                                {}});
  const int sink = g.add_filter(
      {"sink", [state] { return std::make_unique<CollectSink>(state); }, 1, {}});
  g.connect(src, 0, mid, Policy::RoundRobin);
  g.connect(mid, 0, sink, Policy::DemandDriven);

  ThreadedOptions opt;
  opt.queue = QueueImpl::Mpmc;
  opt.queue_capacity = 2;  // maximum backpressure through the fast path
  opt.supervise.policy = SupervisePolicy::RestartCopy;
  opt.supervise.max_restarts = static_cast<int>(crash_on.size()) + 4;
  const RunStats stats = run_threaded(g, opt);

  EXPECT_EQ(state->count(), static_cast<std::size_t>(kItems));
  EXPECT_EQ(state->sum(), static_cast<std::int64_t>(kItems) * (kItems - 1) / 2);
  EXPECT_EQ(stats.exec.copy_restarts, static_cast<std::int64_t>(crash_on.size()));
  EXPECT_EQ(stats.exec.buffers_lost, 0);
  EXPECT_EQ(stats.exec.queue_impl, "mpmc");
}

// --- real pipeline: all modes combined ------------------------------------

struct CombinedPipelineFixture : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_combined_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    fsys::create_directories(root_);
    io::PhantomConfig pcfg;
    pcfg.dims = {24, 24, 6, 4};
    pcfg.num_tumors = 2;
    pcfg.seed = 19;
    const io::Phantom phantom = io::generate_phantom(pcfg);
    ds_ = root_ / "ds";
    io::DiskDataset::create(ds_, phantom.volume, /*nodes=*/2, /*replicas=*/2);
  }
  void TearDown() override { fsys::remove_all(root_); }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.dataset_root = ds_;
    cfg.engine.roi_dims = {5, 5, 3, 3};
    cfg.engine.num_levels = 8;
    cfg.engine.features = haralick::FeatureSet::paper_eval();
    cfg.texture_chunk = {12, 12, 6, 4};
    cfg.rfr_copies = 2;
    cfg.variant = core::Variant::HMP;
    cfg.hmp_copies = 2;
    return cfg;
  }

  fsys::path root_;
  fsys::path ds_;
};

std::uint32_t maps_crc(const core::AnalysisResult& r) {
  std::uint32_t crc = 0;
  for (const auto& [f, map] : r.maps) {
    const auto id = static_cast<std::uint32_t>(f);
    crc = io::crc32(&id, sizeof id, crc);
    crc = io::crc32(map.data(), static_cast<std::size_t>(map.size()) * sizeof(float),
                    crc);
  }
  return crc;
}

TEST_F(CombinedPipelineFixture, ThreadedAllModesByteIdenticalToCleanRun) {
  // Clean reference.
  const core::AnalysisResult clean = core::analyze_threaded(config());
  const std::uint32_t want = maps_crc(clean);
  ASSERT_NE(want, 0u);

  // Everything at once: lock-free inboxes, restart supervision, a watchdog,
  // and deterministic storage faults absorbed by the resilient read path.
  core::PipelineConfig cfg = config();
  cfg.faults.seed = 23;
  cfg.faults.p_fail_open = 0.10;
  cfg.faults.p_short_read = 0.05;
  cfg.faults.really_sleep = false;
  cfg.resilience.policy = io::DegradePolicy::Retry;
  cfg.resilience.retry.max_attempts = 8;

  ThreadedOptions opt;
  opt.queue = QueueImpl::Mpmc;
  opt.queue_capacity = 4;
  opt.supervise.policy = SupervisePolicy::RestartCopy;
  opt.supervise.max_restarts = 8;
  opt.supervise.watchdog_deadline_ms = 30000;  // armed, but must not fire

  const core::AnalysisResult stressed = core::analyze_threaded(cfg, opt);
  EXPECT_EQ(maps_crc(stressed), want);
  EXPECT_GT(stressed.faults.read_retries, 0);  // the faults really fired
  EXPECT_EQ(stressed.stats.exec.watchdog_kills, 0);
  EXPECT_EQ(stressed.stats.exec.queue_impl, "mpmc");
  EXPECT_EQ(stressed.stats.exec.buffers_lost, 0);
}

TEST_F(CombinedPipelineFixture, SimulatorFailuresPlusStorageFaultsByteIdentical) {
  const core::AnalysisResult clean = core::analyze_threaded(config());
  const std::uint32_t want = maps_crc(clean);

  core::PipelineConfig cfg = config();
  cfg.rfr_nodes = {0, 1};
  cfg.iic_nodes = {2};
  cfg.uso_nodes = {3};
  cfg.hmp_nodes = {4, 5};
  cfg.faults.seed = 31;
  cfg.faults.p_fail_open = 0.08;
  cfg.faults.really_sleep = false;
  cfg.resilience.policy = io::DegradePolicy::Retry;
  cfg.resilience.retry.max_attempts = 8;

  sim::SimOptions sopt;
  sopt.cluster = sim::make_piii_cluster(8);
  sopt.failures.seed = 5;
  sopt.failures.p_crash = 0.05;
  sopt.failures.max_restarts = 1000;
  sopt.failures.poison_threshold = 1000;
  sopt.failures.policy = SupervisePolicy::RestartCopy;

  const core::AnalysisResult r = core::analyze_simulated(cfg, sopt);
  EXPECT_EQ(maps_crc(r), want);  // crashes + faults never change the maps
  EXPECT_GT(r.stats.exec.copy_restarts, 0);  // the failure model really fired
}

}  // namespace
}  // namespace h4d::fs
