// Checkpoint/resume: manifest durability, chunk-completion tracking, and the
// end-to-end guarantee that a killed-then-resumed run reproduces the
// uninterrupted run's outputs exactly while re-planning strictly fewer chunks.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/pipeline.hpp"
#include "filters/payloads.hpp"
#include "fs/executor_threads.hpp"
#include "io/dataset.hpp"
#include "io/manifest.hpp"
#include "io/phantom.hpp"
#include "nd/chunking.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

struct CheckpointFixture : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    fsys::create_directories(root_);
  }
  void TearDown() override { fsys::remove_all(root_); }

  fsys::path root_;
};

// --- manifest -------------------------------------------------------------

TEST_F(CheckpointFixture, ManifestRecordLoadRoundtrip) {
  const fsys::path p = root_ / "manifest.txt";
  {
    ChunkManifest m(p);
    m.record(0);
    m.record(7);
    m.record(42);
  }
  EXPECT_EQ(ChunkManifest::load(p), (std::vector<std::int64_t>{0, 7, 42}));
}

TEST_F(CheckpointFixture, ManifestLoadSkipsTornTailAndCorruptLines) {
  const fsys::path p = root_ / "manifest.txt";
  {
    ChunkManifest m(p);
    m.record(3);
    m.record(8);
  }
  {
    // A crash mid-append leaves a torn last line; bit rot flips a CRC tag.
    std::ofstream f(p, std::ios::app);
    f << "99 deadbeef\n";  // CRC does not match "99"
    f << "not a number at all\n";
    f << "12";  // torn: no CRC, no newline
  }
  EXPECT_EQ(ChunkManifest::load(p), (std::vector<std::int64_t>{3, 8}));
}

TEST_F(CheckpointFixture, ManifestHealsTornTailOnReopen) {
  const fsys::path p = root_ / "manifest.txt";
  { ChunkManifest(p).record(3); }
  {
    std::ofstream f(p, std::ios::app);
    f << "12";  // torn: the crash cut the line before its newline
  }
  // A resumed run reopens for append; its first record must not merge into
  // the torn text (that would silently lose the record).
  { ChunkManifest(p).record(4); }
  EXPECT_EQ(ChunkManifest::load(p), (std::vector<std::int64_t>{3, 4}));
}

TEST_F(CheckpointFixture, ManifestFreshDiscardsStaleContents) {
  const fsys::path p = root_ / "manifest.txt";
  { ChunkManifest(p).record(5); }
  {
    ChunkManifest m(p, /*fresh=*/true);
    m.record(9);
  }
  EXPECT_EQ(ChunkManifest::load(p), (std::vector<std::int64_t>{9}));
}

TEST_F(CheckpointFixture, MissingManifestLoadsEmpty) {
  EXPECT_TRUE(ChunkManifest::load(root_ / "nope.txt").empty());
}

// --- completion tracker ---------------------------------------------------

TEST_F(CheckpointFixture, TrackerRecordsChunkOnItsLastSample) {
  const Vec4 dims{10, 8, 4, 4}, chunk{6, 6, 4, 4}, roi{3, 3, 2, 2};
  const auto chunks = partition_overlapping(dims, chunk, roi);
  ASSERT_GT(chunks.size(), 1u);
  auto manifest = std::make_shared<ChunkManifest>(root_ / "m.txt");
  const std::int64_t features = 2;
  ChunkCompletionTracker tracker(chunks, dims, chunk, roi, features, manifest);

  for (const Chunk& c : chunks) {
    // All but the last sample of this chunk: not recorded yet.
    std::vector<Vec4> origins;
    Vec4 o;
    for (o[3] = 0; o[3] < c.owned_origins.size[3]; ++o[3])
      for (o[2] = 0; o[2] < c.owned_origins.size[2]; ++o[2])
        for (o[1] = 0; o[1] < c.owned_origins.size[1]; ++o[1])
          for (o[0] = 0; o[0] < c.owned_origins.size[0]; ++o[0])
            origins.push_back(c.owned_origins.origin + o);
    for (std::int64_t rep = 0; rep < features; ++rep) {
      for (const Vec4& p : origins) {
        if (rep == features - 1 && p == origins.back()) break;
        tracker.note_origin(p);
      }
    }
    const auto before = ChunkManifest::load(root_ / "m.txt");
    EXPECT_TRUE(std::find(before.begin(), before.end(), c.id) == before.end())
        << "chunk " << c.id << " recorded before its last sample";
    tracker.note_origin(origins.back());
    const auto after = ChunkManifest::load(root_ / "m.txt");
    EXPECT_TRUE(std::find(after.begin(), after.end(), c.id) != after.end());
    // Replays past completion are idempotent: no duplicate records.
    tracker.note_origin(origins.front());
    EXPECT_EQ(ChunkManifest::load(root_ / "m.txt").size(), after.size());
  }
  EXPECT_EQ(tracker.chunks_completed(), static_cast<std::int64_t>(chunks.size()));
}

TEST_F(CheckpointFixture, TrackerSkipsPreCompletedChunks) {
  const Vec4 dims{10, 8, 4, 4}, chunk{6, 6, 4, 4}, roi{3, 3, 2, 2};
  const auto chunks = partition_overlapping(dims, chunk, roi);
  auto manifest = std::make_shared<ChunkManifest>(root_ / "m.txt");
  const std::unordered_set<std::int64_t> done{chunks.front().id};
  ChunkCompletionTracker tracker(chunks, dims, chunk, roi, 1, manifest, done);

  // Replaying the already-completed chunk's samples must not re-record it.
  const Chunk& c = chunks.front();
  Vec4 o;
  for (o[3] = 0; o[3] < c.owned_origins.size[3]; ++o[3])
    for (o[2] = 0; o[2] < c.owned_origins.size[2]; ++o[2])
      for (o[1] = 0; o[1] < c.owned_origins.size[1]; ++o[1])
        for (o[0] = 0; o[0] < c.owned_origins.size[0]; ++o[0])
          tracker.note_origin(c.owned_origins.origin + o);
  EXPECT_TRUE(ChunkManifest::load(root_ / "m.txt").empty());
  EXPECT_EQ(tracker.chunks_completed(), 1);  // counted done from the start
}

// --- end-to-end resume ----------------------------------------------------

/// Reads every USO sample file in `dir` and places the samples into one map
/// per feature slug, keyed by ROI origin — order-invariant, so duplicated
/// samples (resume replays) overwrite with identical values.
std::map<std::string, std::vector<float>> assemble(const fsys::path& dir,
                                                   const Region4& origins) {
  std::map<std::string, std::vector<float>> maps;
  for (const auto& e : fsys::directory_iterator(dir)) {
    if (e.path().extension() != ".bin") continue;
    std::string slug = e.path().stem().string();
    slug = slug.substr(0, slug.rfind("_c"));  // strip the USO copy suffix
    auto& map = maps
                    .try_emplace(slug,
                                 static_cast<std::size_t>(origins.volume()), 0.0f)
                    .first->second;
    std::ifstream in(e.path(), std::ios::binary);
    filters::FeatureSample s;
    while (in.read(reinterpret_cast<char*>(&s), sizeof s)) {
      map[static_cast<std::size_t>(
          linear_index(s.origin() - origins.origin, origins.size))] = s.value;
    }
  }
  return maps;
}

TEST_F(CheckpointFixture, ResumedRunIsByteIdenticalAndPlansStrictlyFewerChunks) {
  // Build a small disk dataset.
  io::PhantomConfig pcfg;
  pcfg.dims = {20, 18, 6, 5};
  pcfg.num_tumors = 1;
  pcfg.seed = 11;
  const auto phantom = io::generate_phantom(pcfg).volume;
  const fsys::path ds = root_ / "ds";
  io::DiskDataset::create(ds, phantom, 2);

  core::PipelineConfig cfg;
  cfg.dataset_root = ds;
  cfg.engine.roi_dims = {5, 5, 3, 3};
  cfg.engine.num_levels = 16;
  cfg.engine.features = haralick::FeatureSet::paper_eval();
  cfg.texture_chunk = {12, 12, 5, 4};
  cfg.rfr_copies = 2;
  cfg.variant = core::Variant::HMP;
  cfg.hmp_copies = 2;
  cfg.output = core::OutputMode::Unstitched;

  const Region4 origins = roi_origin_region(pcfg.dims, cfg.engine.roi_dims);

  // Uninterrupted reference run with checkpointing on.
  cfg.output_dir = root_ / "outA";
  cfg.checkpoint_path = root_ / "ckA.txt";
  auto paramsA = core::make_params(cfg);
  const std::size_t total_chunks = paramsA->chunks.size();
  ASSERT_GT(total_chunks, 2u);
  fs::run_threaded(core::build_pipeline(cfg, paramsA, nullptr));

  const auto all_ids = ChunkManifest::load(cfg.checkpoint_path);
  ASSERT_EQ(all_ids.size(), total_chunks);  // every chunk went durable
  const auto ref = assemble(cfg.output_dir, origins);
  ASSERT_EQ(ref.size(), 4u);  // one map per paper-eval feature

  // Emulate a crash after K chunks completed: the manifest holds its
  // ownership header, K valid records, and a torn tail; the output dir holds
  // exactly the samples of those K chunks (what their durable writes left on
  // disk).
  const std::size_t K = total_chunks / 2;
  std::unordered_set<std::int64_t> completed(all_ids.begin(), all_ids.begin() + K);
  const fsys::path ckB = root_ / "ckB.txt";
  {
    std::ifstream in(cfg.checkpoint_path);
    std::ofstream out(ckB);
    std::string line;
    std::size_t copied = 0;
    while (copied < K && std::getline(in, line)) {
      out << line << "\n";
      if (line.rfind("owner ", 0) != 0) ++copied;  // header doesn't count
    }
    out << "17";  // torn tail from the crash mid-append
  }
  const fsys::path outB = root_ / "outB";
  fsys::create_directories(outB);
  for (const auto& e : fsys::directory_iterator(cfg.output_dir)) {
    std::ifstream in(e.path(), std::ios::binary);
    std::ofstream out(outB / e.path().filename(), std::ios::binary);
    filters::FeatureSample s;
    while (in.read(reinterpret_cast<char*>(&s), sizeof s)) {
      for (const Chunk& c : paramsA->chunks) {
        if (c.owned_origins.contains(s.origin())) {
          if (completed.count(c.id)) {
            out.write(reinterpret_cast<const char*>(&s), sizeof s);
          }
          break;
        }
      }
    }
  }

  // Resume: completed chunks are pruned, the rest re-run.
  core::PipelineConfig cfg2 = cfg;
  cfg2.output_dir = outB;
  cfg2.checkpoint_path = ckB;
  cfg2.resume = true;
  auto paramsB = core::make_params(cfg2);
  EXPECT_EQ(paramsB->chunks_resumed, static_cast<std::int64_t>(K));
  EXPECT_EQ(paramsB->chunks.size(), total_chunks - K);  // strictly fewer
  fs::run_threaded(core::build_pipeline(cfg2, paramsB, nullptr));

  // After the resumed run: the manifest is complete again, and the assembled
  // feature maps are byte-identical to the uninterrupted run's.
  EXPECT_EQ(ChunkManifest::load(ckB).size(), total_chunks);
  const auto resumed = assemble(outB, origins);
  ASSERT_EQ(resumed.size(), ref.size());
  for (const auto& [slug, map] : ref) {
    ASSERT_TRUE(resumed.count(slug)) << slug;
    EXPECT_EQ(resumed.at(slug), map) << slug;  // exact float equality
  }
}

TEST_F(CheckpointFixture, ResumeWithEmptyManifestPlansEverything) {
  io::PhantomConfig pcfg;
  pcfg.dims = {16, 16, 5, 4};
  pcfg.seed = 3;
  const auto phantom = io::generate_phantom(pcfg).volume;
  const fsys::path ds = root_ / "ds";
  io::DiskDataset::create(ds, phantom, 1);

  core::PipelineConfig cfg;
  cfg.dataset_root = ds;
  cfg.engine.roi_dims = {5, 5, 3, 3};
  cfg.engine.num_levels = 8;
  cfg.engine.features = haralick::FeatureSet::paper_eval();
  cfg.texture_chunk = {10, 10, 4, 4};
  cfg.checkpoint_path = root_ / "ck.txt";
  cfg.resume = true;  // nothing recorded yet: must be a full plan
  auto params = core::make_params(cfg);
  EXPECT_EQ(params->chunks_resumed, 0);
  EXPECT_FALSE(params->chunks.empty());
}

}  // namespace
}  // namespace h4d::io
