#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "io/mhd.hpp"
#include "io/phantom.hpp"

namespace h4d::cli {
namespace {

namespace fsys = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fsys::temp_directory_path() /
           ("h4d_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override { fsys::remove_all(dir_); }

  int invoke(std::initializer_list<std::string> argv) {
    std::vector<const char*> raw{"h4d"};
    args_.assign(argv);
    for (const std::string& a : args_) raw.push_back(a.c_str());
    out_.str("");
    err_.str("");
    return run(static_cast<int>(raw.size()), raw.data(), out_, err_);
  }

  std::string stdout_text() const { return out_.str(); }
  std::string stderr_text() const { return err_.str(); }

  fsys::path dir_;
  std::vector<std::string> args_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  EXPECT_EQ(invoke({}), 2);
  EXPECT_NE(stderr_text().find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(invoke({"frobnicate"}), 2);
  EXPECT_NE(stderr_text().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, PhantomThenInfo) {
  const std::string ds = (dir_ / "ds").string();
  EXPECT_EQ(invoke({"phantom", "--out", ds, "--dims", "16,16,4,3", "--nodes", "2",
                    "--tumors", "1"}),
            0);
  EXPECT_NE(stdout_text().find("wrote phantom dataset (16,16,4,3)"), std::string::npos);

  EXPECT_EQ(invoke({"info", ds}), 0);
  EXPECT_NE(stdout_text().find("dims           (16,16,4,3)"), std::string::npos);
  EXPECT_NE(stdout_text().find("storage nodes  2"), std::string::npos);
}

TEST_F(CliTest, PhantomRequiresOut) {
  EXPECT_EQ(invoke({"phantom"}), 1);
  EXPECT_NE(stderr_text().find("--out"), std::string::npos);
}

TEST_F(CliTest, ImportMhd) {
  io::PhantomConfig pcfg;
  pcfg.dims = {10, 8, 3, 2};
  io::write_mhd(dir_ / "study.mhd", io::generate_phantom(pcfg).volume);
  const std::string ds = (dir_ / "imported").string();
  EXPECT_EQ(invoke({"import", (dir_ / "study.mhd").string(), "--out", ds, "--nodes", "2"}),
            0);
  EXPECT_EQ(invoke({"info", ds}), 0);
  EXPECT_NE(stdout_text().find("(10,8,3,2)"), std::string::npos);
}

TEST_F(CliTest, AnalyzeWritesMaps) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "16,16,6,4", "--nodes", "2"}), 0);
  const std::string maps = (dir_ / "maps").string();
  EXPECT_EQ(invoke({"analyze", ds, "--out", maps, "--roi", "5,5,3,3", "--workers", "2",
                    "--dirs", "axis", "--chunk", "12,12,6,4"}),
            0);
  EXPECT_NE(stdout_text().find("4 feature maps"), std::string::npos);
  std::size_t pgms = 0;
  for (const auto& e : fsys::directory_iterator(maps)) {
    if (e.path().extension() == ".pgm") ++pgms;
  }
  EXPECT_GT(pgms, 0u);
}

TEST_F(CliTest, SimulateReportsVirtualTime) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "16,16,6,4", "--nodes", "2"}), 0);
  EXPECT_EQ(invoke({"simulate", ds, "--roi", "5,5,3,3", "--workers", "4", "--dirs", "axis",
                    "--variant", "hmp", "--chunk", "12,12,6,4"}),
            0);
  EXPECT_NE(stdout_text().find("virtual execution time"), std::string::npos);
  EXPECT_NE(stdout_text().find("HMP"), std::string::npos);
}

TEST_F(CliTest, AnalyzeQueueFlagSelectsImplementation) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "16,16,6,4", "--nodes", "2"}), 0);
  const std::string maps = (dir_ / "maps").string();
  const std::string metrics = (dir_ / "metrics.json").string();
  EXPECT_EQ(invoke({"analyze", ds, "--out", maps, "--roi", "5,5,3,3", "--workers", "2",
                    "--dirs", "axis", "--chunk", "12,12,6,4", "--queue", "mpmc",
                    "--metrics", metrics}),
            0);
  std::ifstream in(metrics);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"queue_impl\": \"mpmc\""), std::string::npos);
  EXPECT_NE(text.find("\"queue_max_depth\""), std::string::npos);

  EXPECT_EQ(invoke({"analyze", ds, "--roi", "5,5,3,3", "--queue", "bogus"}), 1);
  EXPECT_NE(stderr_text().find("unknown queue implementation"), std::string::npos);
}

TEST_F(CliTest, AnalyzeSweepFlagSelectsMode) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "14,14,6,4", "--nodes", "2"}), 0);
  // Strict and fast both run the sparse fused sweep end to end.
  EXPECT_EQ(invoke({"analyze", ds, "--roi", "5,5,3,3", "--repr", "sparse", "--dirs",
                    "axis", "--chunk", "12,12,6,4", "--sweep", "strict"}),
            0);
  EXPECT_EQ(invoke({"analyze", ds, "--roi", "5,5,3,3", "--repr", "sparse", "--dirs",
                    "axis", "--chunk", "12,12,6,4", "--sweep", "fast"}),
            0);
  EXPECT_EQ(invoke({"analyze", ds, "--roi", "5,5,3,3", "--sweep", "bogus"}), 1);
  EXPECT_NE(stderr_text().find("--sweep"), std::string::npos);
}

TEST_F(CliTest, BadOptionValueReportsError) {
  EXPECT_EQ(invoke({"phantom", "--out", (dir_ / "x").string(), "--dims", "16,16"}), 1);
  EXPECT_NE(stderr_text().find("comma-separated"), std::string::npos);
  EXPECT_EQ(invoke({"phantom", "--out", (dir_ / "x").string(), "--nodes", "two"}), 1);
}

TEST_F(CliTest, InfoOnMissingDatasetFails) {
  EXPECT_EQ(invoke({"info", (dir_ / "nope").string()}), 1);
}

TEST_F(CliTest, SparseSplitAnalyzeWorks) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "14,14,6,4", "--nodes", "2"}), 0);
  EXPECT_EQ(invoke({"analyze", ds, "--roi", "5,5,3,3", "--repr", "sparse", "--variant",
                    "split", "--workers", "3", "--dirs", "axis", "--chunk", "12,12,6,4"}),
            0);
}

TEST_F(CliTest, PhantomWithReplicasReportsAndPersistsFactor) {
  const std::string ds = (dir_ / "ds").string();
  EXPECT_EQ(invoke({"phantom", "--out", ds, "--dims", "12,12,4,2", "--nodes", "3",
                    "--replicas", "2"}),
            0);
  EXPECT_NE(stdout_text().find("replication factor 2"), std::string::npos);
  EXPECT_EQ(invoke({"info", ds}), 0);
  EXPECT_NE(stdout_text().find("replicas       2"), std::string::npos);
}

TEST_F(CliTest, ScrubReportsCleanAndDamagedDatasets) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "12,12,4,2", "--nodes", "3",
                    "--replicas", "2"}),
            0);
  EXPECT_EQ(invoke({"scrub", ds}), 0);
  EXPECT_NE(stdout_text().find("0 defects"), std::string::npos);

  fsys::remove(fsys::path(ds) / io::node_dir_name(0) / io::slice_filename(0, 0));
  const std::string json = (dir_ / "inventory.json").string();
  EXPECT_EQ(invoke({"scrub", ds, "--json", json}), 1);
  EXPECT_NE(stdout_text().find("missing_copy"), std::string::npos);
  std::ifstream f(json);
  std::string inv((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_NE(inv.find("\"schema\": \"h4d-scrub-v1\""), std::string::npos);
  EXPECT_NE(inv.find("missing_copy"), std::string::npos);
}

TEST_F(CliTest, RepairRestoresALostNodeDirectory) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "12,12,4,2", "--nodes", "3",
                    "--replicas", "2"}),
            0);
  fsys::remove_all(fsys::path(ds) / io::node_dir_name(1));
  ASSERT_EQ(invoke({"scrub", ds}), 1);
  EXPECT_EQ(invoke({"repair", ds}), 0);
  EXPECT_EQ(invoke({"scrub", ds}), 0);
}

TEST_F(CliTest, AnalyzeToleratesDeadNodesWhenReplicated) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "16,16,6,4", "--nodes", "3",
                    "--replicas", "2"}),
            0);
  const std::string maps = (dir_ / "maps").string();
  EXPECT_EQ(invoke({"analyze", ds, "--out", maps, "--roi", "5,5,3,3", "--workers", "2",
                    "--dirs", "axis", "--chunk", "12,12,6,4", "--dead-nodes", "1"}),
            0);
  EXPECT_NE(stdout_text().find("4 feature maps"), std::string::npos);
  EXPECT_NE(stdout_text().find("replica failovers"), std::string::npos);
}

TEST_F(CliTest, AnalyzeFailsWhenDeadNodesUncovered) {
  const std::string ds = (dir_ / "ds").string();
  ASSERT_EQ(invoke({"phantom", "--out", ds, "--dims", "16,16,4,2", "--nodes", "2"}), 0);
  EXPECT_EQ(invoke({"analyze", ds, "--roi", "5,5,3,1", "--dirs", "axis", "--dead-nodes",
                    "0"}),
            1);
  EXPECT_NE(stderr_text().find("no surviving replica"), std::string::npos);
}

}  // namespace
}  // namespace h4d::cli
