#include "ml/texture_dataset.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "io/phantom.hpp"

namespace h4d::ml {
namespace {

using haralick::Feature;

std::map<Feature, Volume4<float>> toy_maps(Vec4 dims) {
  std::map<Feature, Volume4<float>> maps;
  Volume4<float> a(dims), b(dims);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a.storage()[static_cast<std::size_t>(i)] = static_cast<float>(i);
    b.storage()[static_cast<std::size_t>(i)] = static_cast<float>(-i);
  }
  maps.emplace(Feature::Contrast, std::move(a));
  maps.emplace(Feature::Entropy, std::move(b));
  return maps;
}

TEST(TextureDataset, OneRowPerOriginWithFullKeep) {
  const Vec4 map_dims{4, 3, 2, 2};
  const Vec4 roi{3, 3, 1, 1};
  Volume4<std::uint8_t> labels({6, 5, 2, 2}, 0);
  labels.at(2, 2, 0, 0) = 1;  // ROI origin (1,1,0,0) centers here

  const LabeledSamples s = build_samples(toy_maps(map_dims), labels, roi);
  EXPECT_EQ(s.x.rows, static_cast<std::size_t>(map_dims.volume()));
  EXPECT_EQ(s.x.cols, 2u);
  EXPECT_EQ(s.features, (std::vector<Feature>{Feature::Contrast, Feature::Entropy}));

  double positives = 0;
  for (double v : s.y) positives += v;
  EXPECT_EQ(positives, 1.0);
  // Verify the positive row corresponds to origin (1,1,0,0).
  for (std::size_t r = 0; r < s.y.size(); ++r) {
    if (s.y[r] > 0.5) EXPECT_EQ(s.origins[r], Vec4(1, 1, 0, 0));
  }
}

TEST(TextureDataset, FeatureColumnsMatchMapValues) {
  const Vec4 map_dims{3, 3, 1, 1};
  Volume4<std::uint8_t> labels({5, 5, 1, 1}, 0);
  const auto maps = toy_maps(map_dims);
  const LabeledSamples s = build_samples(maps, labels, {3, 3, 1, 1});
  for (std::size_t r = 0; r < s.x.rows; ++r) {
    EXPECT_DOUBLE_EQ(s.x.at(r, 0), maps.at(Feature::Contrast).at(s.origins[r]));
    EXPECT_DOUBLE_EQ(s.x.at(r, 1), maps.at(Feature::Entropy).at(s.origins[r]));
  }
}

TEST(TextureDataset, NegativeSubsamplingKeepsAllPositives) {
  const Vec4 map_dims{6, 6, 2, 2};
  Volume4<std::uint8_t> labels({8, 8, 2, 2}, 0);
  for (std::int64_t x = 0; x < 8; ++x) labels.at(x, 3, 0, 0) = 1;

  const LabeledSamples full = build_samples(toy_maps(map_dims), labels, {3, 3, 1, 1});
  const LabeledSamples sub =
      build_samples(toy_maps(map_dims), labels, {3, 3, 1, 1}, 0.25, 3);
  double full_pos = 0, sub_pos = 0;
  for (double v : full.y) full_pos += v;
  for (double v : sub.y) sub_pos += v;
  EXPECT_EQ(full_pos, sub_pos);                 // positives always kept
  EXPECT_LT(sub.y.size(), full.y.size());       // negatives thinned
  EXPECT_GT(sub.y.size(), sub_pos);             // but some negatives remain
}

TEST(TextureDataset, DeterministicSubsampling) {
  const Vec4 map_dims{6, 6, 2, 2};
  Volume4<std::uint8_t> labels({8, 8, 2, 2}, 0);
  const auto a = build_samples(toy_maps(map_dims), labels, {3, 3, 1, 1}, 0.5, 7);
  const auto b = build_samples(toy_maps(map_dims), labels, {3, 3, 1, 1}, 0.5, 7);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.x.data, b.x.data);
}

TEST(TextureDataset, Validation) {
  Volume4<std::uint8_t> labels({4, 4, 1, 1}, 0);
  EXPECT_THROW(build_samples({}, labels, {3, 3, 1, 1}), std::invalid_argument);
  // Label volume too small for map + half-roi offset.
  EXPECT_THROW(build_samples(toy_maps({4, 4, 1, 1}), labels, {3, 3, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(build_samples(toy_maps({2, 2, 1, 1}), labels, {3, 3, 1, 1}, 0.0),
               std::invalid_argument);
  // Inconsistent map dims.
  auto maps = toy_maps({2, 2, 1, 1});
  maps.emplace(haralick::Feature::Correlation, Volume4<float>({3, 2, 1, 1}));
  EXPECT_THROW(build_samples(maps, labels, {1, 1, 1, 1}), std::invalid_argument);
}

TEST(TextureDataset, EndToEndTextureSeparatesLesion) {
  // The full paper workflow in miniature: phantom -> texture maps ->
  // labeled samples -> train -> AUC well above chance on held-out data.
  io::PhantomConfig pcfg;
  pcfg.dims = {28, 28, 8, 6};
  pcfg.seed = 31;
  pcfg.num_tumors = 2;
  const io::Phantom train_ph = io::generate_phantom(pcfg);
  pcfg.seed = 77;  // different anatomy for evaluation
  const io::Phantom test_ph = io::generate_phantom(pcfg);

  haralick::EngineConfig engine;
  engine.roi_dims = {5, 5, 3, 3};
  engine.num_levels = 32;
  engine.features = {Feature::AngularSecondMoment, Feature::Contrast, Feature::Entropy,
                     Feature::InverseDifferenceMoment};

  const auto analyze = [&engine](const io::Phantom& ph) {
    const core::AnalysisResult r = core::analyze_in_memory(ph.volume, engine);
    return r.maps;
  };

  const auto train_samples =
      build_samples(analyze(train_ph), io::tumor_mask(pcfg.dims, train_ph.tumors),
                    engine.roi_dims, 0.5, 5);
  const auto test_samples =
      build_samples(analyze(test_ph), io::tumor_mask(pcfg.dims, test_ph.tumors),
                    engine.roi_dims, 1.0, 5);

  const Standardizer std_fit = Standardizer::fit(train_samples.x);
  Matrix xtrain = train_samples.x;
  Matrix xtest = test_samples.x;
  std_fit.apply(xtrain);
  std_fit.apply(xtest);

  Mlp net({4, 12, 1}, 17);
  TrainOptions opt;
  opt.epochs = 60;
  opt.learning_rate = 0.1;
  net.train(xtrain, train_samples.y, opt);

  std::vector<double> scores;
  for (std::size_t r = 0; r < xtest.rows; ++r) scores.push_back(net.predict(xtest.row(r)));
  const double auc = roc_auc(scores, test_samples.y);
  EXPECT_GT(auc, 0.75) << "texture features failed to separate lesion from tissue";
}

}  // namespace
}  // namespace h4d::ml
