#include "nd/region.hpp"

#include <gtest/gtest.h>

namespace h4d {
namespace {

TEST(Region4, WholeCoversDims) {
  const Region4 r = Region4::whole({4, 5, 6, 7});
  EXPECT_EQ(r.origin, Vec4(0, 0, 0, 0));
  EXPECT_EQ(r.size, Vec4(4, 5, 6, 7));
  EXPECT_EQ(r.volume(), 4 * 5 * 6 * 7);
}

TEST(Region4, ContainsPoint) {
  const Region4 r{{1, 1, 1, 1}, {2, 2, 2, 2}};
  EXPECT_TRUE(r.contains(Vec4{1, 1, 1, 1}));
  EXPECT_TRUE(r.contains(Vec4{2, 2, 2, 2}));
  EXPECT_FALSE(r.contains(Vec4{3, 2, 2, 2}));  // end is exclusive
  EXPECT_FALSE(r.contains(Vec4{0, 1, 1, 1}));
}

TEST(Region4, ContainsRegion) {
  const Region4 outer{{0, 0, 0, 0}, {10, 10, 10, 10}};
  const Region4 inner{{2, 3, 4, 5}, {1, 2, 3, 4}};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  // Empty regions are contained anywhere.
  EXPECT_TRUE(inner.contains(Region4{{100, 100, 100, 100}, {0, 1, 1, 1}}));
}

TEST(Region4, IntersectOverlapping) {
  const Region4 a{{0, 0, 0, 0}, {5, 5, 5, 5}};
  const Region4 b{{3, 3, 3, 3}, {5, 5, 5, 5}};
  const Region4 c = a.intersect(b);
  EXPECT_EQ(c.origin, Vec4(3, 3, 3, 3));
  EXPECT_EQ(c.size, Vec4(2, 2, 2, 2));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(c, b.intersect(a));
}

TEST(Region4, IntersectDisjointIsEmpty) {
  const Region4 a{{0, 0, 0, 0}, {2, 2, 2, 2}};
  const Region4 b{{2, 0, 0, 0}, {2, 2, 2, 2}};  // touching, half-open => disjoint
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_FALSE(a.intersects(b));
}

TEST(Region4, EmptyPredicate) {
  EXPECT_TRUE((Region4{{0, 0, 0, 0}, {0, 1, 1, 1}}).empty());
  EXPECT_FALSE((Region4{{0, 0, 0, 0}, {1, 1, 1, 1}}).empty());
}

TEST(LinearIndex, RoundTripsWithDelinearize) {
  const Vec4 dims{3, 4, 5, 6};
  std::int64_t expect = 0;
  for (std::int64_t t = 0; t < dims[3]; ++t)
    for (std::int64_t z = 0; z < dims[2]; ++z)
      for (std::int64_t y = 0; y < dims[1]; ++y)
        for (std::int64_t x = 0; x < dims[0]; ++x) {
          const Vec4 p{x, y, z, t};
          const std::int64_t idx = linear_index(p, dims);
          EXPECT_EQ(idx, expect);
          EXPECT_EQ(delinearize(idx, dims), p);
          ++expect;
        }
}

TEST(LinearIndex, XIsFastest) {
  const Vec4 dims{10, 10, 10, 10};
  EXPECT_EQ(linear_index({1, 0, 0, 0}, dims), 1);
  EXPECT_EQ(linear_index({0, 1, 0, 0}, dims), 10);
  EXPECT_EQ(linear_index({0, 0, 1, 0}, dims), 100);
  EXPECT_EQ(linear_index({0, 0, 0, 1}, dims), 1000);
}

}  // namespace
}  // namespace h4d
