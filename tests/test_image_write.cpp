#include "io/image_write.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "io/durable_file.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

class ImageWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fsys::temp_directory_path() /
           ("h4d_img_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override { fsys::remove_all(dir_); }
  fsys::path dir_;
};

TEST_F(ImageWriteTest, PgmRoundTrips) {
  std::vector<std::uint8_t> img(6 * 4);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<std::uint8_t>(i * 10);
  write_pgm(dir_ / "a.pgm", 6, 4, img.data());

  std::int64_t w = 0, h = 0;
  const auto back = read_pgm(dir_ / "a.pgm", w, h);
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(back, img);
}

TEST_F(ImageWriteTest, PgmRejectsBadDims) {
  std::uint8_t px = 0;
  EXPECT_THROW(write_pgm(dir_ / "b.pgm", 0, 4, &px), std::invalid_argument);
}

TEST_F(ImageWriteTest, ReadPgmRejectsMissingFile) {
  std::int64_t w, h;
  EXPECT_THROW(read_pgm(dir_ / "missing.pgm", w, h), std::runtime_error);
}

TEST_F(ImageWriteTest, FeatureMapSeriesNormalizesToFullRange) {
  Volume4<float> map({4, 4, 2, 3});
  for (std::int64_t t = 0; t < 3; ++t)
    for (std::int64_t z = 0; z < 2; ++z)
      for (std::int64_t y = 0; y < 4; ++y)
        for (std::int64_t x = 0; x < 4; ++x)
          map.at(x, y, z, t) = static_cast<float>(x + y + z + t);

  const int n = write_feature_map_images(dir_, "contrast", map, 0.0f, 3 + 3 + 1 + 2);
  EXPECT_EQ(n, 6);  // z * t slices

  std::int64_t w, h;
  const auto img = read_pgm(dir_ / "contrast_t0_z0.pgm", w, h);
  EXPECT_EQ(img[0], 0);  // min -> black
  const auto last = read_pgm(dir_ / "contrast_t2_z1.pgm", w, h);
  EXPECT_EQ(last.back(), 255);  // max -> white
}

TEST_F(ImageWriteTest, FeatureMapConstantInputIsBlack) {
  Volume4<float> map({3, 3, 1, 1}, 5.0f);
  write_feature_map_images(dir_, "flat", map, 5.0f, 5.0f);
  std::int64_t w, h;
  const auto img = read_pgm(dir_ / "flat_t0_z0.pgm", w, h);
  for (auto px : img) EXPECT_EQ(px, 0);
}

TEST(CsvWriter, FormatsHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "x"});
  csv.add_row({"2", "y"});
  EXPECT_EQ(csv.str(), "a,b\n1,x\n2,y\n");
}

TEST(CsvWriter, RejectsBadShape) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, NumFormatting) {
  EXPECT_EQ(CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::num(42), "42");
}

// --- Durable write primitives (io/durable_file.hpp) -------------------------

using DurableFileTest = ImageWriteTest;

TEST_F(DurableFileTest, AtomicWriteRoundTripsAndLeavesNoTmp) {
  const std::string payload = "hello, durable world";
  atomic_write_file(dir_ / "f.bin", payload.data(), payload.size());
  std::ifstream f(dir_ / "f.bin", std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(back, payload);
  EXPECT_FALSE(fsys::exists(dir_ / "f.bin.tmp"));
}

TEST_F(DurableFileTest, AtomicWriteReplacesExistingFile) {
  const std::string a = "first version, longer";
  const std::string b = "second";
  atomic_write_file(dir_ / "f.bin", a.data(), a.size());
  atomic_write_file(dir_ / "f.bin", b.data(), b.size());
  std::ifstream f(dir_ / "f.bin", std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(back, b);
}

TEST_F(DurableFileTest, AtomicWriteToMissingDirectoryThrowsTypedError) {
  const fsys::path target = dir_ / "no_such_dir" / "f.bin";
  try {
    atomic_write_file(target, "x", 1);
    FAIL() << "expected WriteError";
  } catch (const WriteError& e) {
    EXPECT_EQ(e.path(), fsys::path(target.string() + ".tmp"));
    EXPECT_NE(e.errno_value(), 0);
    EXPECT_FALSE(e.disk_full());
    EXPECT_NE(std::string(e.what()).find("f.bin"), std::string::npos);
  }
}

TEST_F(DurableFileTest, AppendDurableAccumulatesRecords) {
  append_durable(dir_ / "log.bin", "abc", 3);
  append_durable(dir_ / "log.bin", "def", 3);
  std::ifstream f(dir_ / "log.bin", std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(back, "abcdef");
}

TEST_F(DurableFileTest, DiskFullErrorIsActionable) {
  const WriteError e(dir_ / "out.pgm", 1024, ENOSPC, "feature map write");
  EXPECT_TRUE(e.disk_full());
  EXPECT_EQ(e.bytes_attempted(), 1024);
  const std::string msg = e.what();
  EXPECT_NE(msg.find("free space"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out.pgm"), std::string::npos) << msg;
}

TEST_F(DurableFileTest, ShortWriteErrorReportsByteCounts) {
  const WriteError e(dir_ / "samples.uso", 512, 0, "sample append");
  EXPECT_FALSE(e.disk_full());
  EXPECT_NE(std::string(e.what()).find("512"), std::string::npos);
}

}  // namespace
}  // namespace h4d::io
