#include "fs/xml.hpp"

#include <gtest/gtest.h>

namespace h4d::fs {
namespace {

TEST(Xml, SelfClosingElement) {
  const XmlNode n = parse_xml("<a x=\"1\" y='two'/>");
  EXPECT_EQ(n.tag, "a");
  EXPECT_EQ(n.attr("x"), "1");
  EXPECT_EQ(n.attr("y"), "two");
  EXPECT_TRUE(n.children.empty());
}

TEST(Xml, NestedElements) {
  const XmlNode n = parse_xml("<root><child a=\"1\"/><child a=\"2\"><grand/></child></root>");
  EXPECT_EQ(n.tag, "root");
  ASSERT_EQ(n.children.size(), 2u);
  EXPECT_EQ(n.children[0].attr("a"), "1");
  EXPECT_EQ(n.children[1].children.size(), 1u);
  EXPECT_EQ(n.children[1].children[0].tag, "grand");
}

TEST(Xml, DeclarationAndComments) {
  const XmlNode n = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<root>\n"
      "  <!-- another <comment> -->\n"
      "  <x/>\n"
      "</root>\n");
  EXPECT_EQ(n.tag, "root");
  ASSERT_EQ(n.children.size(), 1u);
}

TEST(Xml, TextContentIgnored) {
  const XmlNode n = parse_xml("<a>some text<b/>more text</a>");
  EXPECT_EQ(n.children.size(), 1u);
}

TEST(Xml, AttrHelpers) {
  const XmlNode n = parse_xml("<a x=\"7\"/>");
  EXPECT_EQ(n.attr_or("x", "0"), "7");
  EXPECT_EQ(n.attr_or("missing", "fallback"), "fallback");
  EXPECT_TRUE(n.has_attr("x"));
  EXPECT_FALSE(n.has_attr("missing"));
  EXPECT_THROW(n.attr("missing"), std::runtime_error);
}

TEST(Xml, ChildrenNamed) {
  const XmlNode n = parse_xml("<g><f/><s/><f/></g>");
  EXPECT_EQ(n.children_named("f").size(), 2u);
  EXPECT_EQ(n.children_named("s").size(), 1u);
  EXPECT_TRUE(n.children_named("zzz").empty());
}

TEST(Xml, MalformedInputs) {
  EXPECT_THROW(parse_xml(""), std::runtime_error);
  EXPECT_THROW(parse_xml("<a>"), std::runtime_error);                 // unterminated
  EXPECT_THROW(parse_xml("<a></b>"), std::runtime_error);             // mismatched
  EXPECT_THROW(parse_xml("<a x=1/>"), std::runtime_error);            // unquoted attr
  EXPECT_THROW(parse_xml("<a x=\"1\" x=\"2\"/>"), std::runtime_error);  // duplicate attr
  EXPECT_THROW(parse_xml("<a/><b/>"), std::runtime_error);            // two roots
  EXPECT_THROW(parse_xml("<a x=\"unterminated/>"), std::runtime_error);
  EXPECT_THROW(parse_xml("<!-- only a comment -->"), std::runtime_error);
  EXPECT_THROW(parse_xml("<a><!-- unterminated comment </a>"), std::runtime_error);
}

TEST(Xml, WhitespaceTolerance) {
  const XmlNode n = parse_xml("  <a   x = \"1\"   >  <b />  </a>  ");
  EXPECT_EQ(n.attr("x"), "1");
  ASSERT_EQ(n.children.size(), 1u);
}

}  // namespace
}  // namespace h4d::fs
