// Tail-tolerant I/O (resilience layer, part 3): per-node latency tracking,
// adaptive per-read deadlines, the abandonable slice-fetch pool, hedged
// replica reads, and gray-failure (slow-node) eviction — capped by the
// end-to-end drill: one replica node injected heavy-tailed slow must not
// change a single output byte, and must be detected, hedged around, and
// evicted with reason `slow`.
#include "io/tail.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>

#include "core/analysis.hpp"
#include "io/dataset.hpp"
#include "io/fault.hpp"
#include "io/phantom.hpp"
#include "io/replica_set.hpp"
#include "io/resilient_reader.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;
using steady = std::chrono::steady_clock;

// --- LatencyTracker ---------------------------------------------------------

TEST(LatencyTracker, RecordsPerNodeStatistics) {
  LatencyTracker lt(2);
  for (int i = 0; i < 100; ++i) lt.record(0, 1.0);
  lt.record(0, 100.0);
  EXPECT_EQ(lt.reads(0), 101);
  EXPECT_EQ(lt.reads(1), 0);
  // Histogram buckets grow by 25%, so percentiles are read back with that
  // resolution: the p50 sits at the 1 ms bucket's upper edge, and the tail
  // quantile lands in the outlier's bucket.
  EXPECT_GE(lt.percentile_ms(0, 0.5), 1.0);
  EXPECT_LE(lt.percentile_ms(0, 0.5), 2.0);
  EXPECT_GT(lt.percentile_ms(0, 0.999), 50.0);
  EXPECT_GT(lt.ewma_ms(0), 0.0);
  EXPECT_EQ(lt.percentile_ms(1, 0.5), 0.0);  // no history
  const std::vector<NodeLatencyStats> snap = lt.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].node, 0);
  EXPECT_EQ(snap[0].reads, 101);
  EXPECT_GT(snap[0].p99_ms, 0.0);
  EXPECT_EQ(snap[1].reads, 0);
  // Out-of-range nodes and negative/NaN durations are ignored, not UB.
  lt.record(7, 1.0);
  lt.record(-1, 1.0);
  lt.record(0, -3.0);
  EXPECT_EQ(lt.snapshot().size(), 2u);
  EXPECT_EQ(lt.reads(0), 101);
}

TEST(LatencyTracker, AdaptiveDeadlineClampsAndWarmsUp) {
  LatencyTracker lt(1);
  TailConfig off;
  EXPECT_DOUBLE_EQ(lt.deadline_for(0, off), 0.0);  // deadlines disabled

  TailConfig cfg;
  cfg.deadline_enabled = true;  // auto: clamp(3 x p99, 5, 500)
  // Cold node: the ceiling applies — a zero p99 must not abandon healthy
  // reads.
  EXPECT_DOUBLE_EQ(lt.deadline_for(0, cfg), cfg.deadline_ceiling_ms);
  for (int i = 0; i < 100; ++i) lt.record(0, 10.0);
  // Warm: 3 x p99 with p99 in the 10 ms bucket (~10.6 ms upper edge).
  EXPECT_GT(lt.deadline_for(0, cfg), 25.0);
  EXPECT_LT(lt.deadline_for(0, cfg), 45.0);
  // A pinned deadline bypasses the statistics entirely.
  cfg.deadline_ms = 42.0;
  EXPECT_DOUBLE_EQ(lt.deadline_for(0, cfg), 42.0);
  cfg.deadline_ms = 0.0;
  // Floor: a very fast node still gets deadline_floor_ms of grace.
  LatencyTracker fast(1);
  for (int i = 0; i < 20; ++i) fast.record(0, 0.01);
  EXPECT_DOUBLE_EQ(fast.deadline_for(0, cfg), cfg.deadline_floor_ms);
  // Ceiling: a pathologically slow node cannot stretch deadlines past it.
  LatencyTracker slow(1);
  for (int i = 0; i < 20; ++i) slow.record(0, 10000.0);
  EXPECT_DOUBLE_EQ(slow.deadline_for(0, cfg), cfg.deadline_ceiling_ms);
  // Unknown node: ceiling (cold by definition).
  EXPECT_DOUBLE_EQ(lt.deadline_for(9, cfg), cfg.deadline_ceiling_ms);
}

TEST(LatencyTracker, HedgeDelayFloorsWhileCold) {
  TailConfig cfg;
  cfg.hedge_enabled = true;
  cfg.hedge_pct = 95.0;
  LatencyTracker lt(1);
  EXPECT_DOUBLE_EQ(lt.hedge_delay_for(0, cfg), cfg.hedge_floor_ms);  // cold
  for (int i = 0; i < 100; ++i) lt.record(0, 8.0);
  const double d = lt.hedge_delay_for(0, cfg);
  EXPECT_GE(d, 8.0);  // p95 of an 8 ms history, bucket-rounded up
  EXPECT_LE(d, 11.0);
  // A sub-millisecond history floors at hedge_floor_ms: hedging on noise
  // would double every read.
  LatencyTracker fast(1);
  for (int i = 0; i < 100; ++i) fast.record(0, 0.01);
  EXPECT_DOUBLE_EQ(fast.hedge_delay_for(0, cfg), cfg.hedge_floor_ms);
}

TEST(LatencyTracker, BreachStreakTriggersAtSlowAfterAndResets) {
  LatencyTracker lt(2);
  EXPECT_FALSE(lt.note_breach(0, 3));
  EXPECT_FALSE(lt.note_breach(0, 3));
  EXPECT_TRUE(lt.note_breach(0, 3));   // third consecutive breach: evict
  EXPECT_FALSE(lt.note_breach(0, 3));  // streak restarted after the verdict
  lt.note_on_time(0);                  // an on-time read clears the streak
  EXPECT_FALSE(lt.note_breach(0, 3));
  EXPECT_FALSE(lt.note_breach(0, 3));
  EXPECT_TRUE(lt.note_breach(0, 3));
  // Every breach counts globally and per node, streak verdicts or not.
  EXPECT_EQ(lt.breaches.load(), 7);
  EXPECT_EQ(lt.snapshot()[0].breaches, 7);
  EXPECT_EQ(lt.snapshot()[1].breaches, 0);
  // Nodes have independent streaks; out-of-range nodes are ignored.
  EXPECT_FALSE(lt.note_breach(1, 2));
  EXPECT_TRUE(lt.note_breach(1, 2));
  EXPECT_FALSE(lt.note_breach(-1, 1));
  EXPECT_FALSE(lt.note_breach(5, 1));
}

TEST(LatencyTracker, HedgeInflightCapIsGlobal) {
  LatencyTracker lt(1);
  EXPECT_TRUE(lt.try_begin_hedge(2));
  EXPECT_TRUE(lt.try_begin_hedge(2));
  EXPECT_FALSE(lt.try_begin_hedge(2));  // cap reached
  lt.end_hedge();
  EXPECT_TRUE(lt.try_begin_hedge(2));
  lt.end_hedge();
  lt.end_hedge();
  // A cap below 1 still admits one hedge at a time (never locks out).
  EXPECT_TRUE(lt.try_begin_hedge(0));
  EXPECT_FALSE(lt.try_begin_hedge(0));
  lt.end_hedge();
}

// --- SliceFetchPool ---------------------------------------------------------

class SliceFetchPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_tail_pool_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    vol_ = Volume4<std::uint16_t>({6, 5, 4, 3});
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<int> u(0, 3000);
    for (auto& x : vol_.storage()) x = static_cast<std::uint16_t>(u(rng));
  }
  void TearDown() override { fsys::remove_all(root_); }

  static SliceFetchPool::Request request(const StorageNodeReader& reader,
                                         const DatasetMeta& meta, const SliceRef& slice) {
    SliceFetchPool::Request req;
    req.node_dir = reader.node_dir();
    req.meta = meta;
    req.node = 0;
    req.slice = slice;
    req.verify = true;
    return req;
  }

  static void wait_all(const std::shared_ptr<FetchEvent>& event,
                       std::initializer_list<std::shared_ptr<FetchTicket>> tickets) {
    int seen = 0;
    const auto give_up = steady::now() + std::chrono::seconds(10);
    for (;;) {
      bool all = true;
      for (const auto& t : tickets) all = all && t->done();
      if (all) return;
      ASSERT_LT(steady::now(), give_up) << "pooled fetch never completed";
      seen = event->wait_until(steady::now() + std::chrono::milliseconds(50), seen);
    }
  }

  fsys::path root_;
  Volume4<std::uint16_t> vol_{Vec4{1, 1, 1, 1}};
};

TEST_F(SliceFetchPoolTest, FetchesAndVerifiesWholeSlices) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  const StorageNodeReader reader = ds.node_reader(0);
  SliceFetchPool pool(2);
  auto event = std::make_shared<FetchEvent>();
  const SliceRef slice = reader.slices().front();
  auto ticket = pool.submit(request(reader, ds.meta(), slice), event);
  wait_all(event, {ticket});
  FetchResult& r = ticket->result();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.crc_failed);
  EXPECT_EQ(r.bytes_read, ds.meta().slice_bytes());
  EXPECT_GE(r.service_ms, 0.0);
  ASSERT_EQ(r.bytes.size(), static_cast<std::size_t>(ds.meta().slice_bytes()));
  const auto* px = reinterpret_cast<const std::uint16_t*>(r.bytes.data());
  for (std::int64_t y = 0; y < 5; ++y)
    for (std::int64_t x = 0; x < 6; ++x) {
      ASSERT_EQ(px[y * 6 + x], vol_.at(x, y, slice.z, slice.t));
    }
}

TEST_F(SliceFetchPoolTest, ReportsCrcFailuresAsSuch) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  const StorageNodeReader reader = ds.node_reader(0);
  const SliceRef slice = reader.slices().front();
  {  // Flip one byte of the slice file on disk behind the index's CRC.
    std::fstream f(reader.node_dir() / slice.filename,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5A);
    f.seekp(0);
    f.write(&c, 1);
  }
  SliceFetchPool pool(1);
  auto event = std::make_shared<FetchEvent>();
  auto ticket = pool.submit(request(reader, ds.meta(), slice), event);
  wait_all(event, {ticket});
  FetchResult& r = ticket->result();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.crc_failed);  // typed: the hedge race must not count this a win
  EXPECT_NE(r.error.find("checksum mismatch"), std::string::npos) << r.error;
  EXPECT_GT(r.bytes_read, 0);  // the raw attempt traffic still shows
}

TEST_F(SliceFetchPoolTest, AbandonedTicketsAreCancelledBeforeStart) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  const StorageNodeReader reader = ds.node_reader(0);
  // One worker, and the first request stalls it for ~50 ms: the second
  // request is still queued when it is abandoned, so it must complete as
  // cancelled without touching disk.
  FaultConfig fc;
  fc.p_stall = 1.0;
  fc.stall_ms = 50.0;
  fc.stall_cap_ms = 50.0;
  FaultInjector inj(fc);
  SliceFetchPool pool(1);
  auto event = std::make_shared<FetchEvent>();
  SliceFetchPool::Request slow = request(reader, ds.meta(), reader.slices()[0]);
  slow.injector = &inj;
  SliceFetchPool::Request queued = request(reader, ds.meta(), reader.slices()[1]);
  auto t1 = pool.submit(slow, event);
  auto t2 = pool.submit(queued, event);
  t2->abandon();
  EXPECT_TRUE(t2->abandoned());
  wait_all(event, {t1, t2});
  EXPECT_TRUE(t1->result().ok) << t1->result().error;  // a stall only delays
  EXPECT_FALSE(t2->result().ok);
  EXPECT_EQ(t2->result().error, "abandoned before start");
  EXPECT_EQ(t2->result().bytes_read, 0);
}

TEST_F(SliceFetchPoolTest, FailedFetchesCarryTheReason) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  const StorageNodeReader reader = ds.node_reader(0);
  SliceFetchPool pool(1);
  SliceFetchPool::Request req = request(reader, ds.meta(), reader.slices().front());
  req.node_dir = root_ / "nonexistent_node";
  auto event = std::make_shared<FetchEvent>();
  auto ticket = pool.submit(req, event);
  wait_all(event, {ticket});
  EXPECT_FALSE(ticket->result().ok);
  EXPECT_FALSE(ticket->result().crc_failed);
  EXPECT_FALSE(ticket->result().error.empty());
}

// --- ResilientReader tail path ----------------------------------------------

class TailReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_tail_read_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    vol_ = Volume4<std::uint16_t>({6, 5, 4, 3});
    std::mt19937_64 rng(23);
    std::uniform_int_distribution<int> u(0, 3000);
    for (auto& x : vol_.storage()) x = static_cast<std::uint16_t>(u(rng));
  }
  void TearDown() override { fsys::remove_all(root_); }

  void expect_slice_matches(const SliceRef& s, const std::vector<std::uint16_t>& out) {
    for (std::int64_t y = 0; y < 5; ++y)
      for (std::int64_t x = 0; x < 6; ++x) {
        ASSERT_EQ(out[static_cast<std::size_t>(y * 6 + x)], vol_.at(x, y, s.z, s.t))
            << "t=" << s.t << " z=" << s.z;
      }
  }

  fsys::path root_;
  Volume4<std::uint16_t> vol_{Vec4{1, 1, 1, 1}};
};

TEST_F(TailReadTest, HedgedReadsWinAgainstAGrayPrimaryAndEvictIt) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 2, 2);
  ReplicaSet replicas(root_, ds.meta(), {});
  LatencyTracker tracker(2);
  SliceFetchPool pool(2);
  TailConfig tail;
  tail.hedge_enabled = true;
  tail.hedge_pct = 90.0;
  tail.hedge_floor_ms = 0.5;

  // Node 0 is gray: every primary read stalls ~10 ms (alive, just slow), so
  // the hedge to node 1 wins the race every time.
  FaultConfig fc;
  fc.seed = 9;
  fc.p_stall = 1.0;
  fc.stall_ms = 10.0;
  fc.stall_cap_ms = 25.0;
  FaultInjector inj(fc);

  ResilienceConfig rc;
  rc.policy = DegradePolicy::Retry;
  rc.retry.really_sleep = false;
  ResilientReader reader(ds.node_reader(0), rc, &inj, nullptr, &replicas);
  reader.attach_tail(tail, &tracker, &pool);

  std::vector<std::uint16_t> out(6 * 5);
  for (const SliceRef& s : reader.slices()) {
    ASSERT_TRUE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
    expect_slice_matches(s, out);
  }

  EXPECT_GT(reader.tail_hedges_issued(), 0);
  EXPECT_GT(reader.tail_hedges_won(), 0);
  EXPECT_LE(reader.tail_hedges_won(), reader.tail_hedges_issued());
  // The per-reader counters and the shared tracker agree exactly (one
  // reader: the deltas are the totals).
  EXPECT_EQ(tracker.hedges_issued.load(), reader.tail_hedges_issued());
  EXPECT_EQ(tracker.hedges_won.load(), reader.tail_hedges_won());
  EXPECT_EQ(tracker.hedges_abandoned.load(), reader.tail_hedges_abandoned());
  EXPECT_EQ(tracker.reads_abandoned.load(), 0);  // deadlines were off
  // Three consecutive lost hedges evicted node 0 as slow, through the same
  // probation machinery as failure evictions.
  EXPECT_EQ(reader.tail_slow_evictions(), 1);
  EXPECT_EQ(tracker.evictions_slow.load(), 1);
  EXPECT_TRUE(replicas.node_evicted(0));
  EXPECT_EQ(replicas.evictions_slow(), 1);
  const std::vector<EvictionEvent> events = replicas.eviction_events();
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].node, 0);
  EXPECT_EQ(events[0].reason, EvictReason::Slow);
  // Node 1 won the hedges: its latency history carries the reads.
  EXPECT_GT(tracker.reads(1), 0);
}

TEST_F(TailReadTest, DeadlineExpiryAbandonsAndFallsBackSynchronously) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  LatencyTracker tracker(1);
  SliceFetchPool pool(2);
  TailConfig tail;
  tail.deadline_enabled = true;
  tail.deadline_ms = 5.0;  // pinned, far below the injected stall

  // Every pooled read stalls ~20 ms and blows the 5 ms deadline; the
  // abandoned read is replaced by the synchronous fallback, which delivers
  // the same bytes (a stall only delays).
  FaultConfig fc;
  fc.seed = 4;
  fc.p_stall = 1.0;
  fc.stall_ms = 20.0;
  fc.stall_cap_ms = 25.0;
  FaultInjector inj(fc);

  ResilienceConfig rc;
  rc.policy = DegradePolicy::Retry;
  rc.retry.really_sleep = false;
  ResilientReader reader(ds.node_reader(0), rc, &inj);
  reader.attach_tail(tail, &tracker, &pool);

  std::vector<std::uint16_t> out(6 * 5);
  for (const SliceRef& s : reader.slices()) {
    ASSERT_TRUE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
    expect_slice_matches(s, out);
  }
  EXPECT_GT(reader.tail_reads_abandoned(), 0);
  EXPECT_EQ(tracker.reads_abandoned.load(), reader.tail_reads_abandoned());
  EXPECT_GT(reader.tail_breaches(), 0);
  EXPECT_EQ(reader.tail_hedges_issued(), 0);  // hedging was off
  // Without a replica set there is nothing to evict — abandonment alone
  // must not fabricate evictions.
  EXPECT_EQ(reader.tail_slow_evictions(), 0);
  EXPECT_EQ(reader.report().nodes_evicted, 0);
}

TEST_F(TailReadTest, TailLayerOffByDefaultTouchesNothing) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  LatencyTracker tracker(1);
  SliceFetchPool pool(1);
  ResilienceConfig rc;
  rc.policy = DegradePolicy::Retry;
  ResilientReader reader(ds.node_reader(0), rc);
  reader.attach_tail(TailConfig{}, &tracker, &pool);  // enabled() == false
  std::vector<std::uint16_t> out(6 * 5);
  for (const SliceRef& s : reader.slices()) {
    ASSERT_TRUE(reader.read_slice_region(s, 0, 0, 6, 5, out.data()));
  }
  EXPECT_EQ(tracker.hedges_issued.load(), 0);
  EXPECT_EQ(tracker.reads_abandoned.load(), 0);
  EXPECT_EQ(tracker.reads(0), 0);  // no pooled reads happened at all
}

// --- Gray-failure end-to-end drill ------------------------------------------

struct TailE2E : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_tail_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    PhantomConfig pcfg;
    pcfg.dims = {16, 14, 5, 4};
    pcfg.num_tumors = 1;
    pcfg.seed = 13;
    phantom_ = generate_phantom(pcfg).volume;
    DiskDataset::create(root_, phantom_, 2, 2);  // 2 nodes, r = 2
  }
  void TearDown() override { fsys::remove_all(root_); }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.dataset_root = root_;
    cfg.engine.roi_dims = {5, 5, 3, 3};
    cfg.engine.num_levels = 16;
    cfg.engine.features = haralick::FeatureSet::paper_eval();
    cfg.texture_chunk = {10, 10, 4, 3};
    cfg.rfr_copies = 2;  // one per storage node
    cfg.variant = core::Variant::HMP;
    cfg.hmp_copies = 2;
    cfg.resilience.retry.really_sleep = false;
    return cfg;
  }

  fsys::path root_;
  Volume4<std::uint16_t> phantom_{Vec4{1, 1, 1, 1}};
};

TEST_F(TailE2E, GrayNodeIsHedgedAroundEvictedAndByteIdentical) {
  const auto clean_t0 = steady::now();
  const core::AnalysisResult clean = core::analyze_threaded(config());
  const double clean_s =
      std::chrono::duration<double>(steady::now() - clean_t0).count();
  ASSERT_TRUE(clean.faults.clean());
  EXPECT_FALSE(clean.stats.tail.present);  // tail layer off: no section

  // Same run, but node 0 is gray: every read it serves stalls with a
  // heavy-tailed (Pareto) duration scaled 32x on that node. Stalls only
  // delay — no read fails — so any output difference would be a tail-layer
  // bug.
  core::PipelineConfig cfg = config();
  cfg.faults.seed = 31;
  cfg.faults.p_stall = 1.0;
  cfg.faults.stall_ms = 0.2;
  cfg.faults.stall_cap_ms = 25.0;
  cfg.faults.stall_dist = StallDist::Pareto;
  cfg.faults.pareto_alpha = 1.5;
  cfg.faults.slow_nodes[0] = 32.0;
  cfg.tail.hedge_enabled = true;
  cfg.tail.hedge_pct = 90.0;
  cfg.tail.hedge_floor_ms = 0.5;
  cfg.tail.deadline_enabled = true;  // adaptive deadlines ride along
  cfg.tail.slow_after = 3;

  const auto gray_t0 = steady::now();
  const core::AnalysisResult gray = core::analyze_threaded(cfg);
  const double gray_s =
      std::chrono::duration<double>(steady::now() - gray_t0).count();

  // 1. Byte-identical output: hedge winners are CRC-verified whole slices,
  //    the same bytes any replica serves.
  ASSERT_EQ(clean.maps.size(), gray.maps.size());
  for (const auto& [feature, map] : clean.maps) {
    ASSERT_EQ(map.storage(), gray.maps.at(feature).storage())
        << haralick::feature_name(feature);
  }

  // 2. The tail layer engaged: hedges were issued and won against the gray
  //    node, and the io_tail report carries them.
  const fs::TailReport& tail = gray.stats.tail;
  ASSERT_TRUE(tail.present);
  EXPECT_TRUE(tail.hedge_enabled);
  EXPECT_EQ(tail.deadline_mode, "auto");
  EXPECT_GT(tail.hedges_issued, 0);
  EXPECT_GT(tail.hedges_won, 0);
  EXPECT_LE(tail.hedges_won, tail.hedges_issued);
  EXPECT_GT(tail.reads, 0);

  // 3. The gray node was evicted with the typed reason `slow`.
  bool slow_evicted = false;
  for (const fs::TailEvictionRow& e : tail.evictions) {
    if (e.node == 0 && e.reason == "slow") slow_evicted = true;
  }
  EXPECT_TRUE(slow_evicted) << "node 0 must be evicted as slow";
  EXPECT_GT(tail.evictions_slow, 0);

  // 4. The work meters' deltas sum to the tracker's exact totals.
  std::int64_t metered_issued = 0, metered_won = 0, metered_breaches = 0;
  for (const auto& c : gray.stats.copies) {
    metered_issued += c.meter.hedges_issued;
    metered_won += c.meter.hedges_won;
    metered_breaches += c.meter.tail_breaches;
  }
  EXPECT_EQ(metered_issued, tail.hedges_issued);
  EXPECT_EQ(metered_won, tail.hedges_won);
  EXPECT_EQ(metered_breaches, tail.breaches);

  // 5. Tail tolerance bounded the damage: the gray run finishes within ~2x
  //    the clean run (generous absolute slack for loaded CI machines; an
  //    unhedged run would eat the full 32x stall on every node-0 read).
  EXPECT_LE(gray_s, 2.0 * clean_s + 1.0)
      << "gray " << gray_s << "s vs clean " << clean_s << "s";
}

}  // namespace
}  // namespace h4d::io
