#include "haralick/sliding.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "haralick/directions.hpp"
#include "haralick/roi_engine.hpp"
#include "nd/raster.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

void expect_same(const Glcm& a, const Glcm& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  EXPECT_EQ(a.total(), b.total());
  for (int i = 0; i < a.num_levels(); ++i)
    for (int j = 0; j < a.num_levels(); ++j) {
      ASSERT_EQ(a.count(i, j), b.count(i, j)) << "cell (" << i << "," << j << ")";
    }
}

Glcm reference(const Volume4<Level>& v, const Vec4& origin, const Vec4& roi,
               const std::vector<Vec4>& dirs, int ng) {
  Glcm g(ng);
  g.accumulate(v.view(), Region4{origin, roi}, dirs);
  return g;
}

TEST(SlidingGlcm, ResetMatchesFromScratch) {
  const auto v = random_volume({10, 9, 5, 4}, 8, 1);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{4, 4, 3, 2};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  s.reset({2, 1, 1, 1});
  expect_same(s.glcm(), reference(v, {2, 1, 1, 1}, roi, dirs, 8));
}

class SlidingAxis : public ::testing::TestWithParam<int> {};

TEST_P(SlidingAxis, SingleSlideMatchesFromScratch) {
  const int axis = GetParam();
  const auto v = random_volume({10, 9, 6, 5}, 8, 2);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{4, 4, 3, 3};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  s.reset({1, 1, 1, 1});
  s.slide(axis);
  Vec4 o{1, 1, 1, 1};
  o[axis] += 1;
  expect_same(s.glcm(), reference(v, o, roi, dirs, 8));
  EXPECT_EQ(s.origin(), o);
}

INSTANTIATE_TEST_SUITE_P(AllAxes, SlidingAxis, ::testing::Values(0, 1, 2, 3));

TEST(SlidingGlcm, FullRowScanMatchesEverywhere) {
  const auto v = random_volume({16, 6, 4, 4}, 16, 3);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{5, 4, 3, 3};
  SlidingGlcm s(v.view(), roi, dirs, 16);
  s.reset({0, 1, 0, 0});
  for (std::int64_t x = 0; x + roi[0] <= 16; ++x) {
    if (x > 0) s.slide(0);
    expect_same(s.glcm(), reference(v, {x, 1, 0, 0}, roi, dirs, 16));
  }
}

TEST(SlidingGlcm, MixedAxisWalkMatches) {
  const auto v = random_volume({9, 9, 6, 6}, 8, 4);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{3, 3, 3, 3};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  Vec4 o{0, 0, 0, 0};
  s.reset(o);
  for (const int axis : {0, 0, 1, 2, 3, 1, 0, 2, 3, 3}) {
    s.slide(axis);
    o[axis] += 1;
    expect_same(s.glcm(), reference(v, o, roi, dirs, 8));
  }
}

TEST(SlidingGlcm, CheaperThanRecomputeOnRowScan) {
  const auto v = random_volume({32, 8, 4, 4}, 8, 5);
  const auto dirs = unique_directions(ActiveDims::all4());
  const Vec4 roi{7, 5, 3, 3};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  s.reset({0, 0, 0, 0});
  const std::int64_t reset_cost = s.updates_performed();
  for (int x = 1; x + roi[0] <= 32; ++x) s.slide(0);
  const std::int64_t per_slide =
      (s.updates_performed() - reset_cost) / (32 - roi[0]);
  EXPECT_LT(per_slide, reset_cost / 2) << "sliding should beat full recompute";
}

TEST(SlidingGlcm, AxisAlignedDirectionsOnly) {
  const auto v = random_volume({12, 8, 4, 4}, 8, 6);
  const auto dirs = axis_directions(ActiveDims::all4());
  const Vec4 roi{4, 4, 3, 3};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  s.reset({0, 0, 0, 0});
  for (int i = 0; i < 5; ++i) s.slide(0);
  expect_same(s.glcm(), reference(v, {5, 0, 0, 0}, roi, dirs, 8));
}

TEST(SlidingGlcm, Distance2Directions) {
  const auto v = random_volume({14, 10, 5, 5}, 8, 7);
  const auto dirs = unique_directions(ActiveDims::planar2(), 2);
  const Vec4 roi{6, 6, 2, 2};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  s.reset({1, 1, 1, 1});
  s.slide(0);
  s.slide(1);
  expect_same(s.glcm(), reference(v, {2, 2, 1, 1}, roi, dirs, 8));
}

TEST(SlidingGlcm, Guards) {
  const auto v = random_volume({8, 8, 4, 4}, 8, 8);
  const auto dirs = axis_directions(ActiveDims::all4());
  SlidingGlcm s(v.view(), {4, 4, 3, 3}, dirs, 8);
  EXPECT_THROW(s.slide(0), std::logic_error);  // before reset
  s.reset({4, 4, 1, 1});
  EXPECT_THROW(s.slide(0), std::invalid_argument);  // would escape volume
  EXPECT_THROW(s.slide(7), std::invalid_argument);  // bad axis
  EXPECT_THROW(s.reset({9, 0, 0, 0}), std::invalid_argument);
  // Direction larger than the ROI is rejected at construction.
  EXPECT_THROW(SlidingGlcm(v.view(), {2, 2, 2, 2},
                           axis_directions(ActiveDims::all4(), 3), 8),
               std::invalid_argument);
}

TEST(SlidingGlcm, NegativeDisplacementDirections) {
  // Regression coverage for directions with negative components, which the
  // axis-aligned and unique_directions suites above only exercise partially.
  const auto v = random_volume({10, 9, 5, 5}, 8, 11);
  const std::vector<Vec4> dirs{{-1, 0, 0, 0}, {0, -1, 0, 0}, {-1, -1, 0, 0},
                               {1, -1, 0, 0}, {-1, 1, 0, 0}, {0, 0, -1, -1}};
  const Vec4 roi{4, 4, 3, 3};
  SlidingGlcm s(v.view(), roi, dirs, 8);
  Vec4 o{1, 1, 0, 0};
  s.reset(o);
  expect_same(s.glcm(), reference(v, o, roi, dirs, 8));
  for (const int axis : {0, 1, 2, 3, 0, 1, 2, 3, 0, 1}) {
    s.slide(axis);
    o[axis] += 1;
    expect_same(s.glcm(), reference(v, o, roi, dirs, 8));
  }
}

TEST(SlidingGlcm, RandomizedCrossCheckAgainstAccumulate) {
  // Seeded property test: random volumes, ROI shapes and direction sets
  // (including negative and mixed-sign displacements), checked against
  // Glcm::accumulate after every slide of a random walk.
  std::mt19937_64 rng(20040404);
  const auto pick = [&rng](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };

  for (int iter = 0; iter < 20; ++iter) {
    Vec4 dims, roi;
    for (int d = 0; d < 4; ++d) {
      dims[d] = pick(5, 9);
      roi[d] = pick(2, dims[d] - 1);  // leave room to slide on every axis
    }
    const int ng = static_cast<int>(pick(0, 1)) ? 8 : 16;
    const auto v = random_volume(dims, ng, 100 + static_cast<unsigned>(iter));

    // Random non-zero directions with |component| < roi extent per axis.
    std::vector<Vec4> dirs;
    const std::int64_t num_dirs = pick(2, 6);
    while (static_cast<std::int64_t>(dirs.size()) < num_dirs) {
      Vec4 dir{0, 0, 0, 0};
      for (int d = 0; d < 4; ++d) {
        dir[d] = pick(-std::min<std::int64_t>(2, roi[d] - 1),
                      std::min<std::int64_t>(2, roi[d] - 1));
      }
      if (dir != Vec4{0, 0, 0, 0}) dirs.push_back(dir);
    }

    SlidingGlcm s(v.view(), roi, dirs, ng);
    Vec4 o;
    for (int d = 0; d < 4; ++d) o[d] = pick(0, dims[d] - roi[d]);
    s.reset(o);
    expect_same(s.glcm(), reference(v, o, roi, dirs, ng));

    for (int step = 0; step < 10; ++step) {
      // Collect the axes that still have room; stop if the walk is stuck.
      std::vector<int> movable;
      for (int d = 0; d < 4; ++d) {
        if (o[d] + roi[d] < dims[d]) movable.push_back(d);
      }
      if (movable.empty()) break;
      const int axis = movable[static_cast<std::size_t>(
          pick(0, static_cast<std::int64_t>(movable.size()) - 1))];
      s.slide(axis);
      o[axis] += 1;
      expect_same(s.glcm(), reference(v, o, roi, dirs, ng));
    }
  }
}

TEST(SlidingEngine, AnalyzeVolumeMatchesNonSliding) {
  const auto v = random_volume({12, 10, 6, 5}, 16, 9);
  EngineConfig base;
  base.roi_dims = {4, 4, 3, 3};
  base.num_levels = 16;
  base.features = FeatureSet::all();
  EngineConfig slid = base;
  slid.sliding_window = true;

  const auto a = analyze_volume(v, base);
  const auto b = analyze_volume(v, slid);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].values.size(), b[i].values.size());
    for (std::size_t j = 0; j < a[i].values.size(); ++j) {
      EXPECT_FLOAT_EQ(a[i].values[j], b[i].values[j]) << feature_name(a[i].feature);
    }
  }
}

TEST(SlidingEngine, ReportsFewerPairUpdates) {
  const auto v = random_volume({24, 10, 5, 4}, 16, 10);
  EngineConfig base;
  base.roi_dims = {6, 4, 3, 3};
  base.num_levels = 16;
  EngineConfig slid = base;
  slid.sliding_window = true;

  WorkCounters wa{}, wb{};
  analyze_volume(v, base, &wa);
  analyze_volume(v, slid, &wb);
  EXPECT_EQ(wa.matrices_built, wb.matrices_built);
  EXPECT_LT(wb.glcm_pair_updates, wa.glcm_pair_updates / 2);
}

}  // namespace
}  // namespace h4d::haralick
