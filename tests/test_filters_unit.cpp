// Unit tests of the pipeline filters in isolation, with a mock context.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "filters/input_filters.hpp"
#include "filters/output_filters.hpp"
#include "filters/texture_filters.hpp"
#include "io/phantom.hpp"
#include "mock_context.hpp"
#include "nd/raster.hpp"

namespace h4d::filters {
namespace {

namespace fsys = std::filesystem;
using fs::BufferKind;
using fs::testing::MockContext;
using haralick::Feature;

class FilterUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_funit_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);

    io::PhantomConfig pcfg;
    pcfg.dims = {16, 14, 6, 4};
    pcfg.seed = 21;
    volume_ = io::generate_phantom(pcfg).volume;
    io::DiskDataset::create(root_, volume_, 2);

    PipelineParams p;
    p.dataset_root = root_;
    p.meta = io::DatasetMeta::load(root_);
    p.engine.roi_dims = {5, 5, 3, 3};
    p.engine.num_levels = 16;
    p.texture_chunk = {10, 10, 5, 4};
    p.iic_copies = 1;
    params_ = PipelineParams::make(std::move(p));
  }
  void TearDown() override { fsys::remove_all(root_); }

  /// Run RFR copies and feed everything into one IIC; returns the IIC's
  /// emitted texture chunks.
  std::vector<fs::BufferPtr> run_input_stage() {
    MockContext iic_ctx;
    InputImageConstructor iic(params_);
    for (int node = 0; node < params_->meta.storage_nodes; ++node) {
      MockContext rfr_ctx(node, params_->meta.storage_nodes);
      RawFileReader rfr(params_);
      rfr.run_source(rfr_ctx);
      for (const auto& e : rfr_ctx.emitted) {
        iic.process(kPortPieces, e.buffer, iic_ctx);
      }
    }
    iic.flush(iic_ctx);
    return iic_ctx.of_kind(BufferKind::TextureChunk);
  }

  fsys::path root_;
  Volume4<std::uint16_t> volume_{Vec4{1, 1, 1, 1}};
  ParamsPtr params_;
};

TEST_F(FilterUnitTest, RfrEmitsEverySlicePieceWithDiskAccounting) {
  MockContext ctx(0, 2);
  RawFileReader rfr(params_);
  rfr.run_source(ctx);
  const auto pieces = ctx.of_kind(BufferKind::RawChunkPiece);
  // Node 0 owns half the 24 slices; whole-slice pieces, single IIC copy.
  EXPECT_EQ(pieces.size(), 12u);
  for (const auto& b : pieces) {
    EXPECT_EQ(b->header.region.size[0], 16);
    EXPECT_EQ(b->header.region.size[1], 14);
    EXPECT_EQ(b->payload.size(), 16u * 14u);
  }
  EXPECT_GT(ctx.work().disk_bytes_read, 0);
  EXPECT_GT(ctx.work().disk_seeks, 0);
  EXPECT_EQ(ctx.work().elements_quantized, 12 * 16 * 14);
}

TEST_F(FilterUnitTest, RfrQuantizesAgainstGlobalRange) {
  MockContext ctx(0, 2);
  RawFileReader rfr(params_);
  rfr.run_source(ctx);
  const Quantizer q = params_->quantizer();
  const auto pieces = ctx.of_kind(BufferKind::RawChunkPiece);
  ASSERT_FALSE(pieces.empty());
  const auto& b = pieces.front();
  const Region4& r = b->header.region;
  for (std::int64_t y = 0; y < r.size[1]; ++y) {
    for (std::int64_t x = 0; x < r.size[0]; ++x) {
      const Level expect =
          q(volume_.at(r.origin[0] + x, r.origin[1] + y, r.origin[2], r.origin[3]));
      EXPECT_EQ(static_cast<Level>(b->payload[static_cast<std::size_t>(y * r.size[0] + x)]),
                expect);
    }
  }
}

TEST_F(FilterUnitTest, IicReassemblesEveryChunkExactly) {
  const auto chunks = run_input_stage();
  EXPECT_EQ(chunks.size(), params_->chunks.size());

  const Quantizer q = params_->quantizer();
  std::set<std::int64_t> seen;
  for (const auto& b : chunks) {
    seen.insert(b->header.chunk_id);
    const Region4& r = b->header.region;
    EXPECT_EQ(static_cast<std::int64_t>(b->payload.size()), r.volume());
    const Vol4View<const Level> view(reinterpret_cast<const Level*>(b->payload.data()),
                                     r.size);
    for (const Vec4& p : raster(Region4::whole(r.size))) {
      EXPECT_EQ(view.at(p), q(volume_.at(r.origin + p))) << p.str();
    }
  }
  EXPECT_EQ(seen.size(), params_->chunks.size());
}

TEST_F(FilterUnitTest, IicFlushThrowsOnMissingPieces) {
  MockContext iic_ctx;
  InputImageConstructor iic(params_);
  // Feed only node 0's pieces: chunks needing node-1 slices stay pending.
  MockContext rfr_ctx(0, 2);
  RawFileReader rfr(params_);
  rfr.run_source(rfr_ctx);
  for (const auto& e : rfr_ctx.emitted) iic.process(kPortPieces, e.buffer, iic_ctx);
  EXPECT_THROW(iic.flush(iic_ctx), std::runtime_error);
}

TEST_F(FilterUnitTest, IicRejectsWrongBufferKind) {
  MockContext ctx;
  InputImageConstructor iic(params_);
  fs::BufferHeader h;
  h.kind = BufferKind::Control;
  EXPECT_THROW(iic.process(kPortPieces, fs::make_buffer(h), ctx), std::runtime_error);
}

TEST_F(FilterUnitTest, HmpEmitsOneSamplePerOriginPerFeature) {
  const auto chunks = run_input_stage();
  MockContext ctx;
  HaralickMatrixProducer hmp(params_);
  for (const auto& c : chunks) hmp.process(kPortChunks, c, ctx);
  hmp.flush(ctx);

  const auto buffers = ctx.of_kind(BufferKind::FeatureValues);
  std::map<int, std::int64_t> per_feature;
  for (const auto& b : buffers) {
    per_feature[b->header.feature] +=
        static_cast<std::int64_t>(b->as<FeatureSample>().size());
  }
  const std::int64_t origins = num_roi_origins(params_->meta.dims, params_->engine.roi_dims);
  EXPECT_EQ(per_feature.size(), 4u);  // paper_eval features
  for (const auto& [f, n] : per_feature) EXPECT_EQ(n, origins) << f;
  EXPECT_GT(ctx.work().work.glcm_pair_updates, 0);
  EXPECT_EQ(ctx.work().work.matrices_built, origins);
}

TEST_F(FilterUnitTest, HccEmitsPacketsPerChunkQuarter) {
  const auto chunks = run_input_stage();
  MockContext ctx;
  HaralickCoMatrixCalculator hcc(params_);
  hcc.process(kPortChunks, chunks.front(), ctx);
  const auto packets = ctx.of_kind(BufferKind::MatrixPacket);
  // packets_per_chunk defaults to 4.
  EXPECT_GE(packets.size(), 4u);
  std::uint32_t matrices = 0;
  for (const auto& p : packets) {
    MatrixPacketReader reader(*p);
    matrices += reader.count();
  }
  EXPECT_EQ(matrices, chunks.front()->header.region2.volume());
}

TEST_F(FilterUnitTest, HccThenHpcMatchesHmp) {
  const auto chunks = run_input_stage();

  MockContext hmp_ctx;
  HaralickMatrixProducer hmp(params_);
  for (const auto& c : chunks) hmp.process(kPortChunks, c, hmp_ctx);
  hmp.flush(hmp_ctx);

  MockContext hpc_ctx;
  HaralickCoMatrixCalculator hcc(params_);
  HaralickParameterCalculator hpc(params_);
  MockContext hcc_ctx;
  for (const auto& c : chunks) hcc.process(kPortChunks, c, hcc_ctx);
  hcc.flush(hcc_ctx);
  for (const auto& p : hcc_ctx.of_kind(BufferKind::MatrixPacket)) {
    hpc.process(kPortMatrices, p, hpc_ctx);
  }
  hpc.flush(hpc_ctx);

  // Collect (feature, origin) -> value from both paths and compare.
  const auto collect = [](const MockContext& ctx) {
    std::map<std::pair<int, std::array<std::int64_t, 4>>, float> out;
    for (const auto& e : ctx.emitted) {
      if (e.buffer->header.kind != BufferKind::FeatureValues) continue;
      for (const FeatureSample& s : e.buffer->as<FeatureSample>()) {
        out[{e.buffer->header.feature, {s.x, s.y, s.z, s.t}}] = s.value;
      }
    }
    return out;
  };
  const auto a = collect(hmp_ctx);
  const auto b = collect(hpc_ctx);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, value] : a) {
    ASSERT_TRUE(b.count(key));
    EXPECT_NEAR(b.at(key), value, 1e-5f * std::max(1.0f, std::abs(value)));
  }
}

TEST_F(FilterUnitTest, UsoWritesSampleFiles) {
  fs::BufferHeader h;
  h.kind = BufferKind::FeatureValues;
  h.feature = static_cast<int>(Feature::Contrast);
  auto buf = fs::make_buffer(h);
  auto span = buf->alloc_as<FeatureSample>(3);
  span[0] = FeatureSample::make({0, 0, 0, 0}, 1.f);
  span[1] = FeatureSample::make({1, 0, 0, 0}, 2.f);
  span[2] = FeatureSample::make({2, 0, 0, 0}, 3.f);

  const fsys::path out = root_ / "uso";
  MockContext ctx;
  UnstitchedOutput uso(params_, out);
  uso.process(kPortFeatures, buf, ctx);
  uso.process(kPortFeatures, buf, ctx);  // appends

  const fsys::path file = out / "contrast_c0.bin";
  ASSERT_TRUE(fsys::exists(file));
  EXPECT_EQ(fsys::file_size(file), 6 * sizeof(FeatureSample));
  EXPECT_EQ(ctx.work().disk_bytes_written,
            static_cast<std::int64_t>(6 * sizeof(FeatureSample)));
}

TEST_F(FilterUnitTest, UsoAccountsOnlyWithEmptyDir) {
  fs::BufferHeader h;
  h.kind = BufferKind::FeatureValues;
  h.feature = 0;
  auto buf = fs::make_buffer(h);
  buf->alloc_as<FeatureSample>(5);
  MockContext ctx;
  UnstitchedOutput uso(params_, {});
  uso.process(kPortFeatures, buf, ctx);
  EXPECT_GT(ctx.work().disk_bytes_written, 0);
}

TEST_F(FilterUnitTest, HicAssemblesAndEmitsCompleteMaps) {
  MockContext ctx;
  HaralickImageConstructor hic(params_);
  const Region4 origins = roi_origin_region(params_->meta.dims, params_->engine.roi_dims);

  fs::BufferHeader h;
  h.kind = BufferKind::FeatureValues;
  h.feature = static_cast<int>(Feature::AngularSecondMoment);
  auto buf = fs::make_buffer(h);
  auto span = buf->alloc_as<FeatureSample>(static_cast<std::size_t>(origins.volume()));
  std::int64_t i = 0;
  for (const Vec4& p : raster(origins)) {
    span[static_cast<std::size_t>(i)] = FeatureSample::make(p, static_cast<float>(i));
    ++i;
  }
  hic.process(kPortFeatures, buf, ctx);
  hic.flush(ctx);

  const auto maps = ctx.of_kind(BufferKind::FeatureMap);
  ASSERT_EQ(maps.size(), 1u);
  EXPECT_EQ(maps[0]->header.region, origins);
  const auto values = maps[0]->as<float>();
  ASSERT_EQ(static_cast<std::int64_t>(values.size()), origins.volume());
  EXPECT_FLOAT_EQ(values[0], 0.0f);
  EXPECT_FLOAT_EQ(values[values.size() - 1], static_cast<float>(origins.volume() - 1));
}

TEST_F(FilterUnitTest, HicRejectsOutOfRangeOrigin) {
  MockContext ctx;
  HaralickImageConstructor hic(params_);
  fs::BufferHeader h;
  h.kind = BufferKind::FeatureValues;
  h.feature = 0;
  auto buf = fs::make_buffer(h);
  buf->alloc_as<FeatureSample>(1)[0] = FeatureSample::make({999, 0, 0, 0}, 1.f);
  EXPECT_THROW(hic.process(kPortFeatures, buf, ctx), std::runtime_error);
}

TEST_F(FilterUnitTest, JiwWritesNormalizedSeries) {
  const Region4 origins{{0, 0, 0, 0}, {4, 4, 2, 2}};
  fs::BufferHeader h;
  h.kind = BufferKind::FeatureMap;
  h.feature = static_cast<int>(Feature::Contrast);
  h.region = origins;
  auto buf = fs::make_buffer(h);
  auto span = buf->alloc_as<float>(static_cast<std::size_t>(origins.volume()));
  for (std::size_t i = 0; i < span.size(); ++i) span[i] = static_cast<float>(i);

  const fsys::path out = root_ / "jiw";
  MockContext ctx;
  ImageSeriesWriter jiw(params_, out);
  jiw.process(kPortMaps, buf, ctx);

  std::size_t pgms = 0;
  for (const auto& e : fsys::directory_iterator(out)) {
    if (e.path().extension() == ".pgm") ++pgms;
  }
  EXPECT_EQ(pgms, 4u);  // z * t slices
  EXPECT_GT(ctx.work().disk_bytes_written, 0);
}

}  // namespace
}  // namespace h4d::filters
