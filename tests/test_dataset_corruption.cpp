// On-disk corruption detection: bytes flipped in a written slice file must
// be caught by the CRC-32 recorded in the node index — through read_region,
// through the degradation policies, and through the full pipeline. Also
// covers the legacy (checksum-free) index format and truncated slice files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "core/analysis.hpp"
#include "io/dataset.hpp"
#include "io/phantom.hpp"
#include "io/resilient_reader.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

// Flip one byte of a file in place.
void flip_byte(const fsys::path& file, std::streamoff offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(offset);
  char c = 0;
  f.get(c);
  f.seekp(offset);
  f.put(static_cast<char>(c ^ 0x5A));
  ASSERT_TRUE(f.good());
}

// Rewrite a node index dropping the checksum column (the pre-checksum
// on-disk format).
void strip_crc_column(const fsys::path& index_file) {
  std::ifstream in(index_file);
  ASSERT_TRUE(in.is_open()) << index_file;
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream is(line);
    std::int64_t t = 0, z = 0;
    std::string name;
    ASSERT_TRUE(static_cast<bool>(is >> t >> z >> name)) << line;
    out << t << ' ' << z << ' ' << name << '\n';
  }
  in.close();
  std::ofstream rewritten(index_file, std::ios::trunc);
  rewritten << out.str();
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_corrupt_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    vol_ = Volume4<std::uint16_t>({7, 6, 4, 3});
    std::mt19937_64 rng(21);
    std::uniform_int_distribution<int> u(0, 4000);
    for (auto& x : vol_.storage()) x = static_cast<std::uint16_t>(u(rng));
  }
  void TearDown() override { fsys::remove_all(root_); }

  // Slice (t=0, z=0) is slice number 0: always on node_0.
  fsys::path slice00_path() const { return root_ / "node_0" / "slice_t0_z0.raw"; }

  fsys::path root_;
  Volume4<std::uint16_t> vol_{Vec4{1, 1, 1, 1}};
};

TEST_F(CorruptionTest, FlippedByteOnDiskIsCaughtByDefaultReadRegion) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 2);
  flip_byte(slice00_path(), 5);
  try {
    ds.read_region(Region4::whole(vol_.dims()));
    FAIL() << "expected ChecksumError";
  } catch (const ChecksumError& e) {
    EXPECT_EQ(e.t, 0);
    EXPECT_EQ(e.z, 0);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST_F(CorruptionTest, UncorruptedDatasetRoundTripsThroughVerifiedPath) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 2);
  const auto back = ds.read_region(Region4::whole(vol_.dims()));
  EXPECT_EQ(back.storage(), vol_.storage());
}

TEST_F(CorruptionTest, SkipAndFillIsolatesTheDamagedSlice) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 2);
  flip_byte(slice00_path(), 5);

  ResilienceConfig rc;
  rc.policy = DegradePolicy::SkipAndFill;
  rc.retry.max_attempts = 2;
  rc.retry.really_sleep = false;
  rc.fill_value = 777;
  FaultReport report;
  const auto got = ds.read_region(Region4::whole(vol_.dims()), rc, nullptr, &report);

  ASSERT_EQ(got.dims(), vol_.dims());
  for (std::int64_t t = 0; t < vol_.dims()[3]; ++t)
    for (std::int64_t z = 0; z < vol_.dims()[2]; ++z)
      for (std::int64_t y = 0; y < vol_.dims()[1]; ++y)
        for (std::int64_t x = 0; x < vol_.dims()[0]; ++x) {
          if (t == 0 && z == 0) {
            ASSERT_EQ(got.at(x, y, z, t), 777);
          } else {
            ASSERT_EQ(got.at(x, y, z, t), vol_.at(x, y, z, t))
                << "undamaged slice altered at t=" << t << " z=" << z;
          }
        }

  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].t, 0);
  EXPECT_EQ(report.skipped[0].z, 0);
  EXPECT_EQ(report.slices_skipped, 1);
  EXPECT_GE(report.checksum_failures, 1);
}

TEST_F(CorruptionTest, VerificationCanBeDisabled) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  flip_byte(slice00_path(), 5);
  ResilienceConfig rc;  // FailFast, but...
  rc.verify_checksums = false;
  // ...without verification the flipped byte sails through undetected.
  const auto got = ds.read_region(Region4::whole(vol_.dims()), rc);
  EXPECT_NE(got.storage(), vol_.storage());
}

TEST_F(CorruptionTest, LegacyIndexWithoutChecksumsStillReads) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 2);
  strip_crc_column(root_ / "node_0" / "index.txt");
  strip_crc_column(root_ / "node_1" / "index.txt");

  const DiskDataset reopened = DiskDataset::open(root_);
  for (int n = 0; n < 2; ++n) {
    const StorageNodeReader reader = reopened.node_reader(n);
    for (const SliceRef& s : reader.slices()) {
      EXPECT_FALSE(s.has_crc);
    }
  }
  // Clean data still round-trips (verification is simply unavailable)...
  EXPECT_EQ(reopened.read_region(Region4::whole(vol_.dims())).storage(), vol_.storage());
  // ...and corruption is — by design — no longer detectable.
  flip_byte(slice00_path(), 5);
  EXPECT_NO_THROW(reopened.read_region(Region4::whole(vol_.dims())));
}

TEST_F(CorruptionTest, TruncatedSliceReportsExpectedVersusActual) {
  const DiskDataset ds = DiskDataset::create(root_, vol_, 1);
  const std::int64_t full = static_cast<std::int64_t>(fsys::file_size(slice00_path()));
  fsys::resize_file(slice00_path(), static_cast<std::uintmax_t>(full / 2));

  StorageNodeReader reader = ds.node_reader(0);
  const SliceRef* s = reader.find_slice(0, 0);
  ASSERT_NE(s, nullptr);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(full));
  try {
    reader.read_slice_bytes(*s, bytes.data());
    FAIL() << "expected SliceReadError";
  } catch (const SliceReadError& e) {
    EXPECT_EQ(e.t, 0);
    EXPECT_EQ(e.z, 0);
    EXPECT_EQ(e.expected_bytes, full);
    EXPECT_EQ(e.actual_bytes, full / 2);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(full)), std::string::npos) << msg;
    EXPECT_NE(msg.find("t=0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("z=0"), std::string::npos) << msg;
  }

  // The row-wise path reports the same class of error.
  std::vector<std::uint16_t> row(static_cast<std::size_t>(vol_.dims()[0]));
  EXPECT_THROW(
      reader.read_slice_region(*s, 0, vol_.dims()[1] - 1, vol_.dims()[0], 1, row.data()),
      SliceReadError);
}

struct CorruptionE2E : ::testing::Test {
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_corrupt_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    PhantomConfig pcfg;
    pcfg.dims = {16, 14, 5, 4};
    pcfg.num_tumors = 1;
    pcfg.seed = 11;
    phantom_ = generate_phantom(pcfg).volume;
    DiskDataset::create(root_, phantom_, 2);
    flip_byte(root_ / "node_0" / "slice_t0_z0.raw", 9);
  }
  void TearDown() override { fsys::remove_all(root_); }

  core::PipelineConfig config() const {
    core::PipelineConfig cfg;
    cfg.dataset_root = root_;
    cfg.engine.roi_dims = {5, 5, 3, 3};
    cfg.engine.num_levels = 16;
    cfg.engine.features = haralick::FeatureSet::paper_eval();
    cfg.texture_chunk = {10, 10, 4, 3};
    cfg.rfr_copies = 2;
    cfg.variant = core::Variant::HMP;
    cfg.hmp_copies = 2;
    cfg.resilience.retry.really_sleep = false;
    return cfg;
  }

  fsys::path root_;
  Volume4<std::uint16_t> phantom_{Vec4{1, 1, 1, 1}};
};

TEST_F(CorruptionE2E, PipelineFailsFastOnCorruptionByDefault) {
  EXPECT_THROW(core::analyze_threaded(config()), std::runtime_error);
}

TEST_F(CorruptionE2E, PipelineCompletesUnderSkipAndFill) {
  core::PipelineConfig cfg = config();
  cfg.resilience.policy = io::DegradePolicy::SkipAndFill;
  cfg.resilience.retry.max_attempts = 2;

  const core::AnalysisResult r = core::analyze_threaded(cfg);
  ASSERT_EQ(r.faults.skipped.size(), 1u);
  EXPECT_EQ(r.faults.skipped[0].t, 0);
  EXPECT_EQ(r.faults.skipped[0].z, 0);
  EXPECT_EQ(r.faults.slices_skipped, 1);
  EXPECT_GE(r.faults.checksum_failures, 1);
  EXPECT_FALSE(r.faults.clean());
  // All feature maps were produced despite the damaged slice.
  EXPECT_EQ(r.maps.size(), 4u);  // paper_eval feature count
  for (const auto& [feature, map] : r.maps) {
    EXPECT_GT(map.size(), 0) << haralick::feature_name(feature);
  }
}

}  // namespace
}  // namespace h4d::io
