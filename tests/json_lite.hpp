// Minimal strict JSON parser for test assertions (trace/metrics round-trip
// validation). Parses a document into a Value tree; throws std::runtime_error
// with position info on any syntax violation, so EXPECT_NO_THROW(parse(...))
// doubles as a well-formedness check for emitted files.
#pragma once

#include <cmath>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace h4d::testing::json {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is(Type t) const { return type == t; }

  const Value& at(const std::string& key) const {
    if (type != Type::Object) throw std::runtime_error("json: not an object");
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("json: missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const {
    return type == Type::Object && object.count(key) != 0;
  }
  double num() const {
    if (type != Type::Number) throw std::runtime_error("json: not a number");
    return number;
  }
  const std::string& str() const {
    if (type != Type::String) throw std::runtime_error("json: not a string");
    return string;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.type = Value::Type::String;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.type = Value::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.type = Value::Type::Bool;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return number();
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += '?';  // code point fidelity is not needed for the tests
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    if (!std::isfinite(v.number)) fail("non-finite number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace h4d::testing::json
