// Small synthetic filters shared by the executor tests.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fs/filter.hpp"

namespace h4d::fs::testing {

/// Emits `count` buffers whose payload is one int64 (0..count-1), charging
/// `work_per_item` synthetic GLCM updates each.
class NumberSource final : public Filter {
 public:
  NumberSource(int count, std::int64_t work_per_item = 0)
      : count_(count), work_(work_per_item) {}

  std::string_view name() const override { return "source"; }

  void run_source(FilterContext& ctx) override {
    for (int i = 0; i < count_; ++i) {
      ctx.meter().work.glcm_pair_updates += work_;
      BufferHeader h;
      h.kind = BufferKind::Control;
      h.seq = i;
      auto buf = make_buffer(h);
      buf->alloc_as<std::int64_t>(1)[0] = i;
      ctx.emit(0, std::move(buf));
    }
  }

 private:
  int count_;
  std::int64_t work_;
};

/// Multiplies the payload by `factor`, charging synthetic work per buffer.
class ScaleFilter final : public Filter {
 public:
  explicit ScaleFilter(std::int64_t factor, std::int64_t work_per_item = 0)
      : factor_(factor), work_(work_per_item) {}

  std::string_view name() const override { return "scale"; }

  void process(int, const BufferPtr& buffer, FilterContext& ctx) override {
    ctx.meter().work.glcm_pair_updates += work_;
    BufferHeader h = buffer->header;
    auto out = make_buffer(h);
    out->alloc_as<std::int64_t>(1)[0] = buffer->as<std::int64_t>()[0] * factor_;
    ctx.emit(0, std::move(out));
  }

 private:
  std::int64_t factor_;
  std::int64_t work_;
};

/// Shared state collecting everything that reaches the sink copies.
struct SinkState {
  std::mutex mu;
  std::vector<std::int64_t> values;
  std::atomic<int> flushes{0};

  std::int64_t sum() {
    std::lock_guard lk(mu);
    std::int64_t s = 0;
    for (auto v : values) s += v;
    return s;
  }
  std::size_t count() {
    std::lock_guard lk(mu);
    return values.size();
  }
};

class CollectSink final : public Filter {
 public:
  CollectSink(std::shared_ptr<SinkState> state, std::int64_t work_per_item = 0)
      : state_(std::move(state)), work_(work_per_item) {}

  std::string_view name() const override { return "sink"; }

  void process(int, const BufferPtr& buffer, FilterContext& ctx) override {
    ctx.meter().work.glcm_pair_updates += work_;
    std::lock_guard lk(state_->mu);
    state_->values.push_back(buffer->as<std::int64_t>()[0]);
  }

  void flush(FilterContext&) override { state_->flushes++; }

 private:
  std::shared_ptr<SinkState> state_;
  std::int64_t work_;
};

/// Forwards its input unchanged after sleeping `per_buffer` — a deliberately
/// throttled stage for backpressure/bottleneck tests.
class SlowFilter final : public Filter {
 public:
  explicit SlowFilter(std::chrono::milliseconds per_buffer) : per_buffer_(per_buffer) {}

  std::string_view name() const override { return "slow"; }

  void process(int, const BufferPtr& buffer, FilterContext& ctx) override {
    std::this_thread::sleep_for(per_buffer_);
    ctx.emit(0, std::make_shared<DataBuffer>(*buffer));
  }

 private:
  std::chrono::milliseconds per_buffer_;
};

/// Throws on the buffer whose payload equals `poison`.
class PoisonFilter final : public Filter {
 public:
  explicit PoisonFilter(std::int64_t poison) : poison_(poison) {}
  std::string_view name() const override { return "poison"; }
  void process(int, const BufferPtr& buffer, FilterContext& ctx) override {
    if (buffer->as<std::int64_t>()[0] == poison_) {
      throw std::runtime_error("poisoned buffer");
    }
    ctx.emit(0, std::make_shared<DataBuffer>(*buffer));
  }

 private:
  std::int64_t poison_;
};

/// Crash bookkeeping shared across filter rebuilds: the supervisor builds a
/// fresh instance from the factory on every restart, so counts that must
/// survive a restart have to live outside the filter object.
struct FlakyState {
  std::mutex mu;
  std::map<std::int64_t, int> crashes;  ///< payload value -> crashes so far
};

/// Throws on buffers whose payload is in `bad` until each has crashed
/// `crashes_per_item` times, then forwards them normally — a transient fault
/// that a restart_copy supervisor recovers from without losing data.
class FlakyFilter final : public Filter {
 public:
  FlakyFilter(std::shared_ptr<FlakyState> state, std::vector<std::int64_t> bad,
              int crashes_per_item)
      : state_(std::move(state)), bad_(std::move(bad)), crashes_(crashes_per_item) {}

  std::string_view name() const override { return "flaky"; }

  void process(int, const BufferPtr& buffer, FilterContext& ctx) override {
    const std::int64_t v = buffer->as<std::int64_t>()[0];
    if (std::find(bad_.begin(), bad_.end(), v) != bad_.end()) {
      std::lock_guard lk(state_->mu);
      if (state_->crashes[v] < crashes_) {
        ++state_->crashes[v];
        throw std::runtime_error("flaky crash on " + std::to_string(v));
      }
    }
    ctx.emit(0, std::make_shared<DataBuffer>(*buffer));
  }

 private:
  std::shared_ptr<FlakyState> state_;
  std::vector<std::int64_t> bad_;
  int crashes_;
};

/// Hangs (sleeps `hang`, then swallows the buffer) on the payload equal to
/// `victim`; forwards everything else immediately. Drives the watchdog tests:
/// the sleep models a wedged filter call the executor cannot interrupt.
class HangFilter final : public Filter {
 public:
  HangFilter(std::int64_t victim, std::chrono::milliseconds hang)
      : victim_(victim), hang_(hang) {}

  std::string_view name() const override { return "hang"; }

  void process(int, const BufferPtr& buffer, FilterContext& ctx) override {
    if (buffer->as<std::int64_t>()[0] == victim_) {
      std::this_thread::sleep_for(hang_);
      return;  // the hung call never produced output
    }
    ctx.emit(0, std::make_shared<DataBuffer>(*buffer));
  }

 private:
  std::int64_t victim_;
  std::chrono::milliseconds hang_;
};

}  // namespace h4d::fs::testing
