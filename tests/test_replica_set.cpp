// Replica placement properties, node-health state machine, and degraded-mode
// reads: the guarantees DESIGN.md sec. 12 promises for r >= 2 datasets.
#include "io/replica_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <thread>

#include "io/dataset.hpp"

namespace h4d::io {
namespace {

namespace fsys = std::filesystem;

DatasetMeta make_meta(Vec4 dims, int nodes, int replicas) {
  DatasetMeta m;
  m.dims = dims;
  m.storage_nodes = nodes;
  m.replicas = replicas;
  m.value_max = 4000.0;
  return m;
}

// --- Placement properties (pure DatasetMeta arithmetic) ---------------------

TEST(ReplicaPlacement, ReplicasOfASliceLandOnDistinctNodes) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int nodes = 1 + static_cast<int>(rng() % 8);
    const int r = 1 + static_cast<int>(rng() % 4);
    const Vec4 dims{4, 4, 1 + static_cast<std::int64_t>(rng() % 7),
                    1 + static_cast<std::int64_t>(rng() % 5)};
    const DatasetMeta m = make_meta(dims, nodes, r);
    ASSERT_EQ(m.replica_count(), std::min(r, nodes));
    for (std::int64_t t = 0; t < dims[3]; ++t) {
      for (std::int64_t z = 0; z < dims[2]; ++z) {
        std::set<int> placed;
        for (int rank = 0; rank < m.replica_count(); ++rank) {
          const int node = m.replica_node(z, t, rank);
          ASSERT_GE(node, 0);
          ASSERT_LT(node, nodes);
          placed.insert(node);
          // replica_rank is the inverse of replica_node.
          ASSERT_EQ(m.replica_rank(z, t, node), rank)
              << "nodes=" << nodes << " r=" << r << " z=" << z << " t=" << t;
        }
        ASSERT_EQ(placed.size(), static_cast<std::size_t>(m.replica_count()));
        // Nodes holding no copy report rank -1.
        for (int node = 0; node < nodes; ++node) {
          if (!placed.count(node)) {
            ASSERT_EQ(m.replica_rank(z, t, node), -1);
          }
        }
      }
    }
  }
}

TEST(ReplicaPlacement, RotatedRoundRobinBalancesCopiesAcrossNodes) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int nodes = 2 + static_cast<int>(rng() % 6);
    const int r = 1 + static_cast<int>(rng() % nodes);
    const Vec4 dims{2, 2, 3 + static_cast<std::int64_t>(rng() % 6),
                    2 + static_cast<std::int64_t>(rng() % 4)};
    const DatasetMeta m = make_meta(dims, nodes, r);
    std::vector<std::int64_t> copies(static_cast<std::size_t>(nodes), 0);
    for (std::int64_t t = 0; t < dims[3]; ++t) {
      for (std::int64_t z = 0; z < dims[2]; ++z) {
        for (int rank = 0; rank < m.replica_count(); ++rank) {
          ++copies[static_cast<std::size_t>(m.replica_node(z, t, rank))];
        }
      }
    }
    // Rotated round-robin keeps every node within one rotation of the mean:
    // max - min <= r (tight: each rank's round-robin differs by at most 1).
    const auto [lo, hi] = std::minmax_element(copies.begin(), copies.end());
    EXPECT_LE(*hi - *lo, m.replica_count())
        << "nodes=" << nodes << " r=" << r << " dims=" << dims.str();
    std::int64_t total = 0;
    for (const std::int64_t c : copies) total += c;
    EXPECT_EQ(total, m.num_slices() * m.replica_count());
  }
}

TEST(ReplicaPlacement, RankZeroMatchesUnreplicatedRoundRobin) {
  const DatasetMeta r1 = make_meta({4, 4, 5, 3}, 4, 1);
  const DatasetMeta r3 = make_meta({4, 4, 5, 3}, 4, 3);
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t z = 0; z < 5; ++z) {
      EXPECT_EQ(r3.node_of_slice(z, t), r1.node_of_slice(z, t));
    }
  }
}

// --- ReplicaSet fixtures ----------------------------------------------------

class ReplicaSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("h4d_replica_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fsys::remove_all(root_);
    fsys::create_directories(root_);
  }
  void TearDown() override { fsys::remove_all(root_); }

  static Volume4<std::uint16_t> sample_volume(Vec4 dims, unsigned seed = 3) {
    Volume4<std::uint16_t> v(dims);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> u(0, 4000);
    for (auto& x : v.storage()) x = static_cast<std::uint16_t>(u(rng));
    return v;
  }

  void make_node_dirs(int nodes) {
    for (int n = 0; n < nodes; ++n) fsys::create_directories(root_ / node_dir_name(n));
  }

  fsys::path root_;
};

TEST_F(ReplicaSetTest, StaticDeadNodesNeverOwnReads) {
  const DatasetMeta m = make_meta({4, 4, 4, 3}, 3, 2);
  make_node_dirs(3);
  ReplicaSet rs(root_, m, {1});
  EXPECT_TRUE(rs.node_dead(1));
  EXPECT_FALSE(rs.node_dead(0));
  EXPECT_EQ(rs.first_alive_node(), 0);
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t z = 0; z < 4; ++z) {
      const int owner = rs.read_owner(z, t);
      ASSERT_NE(owner, 1);
      // The owner must actually hold a copy of the slice.
      ASSERT_GE(m.replica_rank(z, t, owner), 0);
      // A slice whose primary is alive keeps its primary.
      if (m.node_of_slice(z, t) != 1) {
        EXPECT_EQ(owner, m.node_of_slice(z, t));
      }
    }
  }
}

TEST_F(ReplicaSetTest, OutOfRangeDeadNodeThrows) {
  const DatasetMeta m = make_meta({4, 4, 2, 1}, 2, 1);
  make_node_dirs(2);
  EXPECT_THROW(ReplicaSet(root_, m, {2}), std::exception);
  EXPECT_THROW(ReplicaSet(root_, m, {-1}), std::exception);
}

TEST_F(ReplicaSetTest, MissingNodeDirsAreDetected) {
  const DatasetMeta m = make_meta({4, 4, 3, 2}, 3, 2);
  make_node_dirs(3);
  fsys::remove_all(root_ / node_dir_name(2));
  EXPECT_EQ(ReplicaSet::missing_node_dirs(root_, m), std::vector<int>{2});
}

TEST_F(ReplicaSetTest, ReplicaOrderPutsPreferredNodeFirst) {
  const DatasetMeta m = make_meta({4, 4, 6, 1}, 3, 3);
  make_node_dirs(3);
  ReplicaSet rs(root_, m, {});
  // Slice 0 has replicas on 0, 1, 2 (ranks 0, 1, 2).
  EXPECT_EQ(rs.replica_order(0, 0, 1), (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1, 2}));
  // A preferred node that holds no copy is ignored (r=2 subset).
  const DatasetMeta m2 = make_meta({4, 4, 6, 1}, 3, 2);
  ReplicaSet rs2(root_, m2, {});
  EXPECT_EQ(rs2.replica_order(0, 0, 2), (std::vector<int>{0, 1}));
}

TEST_F(ReplicaSetTest, EvictionAfterConsecutiveFailuresAndProbation) {
  const DatasetMeta m = make_meta({4, 4, 6, 1}, 3, 2);
  make_node_dirs(3);
  ReplicaHealthConfig health;
  health.evict_after = 3;
  health.probation_ms = 1e9;  // effectively forever for this test
  ReplicaSet rs(root_, m, {}, health);

  EXPECT_FALSE(rs.note_failure(0));
  EXPECT_FALSE(rs.note_failure(0));
  EXPECT_FALSE(rs.node_evicted(0));
  EXPECT_TRUE(rs.note_failure(0));  // third strike evicts
  EXPECT_TRUE(rs.node_evicted(0));
  EXPECT_EQ(rs.evictions(), 1);
  // Evicted node drops out of replica orders (slice 0: replicas 0 and 1).
  EXPECT_EQ(rs.replica_order(0, 0, 0), std::vector<int>{1});
  // ... but static ownership is unchanged: evictions do not move read_owner.
  EXPECT_EQ(rs.read_owner(0, 0), 0);
  // A success (e.g. a probe read) re-admits and resets the streak.
  rs.note_success(0);
  EXPECT_FALSE(rs.node_evicted(0));
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
  EXPECT_FALSE(rs.note_failure(0));  // streak restarted, not at 2/3
}

TEST_F(ReplicaSetTest, ExpiredProbationOffersTheNodeForAProbe) {
  const DatasetMeta m = make_meta({4, 4, 6, 1}, 2, 2);
  make_node_dirs(2);
  ReplicaHealthConfig health;
  health.evict_after = 1;
  health.probation_ms = 0.0;  // probation expires immediately
  ReplicaSet rs(root_, m, {}, health);
  EXPECT_TRUE(rs.note_failure(1));
  // Probation of 0 ms has already elapsed: the node is offered again.
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
}

TEST_F(ReplicaSetTest, AllEvictedCandidatesForcesAProbe) {
  const DatasetMeta m = make_meta({4, 4, 6, 1}, 2, 2);
  make_node_dirs(2);
  ReplicaHealthConfig health;
  health.evict_after = 1;
  health.probation_ms = 1e9;
  ReplicaSet rs(root_, m, {}, health);
  rs.note_failure(0);
  rs.note_failure(1);
  EXPECT_TRUE(rs.node_evicted(0));
  EXPECT_TRUE(rs.node_evicted(1));
  // Rather than returning no candidates, every replica is offered (forced
  // probe) so the slice still gets an attempt.
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
  // A failed forced probe restarts that node's probation clock but the
  // forced-probe guarantee still offers every replica on the next read, and
  // no new eviction event is recorded for an already-evicted node.
  EXPECT_FALSE(rs.note_failure(0));
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
  EXPECT_EQ(rs.evictions(), 2);
  EXPECT_EQ(rs.eviction_events().size(), 2u);
}

TEST_F(ReplicaSetTest, FailedProbeRestartsTheProbationClock) {
  const DatasetMeta m = make_meta({4, 4, 6, 1}, 2, 2);
  make_node_dirs(2);
  ReplicaHealthConfig health;
  health.evict_after = 1;
  health.probation_ms = 300.0;
  ReplicaSet rs(root_, m, {}, health);
  EXPECT_TRUE(rs.note_failure(1));
  EXPECT_EQ(rs.replica_order(0, 0, 0), std::vector<int>{0});  // in probation
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // Probation expired: the node is offered for a probe read.
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
  // The probe fails: the probation clock restarts from now — the node drops
  // back out of the order without a second eviction event.
  EXPECT_FALSE(rs.note_failure(1));
  EXPECT_TRUE(rs.node_evicted(1));
  EXPECT_EQ(rs.evictions(), 1);
  EXPECT_EQ(rs.replica_order(0, 0, 0), std::vector<int>{0});
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
  rs.note_success(1);  // a probe that succeeds re-admits immediately
  EXPECT_FALSE(rs.node_evicted(1));
  EXPECT_EQ(rs.replica_order(0, 0, 0), (std::vector<int>{0, 1}));
}

TEST_F(ReplicaSetTest, SlowNodesEvictWithTypedReason) {
  const DatasetMeta m = make_meta({4, 4, 6, 1}, 3, 2);
  make_node_dirs(3);
  ReplicaHealthConfig health;
  health.evict_after = 3;
  health.probation_ms = 1e9;
  ReplicaSet rs(root_, m, {}, health);
  // Breach verdicts are pre-aggregated by the caller (the latency tracker's
  // consecutive-breach streak), so one note_slow call evicts.
  EXPECT_TRUE(rs.note_slow(2));
  EXPECT_TRUE(rs.node_evicted(2));
  EXPECT_EQ(rs.evictions(), 1);
  EXPECT_EQ(rs.evictions_slow(), 1);
  EXPECT_FALSE(rs.note_slow(2));   // already evicted: probation restart only
  EXPECT_FALSE(rs.note_slow(-1));  // out of range is ignored
  EXPECT_FALSE(rs.note_slow(3));
  EXPECT_EQ(rs.evictions_slow(), 1);
  // Failure evictions and slow evictions share the event log, in order,
  // each with its typed reason.
  rs.note_failure(0);
  rs.note_failure(0);
  EXPECT_TRUE(rs.note_failure(0));
  const std::vector<EvictionEvent> events = rs.eviction_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].node, 2);
  EXPECT_EQ(events[0].reason, EvictReason::Slow);
  EXPECT_EQ(events[1].node, 0);
  EXPECT_EQ(events[1].reason, EvictReason::Failure);
  EXPECT_EQ(evict_reason_name(EvictReason::Slow), "slow");
  EXPECT_EQ(evict_reason_name(EvictReason::Failure), "failure");
  EXPECT_EQ(rs.evictions(), 2);
  EXPECT_EQ(rs.evictions_slow(), 1);
  // A slow-evicted node re-admits through the same probe path as a failed one.
  rs.note_success(2);
  EXPECT_FALSE(rs.node_evicted(2));
}

// --- Degraded-mode reads through DiskDataset --------------------------------

TEST_F(ReplicaSetTest, ReplicatedDatasetSurvivesAnySingleNodeLoss) {
  const auto vol = sample_volume({6, 5, 4, 3});
  DiskDataset::create(root_, vol, 3, 2);
  for (int lost = 0; lost < 3; ++lost) {
    const fsys::path backup = root_.string() + "_backup";
    fsys::remove_all(backup);
    fsys::copy(root_, backup, fsys::copy_options::recursive);
    fsys::remove_all(root_ / node_dir_name(lost));

    const DiskDataset ds = DiskDataset::open(root_);
    const auto back = ds.read_all();
    EXPECT_EQ(back.storage(), vol.storage()) << "lost node " << lost;

    fsys::remove_all(root_);
    fsys::rename(backup, root_);
  }
}

TEST_F(ReplicaSetTest, UnreplicatedDatasetStillFailsOnNodeLoss) {
  const auto vol = sample_volume({6, 5, 4, 3});
  DiskDataset::create(root_, vol, 3, 1);
  fsys::remove_all(root_ / node_dir_name(1));
  const DiskDataset ds = DiskDataset::open(root_);
  EXPECT_THROW(ds.read_all(), std::exception);
}

// --- Meta format versioning -------------------------------------------------

TEST_F(ReplicaSetTest, V1MetaWithoutVersionKeyLoadsAsUnreplicated) {
  std::ofstream f(root_ / "dataset.meta");
  f << "dims 8 8 2 1\n"
    << "dtype u16\n"
    << "range 0 100\n"
    << "storage_nodes 2\n";
  f.close();
  const DatasetMeta m = DatasetMeta::load(root_);
  EXPECT_EQ(m.replicas, 1);
  EXPECT_EQ(m.replica_count(), 1);
  EXPECT_EQ(m.storage_nodes, 2);
}

TEST_F(ReplicaSetTest, FutureMetaVersionIsRejected) {
  std::ofstream f(root_ / "dataset.meta");
  f << "version 3\n"
    << "dims 8 8 2 1\n"
    << "dtype u16\n"
    << "range 0 100\n"
    << "storage_nodes 2\n"
    << "replicas 1\n";
  f.close();
  EXPECT_THROW(DatasetMeta::load(root_), std::exception);
}

TEST_F(ReplicaSetTest, ReplicatedCreateRoundTripsMetaAndIndexes) {
  const auto vol = sample_volume({4, 4, 3, 2});
  DiskDataset::create(root_, vol, 3, 2);
  const DiskDataset ds = DiskDataset::open(root_);
  EXPECT_EQ(ds.meta().replicas, 2);
  // Every node's index lists exactly the copies placed on it, with checksums.
  for (int n = 0; n < 3; ++n) {
    const StorageNodeReader reader = ds.node_reader(n);
    std::size_t expected = 0;
    for (std::int64_t t = 0; t < 2; ++t) {
      for (std::int64_t z = 0; z < 3; ++z) {
        if (ds.meta().replica_rank(z, t, n) >= 0) ++expected;
      }
    }
    EXPECT_EQ(reader.slices().size(), expected) << "node " << n;
    for (const SliceRef& s : reader.slices()) {
      EXPECT_TRUE(s.has_crc);
      EXPECT_GE(ds.meta().replica_rank(s.z, s.t, n), 0);
    }
  }
}

}  // namespace
}  // namespace h4d::io
