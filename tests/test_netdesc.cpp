#include "fs/netdesc.hpp"

#include <gtest/gtest.h>

#include "fs/executor_threads.hpp"
#include "toy_filters.hpp"

namespace h4d::fs {
namespace {

using testing::CollectSink;
using testing::NumberSource;
using testing::ScaleFilter;
using testing::SinkState;

FilterRegistry toy_registry(std::shared_ptr<SinkState> state) {
  FilterRegistry reg;
  reg.register_type("source", [] { return std::make_unique<NumberSource>(30); });
  reg.register_type("scale", [] { return std::make_unique<ScaleFilter>(2); });
  reg.register_type("sink", [state] { return std::make_unique<CollectSink>(state); });
  return reg;
}

TEST(FilterRegistry, RegisterAndLookup) {
  FilterRegistry reg;
  reg.register_type("a", [] { return std::unique_ptr<Filter>(); });
  EXPECT_TRUE(reg.has("a"));
  EXPECT_FALSE(reg.has("b"));
  EXPECT_NO_THROW(reg.get("a"));
  EXPECT_THROW(reg.get("b"), std::runtime_error);
  EXPECT_THROW(reg.register_type("a", [] { return std::unique_ptr<Filter>(); }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_type("c", nullptr), std::invalid_argument);
  EXPECT_EQ(reg.types().size(), 1u);
}

TEST(NetDesc, BuildsAndRunsLinearPipeline) {
  auto state = std::make_shared<SinkState>();
  const FilterGraph g = graph_from_xml(R"(
    <filtergraph>
      <filter name="src" type="source"/>
      <filter name="mid" type="scale" copies="3"/>
      <filter name="out" type="sink"/>
      <stream from="src" to="mid" policy="round-robin"/>
      <stream from="mid" to="out"/>
    </filtergraph>)",
                                       toy_registry(state));
  EXPECT_EQ(g.filters().size(), 3u);
  EXPECT_EQ(g.filters()[1].copies, 3);
  run_threaded(g);
  EXPECT_EQ(state->count(), 30u);
  EXPECT_EQ(state->sum(), 2 * 30 * 29 / 2);
}

TEST(NetDesc, PlacementParsed) {
  auto state = std::make_shared<SinkState>();
  const FilterGraph g = graph_from_xml(R"(
    <filtergraph>
      <filter name="src" type="source" copies="2" nodes="3 5"/>
      <filter name="out" type="sink"/>
      <stream from="src" to="out"/>
    </filtergraph>)",
                                       toy_registry(state));
  EXPECT_EQ(g.filters()[0].placement, (std::vector<int>{3, 5}));
}

TEST(NetDesc, ExplicitAuxPolicy) {
  auto state = std::make_shared<SinkState>();
  const FilterGraph g = graph_from_xml(R"(
    <filtergraph>
      <filter name="src" type="source"/>
      <filter name="out" type="sink" copies="2"/>
      <stream from="src" to="out" policy="explicit-aux"/>
    </filtergraph>)",
                                       toy_registry(state));
  const auto& edge = g.edges()[0];
  EXPECT_EQ(edge.policy, Policy::Explicit);
  BufferHeader h;
  h.aux = 5;
  EXPECT_EQ(edge.route(h, 2), 1);
  h.aux = 4;
  EXPECT_EQ(edge.route(h, 2), 0);
}

TEST(NetDesc, ExplicitFromCopyPolicy) {
  auto state = std::make_shared<SinkState>();
  const FilterGraph g = graph_from_xml(R"(
    <filtergraph>
      <filter name="src" type="source" copies="4"/>
      <filter name="out" type="sink" copies="4"/>
      <stream from="src" to="out" policy="explicit-from-copy"/>
    </filtergraph>)",
                                       toy_registry(state));
  BufferHeader h;
  h.from_copy = 3;
  EXPECT_EQ(g.edges()[0].route(h, 4), 3);
}

TEST(NetDesc, SchemaErrors) {
  auto state = std::make_shared<SinkState>();
  const FilterRegistry reg = toy_registry(state);
  // Unknown type.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph><filter name="a" type="nope"/></filtergraph>)",
                              reg),
               std::runtime_error);
  // Duplicate filter name.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph>
      <filter name="a" type="source"/><filter name="a" type="sink"/>
    </filtergraph>)",
                              reg),
               std::runtime_error);
  // Dangling stream endpoint.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph>
      <filter name="a" type="source"/>
      <stream from="a" to="ghost"/>
    </filtergraph>)",
                              reg),
               std::runtime_error);
  // Bad policy.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph>
      <filter name="a" type="source"/><filter name="b" type="sink"/>
      <stream from="a" to="b" policy="psychic"/>
    </filtergraph>)",
                              reg),
               std::runtime_error);
  // copies/nodes mismatch.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph>
      <filter name="a" type="source" copies="2" nodes="1"/>
    </filtergraph>)",
                              reg),
               std::runtime_error);
  // Bad integer.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph>
      <filter name="a" type="source" copies="two"/>
    </filtergraph>)",
                              reg),
               std::runtime_error);
  // Wrong root element.
  EXPECT_THROW(graph_from_xml(R"(<network/>)", reg), std::runtime_error);
  // Unexpected child element.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph><widget/></filtergraph>)", reg),
               std::runtime_error);
  // Cycle.
  EXPECT_THROW(graph_from_xml(R"(<filtergraph>
      <filter name="a" type="scale"/><filter name="b" type="scale"/>
      <stream from="a" to="b"/><stream from="b" to="a"/>
    </filtergraph>)",
                              reg),
               std::runtime_error);
}

}  // namespace
}  // namespace h4d::fs
