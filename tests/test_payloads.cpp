#include "filters/payloads.hpp"

#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"

namespace h4d::filters {
namespace {

using haralick::Glcm;
using haralick::Representation;

Glcm sample_glcm(int ng, unsigned seed) {
  Volume4<Level> v({7, 7, 3, 3});
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  Glcm g(ng);
  g.accumulate(v.view(), Region4::whole(v.dims()),
               haralick::unique_directions(haralick::ActiveDims::all4()));
  return g;
}

TEST(FeatureSample, PacksOriginAndValue) {
  const FeatureSample s = FeatureSample::make({1, 2, 3, 4}, 7.5f);
  EXPECT_EQ(s.origin(), Vec4(1, 2, 3, 4));
  EXPECT_FLOAT_EQ(s.value, 7.5f);
}

class MatrixPacketRoundTrip : public ::testing::TestWithParam<Representation> {};

TEST_P(MatrixPacketRoundTrip, PreservesMatricesAndOrigins) {
  const Representation repr = GetParam();
  MatrixPacketWriter writer(repr, 16);
  std::vector<Glcm> matrices;
  std::vector<Vec4> origins;
  for (unsigned seed = 1; seed <= 5; ++seed) {
    matrices.push_back(sample_glcm(16, seed));
    origins.push_back({seed, seed + 1, seed + 2, seed + 3});
    writer.add(origins.back(), matrices.back());
  }
  EXPECT_EQ(writer.count(), 5u);
  const fs::BufferPtr buffer = writer.take(/*chunk_id=*/9, /*seq=*/2);
  EXPECT_TRUE(writer.empty());
  EXPECT_EQ(buffer->header.kind, fs::BufferKind::MatrixPacket);
  EXPECT_EQ(buffer->header.chunk_id, 9);

  MatrixPacketReader reader(*buffer);
  EXPECT_EQ(reader.representation(), repr);
  EXPECT_EQ(reader.count(), 5u);
  std::size_t i = 0;
  while (reader.next()) {
    ASSERT_LT(i, matrices.size());
    EXPECT_EQ(reader.origin(), origins[i]);
    const Glcm restored = repr == Representation::Sparse ? reader.sparse().to_dense()
                                                         : reader.dense();
    EXPECT_EQ(restored.total(), matrices[i].total());
    for (int a = 0; a < 16; ++a)
      for (int b = 0; b < 16; ++b) EXPECT_EQ(restored.count(a, b), matrices[i].count(a, b));
    ++i;
  }
  EXPECT_EQ(i, 5u);
}

INSTANTIATE_TEST_SUITE_P(Reprs, MatrixPacketRoundTrip,
                         ::testing::Values(Representation::Full, Representation::Sparse));

TEST(MatrixPacket, SparsePayloadMuchSmallerOnSparseData) {
  // Smooth data: sparse wire format should be a small fraction of full.
  Volume4<Level> v({7, 7, 3, 3});
  for (std::int64_t t = 0; t < 3; ++t)
    for (std::int64_t z = 0; z < 3; ++z)
      for (std::int64_t y = 0; y < 7; ++y)
        for (std::int64_t x = 0; x < 7; ++x)
          v.at(x, y, z, t) = static_cast<Level>((x + y) / 2);
  Glcm g(32);
  g.accumulate(v.view(), Region4::whole(v.dims()),
               haralick::unique_directions(haralick::ActiveDims::all4()));

  MatrixPacketWriter full(Representation::Full, 32);
  MatrixPacketWriter sparse(Representation::Sparse, 32);
  for (int i = 0; i < 10; ++i) {
    full.add({0, 0, 0, 0}, g);
    sparse.add({0, 0, 0, 0}, g);
  }
  const auto fb = full.take(0, 0);
  const auto sb = sparse.take(0, 0);
  EXPECT_LT(sb->payload.size() * 5, fb->payload.size());
}

TEST(MatrixPacket, WriterRejectsNgMismatch) {
  MatrixPacketWriter writer(Representation::Full, 16);
  EXPECT_THROW(writer.add({0, 0, 0, 0}, Glcm(32)), std::invalid_argument);
}

TEST(MatrixPacket, ReaderRejectsWrongKind) {
  fs::BufferHeader h;
  h.kind = fs::BufferKind::Control;
  const auto buf = fs::make_buffer(h);
  EXPECT_THROW(MatrixPacketReader{*buf}, std::invalid_argument);
}

TEST(MatrixPacket, ReaderRejectsTruncatedPayload) {
  MatrixPacketWriter writer(Representation::Full, 16);
  writer.add({0, 0, 0, 0}, sample_glcm(16, 3));
  auto buf = writer.take(0, 0);
  buf->payload.resize(buf->payload.size() / 2);
  MatrixPacketReader reader(*buf);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(MatrixPacket, EmptyPacketIterates) {
  MatrixPacketWriter writer(Representation::Sparse, 16);
  const auto buf = writer.take(0, 0);
  MatrixPacketReader reader(*buf);
  EXPECT_EQ(reader.count(), 0u);
  EXPECT_FALSE(reader.next());
}

}  // namespace
}  // namespace h4d::filters
