// Reusable concurrency stress harness for the bounded queue implementations
// (fs/queue.hpp, fs/mpmc_queue.hpp). A test builds a Plan — N producers, M
// consumers, optional mid-stream close, timed-push storms, watchdog-style
// try_pop drainers, seeded jitter — runs it against a concrete queue, and
// checks the two invariants every inbox implementation must keep:
//
//   * exact item conservation — every item whose push was accepted (push()
//     returned true / push_for() returned Ok) is popped exactly once, and
//     nothing else ever comes out, even when close() races in-flight pushes;
//   * per-producer FIFO — each single-threaded pop stream observes any one
//     producer's items in the order that producer pushed them.
//
// Items encode (producer id, sequence number) in one uint64 so both checks
// are exact, not statistical. The harness is deliberately queue-agnostic:
// test_queue_stress.cpp instantiates it for BoundedQueue and MpmcQueue and
// the whole suite runs under ThreadSanitizer in CI (see .github/workflows).
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "fs/queue.hpp"

namespace h4d::fs::stress {

/// One item: producer id in the high half, per-producer sequence low.
constexpr std::uint64_t encode(int producer, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(producer) << 32) | seq;
}
constexpr int producer_of(std::uint64_t v) { return static_cast<int>(v >> 32); }
constexpr std::uint64_t seq_of(std::uint64_t v) { return v & 0xffffffffull; }

/// One randomized schedule. Defaults describe the simplest plan: blocking
/// pushes, close after all producers join, no drainers, no jitter.
struct Plan {
  int producers = 4;
  int consumers = 4;
  std::uint64_t items_per_producer = 1000;
  std::size_t capacity = 16;
  unsigned seed = 1;

  /// Producers use push_for() in short slices (retrying on Timeout, first
  /// slice counting the stall) instead of blocking push() — the executor's
  /// heartbeat pattern, and the path a timeout storm exercises.
  bool timed_push = false;
  std::chrono::microseconds slice{200};

  /// When set, a closer thread closes the queue mid-stream after this delay;
  /// producers whose push reports Closed stop, and only accepted items may
  /// come out. When unset, the harness closes after all producers join.
  std::optional<std::chrono::microseconds> close_after;

  /// Watchdog-style threads draining with non-blocking try_pop() bursts,
  /// racing the blocking consumers (the dead-copy inbox drain pattern).
  int drainers = 0;

  /// Upper bound of random sleeps injected into producers and consumers to
  /// vary the interleavings across seeds. 0 => no jitter.
  std::chrono::microseconds max_jitter{0};
};

/// Everything observed while running a Plan.
struct Outcome {
  /// Per producer, the items whose push was accepted, in push order.
  std::vector<std::vector<std::uint64_t>> accepted;
  /// Per pop stream (consumers first, then drainers), items in pop order.
  std::vector<std::vector<std::uint64_t>> streams;
  std::int64_t timeouts = 0;       ///< push_for slices that reported Timeout
  std::int64_t closed_pushes = 0;  ///< pushes rejected because of close()
};

/// Runs the plan against `q` to completion (all threads joined).
template <typename Q>
Outcome run_plan(Q& q, const Plan& plan) {
  Outcome out;
  out.accepted.resize(static_cast<std::size_t>(plan.producers));
  out.streams.resize(static_cast<std::size_t>(plan.consumers + plan.drainers));
  std::atomic<std::int64_t> timeouts{0};
  std::atomic<std::int64_t> closed_pushes{0};
  std::atomic<bool> consumers_done{false};

  auto jitter = [&plan](std::mt19937& rng) {
    if (plan.max_jitter.count() <= 0) return;
    std::uniform_int_distribution<int> d(0, 49);
    if (d(rng) == 0) {
      std::uniform_int_distribution<long long> us(0, plan.max_jitter.count());
      std::this_thread::sleep_for(std::chrono::microseconds(us(rng)));
    }
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < plan.producers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937 rng(plan.seed * 7919u + static_cast<unsigned>(p));
      std::vector<std::uint64_t>& mine = out.accepted[static_cast<std::size_t>(p)];
      for (std::uint64_t i = 0; i < plan.items_per_producer; ++i) {
        const std::uint64_t v = encode(p, i);
        jitter(rng);
        if (plan.timed_push) {
          bool first = true;
          for (;;) {
            const PushOutcome r = q.push_for(v, plan.slice, /*count_stall=*/first);
            first = false;
            if (r == PushOutcome::Ok) {
              mine.push_back(v);
              break;
            }
            if (r == PushOutcome::Closed) {
              closed_pushes.fetch_add(1, std::memory_order_relaxed);
              return;  // closed mid-stream: stop producing
            }
            timeouts.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (!q.push(v)) {
            closed_pushes.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          mine.push_back(v);
        }
      }
    });
  }

  std::vector<std::thread> consumers;
  for (int c = 0; c < plan.consumers; ++c) {
    consumers.emplace_back([&, c] {
      std::mt19937 rng(plan.seed * 104729u + static_cast<unsigned>(c));
      std::vector<std::uint64_t>& mine = out.streams[static_cast<std::size_t>(c)];
      while (std::optional<std::uint64_t> v = q.pop()) {
        mine.push_back(*v);
        jitter(rng);
      }
    });
  }

  // Watchdog-style drainers: non-blocking bursts racing the consumers. They
  // stop only after every consumer proved "closed and drained" (pop() =>
  // nullopt), after which a queue can never hold an item again — so exiting
  // on an empty burst is conservation-safe.
  std::vector<std::thread> drainers;
  for (int d = 0; d < plan.drainers; ++d) {
    drainers.emplace_back([&, d] {
      std::vector<std::uint64_t>& mine =
          out.streams[static_cast<std::size_t>(plan.consumers + d)];
      for (;;) {
        while (std::optional<std::uint64_t> v = q.try_pop()) mine.push_back(*v);
        if (consumers_done.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
      }
    });
  }

  std::optional<std::thread> closer;
  if (plan.close_after) {
    closer.emplace([&] {
      std::this_thread::sleep_for(*plan.close_after);
      q.close();
    });
  }

  for (std::thread& t : producers) t.join();
  if (closer) closer->join();
  q.close();  // idempotent: either the mid-stream close or the normal EOS
  for (std::thread& t : consumers) t.join();
  consumers_done.store(true, std::memory_order_release);
  for (std::thread& t : drainers) t.join();

  out.timeouts = timeouts.load();
  out.closed_pushes = closed_pushes.load();
  return out;
}

/// Exact conservation: the multiset of popped items equals the multiset of
/// accepted items. Reports the first few missing/duplicated/invented values.
inline void check_conservation(const Outcome& out) {
  std::map<std::uint64_t, int> balance;  // accepted +1, popped -1
  std::size_t accepted_n = 0, popped_n = 0;
  for (const auto& a : out.accepted) {
    accepted_n += a.size();
    for (std::uint64_t v : a) balance[v]++;
  }
  for (const auto& s : out.streams) {
    popped_n += s.size();
    for (std::uint64_t v : s) balance[v]--;
  }
  EXPECT_EQ(popped_n, accepted_n);
  int reported = 0;
  for (const auto& [v, d] : balance) {
    if (d == 0) continue;
    if (reported++ < 5) {
      ADD_FAILURE() << (d > 0 ? "lost" : "invented/duplicated") << " item: producer "
                    << producer_of(v) << " seq " << seq_of(v) << " (balance " << d
                    << ")";
    }
  }
  EXPECT_EQ(reported, 0) << reported << " items violated conservation";
}

/// Per-producer FIFO: within each single-threaded pop stream, any one
/// producer's items appear with strictly increasing sequence numbers.
inline void check_per_producer_fifo(const Outcome& out) {
  for (std::size_t s = 0; s < out.streams.size(); ++s) {
    std::map<int, std::uint64_t> last;  // producer -> last seq seen (+1)
    for (std::uint64_t v : out.streams[s]) {
      const int p = producer_of(v);
      const std::uint64_t seq = seq_of(v);
      auto it = last.find(p);
      if (it != last.end()) {
        EXPECT_LT(it->second, seq)
            << "stream " << s << " saw producer " << p << " seq " << seq
            << " after seq " << it->second;
      }
      last[p] = seq;
    }
  }
}

/// All checks a conforming queue must pass for any plan.
inline void check_all(const Outcome& out) {
  check_conservation(out);
  check_per_producer_fifo(out);
}

}  // namespace h4d::fs::stress
