#include "haralick/directions.hpp"

#include <gtest/gtest.h>

#include <set>

namespace h4d::haralick {
namespace {

TEST(Directions, CountsMatchFormula) {
  EXPECT_EQ(num_unique_directions(1), 1);
  EXPECT_EQ(num_unique_directions(2), 4);   // paper Sec. 3: 4 unique in 2D
  EXPECT_EQ(num_unique_directions(3), 13);
  EXPECT_EQ(num_unique_directions(4), 40);  // full 4D
}

TEST(Directions, Planar2DMatchesPaper) {
  const auto dirs = unique_directions(ActiveDims::planar2());
  ASSERT_EQ(dirs.size(), 4u);
  const std::set<Vec4, Vec4Less> got(dirs.begin(), dirs.end());
  // 0, 45, 90, 135 degrees (y up); opposite angles deduplicated.
  const std::set<Vec4, Vec4Less> want{{1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {-1, 1, 0, 0}};
  EXPECT_EQ(got, want);
}

TEST(Directions, Full4DCount) {
  EXPECT_EQ(unique_directions(ActiveDims::all4()).size(), 40u);
  EXPECT_EQ(unique_directions(ActiveDims::spatial3()).size(), 13u);
}

TEST(Directions, NoOppositePairs) {
  const auto dirs = unique_directions(ActiveDims::all4());
  const std::set<Vec4, Vec4Less> got(dirs.begin(), dirs.end());
  EXPECT_EQ(got.size(), dirs.size());  // no duplicates
  for (const Vec4& d : dirs) {
    EXPECT_FALSE(got.count(-d)) << "both " << d.str() << " and its opposite present";
  }
}

TEST(Directions, NoZeroVector) {
  for (const Vec4& d : unique_directions(ActiveDims::all4())) {
    EXPECT_NE(d, Vec4(0, 0, 0, 0));
  }
}

TEST(Directions, DistanceScalesComponents) {
  const auto d1 = unique_directions(ActiveDims::planar2(), 1);
  const auto d3 = unique_directions(ActiveDims::planar2(), 3);
  ASSERT_EQ(d1.size(), d3.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d3[i], d1[i] * 3);
  }
}

TEST(Directions, InactiveAxesStayZero) {
  for (const Vec4& d : unique_directions(ActiveDims::planar2())) {
    EXPECT_EQ(d.z(), 0);
    EXPECT_EQ(d.t(), 0);
  }
  for (const Vec4& d : unique_directions(ActiveDims::spatial3())) {
    EXPECT_EQ(d.t(), 0);
  }
}

TEST(Directions, RejectsBadDistance) {
  EXPECT_THROW(unique_directions(ActiveDims::all4(), 0), std::invalid_argument);
  EXPECT_THROW(axis_directions(ActiveDims::all4(), -1), std::invalid_argument);
}

TEST(AxisDirections, OnePerActiveAxis) {
  const auto dirs = axis_directions(ActiveDims::all4(), 2);
  ASSERT_EQ(dirs.size(), 4u);
  EXPECT_EQ(dirs[0], Vec4(2, 0, 0, 0));
  EXPECT_EQ(dirs[3], Vec4(0, 0, 0, 2));
  EXPECT_EQ(axis_directions(ActiveDims::planar2()).size(), 2u);
}

}  // namespace
}  // namespace h4d::haralick
