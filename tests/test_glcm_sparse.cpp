#include "haralick/glcm_sparse.hpp"

#include <gtest/gtest.h>

#include <random>

#include "haralick/directions.hpp"

namespace h4d::haralick {
namespace {

Volume4<Level> random_volume(Vec4 dims, int ng, unsigned seed) {
  Volume4<Level> v(dims);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, ng - 1);
  for (Level& l : v.storage()) l = static_cast<Level>(u(rng));
  return v;
}

Glcm sample_glcm(int ng, unsigned seed, Vec4 dims = {7, 7, 3, 3}) {
  const Volume4<Level> v = random_volume(dims, ng, seed);
  Glcm g(ng);
  g.accumulate(v.view(), Region4::whole(dims), unique_directions(ActiveDims::all4()));
  return g;
}

TEST(SparseGlcm, RoundTripsThroughDense) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const Glcm g = sample_glcm(32, seed);
    const SparseGlcm s = SparseGlcm::from_dense(g);
    const Glcm back = s.to_dense();
    EXPECT_EQ(back.total(), g.total());
    for (int i = 0; i < 32; ++i)
      for (int j = 0; j < 32; ++j) EXPECT_EQ(back.count(i, j), g.count(i, j));
  }
}

TEST(SparseGlcm, StoresOnlyUpperTriangle) {
  const Glcm g = sample_glcm(16, 4);
  const SparseGlcm s = SparseGlcm::from_dense(g);
  EXPECT_EQ(static_cast<std::int64_t>(s.nnz()), g.nonzero_upper());
  for (const SparseEntry& e : s.entries()) {
    EXPECT_LE(e.i, e.j);
    EXPECT_GT(e.count, 0u);
    EXPECT_EQ(e.count, g.count(e.i, e.j));
  }
}

TEST(SparseGlcm, EmptyMatrix) {
  const Glcm g(8);
  const SparseGlcm s = SparseGlcm::from_dense(g);
  EXPECT_EQ(s.nnz(), 0u);
  EXPECT_EQ(s.total(), 0);
  const Glcm back = s.to_dense();
  EXPECT_EQ(back.total(), 0);
}

TEST(SparseGlcm, WireSizeSmallerThanDenseWhenSparse) {
  // A typical requantized MRI GLCM is ~1% dense (paper Sec. 4.4.1); a sparse
  // checkerboard-like matrix must beat the dense wire format comfortably.
  Volume4<Level> v({7, 7, 3, 3}, 0);
  for (std::int64_t i = 0; i < v.size(); ++i) v.storage()[static_cast<std::size_t>(i)] = i % 2;
  Glcm g(32);
  g.accumulate(v.view(), Region4::whole(v.dims()), unique_directions(ActiveDims::all4()));
  const SparseGlcm s = SparseGlcm::from_dense(g);
  EXPECT_LE(s.nnz(), 3u);
  EXPECT_LT(s.wire_size(), SparseGlcm::dense_wire_size(32) / 10);
}

TEST(SparseGlcm, SerializeDeserializeRoundTrip) {
  const Glcm g = sample_glcm(32, 5);
  const SparseGlcm s = SparseGlcm::from_dense(g);
  std::vector<std::byte> wire;
  s.serialize(wire);
  EXPECT_EQ(wire.size(), s.wire_size());
  std::size_t consumed = 0;
  const SparseGlcm d = SparseGlcm::deserialize(wire.data(), wire.size(), consumed);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(d.num_levels(), s.num_levels());
  EXPECT_EQ(d.total(), s.total());
  EXPECT_EQ(d.entries(), s.entries());
}

TEST(SparseGlcm, SerializeAppendsMultiple) {
  const SparseGlcm a = SparseGlcm::from_dense(sample_glcm(16, 6));
  const SparseGlcm b = SparseGlcm::from_dense(sample_glcm(16, 7));
  std::vector<std::byte> wire;
  a.serialize(wire);
  b.serialize(wire);
  std::size_t used = 0;
  const SparseGlcm a2 = SparseGlcm::deserialize(wire.data(), wire.size(), used);
  const SparseGlcm b2 =
      SparseGlcm::deserialize(wire.data() + used, wire.size() - used, used);
  EXPECT_EQ(a2.entries(), a.entries());
  EXPECT_EQ(b2.entries(), b.entries());
}

TEST(SparseGlcm, DeserializeRejectsTruncation) {
  const SparseGlcm s = SparseGlcm::from_dense(sample_glcm(16, 8));
  std::vector<std::byte> wire;
  s.serialize(wire);
  std::size_t consumed = 0;
  EXPECT_THROW(SparseGlcm::deserialize(wire.data(), 3, consumed), std::runtime_error);
  if (s.nnz() > 0) {
    EXPECT_THROW(SparseGlcm::deserialize(wire.data(), wire.size() - 1, consumed),
                 std::runtime_error);
  }
}

TEST(SparseGlcm, ProbabilityMatchesDense) {
  const Glcm g = sample_glcm(32, 9);
  const SparseGlcm s = SparseGlcm::from_dense(g);
  for (const SparseEntry& e : s.entries()) {
    EXPECT_DOUBLE_EQ(s.p_of(e), g.p(e.i, e.j));
  }
}

TEST(SparseGlcm, TypicalMriDensityIsLow) {
  // Smooth (spatially correlated) data at Ng=32 should produce very sparse
  // matrices, in the spirit of the paper's 10.7-nonzeros observation.
  Volume4<Level> v({7, 7, 3, 3}, 0);
  for (std::int64_t t = 0; t < 3; ++t)
    for (std::int64_t z = 0; z < 3; ++z)
      for (std::int64_t y = 0; y < 7; ++y)
        for (std::int64_t x = 0; x < 7; ++x)
          v.at(x, y, z, t) = static_cast<Level>((x + y + z + t) / 2);  // smooth ramp
  Glcm g(32);
  g.accumulate(v.view(), Region4::whole(v.dims()), unique_directions(ActiveDims::all4()));
  const SparseGlcm s = SparseGlcm::from_dense(g);
  const double density =
      static_cast<double>(s.nnz()) / (32.0 * 32.0);
  EXPECT_LT(density, 0.05);
}

}  // namespace
}  // namespace h4d::haralick
