// Filter-network descriptions: build a FilterGraph from an XML document
// (the DataCutter configuration style, paper Sec. 4.3).
//
// Schema:
//
//   <filtergraph>
//     <filter name="reader" type="rfr" copies="4" nodes="0 1 2 3"/>
//     <filter name="stitch" type="iic"/>
//     <stream from="reader" port="0" to="stitch" policy="explicit-aux"/>
//   </filtergraph>
//
// * `type` is looked up in a FilterRegistry; `name` must be unique.
// * `copies` defaults to 1; `nodes` is a space-separated node id per copy
//   (defaults to all on node 0).
// * `policy` is one of: demand-driven (default), round-robin, broadcast,
//   explicit-aux (route to header.aux % copies), explicit-from-copy
//   (route to header.from_copy % copies).
#pragma once

#include <map>

#include "fs/graph.hpp"

namespace h4d::fs {

/// Maps filter `type` names to factories.
class FilterRegistry {
 public:
  /// Throws std::invalid_argument on duplicate type names.
  void register_type(const std::string& type, FilterFactory factory);
  bool has(const std::string& type) const { return factories_.count(type) != 0; }
  const FilterFactory& get(const std::string& type) const;
  std::vector<std::string> types() const;

 private:
  std::map<std::string, FilterFactory> factories_;
};

/// Parse an XML network description and assemble the graph.
/// Throws std::runtime_error on schema violations (unknown type, duplicate
/// filter name, dangling stream endpoint, bad policy, malformed numbers).
FilterGraph graph_from_xml(std::string_view xml, const FilterRegistry& registry);

}  // namespace h4d::fs
