#include "fs/xml.hpp"

#include <cctype>
#include <stdexcept>

namespace h4d::fs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  XmlNode parse_document() {
    skip_prolog();
    XmlNode root = parse_element();
    skip_ws_and_comments();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("xml parse error at offset " + std::to_string(pos_) + ": " +
                             what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eof() const { return pos_ >= text_.size(); }
  bool starts_with(std::string_view s) const { return text_.substr(pos_, s.size()) == s; }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void skip_comment() {
    // assumes starts_with("<!--")
    pos_ += 4;
    const auto end = text_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_ws_and_comments() {
    for (;;) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_ws();
    if (starts_with("<?")) {
      const auto end = text_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated xml declaration");
      pos_ = end + 2;
    }
    skip_ws_and_comments();
  }

  std::string parse_name() {
    const std::size_t begin = pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
          c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) fail("expected a name");
    return std::string(text_.substr(begin, pos_ - begin));
  }

  std::string parse_attr_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    ++pos_;
    const std::size_t begin = pos_;
    while (!eof() && text_[pos_] != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    std::string value(text_.substr(begin, pos_ - begin));
    ++pos_;
    return value;
  }

  XmlNode parse_element() {
    if (peek() != '<') fail("expected '<'");
    ++pos_;
    XmlNode node;
    node.tag = parse_name();

    for (;;) {
      skip_ws();
      if (starts_with("/>")) {
        pos_ += 2;
        return node;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      const std::string name = parse_name();
      skip_ws();
      if (peek() != '=') fail("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      if (!node.attrs.emplace(name, parse_attr_value()).second) {
        fail("duplicate attribute '" + name + "'");
      }
    }

    // Children and closing tag; intervening text is ignored.
    for (;;) {
      while (!eof() && peek() != '<') ++pos_;  // skip text content
      if (eof()) fail("unterminated element <" + node.tag + ">");
      if (starts_with("<!--")) {
        skip_comment();
        continue;
      }
      if (starts_with("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != node.tag) {
          fail("mismatched closing tag </" + closing + "> for <" + node.tag + ">");
        }
        skip_ws();
        if (peek() != '>') fail("malformed closing tag");
        ++pos_;
        return node;
      }
      node.children.push_back(parse_element());
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const std::string& XmlNode::attr(const std::string& name) const {
  const auto it = attrs.find(name);
  if (it == attrs.end()) {
    throw std::runtime_error("<" + tag + ">: missing attribute '" + name + "'");
  }
  return it->second;
}

std::string XmlNode::attr_or(const std::string& name, const std::string& fallback) const {
  const auto it = attrs.find(name);
  return it == attrs.end() ? fallback : it->second;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view tag_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children) {
    if (c.tag == tag_name) out.push_back(&c);
  }
  return out;
}

XmlNode parse_xml(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace h4d::fs
