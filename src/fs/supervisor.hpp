// Supervised execution: failure domains, restart/quarantine policy, and the
// damage inventory of one run.
//
// The paper's DataCutter runs assume every filter copy survives to
// completion; at production scale that assumption fails first. A supervisor
// wraps each filter-copy body so an exception is *attributed* — to the copy
// and to the in-flight buffer — and handled by policy instead of
// unconditionally destroying hours of out-of-core work:
//
//   * fail_fast     — the classic behavior, hardened: the first error is
//                     recorded, every stream is closed so peers blocked in
//                     push()/pop() unwind deterministically, and the error
//                     rethrows after all threads join;
//   * restart_copy  — the crashed copy is rebuilt from its filter factory
//                     (the failure domain is one copy's in-memory state) and
//                     the in-flight buffer retried; bounded by max_restarts
//                     per copy, escalating to fail_fast on exhaustion;
//   * quarantine    — like restart_copy, but a buffer that crashes its
//                     consumer poison_threshold times is quarantined into
//                     the run's damage inventory (its output region degrades
//                     to fill values, mirroring the read path's
//                     skip_and_fill) and the run completes.
//
// A watchdog declares copies dead when one filter call exceeds a deadline
// (heartbeats piggyback on the executor's activity transitions); a dead
// copy's pending buffers are re-routed to live sibling transparent copies,
// or inventoried as lost when it has none. Everything that happened is
// collected in an ExecutionReport — the execution-layer sibling of
// io::FaultReport (DESIGN §9).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "nd/region.hpp"

namespace h4d::fs {

/// Thrown by an executor whose run was cancelled from outside (a cancel
/// token, or the simulator's virtual-time deadline). Distinct from a filter
/// error: every stream was closed, all copies unwound cooperatively, and any
/// checkpoint manifest holds exactly the chunks completed before the cut —
/// the run is resumable, not damaged.
struct CancelledError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What the supervisor does with a filter-copy exception.
enum class SupervisePolicy {
  FailFast,     ///< record, close all streams, rethrow after join
  RestartCopy,  ///< rebuild the copy, retry the buffer; bounded restarts
  Quarantine,   ///< restart, but poison buffers are inventoried and dropped
};

std::string_view supervise_policy_name(SupervisePolicy p);
SupervisePolicy supervise_policy_from_name(const std::string& name);

/// Supervision configuration of one run (executor options).
struct SupervisorOptions {
  SupervisePolicy policy = SupervisePolicy::FailFast;
  /// Total filter rebuilds allowed per copy before the error escalates.
  int max_restarts = 3;
  /// Crashes by the *same* buffer before it is quarantined (Quarantine) or
  /// the error escalates (RestartCopy).
  int poison_threshold = 2;
  /// A copy whose single filter call exceeds this deadline is declared dead
  /// by the watchdog. 0 => watchdog disabled.
  double watchdog_deadline_ms = 0.0;
  /// Watchdog scan period; 0 => deadline / 4.
  double watchdog_poll_ms = 0.0;

  bool supervised() const {
    return policy != SupervisePolicy::FailFast || watchdog_deadline_ms > 0.0;
  }
};

/// One buffer given up on after crashing its consumer repeatedly — part of
/// the damage inventory (the execution-layer analogue of io::SkippedSlice).
struct QuarantinedBuffer {
  std::string filter;  ///< consumer group name
  int copy = 0;
  int port = 0;
  std::int64_t chunk_id = -1;  ///< BufferHeader::chunk_id (-1: not chunk data)
  std::int64_t seq = 0;        ///< producer sequence number
  std::int32_t from_copy = 0;  ///< producer copy index
  /// Region whose output degrades to fill because this buffer was dropped
  /// (the chunk's owned ROI origins when the header carries them).
  Region4 region;
  std::string reason;  ///< exception message of the last crash
};

/// One supervision event on a copy: a restart, a watchdog kill, or the
/// fatal error that ended the run.
struct CopyIncident {
  enum class Kind { Restart, WatchdogKill, Fatal };
  Kind kind = Kind::Restart;
  std::string filter;
  int copy = 0;
  std::string error;  ///< exception message (empty for watchdog kills)
};

std::string_view incident_kind_name(CopyIncident::Kind k);

/// Execution-layer accounting of one run: what crashed, what was restarted,
/// what was declared hung, and exactly which data degraded. Plain data; the
/// executor fills it after all copies have joined.
struct ExecutionReport {
  std::int64_t copy_restarts = 0;       ///< filter rebuilds performed
  std::int64_t chunks_quarantined = 0;  ///< buffers dropped as poison
  std::int64_t watchdog_kills = 0;      ///< copies declared dead while hung
  std::int64_t buffers_lost = 0;        ///< dead-copy buffers with no sibling
  std::int64_t chunks_resumed = 0;      ///< chunks pruned by --resume
  std::int64_t replica_failovers = 0;   ///< reads rerouted to another replica
  std::int64_t nodes_evicted = 0;       ///< storage-node health evictions
  std::vector<QuarantinedBuffer> quarantined;  ///< exact dropped buffers
  std::vector<CopyIncident> incidents;         ///< per-copy event log

  // --- hot-queue accounting (threaded executor only; "none" under the
  // simulator, which has no bounded inboxes) -----------------------------
  std::string queue_impl = "none";  ///< locked | mpmc | none (fs/queue.hpp)
  std::int64_t queue_stalled_pushes = 0;  ///< sum over every inbox
  double queue_stall_seconds = 0.0;       ///< sum over every inbox
  std::int64_t queue_max_depth = 0;       ///< max over every inbox

  bool clean() const {
    return copy_restarts == 0 && chunks_quarantined == 0 && watchdog_kills == 0 &&
           buffers_lost == 0 && chunks_resumed == 0 && replica_failovers == 0 &&
           nodes_evicted == 0 && incidents.empty();
  }
  std::string summary() const;

  /// The additive counters as one tuple of references, listed exactly once —
  /// operator+= folds over this list (the WorkMeter pattern, DESIGN §10), so
  /// a new job-level counter only needs an entry here; the sizeof pin below
  /// fires if a member is added without deciding how it merges.
  template <typename Self>
  static constexpr auto tied_counters(Self& r) {
    return std::tie(r.copy_restarts, r.chunks_quarantined, r.watchdog_kills,
                    r.buffers_lost, r.chunks_resumed, r.replica_failovers,
                    r.nodes_evicted, r.queue_stalled_pushes);
  }

  /// Member-wise accumulation of another run's (or job's) report: counters
  /// add, stall time adds, max depth maxes, inventories concatenate, and
  /// queue_impl keeps the common value (or degrades to "mixed" when reports
  /// from differently-configured runs are folded together).
  ExecutionReport& operator+=(const ExecutionReport& o) {
    std::apply(
        [&](auto&... a) {
          std::apply([&](const auto&... b) { ((a += b), ...); }, tied_counters(o));
        },
        tied_counters(*this));
    queue_stall_seconds += o.queue_stall_seconds;
    queue_max_depth = std::max(queue_max_depth, o.queue_max_depth);
    if (queue_impl != o.queue_impl) {
      if (queue_impl == "none") {
        queue_impl = o.queue_impl;
      } else if (o.queue_impl != "none") {
        queue_impl = "mixed";
      }
    }
    quarantined.insert(quarantined.end(), o.quarantined.begin(), o.quarantined.end());
    incidents.insert(incidents.end(), o.incidents.begin(), o.incidents.end());
    return *this;
  }
};

namespace detail {
inline constexpr std::size_t kExecCounterFields = std::tuple_size_v<
    decltype(ExecutionReport::tied_counters(std::declval<ExecutionReport&>()))>;
}
// Every member of ExecutionReport must either appear in tied_counters() or be
// merged explicitly in operator+= (queue_stall_seconds, queue_max_depth,
// queue_impl, quarantined, incidents). This pin recomputes sizeof from that
// exact member list; if it fires, a field was added without extending the
// merge — which would silently drop it from aggregated (multi-job) reports.
static_assert(sizeof(ExecutionReport) ==
                  (detail::kExecCounterFields + 1) * sizeof(std::int64_t) +
                      sizeof(double) + sizeof(std::string) +
                      sizeof(std::vector<QuarantinedBuffer>) +
                      sizeof(std::vector<CopyIncident>),
              "ExecutionReport field added without extending "
              "tied_counters()/operator+=");

}  // namespace h4d::fs
