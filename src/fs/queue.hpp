// Bounded multi-producer multi-consumer queue used for filter inboxes in the
// threaded executor. Blocking push gives natural backpressure on streams; the
// queue records how often and for how long producers were held back, which
// the observability layer surfaces as enqueue-stall time (see
// docs/OBSERVABILITY.md).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace h4d::fs {

/// Lifetime counters of one BoundedQueue (all under the queue's lock).
struct QueueStats {
  std::size_t max_depth = 0;        ///< high-water mark of queued items
  std::int64_t stalled_pushes = 0;  ///< pushes that found the queue full
  double stall_seconds = 0.0;       ///< total time producers waited in push()
};

/// Result of a timed push attempt.
enum class PushOutcome {
  Ok,       ///< enqueued
  Closed,   ///< queue was closed (now or while waiting)
  Timeout,  ///< still full after the timeout — caller decides what's next
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 64) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full; returns false when the queue was closed.
  bool push(T item) {
    std::unique_lock lk(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      stats_.stalled_pushes++;
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lk, [this] { return items_.size() < capacity_ || closed_; });
      stats_.stall_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Like push(), but gives up after `timeout` when the queue stays full.
  /// Lets the executor wait on backpressure in bounded slices (refreshing
  /// watchdog heartbeats, noticing aborts) instead of blocking indefinitely.
  /// `count_stall` controls whether a full queue increments stalled_pushes —
  /// a caller retrying in a loop counts the stall once, not per slice; the
  /// waited time is always added to stall_seconds.
  template <typename Rep, typename Period>
  PushOutcome push_for(T item, std::chrono::duration<Rep, Period> timeout,
                       bool count_stall = true) {
    std::unique_lock lk(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      if (count_stall) stats_.stalled_pushes++;
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait_for(lk, timeout,
                         [this] { return items_.size() < capacity_ || closed_; });
      stats_.stall_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }
    if (closed_) return PushOutcome::Closed;
    if (items_.size() >= capacity_) return PushOutcome::Timeout;
    items_.push_back(std::move(item));
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return PushOutcome::Ok;
  }

  /// Non-blocking pop: the front item, or nullopt when currently empty
  /// (regardless of closed state). Used by the watchdog to drain the inbox
  /// of a copy declared dead without ever blocking.
  std::optional<T> try_pop() {
    std::unique_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks while empty; returns nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After close(), push() fails and pop() drains the remaining items.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Snapshot of the backpressure counters accumulated so far.
  QueueStats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  QueueStats stats_;
  bool closed_ = false;
};

}  // namespace h4d::fs
