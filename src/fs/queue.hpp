// Bounded multi-producer multi-consumer queues used for filter inboxes in the
// threaded executor. Blocking push gives natural backpressure on streams; the
// queue records how often and for how long producers were held back, which
// the observability layer surfaces as enqueue-stall time (see
// docs/OBSERVABILITY.md).
//
// Two implementations share one contract (selected per run with --queue):
//   * BoundedQueue (this file)     — mutex + condvar, the reference;
//   * MpmcQueue (fs/mpmc_queue.hpp) — lock-free array-based fast path with a
//     condvar parking layer for the blocked paths (DESIGN §13).
// QueueInterface is the type-erased view the executor holds, so every
// close/EOS/watchdog path behaves identically regardless of implementation.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace h4d::fs {

/// Lifetime counters of one queue. BoundedQueue maintains them under its
/// lock; MpmcQueue via relaxed atomics — either way stats() returns a
/// consistent-enough snapshot for end-of-run reporting.
struct QueueStats {
  std::size_t max_depth = 0;        ///< high-water mark of queued items
  std::int64_t stalled_pushes = 0;  ///< pushes that found the queue full
  double stall_seconds = 0.0;       ///< total time producers waited in push()
};

/// Result of a timed push attempt.
enum class PushOutcome {
  Ok,       ///< enqueued
  Closed,   ///< queue was closed (now or while waiting)
  Timeout,  ///< still full after the timeout — caller decides what's next
};

/// Which queue implementation a run's inboxes use (--queue=locked|mpmc).
enum class QueueImpl {
  Locked,  ///< BoundedQueue: mutex + condvar (default)
  Mpmc,    ///< MpmcQueue: lock-free slot protocol + parking layer
};

inline std::string_view queue_impl_name(QueueImpl impl) {
  switch (impl) {
    case QueueImpl::Locked:
      return "locked";
    case QueueImpl::Mpmc:
      return "mpmc";
  }
  return "?";
}

inline QueueImpl queue_impl_from_name(const std::string& name) {
  if (name == "locked") return QueueImpl::Locked;
  if (name == "mpmc") return QueueImpl::Mpmc;
  throw std::runtime_error("unknown queue implementation: " + name +
                           " (expected locked|mpmc)");
}

/// Times one producer stall. Both queue implementations route their stall
/// accounting through this helper so `stalled_pushes`/`stall_seconds` mean
/// exactly the same thing under --queue=locked and --queue=mpmc.
class StallTimer {
 public:
  StallTimer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// The queue contract the threaded executor programs against. Semantics
/// (shared by every implementation):
///   * push() blocks while full, fails (false) once closed;
///   * push_for() waits at most `timeout`, reporting Ok/Closed/Timeout;
///     `count_stall` lets a retry loop count one stall across many slices
///     while the waited time always accumulates into stall_seconds;
///   * try_pop() never blocks (watchdog drains of a dead copy's inbox);
///   * pop() blocks while empty; after close() it drains the remaining
///     items, then returns nullopt.
template <typename T>
class QueueInterface {
 public:
  virtual ~QueueInterface() = default;
  virtual bool push(T item) = 0;
  virtual PushOutcome push_for(T item, std::chrono::nanoseconds timeout,
                               bool count_stall) = 0;
  virtual std::optional<T> try_pop() = 0;
  virtual std::optional<T> pop() = 0;
  virtual void close() = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
  virtual QueueStats stats() const = 0;
  virtual QueueImpl impl() const = 0;
};

template <typename T>
class BoundedQueue {
 public:
  static constexpr QueueImpl kImpl = QueueImpl::Locked;

  explicit BoundedQueue(std::size_t capacity = 64) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full; returns false when the queue was closed.
  bool push(T item) {
    std::unique_lock lk(mu_);
    wait_while_full(lk, /*count_stall=*/true, [this, &lk] {
      not_full_.wait(lk, [this] { return items_.size() < capacity_ || closed_; });
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Like push(), but gives up after `timeout` when the queue stays full.
  /// Lets the executor wait on backpressure in bounded slices (refreshing
  /// watchdog heartbeats, noticing aborts) instead of blocking indefinitely.
  template <typename Rep, typename Period>
  PushOutcome push_for(T item, std::chrono::duration<Rep, Period> timeout,
                       bool count_stall = true) {
    std::unique_lock lk(mu_);
    wait_while_full(lk, count_stall, [this, &lk, timeout] {
      not_full_.wait_for(lk, timeout,
                         [this] { return items_.size() < capacity_ || closed_; });
    });
    if (closed_) return PushOutcome::Closed;
    if (items_.size() >= capacity_) return PushOutcome::Timeout;
    items_.push_back(std::move(item));
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return PushOutcome::Ok;
  }

  /// Non-blocking pop: the front item, or nullopt when currently empty
  /// (regardless of closed state). Used by the watchdog to drain the inbox
  /// of a copy declared dead without ever blocking.
  std::optional<T> try_pop() {
    std::unique_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks while empty; returns nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After close(), push() fails and pop() drains the remaining items.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Snapshot of the backpressure counters accumulated so far.
  QueueStats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  /// The stall-timing block shared by push() and push_for(): when the queue
  /// is full (and open), count the stall once if asked, run the caller's
  /// wait, and account the whole waited time. Factored so both paths — and,
  /// via StallTimer, both queue implementations — report stalls identically.
  template <typename WaitFn>
  void wait_while_full(std::unique_lock<std::mutex>& lk, bool count_stall,
                       WaitFn&& wait) {
    (void)lk;  // held by the caller; the wait runs under it
    if (items_.size() < capacity_ || closed_) return;
    if (count_stall) stats_.stalled_pushes++;
    const StallTimer timer;
    wait();
    stats_.stall_seconds += timer.seconds();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  QueueStats stats_;
  bool closed_ = false;
};

/// Adapts a concrete queue (BoundedQueue, MpmcQueue) to QueueInterface. The
/// concrete classes stay virtual-free so tests and benchmarks can exercise
/// them directly; the executor pays one indirect call per queue operation.
template <typename T, typename Q>
class QueueAdapter final : public QueueInterface<T> {
 public:
  explicit QueueAdapter(std::size_t capacity) : q_(capacity) {}

  bool push(T item) override { return q_.push(std::move(item)); }
  PushOutcome push_for(T item, std::chrono::nanoseconds timeout,
                       bool count_stall) override {
    return q_.push_for(std::move(item), timeout, count_stall);
  }
  std::optional<T> try_pop() override { return q_.try_pop(); }
  std::optional<T> pop() override { return q_.pop(); }
  void close() override { q_.close(); }
  std::size_t size() const override { return q_.size(); }
  std::size_t capacity() const override { return q_.capacity(); }
  QueueStats stats() const override { return q_.stats(); }
  QueueImpl impl() const override { return Q::kImpl; }

 private:
  Q q_;
};

}  // namespace h4d::fs
