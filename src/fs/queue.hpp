// Bounded multi-producer multi-consumer queue used for filter inboxes in the
// threaded executor. Blocking push gives natural backpressure on streams.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace h4d::fs {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 64) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full; returns false when the queue was closed.
  bool push(T item) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After close(), push() fails and pop() drains the remaining items.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace h4d::fs
