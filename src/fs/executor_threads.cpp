#include "fs/executor_threads.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "fs/queue.hpp"
#include "fs/trace.hpp"

namespace h4d::fs {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t) {
  return std::chrono::duration<double>(t - t0).count();
}

struct Envelope {
  int port = 0;
  BufferPtr buffer;  ///< null => EOS token from one producer copy
};

struct CopyRuntime;

struct EdgeRuntime {
  const EdgeSpec* spec = nullptr;
  std::vector<CopyRuntime*> consumers;  ///< copies of spec->to
  std::atomic<std::uint64_t> rr_next{0};
};

struct CopyRuntime {
  int group = 0;
  int copy = 0;
  int node = 0;
  std::unique_ptr<Filter> filter;
  std::unique_ptr<BoundedQueue<Envelope>> inbox;
  int expected_eos = 0;
  CopyStats stats;
};

class ThreadedContext final : public FilterContext {
 public:
  ThreadedContext(CopyRuntime* self, int num_copies, std::vector<EdgeRuntime*> out,
                  TraceRecorder* trace, Clock::time_point t0)
      : self_(self), num_copies_(num_copies), out_(std::move(out)), trace_(trace),
        t0_(t0) {}

  void emit(int port, BufferPtr buffer) override {
    if (!buffer) return;
    buffer->header.from_copy = self_->copy;
    for (EdgeRuntime* e : out_) {
      if (e->spec->port != port) continue;
      deliver(*e, buffer);
    }
  }

  int copy_index() const override { return self_->copy; }
  int num_copies() const override { return num_copies_; }
  WorkMeter& meter() override { return self_->stats.meter; }

  /// Send one EOS token on every outgoing edge to every consumer copy.
  void send_eos() {
    for (EdgeRuntime* e : out_) {
      for (CopyRuntime* c : e->consumers) {
        c->inbox->push(Envelope{e->spec->port, nullptr});
      }
    }
  }

 private:
  void deliver(EdgeRuntime& e, const BufferPtr& buffer) {
    auto account = [this, &buffer](CopyRuntime* dst) {
      self_->stats.meter.buffers_out++;
      self_->stats.meter.bytes_out += static_cast<std::int64_t>(buffer->wire_bytes());
      const auto push_start = Clock::now();
      dst->inbox->push(Envelope{e_port_, buffer});
      const auto push_end = Clock::now();
      self_->stats.blocked_output_seconds +=
          std::chrono::duration<double>(push_end - push_start).count();
      if (trace_ != nullptr) {
        trace_->instant(self_->group, self_->copy, "handoff:" + dst->stats.filter,
                        seconds_since(t0_, push_end),
                        {{"bytes", static_cast<std::int64_t>(buffer->wire_bytes())},
                         {"to_copy", dst->copy}});
        trace_->counter(dst->group,
                        "inbox:" + dst->stats.filter + "#" + std::to_string(dst->copy),
                        seconds_since(t0_, push_end),
                        static_cast<std::int64_t>(dst->inbox->size()));
      }
    };
    e_port_ = e.spec->port;
    const int n = static_cast<int>(e.consumers.size());
    switch (e.spec->policy) {
      case Policy::Broadcast:
        for (CopyRuntime* c : e.consumers) account(c);
        break;
      case Policy::RoundRobin: {
        const auto k = e.rr_next.fetch_add(1, std::memory_order_relaxed);
        account(e.consumers[static_cast<std::size_t>(k % static_cast<std::uint64_t>(n))]);
        break;
      }
      case Policy::DemandDriven: {
        // Route to the copy with the shortest inbox — the copy consuming
        // buffers the fastest (paper Sec. 4.1's demand-driven scheduling).
        CopyRuntime* best = e.consumers[0];
        std::size_t best_depth = best->inbox->size();
        for (CopyRuntime* c : e.consumers) {
          const std::size_t d = c->inbox->size();
          if (d < best_depth) {
            best = c;
            best_depth = d;
          }
        }
        account(best);
        break;
      }
      case Policy::Explicit: {
        const int k = e.spec->route(buffer->header, n);
        if (k < 0 || k >= n) {
          throw std::out_of_range("explicit route returned copy " + std::to_string(k) +
                                  " of " + std::to_string(n));
        }
        account(e.consumers[static_cast<std::size_t>(k)]);
        break;
      }
    }
  }

  CopyRuntime* self_;
  int num_copies_;
  std::vector<EdgeRuntime*> out_;
  TraceRecorder* trace_;
  Clock::time_point t0_;
  int e_port_ = 0;
};

}  // namespace

RunStats run_threaded(const FilterGraph& graph, const ThreadedOptions& options) {
  graph.validate();
  const auto& filters = graph.filters();
  const auto& edges = graph.edges();
  TraceRecorder* const trace = options.trace;

  // Instantiate copies.
  std::vector<std::vector<std::unique_ptr<CopyRuntime>>> copies(filters.size());
  for (std::size_t f = 0; f < filters.size(); ++f) {
    for (int c = 0; c < filters[f].copies; ++c) {
      auto rt = std::make_unique<CopyRuntime>();
      rt->group = static_cast<int>(f);
      rt->copy = c;
      rt->node = filters[f].node_of_copy(c);
      rt->filter = filters[f].factory();
      rt->inbox = std::make_unique<BoundedQueue<Envelope>>(options.queue_capacity);
      rt->stats.filter = filters[f].name;
      rt->stats.copy = c;
      rt->stats.node = rt->node;
      copies[f].push_back(std::move(rt));
    }
    if (trace != nullptr) {
      trace->set_process_name(static_cast<int>(f), filters[f].name);
      for (int c = 0; c < filters[f].copies; ++c) {
        trace->set_thread_name(static_cast<int>(f), c,
                               filters[f].name + "[" + std::to_string(c) + "]");
      }
    }
  }

  // Wire edges and EOS expectations.
  std::vector<std::unique_ptr<EdgeRuntime>> edge_rts;
  edge_rts.reserve(edges.size());
  for (const EdgeSpec& e : edges) {
    auto rt = std::make_unique<EdgeRuntime>();
    rt->spec = &e;
    for (auto& c : copies[static_cast<std::size_t>(e.to)]) rt->consumers.push_back(c.get());
    const int producer_copies = filters[static_cast<std::size_t>(e.from)].copies;
    for (auto& c : copies[static_cast<std::size_t>(e.to)]) c->expected_eos += producer_copies;
    edge_rts.push_back(std::move(rt));
  }

  std::mutex error_mu;
  std::exception_ptr first_error;
  const auto t0 = Clock::now();

  std::vector<std::thread> threads;
  for (std::size_t f = 0; f < filters.size(); ++f) {
    std::vector<EdgeRuntime*> out;
    for (auto& er : edge_rts) {
      if (er->spec->from == static_cast<int>(f)) out.push_back(er.get());
    }
    const bool source = graph.is_source(static_cast<int>(f));
    for (auto& copy : copies[f]) {
      CopyRuntime* rt = copy.get();
      const int ncopies = filters[f].copies;
      threads.emplace_back([rt, ncopies, out, source, t0, trace, &error_mu,
                            &first_error] {
        ThreadedContext ctx(rt, ncopies, out, trace, t0);
        auto busy = Clock::duration::zero();
        // Times one filter call; records its activity span when tracing.
        const auto timed_call = [&](const char* phase, auto&& call) {
          const auto b = Clock::now();
          call();
          const auto e = Clock::now();
          busy += e - b;
          if (trace != nullptr) {
            trace->span(rt->group, rt->copy, rt->stats.filter + phase,
                        seconds_since(t0, b), std::chrono::duration<double>(e - b).count());
          }
        };
        try {
          if (source) {
            timed_call("", [&] {
              rt->filter->run_source(ctx);
              rt->filter->flush(ctx);
            });
          } else {
            int remaining = rt->expected_eos;
            while (remaining > 0) {
              const auto w0 = Clock::now();
              std::optional<Envelope> env = rt->inbox->pop();
              rt->stats.blocked_input_seconds +=
                  std::chrono::duration<double>(Clock::now() - w0).count();
              if (!env) break;  // queue closed (error path)
              if (!env->buffer) {
                --remaining;
                continue;
              }
              rt->stats.meter.buffers_in++;
              rt->stats.meter.bytes_in +=
                  static_cast<std::int64_t>(env->buffer->wire_bytes());
              timed_call("", [&] { rt->filter->process(env->port, env->buffer, ctx); });
            }
            timed_call("::flush", [&] { rt->filter->flush(ctx); });
          }
          ctx.send_eos();
        } catch (...) {
          {
            std::lock_guard lk(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Unblock the rest of the pipeline.
          ctx.send_eos();
        }
        // Pushes into full downstream inboxes happen inside process()/
        // run_source(); report them as blocked-on-output, not busy time.
        rt->stats.busy_seconds = std::max(
            0.0, std::chrono::duration<double>(busy).count() -
                     rt->stats.blocked_output_seconds);
        rt->stats.finish_time = seconds_since(t0, Clock::now());
      });
    }
  }

  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunStats out;
  out.total_seconds = seconds_since(t0, Clock::now());
  for (auto& group : copies) {
    for (auto& c : group) {
      const QueueStats q = c->inbox->stats();
      c->stats.max_inbox = q.max_depth;
      c->stats.enqueue_stall_seconds = q.stall_seconds;
      c->stats.stalled_pushes = q.stalled_pushes;
      out.copies.push_back(c->stats);
    }
  }
  return out;
}

}  // namespace h4d::fs
