#include "fs/executor_threads.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "fs/mpmc_queue.hpp"
#include "fs/queue.hpp"
#include "fs/trace.hpp"

namespace h4d::fs {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t) {
  return std::chrono::duration<double>(t - t0).count();
}

std::int64_t ns_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
      .count();
}

/// Internal control-flow exception: thrown when a push/pop fails because the
/// run was aborted (fatal error elsewhere closed every stream). Caught at the
/// top of each copy thread — never recorded as the run's error.
struct PipelineAborted {};

struct Envelope {
  int port = 0;
  BufferPtr buffer;  ///< null => EOS token from one producer copy
};

struct CopyRuntime;

struct EdgeRuntime {
  const EdgeSpec* spec = nullptr;
  std::vector<CopyRuntime*> consumers;  ///< copies of spec->to
  std::atomic<std::uint64_t> rr_next{0};
};

struct CopyRuntime {
  int group = 0;
  int copy = 0;
  int node = 0;
  std::unique_ptr<Filter> filter;
  std::unique_ptr<QueueInterface<Envelope>> inbox;
  int expected_eos = 0;
  CopyStats stats;

  // --- supervision state -------------------------------------------------
  /// Heartbeat: ns since run start when the current filter call began, or -1
  /// while idle (blocked in pop counts as idle — waiting is not hanging).
  /// Refreshed on every completed downstream push, so a backpressured copy
  /// that is still making progress is never declared dead.
  std::atomic<std::int64_t> busy_since_ns{-1};
  /// Set by the watchdog when this copy exceeded its deadline. Producers stop
  /// routing to it; the copy itself exits without flush/EOS when it wakes.
  std::atomic<bool> declared_dead{false};
  /// Whoever exchanges this to true owns flush+EOS for the copy: the copy
  /// thread on normal completion, or the watchdog on a kill — never both.
  std::atomic<bool> eos_sent{false};
};

/// Run-global supervision state shared by all copy threads and the watchdog.
struct SupervisorShared {
  SupervisorOptions opts;
  std::vector<CopyRuntime*> all;  ///< every copy, for close-all on abort
  std::atomic<bool> aborted{false};
  std::mutex mu;  ///< guards report and first_error
  ExecutionReport report;
  std::exception_ptr first_error;

  /// Fatal error: record it, then close every stream so peers blocked in
  /// push()/pop() unwind deterministically instead of deadlocking.
  void fatal(const CopyRuntime* rt, std::exception_ptr ep, const std::string& what) {
    {
      std::lock_guard lk(mu);
      if (!first_error) first_error = ep;
      report.incidents.push_back(
          {CopyIncident::Kind::Fatal, rt->stats.filter, rt->copy, what});
    }
    aborted.store(true);
    for (CopyRuntime* c : all) c->inbox->close();
  }
};

class ThreadedContext final : public FilterContext {
 public:
  ThreadedContext(CopyRuntime* self, int num_copies, std::vector<EdgeRuntime*> out,
                  SupervisorShared* shared, TraceRecorder* trace, Clock::time_point t0)
      : self_(self), num_copies_(num_copies), out_(std::move(out)), shared_(shared),
        trace_(trace), t0_(t0) {}

  void emit(int port, BufferPtr buffer) override {
    if (!buffer) return;
    buffer->header.from_copy = self_->copy;
    for (EdgeRuntime* e : out_) {
      if (e->spec->port != port) continue;
      deliver(*e, buffer);
    }
  }

  int copy_index() const override { return self_->copy; }
  int num_copies() const override { return num_copies_; }
  WorkMeter& meter() override { return self_->stats.meter; }

  /// Send one EOS token on every outgoing edge to every consumer copy.
  /// Failed pushes (dead consumer, aborted run) are deliberately ignored.
  void send_eos() {
    for (EdgeRuntime* e : out_) {
      for (CopyRuntime* c : e->consumers) {
        (void)c->inbox->push(Envelope{e->spec->port, nullptr});
      }
    }
  }

 private:
  static CopyRuntime* least_loaded_live(const std::vector<CopyRuntime*>& candidates,
                                        const CopyRuntime* exclude) {
    CopyRuntime* best = nullptr;
    std::size_t best_depth = 0;
    for (CopyRuntime* c : candidates) {
      if (c == exclude || c->declared_dead.load(std::memory_order_acquire)) continue;
      const std::size_t d = c->inbox->size();
      if (best == nullptr || d < best_depth) {
        best = c;
        best_depth = d;
      }
    }
    return best;
  }

  void deliver(EdgeRuntime& e, const BufferPtr& buffer) {
    const int n = static_cast<int>(e.consumers.size());
    switch (e.spec->policy) {
      case Policy::Broadcast:
        // Re-routing a broadcast buffer would double-deliver; a dead copy's
        // share is inventoried as lost instead.
        for (CopyRuntime* c : e.consumers) deliver_to(e, c, buffer, false);
        return;
      case Policy::RoundRobin: {
        const auto k = e.rr_next.fetch_add(1, std::memory_order_relaxed);
        deliver_to(e,
                   e.consumers[static_cast<std::size_t>(
                       k % static_cast<std::uint64_t>(n))],
                   buffer, true);
        return;
      }
      case Policy::DemandDriven: {
        // Route to the copy with the shortest inbox — the copy consuming
        // buffers the fastest (paper Sec. 4.1's demand-driven scheduling).
        CopyRuntime* best = least_loaded_live(e.consumers, nullptr);
        if (best == nullptr) best = e.consumers[0];  // all dead: recorded lost
        deliver_to(e, best, buffer, true);
        return;
      }
      case Policy::Explicit: {
        const int k = e.spec->route(buffer->header, n);
        if (k < 0 || k >= n) {
          throw std::out_of_range("explicit route returned copy " + std::to_string(k) +
                                  " of " + std::to_string(n));
        }
        deliver_to(e, e.consumers[static_cast<std::size_t>(k)], buffer, true);
        return;
      }
    }
  }

  /// Push to `dst`, falling over to live sibling copies when the target was
  /// declared dead (its inbox is closed). A push that fails because the run
  /// aborted throws PipelineAborted; a buffer with no live taker is counted
  /// in the damage inventory.
  void deliver_to(EdgeRuntime& e, CopyRuntime* dst, const BufferPtr& buffer,
                  bool reroute) {
    const int port = e.spec->port;
    const auto push_start = Clock::now();
    CopyRuntime* target = dst;
    bool delivered = false;
    while (target != nullptr) {
      if (!target->declared_dead.load(std::memory_order_acquire)) {
        // Wait on backpressure in bounded slices: each timeout refreshes the
        // heartbeat, so a producer blocked on a full downstream inbox reads
        // as waiting, never as hung (only the consumer wedged *inside* a
        // filter call trips the watchdog).
        bool counted_stall = false;
        PushOutcome outcome;
        do {
          outcome = target->inbox->push_for(Envelope{port, buffer},
                                            std::chrono::milliseconds(50),
                                            !counted_stall);
          counted_stall = true;
          if (outcome == PushOutcome::Timeout &&
              self_->busy_since_ns.load(std::memory_order_relaxed) >= 0) {
            self_->busy_since_ns.store(ns_since(t0_), std::memory_order_relaxed);
          }
        } while (outcome == PushOutcome::Timeout &&
                 !target->declared_dead.load(std::memory_order_acquire));
        if (outcome == PushOutcome::Ok) {
          delivered = true;
          break;
        }
        if (shared_->aborted.load()) throw PipelineAborted{};
        // The target died between routing and push; its declared_dead store
        // happens-before the close that failed this push, so the retry loop
        // below will skip it.
      }
      if (!reroute) break;
      target = least_loaded_live(e.consumers, target);
    }
    const auto push_end = Clock::now();
    self_->stats.blocked_output_seconds +=
        std::chrono::duration<double>(push_end - push_start).count();
    if (!delivered) {
      std::lock_guard lk(shared_->mu);
      shared_->report.buffers_lost++;
      return;
    }
    self_->stats.meter.buffers_out++;
    self_->stats.meter.bytes_out += static_cast<std::int64_t>(buffer->wire_bytes());
    // A completed handoff is progress: refresh the heartbeat so a copy that
    // is slow only because of downstream backpressure is not declared hung.
    if (self_->busy_since_ns.load(std::memory_order_relaxed) >= 0) {
      self_->busy_since_ns.store(ns_since(t0_), std::memory_order_relaxed);
    }
    if (trace_ != nullptr) {
      trace_->instant(self_->group, self_->copy, "handoff:" + target->stats.filter,
                      seconds_since(t0_, push_end),
                      {{"bytes", static_cast<std::int64_t>(buffer->wire_bytes())},
                       {"to_copy", target->copy}});
      trace_->counter(target->group,
                      "inbox:" + target->stats.filter + "#" +
                          std::to_string(target->copy),
                      seconds_since(t0_, push_end),
                      static_cast<std::int64_t>(target->inbox->size()));
    }
  }

  CopyRuntime* self_;
  int num_copies_;
  std::vector<EdgeRuntime*> out_;
  SupervisorShared* shared_;
  TraceRecorder* trace_;
  Clock::time_point t0_;
};

/// Marks the copy busy for the watchdog while a filter call runs.
struct HeartbeatGuard {
  HeartbeatGuard(CopyRuntime* rt, Clock::time_point t0) : rt_(rt) {
    rt_->busy_since_ns.store(ns_since(t0), std::memory_order_release);
  }
  ~HeartbeatGuard() { rt_->busy_since_ns.store(-1, std::memory_order_release); }
  CopyRuntime* rt_;
};

/// Identity of one in-flight buffer for poison accounting.
using BufferKey = std::tuple<int, std::int64_t, std::int64_t, std::int32_t>;

enum class CrashAction { Retry, Drop, Escalate };

}  // namespace

RunStats run_threaded(const FilterGraph& graph, const ThreadedOptions& options) {
  graph.validate();
  const auto& filters = graph.filters();
  const auto& edges = graph.edges();
  TraceRecorder* const trace = options.trace;

  SupervisorShared shared;
  shared.opts = options.supervise;

  // Instantiate copies.
  std::vector<std::vector<std::unique_ptr<CopyRuntime>>> copies(filters.size());
  for (std::size_t f = 0; f < filters.size(); ++f) {
    for (int c = 0; c < filters[f].copies; ++c) {
      auto rt = std::make_unique<CopyRuntime>();
      rt->group = static_cast<int>(f);
      rt->copy = c;
      rt->node = filters[f].node_of_copy(c);
      rt->filter = filters[f].factory();
      rt->inbox = make_queue<Envelope>(options.queue, options.queue_capacity);
      rt->stats.filter = filters[f].name;
      rt->stats.copy = c;
      rt->stats.node = rt->node;
      shared.all.push_back(rt.get());
      copies[f].push_back(std::move(rt));
    }
    if (trace != nullptr) {
      trace->set_process_name(static_cast<int>(f), filters[f].name);
      for (int c = 0; c < filters[f].copies; ++c) {
        trace->set_thread_name(static_cast<int>(f), c,
                               filters[f].name + "[" + std::to_string(c) + "]");
      }
    }
  }

  // Wire edges and EOS expectations.
  std::vector<std::unique_ptr<EdgeRuntime>> edge_rts;
  edge_rts.reserve(edges.size());
  std::vector<std::vector<EdgeRuntime*>> group_out(filters.size());
  for (const EdgeSpec& e : edges) {
    auto rt = std::make_unique<EdgeRuntime>();
    rt->spec = &e;
    for (auto& c : copies[static_cast<std::size_t>(e.to)]) rt->consumers.push_back(c.get());
    const int producer_copies = filters[static_cast<std::size_t>(e.from)].copies;
    for (auto& c : copies[static_cast<std::size_t>(e.to)]) c->expected_eos += producer_copies;
    group_out[static_cast<std::size_t>(e.from)].push_back(rt.get());
    edge_rts.push_back(std::move(rt));
  }

  const auto t0 = Clock::now();

  // Rebuild a crashed copy's filter from its factory: the failure domain is
  // one copy's in-memory state.
  auto rebuild = [&](CopyRuntime* rt, const std::string& what) {
    rt->filter = filters[static_cast<std::size_t>(rt->group)].factory();
    rt->stats.meter.copy_restarts++;
    {
      std::lock_guard lk(shared.mu);
      shared.report.copy_restarts++;
      shared.report.incidents.push_back(
          {CopyIncident::Kind::Restart, rt->stats.filter, rt->copy, what});
    }
    if (trace != nullptr) {
      trace->instant(rt->group, rt->copy, "restart", seconds_since(t0, Clock::now()),
                     {});
    }
  };

  // Decide what happens to the buffer whose process() call just threw.
  auto on_crash = [&](CopyRuntime* rt, const Envelope& env, const std::string& what,
                      std::map<BufferKey, int>& crashes, int& restarts_used) {
    const BufferHeader& h = env.buffer->header;
    const int n = ++crashes[BufferKey{env.port, h.chunk_id, h.seq, h.from_copy}];
    const bool poison = n >= shared.opts.poison_threshold;
    const bool budget_left = restarts_used < shared.opts.max_restarts;
    if (shared.opts.policy == SupervisePolicy::Quarantine && (poison || !budget_left)) {
      QuarantinedBuffer q;
      q.filter = rt->stats.filter;
      q.copy = rt->copy;
      q.port = env.port;
      q.chunk_id = h.chunk_id;
      q.seq = h.seq;
      q.from_copy = h.from_copy;
      q.region = h.region2.volume() > 0 ? h.region2 : h.region;
      q.reason = what;
      {
        std::lock_guard lk(shared.mu);
        shared.report.chunks_quarantined++;
        shared.report.quarantined.push_back(std::move(q));
      }
      rt->stats.meter.chunks_quarantined++;
      if (trace != nullptr) {
        trace->instant(rt->group, rt->copy, "quarantine",
                       seconds_since(t0, Clock::now()), {{"chunk", h.chunk_id}});
      }
      rebuild(rt, what);
      return CrashAction::Drop;
    }
    if (poison || !budget_left) return CrashAction::Escalate;
    restarts_used++;
    rebuild(rt, what);
    return CrashAction::Retry;
  };

  std::vector<std::thread> threads;
  for (std::size_t f = 0; f < filters.size(); ++f) {
    const bool source = graph.is_source(static_cast<int>(f));
    for (auto& copy : copies[f]) {
      CopyRuntime* rt = copy.get();
      const int ncopies = filters[f].copies;
      std::vector<EdgeRuntime*> out = group_out[f];
      threads.emplace_back([rt, ncopies, out = std::move(out), source, t0, trace,
                            &shared, &on_crash] {
        ThreadedContext ctx(rt, ncopies, out, &shared, trace, t0);
        auto busy = Clock::duration::zero();
        // Times one filter call; records its activity span when tracing.
        const auto timed_call = [&](const char* phase, auto&& call) {
          const auto b = Clock::now();
          call();
          const auto e = Clock::now();
          busy += e - b;
          if (trace != nullptr) {
            trace->span(rt->group, rt->copy, rt->stats.filter + phase,
                        seconds_since(t0, b), std::chrono::duration<double>(e - b).count());
          }
        };
        try {
          if (source) {
            // Sources are never restarted: re-running run_source() would
            // re-emit everything already delivered downstream. A source
            // crash is fatal under every policy.
            {
              HeartbeatGuard hb(rt, t0);
              timed_call("", [&] {
                rt->filter->run_source(ctx);
                rt->filter->flush(ctx);
              });
            }
            if (!rt->eos_sent.exchange(true)) ctx.send_eos();
          } else {
            int remaining = rt->expected_eos;
            int restarts_used = 0;
            std::map<BufferKey, int> crashes;
            while (remaining > 0) {
              const auto w0 = Clock::now();
              std::optional<Envelope> env = rt->inbox->pop();
              rt->stats.blocked_input_seconds +=
                  std::chrono::duration<double>(Clock::now() - w0).count();
              if (!env) break;  // closed: run aborted or this copy was killed
              if (rt->declared_dead.load(std::memory_order_acquire)) break;
              if (!env->buffer) {
                --remaining;
                continue;
              }
              rt->stats.meter.buffers_in++;
              rt->stats.meter.bytes_in +=
                  static_cast<std::int64_t>(env->buffer->wire_bytes());
              for (;;) {  // attempt loop: retried across copy restarts
                try {
                  {
                    HeartbeatGuard hb(rt, t0);
                    timed_call("",
                               [&] { rt->filter->process(env->port, env->buffer, ctx); });
                  }
                  break;
                } catch (const PipelineAborted&) {
                  throw;
                } catch (...) {
                  if (rt->declared_dead.load(std::memory_order_acquire)) {
                    // The watchdog already handed this copy's work to
                    // siblings and sent EOS on its behalf; just leave.
                    throw PipelineAborted{};
                  }
                  if (shared.opts.policy == SupervisePolicy::FailFast) throw;
                  std::string what = "unknown exception";
                  try {
                    throw;
                  } catch (const std::exception& ex) {
                    what = ex.what();
                  } catch (...) {
                  }
                  const CrashAction action =
                      on_crash(rt, *env, what, crashes, restarts_used);
                  if (action == CrashAction::Escalate) throw;
                  if (action == CrashAction::Drop) break;
                  // Retry: the copy was rebuilt; run the buffer again.
                }
              }
            }
            if (!shared.aborted.load() &&
                !rt->declared_dead.load(std::memory_order_acquire)) {
              timed_call("::flush", [&] {
                HeartbeatGuard hb(rt, t0);
                rt->filter->flush(ctx);
              });
              if (!rt->eos_sent.exchange(true)) ctx.send_eos();
            }
          }
        } catch (const PipelineAborted&) {
          // Cooperative shutdown; the originating copy recorded the error.
        } catch (...) {
          const std::exception_ptr ep = std::current_exception();
          std::string what = "unknown exception";
          try {
            std::rethrow_exception(ep);
          } catch (const std::exception& ex) {
            what = ex.what();
          } catch (...) {
          }
          rt->eos_sent.store(true);
          shared.fatal(rt, ep, what);
        }
        // Pushes into full downstream inboxes happen inside process()/
        // run_source(); report them as blocked-on-output, not busy time.
        rt->stats.busy_seconds = std::max(
            0.0, std::chrono::duration<double>(busy).count() -
                     rt->stats.blocked_output_seconds);
        rt->stats.finish_time = seconds_since(t0, Clock::now());
      });
    }
  }

  // Canceller: polls the external cancel token and, when it fires, closes
  // every stream — the same deterministic abort path as a fatal error, but
  // reported as CancelledError after join instead of a filter exception.
  std::thread canceller;
  std::mutex cx_mu;
  std::condition_variable cx_cv;
  bool cx_stop = false;
  std::atomic<bool> cancelled{false};
  if (options.cancel != nullptr) {
    canceller = std::thread([&] {
      const double poll_ms = options.cancel_poll_ms > 0.0 ? options.cancel_poll_ms : 5.0;
      std::unique_lock lk(cx_mu);
      while (!cx_stop) {
        if (options.cancel->load(std::memory_order_acquire)) {
          cancelled.store(true);
          shared.aborted.store(true);
          for (CopyRuntime* c : shared.all) c->inbox->close();
          return;
        }
        cx_cv.wait_for(lk, std::chrono::duration<double, std::milli>(poll_ms),
                       [&] { return cx_stop; });
      }
    });
  }

  // Watchdog: declares a copy dead when one filter call (with no completed
  // handoff) exceeds the deadline, re-routes its pending buffers to live
  // sibling copies, and sends EOS downstream on its behalf so the rest of
  // the pipeline completes (degraded, with a precise report).
  std::thread watchdog;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_stop = false;
  std::vector<std::atomic<bool>> killed(shared.all.size());
  for (auto& k : killed) k.store(false);
  if (shared.opts.watchdog_deadline_ms > 0.0) {
    watchdog = std::thread([&] {
      const auto deadline_ns =
          static_cast<std::int64_t>(shared.opts.watchdog_deadline_ms * 1e6);
      const double poll_ms = shared.opts.watchdog_poll_ms > 0.0
                                 ? shared.opts.watchdog_poll_ms
                                 : shared.opts.watchdog_deadline_ms / 4.0;
      std::unique_lock lk(wd_mu);
      while (!wd_stop) {
        wd_cv.wait_for(lk, std::chrono::duration<double, std::milli>(poll_ms),
                       [&] { return wd_stop; });
        if (wd_stop || shared.aborted.load()) break;
        const std::int64_t now = ns_since(t0);
        for (std::size_t i = 0; i < shared.all.size(); ++i) {
          CopyRuntime* rt = shared.all[i];
          const std::int64_t b = rt->busy_since_ns.load(std::memory_order_acquire);
          if (b < 0 || now - b < deadline_ns) continue;
          if (rt->eos_sent.exchange(true)) continue;  // finished concurrently
          rt->declared_dead.store(true, std::memory_order_release);
          rt->inbox->close();
          // Drain pending buffers: data re-routes demand-driven to live
          // siblings; the dead copy's own EOS tokens are moot.
          auto& siblings = copies[static_cast<std::size_t>(rt->group)];
          while (std::optional<Envelope> env = rt->inbox->try_pop()) {
            if (!env->buffer) continue;
            // Bounded takeover attempts: a sibling that already sent EOS has
            // left its pop loop and would silently strand the buffer; a
            // sibling that never frees a slot must not wedge the watchdog.
            bool placed = false;
            for (int attempt = 0; attempt < 20 && !placed; ++attempt) {
              CopyRuntime* best = nullptr;
              std::size_t depth = 0;
              for (auto& s : siblings) {
                if (s.get() == rt || s->declared_dead.load(std::memory_order_acquire) ||
                    s->eos_sent.load(std::memory_order_acquire)) {
                  continue;
                }
                const std::size_t d = s->inbox->size();
                if (best == nullptr || d < depth) {
                  best = s.get();
                  depth = d;
                }
              }
              if (best == nullptr) break;  // no copy can still take work
              placed = best->inbox->push_for(Envelope{*env},
                                             std::chrono::milliseconds(100),
                                             false) == PushOutcome::Ok;
            }
            if (placed) continue;
            std::lock_guard rlk(shared.mu);
            shared.report.buffers_lost++;
          }
          // EOS downstream on the dead copy's behalf: consumers still see
          // the full expected producer count.
          for (EdgeRuntime* e : group_out[static_cast<std::size_t>(rt->group)]) {
            for (CopyRuntime* c : e->consumers) {
              (void)c->inbox->push(Envelope{e->spec->port, nullptr});
            }
          }
          killed[i].store(true);
          {
            std::lock_guard rlk(shared.mu);
            shared.report.watchdog_kills++;
            shared.report.incidents.push_back({CopyIncident::Kind::WatchdogKill,
                                               rt->stats.filter, rt->copy,
                                               "deadline exceeded"});
          }
          if (trace != nullptr) {
            trace->instant(rt->group, rt->copy, "watchdog_kill",
                           seconds_since(t0, Clock::now()), {});
          }
        }
      }
    });
  }

  for (std::thread& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard lk(wd_mu);
      wd_stop = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }
  if (canceller.joinable()) {
    {
      std::lock_guard lk(cx_mu);
      cx_stop = true;
    }
    cx_cv.notify_all();
    canceller.join();
  }
  if (cancelled.load()) {
    // Leftover in-flight buffers are intentionally dropped on the floor of
    // their inboxes; no partial results escaped and the manifest is intact.
    for (CopyRuntime* c : shared.all) {
      while (c->inbox->try_pop()) {
      }
    }
    throw CancelledError("run cancelled");
  }
  if (shared.first_error) std::rethrow_exception(shared.first_error);

  // Anything still sitting in an inbox after every copy joined was never
  // processed — e.g. a takeover buffer that raced a sibling's shutdown. Fold
  // it into the loss inventory so the degraded-run report stays exact.
  for (CopyRuntime* c : shared.all) {
    while (std::optional<Envelope> env = c->inbox->try_pop()) {
      if (env->buffer) shared.report.buffers_lost++;
    }
  }

  RunStats out;
  out.total_seconds = seconds_since(t0, Clock::now());
  out.exec = shared.report;
  out.exec.queue_impl = std::string(queue_impl_name(options.queue));
  std::size_t idx = 0;
  for (auto& group : copies) {
    for (auto& c : group) {
      const QueueStats q = c->inbox->stats();
      c->stats.max_inbox = q.max_depth;
      c->stats.enqueue_stall_seconds = q.stall_seconds;
      c->stats.stalled_pushes = q.stalled_pushes;
      out.exec.queue_stalled_pushes += q.stalled_pushes;
      out.exec.queue_stall_seconds += q.stall_seconds;
      out.exec.queue_max_depth =
          std::max(out.exec.queue_max_depth, static_cast<std::int64_t>(q.max_depth));
      // Folded after join to keep the meter single-writer during the run.
      if (killed[idx].load()) c->stats.meter.watchdog_kills = 1;
      idx++;
      out.copies.push_back(c->stats);
    }
  }
  return out;
}

}  // namespace h4d::fs
