// Lock-free bounded MPMC queue: the --queue=mpmc fast path for the threaded
// executor's filter inboxes (DESIGN §13).
//
// The fast path is the classic array-of-slots protocol with per-slot
// sequence numbers (Vyukov): producers claim positions with one CAS on the
// enqueue cursor and publish with one release store of the slot's sequence;
// consumers mirror it on the dequeue cursor. No mutex, fence, or wake is
// touched while the queue is neither emptying nor filling up, which is
// where the runtime lives when copy counts are balanced — the mutex+condvar
// BoundedQueue serializes every handoff through one lock and convoys once
// the ROI kernel is in single-digit microseconds.
//
// The blocked paths (full producers, empty consumers) park on a mutex +
// condvar pair, which on Linux bottoms out in futex wait/wake. Wakes are
// edge-triggered: a publish notifies consumers only when it is the
// empty->non-empty transition (the claimed position equals the dequeue
// cursor), and a pop notifies producers only when it may be the
// full->not-full transition (the enqueue cursor is at least capacity ahead
// of the freed position — covering racing claims and, on rings larger than
// the logical capacity, the slot-recycle wait) — steady streaming issues
// no wakes at all. Each transition uses
// the Dekker handshake: a parker increments its waiter count, fences, and
// rechecks the slot protocol before sleeping; a waker publishes, fences,
// and only takes the park mutex when a waiter count is visible — so a
// wakeup is either observed or unnecessary. Because one transition wakes
// one waiter, a woken thread passes the baton: if it made progress and
// peers are still parked with room/items left, it re-notifies.
//
// close()-then-drain matches BoundedQueue exactly, including against
// concurrent pushes: close() seals the enqueue cursor by setting a high
// bit with one fetch_or, after which no claim can ever succeed (the claim
// CAS fails and the reload sees the seal). A consumer reports "closed and
// drained" only after seeing the seal and a dequeue cursor that has caught
// up with the sealed claim count — claimed-but-unpublished slots are
// drained with bounded waits, so an in-flight publish can never strand an
// item behind a nullopt.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <thread>
#include <utility>

#include "fs/queue.hpp"

namespace h4d::fs {

namespace detail {
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace detail

template <typename T>
class MpmcQueue {
 public:
  static constexpr QueueImpl kImpl = QueueImpl::Mpmc;

  // The ring never has fewer than two slots, even at capacity 1: with a
  // single-slot ring the publish store (seq = pos+1) and the recycle store
  // (seq = pos+ring_) write the same value, so the next lap's claim can be
  // enabled by the *publish* while the consumer is still moving the item
  // out of the slot (its only ordering would be the dequeue-cursor CAS,
  // which is relaxed and precedes the read). With ring_ >= 2 the value a
  // claim waits for is written only by the recycling pop, after its read,
  // with release — pairing with the claimer's acquire seq load.
  explicit MpmcQueue(std::size_t capacity = 64)
      : capacity_(capacity ? capacity : 1),
        ring_(next_pow2(std::max<std::size_t>(capacity_, 2))),
        mask_(ring_ - 1),
        slots_(std::make_unique<Slot[]>(ring_)) {
    for (std::uint64_t i = 0; i < ring_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpmcQueue() {
    // Destroy whatever is still in flight; no concurrent access by now.
    std::uint64_t pos = 0;
    while (try_pop_slot(pos)) {
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while full; returns false when the queue was closed.
  bool push(T item) {
    std::uint64_t pos = 0;
    for (int i = 0; i < kSpinAttempts; ++i) {
      switch (try_push_slot(item, pos)) {
        case TrySlot::Done:
          maybe_wake_pop(pos);
          return true;
        case TrySlot::Closed:
          return false;
        case TrySlot::Blocked:
          break;
      }
      detail::cpu_relax();
    }
    // Slow path: the queue was full on arrival — park until a consumer
    // frees a slot or the queue closes. Accounted like BoundedQueue's wait.
    const StallTimer timer;
    bool pushed = false;
    {
      std::unique_lock lk(park_mu_);
      push_waiters_.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      for (;;) {
        const TrySlot r = try_push_slot(item, pos);
        if (r == TrySlot::Done) {
          pushed = true;
          break;
        }
        if (r == TrySlot::Closed) break;
        not_full_cv_.wait(lk);
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
      push_waiters_.fetch_sub(1, std::memory_order_relaxed);
      // Baton: a transition wakes one producer; if there is room for more
      // and peers are still parked, pass the wake along.
      if (pushed && push_waiters_.load(std::memory_order_relaxed) > 0 && !looks_full()) {
        not_full_cv_.notify_one();
      }
    }
    record_stall(timer, /*count_stall=*/true);
    if (pushed) maybe_wake_pop(pos);
    return pushed;
  }

  /// Like push(), but gives up after `timeout` when the queue stays full.
  /// `count_stall` matches BoundedQueue: a caller retrying in slices counts
  /// the stall once; the waited time always accumulates.
  template <typename Rep, typename Period>
  PushOutcome push_for(T item, std::chrono::duration<Rep, Period> timeout,
                       bool count_stall = true) {
    std::uint64_t pos = 0;
    switch (try_push_slot(item, pos)) {
      case TrySlot::Done:
        maybe_wake_pop(pos);
        return PushOutcome::Ok;
      case TrySlot::Closed:
        return PushOutcome::Closed;
      case TrySlot::Blocked:
        break;
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    const StallTimer timer;
    PushOutcome out = PushOutcome::Timeout;
    {
      std::unique_lock lk(park_mu_);
      push_waiters_.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      for (;;) {
        const TrySlot r = try_push_slot(item, pos);
        if (r == TrySlot::Done) {
          out = PushOutcome::Ok;
          break;
        }
        if (r == TrySlot::Closed) {
          out = PushOutcome::Closed;
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) break;
        not_full_cv_.wait_until(lk, deadline);
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
      push_waiters_.fetch_sub(1, std::memory_order_relaxed);
      if (out == PushOutcome::Ok && push_waiters_.load(std::memory_order_relaxed) > 0 &&
          !looks_full()) {
        not_full_cv_.notify_one();
      }
    }
    record_stall(timer, count_stall);
    if (out == PushOutcome::Ok) maybe_wake_pop(pos);
    return out;
  }

  /// Non-blocking pop: an item, or nullopt when currently empty (regardless
  /// of closed state). Watchdog drains rely on this never blocking.
  std::optional<T> try_pop() {
    std::uint64_t pos = 0;
    std::optional<T> out = try_pop_slot(pos);
    if (out) maybe_wake_push(pos);
    return out;
  }

  /// Blocks while empty; returns nullopt when closed and drained.
  std::optional<T> pop() {
    std::uint64_t pos = 0;
    for (int i = 0; i < kSpinAttempts; ++i) {
      if (std::optional<T> out = try_pop_slot(pos)) {
        maybe_wake_push(pos);
        return out;
      }
      if (drained_forever()) return std::nullopt;
      detail::cpu_relax();
    }
    std::optional<T> out;
    {
      std::unique_lock lk(park_mu_);
      pop_waiters_.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      for (;;) {
        if ((out = try_pop_slot(pos))) break;
        if (drained_forever()) break;
        if (sealed()) {
          // Sealed, but a claim that beat the seal may still be publishing:
          // bounded wait, then recheck. That window is a few instructions
          // wide in the producer.
          not_empty_cv_.wait_for(lk, std::chrono::microseconds(100));
        } else {
          not_empty_cv_.wait(lk);
        }
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
      pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
      // Baton: if items remain and peers are still parked, pass the wake.
      if (out && pop_waiters_.load(std::memory_order_relaxed) > 0 && size() > 0) {
        not_empty_cv_.notify_one();
      }
    }
    if (out) maybe_wake_push(pos);
    return out;
  }

  /// After close(), push() fails and pop() drains the remaining items.
  void close() {
    enq_pos_.fetch_or(kSeal, std::memory_order_seq_cst);
    std::lock_guard lk(park_mu_);
    not_full_cv_.notify_all();
    not_empty_cv_.notify_all();
  }

  std::size_t size() const {
    // Two racing loads; clamped so a torn snapshot stays in range.
    const std::uint64_t deq = deq_pos_.load(std::memory_order_acquire);
    const std::uint64_t enq = enq_pos_.load(std::memory_order_acquire) & ~kSeal;
    const std::int64_t d = static_cast<std::int64_t>(enq - deq);
    if (d <= 0) return 0;
    return std::min(static_cast<std::size_t>(d), capacity_);
  }

  std::size_t capacity() const { return capacity_; }

  /// Snapshot of the backpressure counters accumulated so far.
  QueueStats stats() const {
    QueueStats s;
    s.max_depth = static_cast<std::size_t>(max_depth_.load(std::memory_order_relaxed));
    s.stalled_pushes = stalled_pushes_.load(std::memory_order_relaxed);
    s.stall_seconds =
        static_cast<double>(stall_ns_.load(std::memory_order_relaxed)) * 1e-9;
    return s;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  enum class TrySlot { Done, Blocked, Closed };

  /// close() ORs this into the enqueue cursor; every later claim attempt
  /// sees it (directly, or via its CAS failing and reloading) and reports
  /// Closed. Unreachable by counting: 2^63 pushes.
  static constexpr std::uint64_t kSeal = 1ull << 63;

  static constexpr int kSpinAttempts = 16;

  static std::uint64_t next_pow2(std::size_t v) {
    std::uint64_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  TrySlot try_push_slot(T& item, std::uint64_t& out_pos) {
    std::uint64_t pos = enq_pos_.load(std::memory_order_relaxed);
    for (;;) {
      if (pos & kSeal) return TrySlot::Closed;
      // Exact backpressure depth: the ring is rounded up to a power of two,
      // so fullness is gated on the logical capacity, not the ring size. A
      // stale dequeue cursor can only under-report free slots (it is
      // monotonic), which errs toward a spurious Blocked — the parking
      // layer's recheck resolves it.
      if (pos - deq_pos_.load(std::memory_order_acquire) >= capacity_) {
        return TrySlot::Blocked;
      }
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq - pos);
      if (dif == 0) {
        if (enq_pos_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          ::new (static_cast<void*>(s.storage)) T(std::move(item));
          s.seq.store(pos + 1, std::memory_order_release);
          // Racing consumers may already have popped past pos+1 by the
          // time the dequeue cursor is read here, driving the difference
          // negative — skip those (the queue got shallower, not deeper).
          const auto depth =
              static_cast<std::int64_t>(pos + 1 - deq_pos_.load(std::memory_order_relaxed));
          if (depth > 0) note_depth(static_cast<std::uint64_t>(depth));
          out_pos = pos;
          return TrySlot::Done;
        }
        // CAS failure reloaded pos — the loop re-examines it (seal included).
      } else if (dif < 0) {
        return TrySlot::Blocked;  // slot not yet recycled: ring full
      } else {
        pos = enq_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  std::optional<T> try_pop_slot(std::uint64_t& out_pos) {
    std::uint64_t pos = deq_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq - (pos + 1));
      if (dif == 0) {
        if (deq_pos_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          T* p = std::launder(reinterpret_cast<T*>(s.storage));
          std::optional<T> out(std::move(*p));
          p->~T();
          s.seq.store(pos + ring_, std::memory_order_release);
          out_pos = pos;
          return out;
        }
      } else if (dif < 0) {
        return std::nullopt;  // next slot not yet published: empty
      } else {
        pos = deq_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  bool sealed() const {
    return (enq_pos_.load(std::memory_order_seq_cst) & kSeal) != 0;
  }

  /// Conclusive "closed and drained": once the enqueue cursor is sealed no
  /// claim can ever succeed, so a dequeue cursor that reached the sealed
  /// claim count proves the queue is empty forever. While the dequeue
  /// cursor is short of it, claimed slots remain — possibly mid-publish —
  /// and the caller must keep popping (with bounded waits).
  bool drained_forever() const {
    const std::uint64_t enq = enq_pos_.load(std::memory_order_seq_cst);
    if (!(enq & kSeal)) return false;
    return deq_pos_.load(std::memory_order_seq_cst) == (enq & ~kSeal);
  }

  /// Racy fullness hint for the wake baton; a spurious wake is resolved by
  /// the woken producer's own recheck.
  bool looks_full() const {
    const std::uint64_t enq = enq_pos_.load(std::memory_order_relaxed) & ~kSeal;
    return enq - deq_pos_.load(std::memory_order_relaxed) >= capacity_;
  }

  void note_depth(std::uint64_t depth) {
    std::uint64_t cur = max_depth_.load(std::memory_order_relaxed);
    while (depth > cur &&
           !max_depth_.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
    }
  }

  void record_stall(const StallTimer& timer, bool count_stall) {
    if (count_stall) stalled_pushes_.fetch_add(1, std::memory_order_relaxed);
    stall_ns_.fetch_add(static_cast<std::int64_t>(timer.seconds() * 1e9),
                        std::memory_order_relaxed);
  }

  /// Edge-triggered consumer wake after publishing position `pos`: only the
  /// empty->non-empty transition (dequeue cursor still at `pos`) can have a
  /// consumer parked with nothing to recheck. If the cursor moved past, a
  /// consumer is demonstrably active; if older positions are unconsumed,
  /// their publishers own the transition. Only the transition branch pays
  /// the Dekker fence (publish happened-before the fence; only touch the
  /// park mutex when a waiter is visible).
  void maybe_wake_pop(std::uint64_t pos) {
    if (deq_pos_.load(std::memory_order_acquire) != pos) return;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (pop_waiters_.load(std::memory_order_relaxed) == 0) return;
    std::lock_guard lk(park_mu_);
    not_empty_cv_.notify_one();
  }

  /// Edge-triggered producer wake after consuming position `pos`. A parked
  /// producer is waiting either on backpressure (enqueue cursor `capacity_`
  /// ahead of the dequeue cursor) or, when the ring is larger than the
  /// logical capacity, on the slot recycle of `pos` itself (the dif<0 path:
  /// the producer's claim target is `pos + ring_`, same slot). Both depend
  /// on this pop, and a claim racing between our seq store and the enqueue
  /// load can push the observed distance past `capacity_` — so treat any
  /// pop that observed the queue at-or-beyond capacity (relative to the
  /// freed position) as a potential full->not-full transition. Pops below
  /// that bound cannot be the unparking edge: a producer parked after them
  /// rechecks behind its own Dekker fence and sees the room they freed.
  /// Steady streaming (enq - pos < capacity_) still skips the fence.
  void maybe_wake_push(std::uint64_t pos) {
    const std::uint64_t enq = enq_pos_.load(std::memory_order_acquire) & ~kSeal;
    if (enq - pos < capacity_) return;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (push_waiters_.load(std::memory_order_relaxed) == 0) return;
    std::lock_guard lk(park_mu_);
    not_full_cv_.notify_one();
  }

  const std::size_t capacity_;
  const std::uint64_t ring_;  ///< slot count: next_pow2(capacity_)
  const std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;

  alignas(64) std::atomic<std::uint64_t> enq_pos_{0};
  alignas(64) std::atomic<std::uint64_t> deq_pos_{0};

  // Parking layer (slow paths and transitions only).
  alignas(64) std::atomic<int> push_waiters_{0};
  std::atomic<int> pop_waiters_{0};
  mutable std::mutex park_mu_;
  std::condition_variable not_full_cv_;
  std::condition_variable not_empty_cv_;

  // Stats via relaxed atomics; see QueueStats.
  std::atomic<std::uint64_t> max_depth_{0};
  std::atomic<std::int64_t> stalled_pushes_{0};
  std::atomic<std::int64_t> stall_ns_{0};
};

/// Builds the inbox implementation a run selected (--queue=locked|mpmc).
template <typename T>
std::unique_ptr<QueueInterface<T>> make_queue(QueueImpl impl, std::size_t capacity) {
  switch (impl) {
    case QueueImpl::Locked:
      return std::make_unique<QueueAdapter<T, BoundedQueue<T>>>(capacity);
    case QueueImpl::Mpmc:
      return std::make_unique<QueueAdapter<T, MpmcQueue<T>>>(capacity);
  }
  throw std::invalid_argument("make_queue: unknown QueueImpl");
}

}  // namespace h4d::fs
