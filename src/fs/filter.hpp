// The filter programming model (paper Sec. 4.1).
//
// An application is a set of filters connected by unidirectional streams.
// A filter receives buffers on input ports, performs work, and emits buffers
// on output ports. Filters may be replicated into transparent copies; the
// runtime distributes buffers among copies by scheduling policy. The same
// Filter subclasses run unchanged under the threaded executor (real
// parallelism) and the cluster simulator (virtual time).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "fs/buffer.hpp"
#include "fs/meter.hpp"

namespace h4d::fs {

/// Runtime services available to a filter while it executes.
class FilterContext {
 public:
  virtual ~FilterContext() = default;

  /// Emit a buffer on an output port. Ownership is shared; a co-located
  /// consumer receives the same object (pointer copy), a remote consumer's
  /// executor charges serialization + transport for wire_bytes().
  virtual void emit(int port, BufferPtr buffer) = 0;

  /// Index of this transparent copy within its filter group, [0, num_copies).
  virtual int copy_index() const = 0;
  virtual int num_copies() const = 0;

  /// Work meter for this copy; filters credit the operations they perform.
  virtual WorkMeter& meter() = 0;
};

/// Base class of all filters.
///
/// Lifecycle per copy: if the filter has no input streams, run_source() is
/// called exactly once. Otherwise process() is called once per received
/// buffer (single-threaded per copy), and flush() once after every upstream
/// producer has finished.
class Filter {
 public:
  virtual ~Filter() = default;

  virtual std::string_view name() const = 0;

  /// Drive a source filter (no input streams). Default: nothing.
  virtual void run_source(FilterContext& ctx) { (void)ctx; }

  /// Handle one buffer arriving on `port`.
  virtual void process(int port, const BufferPtr& buffer, FilterContext& ctx) {
    (void)port;
    (void)buffer;
    (void)ctx;
  }

  /// Called once after all inputs are exhausted; emit any pending output.
  virtual void flush(FilterContext& ctx) { (void)ctx; }
};

using FilterFactory = std::function<std::unique_ptr<Filter>()>;

}  // namespace h4d::fs
