#include "fs/supervisor.hpp"

#include <sstream>
#include <stdexcept>

namespace h4d::fs {

std::string_view supervise_policy_name(SupervisePolicy p) {
  switch (p) {
    case SupervisePolicy::FailFast:
      return "fail_fast";
    case SupervisePolicy::RestartCopy:
      return "restart_copy";
    case SupervisePolicy::Quarantine:
      return "quarantine";
  }
  return "?";
}

SupervisePolicy supervise_policy_from_name(const std::string& name) {
  if (name == "fail" || name == "fail_fast") return SupervisePolicy::FailFast;
  if (name == "restart" || name == "restart_copy") return SupervisePolicy::RestartCopy;
  if (name == "quarantine") return SupervisePolicy::Quarantine;
  throw std::runtime_error("unknown supervise policy: " + name +
                           " (expected fail|restart|quarantine)");
}

std::string_view incident_kind_name(CopyIncident::Kind k) {
  switch (k) {
    case CopyIncident::Kind::Restart:
      return "restart";
    case CopyIncident::Kind::WatchdogKill:
      return "watchdog_kill";
    case CopyIncident::Kind::Fatal:
      return "fatal";
  }
  return "?";
}

std::string ExecutionReport::summary() const {
  std::ostringstream os;
  os << copy_restarts << " copy restarts, " << chunks_quarantined << " quarantined, "
     << watchdog_kills << " watchdog kills, " << buffers_lost << " buffers lost, "
     << chunks_resumed << " chunks resumed";
  if (replica_failovers > 0 || nodes_evicted > 0) {
    os << ", " << replica_failovers << " replica failovers, " << nodes_evicted
       << " node evictions";
  }
  return os.str();
}

}  // namespace h4d::fs
