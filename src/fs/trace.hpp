// Chrome-trace-format recorder for filter-copy activity.
//
// Both executors can record filter-copy activity spans (process/flush/source
// calls) and buffer handoffs into a TraceRecorder; write_json() emits the
// Trace Event Format JSON that chrome://tracing and Perfetto load directly.
// Filter groups map to trace "processes" (pid), copies to "threads" (tid).
// Timestamps are seconds — wall time since run start for the threaded
// executor, virtual time for the simulator — converted to microseconds on
// output. See docs/OBSERVABILITY.md for the file format reference.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace h4d::fs {

class TraceRecorder {
 public:
  using Args = std::vector<std::pair<std::string, std::int64_t>>;

  /// Complete span ("X" event): `dur` seconds of activity starting at `ts`.
  void span(int pid, int tid, std::string name, double ts, double dur, Args args = {});

  /// Instant event ("i", thread-scoped) — e.g. a buffer handoff.
  void instant(int pid, int tid, std::string name, double ts, Args args = {});

  /// Counter event ("C") — e.g. an inbox depth sample.
  void counter(int pid, std::string name, double ts, std::int64_t value);

  /// Names shown by the viewer for a filter group / one of its copies.
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  bool empty() const;
  std::size_t event_count() const;

  /// Emits {"displayTimeUnit": "ms", "traceEvents": [...]}.
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    char phase;  // 'X', 'i' or 'C'
    int pid = 0;
    int tid = 0;
    double ts = 0.0;   // seconds
    double dur = 0.0;  // seconds, spans only
    std::string name;
    Args args;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
};

/// write_json() to `path`; throws std::runtime_error when the file cannot be
/// written.
void write_trace_file(const std::filesystem::path& path, const TraceRecorder& trace);

}  // namespace h4d::fs
