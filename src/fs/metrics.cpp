#include "fs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace h4d::fs {

namespace {

std::string fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// JSON number for a double: fixed 9-digit precision covers sub-ns times
/// without scientific notation (some strict parsers dislike it in schemas).
void jnum(std::ostream& os, double v) {
  os << std::fixed << std::setprecision(9) << v << std::defaultfloat
     << std::setprecision(6);
}

void jstr(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_meter_object(std::ostream& os, const WorkMeter& m) {
  os << "{";
  bool first = true;
  WorkMeter::for_each_field(m, [&](std::string_view name, std::int64_t v) {
    if (!first) os << ", ";
    first = false;
    jstr(os, name);
    os << ": " << v;
  });
  os << "}";
}

void write_timing_fields(std::ostream& os, double busy, double blocked_in,
                         double blocked_out, double enqueue_stall,
                         std::int64_t stalled_pushes, std::size_t max_inbox,
                         double finish) {
  os << "\"busy_seconds\": ";
  jnum(os, busy);
  os << ", \"blocked_input_seconds\": ";
  jnum(os, blocked_in);
  os << ", \"blocked_output_seconds\": ";
  jnum(os, blocked_out);
  os << ", \"enqueue_stall_seconds\": ";
  jnum(os, enqueue_stall);
  os << ", \"stalled_pushes\": " << stalled_pushes
     << ", \"max_inbox\": " << max_inbox << ", \"finish_time\": ";
  jnum(os, finish);
}

}  // namespace

BottleneckReport analyze_bottleneck(const RunStats& stats) {
  BottleneckReport r;
  r.makespan = stats.total_seconds;

  for (const CopyStats& c : stats.copies) {
    auto it = std::find_if(r.filters.begin(), r.filters.end(),
                           [&](const FilterMetrics& f) { return f.filter == c.filter; });
    if (it == r.filters.end()) {
      r.filters.push_back(FilterMetrics{});
      it = std::prev(r.filters.end());
      it->filter = c.filter;
    }
    it->copies++;
    it->meter += c.meter;
    it->busy_seconds += c.busy_seconds;
    it->blocked_input_seconds += c.blocked_input_seconds;
    it->blocked_output_seconds += c.blocked_output_seconds;
    it->enqueue_stall_seconds += c.enqueue_stall_seconds;
    it->stalled_pushes += c.stalled_pushes;
    it->max_inbox = std::max(it->max_inbox, c.max_inbox);
    it->finish_time = std::max(it->finish_time, c.finish_time);
  }

  for (FilterMetrics& f : r.filters) {
    const double span = r.makespan * f.copies;
    f.utilization = span > 0.0 ? f.busy_seconds / span : 0.0;
    f.output_stall_fraction = span > 0.0 ? f.blocked_output_seconds / span : 0.0;
    if (f.utilization > r.bound_utilization) {
      r.bound_utilization = f.utilization;
      r.bound_filter = f.filter;
    }
    if (f.meter.bytes_out > r.dominant_stream_bytes) {
      r.dominant_stream_bytes = f.meter.bytes_out;
      r.dominant_stream_filter = f.filter;
    }
  }

  // Verdict: who is the bound stage, and is the rest of the pipeline
  // backpressured on it (the paper Fig. 9 / Fig. 7(b) plateau analysis)?
  std::ostringstream v;
  if (r.filters.empty() || r.makespan <= 0.0) {
    v << "no data";
  } else if (r.bound_utilization < 0.5) {
    v << "balanced: no filter dominates (max utilization "
      << fmt(r.bound_utilization * 100, 1) << "% at " << r.bound_filter
      << "); the run is likely bound by stream traffic or startup/drain";
  } else {
    double upstream_stall = 0.0;
    for (const FilterMetrics& f : r.filters) {
      if (f.filter != r.bound_filter) upstream_stall += f.blocked_output_seconds;
    }
    v << r.bound_filter << "-bound: utilization "
      << fmt(r.bound_utilization * 100, 1) << "%";
    if (upstream_stall > 0.1 * r.makespan) {
      v << "; other filters spent " << fmt(upstream_stall) << " s blocked on full "
        << "downstream inboxes / sends (pipeline backpressured on " << r.bound_filter
        << ")";
    } else {
      v << "; upstream filters are not significantly backpressured (compute-bound "
        << "stage, adding " << r.bound_filter << " copies should help)";
    }
  }
  r.verdict = v.str();
  return r;
}

void print_bottleneck_report(std::ostream& os, const BottleneckReport& report) {
  os << "bottleneck report (makespan " << fmt(report.makespan) << " s):\n";
  os << "  " << std::left << std::setw(10) << "filter" << std::right << std::setw(7)
     << "copies" << std::setw(10) << "busy(s)" << std::setw(7) << "util" << std::setw(11)
     << "blk-in(s)" << std::setw(12) << "blk-out(s)" << std::setw(10) << "stall(s)"
     << std::setw(7) << "max-q" << std::setw(12) << "bytes-out" << "\n";
  for (const FilterMetrics& f : report.filters) {
    os << "  " << std::left << std::setw(10) << f.filter << std::right << std::setw(7)
       << f.copies << std::setw(10) << fmt(f.busy_seconds) << std::setw(6)
       << fmt(f.utilization * 100, 0) << "%" << std::setw(11)
       << fmt(f.blocked_input_seconds) << std::setw(12) << fmt(f.blocked_output_seconds)
       << std::setw(10) << fmt(f.enqueue_stall_seconds) << std::setw(7) << f.max_inbox
       << std::setw(12) << f.meter.bytes_out << "\n";
  }
  if (!report.dominant_stream_filter.empty()) {
    os << "  dominant stream: " << report.dominant_stream_filter << " emits "
       << report.dominant_stream_bytes << " bytes\n";
  }
  os << "  verdict: " << report.verdict << "\n";
}

void write_metrics_object(std::ostream& os, const RunStats& stats,
                          const BottleneckReport& report, const MetricsExtra& extra) {
  os << "{\"schema\": \"h4d-metrics-v1\", \"makespan_seconds\": ";
  jnum(os, stats.total_seconds);

  os << ",\n \"filters\": [";
  for (std::size_t i = 0; i < report.filters.size(); ++i) {
    const FilterMetrics& f = report.filters[i];
    os << (i ? ",\n   " : "\n   ") << "{\"filter\": ";
    jstr(os, f.filter);
    os << ", \"copies\": " << f.copies << ", ";
    write_timing_fields(os, f.busy_seconds, f.blocked_input_seconds,
                        f.blocked_output_seconds, f.enqueue_stall_seconds,
                        f.stalled_pushes, f.max_inbox, f.finish_time);
    os << ", \"utilization\": ";
    jnum(os, f.utilization);
    os << ", \"output_stall_fraction\": ";
    jnum(os, f.output_stall_fraction);
    os << ", \"meter\": ";
    write_meter_object(os, f.meter);
    os << "}";
  }
  os << "],\n \"copies\": [";
  for (std::size_t i = 0; i < stats.copies.size(); ++i) {
    const CopyStats& c = stats.copies[i];
    os << (i ? ",\n   " : "\n   ") << "{\"filter\": ";
    jstr(os, c.filter);
    os << ", \"copy\": " << c.copy << ", \"node\": " << c.node << ", ";
    write_timing_fields(os, c.busy_seconds, c.blocked_input_seconds,
                        c.blocked_output_seconds, c.enqueue_stall_seconds,
                        c.stalled_pushes, c.max_inbox, c.finish_time);
    os << ", \"meter\": ";
    write_meter_object(os, c.meter);
    os << "}";
  }
  os << "],\n \"bottleneck\": {\"bound_filter\": ";
  jstr(os, report.bound_filter);
  os << ", \"bound_utilization\": ";
  jnum(os, report.bound_utilization);
  os << ", \"dominant_stream_filter\": ";
  jstr(os, report.dominant_stream_filter);
  os << ", \"dominant_stream_bytes\": " << report.dominant_stream_bytes
     << ", \"verdict\": ";
  jstr(os, report.verdict);
  os << "}";
  os << ",\n \"execution\": {\"copy_restarts\": " << stats.exec.copy_restarts
     << ", \"chunks_quarantined\": " << stats.exec.chunks_quarantined
     << ", \"watchdog_kills\": " << stats.exec.watchdog_kills
     << ", \"buffers_lost\": " << stats.exec.buffers_lost
     << ", \"chunks_resumed\": " << stats.exec.chunks_resumed
     << ", \"replica_failovers\": " << stats.exec.replica_failovers
     << ", \"nodes_evicted\": " << stats.exec.nodes_evicted << ", \"queue_impl\": ";
  jstr(os, stats.exec.queue_impl);
  os << ", \"queue_stalled_pushes\": " << stats.exec.queue_stalled_pushes
     << ", \"queue_stall_seconds\": ";
  jnum(os, stats.exec.queue_stall_seconds);
  os << ", \"queue_max_depth\": " << stats.exec.queue_max_depth
     << ", \"quarantined\": [";
  for (std::size_t i = 0; i < stats.exec.quarantined.size(); ++i) {
    const QuarantinedBuffer& q = stats.exec.quarantined[i];
    os << (i ? ", " : "") << "{\"filter\": ";
    jstr(os, q.filter);
    os << ", \"copy\": " << q.copy << ", \"port\": " << q.port
       << ", \"chunk_id\": " << q.chunk_id << ", \"seq\": " << q.seq
       << ", \"from_copy\": " << q.from_copy << ", \"region\": ";
    jstr(os, q.region.str());
    os << ", \"reason\": ";
    jstr(os, q.reason);
    os << "}";
  }
  os << "], \"incidents\": [";
  for (std::size_t i = 0; i < stats.exec.incidents.size(); ++i) {
    const CopyIncident& inc = stats.exec.incidents[i];
    os << (i ? ", " : "") << "{\"kind\": ";
    jstr(os, incident_kind_name(inc.kind));
    os << ", \"filter\": ";
    jstr(os, inc.filter);
    os << ", \"copy\": " << inc.copy << ", \"error\": ";
    jstr(os, inc.error);
    os << "}";
  }
  os << "]}";
  if (stats.cache.present) {
    const CacheReport& c = stats.cache;
    os << ",\n \"cache\": {\"policy\": ";
    jstr(os, c.policy);
    os << ", \"budget_bytes\": " << c.budget_bytes << ", \"tile_w\": " << c.tile_w
       << ", \"tile_h\": " << c.tile_h << ", \"prefetch_depth\": " << c.prefetch_depth
       << ", \"lookups\": " << c.lookups << ", \"hits\": " << c.hits
       << ", \"misses\": " << c.misses << ", \"bytes_read_disk\": " << c.bytes_read_disk
       << ", \"bytes_served_cache\": " << c.bytes_served_cache
       << ", \"prefetch_issued\": " << c.prefetch_issued
       << ", \"prefetch_useful\": " << c.prefetch_useful
       << ", \"evictions\": " << c.evictions
       << ", \"resident_bytes\": " << c.resident_bytes << "}";
  }
  if (stats.tail.present) {
    const TailReport& t = stats.tail;
    os << ",\n \"io_tail\": {\"deadline_mode\": ";
    jstr(os, t.deadline_mode);
    os << ", \"deadline_ms\": ";
    jnum(os, t.deadline_ms);
    os << ", \"deadline_k\": ";
    jnum(os, t.deadline_k);
    os << ", \"deadline_floor_ms\": ";
    jnum(os, t.deadline_floor_ms);
    os << ", \"deadline_ceiling_ms\": ";
    jnum(os, t.deadline_ceiling_ms);
    os << ", \"hedge_enabled\": " << (t.hedge_enabled ? "true" : "false")
       << ", \"hedge_pct\": ";
    jnum(os, t.hedge_pct);
    os << ", \"hedge_max_inflight\": " << t.hedge_max_inflight
       << ", \"reads\": " << t.reads << ", \"hedges_issued\": " << t.hedges_issued
       << ", \"hedges_won\": " << t.hedges_won
       << ", \"hedges_abandoned\": " << t.hedges_abandoned
       << ", \"reads_abandoned\": " << t.reads_abandoned
       << ", \"breaches\": " << t.breaches
       << ", \"evictions_slow\": " << t.evictions_slow << ", \"nodes\": [";
    for (std::size_t i = 0; i < t.nodes.size(); ++i) {
      const TailNodeRow& n = t.nodes[i];
      os << (i ? ", " : "") << "{\"node\": " << n.node << ", \"reads\": " << n.reads
         << ", \"ewma_ms\": ";
      jnum(os, n.ewma_ms);
      os << ", \"p50_ms\": ";
      jnum(os, n.p50_ms);
      os << ", \"p99_ms\": ";
      jnum(os, n.p99_ms);
      os << ", \"breaches\": " << n.breaches << "}";
    }
    os << "], \"evictions\": [";
    for (std::size_t i = 0; i < t.evictions.size(); ++i) {
      os << (i ? ", " : "") << "{\"node\": " << t.evictions[i].node
         << ", \"reason\": ";
      jstr(os, t.evictions[i].reason);
      os << "}";
    }
    os << "]}";
  }
  if (!extra.empty()) {
    os << ",\n \"extra\": {";
    for (std::size_t i = 0; i < extra.size(); ++i) {
      if (i) os << ", ";
      jstr(os, extra[i].first);
      os << ": ";
      jnum(os, extra[i].second);
    }
    os << "}";
  }
  os << "}";
}

void write_metrics_csv(std::ostream& os, const RunStats& stats) {
  os << "filter,copy,node,busy_seconds,blocked_input_seconds,blocked_output_seconds,"
        "enqueue_stall_seconds,stalled_pushes,max_inbox,finish_time";
  for (const std::string_view name : WorkMeter::kFieldNames) os << "," << name;
  os << "\n";
  for (const CopyStats& c : stats.copies) {
    os << c.filter << "," << c.copy << "," << c.node << ",";
    jnum(os, c.busy_seconds);
    os << ",";
    jnum(os, c.blocked_input_seconds);
    os << ",";
    jnum(os, c.blocked_output_seconds);
    os << ",";
    jnum(os, c.enqueue_stall_seconds);
    os << "," << c.stalled_pushes << "," << c.max_inbox << ",";
    jnum(os, c.finish_time);
    WorkMeter::for_each_field(c.meter,
                              [&](std::string_view, std::int64_t v) { os << "," << v; });
    os << "\n";
  }
}

void write_metrics_file(const std::filesystem::path& path, const RunStats& stats,
                        const MetricsExtra& extra) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("metrics: cannot write " + path.string());
  if (path.extension() == ".csv") {
    write_metrics_csv(os, stats);
  } else {
    write_metrics_object(os, stats, analyze_bottleneck(stats), extra);
    os << "\n";
  }
}

}  // namespace h4d::fs
