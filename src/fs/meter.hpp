// Per-filter-copy work accounting.
//
// Filters report the elementary operations they perform (GLCM updates,
// feature ops, bytes copied, disk activity). The threaded executor uses the
// meter for reporting; the cluster simulator converts meter deltas into
// virtual execution time through a CostModel. The metrics exporter
// (fs/metrics) serializes every field by name — docs/OBSERVABILITY.md is the
// field reference.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <tuple>
#include <utility>

#include "haralick/glcm.hpp"

namespace h4d::fs {

struct WorkMeter {
  haralick::WorkCounters work;            ///< texture math operations
  std::int64_t bytes_memcpy = 0;          ///< buffer (re)assembly copies
  std::int64_t stitch_elements = 0;       ///< IIC chunk-reorganization element ops
  std::int64_t elements_quantized = 0;    ///< requantization work
  std::int64_t disk_bytes_read = 0;
  std::int64_t disk_seeks = 0;
  std::int64_t disk_bytes_written = 0;
  std::int64_t read_retries = 0;       ///< resilience: re-attempted slice reads
  std::int64_t slices_skipped = 0;     ///< resilience: slices degraded to fill
  std::int64_t checksum_failures = 0;  ///< resilience: CRC mismatches observed
  std::int64_t replica_failovers = 0;  ///< resilience: reads rerouted to another replica
  std::int64_t nodes_evicted = 0;      ///< resilience: node health evictions
  std::int64_t copy_restarts = 0;      ///< supervisor: filter rebuilds of this copy
  std::int64_t chunks_quarantined = 0;  ///< supervisor: poison buffers dropped here
  std::int64_t watchdog_kills = 0;     ///< supervisor: 1 when declared dead hung
  std::int64_t chunks_resumed = 0;     ///< checkpoint: chunks pruned by resume
  std::int64_t cache_hits = 0;          ///< tile cache: tile probes served
  std::int64_t cache_misses = 0;        ///< tile cache: tile probes missed
  std::int64_t cache_bytes_served = 0;  ///< tile cache: bytes served without disk
  std::int64_t cache_evictions = 0;     ///< tile cache: tiles evicted (drained)
  std::int64_t prefetch_issued = 0;     ///< tile cache: tiles inserted by prefetch
  std::int64_t prefetch_useful = 0;     ///< tile cache: prefetched tiles demand-hit
  std::int64_t hedges_issued = 0;       ///< tail: hedge reads sent to a 2nd replica
  std::int64_t hedges_won = 0;          ///< tail: hedges that finished first
  std::int64_t hedges_abandoned = 0;    ///< tail: race losers cancelled/drained
  std::int64_t reads_abandoned = 0;     ///< tail: reads dropped at deadline expiry
  std::int64_t tail_breaches = 0;       ///< tail: deadline expiries + lost hedges
  std::int64_t slow_evictions = 0;      ///< tail: nodes evicted as slow (gray)
  std::int64_t buffers_in = 0;
  std::int64_t buffers_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;

  /// Every counter as one tuple of references, listed exactly once.
  /// operator+=, delta() and for_each_field() fold over this list, so a new
  /// field only needs an entry here and a name in kFieldNames — the
  /// static_asserts below fire if either is forgotten.
  template <typename Self>
  static constexpr auto tied(Self& m) {
    return std::tie(m.work.glcm_pair_updates, m.work.feature_cells_scanned,
                    m.work.feature_cell_ops, m.work.matrices_built,
                    m.work.sparse_entries_emitted, m.work.sparse_compress_cells,
                    m.bytes_memcpy, m.stitch_elements, m.elements_quantized,
                    m.disk_bytes_read, m.disk_seeks, m.disk_bytes_written,
                    m.read_retries, m.slices_skipped, m.checksum_failures,
                    m.replica_failovers, m.nodes_evicted, m.copy_restarts,
                    m.chunks_quarantined, m.watchdog_kills, m.chunks_resumed,
                    m.cache_hits, m.cache_misses, m.cache_bytes_served,
                    m.cache_evictions, m.prefetch_issued, m.prefetch_useful,
                    m.hedges_issued, m.hedges_won, m.hedges_abandoned,
                    m.reads_abandoned, m.tail_breaches, m.slow_evictions,
                    m.buffers_in, m.buffers_out, m.bytes_in, m.bytes_out);
  }

  /// Export names of the counters, parallel to tied() (same order).
  static constexpr std::array<std::string_view, 37> kFieldNames = {
      "glcm_pair_updates", "feature_cells_scanned", "feature_cell_ops",
      "matrices_built",    "sparse_entries_emitted", "sparse_compress_cells",
      "bytes_memcpy",      "stitch_elements",       "elements_quantized",
      "disk_bytes_read",   "disk_seeks",            "disk_bytes_written",
      "read_retries",      "slices_skipped",        "checksum_failures",
      "replica_failovers", "nodes_evicted",         "copy_restarts",
      "chunks_quarantined", "watchdog_kills",       "chunks_resumed",
      "cache_hits",        "cache_misses",          "cache_bytes_served",
      "cache_evictions",   "prefetch_issued",       "prefetch_useful",
      "hedges_issued",     "hedges_won",            "hedges_abandoned",
      "reads_abandoned",   "tail_breaches",         "slow_evictions",
      "buffers_in",        "buffers_out",           "bytes_in",
      "bytes_out"};

  /// Visit every counter as (name, value). `Self` may be const.
  template <typename Self, typename Fn>
  static void for_each_field(Self& m, Fn&& fn) {
    std::apply(
        [&](auto&... v) {
          std::size_t i = 0;
          (fn(kFieldNames[i++], v), ...);
        },
        tied(m));
  }

  WorkMeter& operator+=(const WorkMeter& o) {
    std::apply(
        [&](auto&... a) {
          std::apply([&](const auto&... b) { ((a += b), ...); }, tied(o));
        },
        tied(*this));
    return *this;
  }

  /// Difference of two meter snapshots (b must be a later snapshot of a).
  friend WorkMeter delta(const WorkMeter& earlier, const WorkMeter& later) {
    WorkMeter d = later;
    std::apply(
        [&](auto&... a) {
          std::apply([&](const auto&... b) { ((a -= b), ...); }, tied(earlier));
        },
        tied(d));
    return d;
  }
};

namespace detail {
inline constexpr std::size_t kMeterFields =
    std::tuple_size_v<decltype(WorkMeter::tied(std::declval<WorkMeter&>()))>;
}
// Every field of WorkMeter (including the nested WorkCounters) must appear in
// tied() and kFieldNames: the folds behind operator+=, delta() and the
// metrics exporter visit exactly those members. If one of these fires, a
// counter was added without extending the list.
static_assert(detail::kMeterFields == WorkMeter::kFieldNames.size(),
              "WorkMeter::kFieldNames out of sync with WorkMeter::tied()");
static_assert(detail::kMeterFields * sizeof(std::int64_t) == sizeof(WorkMeter),
              "WorkMeter field added without extending tied()/kFieldNames");

}  // namespace h4d::fs
