// Per-filter-copy work accounting.
//
// Filters report the elementary operations they perform (GLCM updates,
// feature ops, bytes copied, disk activity). The threaded executor uses the
// meter for reporting; the cluster simulator converts meter deltas into
// virtual execution time through a CostModel.
#pragma once

#include <cstdint>

#include "haralick/glcm.hpp"

namespace h4d::fs {

struct WorkMeter {
  haralick::WorkCounters work;            ///< texture math operations
  std::int64_t bytes_memcpy = 0;          ///< buffer (re)assembly copies
  std::int64_t stitch_elements = 0;       ///< IIC chunk-reorganization element ops
  std::int64_t elements_quantized = 0;    ///< requantization work
  std::int64_t disk_bytes_read = 0;
  std::int64_t disk_seeks = 0;
  std::int64_t disk_bytes_written = 0;
  std::int64_t read_retries = 0;       ///< resilience: re-attempted slice reads
  std::int64_t slices_skipped = 0;     ///< resilience: slices degraded to fill
  std::int64_t checksum_failures = 0;  ///< resilience: CRC mismatches observed
  std::int64_t buffers_in = 0;
  std::int64_t buffers_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;

  WorkMeter& operator+=(const WorkMeter& o) {
    work += o.work;
    bytes_memcpy += o.bytes_memcpy;
    stitch_elements += o.stitch_elements;
    elements_quantized += o.elements_quantized;
    disk_bytes_read += o.disk_bytes_read;
    disk_seeks += o.disk_seeks;
    disk_bytes_written += o.disk_bytes_written;
    read_retries += o.read_retries;
    slices_skipped += o.slices_skipped;
    checksum_failures += o.checksum_failures;
    buffers_in += o.buffers_in;
    buffers_out += o.buffers_out;
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
    return *this;
  }

  /// Difference of two meter snapshots (b must be a later snapshot of a).
  friend WorkMeter delta(const WorkMeter& earlier, const WorkMeter& later) {
    WorkMeter d;
    d.work.glcm_pair_updates = later.work.glcm_pair_updates - earlier.work.glcm_pair_updates;
    d.work.feature_cells_scanned =
        later.work.feature_cells_scanned - earlier.work.feature_cells_scanned;
    d.work.feature_cell_ops = later.work.feature_cell_ops - earlier.work.feature_cell_ops;
    d.work.matrices_built = later.work.matrices_built - earlier.work.matrices_built;
    d.work.sparse_entries_emitted =
        later.work.sparse_entries_emitted - earlier.work.sparse_entries_emitted;
    d.work.sparse_compress_cells =
        later.work.sparse_compress_cells - earlier.work.sparse_compress_cells;
    d.bytes_memcpy = later.bytes_memcpy - earlier.bytes_memcpy;
    d.stitch_elements = later.stitch_elements - earlier.stitch_elements;
    d.elements_quantized = later.elements_quantized - earlier.elements_quantized;
    d.disk_bytes_read = later.disk_bytes_read - earlier.disk_bytes_read;
    d.disk_seeks = later.disk_seeks - earlier.disk_seeks;
    d.disk_bytes_written = later.disk_bytes_written - earlier.disk_bytes_written;
    d.read_retries = later.read_retries - earlier.read_retries;
    d.slices_skipped = later.slices_skipped - earlier.slices_skipped;
    d.checksum_failures = later.checksum_failures - earlier.checksum_failures;
    d.buffers_in = later.buffers_in - earlier.buffers_in;
    d.buffers_out = later.buffers_out - earlier.buffers_out;
    d.bytes_in = later.bytes_in - earlier.bytes_in;
    d.bytes_out = later.bytes_out - earlier.bytes_out;
    return d;
  }
};

}  // namespace h4d::fs
