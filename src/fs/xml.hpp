// Minimal XML subset parser for filter-network descriptions.
//
// DataCutter applications expressed their filter networks as XML documents
// (paper Sec. 4.3). This parser supports exactly what those need: nested
// elements, double- or single-quoted attributes, self-closing tags,
// comments and an optional <?xml ...?> declaration. No entities, CDATA or
// namespaces. Text content is ignored.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace h4d::fs {

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attrs;
  std::vector<XmlNode> children;

  /// Attribute value; throws std::runtime_error when absent.
  const std::string& attr(const std::string& name) const;
  /// Attribute value or fallback.
  std::string attr_or(const std::string& name, const std::string& fallback) const;
  bool has_attr(const std::string& name) const { return attrs.count(name) != 0; }

  /// All children with the given tag.
  std::vector<const XmlNode*> children_named(std::string_view tag_name) const;
};

/// Parse one document; returns the root element.
/// Throws std::runtime_error with position information on malformed input.
XmlNode parse_xml(std::string_view text);

}  // namespace h4d::fs
