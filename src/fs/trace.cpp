#include "fs/trace.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace h4d::fs {

namespace {

/// JSON string escaping (control characters, quotes, backslashes).
void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microsecond timestamp with sub-µs precision kept (Perfetto accepts
/// fractional ts).
void write_us(std::ostream& os, double seconds) {
  os << std::fixed << std::setprecision(3) << seconds * 1e6
     << std::defaultfloat << std::setprecision(6);
}

}  // namespace

void TraceRecorder::span(int pid, int tid, std::string name, double ts, double dur,
                         Args args) {
  std::lock_guard lk(mu_);
  events_.push_back(Event{'X', pid, tid, ts, dur, std::move(name), std::move(args)});
}

void TraceRecorder::instant(int pid, int tid, std::string name, double ts, Args args) {
  std::lock_guard lk(mu_);
  events_.push_back(Event{'i', pid, tid, ts, 0.0, std::move(name), std::move(args)});
}

void TraceRecorder::counter(int pid, std::string name, double ts, std::int64_t value) {
  std::lock_guard lk(mu_);
  events_.push_back(Event{'C', pid, 0, ts, 0.0, std::move(name), {{"value", value}}});
}

void TraceRecorder::set_process_name(int pid, std::string name) {
  std::lock_guard lk(mu_);
  process_names_[pid] = std::move(name);
}

void TraceRecorder::set_thread_name(int pid, int tid, std::string name) {
  std::lock_guard lk(mu_);
  thread_names_[{pid, tid}] = std::move(name);
}

bool TraceRecorder::empty() const {
  std::lock_guard lk(mu_);
  return events_.empty() && process_names_.empty();
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lk(mu_);
  return events_.size();
}

void TraceRecorder::write_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n  ";
  };

  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": ";
    write_escaped(os, name);
    os << "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << key.first
       << ", \"tid\": " << key.second << ", \"args\": {\"name\": ";
    write_escaped(os, name);
    os << "}}";
  }

  for (const Event& e : events_) {
    sep();
    os << "{\"ph\": \"" << e.phase << "\", \"name\": ";
    write_escaped(os, e.name);
    os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid << ", \"ts\": ";
    write_us(os, e.ts);
    if (e.phase == 'X') {
      os << ", \"dur\": ";
      write_us(os, e.dur);
    }
    if (e.phase == 'i') os << ", \"s\": \"t\"";
    if (!e.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ", ";
        write_escaped(os, e.args[i].first);
        os << ": " << e.args[i].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

void write_trace_file(const std::filesystem::path& path, const TraceRecorder& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot write " + path.string());
  trace.write_json(os);
}

}  // namespace h4d::fs
