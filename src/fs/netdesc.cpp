#include "fs/netdesc.hpp"

#include <sstream>
#include <stdexcept>

#include "fs/xml.hpp"

namespace h4d::fs {

namespace {

int parse_int(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("netdesc: bad integer '" + text + "' for " + what);
  }
}

std::vector<int> parse_int_list(const std::string& text, const std::string& what) {
  std::vector<int> out;
  std::istringstream is(text);
  std::string token;
  while (is >> token) out.push_back(parse_int(token, what));
  return out;
}

Policy parse_policy(const std::string& name, RouteFn& route) {
  if (name == "demand-driven") return Policy::DemandDriven;
  if (name == "round-robin") return Policy::RoundRobin;
  if (name == "broadcast") return Policy::Broadcast;
  if (name == "explicit-aux") {
    route = [](const BufferHeader& h, int ncopies) {
      return static_cast<int>(((h.aux % ncopies) + ncopies) % ncopies);
    };
    return Policy::Explicit;
  }
  if (name == "explicit-from-copy") {
    route = [](const BufferHeader& h, int ncopies) {
      return static_cast<int>(h.from_copy % ncopies);
    };
    return Policy::Explicit;
  }
  throw std::runtime_error("netdesc: unknown stream policy '" + name + "'");
}

}  // namespace

void FilterRegistry::register_type(const std::string& type, FilterFactory factory) {
  if (!factory) throw std::invalid_argument("FilterRegistry: null factory for " + type);
  if (!factories_.emplace(type, std::move(factory)).second) {
    throw std::invalid_argument("FilterRegistry: duplicate type " + type);
  }
}

const FilterFactory& FilterRegistry::get(const std::string& type) const {
  const auto it = factories_.find(type);
  if (it == factories_.end()) {
    throw std::runtime_error("FilterRegistry: unknown filter type '" + type + "'");
  }
  return it->second;
}

std::vector<std::string> FilterRegistry::types() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [type, factory] : factories_) out.push_back(type);
  return out;
}

FilterGraph graph_from_xml(std::string_view xml, const FilterRegistry& registry) {
  const XmlNode root = parse_xml(xml);
  if (root.tag != "filtergraph") {
    throw std::runtime_error("netdesc: root element must be <filtergraph>, got <" + root.tag +
                             ">");
  }

  FilterGraph graph;
  std::map<std::string, int> ids;

  for (const XmlNode* f : root.children_named("filter")) {
    const std::string& name = f->attr("name");
    const std::string& type = f->attr("type");
    if (ids.count(name)) throw std::runtime_error("netdesc: duplicate filter name " + name);

    FilterSpec spec;
    spec.name = name;
    spec.factory = registry.get(type);
    spec.copies = parse_int(f->attr_or("copies", "1"), "copies of " + name);
    if (f->has_attr("nodes")) {
      spec.placement = parse_int_list(f->attr("nodes"), "nodes of " + name);
      if (static_cast<int>(spec.placement.size()) != spec.copies) {
        throw std::runtime_error("netdesc: filter " + name + " has " +
                                 std::to_string(spec.copies) + " copies but " +
                                 std::to_string(spec.placement.size()) + " node entries");
      }
    }
    try {
      ids.emplace(name, graph.add_filter(std::move(spec)));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string("netdesc: ") + e.what());
    }
  }

  for (const XmlNode* s : root.children_named("stream")) {
    const std::string& from = s->attr("from");
    const std::string& to = s->attr("to");
    const auto fi = ids.find(from);
    const auto ti = ids.find(to);
    if (fi == ids.end()) throw std::runtime_error("netdesc: stream from unknown filter " + from);
    if (ti == ids.end()) throw std::runtime_error("netdesc: stream to unknown filter " + to);
    const int port = parse_int(s->attr_or("port", "0"), "stream port");
    RouteFn route;
    const Policy policy = parse_policy(s->attr_or("policy", "demand-driven"), route);
    try {
      graph.connect(fi->second, port, ti->second, policy, std::move(route));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string("netdesc: ") + e.what());
    }
  }

  for (const XmlNode& child : root.children) {
    if (child.tag != "filter" && child.tag != "stream") {
      throw std::runtime_error("netdesc: unexpected element <" + child.tag + ">");
    }
  }

  try {
    graph.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("netdesc: invalid graph: ") + e.what());
  }
  return graph;
}

}  // namespace h4d::fs
