// Threaded executor: runs a FilterGraph with one thread per filter copy and
// bounded queues as streams. This is the "real" runtime — on a multicore
// host the transparent copies execute genuinely in parallel.
#pragma once

#include <atomic>

#include "fs/graph.hpp"
#include "fs/queue.hpp"

namespace h4d::fs {

class TraceRecorder;

struct ThreadedOptions {
  /// Stream depth in buffers; push blocks when full (backpressure).
  std::size_t queue_capacity = 64;
  /// Inbox implementation: the mutex+condvar reference queue or the
  /// lock-free MPMC fast path (fs/mpmc_queue.hpp). Semantics are identical;
  /// only the blocking/handoff machinery differs (--queue, DESIGN §13).
  QueueImpl queue = QueueImpl::Locked;
  /// When set, filter-copy activity spans and buffer handoffs are recorded
  /// (wall time since run start). Must outlive run_threaded().
  TraceRecorder* trace = nullptr;
  /// Supervision policy: what happens when a filter copy throws or hangs
  /// (fs/supervisor.hpp). Default is hardened fail-fast: the first error
  /// closes every stream so all copies unwind, then rethrows after join.
  SupervisorOptions supervise;
  /// Cooperative cancellation (job deadlines/timeouts, src/svc). When set
  /// and *cancel becomes true, every stream is closed so all copies unwind
  /// deterministically — exactly the fail-fast abort path — buffers still in
  /// flight are drained into the loss inventory, and run_threaded throws
  /// CancelledError after all threads join. A checkpoint manifest written so
  /// far stays valid: completed chunks were recorded durably before the cut,
  /// so a --resume run recomputes only what is missing. Must outlive the run.
  const std::atomic<bool>* cancel = nullptr;
  /// How often the cancel token is polled. The poll period bounds the extra
  /// grace a cancelled run gets on top of its longest single filter call.
  double cancel_poll_ms = 5.0;
};

/// Execute the graph to completion and return per-copy statistics.
/// Throws whatever a filter throws (after joining all threads); under
/// restart/quarantine supervision, handled crashes do not throw — they are
/// inventoried in RunStats::exec instead.
RunStats run_threaded(const FilterGraph& graph, const ThreadedOptions& options = {});

}  // namespace h4d::fs
