// Filter graph description: filters, transparent/explicit copies, placement,
// and the buffer scheduling policy of each stream (paper Sec. 4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fs/filter.hpp"
#include "fs/supervisor.hpp"

namespace h4d::fs {

/// How buffers emitted on a stream are distributed over the consumer's
/// transparent copies.
enum class Policy {
  RoundRobin,    ///< each copy receives roughly the same number of buffers
  DemandDriven,  ///< route to the copy that is draining fastest (least loaded)
  Broadcast,     ///< every copy receives every buffer
  Explicit,      ///< user routing function decides the copy (explicit copies)
};

std::string_view policy_name(Policy p);

/// Routing function for Policy::Explicit: maps a buffer header to a consumer
/// copy index in [0, num_copies).
using RouteFn = std::function<int(const BufferHeader&, int num_copies)>;

/// One filter group (a logical filter and its transparent copies).
struct FilterSpec {
  std::string name;
  FilterFactory factory;
  int copies = 1;
  /// Logical compute-node id per copy. Used by the cluster simulator for
  /// placement and co-location; the threaded executor uses it only to decide
  /// pointer-copy vs. serialize accounting. Empty => all copies on node 0.
  std::vector<int> placement;

  int node_of_copy(int copy) const {
    if (placement.empty()) return 0;
    return placement[static_cast<std::size_t>(copy) % placement.size()];
  }
};

/// One stream connecting an output port of a producer group to a consumer
/// group.
struct EdgeSpec {
  int from = -1;
  int port = 0;
  int to = -1;
  Policy policy = Policy::DemandDriven;
  RouteFn route;  ///< only for Policy::Explicit
};

/// A complete application graph. Build once, execute with any executor.
class FilterGraph {
 public:
  /// Adds a filter group, returns its id.
  int add_filter(FilterSpec spec);

  /// Connects `from`'s output `port` to `to`. Buffers emitted by any copy of
  /// `from` on `port` are distributed over the copies of `to` by `policy`.
  void connect(int from, int port, int to, Policy policy = Policy::DemandDriven,
               RouteFn route = {});

  const std::vector<FilterSpec>& filters() const { return filters_; }
  const std::vector<EdgeSpec>& edges() const { return edges_; }

  /// Edges leaving a filter group, and arriving at one.
  std::vector<int> out_edges(int filter) const;
  std::vector<int> in_edges(int filter) const;
  bool is_source(int filter) const { return in_edges(filter).empty(); }

  /// Throws std::invalid_argument when the graph is malformed (dangling
  /// endpoints, Explicit edges without a route, cycles, no filters).
  void validate() const;

 private:
  std::vector<FilterSpec> filters_;
  std::vector<EdgeSpec> edges_;
};

/// Execution statistics of one filter copy, common to both executors.
/// Timing fields are wall seconds under the threaded executor and virtual
/// seconds under the simulator; docs/OBSERVABILITY.md documents how each
/// executor attributes them.
struct CopyStats {
  std::string filter;
  int copy = 0;
  int node = 0;
  WorkMeter meter;
  double busy_seconds = 0.0;   ///< time spent inside process()/run_source()
  double finish_time = 0.0;    ///< when the copy completed (virtual or wall)
  std::size_t max_inbox = 0;   ///< high-water mark of queued buffers
  /// Time this copy spent waiting for input buffers (threaded: blocked in
  /// inbox pop; sim: idle — neither computing nor draining a send).
  double blocked_input_seconds = 0.0;
  /// Time this copy spent unable to proceed because of its *output* side
  /// (threaded: blocked pushing into full downstream inboxes; sim: the
  /// blocking-send window while emitted bytes clear the NIC).
  double blocked_output_seconds = 0.0;
  /// Total time producers spent stalled pushing into this copy's inbox
  /// (threaded executor only; the sim has no bounded inboxes).
  double enqueue_stall_seconds = 0.0;
  std::int64_t stalled_pushes = 0;  ///< pushes into this inbox that stalled
};

/// Tile-cache summary of one run: configuration echo plus the counters the
/// "cache" metrics section exports. `present` is false when the run had no
/// cache attached (the section is then omitted). Counter identities the
/// validator (tools/check_metrics.py) holds us to: hits + misses == lookups,
/// prefetch_useful <= prefetch_issued.
struct CacheReport {
  bool present = false;
  std::string policy;               ///< "lru" / "clock" / "cost"
  std::int64_t budget_bytes = 0;
  std::int64_t tile_w = 0;
  std::int64_t tile_h = 0;
  std::int64_t prefetch_depth = 0;
  std::int64_t lookups = 0;         ///< tile probes (hits + misses)
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t bytes_read_disk = 0;    ///< run's total disk read traffic
  std::int64_t bytes_served_cache = 0;  ///< bytes served without touching disk
  std::int64_t prefetch_issued = 0;
  std::int64_t prefetch_useful = 0;
  std::int64_t evictions = 0;
  std::int64_t resident_bytes = 0;  ///< cache occupancy at end of run
};

/// One storage node's row in the io_tail metrics section.
struct TailNodeRow {
  int node = 0;
  std::int64_t reads = 0;
  double ewma_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t breaches = 0;
};

/// One node-eviction event (io_tail.evictions): reason is "failure" or
/// "slow" (io::evict_reason_name).
struct TailEvictionRow {
  int node = 0;
  std::string reason;
};

/// Tail-tolerance summary of one run: configuration echo plus the counters
/// the "io_tail" metrics section exports. `present` is false when the run
/// had no tail layer attached (the section is then omitted). Identities the
/// validator (tools/check_metrics.py) holds us to: hedges_won <=
/// hedges_issued, and the per-node reads/breaches sum to the globals.
struct TailReport {
  bool present = false;
  std::string deadline_mode;  ///< "off" / "auto" / "fixed"
  double deadline_ms = 0.0;   ///< fixed deadline (deadline_mode == "fixed")
  double deadline_k = 0.0;
  double deadline_floor_ms = 0.0;
  double deadline_ceiling_ms = 0.0;
  bool hedge_enabled = false;
  double hedge_pct = 0.0;
  std::int64_t hedge_max_inflight = 0;
  std::int64_t reads = 0;           ///< completed pooled reads observed
  std::int64_t hedges_issued = 0;
  std::int64_t hedges_won = 0;
  std::int64_t hedges_abandoned = 0;
  std::int64_t reads_abandoned = 0;
  std::int64_t breaches = 0;
  std::int64_t evictions_slow = 0;
  std::vector<TailNodeRow> nodes;
  std::vector<TailEvictionRow> evictions;
};

/// Result of executing a graph.
struct RunStats {
  double total_seconds = 0.0;  ///< end-to-end makespan (virtual or wall)
  std::vector<CopyStats> copies;
  /// Execution-layer damage inventory: restarts, quarantined buffers,
  /// watchdog kills (empty when the run was clean / unsupervised).
  ExecutionReport exec;
  /// Tile-cache summary (present only when the run read through a cache).
  CacheReport cache;
  /// Tail-tolerance summary (present only when the tail layer was active).
  TailReport tail;

  /// Sum of busy time over every copy of the named filter group.
  double filter_busy_seconds(std::string_view filter) const;
  /// Max finish time over copies of the named filter group.
  double filter_finish_time(std::string_view filter) const;
  std::int64_t total_bytes_out(std::string_view filter) const;
};

}  // namespace h4d::fs
