#include "fs/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace h4d::fs {

std::string_view policy_name(Policy p) {
  switch (p) {
    case Policy::RoundRobin: return "round-robin";
    case Policy::DemandDriven: return "demand-driven";
    case Policy::Broadcast: return "broadcast";
    case Policy::Explicit: return "explicit";
  }
  return "?";
}

int FilterGraph::add_filter(FilterSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("add_filter: name required");
  if (!spec.factory) throw std::invalid_argument("add_filter: factory required");
  if (spec.copies < 1) throw std::invalid_argument("add_filter: copies must be >= 1");
  if (!spec.placement.empty() &&
      static_cast<int>(spec.placement.size()) != spec.copies) {
    throw std::invalid_argument("add_filter: placement size must equal copies");
  }
  filters_.push_back(std::move(spec));
  return static_cast<int>(filters_.size()) - 1;
}

void FilterGraph::connect(int from, int port, int to, Policy policy, RouteFn route) {
  if (from < 0 || from >= static_cast<int>(filters_.size()) || to < 0 ||
      to >= static_cast<int>(filters_.size())) {
    throw std::invalid_argument("connect: dangling endpoint");
  }
  if (port < 0) throw std::invalid_argument("connect: negative port");
  if (policy == Policy::Explicit && !route) {
    throw std::invalid_argument("connect: Explicit policy requires a route function");
  }
  edges_.push_back(EdgeSpec{from, port, to, policy, std::move(route)});
}

std::vector<int> FilterGraph::out_edges(int filter) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].from == filter) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> FilterGraph::in_edges(int filter) const {
  std::vector<int> in;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].to == filter) in.push_back(static_cast<int>(i));
  }
  return in;
}

void FilterGraph::validate() const {
  if (filters_.empty()) throw std::invalid_argument("validate: empty graph");
  // Cycle check: Kahn's algorithm over filter groups.
  std::vector<int> indeg(filters_.size(), 0);
  for (const EdgeSpec& e : edges_) indeg[static_cast<std::size_t>(e.to)]++;
  std::vector<int> ready;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const int f = ready.back();
    ready.pop_back();
    ++seen;
    for (const int e : out_edges(f)) {
      if (--indeg[static_cast<std::size_t>(edges_[static_cast<std::size_t>(e)].to)] == 0) {
        ready.push_back(edges_[static_cast<std::size_t>(e)].to);
      }
    }
  }
  if (seen != filters_.size()) {
    throw std::invalid_argument("validate: filter graph contains a cycle");
  }
}

double RunStats::filter_busy_seconds(std::string_view filter) const {
  double s = 0.0;
  for (const CopyStats& c : copies) {
    if (c.filter == filter) s += c.busy_seconds;
  }
  return s;
}

double RunStats::filter_finish_time(std::string_view filter) const {
  double s = 0.0;
  for (const CopyStats& c : copies) {
    if (c.filter == filter) s = std::max(s, c.finish_time);
  }
  return s;
}

std::int64_t RunStats::total_bytes_out(std::string_view filter) const {
  std::int64_t s = 0;
  for (const CopyStats& c : copies) {
    if (c.filter == filter) s += c.meter.bytes_out;
  }
  return s;
}

}  // namespace h4d::fs
