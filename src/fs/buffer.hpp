// Data buffers exchanged between filters on streams.
//
// DataCutter-style semantics (paper Sec. 4.1): streams deliver data from
// producer to consumer filters in user-defined chunks. Between co-located
// filters a buffer is handed over by pointer copy; between remote filters its
// payload is what travels on the wire (the executor charges serialization
// and transport for header + payload bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "nd/region.hpp"

namespace h4d::fs {

/// What a buffer's payload contains. The pipeline filters agree on payload
/// layout per kind; the runtime itself never interprets payloads.
enum class BufferKind : std::uint8_t {
  RawChunkPiece,  ///< RFR->IIC: quantized levels of a subregion of one slice
  TextureChunk,   ///< IIC->HMP/HCC: assembled 4D chunk of quantized levels
  MatrixPacket,   ///< HCC->HPC: batch of co-occurrence matrices
  FeatureValues,  ///< texture->output: feature values for a run of ROI origins
  FeatureMap,     ///< HIC->JIW: a complete assembled 4D feature map
  Control,        ///< small in-band metadata messages
};

/// Fixed-size descriptive header carried with every buffer.
struct BufferHeader {
  BufferKind kind = BufferKind::Control;
  std::int32_t feature = -1;   ///< Feature index for parameter streams
  std::int64_t chunk_id = -1;  ///< IIC-to-TEXTURE chunk this data belongs to
  std::int64_t seq = 0;        ///< producer-assigned sequence number
  std::int32_t aux = 0;        ///< kind-specific flag (e.g. representation)
  std::int32_t from_copy = 0;  ///< producer copy index (set by the executor)
  Region4 region;              ///< data/origin region described by the payload
  Region4 region2;             ///< secondary region (e.g. owned ROI origins)
};

/// A reference-counted buffer: header + opaque payload bytes.
class DataBuffer {
 public:
  DataBuffer() = default;
  explicit DataBuffer(BufferHeader h) : header(h) {}
  DataBuffer(BufferHeader h, std::vector<std::byte> bytes)
      : header(h), payload(std::move(bytes)) {}

  BufferHeader header;
  std::vector<std::byte> payload;

  std::size_t payload_bytes() const { return payload.size(); }
  /// Bytes that travel on a remote stream: header + payload.
  std::size_t wire_bytes() const { return sizeof(BufferHeader) + payload.size(); }

  /// Typed write access to the payload, resizing it to n elements of T.
  template <typename T>
  std::span<T> alloc_as(std::size_t n) {
    payload.resize(n * sizeof(T));
    return {reinterpret_cast<T*>(payload.data()), n};
  }

  /// Typed read access; payload size must be a multiple of sizeof(T).
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(payload.data()), payload.size() / sizeof(T)};
  }
  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(payload.data()), payload.size() / sizeof(T)};
  }
};

using BufferPtr = std::shared_ptr<DataBuffer>;

inline BufferPtr make_buffer(BufferHeader h) { return std::make_shared<DataBuffer>(h); }
inline BufferPtr make_buffer(BufferHeader h, std::vector<std::byte> bytes) {
  return std::make_shared<DataBuffer>(h, std::move(bytes));
}

}  // namespace h4d::fs
