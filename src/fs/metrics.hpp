// Machine-readable run metrics and the end-of-run bottleneck report.
//
// Aggregates the per-copy statistics of a run (either executor) into a
// per-filter table, derives the bottleneck verdict the paper's Fig. 9
// analysis is about (which stage is the bound, is the pipeline backpressured
// on it), and serializes everything as JSON ("h4d-metrics-v1") or CSV.
// Every WorkMeter counter is exported by name via WorkMeter::kFieldNames, so
// the export can never lag the meter. Field reference: docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "fs/graph.hpp"

namespace h4d::fs {

/// Per-filter-group aggregate over all transparent copies.
struct FilterMetrics {
  std::string filter;
  int copies = 0;
  WorkMeter meter;  ///< summed over copies
  double busy_seconds = 0.0;
  double blocked_input_seconds = 0.0;
  double blocked_output_seconds = 0.0;
  double enqueue_stall_seconds = 0.0;
  std::int64_t stalled_pushes = 0;
  std::size_t max_inbox = 0;   ///< max over copies
  double finish_time = 0.0;    ///< max over copies
  /// busy / (copies * makespan): mean fraction of the run each copy of this
  /// filter was computing. The bound stage is the one closest to 1.
  double utilization = 0.0;
  /// blocked_output / (copies * makespan): fraction of the run the copies
  /// spent backpressured by downstream consumers.
  double output_stall_fraction = 0.0;
};

struct BottleneckReport {
  double makespan = 0.0;
  std::vector<FilterMetrics> filters;  ///< in pipeline (RunStats) order
  std::string bound_filter;            ///< highest utilization
  double bound_utilization = 0.0;
  std::string dominant_stream_filter;  ///< most bytes emitted onto streams
  std::int64_t dominant_stream_bytes = 0;
  std::string verdict;                 ///< one-line human-readable analysis
};

/// Derive the per-filter table and bottleneck verdict from run statistics.
BottleneckReport analyze_bottleneck(const RunStats& stats);

/// Human-readable end-of-run table + verdict (what the CLI prints).
void print_bottleneck_report(std::ostream& os, const BottleneckReport& report);

/// Extra scalar values appended to the JSON export under "extra" (e.g. the
/// simulator's network totals).
using MetricsExtra = std::vector<std::pair<std::string, double>>;

/// One self-contained JSON object (schema "h4d-metrics-v1"): makespan,
/// per-filter aggregates, per-copy rows, bottleneck report, extras. Usable
/// standalone or nested inside another document (no trailing newline).
void write_metrics_object(std::ostream& os, const RunStats& stats,
                          const BottleneckReport& report, const MetricsExtra& extra = {});

/// Per-copy CSV table: one row per filter copy, one column per timing field
/// and WorkMeter counter.
void write_metrics_csv(std::ostream& os, const RunStats& stats);

/// Writes by extension: ".csv" -> CSV table, anything else -> JSON document.
/// Throws std::runtime_error when the file cannot be written.
void write_metrics_file(const std::filesystem::path& path, const RunStats& stats,
                        const MetricsExtra& extra = {});

}  // namespace h4d::fs
