// Multi-tenant job manager: admission control, weighted fair queueing,
// deadlines, retries, and overload-graceful degradation over the
// filter-stream runtime.
//
// The paper's runs are solo: one pipeline, one dataset, the whole machine.
// A deployment serves many concurrent analysis requests — different ROIs,
// feature sets and datasets, from tenants with different entitlements — and
// the runtime underneath (threaded executor or simulator) knows nothing
// about competition. The JobManager is that missing layer:
//
//   * bounded admission: a queue of at most max_pending jobs; a submit that
//     finds it full either displaces a strictly lower-priority pending job
//     (which is *shed*) or is *rejected* with a typed reason;
//   * per-tenant quotas (pending and running) and weighted fair queueing:
//     within a priority class, jobs dispatch by WFQ virtual finish time, so
//     a tenant flooding the queue cannot starve the others beyond its
//     weight;
//   * deadlines: a pending job past its deadline fails without running; a
//     running one is cancelled cooperatively through the executor's cancel
//     token — streams close, in-flight buffers drain into the loss
//     inventory, the run throws fs::CancelledError, and the job's
//     checkpoint manifest remains valid for --resume;
//   * retries: a failed attempt (filter error, injected fault) re-queues
//     with exponential backoff, its fault-injection seed re-salted per
//     attempt so the retry is deterministic but not doomed;
//   * degraded mode: when the backlog passes degrade_watermark, low-priority
//     jobs are admitted with coarsened quantization (fewer gray levels) —
//     less work per job, at declared accuracy cost, instead of rejection.
//
// Scheduling and shedding decisions depend only on (priority, virtual
// finish time, submission order) — deterministic given a submission
// sequence, which the tests exploit via start_paused.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/tail.hpp"
#include "io/tile_cache.hpp"
#include "svc/job.hpp"

namespace h4d::svc {

/// Service-level counters. The accounting identity
///   submitted == completed + rejected + shed + failed
/// holds whenever the manager is quiescent (drained or shut down), and
/// rejected == rejected_queue_full + rejected_quota + rejected_deadline.
struct ServiceCounters {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_quota = 0;
  std::int64_t rejected_deadline = 0;
  std::int64_t shed = 0;
  std::int64_t failed = 0;
  std::int64_t retried = 0;         ///< re-queued attempts (not jobs)
  std::int64_t deadline_missed = 0; ///< pending expiries + running cancels
  std::int64_t cancelled = 0;       ///< cancel token fired while running
  std::int64_t degraded = 0;        ///< jobs admitted with coarser levels
};

/// Per-tenant slice of the counters plus the tenant's WFQ state.
struct TenantStats {
  std::string tenant;
  double weight = 1.0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t failed = 0;
  double busy_seconds = 0.0;  ///< wall time of this tenant's attempts
  /// Shared tile-cache slice of this tenant (zero without a shared cache):
  /// demand hits/misses/bytes served, and the bytes currently resident that
  /// this tenant's reads filled (the per-tenant budget accounting).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_bytes_served = 0;
  std::int64_t cache_resident_bytes = 0;
};

/// Aggregated view of everything the service has done (svc/jobs_metrics.hpp
/// serializes this as the "jobs" metrics section).
struct ServiceStats {
  ServiceCounters counters;
  std::vector<TenantStats> tenants;        ///< sorted by tenant name
  fs::WorkMeter meter;                     ///< summed over all attempts
  fs::ExecutionReport exec;                ///< merged damage inventory
  std::vector<JobRecord> jobs;             ///< every job, submission order
  /// Shared tile-cache summary (present only when the manager owns one).
  fs::CacheReport cache;
  /// Shared tail-tolerance summary (present only when the manager runs its
  /// jobs with the tail layer on; node reputation spans jobs).
  fs::TailReport tail;
};

class JobManager {
 public:
  struct Options {
    int workers = 2;                 ///< concurrent jobs (worker threads)
    std::size_t max_pending = 64;    ///< admission queue bound
    /// Per-tenant quotas (0 => unlimited).
    std::size_t tenant_max_pending = 0;
    std::size_t tenant_max_running = 0;
    /// WFQ weights by tenant name; absent tenants weigh 1.0.
    std::map<std::string, double> tenant_weights;
    /// Backlog size at which low-priority jobs are admitted with coarsened
    /// quantization (0 => never degrade).
    std::size_t degrade_watermark = 0;
    int degraded_levels = 8;         ///< num_levels floor when degrading
    /// When set, each job's checkpoint manifest is namespaced under this
    /// directory as job_<id>.ckpt with job_tag "job-<id>", so concurrent
    /// jobs can never prune each other's work lists (io/manifest.hpp
    /// ownership header).
    std::filesystem::path checkpoint_dir;
    /// Start with dispatch paused: jobs are admitted (and shed/rejected)
    /// but none runs until start(). Lets tests build a deterministic
    /// backlog regardless of worker speed.
    bool start_paused = false;
    /// Deadline watcher scan period.
    double deadline_poll_ms = 2.0;
    /// Process-wide tile cache shared by every job this manager runs (null
    /// => jobs run cache-less, or with whatever their config carries). Each
    /// job's reads are accounted to its tenant. Fault-injected jobs ignore
    /// it (they always get a private cache; see PipelineParams::make).
    std::shared_ptr<io::TileCache> tile_cache;
    /// Tail-tolerant I/O applied to every job this manager runs (off when
    /// tail.enabled() is false). The latency tracker and helper pool are
    /// process-wide, so a slow node's reputation carries across jobs.
    io::TailConfig tail;
    std::shared_ptr<io::LatencyTracker> latency;
    std::shared_ptr<io::SliceFetchPool> io_pool;
  };

  explicit JobManager(Options options);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  struct SubmitResult {
    std::int64_t id = -1;
    bool admitted = false;
    RejectReason reason = RejectReason::None;
  };

  /// Admit or reject a job. Never blocks on the queue: a full queue sheds
  /// or rejects immediately (typed), it does not wait.
  SubmitResult submit(JobSpec spec);

  /// Release dispatch after Options::start_paused.
  void start();

  /// Cancel one job: pending => Shed, running => cancel token fires and the
  /// job Fails (cancelled). Returns false when already terminal / unknown.
  bool cancel(std::int64_t id);

  /// Block until the job is terminal; returns its snapshot.
  JobRecord wait(std::int64_t id);

  /// Block until every admitted job is terminal (implies start()).
  void drain();

  /// Drain, then stop the workers. Idempotent; the destructor calls it.
  void shutdown();

  /// Snapshot of one job (throws std::out_of_range for unknown ids).
  JobRecord job(std::int64_t id) const;

  /// Full service snapshot (counters, tenants, merged meter/exec, jobs).
  ServiceStats snapshot() const;

  std::size_t pending_count() const;
  std::size_t running_count() const;

 private:
  struct Job;
  struct Tenant;

  SubmitResult admit_locked(std::unique_lock<std::mutex>& lk, JobSpec&& spec);
  void finish_locked(Job& j, JobState state);
  std::shared_ptr<Job> pop_ready_locked(std::unique_lock<std::mutex>& lk);
  void run_job(const std::shared_ptr<Job>& j);
  void worker_loop();
  void deadline_loop();
  Tenant& tenant_locked(const std::string& name);

  Options opt_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< workers: backlog / shutdown
  std::condition_variable done_cv_;      ///< wait()/drain(): job terminal
  std::condition_variable deadline_cv_;  ///< deadline watcher period

  bool paused_ = false;
  bool stopping_ = false;
  std::int64_t next_id_ = 0;
  std::int64_t dispatch_seq_ = 0;  ///< JobRecord::dispatch_order source
  double global_vtime_ = 0.0;      ///< WFQ system virtual time

  std::vector<std::shared_ptr<Job>> jobs_;        ///< by id (== index)
  std::deque<std::shared_ptr<Job>> pending_;      ///< admission order
  std::map<std::string, Tenant> tenants_;
  std::size_t running_ = 0;
  std::int64_t unfinished_ = 0;  ///< admitted jobs not yet terminal

  ServiceCounters counters_;
  fs::WorkMeter total_meter_;
  fs::ExecutionReport total_exec_;

  std::vector<std::thread> workers_;
  std::thread deadline_watcher_;
};

}  // namespace h4d::svc
