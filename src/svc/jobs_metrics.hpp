// Machine-readable service metrics: the "jobs" section.
//
// Serializes a JobManager snapshot as one JSON document (schema
// "h4d-jobs-v1"): service counters, per-tenant slices, the aggregated
// WorkMeter and merged ExecutionReport over every attempt, and one row per
// job. tools/check_metrics.py validates the schema, the accounting identity
// (submitted == completed + rejected + shed + failed), and that the per-job
// rows agree with the counters. Field reference: docs/OBSERVABILITY.md.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "svc/job_manager.hpp"

namespace h4d::svc {

/// One self-contained JSON object (no trailing newline).
void write_jobs_metrics_object(std::ostream& os, const ServiceStats& stats);

/// Writes the JSON document to `path` (newline-terminated).
/// Throws std::runtime_error when the file cannot be written.
void write_jobs_metrics_file(const std::filesystem::path& path,
                             const ServiceStats& stats);

}  // namespace h4d::svc
