// Seeded closed-loop workload generator for the JobManager.
//
// Produces a deterministic stream of jobs — heavy-tailed sizes (most jobs
// cheap, a rare few an order of magnitude heavier), a tenant mix, a priority
// mix, seeded exponential inter-arrival gaps — so overload experiments are
// reproducible: the same seed yields the same submission sequence, hence
// (with start_paused or a single submitter) the same deterministic
// admission/shed/reject decisions. Used by the `serve` CLI verb, the
// overload soak in CI, and bench/svc_overload.
#pragma once

#include <cstdint>
#include <vector>

#include "svc/job.hpp"

namespace h4d::svc {

struct WorkloadConfig {
  int jobs = 100;
  int tenants = 4;            ///< tenant names "t0".."t{n-1}"
  std::uint64_t seed = 1;
  /// Mean inter-arrival gap (exponential); 0 => flood (all arrive at once).
  double arrival_ms = 0.0;
  /// Fraction of jobs carrying a wall deadline of deadline_s.
  double deadline_fraction = 0.0;
  double deadline_s = 0.5;
  int max_retries = 0;
  /// est_seconds = est_scale * relative cost units (0 => unknown estimate).
  double est_scale = 0.0;
  bool simulate = false;      ///< run jobs on the simulator
  /// Template for every job: dataset, ROI, executor/supervision knobs.
  /// The generator varies engine.num_levels and engine.features per job.
  JobSpec base;
};

struct WorkloadJob {
  double arrival_s = 0.0;  ///< submission time offset from workload start
  JobSpec spec;
};

/// The full workload, in submission order. Pure function of the config.
std::vector<WorkloadJob> make_workload(const WorkloadConfig& config);

}  // namespace h4d::svc
