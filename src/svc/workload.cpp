#include "svc/workload.hpp"

#include <cmath>
#include <string>

namespace h4d::svc {

namespace {

/// splitmix64: tiny, seedable, high-quality enough for workload shaping.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double next_unit(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<WorkloadJob> make_workload(const WorkloadConfig& config) {
  std::vector<WorkloadJob> out;
  out.reserve(static_cast<std::size_t>(std::max(config.jobs, 0)));
  std::uint64_t state = config.seed;
  const int tenants = std::max(config.tenants, 1);
  double clock_s = 0.0;

  for (int i = 0; i < config.jobs; ++i) {
    WorkloadJob wj;
    wj.spec = config.base;
    std::string tenant_name = "t";
    tenant_name += std::to_string(
        static_cast<int>(next_u64(state) % static_cast<std::uint64_t>(tenants)));
    wj.spec.tenant = std::move(tenant_name);

    // Priority mix: 20% high, 60% normal, 20% low.
    const double pr = next_unit(state);
    wj.spec.priority = pr < 0.2   ? JobPriority::High
                       : pr < 0.8 ? JobPriority::Normal
                                  : JobPriority::Low;

    // Heavy-tailed size: GLCM work scales with num_levels^2, so the level
    // ladder {8, 16, 32} spans a 16x cost range; the expensive rung is rare.
    // A rare few jobs also compute the full feature set instead of the
    // paper's four.
    const double size = next_unit(state);
    int levels = 8;
    if (size > 0.85) {
      levels = 32;
    } else if (size > 0.5) {
      levels = 16;
    }
    wj.spec.config.engine.num_levels = levels;
    if (next_unit(state) > 0.9) {
      wj.spec.config.engine.features = haralick::FeatureSet::all();
    }

    // Relative cost units (what WFQ and the deadline check see): levels^2
    // scaled by the feature count, normalized so the cheapest job is ~1.
    const double cost_units = (static_cast<double>(levels) * levels / 64.0) *
                              (wj.spec.config.engine.features.count() / 4.0);
    if (config.est_scale > 0.0) wj.spec.est_seconds = config.est_scale * cost_units;

    if (config.deadline_fraction > 0.0 && next_unit(state) < config.deadline_fraction) {
      wj.spec.deadline_s = config.deadline_s;
    }
    wj.spec.max_retries = config.max_retries;
    wj.spec.simulate = config.simulate;

    // Seeded exponential inter-arrival gaps (closed-loop pacing).
    if (config.arrival_ms > 0.0) {
      const double u = next_unit(state);
      clock_s += -(config.arrival_ms / 1000.0) * std::log(1.0 - u);
    }
    wj.arrival_s = clock_s;
    out.push_back(std::move(wj));
  }
  return out;
}

}  // namespace h4d::svc
