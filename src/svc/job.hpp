// Job types of the multi-tenant service layer.
//
// A *job* is one complete analysis run — its own dataset, ROI, feature set,
// executor choice and supervision policy — submitted to the JobManager
// (svc/job_manager.hpp) instead of run solo. The manager admits, queues,
// schedules, retries and cancels jobs; these are the plain-data types that
// cross that boundary. Every job ends in exactly one of four terminal
// states: Completed, Rejected (refused at admission), Shed (dropped under
// overload after admission), or Failed (ran and did not finish — including
// deadline cancellations and exhausted retries). The accounting identity
//   submitted == completed + rejected + shed + failed
// holds over any quiescent manager and is exported (svc/jobs_metrics.hpp)
// and validated (tools/check_metrics.py).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/analysis.hpp"

namespace h4d::svc {

/// Scheduling class. Admission shedding is strictly by priority: under
/// overload the lowest-priority pending job is dropped first, and a new job
/// can only displace pending work of *lower* priority than its own.
enum class JobPriority { Low = 0, Normal = 1, High = 2 };

std::string_view priority_name(JobPriority p);
JobPriority priority_from_name(const std::string& name);

/// Why admission refused a job (None for admitted jobs).
enum class RejectReason {
  None,
  QueueFull,            ///< admission queue at capacity, nothing displaceable
  QuotaExceeded,        ///< tenant over its pending or running quota
  DeadlineInfeasible,   ///< estimated cost alone exceeds the deadline
};

std::string_view reject_reason_name(RejectReason r);

/// Lifecycle of a job. Terminal states are exactly
/// {Completed, Rejected, Shed, Failed}.
enum class JobState {
  Pending,    ///< admitted, waiting for a worker
  Running,    ///< executing on a worker
  Completed,  ///< terminal: finished, output verified durable/collected
  Rejected,   ///< terminal: refused at admission (see RejectReason)
  Shed,       ///< terminal: admitted but dropped under overload / cancelled
              ///  while still pending
  Failed,     ///< terminal: ran and did not finish (error, deadline, cancel)
};

std::string_view state_name(JobState s);
bool state_terminal(JobState s);

/// Everything the caller specifies about one job.
struct JobSpec {
  std::string tenant = "default";
  JobPriority priority = JobPriority::Normal;

  /// Wall-clock budget from admission to completion; 0 => none. A pending
  /// job past its deadline fails without running; a running job is cancelled
  /// cooperatively through the executor's cancel token (fs::CancelledError)
  /// — streams closed, buffers drained, checkpoint manifest left resumable.
  double deadline_s = 0.0;
  /// Caller's cost estimate in (wall or virtual) seconds. Used for the
  /// DeadlineInfeasible check (est_seconds > deadline_s) and as the job's
  /// WFQ cost; 0 => unknown (treated as cost 1 for fair queueing, never
  /// deadline-infeasible).
  double est_seconds = 0.0;

  /// Re-runs after a *failed* attempt (not after deadline cancellation).
  /// Attempt k waits retry_backoff_s * 2^(k-1) before requeueing, and a
  /// fault-injection seed is re-salted per attempt so the retry is
  /// deterministic without being doomed to the identical fault schedule.
  int max_retries = 0;
  double retry_backoff_s = 0.05;

  /// The run itself. config.checkpoint_path/job_tag are overridden by the
  /// manager when it namespaces checkpoints per job (JobManager::Options).
  core::PipelineConfig config;
  bool simulate = false;        ///< modeled cluster instead of threads
  fs::ThreadedOptions threaded; ///< cancel token is overridden per job
  sim::SimOptions sim;          ///< cancel token is overridden per job

  /// Keep the feature maps in the job record (memory-heavy). The maps'
  /// checksum is always recorded, so byte-identity against a solo run can be
  /// verified without retaining them.
  bool keep_result = false;
};

/// Snapshot of one job, terminal or not (JobManager::snapshot/job).
struct JobRecord {
  std::int64_t id = -1;
  std::string tenant;
  JobPriority priority = JobPriority::Normal;
  JobState state = JobState::Pending;
  RejectReason reject_reason = RejectReason::None;
  int attempts = 0;            ///< runs started (>= 1 once scheduled)
  /// Position in the manager's dispatch sequence (-1 = never dispatched).
  /// Makes the scheduling order — priority first, then WFQ virtual finish
  /// time — observable and testable.
  std::int64_t dispatch_order = -1;
  bool degraded = false;       ///< admitted with coarsened quantization
  bool deadline_missed = false;
  bool cancelled = false;      ///< cancel token fired while running
  double queued_seconds = 0.0; ///< admission -> first dispatch
  double run_seconds = 0.0;    ///< sum of attempt wall times
  std::string error;           ///< last failure message
  fs::WorkMeter meter;         ///< summed over copies, last attempt
  /// CRC-32 over the collected feature maps (raster order, raw float bytes,
  /// per-feature in Feature order). 0 until Completed. Two runs of the same
  /// configuration must agree here — the byte-identity oracle.
  std::uint32_t result_crc = 0;
  /// Retained maps (only when JobSpec::keep_result).
  std::map<haralick::Feature, Volume4<float>> maps;
};

/// Checksum of an analysis result's maps (the JobRecord::result_crc oracle;
/// exposed so tests can fingerprint solo runs the same way).
std::uint32_t result_checksum(const core::AnalysisResult& result);

}  // namespace h4d::svc
