#include "svc/jobs_metrics.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace h4d::svc {

namespace {

void jnum(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

void jstr(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u001f";  // control chars cannot appear in our names
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_counters(std::ostream& os, const ServiceCounters& c) {
  os << "{\"submitted\": " << c.submitted << ", \"admitted\": " << c.admitted
     << ", \"completed\": " << c.completed << ", \"rejected\": " << c.rejected
     << ", \"rejected_queue_full\": " << c.rejected_queue_full
     << ", \"rejected_quota\": " << c.rejected_quota
     << ", \"rejected_deadline\": " << c.rejected_deadline
     << ", \"shed\": " << c.shed << ", \"failed\": " << c.failed
     << ", \"retried\": " << c.retried
     << ", \"deadline_missed\": " << c.deadline_missed
     << ", \"cancelled\": " << c.cancelled
     << ", \"degraded\": " << c.degraded << "}";
}

void write_meter(std::ostream& os, const fs::WorkMeter& m) {
  os << '{';
  bool first = true;
  fs::WorkMeter::for_each_field(m, [&](std::string_view name, const auto& v) {
    if (!first) os << ", ";
    first = false;
    jstr(os, name);
    os << ": " << v;
  });
  os << '}';
}

void write_exec(std::ostream& os, const fs::ExecutionReport& e) {
  os << "{\"copy_restarts\": " << e.copy_restarts
     << ", \"chunks_quarantined\": " << e.chunks_quarantined
     << ", \"watchdog_kills\": " << e.watchdog_kills
     << ", \"buffers_lost\": " << e.buffers_lost
     << ", \"chunks_resumed\": " << e.chunks_resumed
     << ", \"replica_failovers\": " << e.replica_failovers
     << ", \"nodes_evicted\": " << e.nodes_evicted
     << ", \"queue_impl\": ";
  jstr(os, e.queue_impl);
  os << ", \"queue_stalled_pushes\": " << e.queue_stalled_pushes
     << ", \"queue_stall_seconds\": ";
  jnum(os, e.queue_stall_seconds);
  os << ", \"queue_max_depth\": " << e.queue_max_depth << "}";
}

}  // namespace

void write_jobs_metrics_object(std::ostream& os, const ServiceStats& stats) {
  os << "{\"schema\": \"h4d-jobs-v1\",\n  \"jobs\": ";
  write_counters(os, stats.counters);
  os << ",\n  \"tenants\": [";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const TenantStats& t = stats.tenants[i];
    os << (i ? ",\n    " : "\n    ") << "{\"tenant\": ";
    jstr(os, t.tenant);
    os << ", \"weight\": ";
    jnum(os, t.weight);
    os << ", \"submitted\": " << t.submitted << ", \"completed\": " << t.completed
       << ", \"rejected\": " << t.rejected << ", \"shed\": " << t.shed
       << ", \"failed\": " << t.failed << ", \"busy_seconds\": ";
    jnum(os, t.busy_seconds);
    os << ", \"cache_hits\": " << t.cache_hits
       << ", \"cache_misses\": " << t.cache_misses
       << ", \"cache_bytes_served\": " << t.cache_bytes_served
       << ", \"cache_resident_bytes\": " << t.cache_resident_bytes << '}';
  }
  os << "],\n  \"meter\": ";
  write_meter(os, stats.meter);
  os << ",\n  \"exec\": ";
  write_exec(os, stats.exec);
  if (stats.cache.present) {
    const fs::CacheReport& c = stats.cache;
    os << ",\n  \"cache\": {\"policy\": ";
    jstr(os, c.policy);
    os << ", \"budget_bytes\": " << c.budget_bytes << ", \"tile_w\": " << c.tile_w
       << ", \"tile_h\": " << c.tile_h << ", \"prefetch_depth\": " << c.prefetch_depth
       << ", \"lookups\": " << c.lookups << ", \"hits\": " << c.hits
       << ", \"misses\": " << c.misses << ", \"bytes_read_disk\": " << c.bytes_read_disk
       << ", \"bytes_served_cache\": " << c.bytes_served_cache
       << ", \"prefetch_issued\": " << c.prefetch_issued
       << ", \"prefetch_useful\": " << c.prefetch_useful
       << ", \"evictions\": " << c.evictions
       << ", \"resident_bytes\": " << c.resident_bytes << "}";
  }
  if (stats.tail.present) {
    const fs::TailReport& t = stats.tail;
    os << ",\n  \"io_tail\": {\"deadline_mode\": ";
    jstr(os, t.deadline_mode);
    os << ", \"deadline_ms\": ";
    jnum(os, t.deadline_ms);
    os << ", \"deadline_k\": ";
    jnum(os, t.deadline_k);
    os << ", \"deadline_floor_ms\": ";
    jnum(os, t.deadline_floor_ms);
    os << ", \"deadline_ceiling_ms\": ";
    jnum(os, t.deadline_ceiling_ms);
    os << ", \"hedge_enabled\": " << (t.hedge_enabled ? "true" : "false")
       << ", \"hedge_pct\": ";
    jnum(os, t.hedge_pct);
    os << ", \"hedge_max_inflight\": " << t.hedge_max_inflight
       << ", \"reads\": " << t.reads << ", \"hedges_issued\": " << t.hedges_issued
       << ", \"hedges_won\": " << t.hedges_won
       << ", \"hedges_abandoned\": " << t.hedges_abandoned
       << ", \"reads_abandoned\": " << t.reads_abandoned
       << ", \"breaches\": " << t.breaches
       << ", \"evictions_slow\": " << t.evictions_slow << ", \"nodes\": [";
    for (std::size_t i = 0; i < t.nodes.size(); ++i) {
      const fs::TailNodeRow& n = t.nodes[i];
      os << (i ? ", " : "") << "{\"node\": " << n.node << ", \"reads\": " << n.reads
         << ", \"ewma_ms\": ";
      jnum(os, n.ewma_ms);
      os << ", \"p50_ms\": ";
      jnum(os, n.p50_ms);
      os << ", \"p99_ms\": ";
      jnum(os, n.p99_ms);
      os << ", \"breaches\": " << n.breaches << "}";
    }
    os << "], \"evictions\": [";
    for (std::size_t i = 0; i < t.evictions.size(); ++i) {
      os << (i ? ", " : "") << "{\"node\": " << t.evictions[i].node
         << ", \"reason\": ";
      jstr(os, t.evictions[i].reason);
      os << "}";
    }
    os << "]}";
  }
  os << ",\n  \"per_job\": [";
  for (std::size_t i = 0; i < stats.jobs.size(); ++i) {
    const JobRecord& j = stats.jobs[i];
    os << (i ? ",\n    " : "\n    ") << "{\"id\": " << j.id << ", \"tenant\": ";
    jstr(os, j.tenant);
    os << ", \"priority\": ";
    jstr(os, priority_name(j.priority));
    os << ", \"state\": ";
    jstr(os, state_name(j.state));
    os << ", \"reject_reason\": ";
    jstr(os, reject_reason_name(j.reject_reason));
    os << ", \"attempts\": " << j.attempts
       << ", \"dispatch_order\": " << j.dispatch_order
       << ", \"degraded\": " << (j.degraded ? "true" : "false")
       << ", \"deadline_missed\": " << (j.deadline_missed ? "true" : "false")
       << ", \"cancelled\": " << (j.cancelled ? "true" : "false")
       << ", \"queued_seconds\": ";
    jnum(os, j.queued_seconds);
    os << ", \"run_seconds\": ";
    jnum(os, j.run_seconds);
    os << ", \"result_crc\": " << j.result_crc << '}';
  }
  os << "]\n}";
}

void write_jobs_metrics_file(const std::filesystem::path& path,
                             const ServiceStats& stats) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write jobs metrics to " + path.string());
  write_jobs_metrics_object(os, stats);
  os << '\n';
  if (!os) throw std::runtime_error("failed writing jobs metrics to " + path.string());
}

}  // namespace h4d::svc
