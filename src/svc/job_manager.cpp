#include "svc/job_manager.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "io/fault.hpp"

namespace h4d::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Per-attempt seed salt: deterministic, but a retried attempt sees a
/// different fault schedule than the one that killed it (same spirit as the
/// injectors' own hash mixing).
std::uint64_t salt_seed(std::uint64_t seed, int attempt) {
  return seed ^ (static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

std::string_view priority_name(JobPriority p) {
  switch (p) {
    case JobPriority::Low: return "low";
    case JobPriority::Normal: return "normal";
    case JobPriority::High: return "high";
  }
  return "?";
}

JobPriority priority_from_name(const std::string& name) {
  if (name == "low") return JobPriority::Low;
  if (name == "normal") return JobPriority::Normal;
  if (name == "high") return JobPriority::High;
  throw std::invalid_argument("unknown job priority: " + name +
                              " (expected low|normal|high)");
}

std::string_view reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::QuotaExceeded: return "quota_exceeded";
    case RejectReason::DeadlineInfeasible: return "deadline_infeasible";
  }
  return "?";
}

std::string_view state_name(JobState s) {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Rejected: return "rejected";
    case JobState::Shed: return "shed";
    case JobState::Failed: return "failed";
  }
  return "?";
}

bool state_terminal(JobState s) {
  return s == JobState::Completed || s == JobState::Rejected ||
         s == JobState::Shed || s == JobState::Failed;
}

std::uint32_t result_checksum(const core::AnalysisResult& result) {
  std::uint32_t crc = 0;
  for (const auto& [feature, map] : result.maps) {
    const auto f = static_cast<std::uint32_t>(feature);
    crc = io::crc32(&f, sizeof f, crc);
    crc = io::crc32(map.data(), static_cast<std::size_t>(map.size()) * sizeof(float),
                    crc);
  }
  return crc;
}

struct JobManager::Tenant {
  double weight = 1.0;
  double vtime = 0.0;  ///< WFQ: virtual finish time of the last admission
  std::size_t pending = 0;
  std::size_t running = 0;
  TenantStats stats;
};

struct JobManager::Job {
  JobSpec spec;
  JobRecord rec;
  double vft = 0.0;  ///< WFQ virtual finish time (fixed at admission)
  Clock::time_point submitted_at;
  Clock::time_point ready_at;     ///< retry backoff gate
  Clock::time_point deadline_at;  ///< valid when has_deadline
  bool has_deadline = false;
  bool deadline_fired = false;
  bool dispatched_once = false;
  std::atomic<bool> cancel{false};
};

JobManager::JobManager(Options options) : opt_(std::move(options)) {
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.max_pending == 0) opt_.max_pending = 1;
  if (opt_.tail.enabled()) {
    // Process-wide tail machinery: node latency reputation and the helper
    // pool are shared by every job (like the tile cache). Sized by the
    // largest node count a job may bring; LatencyTracker ignores nodes
    // beyond its size, so a generous bound is safe.
    if (!opt_.latency) opt_.latency = std::make_shared<io::LatencyTracker>(64);
    if (!opt_.io_pool) {
      opt_.io_pool =
          std::make_shared<io::SliceFetchPool>(std::max(1, opt_.tail.helper_threads));
    }
  }
  paused_ = opt_.start_paused;
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  deadline_watcher_ = std::thread([this] { deadline_loop(); });
}

JobManager::~JobManager() { shutdown(); }

JobManager::Tenant& JobManager::tenant_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    const auto w = opt_.tenant_weights.find(name);
    t.weight = (w != opt_.tenant_weights.end() && w->second > 0.0) ? w->second : 1.0;
    t.stats.tenant = name;
    t.stats.weight = t.weight;
    it = tenants_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

JobManager::SubmitResult JobManager::submit(JobSpec spec) {
  std::unique_lock lk(mu_);
  return admit_locked(lk, std::move(spec));
}

JobManager::SubmitResult JobManager::admit_locked(std::unique_lock<std::mutex>&,
                                                  JobSpec&& spec) {
  counters_.submitted++;
  Tenant& t = tenant_locked(spec.tenant);
  t.stats.submitted++;

  auto j = std::make_shared<Job>();
  j->rec.id = next_id_++;
  j->rec.tenant = spec.tenant;
  j->rec.priority = spec.priority;
  j->submitted_at = Clock::now();
  j->ready_at = j->submitted_at;

  auto reject = [&](RejectReason reason, std::int64_t& typed) -> SubmitResult {
    counters_.rejected++;
    typed++;
    t.stats.rejected++;
    j->rec.state = JobState::Rejected;
    j->rec.reject_reason = reason;
    j->spec = std::move(spec);
    jobs_.push_back(std::move(j));
    done_cv_.notify_all();
    return {jobs_.back()->rec.id, false, reason};
  };

  // 1. Deadline feasibility: if the cost estimate alone exceeds the budget,
  // admitting the job would only burn a worker before the watcher kills it.
  if (spec.deadline_s > 0.0 && spec.est_seconds > spec.deadline_s) {
    return reject(RejectReason::DeadlineInfeasible, counters_.rejected_deadline);
  }

  // 2. Tenant pending quota.
  if (opt_.tenant_max_pending > 0 && t.pending >= opt_.tenant_max_pending) {
    return reject(RejectReason::QuotaExceeded, counters_.rejected_quota);
  }

  // 3. Bounded queue: displace strictly lower-priority pending work (shed,
  // deterministically the lowest priority / latest virtual finish time), or
  // reject the newcomer.
  if (pending_.size() >= opt_.max_pending) {
    auto victim = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if ((*it)->rec.priority >= spec.priority) continue;
      if (victim == pending_.end() ||
          (*it)->rec.priority < (*victim)->rec.priority ||
          ((*it)->rec.priority == (*victim)->rec.priority &&
           (*it)->vft > (*victim)->vft)) {
        victim = it;
      }
    }
    if (victim == pending_.end()) {
      return reject(RejectReason::QueueFull, counters_.rejected_queue_full);
    }
    std::shared_ptr<Job> shed_job = *victim;
    pending_.erase(victim);
    tenant_locked(shed_job->rec.tenant).pending--;
    shed_job->rec.error = "shed: displaced by higher-priority job " +
                          std::to_string(j->rec.id);
    finish_locked(*shed_job, JobState::Shed);
  }

  // 4. Overload degradation: past the watermark, low-priority jobs run with
  // coarser quantization — declared accuracy loss instead of rejection.
  if (opt_.degrade_watermark > 0 && pending_.size() >= opt_.degrade_watermark &&
      spec.priority == JobPriority::Low &&
      spec.config.engine.num_levels > opt_.degraded_levels) {
    spec.config.engine.num_levels = opt_.degraded_levels;
    j->rec.degraded = true;
    counters_.degraded++;
  }

  // Checkpoint namespacing: one manifest per job, stamped with the job tag,
  // so no job can ever resume (and prune) another job's progress.
  if (!opt_.checkpoint_dir.empty()) {
    spec.config.checkpoint_path =
        opt_.checkpoint_dir / ("job_" + std::to_string(j->rec.id) + ".ckpt");
    spec.config.job_tag = "job-" + std::to_string(j->rec.id);
  }

  // WFQ virtual finish time: start no earlier than the system clock or the
  // tenant's own backlog, advance by cost over weight.
  const double cost = spec.est_seconds > 0.0 ? spec.est_seconds : 1.0;
  t.vtime = std::max(t.vtime, global_vtime_) + cost / t.weight;
  j->vft = t.vtime;

  if (spec.deadline_s > 0.0) {
    j->has_deadline = true;
    j->deadline_at = j->submitted_at +
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(spec.deadline_s));
  }

  j->spec = std::move(spec);
  counters_.admitted++;
  unfinished_++;
  t.pending++;
  pending_.push_back(j);
  jobs_.push_back(j);
  work_cv_.notify_one();
  if (j->has_deadline) deadline_cv_.notify_all();
  return {j->rec.id, true, RejectReason::None};
}

void JobManager::finish_locked(Job& j, JobState state) {
  j.rec.state = state;
  Tenant& t = tenant_locked(j.rec.tenant);
  switch (state) {
    case JobState::Completed:
      counters_.completed++;
      t.stats.completed++;
      break;
    case JobState::Failed:
      counters_.failed++;
      t.stats.failed++;
      break;
    case JobState::Shed:
      counters_.shed++;
      t.stats.shed++;
      break;
    default:
      break;
  }
  unfinished_--;
  done_cv_.notify_all();
  work_cv_.notify_all();  // a finish can unblock a running-quota-limited job
}

std::shared_ptr<JobManager::Job> JobManager::pop_ready_locked(
    std::unique_lock<std::mutex>&) {
  if (paused_) return nullptr;
  const auto now = Clock::now();
  auto best = pending_.end();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    Job& j = **it;
    if (j.ready_at > now) continue;  // retry backoff not elapsed
    if (opt_.tenant_max_running > 0 &&
        tenant_locked(j.rec.tenant).running >= opt_.tenant_max_running) {
      continue;
    }
    if (best == pending_.end() || j.rec.priority > (*best)->rec.priority ||
        (j.rec.priority == (*best)->rec.priority &&
         (j.vft < (*best)->vft ||
          (j.vft == (*best)->vft && j.rec.id < (*best)->rec.id)))) {
      best = it;
    }
  }
  if (best == pending_.end()) return nullptr;
  std::shared_ptr<Job> j = *best;
  pending_.erase(best);
  tenant_locked(j->rec.tenant).pending--;
  global_vtime_ = std::max(global_vtime_, j->vft);
  return j;
}

void JobManager::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    if (stopping_) return;
    std::shared_ptr<Job> j = pop_ready_locked(lk);
    if (!j) {
      // Sleep until notified, or until the earliest retry backoff elapses.
      std::optional<Clock::time_point> until;
      if (!paused_) {
        for (const auto& p : pending_) {
          if (p->ready_at > Clock::now() && (!until || p->ready_at < *until)) {
            until = p->ready_at;
          }
        }
      }
      if (until) {
        work_cv_.wait_until(lk, *until);
      } else {
        work_cv_.wait(lk);
      }
      continue;
    }
    j->rec.state = JobState::Running;
    j->rec.attempts++;
    if (!j->dispatched_once) {
      j->dispatched_once = true;
      j->rec.dispatch_order = dispatch_seq_++;
      j->rec.queued_seconds = seconds_between(j->submitted_at, Clock::now());
    }
    tenant_locked(j->rec.tenant).running++;
    running_++;
    lk.unlock();
    run_job(j);
    lk.lock();
  }
}

void JobManager::run_job(const std::shared_ptr<Job>& j) {
  // Per-attempt configuration: wire this job's cancel token into whichever
  // executor runs it, and salt fault seeds so a retried attempt faces a
  // fresh (but deterministic) fault schedule.
  core::PipelineConfig config = j->spec.config;
  // The manager's shared tile cache, accounted to this job's tenant. Under
  // fault injection PipelineParams::make swaps in a private instance — a
  // deterministic drill must not be perturbed by tiles other jobs cached.
  if (opt_.tile_cache) {
    config.tile_cache = opt_.tile_cache;
    config.cache = opt_.tile_cache->config();
    config.cache_tenant = j->rec.tenant;
  }
  // The manager's shared tail layer (per-node latency reputation + helper
  // pool), applied uniformly to every job it runs.
  if (opt_.tail.enabled()) {
    config.tail = opt_.tail;
    config.latency = opt_.latency;
    config.io_pool = opt_.io_pool;
  }
  fs::ThreadedOptions topts = j->spec.threaded;
  sim::SimOptions sopts = j->spec.sim;
  topts.cancel = &j->cancel;
  sopts.cancel = &j->cancel;
  const int attempt = j->rec.attempts;
  if (attempt > 1) {
    if (config.faults.enabled()) {
      config.faults.seed = salt_seed(config.faults.seed, attempt);
    }
    if (sopts.failures.enabled()) {
      sopts.failures.seed = salt_seed(sopts.failures.seed, attempt);
    }
    // A retry re-runs from scratch: results are collected in memory, so a
    // pruned work list would leave holes in the maps. The manifest is
    // truncated by the fresh run.
    config.resume = false;
  }

  const auto started = Clock::now();
  try {
    core::AnalysisResult result = j->spec.simulate
                                      ? core::analyze_simulated(config, sopts)
                                      : core::analyze_threaded(config, topts);
    const double wall = seconds_between(started, Clock::now());
    fs::WorkMeter meter;
    for (const auto& c : result.stats.copies) meter += c.meter;

    std::unique_lock lk(mu_);
    running_--;
    tenant_locked(j->rec.tenant).running--;
    tenant_locked(j->rec.tenant).stats.busy_seconds += wall;
    j->rec.run_seconds += wall;
    j->rec.meter = meter;
    total_meter_ += meter;
    total_exec_ += result.stats.exec;
    j->rec.result_crc = result_checksum(result);
    if (j->spec.keep_result) j->rec.maps = std::move(result.maps);
    finish_locked(*j, JobState::Completed);
  } catch (const fs::CancelledError& e) {
    const double wall = seconds_between(started, Clock::now());
    std::unique_lock lk(mu_);
    running_--;
    tenant_locked(j->rec.tenant).running--;
    tenant_locked(j->rec.tenant).stats.busy_seconds += wall;
    j->rec.run_seconds += wall;
    j->rec.cancelled = true;
    counters_.cancelled++;
    j->rec.error = e.what();
    // Cancellation is never retried: the deadline (or the caller) decided
    // this job is over. Its checkpoint manifest stays resumable.
    finish_locked(*j, JobState::Failed);
  } catch (const std::exception& e) {
    const double wall = seconds_between(started, Clock::now());
    std::unique_lock lk(mu_);
    running_--;
    tenant_locked(j->rec.tenant).running--;
    tenant_locked(j->rec.tenant).stats.busy_seconds += wall;
    j->rec.run_seconds += wall;
    j->rec.error = e.what();
    if (attempt <= j->spec.max_retries && !j->cancel.load()) {
      counters_.retried++;
      const double backoff =
          j->spec.retry_backoff_s * static_cast<double>(1 << (attempt - 1));
      j->ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(backoff));
      j->rec.state = JobState::Pending;
      tenant_locked(j->rec.tenant).pending++;
      pending_.push_back(j);
      work_cv_.notify_all();
    } else {
      finish_locked(*j, JobState::Failed);
    }
  }
}

void JobManager::deadline_loop() {
  std::unique_lock lk(mu_);
  while (!stopping_) {
    const auto now = Clock::now();
    for (const auto& j : jobs_) {
      if (!j->has_deadline || j->deadline_fired || state_terminal(j->rec.state)) {
        continue;
      }
      if (now < j->deadline_at) continue;
      j->deadline_fired = true;
      j->rec.deadline_missed = true;
      counters_.deadline_missed++;
      if (j->rec.state == JobState::Pending) {
        // Expired before a worker ever picked it up: fail it in place.
        auto it = std::find(pending_.begin(), pending_.end(), j);
        if (it != pending_.end()) {
          pending_.erase(it);
          tenant_locked(j->rec.tenant).pending--;
        }
        j->rec.error = "deadline expired before dispatch";
        finish_locked(*j, JobState::Failed);
      } else if (j->rec.state == JobState::Running) {
        // Cooperative cancel: the executor observes the token, closes every
        // stream, drains in-flight buffers, and throws CancelledError.
        j->cancel.store(true, std::memory_order_release);
      }
    }
    const auto poll = std::chrono::duration<double, std::milli>(
        opt_.deadline_poll_ms > 0.0 ? opt_.deadline_poll_ms : 2.0);
    deadline_cv_.wait_for(lk, poll, [this] { return stopping_; });
  }
}

void JobManager::start() {
  std::lock_guard lk(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

bool JobManager::cancel(std::int64_t id) {
  std::unique_lock lk(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) return false;
  auto j = jobs_[static_cast<std::size_t>(id)];
  if (state_terminal(j->rec.state)) return false;
  if (j->rec.state == JobState::Pending) {
    auto it = std::find(pending_.begin(), pending_.end(), j);
    if (it != pending_.end()) {
      pending_.erase(it);
      tenant_locked(j->rec.tenant).pending--;
    }
    j->rec.error = "cancelled while pending";
    finish_locked(*j, JobState::Shed);
    return true;
  }
  j->cancel.store(true, std::memory_order_release);
  return true;
}

JobRecord JobManager::wait(std::int64_t id) {
  std::unique_lock lk(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) {
    throw std::out_of_range("unknown job id " + std::to_string(id));
  }
  auto j = jobs_[static_cast<std::size_t>(id)];
  done_cv_.wait(lk, [&] { return state_terminal(j->rec.state); });
  return j->rec;
}

void JobManager::drain() {
  start();
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [this] { return unfinished_ == 0; });
}

void JobManager::shutdown() {
  drain();
  {
    std::lock_guard lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    work_cv_.notify_all();
    deadline_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (deadline_watcher_.joinable()) deadline_watcher_.join();
}

JobRecord JobManager::job(std::int64_t id) const {
  std::lock_guard lk(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) {
    throw std::out_of_range("unknown job id " + std::to_string(id));
  }
  return jobs_[static_cast<std::size_t>(id)]->rec;
}

ServiceStats JobManager::snapshot() const {
  std::lock_guard lk(mu_);
  ServiceStats s;
  s.counters = counters_;
  s.meter = total_meter_;
  s.exec = total_exec_;
  s.tenants.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) s.tenants.push_back(t.stats);
  s.jobs.reserve(jobs_.size());
  for (const auto& j : jobs_) s.jobs.push_back(j->rec);
  if (opt_.tile_cache) {
    const io::TileCacheConfig& cfg = opt_.tile_cache->config();
    const io::TileCacheStats cs = opt_.tile_cache->stats();
    s.cache.present = true;
    s.cache.policy = std::string(io::cache_policy_name(cfg.policy));
    s.cache.budget_bytes = static_cast<std::int64_t>(cfg.budget_bytes);
    s.cache.tile_w = cfg.tile_w;
    s.cache.tile_h = cfg.tile_h;
    s.cache.prefetch_depth = cfg.prefetch_depth;
    s.cache.lookups = cs.lookups;
    s.cache.hits = cs.hits;
    s.cache.misses = cs.misses;
    s.cache.bytes_read_disk = total_meter_.disk_bytes_read;
    s.cache.bytes_served_cache = cs.bytes_served;
    s.cache.prefetch_issued = cs.prefetch_issued;
    s.cache.prefetch_useful = cs.prefetch_useful;
    s.cache.evictions = cs.evictions;
    s.cache.resident_bytes = cs.resident_bytes;
    // Fold each tenant's cache slice into its TenantStats row (tenants the
    // cache saw but the manager never admitted a job for are skipped).
    for (const io::TenantCacheStats& tc : opt_.tile_cache->tenant_stats()) {
      for (TenantStats& row : s.tenants) {
        if (row.tenant != tc.tenant) continue;
        row.cache_hits = tc.hits;
        row.cache_misses = tc.misses;
        row.cache_bytes_served = tc.bytes_served;
        row.cache_resident_bytes = tc.resident_bytes;
      }
    }
  }
  if (opt_.tail.enabled() && opt_.latency) {
    const io::TailConfig& cfg = opt_.tail;
    const io::LatencyTracker& lt = *opt_.latency;
    s.tail.present = true;
    s.tail.deadline_mode =
        !cfg.deadline_enabled ? "off" : (cfg.deadline_ms > 0.0 ? "fixed" : "auto");
    s.tail.deadline_ms = cfg.deadline_ms;
    s.tail.deadline_k = cfg.deadline_k;
    s.tail.deadline_floor_ms = cfg.deadline_floor_ms;
    s.tail.deadline_ceiling_ms = cfg.deadline_ceiling_ms;
    s.tail.hedge_enabled = cfg.hedge_enabled;
    s.tail.hedge_pct = cfg.hedge_pct;
    s.tail.hedge_max_inflight = cfg.hedge_max_inflight;
    s.tail.hedges_issued = lt.hedges_issued.load();
    s.tail.hedges_won = lt.hedges_won.load();
    s.tail.hedges_abandoned = lt.hedges_abandoned.load();
    s.tail.reads_abandoned = lt.reads_abandoned.load();
    s.tail.breaches = lt.breaches.load();
    s.tail.evictions_slow = lt.evictions_slow.load();
    // Rows for nodes that served at least one pooled read (a service-wide
    // tracker is sized generously, so silent all-zero rows are just noise).
    for (const io::NodeLatencyStats& n : lt.snapshot()) {
      if (n.reads == 0 && n.breaches == 0) continue;
      s.tail.reads += n.reads;
      s.tail.nodes.push_back(
          {n.node, n.reads, n.ewma_ms, n.p50_ms, n.p99_ms, n.breaches});
    }
  }
  return s;
}

std::size_t JobManager::pending_count() const {
  std::lock_guard lk(mu_);
  return pending_.size();
}

std::size_t JobManager::running_count() const {
  std::lock_guard lk(mu_);
  return running_;
}

}  // namespace h4d::svc
