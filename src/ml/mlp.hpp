// A small feedforward neural network (multi-layer perceptron).
//
// The paper's clinical workflow feeds Haralick texture features into a
// neural network trained against radiologist-annotated images: "once
// trained, the neural network becomes a convenient tool for discovering
// cancerous tissue given the texture analysis results" (Sec. 1). This
// module provides that downstream consumer: dense layers with tanh hidden
// activations and a sigmoid output, trained with mini-batch SGD on binary
// cross-entropy. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <filesystem>
#include <random>
#include <vector>

namespace h4d::ml {

/// Row-major sample matrix: samples.size() == rows * cols.
struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  Matrix() = default;
  Matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  const double* row(std::size_t r) const { return data.data() + r * cols; }
};

/// Per-feature standardization (zero mean, unit variance) fitted on the
/// training set and applied to any future input.
class Standardizer {
 public:
  Standardizer() = default;
  static Standardizer fit(const Matrix& x);
  void apply(Matrix& x) const;
  std::vector<double> apply(const std::vector<double>& row) const;

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stddevs() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

struct TrainOptions {
  int epochs = 200;
  std::size_t batch_size = 32;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  unsigned seed = 1;
  bool shuffle = true;
};

struct TrainReport {
  std::vector<double> epoch_loss;  ///< mean BCE per epoch
  double final_loss = 0.0;
};

/// Binary classifier MLP: D inputs -> hidden layers (tanh) -> 1 sigmoid.
class Mlp {
 public:
  /// `layers` = {inputs, hidden..., 1}; the last layer must be 1 wide.
  Mlp(std::vector<std::size_t> layers, unsigned seed = 1);

  /// Probability of the positive class for one standardized sample.
  double predict(const double* x) const;
  double predict(const std::vector<double>& x) const;

  /// Mini-batch SGD on binary cross-entropy. `y` holds 0/1 labels.
  TrainReport train(const Matrix& x, const std::vector<double>& y,
                    const TrainOptions& options);

  /// Mean binary cross-entropy over a set.
  double loss(const Matrix& x, const std::vector<double>& y) const;

  const std::vector<std::size_t>& layer_sizes() const { return sizes_; }

  void save(const std::filesystem::path& path) const;
  static Mlp load(const std::filesystem::path& path);

  /// Analytic gradient of the loss on one sample w.r.t. every parameter,
  /// flattened in (layer, weight-then-bias) order. Exposed for the
  /// numerical gradient check in the tests.
  std::vector<double> gradient(const double* x, double y) const;
  std::vector<double> parameters() const;
  void set_parameters(const std::vector<double>& flat);

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;  // out
  };

  /// Forward pass keeping activations; returns output probability.
  double forward(const double* x, std::vector<std::vector<double>>& acts) const;
  void accumulate_gradient(const double* x, double y,
                           std::vector<Layer>& grads) const;

  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
};

/// Area under the ROC curve from scores and binary labels (rank statistic;
/// ties get half credit). Returns 0.5 when one class is absent.
double roc_auc(const std::vector<double>& scores, const std::vector<double>& labels);

/// Classification accuracy at a 0.5 threshold.
double accuracy(const std::vector<double>& scores, const std::vector<double>& labels,
                double threshold = 0.5);

}  // namespace h4d::ml
