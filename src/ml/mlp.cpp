#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace h4d::ml {

namespace {

constexpr double kEps = 1e-12;

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double bce(double p, double y) {
  p = std::clamp(p, kEps, 1.0 - kEps);
  return -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
}

}  // namespace

Standardizer Standardizer::fit(const Matrix& x) {
  if (x.rows == 0) throw std::invalid_argument("Standardizer::fit: empty matrix");
  Standardizer s;
  s.mean_.assign(x.cols, 0.0);
  s.std_.assign(x.cols, 0.0);
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < x.cols; ++c) s.mean_[c] += x.at(r, c);
  }
  for (double& m : s.mean_) m /= static_cast<double>(x.rows);
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < x.cols; ++c) {
      const double d = x.at(r, c) - s.mean_[c];
      s.std_[c] += d * d;
    }
  }
  for (double& v : s.std_) {
    v = std::sqrt(v / static_cast<double>(x.rows));
    if (v < 1e-12) v = 1.0;  // constant features pass through centered
  }
  return s;
}

void Standardizer::apply(Matrix& x) const {
  if (x.cols != mean_.size()) throw std::invalid_argument("Standardizer: width mismatch");
  for (std::size_t r = 0; r < x.rows; ++r) {
    for (std::size_t c = 0; c < x.cols; ++c) {
      x.at(r, c) = (x.at(r, c) - mean_[c]) / std_[c];
    }
  }
}

std::vector<double> Standardizer::apply(const std::vector<double>& row) const {
  if (row.size() != mean_.size()) throw std::invalid_argument("Standardizer: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = (row[c] - mean_[c]) / std_[c];
  return out;
}

Mlp::Mlp(std::vector<std::size_t> layers, unsigned seed) : sizes_(std::move(layers)) {
  if (sizes_.size() < 2) throw std::invalid_argument("Mlp: need at least input and output");
  if (sizes_.back() != 1) throw std::invalid_argument("Mlp: binary classifier needs 1 output");
  for (std::size_t s : sizes_) {
    if (s == 0) throw std::invalid_argument("Mlp: zero-width layer");
  }
  std::mt19937_64 rng(seed);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.in = sizes_[l];
    layer.out = sizes_[l + 1];
    // Xavier/Glorot initialization.
    const double scale = std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    std::uniform_real_distribution<double> u(-scale, scale);
    layer.w.resize(layer.out * layer.in);
    layer.b.assign(layer.out, 0.0);
    for (double& w : layer.w) w = u(rng);
    layers_.push_back(std::move(layer));
  }
}

double Mlp::forward(const double* x, std::vector<std::vector<double>>& acts) const {
  acts.clear();
  acts.emplace_back(x, x + sizes_[0]);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> z(layer.out);
    const std::vector<double>& prev = acts.back();
    for (std::size_t o = 0; o < layer.out; ++o) {
      double acc = layer.b[o];
      const double* wrow = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) acc += wrow[i] * prev[i];
      z[o] = acc;
    }
    const bool last = l + 1 == layers_.size();
    for (double& v : z) v = last ? sigmoid(v) : std::tanh(v);
    acts.push_back(std::move(z));
  }
  return acts.back()[0];
}

double Mlp::predict(const double* x) const {
  std::vector<std::vector<double>> acts;
  return forward(x, acts);
}

double Mlp::predict(const std::vector<double>& x) const {
  if (x.size() != sizes_[0]) throw std::invalid_argument("Mlp::predict: width mismatch");
  return predict(x.data());
}

void Mlp::accumulate_gradient(const double* x, double y, std::vector<Layer>& grads) const {
  std::vector<std::vector<double>> acts;
  const double p = forward(x, acts);

  // delta for the output layer: dL/dz = p - y (sigmoid + BCE).
  std::vector<double> delta{p - y};
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Layer& layer = layers_[l];
    Layer& g = grads[l];
    const std::vector<double>& input = acts[l];
    for (std::size_t o = 0; o < layer.out; ++o) {
      g.b[o] += delta[o];
      double* grow = g.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) grow[i] += delta[o] * input[i];
    }
    if (l == 0) break;
    // Backpropagate: delta_prev = (W^T delta) * tanh'(a_prev).
    std::vector<double> prev_delta(layer.in, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double* wrow = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) prev_delta[i] += wrow[i] * delta[o];
    }
    for (std::size_t i = 0; i < layer.in; ++i) {
      const double a = acts[l][i];  // tanh activation of layer l-1's output
      prev_delta[i] *= (1.0 - a * a);
    }
    delta = std::move(prev_delta);
  }
}

std::vector<double> Mlp::gradient(const double* x, double y) const {
  std::vector<Layer> grads;
  for (const Layer& l : layers_) {
    Layer g;
    g.in = l.in;
    g.out = l.out;
    g.w.assign(l.w.size(), 0.0);
    g.b.assign(l.b.size(), 0.0);
    grads.push_back(std::move(g));
  }
  accumulate_gradient(x, y, grads);
  std::vector<double> flat;
  for (const Layer& g : grads) {
    flat.insert(flat.end(), g.w.begin(), g.w.end());
    flat.insert(flat.end(), g.b.begin(), g.b.end());
  }
  return flat;
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> flat;
  for (const Layer& l : layers_) {
    flat.insert(flat.end(), l.w.begin(), l.w.end());
    flat.insert(flat.end(), l.b.begin(), l.b.end());
  }
  return flat;
}

void Mlp::set_parameters(const std::vector<double>& flat) {
  std::size_t pos = 0;
  for (Layer& l : layers_) {
    for (double& w : l.w) w = flat.at(pos++);
    for (double& b : l.b) b = flat.at(pos++);
  }
  if (pos != flat.size()) throw std::invalid_argument("Mlp::set_parameters: size mismatch");
}

TrainReport Mlp::train(const Matrix& x, const std::vector<double>& y,
                       const TrainOptions& options) {
  if (x.rows != y.size()) throw std::invalid_argument("Mlp::train: rows != labels");
  if (x.cols != sizes_[0]) throw std::invalid_argument("Mlp::train: width mismatch");
  if (x.rows == 0) throw std::invalid_argument("Mlp::train: empty training set");

  std::mt19937_64 rng(options.seed);
  std::vector<std::size_t> order(x.rows);
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  std::vector<Layer> grads;
  for (const Layer& l : layers_) {
    Layer g;
    g.in = l.in;
    g.out = l.out;
    g.w.assign(l.w.size(), 0.0);
    g.b.assign(l.b.size(), 0.0);
    grads.push_back(std::move(g));
  }

  const std::size_t batch = std::max<std::size_t>(1, options.batch_size);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle) std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < x.rows; start += batch) {
      const std::size_t end = std::min(x.rows, start + batch);
      for (Layer& g : grads) {
        std::fill(g.w.begin(), g.w.end(), 0.0);
        std::fill(g.b.begin(), g.b.end(), 0.0);
      }
      for (std::size_t i = start; i < end; ++i) {
        accumulate_gradient(x.row(order[i]), y[order[i]], grads);
      }
      const double scale = options.learning_rate / static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        for (std::size_t k = 0; k < layers_[l].w.size(); ++k) {
          layers_[l].w[k] -= scale * grads[l].w[k] +
                             options.learning_rate * options.l2 * layers_[l].w[k];
        }
        for (std::size_t k = 0; k < layers_[l].b.size(); ++k) {
          layers_[l].b[k] -= scale * grads[l].b[k];
        }
      }
    }
    report.epoch_loss.push_back(loss(x, y));
  }
  report.final_loss = report.epoch_loss.empty() ? loss(x, y) : report.epoch_loss.back();
  return report;
}

double Mlp::loss(const Matrix& x, const std::vector<double>& y) const {
  double total = 0.0;
  for (std::size_t r = 0; r < x.rows; ++r) total += bce(predict(x.row(r)), y[r]);
  return total / static_cast<double>(std::max<std::size_t>(1, x.rows));
}

void Mlp::save(const std::filesystem::path& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Mlp::save: cannot open " + path.string());
  f << "mlp 1\nlayers";
  for (std::size_t s : sizes_) f << ' ' << s;
  f << '\n';
  f.precision(17);
  for (const Layer& l : layers_) {
    for (double w : l.w) f << w << ' ';
    for (double b : l.b) f << b << ' ';
    f << '\n';
  }
  if (!f) throw std::runtime_error("Mlp::save: short write to " + path.string());
}

Mlp Mlp::load(const std::filesystem::path& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("Mlp::load: cannot open " + path.string());
  std::string magic;
  int version = 0;
  f >> magic >> version;
  if (magic != "mlp" || version != 1) {
    throw std::runtime_error("Mlp::load: bad header in " + path.string());
  }
  std::string key;
  f >> key;
  if (key != "layers") throw std::runtime_error("Mlp::load: missing layers");
  std::vector<std::size_t> sizes;
  {
    std::string line;
    std::getline(f, line);
    std::istringstream is(line);
    std::size_t s;
    while (is >> s) sizes.push_back(s);
  }
  Mlp net(sizes, 0);
  for (Layer& l : net.layers_) {
    for (double& w : l.w) f >> w;
    for (double& b : l.b) f >> b;
  }
  if (!f) throw std::runtime_error("Mlp::load: truncated parameters in " + path.string());
  return net;
}

double roc_auc(const std::vector<double>& scores, const std::vector<double>& labels) {
  if (scores.size() != labels.size()) throw std::invalid_argument("roc_auc: size mismatch");
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  // Mean rank of positives (ties averaged), Mann-Whitney U.
  double rank_sum = 0.0;
  std::size_t positives = 0, negatives = 0;
  std::size_t i = 0;
  double rank = 1.0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = rank + static_cast<double>(j - i - 1) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5) {
        rank_sum += avg_rank;
        ++positives;
      } else {
        ++negatives;
      }
    }
    rank += static_cast<double>(j - i);
    i = j;
  }
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum - static_cast<double>(positives) *
                                  (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double accuracy(const std::vector<double>& scores, const std::vector<double>& labels,
                double threshold) {
  if (scores.size() != labels.size()) throw std::invalid_argument("accuracy: size mismatch");
  if (scores.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (pred == (labels[i] > 0.5)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

}  // namespace h4d::ml
