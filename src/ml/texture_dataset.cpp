#include "ml/texture_dataset.hpp"

#include <random>
#include <stdexcept>

#include "nd/raster.hpp"

namespace h4d::ml {

LabeledSamples build_samples(const std::map<haralick::Feature, Volume4<float>>& maps,
                             const Volume4<std::uint8_t>& labels, const Vec4& roi_dims,
                             double negative_keep, unsigned seed) {
  if (maps.empty()) throw std::invalid_argument("build_samples: no feature maps");
  if (!(negative_keep > 0.0) || negative_keep > 1.0) {
    throw std::invalid_argument("build_samples: negative_keep must be in (0, 1]");
  }

  const Vec4 map_dims = maps.begin()->second.dims();
  for (const auto& [f, m] : maps) {
    if (m.dims() != map_dims) {
      throw std::invalid_argument("build_samples: inconsistent map dimensions");
    }
  }
  const Vec4 half{roi_dims[0] / 2, roi_dims[1] / 2, roi_dims[2] / 2, roi_dims[3] / 2};
  // Map origin o corresponds to labels voxel o + half (ROI center).
  const Vec4 needed = map_dims + half;
  if (!needed.all_le(labels.dims())) {
    throw std::invalid_argument("build_samples: label volume too small for the maps");
  }

  LabeledSamples out;
  for (const auto& [f, m] : maps) out.features.push_back(f);

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> rows;
  const Region4 all = Region4::whole(map_dims);
  for (const Vec4& o : raster(all)) {
    const bool positive = labels.at(o + half) != 0;
    if (!positive && u(rng) > negative_keep) continue;
    for (const auto& [f, m] : maps) rows.push_back(static_cast<double>(m.at(o)));
    out.y.push_back(positive ? 1.0 : 0.0);
    out.origins.push_back(o);
  }

  out.x.rows = out.y.size();
  out.x.cols = maps.size();
  out.x.data = std::move(rows);
  return out;
}

}  // namespace h4d::ml
