// Bridges texture feature maps and the classifier: builds labeled per-ROI
// sample matrices from analysis results and a ground-truth mask.
#pragma once

#include <map>

#include "haralick/features.hpp"
#include "ml/mlp.hpp"
#include "nd/volume4.hpp"

namespace h4d::ml {

struct LabeledSamples {
  Matrix x;                   ///< one row per ROI origin, one column per feature
  std::vector<double> y;      ///< 0/1 labels
  std::vector<Vec4> origins;  ///< origin of each row
  std::vector<haralick::Feature> features;  ///< column order
};

/// One sample per ROI origin: the feature vector is each map's value at the
/// origin; the label is labels.at(origin + roi_dims/2) != 0 (the ROI's
/// center voxel). `negative_keep` in (0, 1] subsamples the (usually
/// dominant) negative class deterministically by `seed`.
LabeledSamples build_samples(const std::map<haralick::Feature, Volume4<float>>& maps,
                             const Volume4<std::uint8_t>& labels, const Vec4& roi_dims,
                             double negative_keep = 1.0, unsigned seed = 1);

}  // namespace h4d::ml
