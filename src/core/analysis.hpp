// High-level public API.
//
// Three entry points cover the library's use cases:
//   * analyze_in_memory   — sequential reference on an in-memory volume;
//   * analyze_threaded    — the real parallel pipeline on this machine
//                           (disk-resident dataset, one thread per copy);
//   * analyze_simulated   — the same pipeline on a modeled cluster in
//                           virtual time (reproduction of the paper's
//                           experiments; outputs identical to the above).
#pragma once

#include <map>

#include "core/pipeline.hpp"
#include "fs/executor_threads.hpp"
#include "sim/executor_sim.hpp"

namespace h4d::core {

/// Result of an analysis run: one 4D feature map per selected feature,
/// covering every valid ROI origin, plus execution statistics.
struct AnalysisResult {
  Region4 origins;  ///< region the maps cover (all valid ROI origins)
  std::map<haralick::Feature, Volume4<float>> maps;
  std::map<haralick::Feature, std::pair<float, float>> ranges;  ///< min/max
  fs::RunStats stats;
  sim::SimStats sim;  ///< populated by analyze_simulated only
  /// Resilience accounting of the run: retries, checksum failures, and the
  /// exact slices degraded to fill under skip_and_fill.
  io::FaultReport faults;
};

/// Sequential reference implementation (paper Fig. 2) on an in-memory
/// uint16 volume. Requantizes by the volume's min/max.
AnalysisResult analyze_in_memory(const Volume4<std::uint16_t>& volume,
                                 const haralick::EngineConfig& engine);

/// Run the pipeline with the threaded executor. The configuration's output
/// mode is overridden to Collect so maps are returned. `threaded_options`
/// carries executor tuning and observability hooks (queue depth, tracing).
AnalysisResult analyze_threaded(PipelineConfig config,
                                const fs::ThreadedOptions& threaded_options = {});

/// Run the pipeline on a simulated cluster. Outputs are identical to the
/// threaded run; stats/sim carry virtual-time figures.
AnalysisResult analyze_simulated(PipelineConfig config, const sim::SimOptions& sim_options);

}  // namespace h4d::core
