#include "core/pipeline.hpp"

#include <stdexcept>

#include "filters/input_filters.hpp"
#include "filters/texture_filters.hpp"

namespace h4d::core {

using filters::kPortChunks;
using filters::kPortFeatures;
using filters::kPortMaps;
using filters::kPortMatrices;
using filters::kPortPieces;

namespace {

/// Single-copy placement on the first listed node (or node 0).
std::vector<int> first_node(const std::vector<int>& nodes) {
  return {nodes.empty() ? 0 : nodes.front()};
}

}  // namespace

filters::ParamsPtr make_params(const PipelineConfig& config) {
  filters::PipelineParams p;
  p.dataset_root = config.dataset_root;
  p.meta = io::DatasetMeta::load(config.dataset_root);
  p.engine = config.engine;
  p.io_chunk = config.io_chunk;
  p.texture_chunk = config.texture_chunk;
  p.iic_copies = config.iic_copies;
  p.packets_per_chunk = config.packets_per_chunk;
  p.feature_buffer_samples = config.feature_buffer_samples;
  p.resilience = config.resilience;
  p.dead_nodes = config.dead_nodes;
  p.faults = config.faults;
  p.checkpoint_path = config.checkpoint_path;
  p.resume = config.resume;
  p.job_tag = config.job_tag;
  p.cache = config.cache;
  p.tile_cache = config.tile_cache;
  p.cache_tenant = config.cache_tenant;
  p.tail = config.tail;
  p.latency = config.latency;
  p.io_pool = config.io_pool;
  return filters::PipelineParams::make(std::move(p));
}

fs::FilterGraph build_pipeline(const PipelineConfig& config,
                               std::shared_ptr<filters::CollectedResults> collected) {
  return build_pipeline(config, make_params(config), std::move(collected));
}

fs::FilterGraph build_pipeline(const PipelineConfig& config, filters::ParamsPtr params,
                               std::shared_ptr<filters::CollectedResults> collected) {
  if (config.rfr_copies != params->meta.storage_nodes) {
    throw std::invalid_argument(
        "build_pipeline: rfr_copies (" + std::to_string(config.rfr_copies) +
        ") must equal the dataset's storage node count (" +
        std::to_string(params->meta.storage_nodes) + ")");
  }
  if (config.output == OutputMode::Collect && !collected) {
    throw std::invalid_argument("build_pipeline: Collect output needs a CollectedResults");
  }

  fs::FilterGraph g;

  const int rfr = g.add_filter({"RFR",
                                [params] { return std::make_unique<filters::RawFileReader>(params); },
                                config.rfr_copies, config.rfr_nodes});
  const int iic = g.add_filter(
      {"IIC",
       [params] { return std::make_unique<filters::InputImageConstructor>(params); },
       config.iic_copies, config.iic_nodes});

  // RFR -> IIC: explicit routing — pieces of one chunk must reach the chunk's
  // owning IIC copy (paper Sec. 5.2: explicit IIC copies).
  g.connect(rfr, kPortPieces, iic, fs::Policy::Explicit,
            [](const fs::BufferHeader& h, int /*ncopies*/) { return static_cast<int>(h.aux); });

  int texture_out = -1;  // filter id whose kPortFeatures feeds the output stage
  if (config.variant == Variant::HMP) {
    const int hmp = g.add_filter(
        {"HMP",
         [params] { return std::make_unique<filters::HaralickMatrixProducer>(params); },
         config.hmp_copies, config.hmp_nodes});
    g.connect(iic, kPortChunks, hmp, config.chunk_policy);
    texture_out = hmp;
  } else {
    const int hcc = g.add_filter(
        {"HCC",
         [params] { return std::make_unique<filters::HaralickCoMatrixCalculator>(params); },
         config.hcc_copies, config.hcc_nodes});
    const int hpc = g.add_filter(
        {"HPC",
         [params] { return std::make_unique<filters::HaralickParameterCalculator>(params); },
         config.hpc_copies, config.hpc_nodes});
    g.connect(iic, kPortChunks, hcc, config.chunk_policy);
    g.connect(hcc, kPortMatrices, hpc, config.matrix_policy, config.matrix_route);
    texture_out = hpc;
  }

  switch (config.output) {
    case OutputMode::Unstitched: {
      const auto dir = config.output_dir;
      const int uso = g.add_filter(
          {"USO",
           [params, dir] { return std::make_unique<filters::UnstitchedOutput>(params, dir); },
           config.uso_copies, config.uso_nodes});
      g.connect(texture_out, kPortFeatures, uso, config.output_policy);
      break;
    }
    case OutputMode::Images: {
      const int hic = g.add_filter(
          {"HIC",
           [params] { return std::make_unique<filters::HaralickImageConstructor>(params); },
           1, first_node(config.uso_nodes)});
      const auto dir = config.output_dir;
      const int jiw = g.add_filter(
          {"JIW",
           [params, dir] { return std::make_unique<filters::ImageSeriesWriter>(params, dir); },
           1, first_node(config.uso_nodes)});
      g.connect(texture_out, kPortFeatures, hic, fs::Policy::RoundRobin);
      g.connect(hic, kPortMaps, jiw, fs::Policy::RoundRobin);
      break;
    }
    case OutputMode::Collect: {
      const int hic = g.add_filter(
          {"HIC",
           [params] { return std::make_unique<filters::HaralickImageConstructor>(params); },
           1, first_node(config.uso_nodes)});
      const int sink = g.add_filter(
          {"Collector",
           [params, collected] { return std::make_unique<filters::ResultCollector>(params, collected); },
           1, first_node(config.uso_nodes)});
      g.connect(texture_out, kPortFeatures, hic, fs::Policy::RoundRobin);
      g.connect(hic, kPortMaps, sink, fs::Policy::RoundRobin);
      break;
    }
  }
  g.validate();
  return g;
}

}  // namespace h4d::core
