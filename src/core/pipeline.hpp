// Pipeline assembly: builds the paper's filter graphs (Figures 4 and 5) from
// a declarative configuration.
#pragma once

#include <filesystem>
#include <memory>

#include "filters/output_filters.hpp"
#include "filters/params.hpp"
#include "fs/graph.hpp"

namespace h4d::core {

/// Which texture-filter instantiation to build (paper Figures 4 vs 5).
enum class Variant {
  HMP,    ///< fused: transparent copies of a single HMP filter
  Split,  ///< task-split: HCC copies pipelined into HPC copies
};

/// Where the pipeline's results go.
enum class OutputMode {
  Unstitched,  ///< USO filter: per-stream sample files (or accounting only)
  Images,      ///< HIC -> JIW: assembled maps written as PGM slice series
  Collect,     ///< HIC -> in-memory collector (library API)
};

struct PipelineConfig {
  std::filesystem::path dataset_root;
  haralick::EngineConfig engine;

  Vec4 io_chunk{0, 0, 1, 1};          ///< 0 => whole slice (paper Sec. 5.1)
  Vec4 texture_chunk{64, 64, 8, 8};   ///< IIC->TEXTURE chunk extents
  int packets_per_chunk = 4;
  int feature_buffer_samples = 4096;

  Variant variant = Variant::HMP;
  OutputMode output = OutputMode::Unstitched;
  std::filesystem::path output_dir;  ///< empty => account writes, keep no files

  /// Copies and their node placement. An empty node list places every copy
  /// on node 0. RFR copy k always reads storage node k, so rfr copies must
  /// equal the dataset's storage node count.
  int rfr_copies = 1;
  std::vector<int> rfr_nodes;
  int iic_copies = 1;
  std::vector<int> iic_nodes;
  int hmp_copies = 1;              ///< Variant::HMP
  std::vector<int> hmp_nodes;
  int hcc_copies = 1;              ///< Variant::Split
  std::vector<int> hcc_nodes;
  int hpc_copies = 1;
  std::vector<int> hpc_nodes;
  int uso_copies = 1;              ///< also hosts HIC/JIW/collector
  std::vector<int> uso_nodes;

  fs::Policy chunk_policy = fs::Policy::DemandDriven;   ///< IIC -> texture
  fs::Policy matrix_policy = fs::Policy::DemandDriven;  ///< HCC -> HPC
  fs::RouteFn matrix_route;  ///< required when matrix_policy is Explicit
  fs::Policy output_policy = fs::Policy::DemandDriven;  ///< texture -> USO

  /// Storage-fault handling of the RFR read path (retry budget, checksum
  /// verification, degradation policy for irrecoverable slices).
  io::ResilienceConfig resilience;
  /// Storage nodes the operator declares dead (--dead-nodes). Their RFR
  /// copies read nothing; slice ownership moves to the surviving replicas.
  /// Node directories missing at open are detected and added automatically.
  std::vector<int> dead_nodes;
  /// Deterministic fault injection (resilience drills / tests); a
  /// default-constructed config injects nothing.
  io::FaultConfig faults;

  /// Chunk-completion manifest for checkpoint/resume (empty => disabled).
  /// With `resume`, chunks already recorded in the manifest are pruned from
  /// the work list before the run starts.
  std::filesystem::path checkpoint_path;
  bool resume = false;
  /// Identity of the job this run belongs to, folded into the checkpoint
  /// manifest's ownership token (with the dataset and the chunk-grid
  /// parameters). Concurrent jobs (src/svc) namespace their manifests by job
  /// id AND stamp this tag, so --resume refuses a manifest written by a
  /// different job or configuration instead of pruning the wrong chunks.
  /// Empty: ownership covers only dataset + configuration.
  std::string job_tag;

  /// Shared out-of-core tile cache between the RFR readers and the slice
  /// files (--tile-cache-mb/--tile-shape/--prefetch-depth/--cache-policy).
  /// A zero budget disables it. When `tile_cache` is set (service layer /
  /// bench harnesses), that process-wide instance is used instead of a
  /// private one — except under fault injection, where the run always gets
  /// a private cache so deterministic drills stay byte-identical.
  io::TileCacheConfig cache;
  std::shared_ptr<io::TileCache> tile_cache;
  /// Tenant the cached bytes are accounted to (svc: the job's tenant).
  std::string cache_tenant;

  /// Tail-tolerant I/O on the RFR read path (--read-deadline-ms,
  /// --hedge-pct, --hedge-max-inflight): adaptive per-read deadlines,
  /// hedged replica reads, slow-node eviction. Default-constructed = off.
  /// When `latency` / `io_pool` are set (service layer), those shared
  /// instances are used — node latency reputation then spans jobs;
  /// make_params builds private ones otherwise.
  io::TailConfig tail;
  std::shared_ptr<io::LatencyTracker> latency;
  std::shared_ptr<io::SliceFetchPool> io_pool;
};

/// Build the filter graph for a configuration. When `collected` is non-null
/// and output == Collect, assembled maps land there after execution.
fs::FilterGraph build_pipeline(const PipelineConfig& config,
                               std::shared_ptr<filters::CollectedResults> collected = {});

/// Same, with a caller-provided parameter block (from make_params). Lets the
/// caller keep a handle on the run's shared state — notably the fault-report
/// sink filled in during execution.
fs::FilterGraph build_pipeline(const PipelineConfig& config, filters::ParamsPtr params,
                               std::shared_ptr<filters::CollectedResults> collected);

/// The shared parameter block the builder derives (exposed for tests).
filters::ParamsPtr make_params(const PipelineConfig& config);

}  // namespace h4d::core
