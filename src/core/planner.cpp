#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <stdexcept>

#include "nd/quantize.hpp"
#include "nd/raster.hpp"

namespace h4d::core {

using haralick::Glcm;
using haralick::Representation;
using haralick::SparseGlcm;

std::pair<int, int> apportion_split(double cost_ratio, int texture_nodes) {
  if (!(cost_ratio > 0.0)) throw std::invalid_argument("apportion_split: ratio must be > 0");
  if (texture_nodes < 1) throw std::invalid_argument("apportion_split: need >= 1 node");
  if (texture_nodes == 1) return {1, 0};  // co-located on the single node
  const double hcc_share = cost_ratio / (cost_ratio + 1.0);
  int hcc = static_cast<int>(std::lround(hcc_share * texture_nodes));
  hcc = std::clamp(hcc, 1, texture_nodes - 1);
  return {hcc, texture_nodes - hcc};
}

SplitPlan plan_split(const Volume4<Level>& probe, const haralick::EngineConfig& engine,
                     const sim::CostModel& cost, int texture_nodes, int max_probe_rois) {
  const Region4 origins = roi_origin_region(probe.dims(), engine.roi_dims);
  if (origins.empty()) {
    throw std::invalid_argument("plan_split: probe volume smaller than the ROI");
  }
  if (max_probe_rois < 1) throw std::invalid_argument("plan_split: need >= 1 probe ROI");

  const auto dirs = engine.effective_directions();
  const std::int64_t total = origins.volume();
  const std::int64_t stride = std::max<std::int64_t>(1, total / max_probe_rois);

  fs::WorkMeter hcc_meter, hpc_meter;
  std::int64_t probed = 0;
  std::int64_t index = 0;
  for (const Vec4& origin : raster(origins)) {
    if (index++ % stride != 0) continue;
    ++probed;

    // HCC stage: matrix construction (+ sparse compression when configured).
    Glcm g(engine.num_levels);
    hcc_meter.work.glcm_pair_updates +=
        g.accumulate(probe.view(), Region4{origin, engine.roi_dims}, dirs);
    hcc_meter.work.matrices_built += 1;
    if (engine.representation == Representation::Sparse) {
      const SparseGlcm s = SparseGlcm::from_dense(g);
      hcc_meter.work.sparse_compress_cells +=
          static_cast<std::int64_t>(engine.num_levels) * engine.num_levels;
      hcc_meter.work.sparse_entries_emitted += static_cast<std::int64_t>(s.nnz());
      // HPC stage, sparse path.
      haralick::compute_features(s, engine.features, &hpc_meter.work);
    } else {
      haralick::compute_features(g, engine.features, engine.zero_policy, &hpc_meter.work);
    }
  }

  SplitPlan plan;
  plan.hcc_cost_per_roi = cost.compute_seconds(hcc_meter) / static_cast<double>(probed);
  plan.hpc_cost_per_roi = cost.compute_seconds(hpc_meter) / static_cast<double>(probed);
  if (plan.hpc_cost_per_roi <= 0.0) {
    throw std::logic_error("plan_split: degenerate HPC cost");
  }
  plan.cost_ratio = plan.hcc_cost_per_roi / plan.hpc_cost_per_roi;
  std::tie(plan.hcc_nodes, plan.hpc_nodes) = apportion_split(plan.cost_ratio, texture_nodes);
  return plan;
}

SplitPlan plan_split_dataset(const io::DiskDataset& dataset,
                             const haralick::EngineConfig& engine,
                             const sim::CostModel& cost, int texture_nodes,
                             const io::ResilienceConfig& resilience,
                             io::FaultInjector* injector, io::FaultReport* report,
                             int max_probe_rois) {
  const io::DatasetMeta& meta = dataset.meta();
  // Probe extent: two ROIs per axis gives plan_split a few origins to sample
  // without pulling the whole dataset off disk.
  Vec4 probe_dims;
  for (int d = 0; d < kDims; ++d) {
    probe_dims[d] = std::min(meta.dims[d], 2 * engine.roi_dims[d]);
  }
  if (!Region4::whole(meta.dims).contains(Region4{{0, 0, 0, 0}, engine.roi_dims})) {
    throw std::invalid_argument("plan_split_dataset: dataset smaller than the ROI");
  }
  const Volume4<std::uint16_t> raw = dataset.read_region(
      Region4{{0, 0, 0, 0}, probe_dims}, resilience, injector, report);
  const Quantizer quant(meta.value_min, meta.value_max, engine.num_levels);
  Volume4<Level> probe(raw.dims());
  quantize_into<std::uint16_t>(raw.view(), quant, probe.view());
  return plan_split(probe, engine, cost, texture_nodes, max_probe_rois);
}

std::vector<SliceCoord> plan_prefetch_sequence(const std::vector<Chunk>& chunks) {
  return raster_slice_order(chunks);
}

}  // namespace h4d::core
