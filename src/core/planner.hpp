// Split-node planning.
//
// The paper allocated HCC vs. HPC nodes by the measured processing-cost
// ratio of the two filters ("the HCC filter was about 4 to 5 times more
// expensive than the HPC filter... the number of nodes was partitioned so
// that a 4-to-1 ratio was maintained", Sec. 5.2). This module automates
// that: probe the workload, convert the measured operation counts into
// per-stage costs with a CostModel, and split a node budget accordingly.
#pragma once

#include "haralick/roi_engine.hpp"
#include "io/dataset.hpp"
#include "io/resilient_reader.hpp"
#include "nd/chunking.hpp"
#include "sim/cost_model.hpp"

namespace h4d::core {

struct SplitPlan {
  double hcc_cost_per_roi = 0.0;  ///< modeled seconds on a speed-1 node
  double hpc_cost_per_roi = 0.0;
  double cost_ratio = 0.0;        ///< hcc / hpc
  int hcc_nodes = 0;
  int hpc_nodes = 0;
};

/// Measure the per-ROI cost split between co-occurrence construction (HCC)
/// and feature computation (HPC) by analyzing sample ROIs of `probe`
/// (a quantized volume at least as large as the ROI), then divide
/// `texture_nodes` proportionally (each side gets at least one node when
/// texture_nodes >= 2). `max_probe_rois` bounds the probe work.
SplitPlan plan_split(const Volume4<Level>& probe, const haralick::EngineConfig& engine,
                     const sim::CostModel& cost, int texture_nodes,
                     int max_probe_rois = 64);

/// Node split for a given cost ratio r = hcc/hpc: largest-remainder
/// apportionment with both sides >= 1 (for texture_nodes >= 2).
std::pair<int, int> apportion_split(double cost_ratio, int texture_nodes);

/// Prefetch schedule for the tile cache: the distinct slices of the volume
/// in first-need order over the planner's raster-scan chunk sequence
/// (t-major, z-minor within each chunk, ghost overlap included). The RFR
/// prefetchers walk this list, each filtered to its node's owned slices.
std::vector<SliceCoord> plan_prefetch_sequence(const std::vector<Chunk>& chunks);

/// plan_split against a disk-resident dataset: reads a probe subvolume
/// (clamped to the dataset, at least one ROI) through the resilient read
/// path — a flaky or partly corrupt dataset can still be planned when
/// `resilience` allows degradation — requantizes it with the dataset's
/// global intensity range, and delegates to plan_split. `injector` and
/// `report` are optional (fault drills / accounting).
SplitPlan plan_split_dataset(const io::DiskDataset& dataset,
                             const haralick::EngineConfig& engine,
                             const sim::CostModel& cost, int texture_nodes,
                             const io::ResilienceConfig& resilience = {},
                             io::FaultInjector* injector = nullptr,
                             io::FaultReport* report = nullptr, int max_probe_rois = 64);

}  // namespace h4d::core
