#include "core/analysis.hpp"

#include <limits>

#include "fs/executor_threads.hpp"
#include "nd/quantize.hpp"

namespace h4d::core {

namespace {

AnalysisResult finish(std::shared_ptr<filters::CollectedResults> collected,
                      const filters::ParamsPtr& params) {
  AnalysisResult r;
  r.origins = roi_origin_region(params->meta.dims, params->engine.roi_dims);
  {
    std::lock_guard lk(collected->mu);
    r.maps = std::move(collected->maps);
    r.ranges = std::move(collected->ranges);
  }
  r.faults = params->fault_sink->snapshot();
  return r;
}

/// Fill RunStats.cache from the run's summed copy meters plus the cache
/// instance itself (configuration echo and end-of-run occupancy).
void fill_cache_report(fs::RunStats& stats, const filters::ParamsPtr& params) {
  if (!params->tile_cache) return;
  fs::CacheReport& c = stats.cache;
  c.present = true;
  const io::TileCacheConfig& cfg = params->cache;
  c.policy = std::string(io::cache_policy_name(cfg.policy));
  c.budget_bytes = static_cast<std::int64_t>(cfg.budget_bytes);
  c.tile_w = cfg.tile_w;
  c.tile_h = cfg.tile_h;
  c.prefetch_depth = cfg.prefetch_depth;
  for (const fs::CopyStats& copy : stats.copies) {
    c.hits += copy.meter.cache_hits;
    c.misses += copy.meter.cache_misses;
    c.bytes_read_disk += copy.meter.disk_bytes_read;
    c.bytes_served_cache += copy.meter.cache_bytes_served;
    c.prefetch_issued += copy.meter.prefetch_issued;
    c.prefetch_useful += copy.meter.prefetch_useful;
    c.evictions += copy.meter.cache_evictions;
  }
  c.lookups = c.hits + c.misses;
  c.resident_bytes = params->tile_cache->resident_bytes();
}

/// Fill RunStats.tail from the shared LatencyTracker (exact run totals),
/// the configuration echo, and the replica set's eviction events.
void fill_tail_report(fs::RunStats& stats, const filters::ParamsPtr& params) {
  if (!params->latency || !params->tail.enabled()) return;
  const io::TailConfig& cfg = params->tail;
  const io::LatencyTracker& lt = *params->latency;
  fs::TailReport& t = stats.tail;
  t.present = true;
  t.deadline_mode =
      !cfg.deadline_enabled ? "off" : (cfg.deadline_ms > 0.0 ? "fixed" : "auto");
  t.deadline_ms = cfg.deadline_ms;
  t.deadline_k = cfg.deadline_k;
  t.deadline_floor_ms = cfg.deadline_floor_ms;
  t.deadline_ceiling_ms = cfg.deadline_ceiling_ms;
  t.hedge_enabled = cfg.hedge_enabled;
  t.hedge_pct = cfg.hedge_pct;
  t.hedge_max_inflight = cfg.hedge_max_inflight;
  t.hedges_issued = lt.hedges_issued.load();
  t.hedges_won = lt.hedges_won.load();
  t.hedges_abandoned = lt.hedges_abandoned.load();
  t.reads_abandoned = lt.reads_abandoned.load();
  t.breaches = lt.breaches.load();
  t.evictions_slow = lt.evictions_slow.load();
  for (const io::NodeLatencyStats& n : lt.snapshot()) {
    t.reads += n.reads;
    t.nodes.push_back({n.node, n.reads, n.ewma_ms, n.p50_ms, n.p99_ms, n.breaches});
  }
  if (params->replica_set) {
    for (const io::EvictionEvent& e : params->replica_set->eviction_events()) {
      t.evictions.push_back({e.node, std::string(io::evict_reason_name(e.reason))});
    }
  }
}

}  // namespace

AnalysisResult analyze_in_memory(const Volume4<std::uint16_t>& volume,
                                 const haralick::EngineConfig& engine) {
  const Volume4<Level> levels = quantize_volume(volume, engine.num_levels);
  const auto blocks = haralick::analyze_volume(levels, engine);

  AnalysisResult r;
  r.origins = roi_origin_region(volume.dims(), engine.roi_dims);
  for (const auto& b : blocks) {
    Volume4<float> map = haralick::assemble_feature_map({&b}, r.origins);
    float lo = std::numeric_limits<float>::infinity();
    float hi = -lo;
    for (float v : map.storage()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    r.ranges.emplace(b.feature, std::pair<float, float>(lo, hi));
    r.maps.emplace(b.feature, std::move(map));
  }
  return r;
}

AnalysisResult analyze_threaded(PipelineConfig config,
                                const fs::ThreadedOptions& threaded_options) {
  config.output = OutputMode::Collect;
  auto collected = std::make_shared<filters::CollectedResults>();
  const filters::ParamsPtr params = make_params(config);
  const fs::FilterGraph graph = build_pipeline(config, params, collected);
  const fs::RunStats stats = fs::run_threaded(graph, threaded_options);
  AnalysisResult r = finish(collected, params);
  r.stats = stats;
  r.stats.exec.chunks_resumed = params->chunks_resumed;
  r.stats.exec.replica_failovers = r.faults.replica_failovers;
  r.stats.exec.nodes_evicted = r.faults.nodes_evicted;
  fill_cache_report(r.stats, params);
  fill_tail_report(r.stats, params);
  return r;
}

AnalysisResult analyze_simulated(PipelineConfig config, const sim::SimOptions& sim_options) {
  config.output = OutputMode::Collect;
  auto collected = std::make_shared<filters::CollectedResults>();
  const filters::ParamsPtr params = make_params(config);
  const fs::FilterGraph graph = build_pipeline(config, params, collected);
  const sim::SimStats stats = sim::run_simulated(graph, sim_options);
  AnalysisResult r = finish(collected, params);
  r.sim = stats;
  r.stats = stats;
  r.stats.exec.chunks_resumed = params->chunks_resumed;
  r.stats.exec.replica_failovers = r.faults.replica_failovers;
  r.stats.exec.nodes_evicted = r.faults.nodes_evicted;
  fill_cache_report(r.stats, params);
  fill_tail_report(r.stats, params);
  return r;
}

}  // namespace h4d::core
