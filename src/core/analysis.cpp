#include "core/analysis.hpp"

#include <limits>

#include "fs/executor_threads.hpp"
#include "nd/quantize.hpp"

namespace h4d::core {

namespace {

AnalysisResult finish(std::shared_ptr<filters::CollectedResults> collected,
                      const filters::ParamsPtr& params) {
  AnalysisResult r;
  r.origins = roi_origin_region(params->meta.dims, params->engine.roi_dims);
  {
    std::lock_guard lk(collected->mu);
    r.maps = std::move(collected->maps);
    r.ranges = std::move(collected->ranges);
  }
  r.faults = params->fault_sink->snapshot();
  return r;
}

}  // namespace

AnalysisResult analyze_in_memory(const Volume4<std::uint16_t>& volume,
                                 const haralick::EngineConfig& engine) {
  const Volume4<Level> levels = quantize_volume(volume, engine.num_levels);
  const auto blocks = haralick::analyze_volume(levels, engine);

  AnalysisResult r;
  r.origins = roi_origin_region(volume.dims(), engine.roi_dims);
  for (const auto& b : blocks) {
    Volume4<float> map = haralick::assemble_feature_map({&b}, r.origins);
    float lo = std::numeric_limits<float>::infinity();
    float hi = -lo;
    for (float v : map.storage()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    r.ranges.emplace(b.feature, std::pair<float, float>(lo, hi));
    r.maps.emplace(b.feature, std::move(map));
  }
  return r;
}

AnalysisResult analyze_threaded(PipelineConfig config,
                                const fs::ThreadedOptions& threaded_options) {
  config.output = OutputMode::Collect;
  auto collected = std::make_shared<filters::CollectedResults>();
  const filters::ParamsPtr params = make_params(config);
  const fs::FilterGraph graph = build_pipeline(config, params, collected);
  const fs::RunStats stats = fs::run_threaded(graph, threaded_options);
  AnalysisResult r = finish(collected, params);
  r.stats = stats;
  r.stats.exec.chunks_resumed = params->chunks_resumed;
  r.stats.exec.replica_failovers = r.faults.replica_failovers;
  r.stats.exec.nodes_evicted = r.faults.nodes_evicted;
  return r;
}

AnalysisResult analyze_simulated(PipelineConfig config, const sim::SimOptions& sim_options) {
  config.output = OutputMode::Collect;
  auto collected = std::make_shared<filters::CollectedResults>();
  const filters::ParamsPtr params = make_params(config);
  const fs::FilterGraph graph = build_pipeline(config, params, collected);
  const sim::SimStats stats = sim::run_simulated(graph, sim_options);
  AnalysisResult r = finish(collected, params);
  r.sim = stats;
  r.stats = stats;
  r.stats.exec.chunks_resumed = params->chunks_resumed;
  r.stats.exec.replica_failovers = r.faults.replica_failovers;
  r.stats.exec.nodes_evicted = r.faults.nodes_evicted;
  return r;
}

}  // namespace h4d::core
