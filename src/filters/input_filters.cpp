#include "filters/input_filters.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "nd/quantize.hpp"

namespace h4d::filters {

namespace {

/// Per-copy slice prefetcher: walks the planner's raster-order hints
/// (filtered to this node's owned slices) on its own thread through its own
/// ResilientReader, staying at most `depth` slices ahead of the demand
/// loop. RAII: destruction stops and joins the thread, so an exception in
/// the demand loop cannot leak it.
class SlicePrefetcher {
 public:
  SlicePrefetcher(const PipelineParams& p, int node, int tenant,
                  std::vector<io::SliceRef> refs)
      : depth_(p.cache.prefetch_depth),
        refs_(std::move(refs)),
        reader_(io::StorageNodeReader(p.dataset_root / io::node_dir_name(node), p.meta,
                                      node),
                p.resilience, /*injector=*/nullptr, /*sink=*/nullptr,
                p.replica_set.get()) {
    reader_.attach_cache(p.tile_cache.get(), p.cache_dataset, tenant);
    thread_ = std::thread([this] { run(); });
  }

  ~SlicePrefetcher() { stop(); }

  /// The demand loop finished one of its slices: the prefetcher may advance.
  void slice_done() {
    {
      std::lock_guard lk(mu_);
      ++done_;
    }
    cv_.notify_all();
  }

  /// Stop, join, and account the prefetch reader's disk traffic.
  void finish(fs::WorkMeter& meter) {
    stop();
    meter.disk_bytes_read += reader_.bytes_read();
    meter.disk_seeks += reader_.seeks_performed();
  }

 private:
  void stop() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void run() {
    std::int64_t issued = 0;
    for (const io::SliceRef& ref : refs_) {
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return stop_ || issued - done_ < depth_; });
        if (stop_) return;
      }
      reader_.prefetch_slice(ref);
      ++issued;
    }
  }

  const std::int64_t depth_;
  std::vector<io::SliceRef> refs_;
  io::ResilientReader reader_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t done_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

void RawFileReader::run_source(fs::FilterContext& ctx) {
  const int node = ctx.copy_index();
  // Resume accounting: chunks pruned from the work list by the checkpoint
  // manifest, credited once (copy 0) so the run's meters show what was
  // skipped rather than silently planning less work.
  if (node == 0) ctx.meter().chunks_resumed += p_->chunks_resumed;
  io::ReplicaSet& replicas = *p_->replica_set;
  // A statically dead node (operator-declared or directory missing) reads
  // nothing; read_owner() has already reassigned its slices to the surviving
  // replicas' copies.
  if (replicas.node_dead(node)) return;
  // Slice access goes through the resilient reader: bounded retry, checksum
  // verification, failover to the other replica nodes, and graceful
  // degradation per the pipeline's policy. The shared injector (when faults
  // are configured) makes storage-fault drills deterministic across copies.
  io::ResilientReader reader(
      io::StorageNodeReader(p_->dataset_root / io::node_dir_name(node), p_->meta, node),
      p_->resilience, p_->fault_injector.get(), p_->fault_sink.get(),
      p_->replica_set.get());
  int cache_tenant = 0;
  if (p_->tile_cache) {
    cache_tenant = p_->tile_cache->tenant_id(p_->cache_tenant);
    reader.attach_cache(p_->tile_cache.get(), p_->cache_dataset, cache_tenant);
  }
  // Tail layer on the demand reader only: the prefetcher's reads are already
  // off the critical path, so hedging them would just burn replica bandwidth.
  if (p_->latency && p_->io_pool && p_->tail.enabled()) {
    reader.attach_tail(p_->tail, p_->latency.get(), p_->io_pool.get());
  }
  const Quantizer quant = p_->quantizer();

  // x/y tiling of a slice into RFR->IIC pieces.
  const Vec4 slice_dims{p_->meta.dims[0], p_->meta.dims[1], 1, 1};
  const std::vector<Region4> tiles = partition_plain(slice_dims, p_->io_chunk);

  std::vector<std::uint16_t> raw;
  std::int64_t seq = 0;
  std::int64_t seeks_before = 0;
  std::int64_t bytes_before = 0;
  std::int64_t cache_hits_before = 0;
  std::int64_t cache_misses_before = 0;
  std::int64_t cache_served_before = 0;
  io::FaultReport report_before;
  std::int64_t hedges_issued_before = 0;
  std::int64_t hedges_won_before = 0;
  std::int64_t hedges_abandoned_before = 0;
  std::int64_t reads_abandoned_before = 0;
  std::int64_t tail_breaches_before = 0;
  std::int64_t slow_evictions_before = 0;

  // Raster-order prefetch: pull this node's upcoming slices into the shared
  // cache while the demand loop (and everything downstream) computes. Off
  // under fault injection — the drill must see the cache-off read schedule.
  std::unique_ptr<SlicePrefetcher> prefetcher;
  if (p_->tile_cache && p_->cache.prefetch_depth > 0 && !p_->fault_injector &&
      !p_->prefetch_slices.empty()) {
    std::vector<io::SliceRef> owned;
    for (const SliceCoord& s : p_->prefetch_slices) {
      int owner = replicas.read_owner(s.z, s.t);
      if (owner < 0) owner = replicas.first_alive_node();
      if (owner != node) continue;
      io::SliceRef ref{s.t, s.z, io::slice_filename(s.t, s.z), 0, false};
      if (const io::SliceRef* indexed = reader.find_slice(s.t, s.z)) ref = *indexed;
      owned.push_back(ref);
    }
    if (!owned.empty()) {
      prefetcher =
          std::make_unique<SlicePrefetcher>(*p_, node, cache_tenant, std::move(owned));
    }
  }

  // Each slice is read by exactly one copy — its read owner (first surviving
  // replica in rank order) — so replication never duplicates pieces. With
  // r == 1 and all nodes alive this degenerates to "the slices in this
  // node's index", in index (t-major) order. A slice every replica of which
  // is dead falls to the first alive node, whose reader degrades it to fill
  // (make() rejects that situation under fail/retry policies).
  std::int64_t static_failovers = 0;
  for (std::int64_t t = 0; t < p_->meta.dims[3]; ++t) {
    for (std::int64_t z = 0; z < p_->meta.dims[2]; ++z) {
      int owner = replicas.read_owner(z, t);
      if (owner < 0) owner = replicas.first_alive_node();
      if (owner != node) continue;
      // Owning a slice whose primary node is dead is a (planned) failover:
      // the read was rerouted to this replica before it was ever attempted.
      if (p_->meta.node_of_slice(z, t) != node) {
        ++static_failovers;
        ++ctx.meter().replica_failovers;
      }
      // Prefer the index entry (it carries the checksum); a slice this node
      // never indexed (failover fallback) gets the conventional name.
      io::SliceRef slice{t, z, io::slice_filename(t, z), 0, false};
      if (const io::SliceRef* indexed = reader.find_slice(t, z)) slice = *indexed;
      for (const Region4& tile : tiles) {
        raw.resize(static_cast<std::size_t>(tile.size[0] * tile.size[1]));
        reader.read_slice_region(slice, tile.origin[0], tile.origin[1], tile.size[0],
                                 tile.size[1], raw.data());
        ctx.meter().disk_seeks += reader.seeks_performed() - seeks_before;
        ctx.meter().disk_bytes_read += reader.bytes_read() - bytes_before;
        seeks_before = reader.seeks_performed();
        bytes_before = reader.bytes_read();
        ctx.meter().cache_hits += reader.cache_hits() - cache_hits_before;
        ctx.meter().cache_misses += reader.cache_misses() - cache_misses_before;
        ctx.meter().cache_bytes_served +=
            reader.cache_bytes_served() - cache_served_before;
        cache_hits_before = reader.cache_hits();
        cache_misses_before = reader.cache_misses();
        cache_served_before = reader.cache_bytes_served();
        const io::FaultReport& rep = reader.report();
        ctx.meter().read_retries += rep.read_retries - report_before.read_retries;
        ctx.meter().slices_skipped += rep.slices_skipped - report_before.slices_skipped;
        ctx.meter().checksum_failures +=
            rep.checksum_failures - report_before.checksum_failures;
        ctx.meter().replica_failovers +=
            rep.replica_failovers - report_before.replica_failovers;
        ctx.meter().nodes_evicted += rep.nodes_evicted - report_before.nodes_evicted;
        report_before.read_retries = rep.read_retries;
        report_before.slices_skipped = rep.slices_skipped;
        report_before.checksum_failures = rep.checksum_failures;
        report_before.replica_failovers = rep.replica_failovers;
        report_before.nodes_evicted = rep.nodes_evicted;
        ctx.meter().hedges_issued += reader.tail_hedges_issued() - hedges_issued_before;
        ctx.meter().hedges_won += reader.tail_hedges_won() - hedges_won_before;
        ctx.meter().hedges_abandoned +=
            reader.tail_hedges_abandoned() - hedges_abandoned_before;
        ctx.meter().reads_abandoned +=
            reader.tail_reads_abandoned() - reads_abandoned_before;
        ctx.meter().tail_breaches += reader.tail_breaches() - tail_breaches_before;
        ctx.meter().slow_evictions += reader.tail_slow_evictions() - slow_evictions_before;
        hedges_issued_before = reader.tail_hedges_issued();
        hedges_won_before = reader.tail_hedges_won();
        hedges_abandoned_before = reader.tail_hedges_abandoned();
        reads_abandoned_before = reader.tail_reads_abandoned();
        tail_breaches_before = reader.tail_breaches();
        slow_evictions_before = reader.tail_slow_evictions();

        // Global region of this piece.
        const Region4 piece{{tile.origin[0], tile.origin[1], slice.z, slice.t},
                            {tile.size[0], tile.size[1], 1, 1}};

        // Which IIC copies need it? The owners of every overlapping chunk.
        std::set<int> targets;
        for (const Chunk& c : p_->chunks) {
          if (c.region.intersects(piece)) targets.insert(p_->iic_copy_of_chunk(c.id));
        }
        if (targets.empty()) continue;

        // Quantize once.
        std::vector<std::byte> levels(raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i) {
          levels[i] = static_cast<std::byte>(quant(static_cast<double>(raw[i])));
        }
        ctx.meter().elements_quantized += static_cast<std::int64_t>(raw.size());

        for (const int target : targets) {
          fs::BufferHeader h;
          h.kind = fs::BufferKind::RawChunkPiece;
          h.region = piece;
          h.seq = seq++;
          h.aux = target;
          ctx.emit(kPortPieces, fs::make_buffer(h, levels));
        }
      }
      if (prefetcher) prefetcher->slice_done();
    }
  }
  // Stop the prefetcher and account its disk traffic, then drain the cache's
  // run-global counters (evictions and prefetch bookkeeping live on the cache,
  // not on any one reader) so totals are conserved across copies.
  if (prefetcher) prefetcher->finish(ctx.meter());
  if (p_->tile_cache) {
    std::int64_t ev = 0, pi = 0, pu = 0;
    p_->tile_cache->drain_unmetered(ev, pi, pu);
    ctx.meter().cache_evictions += ev;
    ctx.meter().prefetch_issued += pi;
    ctx.meter().prefetch_useful += pu;
  }
  // Planned (static) failovers join the dynamic ones ResilientReader merged
  // on destruction, so the run's fault report shows every rerouted read.
  if (static_failovers > 0 && p_->fault_sink) {
    io::FaultReport rerouted;
    rerouted.replica_failovers = static_failovers;
    p_->fault_sink->merge(rerouted);
  }
}

void InputImageConstructor::process(int port, const fs::BufferPtr& buffer,
                                    fs::FilterContext& ctx) {
  if (port != kPortPieces || buffer->header.kind != fs::BufferKind::RawChunkPiece) {
    throw std::runtime_error("IIC: unexpected input buffer");
  }
  const Region4& piece = buffer->header.region;
  const Vol4View<const Level> piece_view(
      reinterpret_cast<const Level*>(buffer->payload.data()), piece.size);

  for (const Chunk& c : p_->chunks) {
    if (p_->iic_copy_of_chunk(c.id) != ctx.copy_index()) continue;
    const Region4 common = c.region.intersect(piece);
    if (common.empty()) continue;

    auto [it, inserted] = pending_.try_emplace(c.id, c.region.size);
    Pending& slot = it->second;
    copy_region<Level>(piece_view, piece, slot.data.view(), c.region);
    slot.filled += common.volume();
    ctx.meter().stitch_elements += common.volume();

    if (slot.filled == c.region.volume()) {
      fs::BufferHeader h;
      h.kind = fs::BufferKind::TextureChunk;
      h.region = c.region;
      h.region2 = c.owned_origins;
      h.chunk_id = c.id;
      h.seq = emitted_++;
      std::vector<std::byte> payload(static_cast<std::size_t>(c.region.volume()));
      std::memcpy(payload.data(), slot.data.data(), payload.size());
      ctx.meter().stitch_elements += static_cast<std::int64_t>(payload.size());
      pending_.erase(it);
      ctx.emit(kPortChunks, fs::make_buffer(h, std::move(payload)));
    }
  }
}

void InputImageConstructor::flush(fs::FilterContext&) {
  if (!pending_.empty()) {
    throw std::runtime_error("IIC copy finished with " + std::to_string(pending_.size()) +
                             " incomplete chunks — missing input pieces");
  }
}

}  // namespace h4d::filters
