#include "filters/input_filters.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "nd/quantize.hpp"

namespace h4d::filters {

void RawFileReader::run_source(fs::FilterContext& ctx) {
  const int node = ctx.copy_index();
  // Resume accounting: chunks pruned from the work list by the checkpoint
  // manifest, credited once (copy 0) so the run's meters show what was
  // skipped rather than silently planning less work.
  if (node == 0) ctx.meter().chunks_resumed += p_->chunks_resumed;
  // Slice access goes through the resilient reader: bounded retry, checksum
  // verification and graceful degradation per the pipeline's policy. The
  // shared injector (when faults are configured) makes storage-fault drills
  // deterministic across copies.
  io::ResilientReader reader(
      io::StorageNodeReader(p_->dataset_root / ("node_" + std::to_string(node)), p_->meta,
                            node),
      p_->resilience, p_->fault_injector.get(), p_->fault_sink.get());
  const Quantizer quant = p_->quantizer();

  // x/y tiling of a slice into RFR->IIC pieces.
  const Vec4 slice_dims{p_->meta.dims[0], p_->meta.dims[1], 1, 1};
  const std::vector<Region4> tiles = partition_plain(slice_dims, p_->io_chunk);

  std::vector<std::uint16_t> raw;
  std::int64_t seq = 0;
  std::int64_t seeks_before = 0;
  std::int64_t bytes_before = 0;
  io::FaultReport report_before;

  for (const io::SliceRef& slice : reader.slices()) {
    for (const Region4& tile : tiles) {
      raw.resize(static_cast<std::size_t>(tile.size[0] * tile.size[1]));
      reader.read_slice_region(slice, tile.origin[0], tile.origin[1], tile.size[0],
                               tile.size[1], raw.data());
      ctx.meter().disk_seeks += reader.seeks_performed() - seeks_before;
      ctx.meter().disk_bytes_read += reader.bytes_read() - bytes_before;
      seeks_before = reader.seeks_performed();
      bytes_before = reader.bytes_read();
      const io::FaultReport& rep = reader.report();
      ctx.meter().read_retries += rep.read_retries - report_before.read_retries;
      ctx.meter().slices_skipped += rep.slices_skipped - report_before.slices_skipped;
      ctx.meter().checksum_failures +=
          rep.checksum_failures - report_before.checksum_failures;
      report_before.read_retries = rep.read_retries;
      report_before.slices_skipped = rep.slices_skipped;
      report_before.checksum_failures = rep.checksum_failures;

      // Global region of this piece.
      const Region4 piece{{tile.origin[0], tile.origin[1], slice.z, slice.t},
                          {tile.size[0], tile.size[1], 1, 1}};

      // Which IIC copies need it? The owners of every overlapping chunk.
      std::set<int> targets;
      for (const Chunk& c : p_->chunks) {
        if (c.region.intersects(piece)) targets.insert(p_->iic_copy_of_chunk(c.id));
      }
      if (targets.empty()) continue;

      // Quantize once.
      std::vector<std::byte> levels(raw.size());
      for (std::size_t i = 0; i < raw.size(); ++i) {
        levels[i] = static_cast<std::byte>(quant(static_cast<double>(raw[i])));
      }
      ctx.meter().elements_quantized += static_cast<std::int64_t>(raw.size());

      for (const int target : targets) {
        fs::BufferHeader h;
        h.kind = fs::BufferKind::RawChunkPiece;
        h.region = piece;
        h.seq = seq++;
        h.aux = target;
        ctx.emit(kPortPieces, fs::make_buffer(h, levels));
      }
    }
  }
}

void InputImageConstructor::process(int port, const fs::BufferPtr& buffer,
                                    fs::FilterContext& ctx) {
  if (port != kPortPieces || buffer->header.kind != fs::BufferKind::RawChunkPiece) {
    throw std::runtime_error("IIC: unexpected input buffer");
  }
  const Region4& piece = buffer->header.region;
  const Vol4View<const Level> piece_view(
      reinterpret_cast<const Level*>(buffer->payload.data()), piece.size);

  for (const Chunk& c : p_->chunks) {
    if (p_->iic_copy_of_chunk(c.id) != ctx.copy_index()) continue;
    const Region4 common = c.region.intersect(piece);
    if (common.empty()) continue;

    auto [it, inserted] = pending_.try_emplace(c.id, c.region.size);
    Pending& slot = it->second;
    copy_region<Level>(piece_view, piece, slot.data.view(), c.region);
    slot.filled += common.volume();
    ctx.meter().stitch_elements += common.volume();

    if (slot.filled == c.region.volume()) {
      fs::BufferHeader h;
      h.kind = fs::BufferKind::TextureChunk;
      h.region = c.region;
      h.region2 = c.owned_origins;
      h.chunk_id = c.id;
      h.seq = emitted_++;
      std::vector<std::byte> payload(static_cast<std::size_t>(c.region.volume()));
      std::memcpy(payload.data(), slot.data.data(), payload.size());
      ctx.meter().stitch_elements += static_cast<std::int64_t>(payload.size());
      pending_.erase(it);
      ctx.emit(kPortChunks, fs::make_buffer(h, std::move(payload)));
    }
  }
}

void InputImageConstructor::flush(fs::FilterContext&) {
  if (!pending_.empty()) {
    throw std::runtime_error("IIC copy finished with " + std::to_string(pending_.size()) +
                             " incomplete chunks — missing input pieces");
  }
}

}  // namespace h4d::filters
