// Parameters shared by every filter in one pipeline instantiation.
#pragma once

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unordered_set>

#include "haralick/roi_engine.hpp"
#include "io/dataset.hpp"
#include "io/fault.hpp"
#include "io/manifest.hpp"
#include "io/replica_set.hpp"
#include "io/resilient_reader.hpp"
#include "io/tail.hpp"
#include "io/tile_cache.hpp"
#include "nd/chunking.hpp"

namespace h4d::filters {

/// Immutable, shared by all filter copies of one pipeline run.
struct PipelineParams {
  std::filesystem::path dataset_root;
  io::DatasetMeta meta;
  haralick::EngineConfig engine;

  /// RFR->IIC retrieval granularity within a slice (x, y extents; z and t
  /// are always 1 — a piece never spans slices). Default: whole slice, so a
  /// slice is read without extra disk seeks (paper Sec. 5.1).
  Vec4 io_chunk{0, 0, 1, 1};  ///< 0 => use slice extent

  /// IIC->TEXTURE chunk extents (paper Sec. 4.4).
  Vec4 texture_chunk{64, 64, 8, 8};

  int iic_copies = 1;
  /// HCC flushes a matrix packet each time this fraction of a chunk's ROIs
  /// has been processed (paper: 1/4 of a chunk).
  int packets_per_chunk = 4;
  /// HPC/HMP flush feature-value buffers at this many samples.
  int feature_buffer_samples = 4096;

  /// Storage-fault handling of the RFR read path: retry budget, checksum
  /// verification, and what to do with irrecoverable slices.
  io::ResilienceConfig resilience;
  /// Storage nodes declared dead by the operator (--dead-nodes). Merged with
  /// the node directories found missing at open; the union is the static
  /// dead list of the run's ReplicaSet.
  std::vector<int> dead_nodes;
  /// Deterministic fault injection (testing / resilience drills); a
  /// default-constructed config injects nothing.
  io::FaultConfig faults;

  /// Chunk-completion manifest file. Empty => no checkpointing. When set,
  /// the output filters durably record each chunk whose every feature sample
  /// has been written; with `resume`, chunks already in the manifest are
  /// pruned from the work list before the run starts.
  std::filesystem::path checkpoint_path;
  bool resume = false;
  /// Job identity folded into the manifest's ownership token (src/svc
  /// namespaces manifests per job and stamps the job id here). Empty for
  /// solo runs: the token then covers only dataset + chunk-grid identity.
  std::string job_tag;

  /// The overlapping chunk partition (derived; computed once via make()).
  /// With resume, completed chunks are already pruned from this list; their
  /// count is in `chunks_resumed`.
  std::vector<Chunk> chunks;
  std::int64_t chunks_resumed = 0;

  /// Shared fault machinery (derived by make()): one injector and one report
  /// aggregator per pipeline run, shared by every filter copy.
  std::shared_ptr<io::FaultInjector> fault_injector;
  std::shared_ptr<io::FaultReportSink> fault_sink;

  /// Replica placement / failover / node-health view of the dataset (derived
  /// by make(); always present). Slice ownership and read failover route
  /// around the static dead list, so a degraded run with r >= 2 produces
  /// byte-identical output.
  std::shared_ptr<io::ReplicaSet> replica_set;

  /// Checkpoint machinery (derived by make(); null without checkpoint_path).
  std::shared_ptr<io::ChunkManifest> manifest;
  std::shared_ptr<io::ChunkCompletionTracker> completion;

  /// Tile-cache knobs (--tile-cache-mb/--tile-shape/--prefetch-depth/
  /// --cache-policy). Disabled (budget 0) => no cache.
  io::TileCacheConfig cache;
  /// The cache instance the RFR readers go through. The service layer hands
  /// every job the process-wide shared instance; make() builds a private one
  /// for solo runs when `cache` is enabled. Fault-injected runs always get a
  /// private instance (or none): a deterministic drill must not be perturbed
  /// by tiles another run cached.
  std::shared_ptr<io::TileCache> tile_cache;
  /// Tenant the cached bytes are accounted to (svc sets the job's tenant;
  /// empty => "local").
  std::string cache_tenant;
  /// Cache key of this dataset (derived by make()).
  std::uint64_t cache_dataset = 0;
  /// Planner prefetch hints: distinct slices in first-need order over the
  /// raster-scan chunk sequence (core::plan_prefetch_sequence). Empty when
  /// the cache or prefetch is off.
  std::vector<SliceCoord> prefetch_slices;

  /// Tail-tolerance knobs (--read-deadline-ms/--hedge-pct/
  /// --hedge-max-inflight); disabled => RFR reads stay fully synchronous.
  io::TailConfig tail;
  /// Per-node read-latency statistics feeding deadlines/hedging (derived by
  /// make() when tail is on; svc passes its process-wide instance so a
  /// node's latency reputation spans jobs).
  std::shared_ptr<io::LatencyTracker> latency;
  /// I/O helper pool performing abandonable whole-slice fetches. Declared
  /// after fault_injector: queued requests hold a raw injector pointer, so
  /// the pool (and its worker threads) must be destroyed first.
  std::shared_ptr<io::SliceFetchPool> io_pool;

  static std::shared_ptr<const PipelineParams> make(PipelineParams p) {
    if (p.io_chunk[0] <= 0) p.io_chunk[0] = p.meta.dims[0];
    if (p.io_chunk[1] <= 0) p.io_chunk[1] = p.meta.dims[1];
    p.io_chunk[2] = 1;
    p.io_chunk[3] = 1;
    p.chunks = partition_overlapping(p.meta.dims, p.texture_chunk, p.engine.roi_dims);
    if (!p.checkpoint_path.empty()) {
      const std::string owner = p.checkpoint_owner_token();
      std::unordered_set<std::int64_t> done;
      if (p.resume) {
        // Progress recorded for a different job or chunk grid must never
        // prune this run's work list: chunk ids are grid-relative, so a
        // stale manifest would silently skip the wrong chunks. Manifests
        // without a header (legacy, or damaged header) are accepted as
        // before — their CRC-tagged id lines still guard each record.
        const std::string found = io::ChunkManifest::load_owner(p.checkpoint_path);
        if (!found.empty() && found != owner) {
          throw std::runtime_error(
              "checkpoint manifest " + p.checkpoint_path.string() +
              " belongs to a different job/configuration (owner " + found +
              ", this run is " + owner +
              "); pass a fresh --checkpoint path or drop --resume");
        }
        for (std::int64_t id : io::ChunkManifest::load(p.checkpoint_path)) done.insert(id);
      }
      // The tracker needs the full grid; build it before pruning. A fresh
      // (non-resume) run truncates any stale manifest.
      p.manifest = std::make_shared<io::ChunkManifest>(p.checkpoint_path, !p.resume, owner);
      p.completion = std::make_shared<io::ChunkCompletionTracker>(
          p.chunks, p.meta.dims, p.texture_chunk, p.engine.roi_dims,
          p.engine.features.count(), p.manifest, done);
      if (!done.empty()) {
        const auto before = p.chunks.size();
        std::erase_if(p.chunks, [&](const Chunk& c) { return done.count(c.id) != 0; });
        p.chunks_resumed = static_cast<std::int64_t>(before - p.chunks.size());
      }
    }
    if (p.faults.enabled()) p.fault_injector = std::make_shared<io::FaultInjector>(p.faults);
    p.fault_sink = std::make_shared<io::FaultReportSink>();

    // Tail layer: solo runs build private instances; the service layer
    // passes shared ones in (cross-job node reputation, one helper pool).
    if (p.tail.enabled()) {
      if (!p.latency) {
        p.latency = std::make_shared<io::LatencyTracker>(p.meta.storage_nodes);
      }
      if (!p.io_pool) {
        p.io_pool =
            std::make_shared<io::SliceFetchPool>(std::max(1, p.tail.helper_threads));
      }
    } else {
      p.latency = nullptr;
      p.io_pool = nullptr;
    }

    // Tile cache: solo runs build a private instance; the service layer (or
    // a bench harness) passes a shared one in. A fault-injected run never
    // shares: cached tiles from another run would let a read that the
    // injected schedule dooms succeed, changing the degraded output.
    if (p.fault_injector) {
      p.tile_cache = p.cache.enabled() ? std::make_shared<io::TileCache>(p.cache) : nullptr;
    } else if (!p.tile_cache && p.cache.enabled()) {
      p.tile_cache = std::make_shared<io::TileCache>(p.cache);
    }
    if (p.tile_cache) {
      p.cache = p.tile_cache->config();
      p.cache_dataset = io::TileCache::dataset_key(p.dataset_root.string(), p.meta);
      if (p.cache.prefetch_depth > 0 && !p.fault_injector) {
        p.prefetch_slices = raster_slice_order(p.chunks);
      }
    }

    // Static dead list: operator-declared nodes plus node directories found
    // missing right now. The run plans around these; a slice none of whose
    // replicas survive is only tolerable under skip_and_fill.
    std::vector<int> dead = p.dead_nodes;
    for (const int n : io::ReplicaSet::missing_node_dirs(p.dataset_root, p.meta)) {
      dead.push_back(n);
    }
    p.replica_set = std::make_shared<io::ReplicaSet>(p.dataset_root, p.meta, dead);
    if (p.resilience.policy != io::DegradePolicy::SkipAndFill) {
      // Slice numbers are consecutive, so coverage only depends on the slice
      // number's residue mod storage_nodes; check each occurring residue.
      const std::int64_t residues =
          std::min<std::int64_t>(p.meta.storage_nodes, p.meta.num_slices());
      for (std::int64_t c = 0; c < residues; ++c) {
        bool covered = false;
        for (int rank = 0; rank < p.meta.replica_count() && !covered; ++rank) {
          covered = !p.replica_set->node_dead(
              static_cast<int>((c + rank) % p.meta.storage_nodes));
        }
        if (!covered) {
          throw std::runtime_error(
              "dataset " + p.dataset_root.string() + " has slices with no surviving "
              "replica (replication factor " + std::to_string(p.meta.replica_count()) +
              ", " + std::to_string(p.replica_set->dead_nodes().size()) +
              " dead nodes); repair the dataset or run with --on-corrupt skip");
        }
      }
    }
    return std::make_shared<const PipelineParams>(std::move(p));
  }

  /// Ownership token for the checkpoint manifest: CRC-32 over everything
  /// that determines chunk-id meaning (dataset, chunk grid, feature set)
  /// plus the job tag. Two runs share a manifest iff their tokens match.
  std::string checkpoint_owner_token() const {
    std::ostringstream s;
    s << dataset_root.string();
    for (int d = 0; d < kDims; ++d) s << '/' << meta.dims[d];
    for (int d = 0; d < kDims; ++d) s << '/' << engine.roi_dims[d];
    for (int d = 0; d < kDims; ++d) s << '/' << texture_chunk[d];
    s << '/' << engine.num_levels << '/' << engine.features.mask();
    if (!job_tag.empty()) s << '/' << job_tag;
    const std::string canon = s.str();
    std::ostringstream hex;
    hex << std::hex << io::crc32(canon.data(), canon.size());
    return hex.str();
  }

  /// IIC copy that owns a texture chunk (explicit distribution of chunks
  /// over IIC copies, round-robin by chunk id — paper Sec. 5.2).
  int iic_copy_of_chunk(std::int64_t chunk_id) const {
    return static_cast<int>(chunk_id % iic_copies);
  }

  Quantizer quantizer() const {
    return Quantizer(meta.value_min, meta.value_max, engine.num_levels);
  }
};

using ParamsPtr = std::shared_ptr<const PipelineParams>;

}  // namespace h4d::filters
