// Parameters shared by every filter in one pipeline instantiation.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "haralick/roi_engine.hpp"
#include "io/dataset.hpp"
#include "io/fault.hpp"
#include "io/resilient_reader.hpp"
#include "nd/chunking.hpp"

namespace h4d::filters {

/// Immutable, shared by all filter copies of one pipeline run.
struct PipelineParams {
  std::filesystem::path dataset_root;
  io::DatasetMeta meta;
  haralick::EngineConfig engine;

  /// RFR->IIC retrieval granularity within a slice (x, y extents; z and t
  /// are always 1 — a piece never spans slices). Default: whole slice, so a
  /// slice is read without extra disk seeks (paper Sec. 5.1).
  Vec4 io_chunk{0, 0, 1, 1};  ///< 0 => use slice extent

  /// IIC->TEXTURE chunk extents (paper Sec. 4.4).
  Vec4 texture_chunk{64, 64, 8, 8};

  int iic_copies = 1;
  /// HCC flushes a matrix packet each time this fraction of a chunk's ROIs
  /// has been processed (paper: 1/4 of a chunk).
  int packets_per_chunk = 4;
  /// HPC/HMP flush feature-value buffers at this many samples.
  int feature_buffer_samples = 4096;

  /// Storage-fault handling of the RFR read path: retry budget, checksum
  /// verification, and what to do with irrecoverable slices.
  io::ResilienceConfig resilience;
  /// Deterministic fault injection (testing / resilience drills); a
  /// default-constructed config injects nothing.
  io::FaultConfig faults;

  /// The overlapping chunk partition (derived; computed once via make()).
  std::vector<Chunk> chunks;

  /// Shared fault machinery (derived by make()): one injector and one report
  /// aggregator per pipeline run, shared by every filter copy.
  std::shared_ptr<io::FaultInjector> fault_injector;
  std::shared_ptr<io::FaultReportSink> fault_sink;

  static std::shared_ptr<const PipelineParams> make(PipelineParams p) {
    if (p.io_chunk[0] <= 0) p.io_chunk[0] = p.meta.dims[0];
    if (p.io_chunk[1] <= 0) p.io_chunk[1] = p.meta.dims[1];
    p.io_chunk[2] = 1;
    p.io_chunk[3] = 1;
    p.chunks = partition_overlapping(p.meta.dims, p.texture_chunk, p.engine.roi_dims);
    if (p.faults.enabled()) p.fault_injector = std::make_shared<io::FaultInjector>(p.faults);
    p.fault_sink = std::make_shared<io::FaultReportSink>();
    return std::make_shared<const PipelineParams>(std::move(p));
  }

  /// IIC copy that owns a texture chunk (explicit distribution of chunks
  /// over IIC copies, round-robin by chunk id — paper Sec. 5.2).
  int iic_copy_of_chunk(std::int64_t chunk_id) const {
    return static_cast<int>(chunk_id % iic_copies);
  }

  Quantizer quantizer() const {
    return Quantizer(meta.value_min, meta.value_max, engine.num_levels);
  }
};

using ParamsPtr = std::shared_ptr<const PipelineParams>;

}  // namespace h4d::filters
