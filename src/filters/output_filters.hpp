// Output filter set (paper Sec. 4.3.3): UnstitchedOutput, the
// HaralickImageConstructor output stitch, and the JPGImageWriter equivalent
// (PGM series — JPEG was only a viewing format). A ResultCollector sink is
// provided for programmatic use of the pipeline (tests, library API).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>

#include "filters/params.hpp"
#include "filters/payloads.hpp"
#include "fs/filter.hpp"

namespace h4d::filters {

/// UnstitchedOutput (USO): streams feature samples straight to disk, one
/// file per (feature, copy) stream: <dir>/<slug>_c<copy>.bin of packed
/// FeatureSample records. With an empty dir the filter only accounts the
/// writes (benchmark mode: the paper measures pipeline time, not disk
/// capacity).
class UnstitchedOutput final : public fs::Filter {
 public:
  UnstitchedOutput(ParamsPtr params, std::filesystem::path dir)
      : p_(std::move(params)), dir_(std::move(dir)) {}

  std::string_view name() const override { return "USO"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;

 private:
  ParamsPtr p_;
  std::filesystem::path dir_;
};

/// HaralickImageConstructor (HIC, the output stitch): places incoming
/// feature samples into per-feature 4D maps; emits one complete FeatureMap
/// per feature when all inputs have drained. Tracks min/max for the writer.
class HaralickImageConstructor final : public fs::Filter {
 public:
  explicit HaralickImageConstructor(ParamsPtr params) : p_(std::move(params)) {}

  std::string_view name() const override { return "HIC"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;
  void flush(fs::FilterContext& ctx) override;

 private:
  ParamsPtr p_;
  std::map<int, Volume4<float>> maps_;
  std::map<int, std::pair<float, float>> ranges_;
};

/// JPGImageWriter equivalent (JIW): normalizes a complete feature map by its
/// min/max and writes it as a PGM slice series (paper: JPEG series).
class ImageSeriesWriter final : public fs::Filter {
 public:
  ImageSeriesWriter(ParamsPtr params, std::filesystem::path dir)
      : p_(std::move(params)), dir_(std::move(dir)) {}

  std::string_view name() const override { return "JIW"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;

 private:
  ParamsPtr p_;
  std::filesystem::path dir_;
};

/// Thread-safe destination for assembled feature maps (library API sink).
struct CollectedResults {
  std::mutex mu;
  std::map<haralick::Feature, Volume4<float>> maps;
  std::map<haralick::Feature, std::pair<float, float>> ranges;
};

/// Sink filter storing FeatureMap buffers into a CollectedResults.
class ResultCollector final : public fs::Filter {
 public:
  ResultCollector(ParamsPtr params, std::shared_ptr<CollectedResults> out)
      : p_(std::move(params)), out_(std::move(out)) {}

  std::string_view name() const override { return "Collector"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;

 private:
  ParamsPtr p_;
  std::shared_ptr<CollectedResults> out_;
};

}  // namespace h4d::filters
