// Payload layouts of the buffers exchanged by the pipeline filters.
//
// RawChunkPiece  : u8 quantized levels of header.region (a sub-rect of one slice)
// TextureChunk   : u8 quantized levels of header.region; header.region2 is the
//                  chunk's owned ROI-origin region; header.chunk_id set
// MatrixPacket   : u32 count, then `count` serialized co-occurrence matrices
//                  (full or sparse per header.aux = Representation)
// FeatureValues  : array of FeatureSample; header.feature set
// FeatureMap     : float values of the full origin region (header.region)
#pragma once

#include <cstdint>
#include <vector>

#include "fs/buffer.hpp"
#include "haralick/glcm.hpp"
#include "haralick/glcm_sparse.hpp"
#include "haralick/roi_engine.hpp"

namespace h4d::filters {

/// Port ids used by the pipeline graph (one logical stream per port).
inline constexpr int kPortPieces = 0;    ///< RFR -> IIC
inline constexpr int kPortChunks = 0;    ///< IIC -> HMP/HCC
inline constexpr int kPortMatrices = 0;  ///< HCC -> HPC
inline constexpr int kPortFeatures = 0;  ///< HMP/HPC -> USO/HIC
inline constexpr int kPortMaps = 0;      ///< HIC -> JIW

/// One feature value with its ROI origin (the paper's "parameter values
/// along with corresponding positional information", Sec. 4.3.3).
struct FeatureSample {
  std::int32_t x = 0, y = 0, z = 0, t = 0;
  float value = 0.0f;

  Vec4 origin() const { return {x, y, z, t}; }
  static FeatureSample make(const Vec4& p, double v) {
    return {static_cast<std::int32_t>(p[0]), static_cast<std::int32_t>(p[1]),
            static_cast<std::int32_t>(p[2]), static_cast<std::int32_t>(p[3]),
            static_cast<float>(v)};
  }
};
static_assert(sizeof(FeatureSample) == 20);

/// Serializes a batch of co-occurrence matrices (with their ROI origins)
/// into a MatrixPacket payload. Full representation ships all Ng^2 counts;
/// sparse ships only the non-zero upper-triangular entries — the traffic
/// reduction behind Fig. 7(b).
class MatrixPacketWriter {
 public:
  MatrixPacketWriter(haralick::Representation repr, int num_levels)
      : repr_(repr), ng_(num_levels) {}

  void add(const Vec4& origin, const haralick::Glcm& glcm);

  std::uint32_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Move the accumulated payload into a buffer and reset the writer.
  fs::BufferPtr take(std::int64_t chunk_id, std::int64_t seq);

 private:
  haralick::Representation repr_;
  int ng_;
  std::uint32_t count_ = 0;
  std::vector<std::byte> bytes_;
};

/// Iterates the matrices of a MatrixPacket payload.
class MatrixPacketReader {
 public:
  explicit MatrixPacketReader(const fs::DataBuffer& buffer);

  haralick::Representation representation() const { return repr_; }
  std::uint32_t count() const { return count_; }
  bool next();  ///< advance; false when exhausted

  const Vec4& origin() const { return origin_; }
  /// Valid after next() in the matching representation.
  const haralick::Glcm& dense() const { return dense_; }
  const haralick::SparseGlcm& sparse() const { return sparse_; }

 private:
  haralick::Representation repr_;
  std::uint32_t count_ = 0;
  std::uint32_t index_ = 0;
  const std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  Vec4 origin_;
  haralick::Glcm dense_{2};
  haralick::SparseGlcm sparse_;
};

}  // namespace h4d::filters
