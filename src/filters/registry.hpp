// Registry of the pipeline's filter types for XML network descriptions.
#pragma once

#include <filesystem>

#include "filters/output_filters.hpp"
#include "filters/params.hpp"
#include "fs/netdesc.hpp"

namespace h4d::filters {

/// Registers the paper's eight filter types — "rfr", "iic", "hmp", "hcc",
/// "hpc", "uso", "hic", "jiw" — plus "collector" when `collected` is given.
/// USO and JIW write under `output_dir` (accounting-only when empty).
fs::FilterRegistry make_pipeline_registry(
    ParamsPtr params, std::filesystem::path output_dir = {},
    std::shared_ptr<CollectedResults> collected = {});

}  // namespace h4d::filters
