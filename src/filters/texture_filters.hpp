// Texture analysis filter set (paper Sec. 4.3.2).
//
// Two instantiations of the same work:
//   * HMP fuses co-occurrence construction and feature computation in one
//     filter (no intermediate communication);
//   * HCC + HPC split them into two pipelined filters; matrices travel on a
//     stream in full or sparse representation.
#pragma once

#include <array>
#include <vector>

#include "filters/params.hpp"
#include "filters/payloads.hpp"
#include "fs/filter.hpp"
#include "haralick/kernel.hpp"

namespace h4d::filters {

/// Batches FeatureSamples per feature and emits FeatureValues buffers when
/// a batch is full. Shared by HMP and HPC.
class FeatureEmitter {
 public:
  FeatureEmitter(ParamsPtr params, int port) : p_(std::move(params)), port_(port) {}

  void add(haralick::Feature f, const Vec4& origin, float value, fs::FilterContext& ctx);
  void flush(fs::FilterContext& ctx);

 private:
  void emit(haralick::Feature f, fs::FilterContext& ctx);

  ParamsPtr p_;
  int port_;
  std::array<std::vector<FeatureSample>, haralick::kNumFeatures> batches_;
  std::int64_t seq_ = 0;
};

/// HaralickMatrixProducer (HMP): full texture analysis in one filter.
class HaralickMatrixProducer final : public fs::Filter {
 public:
  explicit HaralickMatrixProducer(ParamsPtr params)
      : p_(params), out_(params, kPortFeatures) {}

  std::string_view name() const override { return "HMP"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;
  void flush(fs::FilterContext& ctx) override { out_.flush(ctx); }

 private:
  ParamsPtr p_;
  FeatureEmitter out_;
  // Kernel working state; each filter copy owns its own instance, so reuse
  // across chunks is race-free.
  haralick::KernelScratch scratch_{2};
};

/// HaralickCoMatrixCalculator (HCC): co-occurrence matrices only. Emits a
/// packet of matrices each time 1/packets_per_chunk of a chunk's ROIs has
/// been processed (paper Sec. 5.1).
class HaralickCoMatrixCalculator final : public fs::Filter {
 public:
  explicit HaralickCoMatrixCalculator(ParamsPtr params)
      : p_(params), writer_(params->engine.representation, params->engine.num_levels) {}

  std::string_view name() const override { return "HCC"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;
  void flush(fs::FilterContext& ctx) override;

 private:
  ParamsPtr p_;
  MatrixPacketWriter writer_;
  haralick::KernelScratch scratch_{2};  // per-copy, reused across ROIs
  std::int64_t seq_ = 0;
};

/// HaralickParameterCalculator (HPC): Haralick features from matrix packets.
class HaralickParameterCalculator final : public fs::Filter {
 public:
  explicit HaralickParameterCalculator(ParamsPtr params)
      : p_(params), out_(params, kPortFeatures) {}

  std::string_view name() const override { return "HPC"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;
  void flush(fs::FilterContext& ctx) override { out_.flush(ctx); }

 private:
  ParamsPtr p_;
  FeatureEmitter out_;
};

}  // namespace h4d::filters
