#include "filters/output_filters.hpp"

#include <limits>
#include <stdexcept>

#include "io/durable_file.hpp"
#include "io/image_write.hpp"
#include "nd/chunking.hpp"

namespace h4d::filters {

using haralick::Feature;

namespace {

/// Run one output write, mapping a typed storage failure (ENOSPC, short
/// write) into the run's fault accounting before it propagates — the
/// supervisor and metrics then show *why* the run died, not just that it did.
template <typename Fn>
void counted_write(const ParamsPtr& p, Fn&& fn) {
  try {
    fn();
  } catch (const io::WriteError&) {
    if (p->fault_sink) {
      io::FaultReport r;
      r.write_errors = 1;
      p->fault_sink->merge(r);
    }
    throw;
  }
}

}  // namespace

void UnstitchedOutput::process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) {
  if (port != kPortFeatures || buffer->header.kind != fs::BufferKind::FeatureValues) {
    throw std::runtime_error("USO: unexpected input buffer");
  }
  const auto samples = buffer->as<FeatureSample>();
  ctx.meter().disk_bytes_written += static_cast<std::int64_t>(buffer->payload.size());
  if (!dir_.empty()) {
    std::filesystem::create_directories(dir_);
    const Feature f = static_cast<Feature>(buffer->header.feature);
    const std::filesystem::path path =
        dir_ / (std::string(haralick::feature_slug(f)) + "_c" +
                std::to_string(ctx.copy_index()) + ".bin");
    // Durable append (O_APPEND + fsync): the samples are on disk before the
    // completion tracker can mark their chunk done, so a crash never leaves
    // a recorded-but-lost chunk for --resume to trust.
    counted_write(p_, [&] {
      io::append_durable(path, samples.data(), samples.size_bytes());
    });
  }
  // Checkpoint accounting happens *after* the samples are on disk: a crash
  // between write and note leaves the chunk unrecorded, so a resume replays
  // it — duplicates are idempotent under map assembly, losses are not.
  if (p_->completion) {
    for (const FeatureSample& s : samples) p_->completion->note_origin(s.origin());
  }
}

void HaralickImageConstructor::process(int port, const fs::BufferPtr& buffer,
                                       fs::FilterContext& ctx) {
  if (port != kPortFeatures || buffer->header.kind != fs::BufferKind::FeatureValues) {
    throw std::runtime_error("HIC: unexpected input buffer");
  }
  const int f = buffer->header.feature;
  const Region4 origins = roi_origin_region(p_->meta.dims, p_->engine.roi_dims);

  auto it = maps_.find(f);
  if (it == maps_.end()) {
    it = maps_.emplace(f, Volume4<float>(origins.size, 0.0f)).first;
    ranges_.emplace(f, std::pair<float, float>(std::numeric_limits<float>::infinity(),
                                               -std::numeric_limits<float>::infinity()));
  }
  Volume4<float>& map = it->second;
  auto& [lo, hi] = ranges_.at(f);

  for (const FeatureSample& s : buffer->as<FeatureSample>()) {
    const Vec4 o = s.origin();
    if (!origins.contains(o)) {
      throw std::runtime_error("HIC: sample origin " + o.str() + " outside " + origins.str());
    }
    const float v = static_cast<float>(s.value);
    map.at(o - origins.origin) = v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  ctx.meter().bytes_memcpy += static_cast<std::int64_t>(buffer->payload.size());
}

void HaralickImageConstructor::flush(fs::FilterContext& ctx) {
  const Region4 origins = roi_origin_region(p_->meta.dims, p_->engine.roi_dims);
  for (auto& [f, map] : maps_) {
    fs::BufferHeader h;
    h.kind = fs::BufferKind::FeatureMap;
    h.feature = f;
    h.region = origins;
    auto buffer = fs::make_buffer(h);
    auto span = buffer->alloc_as<float>(map.storage().size());
    std::copy(map.storage().begin(), map.storage().end(), span.begin());
    ctx.meter().bytes_memcpy += static_cast<std::int64_t>(buffer->payload.size());
    ctx.emit(kPortMaps, std::move(buffer));
  }
  maps_.clear();
}

void ImageSeriesWriter::process(int port, const fs::BufferPtr& buffer,
                                fs::FilterContext& ctx) {
  if (port != kPortMaps || buffer->header.kind != fs::BufferKind::FeatureMap) {
    throw std::runtime_error("JIW: unexpected input buffer");
  }
  const Feature f = static_cast<Feature>(buffer->header.feature);
  const auto values = buffer->as<float>();
  const Region4& origins = buffer->header.region;

  Volume4<float> map(origins.size);
  std::copy(values.begin(), values.end(), map.storage().begin());

  float lo = std::numeric_limits<float>::infinity();
  float hi = -lo;
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  ctx.meter().disk_bytes_written +=
      static_cast<std::int64_t>(origins.size[0] * origins.size[1]) * origins.size[2] *
      origins.size[3];
  if (!dir_.empty()) {
    counted_write(p_, [&] {
      io::write_feature_map_images(dir_, std::string(haralick::feature_slug(f)), map, lo,
                                   hi);
    });
    // The whole map for this feature is now on disk; credit every origin so
    // chunks whose remaining features were already accounted go durable.
    if (p_->completion) {
      Vec4 o;
      for (o[3] = 0; o[3] < origins.size[3]; ++o[3])
        for (o[2] = 0; o[2] < origins.size[2]; ++o[2])
          for (o[1] = 0; o[1] < origins.size[1]; ++o[1])
            for (o[0] = 0; o[0] < origins.size[0]; ++o[0])
              p_->completion->note_origin(origins.origin + o);
    }
  }
}

void ResultCollector::process(int port, const fs::BufferPtr& buffer, fs::FilterContext&) {
  if (port != kPortMaps || buffer->header.kind != fs::BufferKind::FeatureMap) {
    throw std::runtime_error("Collector: unexpected input buffer");
  }
  const auto f = static_cast<Feature>(buffer->header.feature);
  const auto values = buffer->as<float>();
  Volume4<float> map(buffer->header.region.size);
  std::copy(values.begin(), values.end(), map.storage().begin());

  float lo = std::numeric_limits<float>::infinity();
  float hi = -lo;
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  {
    std::lock_guard lk(out_->mu);
    out_->maps.insert_or_assign(f, std::move(map));
    out_->ranges.insert_or_assign(f, std::pair<float, float>(lo, hi));
  }
  // The collected map is the run's durable product (the CLI writes images
  // from it right after the run): credit every origin like JIW does, so
  // --checkpoint works in Collect mode too.
  if (p_->completion) {
    const Region4& origins = buffer->header.region;
    Vec4 o;
    for (o[3] = 0; o[3] < origins.size[3]; ++o[3])
      for (o[2] = 0; o[2] < origins.size[2]; ++o[2])
        for (o[1] = 0; o[1] < origins.size[1]; ++o[1])
          for (o[0] = 0; o[0] < origins.size[0]; ++o[0])
            p_->completion->note_origin(origins.origin + o);
  }
}

}  // namespace h4d::filters
