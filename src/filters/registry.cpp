#include "filters/registry.hpp"

#include "filters/input_filters.hpp"
#include "filters/texture_filters.hpp"

namespace h4d::filters {

fs::FilterRegistry make_pipeline_registry(ParamsPtr params,
                                          std::filesystem::path output_dir,
                                          std::shared_ptr<CollectedResults> collected) {
  fs::FilterRegistry reg;
  reg.register_type("rfr", [params] { return std::make_unique<RawFileReader>(params); });
  reg.register_type("iic",
                    [params] { return std::make_unique<InputImageConstructor>(params); });
  reg.register_type("hmp",
                    [params] { return std::make_unique<HaralickMatrixProducer>(params); });
  reg.register_type("hcc",
                    [params] { return std::make_unique<HaralickCoMatrixCalculator>(params); });
  reg.register_type("hpc",
                    [params] { return std::make_unique<HaralickParameterCalculator>(params); });
  reg.register_type("uso", [params, output_dir] {
    return std::make_unique<UnstitchedOutput>(params, output_dir);
  });
  reg.register_type("hic",
                    [params] { return std::make_unique<HaralickImageConstructor>(params); });
  reg.register_type("jiw", [params, output_dir] {
    return std::make_unique<ImageSeriesWriter>(params, output_dir);
  });
  if (collected) {
    reg.register_type("collector",
                      [params, collected] { return std::make_unique<ResultCollector>(params, collected); });
  }
  return reg;
}

}  // namespace h4d::filters
