#include "filters/payloads.hpp"

#include <cstring>
#include <stdexcept>

namespace h4d::filters {

namespace {

void append_bytes(std::vector<std::byte>& out, const void* src, std::size_t n) {
  const std::size_t base = out.size();
  out.resize(base + n);
  std::memcpy(out.data() + base, src, n);
}

void append_origin(std::vector<std::byte>& out, const Vec4& origin) {
  std::int64_t o[4] = {origin[0], origin[1], origin[2], origin[3]};
  append_bytes(out, o, sizeof(o));
}

Vec4 read_origin(const std::byte*& cursor, std::size_t& remaining) {
  if (remaining < 4 * sizeof(std::int64_t)) {
    throw std::runtime_error("MatrixPacket: truncated origin");
  }
  std::int64_t o[4];
  std::memcpy(o, cursor, sizeof(o));
  cursor += sizeof(o);
  remaining -= sizeof(o);
  return {o[0], o[1], o[2], o[3]};
}

}  // namespace

void MatrixPacketWriter::add(const Vec4& origin, const haralick::Glcm& glcm) {
  if (glcm.num_levels() != ng_) {
    throw std::invalid_argument("MatrixPacketWriter: Ng mismatch");
  }
  append_origin(bytes_, origin);
  if (repr_ == haralick::Representation::Sparse) {
    haralick::SparseGlcm::from_dense(glcm).serialize(bytes_);
  } else {
    const auto ng32 = static_cast<std::uint32_t>(ng_);
    const auto tot64 = static_cast<std::uint64_t>(glcm.total());
    append_bytes(bytes_, &ng32, sizeof(ng32));
    append_bytes(bytes_, &tot64, sizeof(tot64));
    append_bytes(bytes_, glcm.counts(),
                 static_cast<std::size_t>(ng_) * static_cast<std::size_t>(ng_) *
                     sizeof(std::uint32_t));
  }
  ++count_;
}

fs::BufferPtr MatrixPacketWriter::take(std::int64_t chunk_id, std::int64_t seq) {
  fs::BufferHeader h;
  h.kind = fs::BufferKind::MatrixPacket;
  h.chunk_id = chunk_id;
  h.seq = seq;
  h.aux = repr_ == haralick::Representation::Sparse ? 1 : 0;

  std::vector<std::byte> payload;
  payload.reserve(sizeof(std::uint32_t) + bytes_.size());
  append_bytes(payload, &count_, sizeof(count_));
  payload.insert(payload.end(), bytes_.begin(), bytes_.end());

  count_ = 0;
  bytes_.clear();
  return fs::make_buffer(h, std::move(payload));
}

MatrixPacketReader::MatrixPacketReader(const fs::DataBuffer& buffer)
    : repr_(buffer.header.aux == 1 ? haralick::Representation::Sparse
                                   : haralick::Representation::Full) {
  if (buffer.header.kind != fs::BufferKind::MatrixPacket) {
    throw std::invalid_argument("MatrixPacketReader: not a MatrixPacket buffer");
  }
  cursor_ = buffer.payload.data();
  remaining_ = buffer.payload.size();
  if (remaining_ < sizeof(std::uint32_t)) {
    throw std::runtime_error("MatrixPacket: missing count");
  }
  std::memcpy(&count_, cursor_, sizeof(count_));
  cursor_ += sizeof(count_);
  remaining_ -= sizeof(count_);
}

bool MatrixPacketReader::next() {
  if (index_ >= count_) return false;
  ++index_;
  origin_ = read_origin(cursor_, remaining_);
  if (repr_ == haralick::Representation::Sparse) {
    std::size_t used = 0;
    sparse_ = haralick::SparseGlcm::deserialize(cursor_, remaining_, used);
    cursor_ += used;
    remaining_ -= used;
  } else {
    std::uint32_t ng32 = 0;
    std::uint64_t tot64 = 0;
    if (remaining_ < sizeof(ng32) + sizeof(tot64)) {
      throw std::runtime_error("MatrixPacket: truncated dense header");
    }
    std::memcpy(&ng32, cursor_, sizeof(ng32));
    cursor_ += sizeof(ng32);
    remaining_ -= sizeof(ng32);
    std::memcpy(&tot64, cursor_, sizeof(tot64));
    cursor_ += sizeof(tot64);
    remaining_ -= sizeof(tot64);
    const std::size_t cells = static_cast<std::size_t>(ng32) * ng32;
    if (remaining_ < cells * sizeof(std::uint32_t)) {
      throw std::runtime_error("MatrixPacket: truncated dense counts");
    }
    std::vector<std::uint32_t> table(cells);
    std::memcpy(table.data(), cursor_, cells * sizeof(std::uint32_t));
    cursor_ += cells * sizeof(std::uint32_t);
    remaining_ -= cells * sizeof(std::uint32_t);
    dense_ = haralick::Glcm(static_cast<int>(ng32));
    dense_.set_raw(std::move(table), static_cast<std::int64_t>(tot64));
  }
  return true;
}

}  // namespace h4d::filters
