// Input filter set (paper Sec. 4.3.1): RAWFileReader and InputImageConstructor.
#pragma once

#include <map>
#include <optional>

#include "fs/filter.hpp"
#include "filters/params.hpp"
#include "filters/payloads.hpp"

namespace h4d::filters {

/// RAWFileReader (RFR).
///
/// One copy per storage node; copy k reads the slices local to node k,
/// requantizes them to Ng gray levels, cuts them into RFR->IIC pieces and
/// emits each piece once per IIC copy that owns an overlapping texture chunk
/// (header.aux carries the target IIC copy for explicit routing).
///
/// Reads go through io::ResilientReader: retry/backoff, per-slice checksum
/// verification and skip-and-fill degradation per PipelineParams::resilience,
/// with resilience counters credited to the copy's WorkMeter.
class RawFileReader final : public fs::Filter {
 public:
  explicit RawFileReader(ParamsPtr params) : p_(std::move(params)) {}

  std::string_view name() const override { return "RFR"; }
  void run_source(fs::FilterContext& ctx) override;

 private:
  ParamsPtr p_;
};

/// InputImageConstructor (IIC, the input stitch filter).
///
/// Reassembles full IIC->TEXTURE chunks from the slice pieces delivered by
/// the RFR filters and forwards complete chunks to the texture filters.
/// Multiple copies are *explicit*: copy k owns the chunks with
/// id % copies == k (paper Sec. 5.2).
class InputImageConstructor final : public fs::Filter {
 public:
  explicit InputImageConstructor(ParamsPtr params) : p_(std::move(params)) {}

  std::string_view name() const override { return "IIC"; }
  void process(int port, const fs::BufferPtr& buffer, fs::FilterContext& ctx) override;
  void flush(fs::FilterContext& ctx) override;

 private:
  struct Pending {
    Volume4<Level> data;
    std::int64_t filled = 0;  ///< voxels received so far
    explicit Pending(const Vec4& dims) : data(dims) {}
  };

  ParamsPtr p_;
  std::map<std::int64_t, Pending> pending_;
  std::int64_t emitted_ = 0;
};

}  // namespace h4d::filters
