#include "filters/texture_filters.hpp"

#include <stdexcept>

#include "nd/raster.hpp"

namespace h4d::filters {

using haralick::Feature;
using haralick::FeatureVector;
using haralick::Glcm;
using haralick::Representation;

namespace {

Vol4View<const Level> chunk_view(const fs::DataBuffer& buffer) {
  if (buffer.header.kind != fs::BufferKind::TextureChunk) {
    throw std::runtime_error("texture filter: expected a TextureChunk buffer");
  }
  return Vol4View<const Level>(reinterpret_cast<const Level*>(buffer.payload.data()),
                               buffer.header.region.size);
}

}  // namespace

void FeatureEmitter::add(Feature f, const Vec4& origin, float value, fs::FilterContext& ctx) {
  auto& batch = batches_[static_cast<std::size_t>(f)];
  batch.push_back(FeatureSample::make(origin, value));
  if (batch.size() >= static_cast<std::size_t>(p_->feature_buffer_samples)) {
    emit(f, ctx);
  }
}

void FeatureEmitter::flush(fs::FilterContext& ctx) {
  for (int f = 0; f < haralick::kNumFeatures; ++f) {
    if (!batches_[static_cast<std::size_t>(f)].empty()) {
      emit(static_cast<Feature>(f), ctx);
    }
  }
}

void FeatureEmitter::emit(Feature f, fs::FilterContext& ctx) {
  auto& batch = batches_[static_cast<std::size_t>(f)];
  fs::BufferHeader h;
  h.kind = fs::BufferKind::FeatureValues;
  h.feature = static_cast<std::int32_t>(f);
  h.seq = seq_++;
  auto buffer = fs::make_buffer(h);
  auto span = buffer->alloc_as<FeatureSample>(batch.size());
  std::copy(batch.begin(), batch.end(), span.begin());
  ctx.meter().bytes_memcpy += static_cast<std::int64_t>(batch.size() * sizeof(FeatureSample));
  batch.clear();
  ctx.emit(port_, std::move(buffer));
}

void HaralickMatrixProducer::process(int port, const fs::BufferPtr& buffer,
                                     fs::FilterContext& ctx) {
  if (port != kPortChunks) throw std::runtime_error("HMP: unexpected port");
  const auto view = chunk_view(*buffer);
  const Region4& region = buffer->header.region;
  const Region4& owned = buffer->header.region2;

  const auto blocks =
      haralick::analyze_chunk(view, region, owned, p_->engine, &ctx.meter().work, &scratch_);
  for (const auto& block : blocks) {
    std::int64_t k = 0;
    for (const Vec4& origin : raster(block.origins)) {
      out_.add(block.feature, origin, block.values[static_cast<std::size_t>(k)], ctx);
      ++k;
    }
  }
}

void HaralickCoMatrixCalculator::process(int port, const fs::BufferPtr& buffer,
                                         fs::FilterContext& ctx) {
  if (port != kPortChunks) throw std::runtime_error("HCC: unexpected port");
  const auto view = chunk_view(*buffer);
  const Region4& region = buffer->header.region;
  const Region4& owned = buffer->header.region2;
  const auto dirs = p_->engine.effective_directions();

  const std::int64_t total = owned.empty() ? 0 : owned.volume();
  const std::int64_t per_packet =
      std::max<std::int64_t>(1, total / std::max(1, p_->packets_per_chunk));

  std::int64_t since_flush = 0;
  for (const Vec4& origin : raster(owned)) {
    const Region4 roi{origin - region.origin, p_->engine.roi_dims};
    const Glcm g = haralick::glcm_for_roi(view, roi, dirs, p_->engine.num_levels,
                                          &ctx.meter().work, &scratch_);
    if (p_->engine.representation == Representation::Sparse) {
      // Compression cost: scan the dense matrix, emit the non-zeros.
      ctx.meter().work.sparse_compress_cells +=
          static_cast<std::int64_t>(p_->engine.num_levels) * p_->engine.num_levels;
      ctx.meter().work.sparse_entries_emitted += g.nonzero_upper();
    }
    writer_.add(origin, g);
    if (++since_flush >= per_packet) {
      ctx.emit(kPortMatrices, writer_.take(buffer->header.chunk_id, seq_++));
      since_flush = 0;
    }
  }
  if (!writer_.empty()) {
    ctx.emit(kPortMatrices, writer_.take(buffer->header.chunk_id, seq_++));
  }
}

void HaralickCoMatrixCalculator::flush(fs::FilterContext& ctx) {
  if (!writer_.empty()) {
    ctx.emit(kPortMatrices, writer_.take(-1, seq_++));
  }
}

void HaralickParameterCalculator::process(int port, const fs::BufferPtr& buffer,
                                          fs::FilterContext& ctx) {
  if (port != kPortMatrices) throw std::runtime_error("HPC: unexpected port");
  MatrixPacketReader reader(*buffer);
  while (reader.next()) {
    FeatureVector fv;
    if (reader.representation() == Representation::Sparse) {
      fv = haralick::compute_features(reader.sparse(), p_->engine.features,
                                      &ctx.meter().work);
    } else {
      fv = haralick::compute_features(reader.dense(), p_->engine.features,
                                      p_->engine.zero_policy, &ctx.meter().work);
    }
    for (int f = 0; f < haralick::kNumFeatures; ++f) {
      const Feature feat = static_cast<Feature>(f);
      if (p_->engine.features.has(feat)) {
        out_.add(feat, reader.origin(), static_cast<float>(fv[feat]), ctx);
      }
    }
  }
}

}  // namespace h4d::filters
