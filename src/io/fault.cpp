#include "io/fault.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace h4d::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

/// splitmix64: fast, well-distributed stateless mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a 64-bit hash.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::int64_t slice_key(std::int64_t t, std::int64_t z) {
  return (t << 32) ^ z;
}

constexpr std::uint64_t kSaltOpen = 0xA11C0DE5;
constexpr std::uint64_t kSaltShortRead = 0xB2EAD5;
constexpr std::uint64_t kSaltStall = 0xC0FFEE;
constexpr std::uint64_t kSaltCorrupt = 0xDECAF;
constexpr std::uint64_t kSaltStallLen = 0x5CA1AB1E;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

FaultConfig FaultConfig::parse(const std::string& spec) {
  FaultConfig cfg;
  if (spec.empty() || spec == "off") return cfg;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("fault spec item needs key=value: " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    // Every numeric value is domain-checked: a NaN or negative duration /
    // multiplier / budget would silently disable caps or poison the
    // deterministic schedule, so it is the same typed error as a non-number.
    const auto bad_value = [&]() -> std::runtime_error {
      return std::runtime_error("bad fault spec value for " + key + ": " + value);
    };
    const auto non_negative = [&](double v) {
      if (std::isnan(v) || v < 0.0) throw bad_value();
      return v;
    };
    try {
      if (key == "seed") {
        cfg.seed = std::stoull(value);
      } else if (key == "open") {
        cfg.p_fail_open = std::stod(value);
      } else if (key == "read") {
        cfg.p_short_read = std::stod(value);
      } else if (key == "corrupt") {
        cfg.p_corrupt = std::stod(value);
      } else if (key == "stall") {
        cfg.p_stall = std::stod(value);
      } else if (key == "stall_ms") {
        cfg.stall_ms = non_negative(std::stod(value));
      } else if (key == "stall_cap") {
        cfg.stall_cap_ms = non_negative(std::stod(value));
      } else if (key == "max_transient") {
        cfg.max_transient_per_slice = std::stoi(value);
        if (cfg.max_transient_per_slice < 0) throw bad_value();
      } else if (key == "stall_dist") {
        if (value == "fixed") {
          cfg.stall_dist = StallDist::Fixed;
        } else if (value == "pareto") {
          cfg.stall_dist = StallDist::Pareto;
        } else {
          throw bad_value();
        }
      } else if (key == "pareto_alpha") {
        cfg.pareto_alpha = std::stod(value);
        if (std::isnan(cfg.pareto_alpha) || cfg.pareto_alpha <= 0.0) throw bad_value();
      } else if (key == "slow_nodes") {
        // node:multiplier pairs separated by ';' (the spec splits on ',').
        std::istringstream pairs(value);
        std::string pair;
        while (std::getline(pairs, pair, ';')) {
          const auto colon = pair.find(':');
          if (colon == std::string::npos) throw bad_value();
          const int node = std::stoi(pair.substr(0, colon));
          const double mult = std::stod(pair.substr(colon + 1));
          if (node < 0 || std::isnan(mult) || mult < 0.0) throw bad_value();
          cfg.slow_nodes[node] = mult;
        }
      } else {
        throw std::runtime_error("unknown fault spec key: " + key);
      }
    } catch (const std::invalid_argument&) {
      throw bad_value();
    }
  }
  for (const double p : {cfg.p_fail_open, cfg.p_short_read, cfg.p_corrupt, cfg.p_stall}) {
    if (std::isnan(p) || p < 0.0 || p > 1.0) {
      throw std::runtime_error("fault probability outside [0,1]");
    }
  }
  return cfg;
}

std::string FaultConfig::str() const {
  std::ostringstream os;
  os << "seed=" << seed << ",open=" << p_fail_open << ",read=" << p_short_read
     << ",corrupt=" << p_corrupt << ",stall=" << p_stall;
  if (stall_dist == StallDist::Pareto) {
    os << ",stall_dist=pareto,pareto_alpha=" << pareto_alpha;
  }
  if (!slow_nodes.empty()) {
    os << ",slow_nodes=";
    bool first = true;
    for (const auto& [node, mult] : slow_nodes) {
      if (!first) os << ";";
      os << node << ":" << mult;
      first = false;
    }
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultConfig config) : cfg_(config) {}

double FaultInjector::uniform(std::int64_t slice, std::int64_t attempt,
                              std::uint64_t salt) const {
  std::uint64_t h = mix64(cfg_.seed ^ salt);
  h = mix64(h ^ static_cast<std::uint64_t>(slice));
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  return to_unit(h);
}

AttemptPlan FaultInjector::plan_attempt(std::int64_t t, std::int64_t z, int node) {
  const std::int64_t key = slice_key(t, z);
  int attempt = 0;
  int transient_so_far = 0;
  {
    std::lock_guard lk(mu_);
    attempt = attempts_[key]++;
    transient_so_far = transient_[key];
  }

  AttemptPlan plan;
  const bool transient_allowed = transient_so_far < cfg_.max_transient_per_slice;
  if (transient_allowed) {
    if (uniform(key, attempt, kSaltOpen) < cfg_.p_fail_open) {
      plan.fail_open = true;
    } else if (uniform(key, attempt, kSaltShortRead) < cfg_.p_short_read) {
      plan.short_read = true;
    }
    if (uniform(key, attempt, kSaltStall) < cfg_.p_stall) plan.stall = true;
  }

  if (plan.fail_open) stats_.opens_failed.fetch_add(1, std::memory_order_relaxed);
  if (plan.short_read) stats_.short_reads.fetch_add(1, std::memory_order_relaxed);
  if (plan.stall) {
    // Modeled duration: the base stall, shaped by the configured
    // distribution (Pareto tail is a pure hash of (seed, slice, attempt) —
    // deterministic like every other decision) and scaled by the serving
    // node's slow multiplier (gray-failure drills).
    plan.stall_ms = cfg_.stall_ms;
    if (cfg_.stall_dist == StallDist::Pareto) {
      const double u = uniform(key, attempt, kSaltStallLen);
      plan.stall_ms *= std::pow(1.0 - u, -1.0 / cfg_.pareto_alpha);
    }
    if (const auto it = cfg_.slow_nodes.find(node); it != cfg_.slow_nodes.end()) {
      plan.stall_ms *= it->second;
    }
    stats_.stalls.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.really_sleep && plan.stall_ms > 0.0) {
      // Never block a real thread longer than the hard cap: the *modeled*
      // stall stays plan.stall_ms, but a mis-typed stall_ms=60000 must not
      // hang a test run for a minute per fault.
      const double sleep_ms = std::min(plan.stall_ms, cfg_.stall_cap_ms);
      if (plan.stall_ms > cfg_.stall_cap_ms) {
        stats_.stalls_capped.fetch_add(1, std::memory_order_relaxed);
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
    }
  }
  if (plan.fail_open || plan.short_read || plan.stall) {
    std::lock_guard lk(mu_);
    ++transient_[key];
  }
  return plan;
}

bool FaultInjector::is_slice_corrupted(std::int64_t t, std::int64_t z) const {
  if (cfg_.p_corrupt <= 0.0) return false;
  return uniform(slice_key(t, z), /*attempt=*/-1, kSaltCorrupt) < cfg_.p_corrupt;
}

void FaultInjector::apply_corruption(std::int64_t t, std::int64_t z, std::uint8_t* data,
                                     std::size_t n) {
  if (n == 0 || !is_slice_corrupted(t, z)) return;
  stats_.slices_corrupted.fetch_add(1, std::memory_order_relaxed);
  // Flip a run of bytes at a position derived from the slice identity so
  // every re-read of the slice sees the same damage. Positions are distinct
  // and masks non-zero, so the buffer is guaranteed to differ (the checksum
  // must catch this).
  const std::int64_t key = slice_key(t, z);
  const std::uint64_t h = mix64(cfg_.seed ^ kSaltCorrupt ^ static_cast<std::uint64_t>(key));
  const std::size_t flips = std::min<std::size_t>(n, 1 + h % 4);
  for (std::size_t i = 0; i < flips; ++i) {
    data[(h + i) % n] ^= static_cast<std::uint8_t>(0xA5u + i);
  }
}

int FaultInjector::attempts(std::int64_t t, std::int64_t z) const {
  std::lock_guard lk(mu_);
  const auto it = attempts_.find(slice_key(t, z));
  return it == attempts_.end() ? 0 : it->second;
}

}  // namespace h4d::io
