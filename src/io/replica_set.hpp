// Replica placement, read failover and storage-node health tracking.
//
// A dataset written with a replication factor r stores every slice on r
// distinct nodes (DatasetMeta::replica_node, rotated round-robin). This
// module is the read-side view of that redundancy:
//
//   * *Static* liveness: nodes listed dead by the caller (--dead-nodes) or
//     whose directory is missing at open are excluded from read planning
//     entirely. read_owner() maps every slice to the first surviving replica,
//     so a degraded run completes with byte-identical output when r >= 2.
//   * *Dynamic* health: nodes that keep failing mid-run (open errors, short
//     reads, CRC mismatches surfaced by ResilientReader) are evicted after
//     `evict_after` consecutive failures and re-admitted for a probe read
//     once `probation_ms` has elapsed — a flapping node cannot stall every
//     slice read on its retry budget, and a recovered node is used again.
//
// One ReplicaSet is shared by every reader of a run (thread-safe); the
// per-reader failover/eviction counts land in FaultReport and the WorkMeter.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string_view>
#include <vector>

#include "io/dataset.hpp"

namespace h4d::io {

/// Dynamic node-health policy.
struct ReplicaHealthConfig {
  /// Consecutive failures after which a node is evicted from replica orders.
  int evict_after = 3;
  /// Time an evicted node sits out before it is offered again for one probe
  /// read. A failed probe restarts the clock; a successful one re-admits.
  double probation_ms = 2000.0;
};

/// Why a node was evicted: it kept *failing* reads (opens, short reads, CRC
/// mismatches), or it stayed *alive but slow* (sustained tail-latency
/// breaches surfaced by the tail-tolerance layer, io/tail.hpp). Both share
/// the probation / probe re-admission lifecycle.
enum class EvictReason { Failure, Slow };

std::string_view evict_reason_name(EvictReason r);

/// One healthy -> evicted transition (metrics export: io_tail.evictions).
struct EvictionEvent {
  int node = 0;
  EvictReason reason = EvictReason::Failure;
};

class ReplicaSet {
 public:
  /// `dead_nodes` are statically dead (operator-declared or detected missing
  /// at open); they never appear in read plans. Out-of-range entries throw.
  ReplicaSet(std::filesystem::path root, DatasetMeta meta,
             std::vector<int> dead_nodes = {}, ReplicaHealthConfig health = {});

  /// Nodes whose directory does not exist under `root` — the open-time
  /// detection feeding the static dead list.
  static std::vector<int> missing_node_dirs(const std::filesystem::path& root,
                                            const DatasetMeta& meta);

  const DatasetMeta& meta() const { return meta_; }
  const std::filesystem::path& root() const { return root_; }
  std::filesystem::path node_dir(int node) const { return root_ / node_dir_name(node); }
  const std::vector<int>& dead_nodes() const { return dead_; }

  /// Statically dead (never read from, never assigned work).
  bool node_dead(int node) const;
  /// Lowest-numbered node that is not statically dead, or -1.
  int first_alive_node() const;

  /// Node whose RFR copy reads this slice: the first statically-alive
  /// replica in rank order, or -1 when every replica is dead. Deterministic
  /// for a whole run (dynamic evictions do not move ownership; they only
  /// reroute the reads a ResilientReader performs).
  int read_owner(std::int64_t z, std::int64_t t) const;

  /// Ordered read candidates for one slice: `preferred` first when it holds
  /// a copy, then the remaining replicas by rank. Statically dead nodes are
  /// excluded; evicted nodes are excluded until their probation expires.
  /// Never empty while a non-dead replica exists: if every candidate is
  /// sitting out probation, all of them are offered (forced probe) rather
  /// than failing the slice without an attempt.
  std::vector<int> replica_order(std::int64_t z, std::int64_t t, int preferred) const;

  /// Record a failed read against `node`. Returns true when this failure
  /// evicted the node (transition into probation); a failure during an
  /// eviction's probe restarts the probation clock instead.
  bool note_failure(int node);
  /// Record a sustained-slowness verdict against `node` (the tail-tolerance
  /// layer's slow_after consecutive breaches): evict it immediately with
  /// reason `slow`. Returns true on the healthy -> evicted transition; a
  /// slow verdict during an eviction's probe restarts the probation clock,
  /// exactly like a failed probe.
  bool note_slow(int node);
  /// Record a successful read: resets the failure streak and re-admits an
  /// evicted node whose probe succeeded.
  void note_success(int node);

  /// Node currently evicted (probation not yet expired or probe not yet
  /// succeeded)?
  bool node_evicted(int node) const;
  /// Total eviction events so far (healthy -> evicted transitions).
  std::int64_t evictions() const;
  /// Eviction events whose reason was `slow` (subset of evictions()).
  std::int64_t evictions_slow() const;
  /// Every healthy -> evicted transition so far, in order, with its reason.
  std::vector<EvictionEvent> eviction_events() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct NodeHealth {
    int consecutive_failures = 0;
    bool evicted = false;
    Clock::time_point evicted_at{};
  };

  bool usable_locked(int node, Clock::time_point now) const;
  /// Evict `node` (caller holds mu_): record the event, stamp the clock.
  void evict_locked(NodeHealth& h, int node, EvictReason reason);

  std::filesystem::path root_;
  DatasetMeta meta_;
  std::vector<int> dead_;        ///< sorted static dead list
  std::vector<bool> is_dead_;    ///< per-node static liveness
  ReplicaHealthConfig health_;

  mutable std::mutex mu_;
  std::vector<NodeHealth> nodes_;
  std::int64_t evictions_ = 0;
  std::int64_t evictions_slow_ = 0;
  std::vector<EvictionEvent> events_;
};

}  // namespace h4d::io
