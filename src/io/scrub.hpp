// Offline integrity scrub and repair for replicated disk-resident datasets.
//
// A long-lived dataset accumulates silent damage between runs: a storage node
// directory lost to a disk swap, a slice file truncated by a crashed writer,
// a bit flip the next read would only catch mid-pipeline. The scrub walks
// every expected replica copy of every slice and verifies it against the
// per-node index (existence, size, CRC-32), producing a machine-readable
// inventory of divergent and missing copies. The repair pass then uses the
// surviving good replicas to re-clone damaged or missing copies (durable
// tmp + fsync + atomic-rename writes) and to rebuild a lost node's index —
// restoring full replication without re-importing the source volume.
//
// add_checksums() is the migration path for pre-checksum datasets: it
// backfills the CRC column of index entries that lack it (has_crc == false),
// cross-checking replica copies first so a corrupt copy cannot launder its
// own damage into the index.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace h4d::io {

/// One kind of damage a scrub can find.
enum class ScrubDefect {
  MissingNodeDir,     ///< whole storage node directory absent
  MissingIndex,       ///< node directory exists but has no index file
  IndexEntryMissing,  ///< node index does not list a slice it should hold
  MissingCopy,        ///< indexed/expected slice file absent
  SizeMismatch,       ///< slice file exists with the wrong byte count
  ChecksumMismatch,   ///< copy's CRC-32 disagrees with the index
  DivergentCopies,    ///< replicas disagree and no index CRC arbitrates
};

std::string_view scrub_defect_name(ScrubDefect d);

/// One damaged (or unrepairable) copy. node/rank are -1 for dataset- or
/// slice-level findings (missing directories, divergence).
struct ScrubFinding {
  std::int64_t t = -1;
  std::int64_t z = -1;
  int node = -1;
  int rank = -1;
  ScrubDefect kind = ScrubDefect::MissingCopy;
  std::string detail;
};

/// Full damage inventory of one scrub pass.
struct ScrubReport {
  std::int64_t slices_checked = 0;
  std::int64_t copies_expected = 0;
  /// Copies read back whole and matching a CRC-32 (own index entry or a
  /// replica's).
  std::int64_t copies_verified = 0;
  /// Copies read back whole but with no CRC anywhere to check against
  /// (pre-checksum indexes) — candidates for add_checksums().
  std::int64_t copies_unverified = 0;
  std::vector<ScrubFinding> findings;

  bool clean() const { return findings.empty(); }
  std::string summary() const;
  /// Machine-readable inventory (JSON object, schema "h4d-scrub-v1").
  void write_json(std::ostream& os) const;
};

/// Walk every replica copy of every slice under `root` and verify it against
/// the node indexes. Read-only; throws only when the dataset meta itself is
/// unreadable.
ScrubReport scrub_dataset(const std::filesystem::path& root);

/// What a repair pass changed.
struct RepairReport {
  std::int64_t copies_recloned = 0;   ///< slice files rewritten from a good replica
  std::int64_t indexes_rebuilt = 0;   ///< node index files rewritten
  /// Slices with no intact copy on any node — repair cannot restore them.
  std::vector<ScrubFinding> unrepairable;

  bool complete() const { return unrepairable.empty(); }
  std::string summary() const;
};

/// Restore full replication under `root`: re-clone every damaged or missing
/// copy from a surviving good replica (atomic durable writes) and rebuild
/// node indexes that are lost or inconsistent. The good copy is the one
/// matching an index CRC-32 when one exists, else the majority of the
/// surviving full-size copies. Idempotent; a following scrub is clean unless
/// some slice was unrepairable.
RepairReport repair_dataset(const std::filesystem::path& root);

/// What a checksum backfill changed.
struct ChecksumMigrationReport {
  std::int64_t entries_backfilled = 0;  ///< index entries given a CRC column
  /// Slices skipped because their replica copies disagree (repair first).
  std::int64_t slices_divergent = 0;

  std::string summary() const;
};

/// Backfill the CRC-32 column for index entries recorded before checksums
/// existed (has_crc == false). A slice's CRC is only written when every
/// surviving copy of it agrees (and matches any already-indexed CRC);
/// divergent slices are skipped and counted. Index files are rewritten
/// atomically.
ChecksumMigrationReport add_checksums(const std::filesystem::path& root);

}  // namespace h4d::io
