#include "io/manifest.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/durable_file.hpp"
#include "io/fault.hpp"

namespace h4d::io {

namespace {

std::uint32_t line_crc(const std::string& id_text) {
  return crc32(id_text.data(), id_text.size());
}

}  // namespace

ChunkManifest::ChunkManifest(std::filesystem::path path, bool fresh,
                             const std::string& owner)
    : path_(std::move(path)) {
  if (path_.has_parent_path()) std::filesystem::create_directories(path_.parent_path());
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (fresh) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("manifest: cannot open " + path_.string() + ": " +
                             std::strerror(errno));
  }
  if (!owner.empty()) {
    // Stamp the ownership header onto an empty file (a truncated fresh run,
    // or the first open ever). A resumed file keeps its existing header.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (fresh || (!ec && size == 0)) {
      const std::string payload = "owner " + owner;
      std::ostringstream line;
      line << payload << ' ' << std::hex << crc32(payload.data(), payload.size())
           << '\n';
      const std::string s = line.str();
      if (::write(fd_, s.data(), s.size()) != static_cast<ssize_t>(s.size()) ||
          ::fsync(fd_) != 0) {
        throw std::runtime_error("manifest: cannot write ownership header of " +
                                 path_.string());
      }
    }
  }
  if (!fresh) {
    // A crash can tear the final line before its newline. Appending straight
    // after the torn text would merge the next record into it, and load()
    // would then drop that record too. Terminate the torn line first.
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    if (in && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      char last = '\n';
      if (in.get(last) && last != '\n' && ::write(fd_, "\n", 1) != 1) {
        throw std::runtime_error("manifest: cannot repair torn tail of " +
                                 path_.string());
      }
    }
  }
}

ChunkManifest::~ChunkManifest() {
  if (fd_ >= 0) ::close(fd_);
}

void ChunkManifest::record(std::int64_t chunk_id) {
  const std::string id_text = std::to_string(chunk_id);
  std::ostringstream line;
  line << id_text << ' ' << std::hex << line_crc(id_text) << '\n';
  const std::string s = line.str();
  std::lock_guard lk(mu_);
  // One write per record: with O_APPEND a crash can tear at most the tail
  // line, which load() skips.
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t n = ::write(fd_, s.data() + off, s.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WriteError(path_, static_cast<std::int64_t>(s.size() - off), errno,
                       "manifest write");
    }
    if (n == 0) {
      throw WriteError(path_, static_cast<std::int64_t>(s.size() - off), ENOSPC,
                       "manifest write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw WriteError(path_, static_cast<std::int64_t>(s.size()), errno, "manifest fsync");
  }
}

std::vector<std::int64_t> ChunkManifest::load(const std::filesystem::path& path) {
  std::vector<std::int64_t> ids;
  std::ifstream in(path);
  if (!in) return ids;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::int64_t id = -1;
    std::string crc_text;
    if (!(fields >> id >> crc_text) || id < 0) continue;
    std::uint32_t crc = 0;
    try {
      crc = static_cast<std::uint32_t>(std::stoul(crc_text, nullptr, 16));
    } catch (...) {
      continue;
    }
    if (crc != line_crc(std::to_string(id))) continue;
    ids.push_back(id);
  }
  return ids;
}

std::string ChunkManifest::load_owner(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line)) return {};
  std::istringstream fields(line);
  std::string tag, token, crc_text;
  if (!(fields >> tag >> token >> crc_text) || tag != "owner") return {};
  std::uint32_t crc = 0;
  try {
    crc = static_cast<std::uint32_t>(std::stoul(crc_text, nullptr, 16));
  } catch (...) {
    return {};
  }
  const std::string payload = "owner " + token;
  if (crc != crc32(payload.data(), payload.size())) return {};
  return token;
}

ChunkCompletionTracker::ChunkCompletionTracker(
    const std::vector<Chunk>& chunks, const Vec4& dims, const Vec4& chunk_dims,
    const Vec4& roi_dims, std::int64_t samples_per_origin,
    std::shared_ptr<ChunkManifest> manifest,
    const std::unordered_set<std::int64_t>& completed)
    : manifest_(std::move(manifest)) {
  const Region4 origins = roi_origin_region(dims, roi_dims);
  for (int d = 0; d < kDims; ++d) {
    step_[d] = chunk_dims[d] - roi_dims[d] + 1;
    grid_[d] = (origins.size[d] + step_[d] - 1) / step_[d];
  }
  remaining_.resize(chunks.size(), 0);
  for (const Chunk& c : chunks) {
    const auto idx = static_cast<std::size_t>(c.id);
    if (completed.count(c.id) != 0) {
      remaining_[idx] = 0;  // resumed: done before this run started
      completed_++;
    } else {
      remaining_[idx] = c.owned_origins.volume() * samples_per_origin;
    }
  }
}

std::int64_t ChunkCompletionTracker::chunk_of(const Vec4& origin) const {
  std::int64_t id = 0;
  for (int d = kDims - 1; d >= 0; --d) {
    id = id * grid_[d] + origin[d] / step_[d];
  }
  return id;
}

void ChunkCompletionTracker::note_origin(const Vec4& origin) {
  const std::int64_t id = chunk_of(origin);
  std::lock_guard lk(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= remaining_.size()) return;
  auto& left = remaining_[static_cast<std::size_t>(id)];
  if (left <= 0) return;  // already complete (duplicate replay after resume)
  if (--left == 0) {
    completed_++;
    if (manifest_) manifest_->record(id);
  }
}

std::int64_t ChunkCompletionTracker::chunks_completed() const {
  std::lock_guard lk(mu_);
  return completed_;
}

}  // namespace h4d::io
