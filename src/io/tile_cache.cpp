#include "io/tile_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace h4d::io {

namespace {

constexpr std::int64_t kCostScanWidth = 8;  ///< cold-end candidates (Cost policy)

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string_view cache_policy_name(CachePolicy p) {
  switch (p) {
    case CachePolicy::Lru: return "lru";
    case CachePolicy::Clock: return "clock";
    case CachePolicy::Cost: return "cost";
  }
  return "?";
}

CachePolicy cache_policy_from_name(const std::string& name) {
  if (name == "lru") return CachePolicy::Lru;
  if (name == "clock") return CachePolicy::Clock;
  if (name == "cost" || name == "cost-aware" || name == "cost_aware") {
    return CachePolicy::Cost;
  }
  throw std::runtime_error("unknown cache policy: " + name + " (want lru|clock|cost)");
}

std::size_t TileCache::TileKeyHash::operator()(const TileKey& k) const {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(&k.dataset, sizeof(k.dataset), h);
  h = fnv1a(&k.t, sizeof(k.t), h);
  h = fnv1a(&k.z, sizeof(k.z), h);
  h = fnv1a(&k.xi, sizeof(k.xi), h);
  h = fnv1a(&k.yi, sizeof(k.yi), h);
  return static_cast<std::size_t>(h);
}

TileCache::TileCache(TileCacheConfig config) : cfg_(config) {
  if (cfg_.budget_bytes < 0) cfg_.budget_bytes = 0;
  cfg_.tile_w = std::max<std::int64_t>(1, cfg_.tile_w);
  cfg_.tile_h = std::max<std::int64_t>(1, cfg_.tile_h);
  // Every shard must be able to hold at least one full tile (worst case
  // uint16 elements), otherwise a sliver of the budget would cache nothing.
  const std::int64_t max_tile_bytes =
      cfg_.tile_w * cfg_.tile_h * static_cast<std::int64_t>(sizeof(std::uint16_t));
  const std::int64_t max_shards = std::max<std::int64_t>(1, cfg_.budget_bytes / max_tile_bytes);
  cfg_.shards = static_cast<int>(
      std::clamp<std::int64_t>(cfg_.shards, 1, std::min<std::int64_t>(max_shards, 64)));
  shard_budget_ = cfg_.budget_bytes / cfg_.shards;
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
  // Tenant id 0 always exists: solo runs intern the empty name as "local".
  tenants_.emplace_back().name = "local";
}

std::uint64_t TileCache::dataset_key(const std::string& root, const DatasetMeta& meta) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(root.data(), root.size(), h);
  for (int d = 0; d < kDims; ++d) {
    const std::int64_t v = meta.dims[d];
    h = fnv1a(&v, sizeof(v), h);
  }
  const int dt = static_cast<int>(meta.dtype);
  return fnv1a(&dt, sizeof(dt), h);
}

int TileCache::tenant_id(const std::string& name) {
  const std::string& key = name.empty() ? std::string("local") : name;
  std::lock_guard lk(tenants_mu_);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name == key) return static_cast<int>(i);
  }
  tenants_.emplace_back().name = key;
  return static_cast<int>(tenants_.size() - 1);
}

TileCache::TenantCounters& TileCache::tenant(int id) {
  std::lock_guard lk(tenants_mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= tenants_.size()) return tenants_[0];
  return tenants_[static_cast<std::size_t>(id)];
}

TileCache::Shard& TileCache::shard_of(const TileKey& k) {
  return *shards_[TileKeyHash{}(k) % shards_.size()];
}

const TileCache::Shard& TileCache::shard_of(const TileKey& k) const {
  return *shards_[TileKeyHash{}(k) % shards_.size()];
}

void TileCache::evict_entry(Shard& s, std::list<TileKey>::iterator victim) {
  const auto it = s.map.find(*victim);
  const std::int64_t size = static_cast<std::int64_t>(it->second.bytes.size());
  s.resident -= size;
  tenant(it->second.tenant).resident.fetch_add(-size, std::memory_order_relaxed);
  s.map.erase(it);
  s.order.erase(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  pending_evictions_.fetch_add(1, std::memory_order_relaxed);
}

void TileCache::make_room(Shard& s, std::int64_t need) {
  while (s.resident + need > shard_budget_ && !s.order.empty()) {
    auto victim = std::prev(s.order.end());
    if (cfg_.policy == CachePolicy::Clock) {
      // Second chance: a referenced tile is spared once (ref cleared, moved
      // to the hot end); the scan terminates because each step either
      // evicts or clears one ref bit.
      while (s.map.at(*victim).ref) {
        s.map.at(*victim).ref = false;
        s.order.splice(s.order.begin(), s.order, victim);
        victim = std::prev(s.order.end());
      }
    } else if (cfg_.policy == CachePolicy::Cost) {
      // Of the coldest few, evict the cheapest to refetch; strict < keeps
      // the oldest on cost ties, so the order is deterministic.
      auto best = victim;
      double best_cost = s.map.at(*best).cost;
      auto it = victim;
      for (std::int64_t n = 1; n < kCostScanWidth && it != s.order.begin(); ++n) {
        --it;
        const double c = s.map.at(*it).cost;
        if (c < best_cost) {
          best = it;
          best_cost = c;
        }
      }
      victim = best;
    }
    evict_entry(s, victim);
  }
}

bool TileCache::read_rect(std::uint64_t dataset, const DatasetMeta& meta, std::int64_t t,
                          std::int64_t z, std::int64_t x0, std::int64_t y0,
                          std::int64_t w, std::int64_t h, std::uint16_t* out,
                          int tenant_idx, TileRectStats& stats) {
  const std::int64_t tw = cfg_.tile_w, th = cfg_.tile_h;
  const std::size_t esz = dtype_size(meta.dtype);
  TenantCounters& tc = tenant(tenant_idx);
  std::int64_t bytes = 0;
  for (std::int64_t yi = y0 / th; yi * th < y0 + h; ++yi) {
    for (std::int64_t xi = x0 / tw; xi * tw < x0 + w; ++xi) {
      const TileKey key{dataset, t, z, xi, yi};
      Shard& s = shard_of(key);
      std::lock_guard lk(s.mu);
      const auto it = s.map.find(key);
      if (it == s.map.end()) {
        ++stats.misses;
        misses_.fetch_add(1, std::memory_order_relaxed);
        tc.misses.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      Entry& e = it->second;
      if (cfg_.policy == CachePolicy::Clock) {
        e.ref = true;
      } else {
        s.order.splice(s.order.begin(), s.order, e.pos);
      }
      if (e.prefetched) {
        e.prefetched = false;
        prefetch_useful_.fetch_add(1, std::memory_order_relaxed);
        pending_prefetch_useful_.fetch_add(1, std::memory_order_relaxed);
      }
      ++stats.hits;
      hits_.fetch_add(1, std::memory_order_relaxed);
      tc.hits.fetch_add(1, std::memory_order_relaxed);

      // Copy the tile's intersection with the requested rectangle, widening
      // to uint16 exactly like the disk path.
      const std::int64_t gx0 = std::max(x0, xi * tw), gx1 = std::min(x0 + w, xi * tw + e.ew);
      const std::int64_t gy0 = std::max(y0, yi * th), gy1 = std::min(y0 + h, yi * th + e.eh);
      for (std::int64_t gy = gy0; gy < gy1; ++gy) {
        const std::uint8_t* src =
            e.bytes.data() + (static_cast<std::size_t>((gy - yi * th) * e.ew + (gx0 - xi * tw))) * esz;
        std::uint16_t* dst = out + (gy - y0) * w + (gx0 - x0);
        if (meta.dtype == Dtype::U16) {
          std::memcpy(dst, src, static_cast<std::size_t>(gx1 - gx0) * sizeof(std::uint16_t));
        } else {
          for (std::int64_t x = 0; x < gx1 - gx0; ++x) dst[x] = src[x];
        }
      }
      bytes += (gx1 - gx0) * (gy1 - gy0) * static_cast<std::int64_t>(esz);
    }
  }
  stats.bytes_served += bytes;
  bytes_served_.fetch_add(bytes, std::memory_order_relaxed);
  tc.bytes_served.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

void TileCache::insert_slice(std::uint64_t dataset, const DatasetMeta& meta,
                             std::int64_t t, std::int64_t z, const std::uint8_t* bytes,
                             double cost, bool prefetched, int tenant_idx) {
  const std::int64_t nx = meta.dims[0], ny = meta.dims[1];
  const std::int64_t tw = cfg_.tile_w, th = cfg_.tile_h;
  const std::size_t esz = dtype_size(meta.dtype);
  for (std::int64_t yi = 0; yi * th < ny; ++yi) {
    for (std::int64_t xi = 0; xi * tw < nx; ++xi) {
      const std::int64_t ew = std::min(tw, nx - xi * tw);
      const std::int64_t eh = std::min(th, ny - yi * th);
      const std::int64_t size = ew * eh * static_cast<std::int64_t>(esz);
      const TileKey key{dataset, t, z, xi, yi};
      Shard& s = shard_of(key);
      std::lock_guard lk(s.mu);
      if (s.map.count(key) != 0) continue;  // keep the resident copy
      if (size > shard_budget_) continue;   // tile cannot fit this shard
      make_room(s, size);
      Entry e;
      e.bytes.resize(static_cast<std::size_t>(size));
      for (std::int64_t y = 0; y < eh; ++y) {
        std::memcpy(e.bytes.data() + static_cast<std::size_t>(y * ew) * esz,
                    bytes + (static_cast<std::size_t>((yi * th + y) * nx + xi * tw)) * esz,
                    static_cast<std::size_t>(ew) * esz);
      }
      e.ew = ew;
      e.eh = eh;
      e.cost = cost;
      e.prefetched = prefetched;
      e.tenant = tenant_idx;
      s.order.push_front(key);
      e.pos = s.order.begin();
      s.resident += size;
      tenant(tenant_idx).resident.fetch_add(size, std::memory_order_relaxed);
      s.map.emplace(key, std::move(e));
      if (prefetched) {
        prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
        pending_prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

bool TileCache::slice_fully_cached(std::uint64_t dataset, const DatasetMeta& meta,
                                   std::int64_t t, std::int64_t z) const {
  const std::int64_t nx = meta.dims[0], ny = meta.dims[1];
  for (std::int64_t yi = 0; yi * cfg_.tile_h < ny; ++yi) {
    for (std::int64_t xi = 0; xi * cfg_.tile_w < nx; ++xi) {
      const TileKey key{dataset, t, z, xi, yi};
      const Shard& s = shard_of(key);
      std::lock_guard lk(s.mu);
      if (s.map.count(key) == 0) return false;
    }
  }
  return true;
}

TileCacheStats TileCache::stats() const {
  TileCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.lookups = st.hits + st.misses;
  st.bytes_served = bytes_served_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  st.prefetch_useful = prefetch_useful_.load(std::memory_order_relaxed);
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    st.resident_bytes += s->resident;
    st.resident_tiles += static_cast<std::int64_t>(s->map.size());
  }
  return st;
}

std::int64_t TileCache::resident_bytes() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    total += s->resident;
  }
  return total;
}

std::vector<TenantCacheStats> TileCache::tenant_stats() const {
  std::lock_guard lk(tenants_mu_);
  std::vector<TenantCacheStats> out;
  out.reserve(tenants_.size());
  for (const TenantCounters& t : tenants_) {
    TenantCacheStats row;
    row.tenant = t.name;
    row.hits = t.hits.load(std::memory_order_relaxed);
    row.misses = t.misses.load(std::memory_order_relaxed);
    row.bytes_served = t.bytes_served.load(std::memory_order_relaxed);
    row.resident_bytes = t.resident.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

void TileCache::drain_unmetered(std::int64_t& evictions, std::int64_t& prefetch_issued,
                                std::int64_t& prefetch_useful) {
  evictions = pending_evictions_.exchange(0, std::memory_order_relaxed);
  prefetch_issued = pending_prefetch_issued_.exchange(0, std::memory_order_relaxed);
  prefetch_useful = pending_prefetch_useful_.exchange(0, std::memory_order_relaxed);
}

}  // namespace h4d::io
