// Deterministic storage-fault injection (resilience layer, part 1).
//
// A long out-of-core run touches millions of slice reads; at that scale the
// storage layer *will* hiccup (transient open failures, short reads, silent
// bit rot, latency stalls). The FaultInjector reproduces those hiccups
// deterministically so the retry/degradation machinery in ResilientReader can
// be tested and benchmarked: every decision is a pure hash of
// (seed, slice, attempt), so a given seed yields the same fault schedule
// regardless of thread interleaving or call order across filter copies.
//
// Fault taxonomy:
//   * fail_open / short_read / stall — *transient*: decided per read attempt,
//     so a retry of the same slice may succeed. `max_transient_per_slice`
//     bounds how many transient faults one slice can suffer, which makes
//     retry-until-success provable in tests.
//   * corrupt — *sticky*: decided per slice (attempt-independent), modeling
//     on-disk bit rot. Re-reads see the same corruption; only checksum
//     verification can detect it and only skip_and_fill can get past it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

namespace h4d::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `n` bytes, chainable via
/// `crc`. Used for the per-slice checksums in the dataset index files.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

/// Shape of an injected stall's duration.
enum class StallDist {
  Fixed,   ///< every stall lasts exactly stall_ms (modeled)
  Pareto,  ///< heavy-tailed: stall_ms x (1-u)^(-1/alpha), the classic
           ///< gray-failure latency profile (most stalls short, rare huge)
};

/// Configuration of the injector. All probabilities are in [0, 1];
/// a default-constructed config injects nothing.
struct FaultConfig {
  std::uint64_t seed = 0;
  double p_fail_open = 0.0;   ///< per attempt: open() fails
  double p_short_read = 0.0;  ///< per attempt: read() returns too few bytes
  double p_corrupt = 0.0;     ///< per slice (sticky): delivered bytes are flipped
  double p_stall = 0.0;       ///< per attempt: the read stalls for stall_ms
  double stall_ms = 1.0;
  /// Stall duration distribution. Pareto samples are a pure hash of
  /// (seed, slice, attempt), so the heavy tail is deterministic too.
  StallDist stall_dist = StallDist::Fixed;
  double pareto_alpha = 1.5;  ///< Pareto shape (smaller = heavier tail)
  /// Per-node stall multipliers (gray failure: one slow node among healthy
  /// peers). A node absent from the map has multiplier 1. Applied to the
  /// modeled duration of stalls injected on reads served by that node.
  std::map<int, double> slow_nodes;
  /// Hard per-attempt bound on the *real* sleep an injected stall performs.
  /// The configured stall_ms still describes the modeled hiccup, but a test
  /// process never blocks longer than this per attempt; stalls clipped by
  /// the cap are counted in FaultStats::stalls_capped.
  double stall_cap_ms = 25.0;
  bool really_sleep = true;   ///< false: stalls are only counted, not slept
  /// Transient faults (open/short-read/stall) stop firing on a slice after
  /// this many have been injected, guaranteeing eventual read success.
  int max_transient_per_slice = std::numeric_limits<int>::max();

  bool enabled() const {
    return p_fail_open > 0.0 || p_short_read > 0.0 || p_corrupt > 0.0 || p_stall > 0.0;
  }

  /// Parse a CLI spec: comma-separated key=value pairs among
  /// seed, open, read, corrupt, stall, stall_ms, stall_cap, max_transient,
  /// stall_dist (fixed|pareto), pareto_alpha, slow_nodes (node:mult pairs
  /// separated by ';', e.g. slow_nodes=0:16;2:4).
  /// Example: "seed=7,open=0.05,read=0.02,corrupt=0.01". Empty => disabled.
  /// Numeric values are validated: probabilities must lie in [0,1], and
  /// stall_ms / stall_cap / pareto_alpha / slow-node multipliers /
  /// max_transient must be finite and non-negative.
  static FaultConfig parse(const std::string& spec);
  std::string str() const;
};

/// Counts of faults actually injected (for reporting; thread-safe).
struct FaultStats {
  std::atomic<std::int64_t> opens_failed{0};
  std::atomic<std::int64_t> short_reads{0};
  std::atomic<std::int64_t> stalls{0};
  /// Stalls whose real sleep was clipped by stall_cap_ms (the modeled stall
  /// exceeded the hard per-attempt sleep bound).
  std::atomic<std::int64_t> stalls_capped{0};
  std::atomic<std::int64_t> slices_corrupted{0};  ///< corrupt deliveries (per read)
};

/// What the injector decided for one read attempt of one slice.
struct AttemptPlan {
  bool fail_open = false;
  bool short_read = false;
  bool stall = false;
  /// Modeled duration of the injected stall (before the stall_cap_ms sleep
  /// clip); 0 when stall is false. Tests pin the heavy-tail determinism.
  double stall_ms = 0.0;
};

/// Seeded, deterministic fault source shared by every reader of one run.
/// Thread-safe: per-slice attempt counters are mutex-guarded, decisions are
/// stateless hashes.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return cfg_; }
  const FaultStats& stats() const { return stats_; }

  /// Decide the fate of the next read attempt of slice (t, z). Increments the
  /// slice's attempt counter; also performs (or just counts) the stall.
  /// `node` identifies the storage node serving the attempt (slow_nodes
  /// multiplier lookup); -1 = unknown (multiplier 1). The fault *decisions*
  /// are node-independent, so a schedule replays identically whichever node
  /// answers.
  AttemptPlan plan_attempt(std::int64_t t, std::int64_t z, int node = -1);

  /// Sticky per-slice corruption decision (same answer on every call and on
  /// every injector constructed with the same config).
  bool is_slice_corrupted(std::int64_t t, std::int64_t z) const;

  /// Deterministically flip bytes of a corrupted slice's delivered data.
  /// No-op when the slice is not corrupted.
  void apply_corruption(std::int64_t t, std::int64_t z, std::uint8_t* data,
                        std::size_t n);

  /// Attempts observed so far for a slice (testing / diagnostics).
  int attempts(std::int64_t t, std::int64_t z) const;

 private:
  double uniform(std::int64_t slice, std::int64_t attempt, std::uint64_t salt) const;

  FaultConfig cfg_;
  FaultStats stats_;
  mutable std::mutex mu_;
  std::unordered_map<std::int64_t, int> attempts_;   ///< slice key -> attempts
  std::unordered_map<std::int64_t, int> transient_;  ///< slice key -> faults injected
};

}  // namespace h4d::io
