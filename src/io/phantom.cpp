#include "io/phantom.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace h4d::io {

namespace {

/// Smooth 3D value noise: random values on a coarse lattice, trilinearly
/// interpolated. Deterministic for a given seed.
class ValueNoise3 {
 public:
  ValueNoise3(Vec4 dims, int cell, unsigned seed) : cell_(cell) {
    nx_ = dims[0] / cell + 2;
    ny_ = dims[1] / cell + 2;
    nz_ = dims[2] / cell + 2;
    lattice_.resize(static_cast<std::size_t>(nx_ * ny_ * nz_));
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (double& v : lattice_) v = u(rng);
  }

  double operator()(std::int64_t x, std::int64_t y, std::int64_t z) const {
    const double fx = static_cast<double>(x) / cell_;
    const double fy = static_cast<double>(y) / cell_;
    const double fz = static_cast<double>(z) / cell_;
    const auto ix = static_cast<std::int64_t>(fx);
    const auto iy = static_cast<std::int64_t>(fy);
    const auto iz = static_cast<std::int64_t>(fz);
    const double tx = smooth(fx - static_cast<double>(ix));
    const double ty = smooth(fy - static_cast<double>(iy));
    const double tz = smooth(fz - static_cast<double>(iz));

    double acc = 0.0;
    for (int dz = 0; dz <= 1; ++dz) {
      for (int dy = 0; dy <= 1; ++dy) {
        for (int dx = 0; dx <= 1; ++dx) {
          const double w = (dx ? tx : 1.0 - tx) * (dy ? ty : 1.0 - ty) * (dz ? tz : 1.0 - tz);
          acc += w * at(ix + dx, iy + dy, iz + dz);
        }
      }
    }
    return acc;
  }

 private:
  static double smooth(double t) { return t * t * (3.0 - 2.0 * t); }

  double at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    i = std::clamp<std::int64_t>(i, 0, nx_ - 1);
    j = std::clamp<std::int64_t>(j, 0, ny_ - 1);
    k = std::clamp<std::int64_t>(k, 0, nz_ - 1);
    return lattice_[static_cast<std::size_t>((k * ny_ + j) * nx_ + i)];
  }

  int cell_;
  std::int64_t nx_, ny_, nz_;
  std::vector<double> lattice_;
};

}  // namespace

double enhancement_curve(double t, double uptake_rate, double washout_rate) {
  if (!(uptake_rate > washout_rate) || washout_rate <= 0.0) {
    throw std::invalid_argument("enhancement_curve: need uptake > washout > 0");
  }
  // Peak of e^{-b t} - e^{-a t} occurs at t* = ln(a/b)/(a-b).
  const double a = uptake_rate;
  const double b = washout_rate;
  const double tpeak = std::log(a / b) / (a - b);
  const double peak = std::exp(-b * tpeak) - std::exp(-a * tpeak);
  const double v = std::exp(-b * t) - std::exp(-a * t);
  return v / peak;
}

Phantom generate_phantom(const PhantomConfig& cfg) {
  if (!cfg.dims.all_positive()) {
    throw std::invalid_argument("generate_phantom: dims must be positive");
  }
  if (cfg.num_tumors < 0) {
    throw std::invalid_argument("generate_phantom: num_tumors must be >= 0");
  }

  const Vec4 d = cfg.dims;
  Phantom out{Volume4<std::uint16_t>(d), {}};

  std::mt19937_64 rng(cfg.seed);
  const ValueNoise3 texture(d, cfg.texture_cell, cfg.seed + 1);
  const ValueNoise3 anatomy(d, cfg.texture_cell * 3, cfg.seed + 2);

  // Place tumors away from the borders.
  std::uniform_real_distribution<double> ux(0.2, 0.8);
  std::uniform_real_distribution<double> ur(0.05, 0.12);
  std::uniform_real_distribution<double> uamp(0.7, 1.0);
  std::uniform_real_distribution<double> uup(1.0, 2.0);
  std::uniform_real_distribution<double> uwash(0.08, 0.25);
  for (int i = 0; i < cfg.num_tumors; ++i) {
    Tumor t;
    t.center = {static_cast<std::int64_t>(ux(rng) * static_cast<double>(d[0])),
                static_cast<std::int64_t>(ux(rng) * static_cast<double>(d[1])),
                static_cast<std::int64_t>(ux(rng) * static_cast<double>(d[2])), 0};
    t.radii = {std::max<std::int64_t>(2, static_cast<std::int64_t>(ur(rng) * static_cast<double>(d[0]))),
               std::max<std::int64_t>(2, static_cast<std::int64_t>(ur(rng) * static_cast<double>(d[1]))),
               std::max<std::int64_t>(1, static_cast<std::int64_t>(ur(rng) * static_cast<double>(d[2]))),
               0};
    t.amplitude = cfg.tumor_amplitude * uamp(rng);
    t.uptake_rate = uup(rng);
    t.washout_rate = uwash(rng);
    out.tumors.push_back(t);
  }

  std::normal_distribution<double> noise(0.0, cfg.noise_sigma);

  for (std::int64_t t = 0; t < d[3]; ++t) {
    // Mild global intensity drift over time (scanner gain).
    const double drift = 1.0 + 0.02 * std::sin(0.7 * static_cast<double>(t));
    for (std::int64_t z = 0; z < d[2]; ++z) {
      for (std::int64_t y = 0; y < d[1]; ++y) {
        for (std::int64_t x = 0; x < d[0]; ++x) {
          double v = cfg.base_intensity * (1.0 + 0.35 * anatomy(x, y, z)) +
                     cfg.texture_amplitude * texture(x, y, z);
          for (const Tumor& tu : out.tumors) {
            const double ex = static_cast<double>(x - tu.center[0]) / static_cast<double>(tu.radii[0]);
            const double ey = static_cast<double>(y - tu.center[1]) / static_cast<double>(tu.radii[1]);
            const double ez = static_cast<double>(z - tu.center[2]) / static_cast<double>(tu.radii[2]);
            const double r2 = ex * ex + ey * ey + ez * ez;
            if (r2 < 1.0) {
              const double profile = 1.0 - r2;  // soft edge
              const double s = enhancement_curve(static_cast<double>(t), tu.uptake_rate,
                                                 tu.washout_rate);
              v += tu.amplitude * profile * s;
            }
          }
          v = drift * v + noise(rng);
          out.volume.at(x, y, z, t) =
              static_cast<std::uint16_t>(std::clamp(v, 0.0, 65535.0));
        }
      }
    }
  }
  return out;
}

Volume4<std::uint8_t> tumor_mask(const Vec4& dims, const std::vector<Tumor>& tumors) {
  Volume4<std::uint8_t> mask(dims, 0);
  for (std::int64_t t = 0; t < dims[3]; ++t) {
    for (std::int64_t z = 0; z < dims[2]; ++z) {
      for (std::int64_t y = 0; y < dims[1]; ++y) {
        for (std::int64_t x = 0; x < dims[0]; ++x) {
          for (const Tumor& tu : tumors) {
            const double ex = static_cast<double>(x - tu.center[0]) /
                              static_cast<double>(tu.radii[0]);
            const double ey = static_cast<double>(y - tu.center[1]) /
                              static_cast<double>(tu.radii[1]);
            const double ez = static_cast<double>(z - tu.center[2]) /
                              static_cast<double>(tu.radii[2]);
            if (ex * ex + ey * ey + ez * ez < 1.0) {
              mask.at(x, y, z, t) = 1;
              break;
            }
          }
        }
      }
    }
  }
  return mask;
}

}  // namespace h4d::io
