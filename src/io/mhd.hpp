// MetaImage (.mhd + raw) import/export.
//
// The paper notes its raw-file reader "may be easily replaced by a filter
// which reads DICOM format images" (Sec. 4.3). MetaImage is the simple
// standard container used by ITK-based medical pipelines; this module reads
// and writes 2D/3D/4D MET_UCHAR / MET_USHORT volumes and imports them into
// the disk-resident dataset layout the pipeline consumes.
//
// Supported header keys: ObjectType, NDims, DimSize, ElementType,
// BinaryDataByteOrderMSB / ElementByteOrderMSB (must be false),
// ElementDataFile (a real filename; LOCAL is not supported). Unknown keys
// are ignored. Missing dimensions are treated as extent 1 (a 3D file is a
// single-timestep 4D volume).
#pragma once

#include <filesystem>

#include "io/dataset.hpp"
#include "nd/volume4.hpp"

namespace h4d::io {

/// Read an .mhd volume (with its raw data file resolved relative to the
/// header's directory). Values widen to uint16.
Volume4<std::uint16_t> read_mhd(const std::filesystem::path& header_path);

/// Write `vol` as <path>.mhd plus <stem>.raw (MET_USHORT, little endian).
void write_mhd(const std::filesystem::path& header_path, const Volume4<std::uint16_t>& vol);

/// Convenience: read an .mhd study and lay it out as a disk-resident
/// dataset (slice files distributed over storage nodes, each slice stored on
/// `replicas` distinct nodes).
DiskDataset import_mhd(const std::filesystem::path& header_path,
                       const std::filesystem::path& dataset_root, int storage_nodes,
                       int replicas = 1);

}  // namespace h4d::io
