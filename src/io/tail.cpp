#include "io/tail.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "io/fault.hpp"
#include "io/resilient_reader.hpp"

namespace h4d::io {

// ---------------------------------------------------------------- tracker

LatencyTracker::LatencyTracker(int nodes)
    : nodes_(static_cast<std::size_t>(std::max(nodes, 1))) {}

int LatencyTracker::bucket_of(double ms) {
  if (!(ms > kBucketBase)) return 0;
  const int i = static_cast<int>(std::ceil(std::log(ms / kBucketBase) /
                                           std::log(kBucketGrowth)));
  return std::min(std::max(i, 0), kBuckets - 1);
}

double LatencyTracker::bucket_upper(int i) {
  return kBucketBase * std::pow(kBucketGrowth, i);
}

void LatencyTracker::record(int node, double ms) {
  if (node < 0 || node >= static_cast<int>(nodes_.size()) || !(ms >= 0.0)) return;
  std::lock_guard lk(mu_);
  Node& n = nodes_[static_cast<std::size_t>(node)];
  n.ewma_ms = n.count == 0 ? ms : 0.8 * n.ewma_ms + 0.2 * ms;
  ++n.count;
  ++n.hist[bucket_of(ms)];
}

bool LatencyTracker::note_breach(int node, int slow_after) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return false;
  breaches.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lk(mu_);
  Node& n = nodes_[static_cast<std::size_t>(node)];
  ++n.breaches;
  if (++n.breach_streak >= std::max(slow_after, 1)) {
    n.breach_streak = 0;  // fresh count after the probation probe
    return true;
  }
  return false;
}

void LatencyTracker::note_on_time(int node) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return;
  std::lock_guard lk(mu_);
  nodes_[static_cast<std::size_t>(node)].breach_streak = 0;
}

double LatencyTracker::percentile_locked(const Node& n, double q) const {
  if (n.count == 0) return 0.0;
  const auto want = static_cast<std::int64_t>(
      std::ceil(std::min(std::max(q, 0.0), 1.0) * static_cast<double>(n.count)));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += n.hist[i];
    if (seen >= want) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

double LatencyTracker::percentile_ms(int node, double q) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0.0;
  std::lock_guard lk(mu_);
  return percentile_locked(nodes_[static_cast<std::size_t>(node)], q);
}

double LatencyTracker::ewma_ms(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0.0;
  std::lock_guard lk(mu_);
  return nodes_[static_cast<std::size_t>(node)].ewma_ms;
}

std::int64_t LatencyTracker::reads(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0;
  std::lock_guard lk(mu_);
  return nodes_[static_cast<std::size_t>(node)].count;
}

double LatencyTracker::deadline_for(int node, const TailConfig& cfg) const {
  if (!cfg.deadline_enabled) return 0.0;
  if (cfg.deadline_ms > 0.0) return cfg.deadline_ms;
  std::lock_guard lk(mu_);
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return cfg.deadline_ceiling_ms;
  }
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  // A cold node must not get healthy reads abandoned on a zero p99.
  if (n.count < cfg.min_samples) return cfg.deadline_ceiling_ms;
  return std::clamp(cfg.deadline_k * percentile_locked(n, 0.99),
                    cfg.deadline_floor_ms, cfg.deadline_ceiling_ms);
}

double LatencyTracker::hedge_delay_for(int node, const TailConfig& cfg) const {
  std::lock_guard lk(mu_);
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return cfg.hedge_floor_ms;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.count < cfg.min_samples) return cfg.hedge_floor_ms;
  return std::max(cfg.hedge_floor_ms, percentile_locked(n, cfg.hedge_pct / 100.0));
}

bool LatencyTracker::try_begin_hedge(int max_inflight) {
  int cur = hedges_inflight_.load(std::memory_order_relaxed);
  while (cur < std::max(max_inflight, 1)) {
    if (hedges_inflight_.compare_exchange_weak(cur, cur + 1,
                                               std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void LatencyTracker::end_hedge() {
  hedges_inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

std::vector<NodeLatencyStats> LatencyTracker::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<NodeLatencyStats> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    NodeLatencyStats s;
    s.node = static_cast<int>(i);
    s.reads = n.count;
    s.ewma_ms = n.ewma_ms;
    s.p50_ms = percentile_locked(n, 0.50);
    s.p99_ms = percentile_locked(n, 0.99);
    s.breaches = n.breaches;
    out.push_back(s);
  }
  return out;
}

// ------------------------------------------------------------------ event

void FetchEvent::signal() {
  {
    std::lock_guard lk(mu_);
    ++completions_;
  }
  cv_.notify_all();
}

int FetchEvent::wait_until(std::chrono::steady_clock::time_point deadline, int seen) {
  std::unique_lock lk(mu_);
  cv_.wait_until(lk, deadline, [&] { return completions_ > seen; });
  return completions_;
}

// ------------------------------------------------------------------- pool

SliceFetchPool::SliceFetchPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SliceFetchPool::~SliceFetchPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::shared_ptr<FetchTicket> SliceFetchPool::submit(Request req,
                                                    std::shared_ptr<FetchEvent> event) {
  auto ticket = std::make_shared<FetchTicket>();
  ticket->event_ = std::move(event);
  {
    std::lock_guard lk(mu_);
    queue_.push_back({std::move(req), ticket});
  }
  cv_.notify_one();
  return ticket;
}

void SliceFetchPool::execute(const Request& req, FetchResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // A per-thread reader per node directory: helper threads never share
    // mutable reader state with each other or with the submitting reader,
    // so an abandoned fetch can finish long after the waiter moved on.
    thread_local std::map<std::string, StorageNodeReader> readers;
    const std::string key = req.node_dir.string();
    auto it = readers.find(key);
    if (it == readers.end()) {
      it = readers.emplace(key, StorageNodeReader(req.node_dir, req.meta, req.node))
               .first;
    }
    StorageNodeReader& reader = it->second;
    reader.set_fault_injector(req.injector);
    const std::size_t nbytes = static_cast<std::size_t>(req.meta.slice_bytes());
    std::vector<std::uint8_t> bytes(nbytes);
    reader.read_slice_bytes(req.slice, bytes.data());
    out.bytes_read = static_cast<std::int64_t>(nbytes);
    if (req.verify && req.slice.has_crc) {
      const std::uint32_t actual = crc32(bytes.data(), bytes.size());
      if (actual != req.slice.crc) {
        out.crc_failed = true;
        out.error = ChecksumError(req.slice.filename, req.slice.t, req.slice.z,
                                  req.slice.crc, actual)
                        .what();
        return;
      }
    }
    out.bytes = std::move(bytes);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.service_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
}

void SliceFetchPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    FetchResult result;
    // Cancelled before it started: complete immediately without touching
    // disk. Already-running fetches are drained, not interrupted.
    if (!task.ticket->abandoned()) {
      execute(task.req, result);
    } else {
      result.error = "abandoned before start";
    }
    std::shared_ptr<FetchEvent> event;
    {
      std::lock_guard lk(task.ticket->mu_);
      task.ticket->result_ = std::move(result);
      task.ticket->done_ = true;
      event = task.ticket->event_;
    }
    if (event) event->signal();
  }
}

}  // namespace h4d::io
