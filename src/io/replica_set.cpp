#include "io/replica_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace h4d::io {

std::string_view evict_reason_name(EvictReason r) {
  switch (r) {
    case EvictReason::Failure: return "failure";
    case EvictReason::Slow: return "slow";
  }
  return "?";
}

ReplicaSet::ReplicaSet(std::filesystem::path root, DatasetMeta meta,
                       std::vector<int> dead_nodes, ReplicaHealthConfig health)
    : root_(std::move(root)), meta_(meta), dead_(std::move(dead_nodes)), health_(health) {
  if (health_.evict_after < 1) {
    throw std::invalid_argument("ReplicaSet: evict_after must be >= 1");
  }
  std::sort(dead_.begin(), dead_.end());
  dead_.erase(std::unique(dead_.begin(), dead_.end()), dead_.end());
  is_dead_.assign(static_cast<std::size_t>(meta_.storage_nodes), false);
  for (const int n : dead_) {
    if (n < 0 || n >= meta_.storage_nodes) {
      throw std::invalid_argument("ReplicaSet: dead node " + std::to_string(n) +
                                  " out of range [0, " +
                                  std::to_string(meta_.storage_nodes) + ")");
    }
    is_dead_[static_cast<std::size_t>(n)] = true;
  }
  nodes_.resize(static_cast<std::size_t>(meta_.storage_nodes));
}

std::vector<int> ReplicaSet::missing_node_dirs(const std::filesystem::path& root,
                                               const DatasetMeta& meta) {
  std::vector<int> missing;
  for (int n = 0; n < meta.storage_nodes; ++n) {
    std::error_code ec;
    if (!std::filesystem::is_directory(root / node_dir_name(n), ec)) missing.push_back(n);
  }
  return missing;
}

bool ReplicaSet::node_dead(int node) const {
  return node >= 0 && node < meta_.storage_nodes &&
         is_dead_[static_cast<std::size_t>(node)];
}

int ReplicaSet::first_alive_node() const {
  for (int n = 0; n < meta_.storage_nodes; ++n) {
    if (!is_dead_[static_cast<std::size_t>(n)]) return n;
  }
  return -1;
}

int ReplicaSet::read_owner(std::int64_t z, std::int64_t t) const {
  for (int rank = 0; rank < meta_.replica_count(); ++rank) {
    const int node = meta_.replica_node(z, t, rank);
    if (!is_dead_[static_cast<std::size_t>(node)]) return node;
  }
  return -1;
}

bool ReplicaSet::usable_locked(int node, Clock::time_point now) const {
  const NodeHealth& h = nodes_[static_cast<std::size_t>(node)];
  if (!h.evicted) return true;
  const auto probation =
      std::chrono::duration<double, std::milli>(health_.probation_ms);
  return now - h.evicted_at >= probation;
}

std::vector<int> ReplicaSet::replica_order(std::int64_t z, std::int64_t t,
                                           int preferred) const {
  // Candidates in rank order, rotated so `preferred` (when it holds a copy)
  // comes first — the RFR copy reads its local disk before going remote.
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(meta_.replica_count()));
  if (meta_.replica_rank(z, t, preferred) >= 0 && !node_dead(preferred)) {
    candidates.push_back(preferred);
  }
  for (int rank = 0; rank < meta_.replica_count(); ++rank) {
    const int node = meta_.replica_node(z, t, rank);
    if (node == preferred || node_dead(node)) continue;
    candidates.push_back(node);
  }

  const Clock::time_point now = Clock::now();
  std::lock_guard lk(mu_);
  std::vector<int> order;
  order.reserve(candidates.size());
  for (const int node : candidates) {
    if (usable_locked(node, now)) order.push_back(node);
  }
  // All surviving replicas in probation: offer them anyway (forced probe)
  // rather than declaring the slice unreadable without a single attempt.
  return order.empty() ? candidates : order;
}

void ReplicaSet::evict_locked(NodeHealth& h, int node, EvictReason reason) {
  h.evicted = true;
  h.evicted_at = Clock::now();
  ++evictions_;
  if (reason == EvictReason::Slow) ++evictions_slow_;
  events_.push_back({node, reason});
}

bool ReplicaSet::note_failure(int node) {
  if (node < 0 || node >= meta_.storage_nodes) return false;
  std::lock_guard lk(mu_);
  NodeHealth& h = nodes_[static_cast<std::size_t>(node)];
  if (h.evicted) {
    h.evicted_at = Clock::now();  // failed probe: restart probation
    return false;
  }
  if (++h.consecutive_failures >= health_.evict_after) {
    evict_locked(h, node, EvictReason::Failure);
    return true;
  }
  return false;
}

bool ReplicaSet::note_slow(int node) {
  if (node < 0 || node >= meta_.storage_nodes) return false;
  std::lock_guard lk(mu_);
  NodeHealth& h = nodes_[static_cast<std::size_t>(node)];
  if (h.evicted) {
    h.evicted_at = Clock::now();  // slow probe: restart probation
    return false;
  }
  evict_locked(h, node, EvictReason::Slow);
  return true;
}

void ReplicaSet::note_success(int node) {
  if (node < 0 || node >= meta_.storage_nodes) return;
  std::lock_guard lk(mu_);
  NodeHealth& h = nodes_[static_cast<std::size_t>(node)];
  h.consecutive_failures = 0;
  h.evicted = false;
}

bool ReplicaSet::node_evicted(int node) const {
  if (node < 0 || node >= meta_.storage_nodes) return false;
  std::lock_guard lk(mu_);
  return nodes_[static_cast<std::size_t>(node)].evicted;
}

std::int64_t ReplicaSet::evictions() const {
  std::lock_guard lk(mu_);
  return evictions_;
}

std::int64_t ReplicaSet::evictions_slow() const {
  std::lock_guard lk(mu_);
  return evictions_slow_;
}

std::vector<EvictionEvent> ReplicaSet::eviction_events() const {
  std::lock_guard lk(mu_);
  return events_;
}

}  // namespace h4d::io
