// Resilient slice access (resilience layer, part 2).
//
// Wraps a StorageNodeReader with the policies that keep a long out-of-core
// run alive through storage-layer faults:
//   * bounded retry with exponential backoff for transient failures
//     (failed opens, short reads);
//   * per-slice CRC-32 verification against the checksum recorded in the
//     node index at DiskDataset::create time, catching silent corruption;
//   * replica failover: with a ReplicaSet attached, a slice whose local copy
//     stays unreadable (or fails verification) is re-read from the next
//     replica node in rank order, with per-node health eviction — an error
//     only surfaces once *every* replica is exhausted;
//   * graceful degradation: fail_fast rethrows immediately, retry gives up
//     after the attempt budget, skip_and_fill substitutes a configurable
//     fill intensity for irrecoverable slices and records them in a
//     FaultReport so the run completes with a precise damage inventory.
//
// The verified read path fetches whole slice files (the checksum unit) and
// caches the most recent one, so the RFR filter's tile loop re-reads nothing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "io/dataset.hpp"
#include "io/fault.hpp"
#include "io/tail.hpp"

namespace h4d::io {

class ReplicaSet;  // io/replica_set.hpp
class TileCache;   // io/tile_cache.hpp

/// A slice whose recorded CRC-32 did not match the bytes read back.
class ChecksumError : public std::runtime_error {
 public:
  ChecksumError(const std::string& file, std::int64_t t, std::int64_t z,
                std::uint32_t expected, std::uint32_t actual);

  std::int64_t t = 0;
  std::int64_t z = 0;
};

/// Bounded retry with exponential backoff.
struct RetryPolicy {
  int max_attempts = 4;          ///< total tries per slice (1 = no retry)
  double backoff_base_ms = 1.0;  ///< delay before the first retry
  double backoff_factor = 2.0;
  double backoff_max_ms = 50.0;  ///< cap on any single delay
  /// Total backoff budget across every attempt of one slice read (all
  /// replicas). Individual delays are clipped to whatever remains, so a
  /// many-replica, many-attempt read cannot accumulate unbounded sleep;
  /// clips are counted in FaultReport::backoffs_capped (mirroring the
  /// injector's stalls_capped).
  double total_backoff_cap_ms = 250.0;
  bool really_sleep = true;      ///< false: backoff is only accounted, not slept

  /// Delay before retry number `retry` (0-based): base * factor^retry,
  /// capped at backoff_max_ms. Exposed for tests of the bound.
  double backoff_ms(int retry) const;
  /// backoff_ms(retry) additionally clipped to the remaining total budget
  /// (total_backoff_cap_ms - spent_ms). Sets `clipped` when the budget
  /// shortened the delay. Exposed for tests of the budget.
  double capped_backoff_ms(int retry, double spent_ms, bool& clipped) const;
};

/// What to do with a slice that stays unreadable after the retry budget.
enum class DegradePolicy {
  FailFast,     ///< no retries; first error propagates
  Retry,        ///< retry with backoff; propagate after exhaustion
  SkipAndFill,  ///< retry, then substitute fill_value and record the slice
};

std::string_view degrade_policy_name(DegradePolicy p);
DegradePolicy degrade_policy_from_name(const std::string& name);

/// Full resilience configuration of one reader / pipeline run.
struct ResilienceConfig {
  DegradePolicy policy = DegradePolicy::FailFast;
  RetryPolicy retry;
  /// Verify per-slice CRC-32 on read when the index records one. Verified
  /// reads fetch whole slice files (the checksum unit).
  bool verify_checksums = true;
  /// Raw intensity substituted for irrecoverable slices under SkipAndFill.
  std::uint16_t fill_value = 0;
};

/// One slice given up on (SkipAndFill) — part of the damage inventory.
struct SkippedSlice {
  std::int64_t t = 0;
  std::int64_t z = 0;
  std::string reason;
};

/// Accounting of resilience behavior during a run. Plain data (copyable);
/// use FaultReportSink to aggregate across threads.
struct FaultReport {
  std::int64_t read_retries = 0;       ///< re-attempts after a failed read
  std::int64_t checksum_failures = 0;  ///< CRC mismatches observed
  std::int64_t slices_skipped = 0;     ///< slices degraded to fill_value
  std::int64_t slices_recovered = 0;   ///< slices that succeeded after >=1 retry
  std::int64_t replica_failovers = 0;  ///< reads rerouted to another replica
  std::int64_t nodes_evicted = 0;      ///< node health evictions triggered
  std::int64_t write_errors = 0;       ///< typed output-write failures observed
  /// Backoff delays clipped by RetryPolicy::total_backoff_cap_ms
  /// (bookkeeping, not a fault — excluded from clean()).
  std::int64_t backoffs_capped = 0;
  std::vector<SkippedSlice> skipped;   ///< exactly the irrecoverable slices

  void merge(const FaultReport& o);
  bool clean() const {
    return read_retries == 0 && checksum_failures == 0 && slices_skipped == 0 &&
           replica_failovers == 0 && nodes_evicted == 0 && write_errors == 0;
  }
  std::string summary() const;
};

/// Thread-safe aggregator shared by the filter copies of one pipeline run.
class FaultReportSink {
 public:
  void merge(const FaultReport& r) {
    std::lock_guard lk(mu_);
    agg_.merge(r);
  }
  FaultReport snapshot() const {
    std::lock_guard lk(mu_);
    return agg_;
  }

 private:
  mutable std::mutex mu_;
  FaultReport agg_;
};

/// Fault-tolerant view of one storage node. Not thread-safe (one per filter
/// copy, like StorageNodeReader); aggregate reports through the shared sink.
class ResilientReader {
 public:
  /// `injector`, `sink` and `replicas` are non-owning and may be nullptr.
  /// The local report is merged into `sink` on destruction. With `replicas`,
  /// reads that exhaust one replica fail over to the next node in the set's
  /// order; fallback readers are built lazily and are fault-injection-free
  /// (injected faults model the first-asked storage path).
  ResilientReader(StorageNodeReader reader, ResilienceConfig config,
                  FaultInjector* injector = nullptr, FaultReportSink* sink = nullptr,
                  ReplicaSet* replicas = nullptr);
  ~ResilientReader();

  ResilientReader(const ResilientReader&) = delete;
  ResilientReader& operator=(const ResilientReader&) = delete;

  const std::vector<SliceRef>& slices() const { return reader_.slices(); }
  const SliceRef* find_slice(std::int64_t t, std::int64_t z) const {
    return reader_.find_slice(t, z);
  }

  /// Read a 2D subregion of one local slice (same contract as
  /// StorageNodeReader::read_slice_region), applying the configured
  /// resilience. Returns true when real data was delivered, false when the
  /// slice was irrecoverable and `out` was filled with fill_value.
  bool read_slice_region(const SliceRef& slice, std::int64_t x0, std::int64_t y0,
                         std::int64_t w, std::int64_t h, std::uint16_t* out);

  /// Attach a shared tile cache (non-owning): cache-aside on the read path.
  /// Rectangles whose tiles are all resident are served without touching
  /// disk; whole-slice fills are inserted only after checksum verification
  /// succeeds (or when no fault injector is attached), so a corrupt slice
  /// is never cached and cached bytes are identical to a cache-off read.
  void attach_cache(TileCache* cache, std::uint64_t dataset_key, int tenant);

  /// Pull one whole slice into the attached cache ahead of demand. Never
  /// touches replica health, the fault report, or the skip list; errors are
  /// swallowed (the demand path will handle them with full resilience).
  /// Only active without a fault injector (deterministic fault drills must
  /// see the exact cache-off read schedule). Returns true when a disk read
  /// was issued and inserted.
  bool prefetch_slice(const SliceRef& slice);

  /// Attach the tail-tolerance layer (all non-owning; see io/tail.hpp):
  /// verified whole-slice reads go through `pool` with an adaptive per-read
  /// deadline and (when configured) a hedge to the next replica; completed
  /// attempt latencies feed `tracker`, and sustained breaches evict the
  /// slow node through the replica set with reason `slow`. Byte-identity is
  /// unaffected: the winner of a hedge is a CRC-verified whole slice, the
  /// same bytes any replica serves.
  void attach_tail(const TailConfig& config, LatencyTracker* tracker,
                   SliceFetchPool* pool);

  /// Resilience accounting local to this reader (monotonic; the RFR filter
  /// meters deltas between calls).
  const FaultReport& report() const { return report_; }

  /// I/O accounting. seeks_performed() sums the primary and every fallback
  /// reader; bytes_read() counts only bytes that reached the caller — a
  /// successful rectangle read counts its rectangle, a successful verified
  /// whole-slice fetch counts the slice once, and bytes moved by retried or
  /// failed-over attempts that ultimately failed count nothing (the raw
  /// attempt traffic is attempted_bytes_read()). Cache hits touch no disk
  /// and count nothing here (they land in cache_bytes_served()).
  std::int64_t seeks_performed() const;
  std::int64_t bytes_read() const { return delivered_bytes_; }
  std::int64_t attempted_bytes_read() const;

  /// Tile-cache accounting local to this reader (monotonic, tile-granular;
  /// metered as deltas like report()).
  std::int64_t cache_hits() const { return cache_hits_; }
  std::int64_t cache_misses() const { return cache_misses_; }
  std::int64_t cache_bytes_served() const { return cache_bytes_served_; }

  /// Tail-tolerance accounting local to this reader (monotonic; metered as
  /// deltas like report()). The shared LatencyTracker carries the exact
  /// run-global totals; these per-reader counts sum to the same values.
  std::int64_t tail_hedges_issued() const { return tail_hedges_issued_; }
  std::int64_t tail_hedges_won() const { return tail_hedges_won_; }
  std::int64_t tail_hedges_abandoned() const { return tail_hedges_abandoned_; }
  std::int64_t tail_reads_abandoned() const { return tail_reads_abandoned_; }
  std::int64_t tail_breaches() const { return tail_breaches_; }
  std::int64_t tail_slow_evictions() const { return tail_slow_evictions_; }

 private:
  /// One verified or plain read attempt through `reader`; throws on failure.
  /// `cost` is the refetch cost a cache insert records (Cost policy).
  void attempt_read(const StorageNodeReader& reader, const SliceRef& slice,
                    std::int64_t x0, std::int64_t y0, std::int64_t w, std::int64_t h,
                    std::uint16_t* out, double cost);
  void fill(std::int64_t w, std::int64_t h, std::uint16_t* out) const;
  /// Cache participation rule for one slice: whole-slice fills must be
  /// attempt-independent bytes, which holds when they are CRC-verified or
  /// when no fault injector can perturb them. (Injected corruption depends
  /// on the read length, so unverified injected reads bypass the cache.)
  bool cache_eligible(const SliceRef& slice) const {
    return cache_ != nullptr &&
           ((cfg_.verify_checksums && slice.has_crc) || injector_ == nullptr);
  }
  /// Refetch cost of a read served by `node` (Cost eviction policy input):
  /// failover and probation-probed replicas are more expensive to re-ask.
  double replica_cost(int node) const;
  void extract_rect(const std::uint8_t* slice_bytes, std::int64_t x0, std::int64_t y0,
                    std::int64_t w, std::int64_t h, std::uint16_t* out) const;
  /// Reader for one replica node (the wrapped one, or a lazily-built
  /// fallback). Returns nullptr when the fallback cannot be opened (missing
  /// directory or index), with the reason in `error`.
  const StorageNodeReader* reader_for(int node, std::string& error);

  /// Tail path applies to the whole-slice fetch unit only: verified slices
  /// always; unverified only when no injector can perturb the bytes (the
  /// same attempt-independence rule as cache_eligible).
  bool tail_eligible(const SliceRef& slice) const {
    return tail_pool_ != nullptr && tail_tracker_ != nullptr && tail_cfg_.enabled() &&
           ((cfg_.verify_checksums && slice.has_crc) || injector_ == nullptr);
  }
  /// Hedged / deadline-bounded whole-slice fetch through the helper pool.
  /// On success fills cached_bytes_/cached_slice_ (and the tile cache) and
  /// returns true; on failure or deadline exhaustion returns false and the
  /// caller falls back to the synchronous path. `last_error` carries the
  /// most recent failure reason.
  bool hedged_fetch(const SliceRef& slice, const std::vector<int>& order,
                    std::string& last_error);
  /// Latency/breach bookkeeping for a completed or breached primary read.
  void note_tail_breach(int node);

  StorageNodeReader reader_;
  ResilienceConfig cfg_;
  FaultInjector* injector_;
  FaultReportSink* sink_;
  ReplicaSet* replicas_;
  std::map<int, StorageNodeReader> fallbacks_;  ///< other replica nodes, lazy
  FaultReport report_;

  TileCache* cache_ = nullptr;  ///< shared tile cache (non-owning, optional)
  std::uint64_t cache_dataset_ = 0;
  int cache_tenant_ = 0;
  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  std::int64_t cache_bytes_served_ = 0;
  std::int64_t delivered_bytes_ = 0;  ///< bytes that reached the caller

  // Tail-tolerance layer (attach_tail; all non-owning, shared run-wide).
  TailConfig tail_cfg_;
  LatencyTracker* tail_tracker_ = nullptr;
  SliceFetchPool* tail_pool_ = nullptr;
  std::int64_t tail_hedges_issued_ = 0;
  std::int64_t tail_hedges_won_ = 0;
  std::int64_t tail_hedges_abandoned_ = 0;
  std::int64_t tail_reads_abandoned_ = 0;
  std::int64_t tail_breaches_ = 0;
  std::int64_t tail_slow_evictions_ = 0;
  std::int64_t pool_seeks_ = 0;           ///< seeks by observed pooled fetches
  std::int64_t pool_attempted_bytes_ = 0; ///< raw bytes observed pooled fetches moved

  // Whole-slice cache for the verified path (one slice: the RFR tile loop
  // visits tiles of a slice consecutively).
  std::vector<std::uint8_t> cached_bytes_;
  std::int64_t cached_slice_ = -1;
  std::vector<std::int64_t> failed_slices_;  ///< already given up on (dedup)
};

}  // namespace h4d::io
