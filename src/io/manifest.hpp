// Checkpoint manifest: crash-safe record of completed output chunks.
//
// The output filters append one line per texture chunk whose every feature
// sample has reached stable storage. The file is append-only and fsync'd per
// record, so after a crash it holds a prefix of the completed chunks (plus at
// most one torn line, which the loader skips). `--resume` replays the
// manifest and prunes those chunks from the planner's work list — the paper's
// out-of-core runs take hours, and losing a node at 95% should not mean
// recomputing the other 95%. Each line carries a CRC-32 tag like the slice
// index (DESIGN §9), so a corrupted manifest degrades to re-computing chunks,
// never to trusting damaged state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "nd/chunking.hpp"

namespace h4d::io {

/// Append-only manifest of completed chunk ids, one CRC-tagged line per
/// chunk: "<id> <crc32-hex>\n" with the checksum over the id's decimal text.
/// record() is thread-safe and durable (write + fsync) before it returns.
///
/// The first line may be a CRC-tagged ownership header
/// ("owner <token> <crc32-hex>\n") naming the job/configuration that wrote
/// the file. Concurrent jobs namespace their manifests by job id (src/svc),
/// and --resume refuses a manifest whose owner token names a different
/// job/configuration — progress recorded for one chunk grid must never prune
/// another job's work list. load() skips the header (and legacy manifests
/// have none), so old files stay readable.
class ChunkManifest {
 public:
  /// Opens (creating if needed) for append. With `fresh`, existing contents
  /// are discarded first — a non-resume run must not inherit stale progress.
  /// A non-empty `owner` token is written as the ownership header whenever
  /// the file starts out empty (fresh or first use).
  explicit ChunkManifest(std::filesystem::path path, bool fresh = false,
                         const std::string& owner = {});
  ~ChunkManifest();

  ChunkManifest(const ChunkManifest&) = delete;
  ChunkManifest& operator=(const ChunkManifest&) = delete;

  /// Durably append one completed chunk id.
  void record(std::int64_t chunk_id);

  const std::filesystem::path& path() const { return path_; }

  /// Chunk ids recorded in `path`, in file order. Lines that fail to parse
  /// or whose CRC tag mismatches (torn tail after a crash, bit rot) are
  /// skipped — a damaged record means the chunk is recomputed, nothing more.
  /// A missing file is an empty manifest.
  static std::vector<std::int64_t> load(const std::filesystem::path& path);

  /// Owner token recorded in `path`'s ownership header, or "" when the file
  /// is missing, legacy (no header), or the header's CRC tag mismatches (a
  /// damaged header degrades to "unowned" — the ids are then only trusted if
  /// the caller accepts legacy manifests).
  static std::string load_owner(const std::filesystem::path& path);

 private:
  std::filesystem::path path_;
  std::mutex mu_;
  int fd_ = -1;
};

/// Maps completed feature samples back to the texture chunks that own their
/// ROI origins, and reports a chunk to the manifest exactly once, when its
/// last sample has been noted.
///
/// FeatureValues buffers do not carry a chunk id (the emitters batch samples
/// across chunk boundaries per feature), so completion is derived from the
/// chunk grid: the chunk owning origin o has grid coordinate o / step per
/// dimension. Expected samples per chunk = owned_origins.volume() x the
/// number of features the run emits.
class ChunkCompletionTracker {
 public:
  /// `chunks` is the full overlapping partition (before any resume pruning);
  /// ids already in `completed` start out done and are not re-recorded.
  ChunkCompletionTracker(const std::vector<Chunk>& chunks, const Vec4& dims,
                         const Vec4& chunk_dims, const Vec4& roi_dims,
                         std::int64_t samples_per_origin,
                         std::shared_ptr<ChunkManifest> manifest,
                         const std::unordered_set<std::int64_t>& completed = {});

  /// Note one (origin, feature) sample. Thread-safe; idempotent past
  /// completion (a resumed run may replay samples already on disk).
  void note_origin(const Vec4& origin);

  std::int64_t chunks_completed() const;

 private:
  std::int64_t chunk_of(const Vec4& origin) const;

  Vec4 step_;
  Vec4 grid_;
  std::shared_ptr<ChunkManifest> manifest_;
  mutable std::mutex mu_;
  std::vector<std::int64_t> remaining_;  ///< samples until complete, per id
  std::int64_t completed_ = 0;
};

}  // namespace h4d::io
