#include "io/mhd.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace h4d::io {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool parse_bool(const std::string& v) {
  std::string lower = v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return lower == "true" || lower == "1";
}

}  // namespace

Volume4<std::uint16_t> read_mhd(const std::filesystem::path& header_path) {
  std::ifstream header(header_path);
  if (!header) throw std::runtime_error("read_mhd: cannot open " + header_path.string());

  std::map<std::string, std::string> keys;
  std::string line;
  while (std::getline(header, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    keys[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }

  const auto get = [&keys, &header_path](const std::string& key) -> const std::string& {
    const auto it = keys.find(key);
    if (it == keys.end()) {
      throw std::runtime_error("read_mhd: " + header_path.string() + " missing key " + key);
    }
    return it->second;
  };

  if (keys.count("ObjectType") && get("ObjectType") != "Image") {
    throw std::runtime_error("read_mhd: unsupported ObjectType " + get("ObjectType"));
  }
  const int ndims = std::stoi(get("NDims"));
  if (ndims < 2 || ndims > 4) {
    throw std::runtime_error("read_mhd: unsupported NDims " + std::to_string(ndims));
  }

  Vec4 dims{1, 1, 1, 1};
  {
    std::istringstream ds(get("DimSize"));
    for (int i = 0; i < ndims; ++i) {
      if (!(ds >> dims[i]) || dims[i] <= 0) {
        throw std::runtime_error("read_mhd: bad DimSize in " + header_path.string());
      }
    }
  }

  const std::string& etype = get("ElementType");
  std::size_t esize = 0;
  if (etype == "MET_UCHAR") {
    esize = 1;
  } else if (etype == "MET_USHORT") {
    esize = 2;
  } else {
    throw std::runtime_error("read_mhd: unsupported ElementType " + etype);
  }

  for (const char* key : {"BinaryDataByteOrderMSB", "ElementByteOrderMSB"}) {
    if (keys.count(key) && parse_bool(keys.at(key))) {
      throw std::runtime_error("read_mhd: big-endian data not supported");
    }
  }

  const std::string& data_file = get("ElementDataFile");
  if (data_file == "LOCAL") {
    throw std::runtime_error("read_mhd: ElementDataFile = LOCAL not supported");
  }
  const std::filesystem::path data_path = header_path.parent_path() / data_file;
  std::ifstream data(data_path, std::ios::binary);
  if (!data) throw std::runtime_error("read_mhd: cannot open data file " + data_path.string());

  Volume4<std::uint16_t> vol(dims);
  const std::size_t n = static_cast<std::size_t>(vol.size());
  if (esize == 2) {
    data.read(reinterpret_cast<char*>(vol.data()),
              static_cast<std::streamsize>(n * sizeof(std::uint16_t)));
  } else {
    std::vector<std::uint8_t> bytes(n);
    data.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(n));
    for (std::size_t i = 0; i < n; ++i) vol.data()[i] = bytes[i];
  }
  if (!data) {
    throw std::runtime_error("read_mhd: short read from " + data_path.string());
  }
  return vol;
}

void write_mhd(const std::filesystem::path& header_path, const Volume4<std::uint16_t>& vol) {
  std::filesystem::create_directories(header_path.parent_path().empty()
                                          ? std::filesystem::path(".")
                                          : header_path.parent_path());
  const std::filesystem::path raw_name = header_path.stem().string() + ".raw";
  const std::filesystem::path raw_path = header_path.parent_path() / raw_name;

  // Emit the smallest NDims covering non-unit extents (a single-timestep
  // volume round-trips as 3D).
  int ndims = 4;
  while (ndims > 2 && vol.dims()[ndims - 1] == 1) --ndims;

  std::ofstream header(header_path);
  if (!header) throw std::runtime_error("write_mhd: cannot open " + header_path.string());
  header << "ObjectType = Image\n"
         << "NDims = " << ndims << "\n"
         << "DimSize =";
  for (int i = 0; i < ndims; ++i) header << ' ' << vol.dims()[i];
  header << "\nElementType = MET_USHORT\n"
         << "BinaryDataByteOrderMSB = False\n"
         << "ElementDataFile = " << raw_name.string() << "\n";
  if (!header) throw std::runtime_error("write_mhd: short write to " + header_path.string());

  std::ofstream raw(raw_path, std::ios::binary);
  if (!raw) throw std::runtime_error("write_mhd: cannot open " + raw_path.string());
  raw.write(reinterpret_cast<const char*>(vol.data()),
            static_cast<std::streamsize>(static_cast<std::size_t>(vol.size()) *
                                         sizeof(std::uint16_t)));
  if (!raw) throw std::runtime_error("write_mhd: short write to " + raw_path.string());
}

DiskDataset import_mhd(const std::filesystem::path& header_path,
                       const std::filesystem::path& dataset_root, int storage_nodes,
                       int replicas) {
  return DiskDataset::create(dataset_root, read_mhd(header_path), storage_nodes, replicas);
}

}  // namespace h4d::io
