#include "io/scrub.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "io/dataset.hpp"
#include "io/durable_file.hpp"
#include "io/fault.hpp"

namespace h4d::io {

namespace {

using SliceKey = std::pair<std::int64_t, std::int64_t>;  // (t, z)

struct IndexEntry {
  std::string filename;
  std::uint32_t crc = 0;
  bool has_crc = false;
};

/// One node's on-disk state as found (not as it should be).
struct NodeState {
  bool dir_exists = false;
  bool index_exists = false;
  std::map<SliceKey, IndexEntry> entries;
};

std::string crc_hex(std::uint32_t crc) {
  std::ostringstream os;
  os << std::hex << crc;
  return os.str();
}

std::vector<NodeState> load_nodes(const std::filesystem::path& root,
                                  const DatasetMeta& meta) {
  std::vector<NodeState> nodes(static_cast<std::size_t>(meta.storage_nodes));
  for (int n = 0; n < meta.storage_nodes; ++n) {
    NodeState& state = nodes[static_cast<std::size_t>(n)];
    const std::filesystem::path dir = root / node_dir_name(n);
    std::error_code ec;
    state.dir_exists = std::filesystem::is_directory(dir, ec);
    if (!state.dir_exists) continue;
    std::ifstream idx(dir / kIndexFileName);
    state.index_exists = static_cast<bool>(idx);
    std::string line;
    while (std::getline(idx, line)) {
      if (line.empty()) continue;
      std::istringstream is(line);
      std::int64_t t = 0, z = 0;
      IndexEntry e;
      if (!(is >> t >> z >> e.filename)) continue;  // malformed line: a finding later
      std::string hex;
      if (is >> hex) {
        try {
          e.crc = static_cast<std::uint32_t>(std::stoul(hex, nullptr, 16));
          e.has_crc = true;
        } catch (const std::exception&) {
          // unreadable checksum column: treat as absent
        }
      }
      state.entries[{t, z}] = std::move(e);
    }
  }
  return nodes;
}

/// Read one copy whole. `size` receives the on-disk byte count (-1 when the
/// file is missing); bytes are returned only when the size is exactly right.
std::optional<std::vector<std::uint8_t>> read_copy(const std::filesystem::path& path,
                                                   std::int64_t expected,
                                                   std::int64_t& size) {
  std::error_code ec;
  const auto on_disk = std::filesystem::file_size(path, ec);
  if (ec) {
    size = -1;
    return std::nullopt;
  }
  size = static_cast<std::int64_t>(on_disk);
  if (size != expected) return std::nullopt;
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    size = -1;
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(expected));
  f.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(expected));
  if (f.gcount() != expected) {
    size = f.gcount();
    return std::nullopt;
  }
  return bytes;
}

/// Canonical index content for `node`: every slice it holds a replica of, in
/// the t-major order DiskDataset::create uses. Slices absent from `entries`
/// (unrepairable) are omitted.
std::string render_index(const DatasetMeta& meta, int node,
                         const std::map<SliceKey, IndexEntry>& entries) {
  std::ostringstream os;
  for (std::int64_t t = 0; t < meta.dims[3]; ++t) {
    for (std::int64_t z = 0; z < meta.dims[2]; ++z) {
      if (meta.replica_rank(z, t, node) < 0) continue;
      const auto it = entries.find({t, z});
      if (it == entries.end()) continue;
      os << t << ' ' << z << ' ' << it->second.filename;
      if (it->second.has_crc) os << ' ' << crc_hex(it->second.crc);
      os << '\n';
    }
  }
  return os.str();
}

void write_index(const std::filesystem::path& root, int node, const std::string& content) {
  const std::filesystem::path dir = root / node_dir_name(node);
  std::filesystem::create_directories(dir);
  atomic_write_file(dir / kIndexFileName, content.data(), content.size());
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

}  // namespace

std::string_view scrub_defect_name(ScrubDefect d) {
  switch (d) {
    case ScrubDefect::MissingNodeDir: return "missing_node_dir";
    case ScrubDefect::MissingIndex: return "missing_index";
    case ScrubDefect::IndexEntryMissing: return "index_entry_missing";
    case ScrubDefect::MissingCopy: return "missing_copy";
    case ScrubDefect::SizeMismatch: return "size_mismatch";
    case ScrubDefect::ChecksumMismatch: return "checksum_mismatch";
    case ScrubDefect::DivergentCopies: return "divergent_copies";
  }
  return "?";
}

std::string ScrubReport::summary() const {
  std::ostringstream os;
  os << slices_checked << " slices checked, " << copies_verified << '/' << copies_expected
     << " copies verified";
  if (copies_unverified > 0) os << ", " << copies_unverified << " without checksum";
  os << ", " << findings.size() << (findings.size() == 1 ? " defect" : " defects");
  for (const ScrubFinding& f : findings) {
    os << "\n  " << scrub_defect_name(f.kind);
    if (f.t >= 0) os << " slice (t=" << f.t << ", z=" << f.z << ")";
    if (f.node >= 0) os << " node " << f.node;
    if (f.rank >= 0) os << " rank " << f.rank;
    if (!f.detail.empty()) os << ": " << f.detail;
  }
  return os.str();
}

void ScrubReport::write_json(std::ostream& os) const {
  os << "{\n"
     << "  \"schema\": \"h4d-scrub-v1\",\n"
     << "  \"slices_checked\": " << slices_checked << ",\n"
     << "  \"copies_expected\": " << copies_expected << ",\n"
     << "  \"copies_verified\": " << copies_verified << ",\n"
     << "  \"copies_unverified\": " << copies_unverified << ",\n"
     << "  \"clean\": " << (clean() ? "true" : "false") << ",\n"
     << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const ScrubFinding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"kind\": \"" << scrub_defect_name(f.kind)
       << "\", \"t\": " << f.t << ", \"z\": " << f.z << ", \"node\": " << f.node
       << ", \"rank\": " << f.rank << ", \"detail\": \"" << json_escape(f.detail)
       << "\"}";
  }
  os << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

ScrubReport scrub_dataset(const std::filesystem::path& root) {
  const DatasetMeta meta = DatasetMeta::load(root);
  const std::vector<NodeState> nodes = load_nodes(root, meta);
  const std::int64_t slice_bytes = meta.slice_bytes();

  ScrubReport report;
  for (int n = 0; n < meta.storage_nodes; ++n) {
    const NodeState& state = nodes[static_cast<std::size_t>(n)];
    if (!state.dir_exists) {
      report.findings.push_back({-1, -1, n, -1, ScrubDefect::MissingNodeDir,
                                 (root / node_dir_name(n)).string()});
    } else if (!state.index_exists) {
      report.findings.push_back({-1, -1, n, -1, ScrubDefect::MissingIndex,
                                 (root / node_dir_name(n) / kIndexFileName).string()});
    }
  }

  for (std::int64_t t = 0; t < meta.dims[3]; ++t) {
    for (std::int64_t z = 0; z < meta.dims[2]; ++z) {
      ++report.slices_checked;
      // A CRC recorded by any replica's index arbitrates for all copies.
      std::optional<std::uint32_t> indexed_crc;
      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        const NodeState& state =
            nodes[static_cast<std::size_t>(meta.replica_node(z, t, rank))];
        const auto it = state.entries.find({t, z});
        if (it != state.entries.end() && it->second.has_crc) {
          indexed_crc = it->second.crc;
          break;
        }
      }

      std::vector<std::uint32_t> unarbitrated_crcs;
      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        const int node = meta.replica_node(z, t, rank);
        const NodeState& state = nodes[static_cast<std::size_t>(node)];
        ++report.copies_expected;
        if (!state.dir_exists) continue;  // covered by the node-level finding
        const auto it = state.entries.find({t, z});
        if (state.index_exists && it == state.entries.end()) {
          report.findings.push_back(
              {t, z, node, rank, ScrubDefect::IndexEntryMissing, ""});
        }
        const std::string filename =
            it != state.entries.end() ? it->second.filename : slice_filename(t, z);
        const std::filesystem::path path = root / node_dir_name(node) / filename;
        std::int64_t size = -1;
        const auto bytes = read_copy(path, slice_bytes, size);
        if (!bytes) {
          if (size < 0) {
            report.findings.push_back(
                {t, z, node, rank, ScrubDefect::MissingCopy, path.string()});
          } else {
            report.findings.push_back({t, z, node, rank, ScrubDefect::SizeMismatch,
                                       path.string() + ": " + std::to_string(size) +
                                           " bytes, expected " +
                                           std::to_string(slice_bytes)});
          }
          continue;
        }
        const std::uint32_t actual = crc32(bytes->data(), bytes->size());
        const std::optional<std::uint32_t> expected =
            it != state.entries.end() && it->second.has_crc
                ? std::optional<std::uint32_t>(it->second.crc)
                : indexed_crc;
        if (expected) {
          if (actual == *expected) {
            ++report.copies_verified;
          } else {
            report.findings.push_back({t, z, node, rank, ScrubDefect::ChecksumMismatch,
                                       path.string() + ": crc32 " + crc_hex(actual) +
                                           ", index records " + crc_hex(*expected)});
          }
        } else {
          ++report.copies_unverified;
          unarbitrated_crcs.push_back(actual);
        }
      }
      // No index CRC anywhere: the copies can still convict each other.
      if (!indexed_crc && !unarbitrated_crcs.empty() &&
          !std::all_of(unarbitrated_crcs.begin(), unarbitrated_crcs.end(),
                       [&](std::uint32_t c) { return c == unarbitrated_crcs.front(); })) {
        report.findings.push_back({t, z, -1, -1, ScrubDefect::DivergentCopies,
                                   "replica copies disagree and no index checksum "
                                   "arbitrates"});
      }
    }
  }
  return report;
}

std::string RepairReport::summary() const {
  std::ostringstream os;
  os << copies_recloned << " copies re-cloned, " << indexes_rebuilt
     << " indexes rebuilt, " << unrepairable.size() << " unrepairable";
  for (const ScrubFinding& f : unrepairable) {
    os << "\n  unrepairable slice (t=" << f.t << ", z=" << f.z << "): " << f.detail;
  }
  return os.str();
}

RepairReport repair_dataset(const std::filesystem::path& root) {
  const DatasetMeta meta = DatasetMeta::load(root);
  const std::vector<NodeState> nodes = load_nodes(root, meta);
  const std::int64_t slice_bytes = meta.slice_bytes();

  RepairReport report;
  std::vector<std::map<SliceKey, IndexEntry>> final_entries(
      static_cast<std::size_t>(meta.storage_nodes));
  std::vector<bool> dirty(static_cast<std::size_t>(meta.storage_nodes), false);
  for (int n = 0; n < meta.storage_nodes; ++n) {
    final_entries[static_cast<std::size_t>(n)] = nodes[static_cast<std::size_t>(n)].entries;
    // A lost directory or index is rewritten even if no entry changes below.
    if (!nodes[static_cast<std::size_t>(n)].dir_exists ||
        !nodes[static_cast<std::size_t>(n)].index_exists) {
      dirty[static_cast<std::size_t>(n)] = true;
    }
  }

  for (std::int64_t t = 0; t < meta.dims[3]; ++t) {
    for (std::int64_t z = 0; z < meta.dims[2]; ++z) {
      struct Copy {
        int node = -1;
        const IndexEntry* entry = nullptr;
        std::optional<std::vector<std::uint8_t>> bytes;
        std::uint32_t crc = 0;
      };
      std::vector<Copy> copies(static_cast<std::size_t>(meta.replica_count()));
      std::optional<std::uint32_t> indexed_crc;
      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        Copy& c = copies[static_cast<std::size_t>(rank)];
        c.node = meta.replica_node(z, t, rank);
        const NodeState& state = nodes[static_cast<std::size_t>(c.node)];
        const auto it = state.entries.find({t, z});
        if (it != state.entries.end()) {
          c.entry = &it->second;
          if (c.entry->has_crc && !indexed_crc) indexed_crc = c.entry->crc;
        }
        const std::string filename = c.entry ? c.entry->filename : slice_filename(t, z);
        std::int64_t size = -1;
        c.bytes = read_copy(root / node_dir_name(c.node) / filename, slice_bytes, size);
        if (c.bytes) c.crc = crc32(c.bytes->data(), c.bytes->size());
      }

      // Pick the authoritative copy: the one matching an index CRC when any
      // index records one (a non-matching set means the data is gone — never
      // launder a corrupt copy by rewriting the index around it); otherwise
      // the majority of the surviving full-size copies, lowest rank on ties.
      const Copy* good = nullptr;
      if (indexed_crc) {
        for (const Copy& c : copies) {
          if (c.bytes && c.crc == *indexed_crc) {
            good = &c;
            break;
          }
        }
      } else {
        std::map<std::uint32_t, int> votes;
        for (const Copy& c : copies) {
          if (c.bytes) ++votes[c.crc];
        }
        int best = 0;
        for (const auto& [crc, n] : votes) best = std::max(best, n);
        for (const Copy& c : copies) {
          if (c.bytes && votes[c.crc] == best) {
            good = &c;
            break;
          }
        }
      }
      if (!good) {
        report.unrepairable.push_back(
            {t, z, -1, -1, ScrubDefect::MissingCopy,
             indexed_crc ? "no surviving copy matches the indexed crc32 " +
                               crc_hex(*indexed_crc)
                         : "no surviving full-size copy on any replica node"});
        continue;
      }

      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        Copy& c = copies[static_cast<std::size_t>(rank)];
        bool recloned = false;
        if (!c.bytes || c.crc != good->crc) {
          const std::filesystem::path dir = root / node_dir_name(c.node);
          std::filesystem::create_directories(dir);
          atomic_write_file(dir / slice_filename(t, z), good->bytes->data(),
                            good->bytes->size());
          ++report.copies_recloned;
          recloned = true;
        }
        // The entry stays untouched when it already describes the good copy
        // (including pre-checksum entries — backfilling is add_checksums'
        // job); anything re-cloned or misdescribed gets a fresh CRC'd entry.
        const bool entry_ok = c.entry && !recloned &&
                              (!c.entry->has_crc || c.entry->crc == good->crc);
        if (!entry_ok) {
          final_entries[static_cast<std::size_t>(c.node)][{t, z}] =
              IndexEntry{slice_filename(t, z), good->crc, true};
          dirty[static_cast<std::size_t>(c.node)] = true;
        }
      }
    }
  }

  for (int n = 0; n < meta.storage_nodes; ++n) {
    if (!dirty[static_cast<std::size_t>(n)]) continue;
    write_index(root, n, render_index(meta, n, final_entries[static_cast<std::size_t>(n)]));
    ++report.indexes_rebuilt;
  }
  return report;
}

std::string ChecksumMigrationReport::summary() const {
  std::ostringstream os;
  os << entries_backfilled << " index entries backfilled, " << slices_divergent
     << " divergent slices skipped";
  return os.str();
}

ChecksumMigrationReport add_checksums(const std::filesystem::path& root) {
  const DatasetMeta meta = DatasetMeta::load(root);
  const std::vector<NodeState> nodes = load_nodes(root, meta);
  const std::int64_t slice_bytes = meta.slice_bytes();

  ChecksumMigrationReport report;
  std::vector<std::map<SliceKey, IndexEntry>> final_entries(
      static_cast<std::size_t>(meta.storage_nodes));
  std::vector<bool> dirty(static_cast<std::size_t>(meta.storage_nodes), false);
  for (int n = 0; n < meta.storage_nodes; ++n) {
    final_entries[static_cast<std::size_t>(n)] = nodes[static_cast<std::size_t>(n)].entries;
  }

  for (std::int64_t t = 0; t < meta.dims[3]; ++t) {
    for (std::int64_t z = 0; z < meta.dims[2]; ++z) {
      bool any_missing_crc = false;
      std::optional<std::uint32_t> indexed_crc;
      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        const NodeState& state =
            nodes[static_cast<std::size_t>(meta.replica_node(z, t, rank))];
        const auto it = state.entries.find({t, z});
        if (it == state.entries.end()) continue;
        if (it->second.has_crc) {
          if (!indexed_crc) indexed_crc = it->second.crc;
        } else {
          any_missing_crc = true;
        }
      }
      if (!any_missing_crc) continue;

      // Only backfill a CRC every surviving copy vouches for: all replica
      // copies must be whole and agree (and match any already-indexed CRC) —
      // a damaged copy cannot launder its own bytes into the index.
      std::optional<std::uint32_t> agreed;
      bool divergent = false;
      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        const int node = meta.replica_node(z, t, rank);
        const NodeState& state = nodes[static_cast<std::size_t>(node)];
        const auto it = state.entries.find({t, z});
        const std::string filename =
            it != state.entries.end() ? it->second.filename : slice_filename(t, z);
        std::int64_t size = -1;
        const auto bytes =
            read_copy(root / node_dir_name(node) / filename, slice_bytes, size);
        if (!bytes) {
          divergent = true;  // missing/truncated copy: repair first
          break;
        }
        const std::uint32_t crc = crc32(bytes->data(), bytes->size());
        if (!agreed) {
          agreed = crc;
        } else if (*agreed != crc) {
          divergent = true;
          break;
        }
      }
      if (divergent || !agreed || (indexed_crc && *indexed_crc != *agreed)) {
        ++report.slices_divergent;
        continue;
      }

      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        const int node = meta.replica_node(z, t, rank);
        const NodeState& state = nodes[static_cast<std::size_t>(node)];
        const auto it = state.entries.find({t, z});
        if (it == state.entries.end() || it->second.has_crc) continue;
        IndexEntry e = it->second;
        e.crc = *agreed;
        e.has_crc = true;
        final_entries[static_cast<std::size_t>(node)][{t, z}] = std::move(e);
        dirty[static_cast<std::size_t>(node)] = true;
        ++report.entries_backfilled;
      }
    }
  }

  for (int n = 0; n < meta.storage_nodes; ++n) {
    if (!dirty[static_cast<std::size_t>(n)]) continue;
    write_index(root, n, render_index(meta, n, final_entries[static_cast<std::size_t>(n)]));
  }
  return report;
}

}  // namespace h4d::io
