// Durable file writes and typed storage-write errors.
//
// Output that feeds --resume (USO sample streams, JIW image slices, repaired
// replica copies, rebuilt index files) must never be observable half-written:
// a crash between "bytes issued" and "bytes durable" would leave a torn file
// that a later resume or scrub trusts. Two primitives cover the repo's write
// shapes:
//
//   * atomic_write_file: write <path>.tmp, fsync, rename over <path>, fsync
//     the directory — a reader sees the old file or the new file, never a
//     prefix (the manifest's torn-tail healing for whole files).
//   * append_durable: O_APPEND write + fsync — for per-record streams where
//     rename-per-record is not meaningful (USO sample files).
//
// Both map ENOSPC / quota / short-write conditions to WriteError, a typed,
// actionable error carrying the path, the byte count that did not fit and
// the errno — callers (FaultReport) count these instead of losing them in a
// generic runtime_error string.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace h4d::io {

/// A storage-layer write failure: which file, how many bytes were being
/// written, and the errno behind it. disk_full() distinguishes the
/// free-up-space-and-retry case (ENOSPC/EDQUOT) from real I/O errors.
class WriteError : public std::runtime_error {
 public:
  WriteError(std::filesystem::path path, std::int64_t bytes_attempted, int errno_value,
             const std::string& op);

  const std::filesystem::path& path() const { return path_; }
  std::int64_t bytes_attempted() const { return bytes_attempted_; }
  int errno_value() const { return errno_; }
  /// The device backing `path` is out of space (or quota).
  bool disk_full() const;

 private:
  std::filesystem::path path_;
  std::int64_t bytes_attempted_ = 0;
  int errno_ = 0;
};

/// Atomically replace `path` with `n` bytes: <path>.tmp + fsync + rename +
/// directory fsync. Throws WriteError on any storage failure; the .tmp file
/// is removed on error.
void atomic_write_file(const std::filesystem::path& path, const void* data, std::size_t n);

/// Append `n` bytes to `path` (created 0644 if needed) and fsync before
/// returning. Throws WriteError on open/write/fsync failure.
void append_durable(const std::filesystem::path& path, const void* data, std::size_t n);

/// fsync a directory so a rename inside it is durable. Best-effort on
/// filesystems that reject directory fsync; real failures throw WriteError.
void fsync_directory(const std::filesystem::path& dir);

}  // namespace h4d::io
