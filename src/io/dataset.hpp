// Disk-resident 4D dataset layout (paper Sec. 4.2).
//
// A 4D image dataset is a series of 3D volumes over time; each 3D volume is a
// stack of 2D slices. On disk every 2D slice is one raw file. Slices are
// distributed round-robin across storage nodes (directories node_0, node_1,
// ...), and each node holds an index file associating every local image file
// with its (t, z) tuple. A dataset.meta file at the root records dimensions,
// element type and global intensity range (so distributed readers agree on
// requantization).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "nd/region.hpp"
#include "nd/volume4.hpp"

namespace h4d::io {

/// Intensity element type of the stored dataset.
enum class Dtype { U8, U16 };

std::size_t dtype_size(Dtype d);
std::string dtype_name(Dtype d);
Dtype dtype_from_name(const std::string& name);

/// Dataset-level metadata persisted in <root>/dataset.meta.
struct DatasetMeta {
  Vec4 dims;  ///< (x, y, z, t) extents
  Dtype dtype = Dtype::U16;
  double value_min = 0.0;  ///< global intensity range, for requantization
  double value_max = 0.0;
  int storage_nodes = 1;

  std::int64_t num_slices() const { return dims[2] * dims[3]; }
  std::int64_t slice_bytes() const {
    return dims[0] * dims[1] * static_cast<std::int64_t>(dtype_size(dtype));
  }
  /// Global slice number of slice z at timestep t (round-robin key).
  std::int64_t slice_number(std::int64_t z, std::int64_t t) const { return t * dims[2] + z; }
  /// Storage node a slice is assigned to.
  int node_of_slice(std::int64_t z, std::int64_t t) const {
    return static_cast<int>(slice_number(z, t) % storage_nodes);
  }

  void save(const std::filesystem::path& root) const;
  static DatasetMeta load(const std::filesystem::path& root);
};

/// One slice owned by a storage node (an entry of the node's index file).
struct SliceRef {
  std::int64_t t = 0;
  std::int64_t z = 0;
  std::string filename;  ///< relative to the node directory
};

/// Read-side view of a single storage node: exactly what one RAWFileReader
/// filter may touch. Local slices only.
class StorageNodeReader {
 public:
  StorageNodeReader(std::filesystem::path node_dir, DatasetMeta meta, int node_id);

  int node_id() const { return node_id_; }
  const std::vector<SliceRef>& slices() const { return slices_; }

  /// Read a 2D subregion [x0, x0+w) x [y0, y0+h) of one local slice into
  /// `out` (row-major, w*h elements). The slice must belong to this node.
  void read_slice_region(const SliceRef& slice, std::int64_t x0, std::int64_t y0,
                         std::int64_t w, std::int64_t h, std::uint16_t* out) const;

  /// Number of fseek-equivalent operations performed so far (cost model).
  std::int64_t seeks_performed() const { return seeks_; }
  std::int64_t bytes_read() const { return bytes_read_; }

 private:
  std::filesystem::path dir_;
  DatasetMeta meta_;
  int node_id_;
  std::vector<SliceRef> slices_;
  mutable std::int64_t seeks_ = 0;
  mutable std::int64_t bytes_read_ = 0;
};

/// A complete disk-resident dataset.
class DiskDataset {
 public:
  /// Distribute `vol` across `num_nodes` storage node directories under
  /// `root` (created if needed), with index and meta files.
  static DiskDataset create(const std::filesystem::path& root, const Volume4<std::uint16_t>& vol,
                            int num_nodes);

  /// Open an existing dataset.
  static DiskDataset open(const std::filesystem::path& root);

  const std::filesystem::path& root() const { return root_; }
  const DatasetMeta& meta() const { return meta_; }
  int num_nodes() const { return meta_.storage_nodes; }
  std::filesystem::path node_dir(int node) const;

  /// Per-node reader (the RFR filter's view of the world).
  StorageNodeReader node_reader(int node) const;

  /// Gather the whole volume back into memory (tests / small datasets).
  Volume4<std::uint16_t> read_all() const;

  /// Gather an arbitrary 4D subregion, touching only the nodes that own the
  /// slices it crosses.
  Volume4<std::uint16_t> read_region(const Region4& region) const;

 private:
  DiskDataset(std::filesystem::path root, DatasetMeta meta)
      : root_(std::move(root)), meta_(meta) {}

  std::filesystem::path root_;
  DatasetMeta meta_;
};

}  // namespace h4d::io
