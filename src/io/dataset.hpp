// Disk-resident 4D dataset layout (paper Sec. 4.2).
//
// A 4D image dataset is a series of 3D volumes over time; each 3D volume is a
// stack of 2D slices. On disk every 2D slice is one raw file. Slices are
// distributed round-robin across storage nodes (directories node_0, node_1,
// ...), and each node holds an index file associating every local image file
// with its (t, z) tuple. A dataset.meta file at the root records dimensions,
// element type and global intensity range (so distributed readers agree on
// requantization).
//
// With a replication factor r > 1 every slice is stored on r distinct nodes
// (rotated round-robin: replica k of slice s lives on node (s + k) % N), each
// of which lists the copy in its own index. Readers prefer the rank-0
// (primary) copy and fail over along the rank order when a node is dead or a
// copy is damaged (io/replica_set.hpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "nd/region.hpp"
#include "nd/volume4.hpp"

namespace h4d::io {

class FaultInjector;    // io/fault.hpp
struct ResilienceConfig;  // io/resilient_reader.hpp
struct FaultReport;
class FaultReportSink;

/// Intensity element type of the stored dataset.
enum class Dtype { U8, U16 };

std::size_t dtype_size(Dtype d);
std::string dtype_name(Dtype d);
Dtype dtype_from_name(const std::string& name);

/// Dataset-level metadata persisted in <root>/dataset.meta.
///
/// Format versioning: v1 files (no `version` key) predate replication and
/// load with replicas == 1; v2 adds the `version` and `replicas` keys.
/// Loaders reject versions newer than kMetaVersion instead of silently
/// misreading a future layout.
struct DatasetMeta {
  static constexpr int kMetaVersion = 2;

  Vec4 dims;  ///< (x, y, z, t) extents
  Dtype dtype = Dtype::U16;
  double value_min = 0.0;  ///< global intensity range, for requantization
  double value_max = 0.0;
  int storage_nodes = 1;
  /// Copies of every slice, each on a distinct node (clamped to
  /// storage_nodes). 1 = the original unreplicated layout.
  int replicas = 1;

  std::int64_t num_slices() const { return dims[2] * dims[3]; }
  std::int64_t slice_bytes() const {
    return dims[0] * dims[1] * static_cast<std::int64_t>(dtype_size(dtype));
  }
  /// Global slice number of slice z at timestep t (round-robin key).
  std::int64_t slice_number(std::int64_t z, std::int64_t t) const { return t * dims[2] + z; }
  /// Effective replication factor (r cannot exceed the node count).
  int replica_count() const { return std::min(replicas, storage_nodes); }
  /// Storage node holding replica `rank` of a slice: rotated round-robin, so
  /// ranks 0..r-1 land on r distinct nodes with balanced per-node counts.
  int replica_node(std::int64_t z, std::int64_t t, int rank) const {
    return static_cast<int>((slice_number(z, t) + rank) % storage_nodes);
  }
  /// Rank of `node` among a slice's replicas, or -1 when it holds no copy.
  int replica_rank(std::int64_t z, std::int64_t t, int node) const {
    const int rank = static_cast<int>(
        (node - slice_number(z, t) % storage_nodes + storage_nodes) % storage_nodes);
    return rank < replica_count() ? rank : -1;
  }
  /// Storage node a slice's primary (rank-0) copy is assigned to.
  int node_of_slice(std::int64_t z, std::int64_t t) const {
    return replica_node(z, t, 0);
  }

  void save(const std::filesystem::path& root) const;
  static DatasetMeta load(const std::filesystem::path& root);
};

/// Conventional file name of a slice inside its node directory.
std::string slice_filename(std::int64_t t, std::int64_t z);

/// Conventional directory name of a storage node under the dataset root.
std::string node_dir_name(int node);

/// Name of the per-node index file.
inline constexpr const char* kIndexFileName = "index.txt";

/// One slice owned by a storage node (an entry of the node's index file).
struct SliceRef {
  std::int64_t t = 0;
  std::int64_t z = 0;
  std::string filename;  ///< relative to the node directory
  /// CRC-32 of the slice file's raw bytes, recorded at create time. Index
  /// files written before the checksum column lack it (has_crc == false);
  /// such slices are readable but cannot be verified.
  std::uint32_t crc = 0;
  bool has_crc = false;
};

/// A slice read that delivered the wrong number of bytes (truncated file,
/// I/O error mid-read, or an injected fault). Carries the slice coordinates
/// and the expected vs. actual byte counts for diagnosis.
class SliceReadError : public std::runtime_error {
 public:
  SliceReadError(const std::string& file, std::int64_t t, std::int64_t z,
                 std::int64_t expected_bytes, std::int64_t actual_bytes,
                 const std::string& what_kind);

  std::int64_t t = 0;
  std::int64_t z = 0;
  std::int64_t expected_bytes = 0;
  std::int64_t actual_bytes = 0;
};

/// Read-side view of a single storage node: exactly what one RAWFileReader
/// filter may touch. Local slices only.
class StorageNodeReader {
 public:
  StorageNodeReader(std::filesystem::path node_dir, DatasetMeta meta, int node_id);

  int node_id() const { return node_id_; }
  const std::filesystem::path& node_dir() const { return dir_; }
  const DatasetMeta& meta() const { return meta_; }
  const std::vector<SliceRef>& slices() const { return slices_; }

  /// Locate a local slice's index entry (nullptr when the node's index does
  /// not list it).
  const SliceRef* find_slice(std::int64_t t, std::int64_t z) const;

  /// Read a 2D subregion [x0, x0+w) x [y0, y0+h) of one local slice into
  /// `out` (row-major, w*h elements). The slice must belong to this node.
  void read_slice_region(const SliceRef& slice, std::int64_t x0, std::int64_t y0,
                         std::int64_t w, std::int64_t h, std::uint16_t* out) const;

  /// Read the whole slice file's raw bytes (meta.slice_bytes() of them) into
  /// `out` — the unit checksum verification operates on.
  void read_slice_bytes(const SliceRef& slice, std::uint8_t* out) const;

  /// Attach a deterministic fault source (non-owning; may be nullptr). Every
  /// subsequent read consults it: injected open failures and short reads
  /// throw SliceReadError, injected corruption flips delivered bytes, stalls
  /// delay. Used by ResilientReader; plain readers stay fault-free.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Number of fseek-equivalent operations performed so far (cost model).
  std::int64_t seeks_performed() const { return seeks_; }
  std::int64_t bytes_read() const { return bytes_read_; }

 private:
  std::filesystem::path dir_;
  DatasetMeta meta_;
  int node_id_;
  std::vector<SliceRef> slices_;
  FaultInjector* injector_ = nullptr;
  mutable std::int64_t seeks_ = 0;
  mutable std::int64_t bytes_read_ = 0;
};

/// A complete disk-resident dataset.
class DiskDataset {
 public:
  /// Distribute `vol` across `num_nodes` storage node directories under
  /// `root` (created if needed), with index and meta files. With
  /// `replicas` > 1 every slice is written to min(replicas, num_nodes)
  /// distinct nodes (rotated round-robin), each listing it in its index.
  static DiskDataset create(const std::filesystem::path& root, const Volume4<std::uint16_t>& vol,
                            int num_nodes, int replicas = 1);

  /// Open an existing dataset.
  static DiskDataset open(const std::filesystem::path& root);

  const std::filesystem::path& root() const { return root_; }
  const DatasetMeta& meta() const { return meta_; }
  int num_nodes() const { return meta_.storage_nodes; }
  std::filesystem::path node_dir(int node) const;

  /// Per-node reader (the RFR filter's view of the world).
  StorageNodeReader node_reader(int node) const;

  /// Gather the whole volume back into memory (tests / small datasets).
  Volume4<std::uint16_t> read_all() const;

  /// Gather an arbitrary 4D subregion, touching only the nodes that own the
  /// slices it crosses. Per-slice checksums (when present in the index) are
  /// verified; a mismatch throws ChecksumError (fail-fast).
  Volume4<std::uint16_t> read_region(const Region4& region) const;

  /// Resilient variant: retries, checksum verification and graceful
  /// degradation follow `resilience`. `injector` (optional) injects
  /// deterministic faults; `report` (optional) receives the run's fault
  /// accounting.
  Volume4<std::uint16_t> read_region(const Region4& region,
                                     const ResilienceConfig& resilience,
                                     FaultInjector* injector = nullptr,
                                     FaultReport* report = nullptr) const;

 private:
  DiskDataset(std::filesystem::path root, DatasetMeta meta)
      : root_(std::move(root)), meta_(meta) {}

  std::filesystem::path root_;
  DatasetMeta meta_;
};

}  // namespace h4d::io
