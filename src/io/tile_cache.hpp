// Process-wide out-of-core tile cache shared across readers and jobs.
//
// The chunk planner (paper Eqs. 1-2) deliberately overlaps chunks by the
// ghost margin, and the multi-tenant service layer multiplies that cost:
// every job re-reads the same slices from disk. The TileCache sits between
// ResilientReader / RawFileReader and the raw slice files and keeps
// fixed-shape tiles of recently read slices in a memory-budgeted store, so
// a re-analysis workload (same volume, shifted ROI) and concurrent jobs
// over one dataset pay disk I/O once.
//
//   * Tiles are x/y sub-rectangles of one slice (z and t extents are 1 — a
//     tile never spans slices, matching the on-disk slice-per-file layout),
//     keyed by (dataset key, t, z, tile grid coordinates). Entries hold the
//     slice's *raw* dtype bytes; rectangles are widened to uint16 on serve,
//     exactly like the disk path, so served bytes are bit-identical to a
//     fresh read.
//   * The fill unit is a whole verified slice: one disk read inserts all of
//     the slice's tiles. That matches the CRC-32 checksum unit, so the
//     cache-aside fill can verify before insert and a corrupt slice is
//     never cached (see ResilientReader::attempt_read).
//   * Lookups are sharded-lock: a tile's shard is a hash of its key, each
//     shard holds budget/shards bytes, so concurrent filter copies and
//     concurrent svc::JobManager jobs share one cache without serializing
//     and the global budget is never exceeded.
//   * Eviction is pluggable per config: LRU (default), clock (second
//     chance), or a cost-aware policy that weighs what a re-fetch would
//     cost — tiles whose surviving replica is remote or probation-probed
//     are refetch-expensive and are evicted last.
//   * Per-tenant accounting: hits/misses/served/resident bytes are tracked
//     per interned tenant id for the service layer's budget reports.
//
// Byte-identity contract: the cache only ever stores whole-slice fills that
// either passed CRC-32 verification or were read with no fault injector
// attached, so a served tile is always the same bytes a cache-off read
// would have delivered. See docs/CACHE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "io/dataset.hpp"

namespace h4d::io {

/// Eviction policy of the tile cache.
enum class CachePolicy {
  Lru,    ///< strict least-recently-used
  Clock,  ///< second-chance ring (ref bit per tile)
  Cost,   ///< LRU order, but the cheapest-to-refetch of the coldest few goes
};

std::string_view cache_policy_name(CachePolicy p);
CachePolicy cache_policy_from_name(const std::string& name);

/// Configuration of one TileCache instance (--tile-cache-mb, --tile-shape,
/// --prefetch-depth, --cache-policy).
struct TileCacheConfig {
  /// Total memory budget in bytes; 0 disables the cache entirely.
  std::int64_t budget_bytes = 0;
  /// Tile extents within a slice (x, y). Tiles at the slice edge are
  /// clipped, never padded.
  std::int64_t tile_w = 64;
  std::int64_t tile_h = 64;
  /// Slices the per-copy prefetcher may run ahead of the demand loop
  /// (0 = prefetch off). Driven by the planner's raster-scan chunk order.
  int prefetch_depth = 2;
  CachePolicy policy = CachePolicy::Lru;
  /// Lock shards. The constructor clamps this so every shard's budget holds
  /// at least one full tile; tests pin eviction order with shards = 1.
  int shards = 8;

  bool enabled() const { return budget_bytes > 0; }
};

/// Per-call tile accounting returned by read_rect (the reader meters these
/// as deltas into its copy's WorkMeter).
struct TileRectStats {
  std::int64_t hits = 0;          ///< tile probes that found the tile
  std::int64_t misses = 0;        ///< tile probes that did not
  std::int64_t bytes_served = 0;  ///< raw dtype bytes delivered on a full hit
};

/// Monotonic whole-cache accounting (stats snapshot).
struct TileCacheStats {
  std::int64_t lookups = 0;  ///< hits + misses, by construction
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t bytes_served = 0;
  std::int64_t evictions = 0;
  std::int64_t prefetch_issued = 0;  ///< tiles inserted by prefetch fills
  std::int64_t prefetch_useful = 0;  ///< prefetched tiles later demand-hit
  std::int64_t resident_bytes = 0;
  std::int64_t resident_tiles = 0;
};

/// Per-tenant slice of the accounting (service layer budget reports).
struct TenantCacheStats {
  std::string tenant;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t bytes_served = 0;
  std::int64_t resident_bytes = 0;
};

/// Thread-safe, memory-budgeted tile cache. One instance is typically
/// shared process-wide (svc::JobManager::Options::tile_cache); solo runs
/// build a private instance per pipeline (PipelineParams::make).
class TileCache {
 public:
  explicit TileCache(TileCacheConfig config);

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// Effective configuration (shards may have been clamped to the budget).
  const TileCacheConfig& config() const { return cfg_; }

  /// Stable key of one dataset: FNV-1a over the root path, dims, and dtype.
  /// Distinguishes datasets sharing a process-wide cache; two opens of the
  /// same root agree.
  static std::uint64_t dataset_key(const std::string& root, const DatasetMeta& meta);

  /// Intern a tenant name for per-tenant accounting. The empty name maps to
  /// "local" (solo runs). Returns a stable id; cheap to call repeatedly.
  int tenant_id(const std::string& name);

  /// Serve rectangle [x0, x0+w) x [y0, y0+h) of slice (t, z) into `out`
  /// (row-major uint16, exactly like StorageNodeReader::read_slice_region)
  /// if *every* covering tile is resident. Returns true on a full hit.
  /// Every tile probe counts one hit or one miss in `stats` (probing stops
  /// at the first miss); bytes_served accrues only on a full hit.
  bool read_rect(std::uint64_t dataset, const DatasetMeta& meta, std::int64_t t,
                 std::int64_t z, std::int64_t x0, std::int64_t y0, std::int64_t w,
                 std::int64_t h, std::uint16_t* out, int tenant, TileRectStats& stats);

  /// Insert every tile of one whole slice (`bytes` = meta.slice_bytes() raw
  /// dtype bytes, already verified by the caller). Tiles already resident
  /// are kept; `cost` is the refetch cost the Cost policy weighs;
  /// `prefetched` marks tiles for the prefetch_issued/useful accounting.
  void insert_slice(std::uint64_t dataset, const DatasetMeta& meta, std::int64_t t,
                    std::int64_t z, const std::uint8_t* bytes, double cost,
                    bool prefetched, int tenant);

  /// Every tile of slice (t, z) resident? Does not touch recency state
  /// (the prefetcher's skip test).
  bool slice_fully_cached(std::uint64_t dataset, const DatasetMeta& meta,
                          std::int64_t t, std::int64_t z) const;

  TileCacheStats stats() const;
  std::vector<TenantCacheStats> tenant_stats() const;
  std::int64_t resident_bytes() const;

  /// Drain the not-yet-metered share of the cache-global counters
  /// (evictions, prefetch_issued, prefetch_useful) into the out-params.
  /// Each filter copy drains at the end of its run, so the counters land in
  /// exactly one WorkMeter and totals are conserved across copies and jobs.
  void drain_unmetered(std::int64_t& evictions, std::int64_t& prefetch_issued,
                       std::int64_t& prefetch_useful);

 private:
  struct TileKey {
    std::uint64_t dataset = 0;
    std::int64_t t = 0, z = 0, xi = 0, yi = 0;
    bool operator==(const TileKey& o) const {
      return dataset == o.dataset && t == o.t && z == o.z && xi == o.xi && yi == o.yi;
    }
  };
  struct TileKeyHash {
    std::size_t operator()(const TileKey& k) const;
  };
  struct Entry {
    std::vector<std::uint8_t> bytes;  ///< ew x eh raw dtype elements, row-major
    std::int64_t ew = 0, eh = 0;      ///< clipped tile extents
    double cost = 1.0;                ///< refetch cost (Cost policy)
    bool prefetched = false;          ///< inserted by prefetch, not yet hit
    bool ref = false;                 ///< clock second-chance bit
    int tenant = 0;
    std::list<TileKey>::iterator pos;  ///< position in the shard's order list
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<TileKey, Entry, TileKeyHash> map;
    std::list<TileKey> order;  ///< front = most recently used
    std::int64_t resident = 0;
  };
  struct TenantCounters {
    std::string name;
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
    std::atomic<std::int64_t> bytes_served{0};
    std::atomic<std::int64_t> resident{0};
  };

  Shard& shard_of(const TileKey& k);
  const Shard& shard_of(const TileKey& k) const;
  /// Evict per policy until `need` more bytes fit in `s`. Caller holds s.mu.
  void make_room(Shard& s, std::int64_t need);
  void evict_entry(Shard& s, std::list<TileKey>::iterator victim);
  TenantCounters& tenant(int id);

  TileCacheConfig cfg_;
  std::int64_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex tenants_mu_;
  std::deque<TenantCounters> tenants_;  ///< deque: stable addresses on growth

  // Monotonic totals (stats snapshots) and their not-yet-metered share
  // (drained into WorkMeters; see drain_unmetered).
  std::atomic<std::int64_t> hits_{0}, misses_{0}, bytes_served_{0};
  std::atomic<std::int64_t> evictions_{0}, prefetch_issued_{0}, prefetch_useful_{0};
  std::atomic<std::int64_t> pending_evictions_{0}, pending_prefetch_issued_{0},
      pending_prefetch_useful_{0};
};

}  // namespace h4d::io
