#include "io/durable_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace h4d::io {

namespace {

std::string describe(const std::filesystem::path& path, std::int64_t bytes_attempted,
                     int errno_value, const std::string& op) {
  std::ostringstream os;
  os << "write failed (" << op << "): " << path.string() << ": "
     << (errno_value != 0 ? std::strerror(errno_value) : "short write");
  if (errno_value == ENOSPC || errno_value == EDQUOT) {
    std::error_code ec;
    const auto space = std::filesystem::space(path.parent_path(), ec);
    os << " — device holding " << path.parent_path().string() << " needs "
       << bytes_attempted << " more bytes";
    if (!ec) os << " (" << space.available << " available)";
    os << "; free space or move the output elsewhere";
  } else if (errno_value == 0) {
    os << " — device accepted fewer than the " << bytes_attempted
       << " bytes requested";
  }
  return os.str();
}

/// RAII fd that closes on scope exit (errors on this close are ignored —
/// durability was already decided by the explicit fsync).
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

void write_fully(int fd, const std::filesystem::path& path, const void* data,
                 std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw WriteError(path, static_cast<std::int64_t>(left), errno, "write");
    }
    if (wrote == 0) {
      throw WriteError(path, static_cast<std::int64_t>(left), ENOSPC, "write");
    }
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

void fsync_or_throw(int fd, const std::filesystem::path& path, std::int64_t n) {
  if (::fsync(fd) != 0) throw WriteError(path, n, errno, "fsync");
}

}  // namespace

WriteError::WriteError(std::filesystem::path path, std::int64_t bytes_attempted,
                       int errno_value, const std::string& op)
    : std::runtime_error(describe(path, bytes_attempted, errno_value, op)),
      path_(std::move(path)),
      bytes_attempted_(bytes_attempted),
      errno_(errno_value) {}

bool WriteError::disk_full() const { return errno_ == ENOSPC || errno_ == EDQUOT; }

void fsync_directory(const std::filesystem::path& dir) {
  Fd d{::open(dir.c_str(), O_RDONLY | O_DIRECTORY)};
  if (d.fd < 0) {
    if (errno == ENOENT) throw WriteError(dir, 0, errno, "open directory");
    return;  // filesystem without directory fds: rename durability best-effort
  }
  if (::fsync(d.fd) != 0 && errno != EINVAL && errno != EROFS) {
    throw WriteError(dir, 0, errno, "fsync directory");
  }
}

void atomic_write_file(const std::filesystem::path& path, const void* data,
                       std::size_t n) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  try {
    {
      Fd f{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
      if (f.fd < 0) {
        throw WriteError(tmp, static_cast<std::int64_t>(n), errno, "open");
      }
      write_fully(f.fd, tmp, data, n);
      fsync_or_throw(f.fd, tmp, static_cast<std::int64_t>(n));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      throw WriteError(path, static_cast<std::int64_t>(n), errno, "rename");
    }
    fsync_directory(path.parent_path());
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

void append_durable(const std::filesystem::path& path, const void* data, std::size_t n) {
  Fd f{::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644)};
  if (f.fd < 0) throw WriteError(path, static_cast<std::int64_t>(n), errno, "open");
  write_fully(f.fd, path, data, n);
  fsync_or_throw(f.fd, path, static_cast<std::int64_t>(n));
}

}  // namespace h4d::io
