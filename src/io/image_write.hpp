// Output writers: PGM image series (the JIW filter's format; stands in for
// the paper's JPEG output, which it uses purely as a viewing format) and a
// small CSV table writer for bench harnesses.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "nd/volume4.hpp"

namespace h4d::io {

/// Write one 8-bit binary PGM (P5) image.
void write_pgm(const std::filesystem::path& path, std::int64_t width, std::int64_t height,
               const std::uint8_t* pixels);

/// Read a P5 PGM back (round-trip tests).
std::vector<std::uint8_t> read_pgm(const std::filesystem::path& path, std::int64_t& width,
                                   std::int64_t& height);

/// Normalize a float feature map to [0, 255] using the given min/max (the
/// paper's JIW filter normalizes to [0, 1]: 0 -> black, 1 -> white) and write
/// it as a series of 2D PGM slices named
///   <prefix>_t<k>_z<k>.pgm
/// under `dir`. Returns the number of images written.
int write_feature_map_images(const std::filesystem::path& dir, const std::string& prefix,
                             const Volume4<float>& map, float vmin, float vmax);

/// Minimal CSV writer used by the benchmark harnesses.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  void add_row(const std::vector<std::string>& cells);
  /// Render to a string (also what save() writes).
  std::string str() const;
  void save(const std::filesystem::path& path) const;

  static std::string num(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace h4d::io
