// Tail-tolerant I/O (resilience layer, part 3): gray-failure detection.
//
// PR 5's failover handles nodes that *die* and PR 1's checksums handle bytes
// that *rot*, but a storage node that merely turns *slow* (a gray failure:
// overloaded disk, degraded RAID, throttled VM) still stalls every read
// routed to it — ResilientReader blocks until the read returns, the
// prefetcher queues behind it, and a whole-pipeline job burns its wall
// deadline doing nothing. This module closes that gap with the classic
// tail-at-scale toolkit:
//
//   * LatencyTracker — per-node read-latency statistics (EWMA + fixed-bucket
//     percentile histogram), fed from every completed ResilientReader
//     attempt. One tracker is shared by every reader of a run (and across
//     jobs under `h4d serve`), so a node's reputation is global.
//   * Adaptive per-read deadlines — deadline = clamp(k x node p99, floor,
//     ceiling). Until a node has `min_samples` observations the ceiling
//     applies (a cold tracker must not abandon healthy reads).
//   * SliceFetchPool — a small I/O helper-thread pool that performs
//     whole-slice verified fetches on behalf of ResilientReader, so a read
//     that blows its deadline can be *abandoned in-flight* (the helper
//     thread keeps draining it; the waiter moves on) instead of joined.
//   * Hedged reads — when the primary replica exceeds the node's hedge
//     threshold (the hedge_pct percentile of its own history), the same
//     slice read is issued to the next node in replica_order and the first
//     CRC-verified result wins; the loser is cancelled if not yet started,
//     drained otherwise. Duplicate fills are deduplicated by TileCache
//     keying (insert_slice keeps already-resident tiles), so hedging never
//     changes delivered bytes.
//   * Slow-node eviction — `slow_after` consecutive breaches (a deadline
//     expiry or a lost hedge) evict the node through the existing
//     ReplicaSet health machinery with reason `slow`, using the same
//     probation / probe re-admission path as failure evictions.
//
// Everything here is observability-first: per-node latency and the global
// hedge counters surface in the WorkMeter and the `io_tail` section of both
// export schemas (docs/TAIL.md, docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/dataset.hpp"

namespace h4d::io {

class FaultInjector;  // io/fault.hpp

/// Tail-tolerance knobs (--read-deadline-ms, --hedge-pct,
/// --hedge-max-inflight). Default-constructed = fully off: the reader takes
/// the plain synchronous path and never touches the helper pool.
struct TailConfig {
  /// Per-read deadlines on. deadline_ms > 0 pins a fixed deadline;
  /// deadline_ms == 0 means adaptive ("auto"): clamp(k x p99, floor, ceil).
  bool deadline_enabled = false;
  double deadline_ms = 0.0;
  double deadline_k = 3.0;
  double deadline_floor_ms = 5.0;
  double deadline_ceiling_ms = 500.0;

  /// Hedged reads on. The hedge threshold for a node is the hedge_pct
  /// percentile of its own latency history (floored at hedge_floor_ms; the
  /// floor alone applies while the node history is cold).
  bool hedge_enabled = false;
  double hedge_pct = 95.0;
  double hedge_floor_ms = 1.0;
  /// Global cap on concurrently outstanding hedge reads (resource bound:
  /// a cluster-wide slow node must not double every in-flight read).
  int hedge_max_inflight = 4;

  /// I/O helper threads performing abandonable fetches.
  int helper_threads = 4;
  /// Observations a node needs before its p99 drives deadlines/hedging.
  int min_samples = 8;
  /// Consecutive breaches (deadline expiry or lost hedge) that evict a node
  /// as `slow` through ReplicaSet.
  int slow_after = 3;

  bool enabled() const { return deadline_enabled || hedge_enabled; }
};

/// One node's latency statistics snapshot (io_tail per-node row).
struct NodeLatencyStats {
  int node = 0;
  std::int64_t reads = 0;
  double ewma_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t breaches = 0;  ///< deadline expiries + lost hedges, cumulative
};

/// Per-storage-node read-latency tracking plus the run-global tail counters.
/// Thread-safe; one instance is shared by every reader of a run (and by all
/// jobs of a JobManager, like the TileCache).
class LatencyTracker {
 public:
  explicit LatencyTracker(int nodes);

  /// Record one completed read attempt against `node` (service time).
  void record(int node, double ms);

  /// Record a breach (deadline expiry or lost hedge) against `node`.
  /// Returns true when this is the `slow_after`-th consecutive breach — the
  /// caller should evict the node as slow; the streak resets so probe
  /// re-admission starts a fresh count.
  bool note_breach(int node, int slow_after);
  /// A primary read beat its thresholds: reset the node's breach streak.
  void note_on_time(int node);

  /// Histogram percentile (q in [0, 1]) of the node's recorded latencies;
  /// 0 while the node has no history.
  double percentile_ms(int node, double q) const;
  double ewma_ms(int node) const;
  std::int64_t reads(int node) const;

  /// Adaptive deadline for one read from `node`: the fixed deadline when
  /// pinned, else clamp(k x p99, floor, ceiling); the ceiling while the
  /// node's history is cold (< min_samples).
  double deadline_for(int node, const TailConfig& cfg) const;
  /// Hedge threshold for `node`: max(hedge_floor_ms, hedge_pct percentile),
  /// the floor alone while cold.
  double hedge_delay_for(int node, const TailConfig& cfg) const;

  /// Reserve a hedge slot (global inflight cap). Balanced by end_hedge().
  bool try_begin_hedge(int max_inflight);
  void end_hedge();

  std::vector<NodeLatencyStats> snapshot() const;

  /// Run-global tail counters (exact totals for the io_tail export section;
  /// the per-copy WorkMeter deltas sum to the same values).
  std::atomic<std::int64_t> hedges_issued{0};
  std::atomic<std::int64_t> hedges_won{0};      ///< hedge finished first
  std::atomic<std::int64_t> hedges_abandoned{0};  ///< losers cancelled/drained
  std::atomic<std::int64_t> reads_abandoned{0};   ///< deadline expiries
  std::atomic<std::int64_t> breaches{0};
  std::atomic<std::int64_t> evictions_slow{0};

 private:
  // Fixed-bucket latency histogram: bucket i covers latencies up to
  // kBucketBase * kBucketGrowth^i ms. 56 buckets span ~0.05 ms .. ~13 s.
  static constexpr int kBuckets = 56;
  static constexpr double kBucketBase = 0.05;
  static constexpr double kBucketGrowth = 1.25;
  static int bucket_of(double ms);
  static double bucket_upper(int i);

  struct Node {
    std::int64_t count = 0;
    double ewma_ms = 0.0;
    std::int64_t breaches = 0;
    int breach_streak = 0;
    std::int64_t hist[kBuckets] = {};
  };

  double percentile_locked(const Node& n, double q) const;

  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::atomic<int> hedges_inflight_{0};
};

/// Result of one pooled whole-slice fetch.
struct FetchResult {
  bool ok = false;
  bool crc_failed = false;   ///< failed CRC-32 verification (ok == false)
  std::string error;         ///< failure reason (ok == false)
  std::vector<std::uint8_t> bytes;  ///< verified raw slice bytes (ok == true)
  double service_ms = 0.0;   ///< worker-side service time of the read
  std::int64_t bytes_read = 0;  ///< raw bytes the attempt moved
};

/// Completion event shared by the tickets of one hedged read, so the waiter
/// sleeps on a single condition however many fetches are in flight.
class FetchEvent {
 public:
  void signal();
  /// Wait until the completion count exceeds `seen` or `deadline` passes.
  /// Returns the current completion count.
  int wait_until(std::chrono::steady_clock::time_point deadline, int seen);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int completions_ = 0;
};

/// Handle to one in-flight pooled fetch. The submitting reader may abandon
/// it at any time: an abandoned ticket that has not started is skipped
/// (cancelled); one already running is drained by its helper thread and the
/// result discarded. The shared_ptr keeps the state alive either way.
class FetchTicket {
 public:
  bool done() const {
    std::lock_guard lk(mu_);
    return done_;
  }
  /// Valid only once done(). The waiter moves the bytes out.
  FetchResult& result() { return result_; }
  void abandon() { abandoned_.store(true, std::memory_order_release); }
  bool abandoned() const { return abandoned_.load(std::memory_order_acquire); }

 private:
  friend class SliceFetchPool;
  mutable std::mutex mu_;
  bool done_ = false;
  std::atomic<bool> abandoned_{false};
  FetchResult result_;
  std::shared_ptr<FetchEvent> event_;
};

/// Small I/O helper-thread pool performing whole-slice verified fetches.
/// Each helper thread keeps its own StorageNodeReader per node directory, so
/// an abandoned fetch can keep running without sharing mutable reader state
/// with the submitting ResilientReader (which is single-threaded by design).
class SliceFetchPool {
 public:
  struct Request {
    std::filesystem::path node_dir;
    DatasetMeta meta;
    int node = -1;
    SliceRef slice;
    /// Consulted by the helper thread exactly like the synchronous path
    /// (injected faults model the first-asked storage path, so hedge
    /// requests to other replicas pass nullptr). Must outlive the run.
    FaultInjector* injector = nullptr;
    /// Verify the slice's CRC-32 before reporting ok (first *verified*
    /// result wins a hedge).
    bool verify = false;
  };

  explicit SliceFetchPool(int threads);
  ~SliceFetchPool();

  SliceFetchPool(const SliceFetchPool&) = delete;
  SliceFetchPool& operator=(const SliceFetchPool&) = delete;

  /// Enqueue one fetch; `event` (optional) is signalled on completion.
  std::shared_ptr<FetchTicket> submit(Request req, std::shared_ptr<FetchEvent> event);

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    Request req;
    std::shared_ptr<FetchTicket> ticket;
  };

  void worker_loop();
  static void execute(const Request& req, FetchResult& out);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace h4d::io
