// Synthetic DCE-MRI phantom generator.
//
// Stands in for the paper's clinical breast DCE-MRI study (Sec. 5.1), which
// we cannot ship. The phantom reproduces the statistical properties the
// algorithm and its optimizations depend on:
//   * spatially smooth, textured tissue background (=> sparse GLCMs at Ng=32,
//     the premise of the sparse-representation optimization);
//   * tumor-like blobs whose intensity follows a contrast uptake/washout
//     curve over the time axis (the texture signal of interest);
//   * additive acquisition noise.
// Generation is fully deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "nd/volume4.hpp"

namespace h4d::io {

/// One synthetic lesion: an ellipsoid with contrast enhancement over time.
struct Tumor {
  Vec4 center;          ///< (x, y, z, -) spatial center; t component unused
  Vec4 radii;           ///< (rx, ry, rz, -) ellipsoid radii
  double amplitude;     ///< peak added intensity
  double uptake_rate;   ///< contrast wash-in rate (1/timestep)
  double washout_rate;  ///< contrast wash-out rate (1/timestep)
};

struct PhantomConfig {
  Vec4 dims{64, 64, 16, 8};  ///< (x, y, z, t)
  unsigned seed = 2004;
  int num_tumors = 3;
  double base_intensity = 800.0;    ///< mean tissue intensity
  double texture_amplitude = 250.0; ///< smooth texture modulation depth
  double noise_sigma = 30.0;        ///< Gaussian acquisition noise
  double tumor_amplitude = 1200.0;  ///< peak lesion enhancement
  int texture_cell = 6;             ///< value-noise lattice spacing (voxels)
};

/// Generated phantom plus the ground-truth lesions (for examples/tests).
struct Phantom {
  Volume4<std::uint16_t> volume;
  std::vector<Tumor> tumors;
};

/// Tofts-style contrast enhancement at time `t` (0-based timestep):
/// s(t) = (e^{-washout t} - e^{-uptake t}) normalized to peak 1.
/// Requires uptake_rate > washout_rate > 0 for a physical wash-in/wash-out.
double enhancement_curve(double t, double uptake_rate, double washout_rate);

/// Generate the phantom.
Phantom generate_phantom(const PhantomConfig& cfg);

/// Ground-truth lesion mask: voxel != 0 iff it lies inside any tumor
/// ellipsoid (time-independent — lesions do not move between timesteps).
Volume4<std::uint8_t> tumor_mask(const Vec4& dims, const std::vector<Tumor>& tumors);

}  // namespace h4d::io
