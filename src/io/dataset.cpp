#include "io/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "io/fault.hpp"
#include "io/replica_set.hpp"
#include "io/resilient_reader.hpp"
#include "nd/quantize.hpp"

namespace h4d::io {

namespace {

constexpr const char* kMetaFile = "dataset.meta";

std::string slice_read_error_message(const std::string& file, std::int64_t t,
                                     std::int64_t z, std::int64_t expected,
                                     std::int64_t actual, const std::string& kind) {
  std::ostringstream os;
  os << kind << " in " << file << " (slice t=" << t << ", z=" << z << "): expected "
     << expected << " bytes, got " << actual;
  return os.str();
}

}  // namespace

SliceReadError::SliceReadError(const std::string& file, std::int64_t t_, std::int64_t z_,
                               std::int64_t expected_bytes_, std::int64_t actual_bytes_,
                               const std::string& what_kind)
    : std::runtime_error(
          slice_read_error_message(file, t_, z_, expected_bytes_, actual_bytes_, what_kind)),
      t(t_),
      z(z_),
      expected_bytes(expected_bytes_),
      actual_bytes(actual_bytes_) {}

std::string slice_filename(std::int64_t t, std::int64_t z) {
  return "slice_t" + std::to_string(t) + "_z" + std::to_string(z) + ".raw";
}

std::string node_dir_name(int node) { return "node_" + std::to_string(node); }

std::size_t dtype_size(Dtype d) { return d == Dtype::U8 ? 1 : 2; }

std::string dtype_name(Dtype d) { return d == Dtype::U8 ? "u8" : "u16"; }

Dtype dtype_from_name(const std::string& name) {
  if (name == "u8") return Dtype::U8;
  if (name == "u16") return Dtype::U16;
  throw std::runtime_error("unknown dtype: " + name);
}

void DatasetMeta::save(const std::filesystem::path& root) const {
  std::ofstream f(root / kMetaFile);
  if (!f) throw std::runtime_error("cannot write " + (root / kMetaFile).string());
  f << "version " << kMetaVersion << '\n'
    << "dims " << dims[0] << ' ' << dims[1] << ' ' << dims[2] << ' ' << dims[3] << '\n'
    << "dtype " << dtype_name(dtype) << '\n'
    << "range " << value_min << ' ' << value_max << '\n'
    << "storage_nodes " << storage_nodes << '\n'
    << "replicas " << replicas << '\n';
}

DatasetMeta DatasetMeta::load(const std::filesystem::path& root) {
  std::ifstream f(root / kMetaFile);
  if (!f) throw std::runtime_error("cannot read " + (root / kMetaFile).string());
  DatasetMeta m;
  std::string key;
  while (f >> key) {
    if (key == "version") {
      int version = 0;
      f >> version;
      if (version > kMetaVersion) {
        throw std::runtime_error("dataset.meta under " + root.string() + " is version " +
                                 std::to_string(version) + ", newer than supported " +
                                 std::to_string(kMetaVersion));
      }
    } else if (key == "dims") {
      f >> m.dims[0] >> m.dims[1] >> m.dims[2] >> m.dims[3];
    } else if (key == "dtype") {
      std::string name;
      f >> name;
      m.dtype = dtype_from_name(name);
    } else if (key == "range") {
      f >> m.value_min >> m.value_max;
    } else if (key == "storage_nodes") {
      f >> m.storage_nodes;
    } else if (key == "replicas") {
      f >> m.replicas;
    } else {
      std::string rest;
      std::getline(f, rest);  // tolerate unknown keys
    }
  }
  if (!m.dims.all_positive() || m.storage_nodes < 1 || m.replicas < 1) {
    throw std::runtime_error("corrupt dataset.meta under " + root.string());
  }
  return m;
}

StorageNodeReader::StorageNodeReader(std::filesystem::path node_dir, DatasetMeta meta,
                                     int node_id)
    : dir_(std::move(node_dir)), meta_(meta), node_id_(node_id) {
  std::ifstream idx(dir_ / kIndexFileName);
  if (!idx) throw std::runtime_error("cannot read index " + (dir_ / kIndexFileName).string());
  // Line format: "<t> <z> <filename> [<crc32-hex>]". The checksum column was
  // added later; indexes without it stay readable (has_crc == false).
  std::string line;
  while (std::getline(idx, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    SliceRef s;
    if (!(is >> s.t >> s.z >> s.filename)) {
      throw std::runtime_error("malformed index line in " +
                               (dir_ / kIndexFileName).string() + ": " + line);
    }
    std::string crc_hex;
    if (is >> crc_hex) {
      s.crc = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
      s.has_crc = true;
    }
    slices_.push_back(std::move(s));
  }
}

const SliceRef* StorageNodeReader::find_slice(std::int64_t t, std::int64_t z) const {
  const auto it = std::find_if(slices_.begin(), slices_.end(), [&](const SliceRef& s) {
    return s.t == t && s.z == z;
  });
  return it == slices_.end() ? nullptr : &*it;
}

void StorageNodeReader::read_slice_region(const SliceRef& slice, std::int64_t x0,
                                          std::int64_t y0, std::int64_t w, std::int64_t h,
                                          std::uint16_t* out) const {
  if (meta_.replica_rank(slice.z, slice.t, node_id_) < 0) {
    throw std::invalid_argument("slice (t=" + std::to_string(slice.t) +
                                ", z=" + std::to_string(slice.z) + ") is not local to node " +
                                std::to_string(node_id_));
  }
  if (x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0 + w > meta_.dims[0] ||
      y0 + h > meta_.dims[1]) {
    throw std::invalid_argument("read_slice_region: rectangle out of bounds");
  }
  AttemptPlan plan;
  if (injector_) plan = injector_->plan_attempt(slice.t, slice.z, node_id_);
  const std::string path = (dir_ / slice.filename).string();
  std::ifstream f(dir_ / slice.filename, std::ios::binary);
  if (plan.fail_open || !f) {
    throw std::runtime_error((plan.fail_open ? "injected open failure: " : "") +
                             std::string("cannot open slice ") + path + " (t=" +
                             std::to_string(slice.t) + ", z=" + std::to_string(slice.z) + ")");
  }

  const std::size_t esz = dtype_size(meta_.dtype);
  std::vector<std::uint8_t> row(static_cast<std::size_t>(w) * esz);
  const bool full_rows = (x0 == 0 && w == meta_.dims[0]);
  // One seek per read burst: full-width reads of contiguous rows need a
  // single seek; partial rows need one per row.
  seeks_ += full_rows ? 1 : h;
  for (std::int64_t y = 0; y < h; ++y) {
    const std::int64_t off =
        ((y0 + y) * meta_.dims[0] + x0) * static_cast<std::int64_t>(esz);
    f.seekg(off);
    f.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(row.size()));
    std::int64_t got = f.gcount();
    const bool injected = plan.short_read && y == 0;
    if (injected) got = got / 2;
    if (got != static_cast<std::int64_t>(row.size())) {
      throw SliceReadError(path, slice.t, slice.z,
                           static_cast<std::int64_t>(row.size()), got,
                           injected ? "injected short read" : "short read");
    }
    bytes_read_ += static_cast<std::int64_t>(row.size());
    if (injector_) injector_->apply_corruption(slice.t, slice.z, row.data(), row.size());
    if (meta_.dtype == Dtype::U16) {
      std::memcpy(out + y * w, row.data(), row.size());
    } else {
      for (std::int64_t x = 0; x < w; ++x) {
        out[y * w + x] = row[static_cast<std::size_t>(x)];
      }
    }
  }
}

void StorageNodeReader::read_slice_bytes(const SliceRef& slice, std::uint8_t* out) const {
  if (meta_.replica_rank(slice.z, slice.t, node_id_) < 0) {
    throw std::invalid_argument("slice (t=" + std::to_string(slice.t) +
                                ", z=" + std::to_string(slice.z) + ") is not local to node " +
                                std::to_string(node_id_));
  }
  AttemptPlan plan;
  if (injector_) plan = injector_->plan_attempt(slice.t, slice.z, node_id_);
  const std::string path = (dir_ / slice.filename).string();
  std::ifstream f(dir_ / slice.filename, std::ios::binary);
  if (plan.fail_open || !f) {
    throw std::runtime_error((plan.fail_open ? "injected open failure: " : "") +
                             std::string("cannot open slice ") + path + " (t=" +
                             std::to_string(slice.t) + ", z=" + std::to_string(slice.z) + ")");
  }
  const std::int64_t expected = meta_.slice_bytes();
  f.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(expected));
  std::int64_t got = f.gcount();
  if (plan.short_read) got = got / 2;
  ++seeks_;
  bytes_read_ += got;
  if (got != expected) {
    throw SliceReadError(path, slice.t, slice.z, expected, got,
                         plan.short_read ? "injected short read" : "short read");
  }
  if (injector_) {
    injector_->apply_corruption(slice.t, slice.z, out,
                                static_cast<std::size_t>(expected));
  }
}

DiskDataset DiskDataset::create(const std::filesystem::path& root,
                                const Volume4<std::uint16_t>& vol, int num_nodes,
                                int replicas) {
  if (num_nodes < 1) throw std::invalid_argument("DiskDataset::create: num_nodes must be >= 1");
  if (replicas < 1) throw std::invalid_argument("DiskDataset::create: replicas must be >= 1");
  std::filesystem::create_directories(root);

  DatasetMeta meta;
  meta.dims = vol.dims();
  meta.dtype = Dtype::U16;
  meta.storage_nodes = num_nodes;
  meta.replicas = std::min(replicas, num_nodes);
  const auto [lo, hi] = min_max<std::uint16_t>(vol.view());
  meta.value_min = lo;
  meta.value_max = hi;
  meta.save(root);

  std::vector<std::ofstream> indexes;
  for (int n = 0; n < num_nodes; ++n) {
    const std::filesystem::path dir = root / node_dir_name(n);
    std::filesystem::create_directories(dir);
    indexes.emplace_back(dir / kIndexFileName);
    if (!indexes.back()) throw std::runtime_error("cannot create index in " + dir.string());
  }

  const std::int64_t nx = meta.dims[0];
  const std::int64_t ny = meta.dims[1];
  std::vector<std::uint16_t> slice(static_cast<std::size_t>(nx * ny));
  for (std::int64_t t = 0; t < meta.dims[3]; ++t) {
    for (std::int64_t z = 0; z < meta.dims[2]; ++z) {
      const std::string name = slice_filename(t, z);
      for (std::int64_t y = 0; y < ny; ++y) {
        std::memcpy(slice.data() + y * nx, &vol.at(0, y, z, t),
                    static_cast<std::size_t>(nx) * sizeof(std::uint16_t));
      }
      const std::size_t nbytes = slice.size() * sizeof(std::uint16_t);
      const std::uint32_t crc = crc32(slice.data(), nbytes);
      std::ostringstream crc_hex;
      crc_hex << std::hex << crc;
      for (int rank = 0; rank < meta.replica_count(); ++rank) {
        const int node = meta.replica_node(z, t, rank);
        const std::filesystem::path path = root / node_dir_name(node) / name;
        std::ofstream f(path, std::ios::binary);
        if (!f) throw std::runtime_error("cannot write slice " + path.string());
        f.write(reinterpret_cast<const char*>(slice.data()),
                static_cast<std::streamsize>(nbytes));
        if (!f) throw std::runtime_error("short write to slice " + path.string());
        indexes[static_cast<std::size_t>(node)]
            << t << ' ' << z << ' ' << name << ' ' << crc_hex.str() << '\n';
      }
    }
  }
  return DiskDataset(root, meta);
}

DiskDataset DiskDataset::open(const std::filesystem::path& root) {
  return DiskDataset(root, DatasetMeta::load(root));
}

std::filesystem::path DiskDataset::node_dir(int node) const {
  return root_ / node_dir_name(node);
}

StorageNodeReader DiskDataset::node_reader(int node) const {
  if (node < 0 || node >= meta_.storage_nodes) {
    throw std::out_of_range("node_reader: no node " + std::to_string(node));
  }
  return StorageNodeReader(node_dir(node), meta_, node);
}

Volume4<std::uint16_t> DiskDataset::read_all() const {
  return read_region(Region4::whole(meta_.dims));
}

Volume4<std::uint16_t> DiskDataset::read_region(const Region4& region) const {
  return read_region(region, ResilienceConfig{});
}

Volume4<std::uint16_t> DiskDataset::read_region(const Region4& region,
                                                const ResilienceConfig& resilience,
                                                FaultInjector* injector,
                                                FaultReport* report) const {
  if (!Region4::whole(meta_.dims).contains(region) || region.empty()) {
    throw std::invalid_argument("read_region: region " + region.str() +
                                " not inside dataset " + meta_.dims.str());
  }
  Volume4<std::uint16_t> out(region.size);
  std::vector<std::uint16_t> rect(static_cast<std::size_t>(region.size[0] * region.size[1]));
  FaultReportSink sink;
  // Missing node directories are dead from the start; with r >= 2 their
  // slices are read from the surviving replicas instead.
  ReplicaSet replicas(root_, meta_, ReplicaSet::missing_node_dirs(root_, meta_));
  {
    std::vector<std::unique_ptr<ResilientReader>> readers(
        static_cast<std::size_t>(meta_.storage_nodes));
    for (std::int64_t t = 0; t < region.size[3]; ++t) {
      for (std::int64_t z = 0; z < region.size[2]; ++z) {
        const std::int64_t gz = region.origin[2] + z;
        const std::int64_t gt = region.origin[3] + t;
        int node = replicas.read_owner(gz, gt);
        if (node < 0) node = replicas.first_alive_node();
        if (node < 0) {
          throw std::runtime_error("read_region: every storage node of " + root_.string() +
                                   " is missing");
        }
        auto& reader = readers[static_cast<std::size_t>(node)];
        if (!reader) {
          reader = std::make_unique<ResilientReader>(
              StorageNodeReader(node_dir(node), meta_, node), resilience, injector, &sink,
              &replicas);
        }
        // Prefer the index entry (it carries the checksum); fall back to the
        // conventional filename for indexes that lack the slice.
        SliceRef ref{gt, gz, slice_filename(gt, gz), 0, false};
        if (const SliceRef* indexed = reader->find_slice(gt, gz)) ref = *indexed;
        reader->read_slice_region(ref, region.origin[0], region.origin[1], region.size[0],
                                  region.size[1], rect.data());
        for (std::int64_t y = 0; y < region.size[1]; ++y) {
          std::memcpy(&out.at(0, y, z, t), rect.data() + y * region.size[0],
                      static_cast<std::size_t>(region.size[0]) * sizeof(std::uint16_t));
        }
      }
    }
  }
  if (report) report->merge(sink.snapshot());
  return out;
}

}  // namespace h4d::io
