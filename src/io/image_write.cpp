#include "io/image_write.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/durable_file.hpp"

namespace h4d::io {

void write_pgm(const std::filesystem::path& path, std::int64_t width, std::int64_t height,
               const std::uint8_t* pixels) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("write_pgm: bad dimensions");
  // Assemble in memory, then tmp + fsync + rename: a crash mid-write leaves
  // the previous image (or nothing), never a torn file a resumed run trusts.
  // Storage failures surface as typed WriteError (ENOSPC etc.).
  std::ostringstream header;
  header << "P5\n" << width << ' ' << height << "\n255\n";
  const std::string& h = header.str();
  std::vector<std::uint8_t> file(h.size() + static_cast<std::size_t>(width * height));
  std::copy(h.begin(), h.end(), file.begin());
  std::copy(pixels, pixels + width * height, file.begin() + static_cast<std::ptrdiff_t>(h.size()));
  atomic_write_file(path, file.data(), file.size());
}

std::vector<std::uint8_t> read_pgm(const std::filesystem::path& path, std::int64_t& width,
                                   std::int64_t& height) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_pgm: cannot open " + path.string());
  std::string magic;
  std::int64_t maxval = 0;
  f >> magic >> width >> height >> maxval;
  if (magic != "P5" || maxval != 255 || width <= 0 || height <= 0) {
    throw std::runtime_error("read_pgm: unsupported format in " + path.string());
  }
  f.get();  // single whitespace after header
  std::vector<std::uint8_t> pixels(static_cast<std::size_t>(width * height));
  f.read(reinterpret_cast<char*>(pixels.data()), static_cast<std::streamsize>(pixels.size()));
  if (!f) throw std::runtime_error("read_pgm: short read from " + path.string());
  return pixels;
}

int write_feature_map_images(const std::filesystem::path& dir, const std::string& prefix,
                             const Volume4<float>& map, float vmin, float vmax) {
  std::filesystem::create_directories(dir);
  const Vec4 d = map.dims();
  const float range = vmax - vmin;
  std::vector<std::uint8_t> img(static_cast<std::size_t>(d[0] * d[1]));
  int written = 0;
  for (std::int64_t t = 0; t < d[3]; ++t) {
    for (std::int64_t z = 0; z < d[2]; ++z) {
      for (std::int64_t y = 0; y < d[1]; ++y) {
        for (std::int64_t x = 0; x < d[0]; ++x) {
          float v = range > 0.0f ? (map.at(x, y, z, t) - vmin) / range : 0.0f;
          v = std::clamp(v, 0.0f, 1.0f);
          img[static_cast<std::size_t>(y * d[0] + x)] =
              static_cast<std::uint8_t>(v * 255.0f + 0.5f);
        }
      }
      const std::string name =
          prefix + "_t" + std::to_string(t) + "_z" + std::to_string(z) + ".pgm";
      write_pgm(dir / name, d[0], d[1], img.data());
      ++written;
    }
  }
  return written;
}

CsvWriter::CsvWriter(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("CsvWriter: need at least one column");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("CsvWriter: row width " + std::to_string(cells.size()) +
                                " != " + std::to_string(columns_.size()));
  }
  rows_.push_back(cells);
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << columns_[i] << (i + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
  }
  return os.str();
}

void CsvWriter::save(const std::filesystem::path& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvWriter: cannot open " + path.string());
  f << str();
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace h4d::io
