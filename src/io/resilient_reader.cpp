#include "io/resilient_reader.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "io/replica_set.hpp"
#include "io/tile_cache.hpp"

namespace h4d::io {

namespace {

std::int64_t slice_key(const SliceRef& s) { return (s.t << 32) ^ s.z; }

}  // namespace

ChecksumError::ChecksumError(const std::string& file, std::int64_t t_, std::int64_t z_,
                             std::uint32_t expected, std::uint32_t actual)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << "checksum mismatch in " << file << " (slice t=" << t_ << ", z=" << z_
           << "): index records crc32 " << std::hex << expected << ", read back "
           << actual;
        return os.str();
      }()),
      t(t_),
      z(z_) {}

double RetryPolicy::backoff_ms(int retry) const {
  double ms = backoff_base_ms;
  for (int i = 0; i < retry; ++i) {
    ms *= backoff_factor;
    if (ms >= backoff_max_ms) break;
  }
  return std::min(ms, backoff_max_ms);
}

double RetryPolicy::capped_backoff_ms(int retry, double spent_ms, bool& clipped) const {
  const double want = backoff_ms(retry);
  const double budget = std::max(0.0, total_backoff_cap_ms - spent_ms);
  clipped = want > budget;
  return std::min(want, budget);
}

std::string_view degrade_policy_name(DegradePolicy p) {
  switch (p) {
    case DegradePolicy::FailFast: return "fail_fast";
    case DegradePolicy::Retry: return "retry";
    case DegradePolicy::SkipAndFill: return "skip_and_fill";
  }
  return "?";
}

DegradePolicy degrade_policy_from_name(const std::string& name) {
  if (name == "fail_fast" || name == "fail") return DegradePolicy::FailFast;
  if (name == "retry") return DegradePolicy::Retry;
  if (name == "skip_and_fill" || name == "skip") return DegradePolicy::SkipAndFill;
  throw std::runtime_error("unknown degradation policy: " + name +
                           " (want fail|retry|skip)");
}

void FaultReport::merge(const FaultReport& o) {
  read_retries += o.read_retries;
  checksum_failures += o.checksum_failures;
  slices_skipped += o.slices_skipped;
  slices_recovered += o.slices_recovered;
  replica_failovers += o.replica_failovers;
  nodes_evicted += o.nodes_evicted;
  write_errors += o.write_errors;
  backoffs_capped += o.backoffs_capped;
  skipped.insert(skipped.end(), o.skipped.begin(), o.skipped.end());
}

std::string FaultReport::summary() const {
  std::ostringstream os;
  os << read_retries << " read retries, " << slices_recovered << " slices recovered, "
     << checksum_failures << " checksum failures, " << slices_skipped
     << " slices skipped";
  if (replica_failovers > 0 || nodes_evicted > 0) {
    os << ", " << replica_failovers << " replica failovers, " << nodes_evicted
       << " node evictions";
  }
  if (write_errors > 0) os << ", " << write_errors << " write errors";
  for (const SkippedSlice& s : skipped) {
    os << "\n  skipped slice (t=" << s.t << ", z=" << s.z << "): " << s.reason;
  }
  return os.str();
}

ResilientReader::ResilientReader(StorageNodeReader reader, ResilienceConfig config,
                                 FaultInjector* injector, FaultReportSink* sink,
                                 ReplicaSet* replicas)
    : reader_(std::move(reader)),
      cfg_(config),
      injector_(injector),
      sink_(sink),
      replicas_(replicas) {
  reader_.set_fault_injector(injector);
}

void ResilientReader::attach_cache(TileCache* cache, std::uint64_t dataset_key,
                                   int tenant) {
  cache_ = cache;
  cache_dataset_ = dataset_key;
  cache_tenant_ = tenant;
}

void ResilientReader::attach_tail(const TailConfig& config, LatencyTracker* tracker,
                                  SliceFetchPool* pool) {
  tail_cfg_ = config;
  tail_tracker_ = tracker;
  tail_pool_ = pool;
}

ResilientReader::~ResilientReader() {
  if (sink_) sink_->merge(report_);
}

std::int64_t ResilientReader::seeks_performed() const {
  std::int64_t seeks = reader_.seeks_performed() + pool_seeks_;
  for (const auto& [node, fallback] : fallbacks_) seeks += fallback.seeks_performed();
  return seeks;
}

std::int64_t ResilientReader::attempted_bytes_read() const {
  std::int64_t bytes = reader_.bytes_read() + pool_attempted_bytes_;
  for (const auto& [node, fallback] : fallbacks_) bytes += fallback.bytes_read();
  return bytes;
}

double ResilientReader::replica_cost(int node) const {
  double cost = 1.0;
  if (node != reader_.node_id()) cost += 1.0;
  if (replicas_ && replicas_->node_evicted(node)) cost += 2.0;
  return cost;
}

const StorageNodeReader* ResilientReader::reader_for(int node, std::string& error) {
  if (node == reader_.node_id()) return &reader_;
  if (const auto it = fallbacks_.find(node); it != fallbacks_.end()) return &it->second;
  try {
    // Fallback readers carry no fault injector: injected faults model the
    // first-asked storage path, so a failover lands on clean storage.
    StorageNodeReader fallback(replicas_->node_dir(node), reader_.meta(), node);
    return &fallbacks_.emplace(node, std::move(fallback)).first->second;
  } catch (const std::exception& e) {
    error = e.what();
    return nullptr;
  }
}

void ResilientReader::extract_rect(const std::uint8_t* slice_bytes, std::int64_t x0,
                                   std::int64_t y0, std::int64_t w, std::int64_t h,
                                   std::uint16_t* out) const {
  const DatasetMeta& m = reader_.meta();
  const std::int64_t nx = m.dims[0];
  if (m.dtype == Dtype::U16) {
    const auto* src = reinterpret_cast<const std::uint16_t*>(slice_bytes);
    for (std::int64_t y = 0; y < h; ++y) {
      std::memcpy(out + y * w, src + (y0 + y) * nx + x0,
                  static_cast<std::size_t>(w) * sizeof(std::uint16_t));
    }
  } else {
    for (std::int64_t y = 0; y < h; ++y) {
      const std::uint8_t* row = slice_bytes + (y0 + y) * nx + x0;
      for (std::int64_t x = 0; x < w; ++x) {
        out[y * w + x] = row[x];
      }
    }
  }
}

void ResilientReader::attempt_read(const StorageNodeReader& reader, const SliceRef& slice,
                                   std::int64_t x0, std::int64_t y0, std::int64_t w,
                                   std::int64_t h, std::uint16_t* out, double cost) {
  const bool verified = cfg_.verify_checksums && slice.has_crc;
  // Whole-slice fetches serve the verified path (the checksum unit) and any
  // cache-eligible read (the cache's fill unit). An unverified read under a
  // fault injector must stay a rectangle read: injected corruption depends
  // on the read length, so switching it to a whole-slice fetch would change
  // the delivered bytes vs. a cache-off run.
  if (!verified && !cache_eligible(slice)) {
    reader.read_slice_region(slice, x0, y0, w, h, out);
    delivered_bytes_ += w * h * static_cast<std::int64_t>(dtype_size(reader.meta().dtype));
    return;
  }
  if (cached_slice_ != slice_key(slice)) {
    const std::size_t nbytes = static_cast<std::size_t>(reader.meta().slice_bytes());
    std::vector<std::uint8_t> bytes(nbytes);
    reader.read_slice_bytes(slice, bytes.data());
    if (verified) {
      const std::uint32_t actual = crc32(bytes.data(), bytes.size());
      if (actual != slice.crc) {
        ++report_.checksum_failures;
        throw ChecksumError(slice.filename, slice.t, slice.z, slice.crc, actual);
      }
    }
    delivered_bytes_ += static_cast<std::int64_t>(nbytes);
    cached_bytes_ = std::move(bytes);
    cached_slice_ = slice_key(slice);
    // Only verified-or-injector-free bytes reach this point, so the insert
    // upholds the corrupt-tiles-never-cached contract.
    if (cache_eligible(slice)) {
      cache_->insert_slice(cache_dataset_, reader_.meta(), slice.t, slice.z,
                           cached_bytes_.data(), cost, /*prefetched=*/false,
                           cache_tenant_);
    }
  }
  extract_rect(cached_bytes_.data(), x0, y0, w, h, out);
}

void ResilientReader::fill(std::int64_t w, std::int64_t h, std::uint16_t* out) const {
  std::fill_n(out, static_cast<std::size_t>(w * h), cfg_.fill_value);
}

void ResilientReader::note_tail_breach(int node) {
  ++tail_breaches_;
  if (!tail_tracker_->note_breach(node, tail_cfg_.slow_after)) return;
  if (replicas_ && replicas_->note_slow(node)) {
    ++tail_slow_evictions_;
    ++report_.nodes_evicted;
    tail_tracker_->evictions_slow.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ResilientReader::hedged_fetch(const SliceRef& slice, const std::vector<int>& order,
                                   std::string& last_error) {
  using Clock = std::chrono::steady_clock;
  const bool verified = cfg_.verify_checksums && slice.has_crc;
  const int primary = order[0];
  const auto event = std::make_shared<FetchEvent>();

  struct InFlight {
    int node = -1;
    bool hedge = false;
    bool consumed = false;
    std::shared_ptr<FetchTicket> ticket;
  };
  std::vector<InFlight> inflight;
  inflight.reserve(2);

  const auto submit_to = [&](int node, bool hedge) {
    SliceFetchPool::Request req;
    // Only the wrapped node's fetch consults the injector — injected faults
    // model the first-asked storage path, exactly like the sync fallbacks.
    req.node_dir =
        node == reader_.node_id() ? reader_.node_dir() : replicas_->node_dir(node);
    req.meta = reader_.meta();
    req.node = node;
    req.slice = slice;
    req.injector = node == reader_.node_id() ? injector_ : nullptr;
    req.verify = verified;
    inflight.push_back({node, hedge, false, tail_pool_->submit(std::move(req), event)});
  };

  submit_to(primary, /*hedge=*/false);
  const Clock::time_point start = Clock::now();
  const auto at_ms = [&](double ms) {
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(ms));
  };
  // Milestones relative to the submit: the hedge threshold (hedge_pct
  // percentile of the primary node's own history) and the adaptive deadline.
  const bool can_hedge = tail_cfg_.hedge_enabled && order.size() > 1;
  const double hedge_ms =
      can_hedge ? tail_tracker_->hedge_delay_for(primary, tail_cfg_) : 0.0;
  const bool has_deadline = tail_cfg_.deadline_enabled;
  const double deadline_ms =
      has_deadline ? tail_tracker_->deadline_for(primary, tail_cfg_) : 0.0;

  InFlight* winner = nullptr;
  const auto harvest = [&]() {
    for (InFlight& f : inflight) {
      if (f.consumed || !f.ticket->done()) continue;
      f.consumed = true;
      FetchResult& r = f.ticket->result();
      ++pool_seeks_;  // one whole-slice fetch = one seek + stream
      pool_attempted_bytes_ += r.bytes_read;
      if (r.ok) {
        winner = &f;
        return true;
      }
      last_error = r.error;
      if (r.crc_failed) ++report_.checksum_failures;
    }
    return false;
  };

  bool hedged = false;
  bool hedge_slot = false;
  int seen = 0;
  while (!harvest()) {
    bool all_done = true;
    for (const InFlight& f : inflight) all_done = all_done && f.consumed;
    if (all_done) {
      // Every issued fetch failed: hand the slice to the synchronous retry /
      // failover machinery (which owns the failure accounting).
      if (hedge_slot) tail_tracker_->end_hedge();
      return false;
    }
    const Clock::time_point now = Clock::now();
    if (has_deadline && now >= at_ms(deadline_ms)) {
      // Deadline expiry: abandon everything still in flight (cancelled if
      // unstarted, drained by its helper thread otherwise) and move on.
      for (InFlight& f : inflight) {
        if (f.consumed) continue;
        f.ticket->abandon();
        if (f.hedge) {
          ++tail_hedges_abandoned_;
          tail_tracker_->hedges_abandoned.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ++tail_reads_abandoned_;
      tail_tracker_->reads_abandoned.fetch_add(1, std::memory_order_relaxed);
      note_tail_breach(primary);
      if (hedge_slot) tail_tracker_->end_hedge();
      last_error = "read deadline (" + std::to_string(deadline_ms) + " ms) expired";
      return false;
    }
    if (!hedged && can_hedge && now >= at_ms(hedge_ms)) {
      hedged = true;  // one hedge per read, whether or not a slot was free
      if (tail_tracker_->try_begin_hedge(tail_cfg_.hedge_max_inflight)) {
        hedge_slot = true;
        ++tail_hedges_issued_;
        tail_tracker_->hedges_issued.fetch_add(1, std::memory_order_relaxed);
        submit_to(order[1], /*hedge=*/true);
      }
      continue;
    }
    Clock::time_point next = now + std::chrono::milliseconds(100);
    if (!hedged && can_hedge) next = std::min(next, at_ms(hedge_ms));
    if (has_deadline) next = std::min(next, at_ms(deadline_ms));
    seen = event->wait_until(next, seen);
  }

  // A verified (or injector-free) whole slice won the race: adopt it exactly
  // like the sync path's whole-slice fill, abandon the loser, settle stats.
  FetchResult& r = winner->ticket->result();
  for (InFlight& f : inflight) {
    if (f.consumed) continue;
    f.ticket->abandon();
    ++tail_hedges_abandoned_;
    tail_tracker_->hedges_abandoned.fetch_add(1, std::memory_order_relaxed);
  }
  tail_tracker_->record(winner->node, r.service_ms);
  if (winner->hedge) {
    ++tail_hedges_won_;
    tail_tracker_->hedges_won.fetch_add(1, std::memory_order_relaxed);
    note_tail_breach(primary);  // lost hedge = breach against the primary
  } else {
    tail_tracker_->note_on_time(primary);
  }
  if (hedge_slot) tail_tracker_->end_hedge();

  delivered_bytes_ += static_cast<std::int64_t>(r.bytes.size());
  cached_bytes_ = std::move(r.bytes);
  cached_slice_ = slice_key(slice);
  if (cache_eligible(slice)) {
    // insert_slice keeps already-resident tiles, so a duplicate fill from a
    // hedge race dedups instead of flapping the cache.
    cache_->insert_slice(cache_dataset_, reader_.meta(), slice.t, slice.z,
                         cached_bytes_.data(), replica_cost(winner->node),
                         /*prefetched=*/false, cache_tenant_);
  }
  if (replicas_) replicas_->note_success(winner->node);
  return true;
}

bool ResilientReader::read_slice_region(const SliceRef& slice, std::int64_t x0,
                                        std::int64_t y0, std::int64_t w, std::int64_t h,
                                        std::uint16_t* out) {
  // A slice already declared irrecoverable stays filled (and is reported
  // only once), so the tile loop sees consistent data without re-retrying.
  if (std::find(failed_slices_.begin(), failed_slices_.end(), slice_key(slice)) !=
      failed_slices_.end()) {
    fill(w, h, out);
    return false;
  }

  // Cache-aside: serve the rectangle from the shared tile cache when every
  // covering tile is resident (possibly filled by another copy, another job,
  // or the prefetcher). A partial hit falls through to the disk path, whose
  // whole-slice fill re-populates the missing tiles.
  if (cache_eligible(slice)) {
    TileRectStats cs;
    const bool full_hit = cache_->read_rect(cache_dataset_, reader_.meta(), slice.t,
                                            slice.z, x0, y0, w, h, out, cache_tenant_, cs);
    cache_hits_ += cs.hits;
    cache_misses_ += cs.misses;
    cache_bytes_served_ += cs.bytes_served;
    if (full_hit) return true;
  }

  // Candidate nodes in failover order: the wrapped node alone without a
  // replica set; otherwise this node's copy first, then the remaining
  // replicas by rank (dead/evicted nodes already filtered out).
  const std::vector<int> order =
      replicas_ ? replicas_->replica_order(slice.z, slice.t, reader_.node_id())
                : std::vector<int>{reader_.node_id()};
  const int max_attempts =
      cfg_.policy == DegradePolicy::FailFast ? 1 : std::max(1, cfg_.retry.max_attempts);
  std::string last_error = "no surviving replica holds this slice";

  // Tail-tolerant fast path: pooled whole-slice fetch with adaptive deadline
  // and hedging. Purely advisory — on any failure (fetch error, deadline
  // expiry, lost race with nothing to show) the synchronous loop below still
  // owns correctness, retries and failure accounting.
  if (tail_eligible(slice) && !order.empty() && cached_slice_ != slice_key(slice)) {
    if (hedged_fetch(slice, order, last_error)) {
      extract_rect(cached_bytes_.data(), x0, y0, w, h, out);
      return true;
    }
  }

  double backoff_spent_ms = 0.0;  // budget spans every attempt on every replica
  for (std::size_t ri = 0; ri < order.size(); ++ri) {
    const int node = order[ri];
    const bool last_replica = ri + 1 == order.size();
    const StorageNodeReader* node_reader = reader_for(node, last_error);
    bool exhausted = node_reader == nullptr;
    if (node_reader) {
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ++report_.read_retries;
          bool clipped = false;
          const double ms =
              cfg_.retry.capped_backoff_ms(attempt - 1, backoff_spent_ms, clipped);
          if (clipped) ++report_.backoffs_capped;
          backoff_spent_ms += ms;
          if (cfg_.retry.really_sleep && ms > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
          }
        }
        try {
          attempt_read(*node_reader, slice, x0, y0, w, h, out,
                       replica_cost(node) + (attempt > 0 ? 1.0 : 0.0));
          if (attempt > 0) ++report_.slices_recovered;
          if (replicas_) replicas_->note_success(node);
          return true;
        } catch (const std::exception& e) {
          last_error = e.what();
          // FailFast on the final replica keeps the original exception type
          // (ChecksumError, SliceReadError) — with r=1 this is exactly the
          // pre-replication behavior.
          if (cfg_.policy == DegradePolicy::FailFast && last_replica) {
            if (replicas_ && replicas_->note_failure(node)) ++report_.nodes_evicted;
            throw;
          }
          if (cfg_.policy == DegradePolicy::FailFast) break;
        }
      }
      exhausted = true;
    }
    if (exhausted) {
      if (replicas_ && replicas_->note_failure(node)) ++report_.nodes_evicted;
      if (!last_replica) ++report_.replica_failovers;
    }
  }

  if (cfg_.policy == DegradePolicy::Retry || cfg_.policy == DegradePolicy::FailFast) {
    throw std::runtime_error("slice (t=" + std::to_string(slice.t) +
                             ", z=" + std::to_string(slice.z) + ") unreadable after " +
                             std::to_string(max_attempts) + " attempts on " +
                             std::to_string(order.size()) +
                             " replicas: " + last_error);
  }
  // SkipAndFill: degrade gracefully and record the loss.
  failed_slices_.push_back(slice_key(slice));
  ++report_.slices_skipped;
  report_.skipped.push_back({slice.t, slice.z, last_error});
  fill(w, h, out);
  return false;
}

bool ResilientReader::prefetch_slice(const SliceRef& slice) {
  // Prefetch never runs under a fault injector: a deterministic drill must
  // see the exact per-attempt fault schedule a cache-off run would, and
  // prefetch reads would consume attempt numbers ahead of the demand path.
  if (cache_ == nullptr || injector_ != nullptr) return false;
  if (cache_->slice_fully_cached(cache_dataset_, reader_.meta(), slice.t, slice.z)) {
    return false;
  }
  const std::vector<int> order =
      replicas_ ? replicas_->replica_order(slice.z, slice.t, reader_.node_id())
                : std::vector<int>{reader_.node_id()};
  for (const int node : order) {
    std::string error;
    const StorageNodeReader* node_reader = reader_for(node, error);
    if (node_reader == nullptr) continue;
    try {
      const std::size_t nbytes = static_cast<std::size_t>(reader_.meta().slice_bytes());
      std::vector<std::uint8_t> bytes(nbytes);
      node_reader->read_slice_bytes(slice, bytes.data());
      if (cfg_.verify_checksums && slice.has_crc &&
          crc32(bytes.data(), bytes.size()) != slice.crc) {
        continue;  // corrupt on this replica; never cached
      }
      delivered_bytes_ += static_cast<std::int64_t>(nbytes);
      cache_->insert_slice(cache_dataset_, reader_.meta(), slice.t, slice.z, bytes.data(),
                           replica_cost(node), /*prefetched=*/true, cache_tenant_);
      return true;
    } catch (const std::exception&) {
      // Swallowed: the demand path retries with full resilience accounting.
    }
  }
  return false;
}

}  // namespace h4d::io
