// Discrete-event cluster executor.
//
// Runs a FilterGraph on a modeled cluster: the *real* filter code executes
// (so outputs are bit-identical to the threaded executor), while time is
// virtual — derived from per-operation costs (CostModel), node speeds, core
// contention, NIC/link bandwidth and latency.
//
// Semantics modeled after DataCutter on 2004 clusters:
//   * one task at a time per filter copy; copies on a node contend for its
//     cores (a single-CPU node multiplexes co-located filters — paper Sec. 5.2);
//   * co-located filters exchange buffers by pointer copy at zero cost;
//   * remote exchanges serialize through sender and receiver NICs (FIFO) and
//     any shared inter-cluster link, paying bandwidth + latency;
//   * sends are *blocking*: after processing a buffer, a filter copy cannot
//     start its next buffer until its emitted bytes have left the NIC — but
//     the CPU is free for other co-located copies meanwhile. This is the
//     mechanism behind the paper's "when HCC or HPC is waiting for send and
//     receive operations to complete, the other filter can be doing
//     computation" (Sec. 5.2);
//   * per-message CPU overheads are charged to sender and receiver.
#pragma once

#include <atomic>

#include "fs/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine.hpp"

namespace h4d::fs {
class TraceRecorder;
}

namespace h4d::sim {

/// Seeded copy-failure model: what fraction of Data tasks crash their copy,
/// and what a restart costs in virtual time. Decisions are pure hashes of
/// (seed, copy, buffer identity, attempt) — the same seed yields the same
/// crash schedule regardless of event ordering, so failure drills on modeled
/// clusters are reproducible. Crashes strike before the filter runs (the
/// model charges lost time and restarts; retried work is re-executed exactly
/// once so outputs stay bit-identical to a clean run), except for poison
/// tasks under quarantine, whose data is genuinely dropped.
struct FailureModel {
  std::uint64_t seed = 0;
  double p_crash = 0.0;          ///< per Data-task crash probability
  double restart_delay_s = 1.0;  ///< virtual seconds to rebuild a crashed copy
  int max_restarts = 3;          ///< per copy, before the error escalates
  int poison_threshold = 2;      ///< crashes by the same task before quarantine
  fs::SupervisePolicy policy = fs::SupervisePolicy::RestartCopy;

  bool enabled() const { return p_crash > 0.0; }

  /// Parse a CLI spec: comma-separated key=value pairs among
  /// seed, crash, delay (seconds), max_restarts, poison, policy.
  /// Example: "seed=7,crash=0.05,policy=quarantine". Empty => disabled.
  static FailureModel parse(const std::string& spec);
  std::string str() const;
};

struct SimOptions {
  ClusterSpec cluster;
  CostModel cost;
  /// When set, filter-copy activity spans and buffer handoffs are recorded
  /// in *virtual* time, comparable side-by-side with a threaded-run trace.
  /// Must outlive run_simulated().
  fs::TraceRecorder* trace = nullptr;
  /// Copy failure/restart modeling (disabled by default).
  FailureModel failures;
  /// Cooperative cancellation (job deadlines/timeouts, src/svc): checked
  /// between events; when *cancel becomes true, run_simulated throws
  /// fs::CancelledError. Must outlive the run.
  const std::atomic<bool>* cancel = nullptr;
  /// Virtual-time budget: a run whose simulated clock passes this many
  /// seconds throws fs::CancelledError (0 = unlimited). The per-job analogue
  /// of a wall deadline for modeled-cluster jobs.
  double virtual_deadline_s = 0.0;
};

/// Extended statistics from a simulated run.
struct SimStats : fs::RunStats {
  std::int64_t network_transfers = 0;
  std::int64_t network_bytes = 0;
  double network_busy_seconds = 0.0;  ///< total wire occupancy (sum over links)
};

/// Execute the graph in virtual time. Placement in FilterSpec::placement
/// refers to node ids of options.cluster (must be valid).
SimStats run_simulated(const fs::FilterGraph& graph, const SimOptions& options);

}  // namespace h4d::sim
