#include "sim/executor_sim.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "fs/trace.hpp"

namespace h4d::sim {

namespace {

/// splitmix64 (same mixer as the storage-fault injector): crash decisions
/// are pure hashes, independent of event-queue ordering.
std::uint64_t fmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double funit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

using fs::BufferPtr;
using fs::CopyStats;
using fs::EdgeSpec;
using fs::Filter;
using fs::FilterContext;
using fs::FilterGraph;
using fs::Policy;
using fs::WorkMeter;

constexpr std::size_t kEosBytes = 64;  ///< wire size of an end-of-stream token

/// Min-heap discrete event queue with deterministic FIFO tie-breaking.
class EventQueue {
 public:
  void schedule(double time, std::function<void()> fn) {
    heap_.push(Event{time, seq_++, std::move(fn)});
  }
  bool empty() const { return heap_.empty(); }
  double now() const { return now_; }

  void run_next() {
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = e.time;
    e.fn();
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

struct Item {
  enum class Kind { Data, SourceRun, Flush };
  Kind kind = Kind::Data;
  int port = 0;
  BufferPtr buffer;
  bool remote = false;  ///< arrived over the network (recv CPU applies)
};

struct SimCopy {
  int group = 0;
  int copy = 0;
  int node = 0;
  int ncopies = 1;
  std::unique_ptr<Filter> filter;
  std::deque<Item> inbox;
  bool busy = false;
  bool queued = false;          ///< waiting in the node's ready queue
  bool flush_enqueued = false;
  bool done = false;
  int remaining_eos = 0;
  int pending_deliveries = 0;  ///< buffers routed here but not yet arrived
  double available_at = 0.0;    ///< blocking-send release time
  CopyStats stats;
  // Failure-model state: restart budget spent, and per-task crash counts
  // (key: port, chunk_id, seq, from_copy — one in-flight buffer's identity).
  int restarts_used = 0;
  std::map<std::tuple<int, std::int64_t, std::int64_t, std::int32_t>, int> crashes;
};

struct SimNode {
  NodeSpec spec;
  int busy_cores = 0;
  std::deque<SimCopy*> ready;
  double nic_free = 0.0;
};

struct EdgeRt {
  const EdgeSpec* spec = nullptr;
  std::vector<SimCopy*> consumers;
  std::uint64_t rr_next = 0;
};

/// Collects emissions from a filter call together with the cumulative
/// compute cost at each emission point (used to stream source output over
/// virtual time instead of releasing it all at completion).
class RecordingContext final : public FilterContext {
 public:
  RecordingContext(SimCopy* self, const CostModel* cost)
      : self_(self), cost_(cost), base_(self->stats.meter) {}

  void emit(int port, BufferPtr buffer) override {
    if (!buffer) return;
    buffer->header.from_copy = self_->copy;
    const WorkMeter d = delta(base_, self_->stats.meter);
    emissions_.push_back({port, std::move(buffer), cost_->compute_seconds(d)});
  }
  int copy_index() const override { return self_->copy; }
  int num_copies() const override { return self_->ncopies; }
  WorkMeter& meter() override { return self_->stats.meter; }

  struct Emission {
    int port;
    BufferPtr buffer;
    double cum_cost;  ///< compute cost accumulated before this emission
  };
  const std::vector<Emission>& emissions() const { return emissions_; }

  /// Total compute cost of the whole call (speed-1 seconds).
  double total_cost() const {
    return cost_->compute_seconds(delta(base_, self_->stats.meter));
  }

 private:
  SimCopy* self_;
  const CostModel* cost_;
  WorkMeter base_;
  std::vector<Emission> emissions_;
};

class Simulator {
 public:
  Simulator(const FilterGraph& graph, const SimOptions& opt) : graph_(graph), opt_(opt) {
    build();
  }

  SimStats run() {
    // Seed source copies.
    for (auto& group : copies_) {
      for (auto& c : group) {
        if (graph_.is_source(c->group)) {
          c->inbox.push_back(Item{Item::Kind::SourceRun, 0, nullptr, false});
          SimCopy* cp = c.get();
          events_.schedule(0.0, [this, cp] { request_run(cp); });
        }
      }
    }
    while (!events_.empty()) {
      if (opt_.cancel != nullptr && opt_.cancel->load(std::memory_order_acquire)) {
        throw fs::CancelledError("simulated run cancelled at virtual t=" +
                                 std::to_string(events_.now()) + " s");
      }
      if (opt_.virtual_deadline_s > 0.0 && events_.now() > opt_.virtual_deadline_s) {
        throw fs::CancelledError("simulated run exceeded its virtual deadline (" +
                                 std::to_string(opt_.virtual_deadline_s) + " s)");
      }
      events_.run_next();
    }

    SimStats out;
    out.total_seconds = finish_time_;
    out.exec = report_;
    out.network_transfers = net_transfers_;
    out.network_bytes = net_bytes_;
    out.network_busy_seconds = net_busy_;
    for (auto& group : copies_) {
      for (auto& c : group) {
        if (!c->done) {
          throw std::logic_error("simulation ended with unfinished filter copy " +
                                 c->stats.filter + "[" + std::to_string(c->copy) + "]");
        }
        // Whatever of the copy's lifetime was neither compute nor a
        // blocking-send window is attributed to waiting for input (or a
        // core) — the sim has no bounded inboxes to measure directly.
        c->stats.blocked_input_seconds =
            std::max(0.0, c->stats.finish_time - c->stats.busy_seconds -
                              c->stats.blocked_output_seconds);
        out.copies.push_back(c->stats);
      }
    }
    return out;
  }

 private:
  void build() {
    graph_.validate();
    for (const NodeSpec& n : opt_.cluster.nodes) nodes_.push_back(SimNode{n, 0, {}, 0.0});
    if (nodes_.empty()) throw std::invalid_argument("sim: cluster has no nodes");

    // Shared-link resources: one slot per shared group plus one per
    // dedicated link.
    int max_group = -1;
    for (const InterLink& l : opt_.cluster.inter_links) {
      max_group = std::max(max_group, l.shared_group);
    }
    link_free_.assign(
        static_cast<std::size_t>(max_group + 1) + opt_.cluster.inter_links.size(), 0.0);

    const auto& filters = graph_.filters();
    copies_.resize(filters.size());
    for (std::size_t f = 0; f < filters.size(); ++f) {
      for (int k = 0; k < filters[f].copies; ++k) {
        auto c = std::make_unique<SimCopy>();
        c->group = static_cast<int>(f);
        c->copy = k;
        c->node = filters[f].node_of_copy(k);
        if (c->node < 0 || c->node >= static_cast<int>(nodes_.size())) {
          throw std::invalid_argument("sim: filter " + filters[f].name + " copy " +
                                      std::to_string(k) + " placed on invalid node " +
                                      std::to_string(c->node));
        }
        c->ncopies = filters[f].copies;
        c->filter = filters[f].factory();
        c->stats.filter = filters[f].name;
        c->stats.copy = k;
        c->stats.node = c->node;
        copies_[f].push_back(std::move(c));
      }
      if (opt_.trace != nullptr) {
        opt_.trace->set_process_name(static_cast<int>(f), filters[f].name);
        for (int k = 0; k < filters[f].copies; ++k) {
          opt_.trace->set_thread_name(
              static_cast<int>(f), k,
              filters[f].name + "[" + std::to_string(k) + "] node" +
                  std::to_string(filters[f].node_of_copy(k)));
        }
      }
    }
    for (const EdgeSpec& e : graph_.edges()) {
      EdgeRt rt;
      rt.spec = &e;
      for (auto& c : copies_[static_cast<std::size_t>(e.to)]) rt.consumers.push_back(c.get());
      const int producer_copies = filters[static_cast<std::size_t>(e.from)].copies;
      for (auto& c : copies_[static_cast<std::size_t>(e.to)]) {
        c->remaining_eos += producer_copies;
      }
      edges_.push_back(std::move(rt));
    }
  }

  // ---- node scheduling ----

  void request_run(SimCopy* c) {
    const double now = events_.now();
    if (c->busy || c->done || c->inbox.empty()) return;
    if (now < c->available_at) {
      // Still blocked draining a send; retry when released.
      if (!c->queued) {
        c->queued = true;
        events_.schedule(c->available_at, [this, c] {
          c->queued = false;
          request_run(c);
        });
      }
      return;
    }
    // FIFO-fair core allocation: always queue behind already-waiting
    // co-located copies (a copy finishing a task must not starve its
    // neighbours — the co-location pipelining of paper Sec. 5.2 depends on
    // the OS multiplexing filters fairly).
    SimNode& node = nodes_[static_cast<std::size_t>(c->node)];
    if (!c->queued) {
      c->queued = true;
      node.ready.push_back(c);
    }
    node_dispatch(node);
  }

  void node_dispatch(SimNode& node) {
    while (node.busy_cores < node.spec.cores && !node.ready.empty()) {
      SimCopy* c = node.ready.front();
      node.ready.pop_front();
      c->queued = false;
      if (!c->busy && !c->done && !c->inbox.empty() && events_.now() >= c->available_at) {
        start_task(c);
      } else if (!c->inbox.empty() && !c->busy && !c->done) {
        request_run(c);  // re-queue with the availability retry path
      }
    }
  }

  void start_task(SimCopy* c) {
    const double now = events_.now();
    Item item = std::move(c->inbox.front());
    c->inbox.pop_front();
    c->busy = true;
    SimNode& node = nodes_[static_cast<std::size_t>(c->node)];
    node.busy_cores++;

    RecordingContext ctx(c, &opt_.cost);
    double duration = 0.0;       // speed-1 seconds, scaled below
    double failure_delay = 0.0;  // wall virtual seconds lost to crashes/restarts

    switch (item.kind) {
      case Item::Kind::SourceRun:
        c->filter->run_source(ctx);
        c->filter->flush(ctx);
        break;
      case Item::Kind::Data: {
        if (item.remote) {
          duration += opt_.cost.recv_cpu_seconds(item.buffer->wire_bytes());
          c->stats.meter.bytes_in += static_cast<std::int64_t>(item.buffer->wire_bytes());
        }
        c->stats.meter.buffers_in++;
        const bool survives = !opt_.failures.enabled() ||
                              apply_failure_model(c, item, failure_delay);
        if (survives) c->filter->process(item.port, item.buffer, ctx);
        break;
      }
      case Item::Kind::Flush:
        c->filter->flush(ctx);
        break;
    }
    duration += ctx.total_cost();

    const double speed = node.spec.speed;
    const bool is_source = item.kind == Item::Kind::SourceRun;
    const bool is_flush = item.kind == Item::Kind::Flush;

    // Routing decisions (demand-driven load inspection, network queueing)
    // happen at emission release time: completion for ordinary tasks, the
    // emission's own cumulative-cost point for sources, which stream output
    // while they run. Crash/restart delays occupy the copy in wall virtual
    // time (a rebuilding copy is not idle, it is recovering).
    const double completion = now + duration / speed + failure_delay;
    c->stats.busy_seconds += duration / speed + failure_delay;
    if (opt_.trace != nullptr && duration > 0.0) {
      const char* suffix = is_source ? "::source" : (is_flush ? "::flush" : "");
      opt_.trace->span(c->group, c->copy, c->stats.filter + suffix, now,
                       duration / speed);
    }

    const auto emissions = ctx.emissions();  // copy (ctx dies with this scope)
    events_.schedule(completion, [this, c, emissions, is_source, is_flush, now, speed,
                                  completion] {
      double release = completion;
      for (const auto& em : emissions) {
        const double when =
            is_source ? std::min(completion, now + em.cum_cost / speed) : completion;
        const double r = route_emission(c, em.port, em.buffer, when);
        release = std::max(release, r);
      }
      finish_task(c, completion, release, is_flush || is_source);
    });
  }

  /// Play out the failure model for one Data task: seeded crash decisions,
  /// bounded restarts, poison quarantine. Returns false when the task is
  /// quarantined (its data must not be processed); accumulates the virtual
  /// time lost to rebuilds in `failure_delay`. Escalations throw.
  bool apply_failure_model(SimCopy* c, const Item& item, double& failure_delay) {
    const FailureModel& fm = opt_.failures;
    const fs::BufferHeader& h = item.buffer->header;
    const auto key = std::make_tuple(item.port, h.chunk_id, h.seq, h.from_copy);
    int& task_crashes = c->crashes[key];
    const std::uint64_t base =
        fmix64(fm.seed ^ fmix64(static_cast<std::uint64_t>(c->group) << 32 |
                                static_cast<std::uint64_t>(c->copy))) ^
        fmix64(static_cast<std::uint64_t>(h.chunk_id + 1) * 0x9E3779B9u ^
               static_cast<std::uint64_t>(h.seq) << 8 ^
               static_cast<std::uint64_t>(h.from_copy) << 56 ^
               static_cast<std::uint64_t>(item.port));
    for (;;) {
      const double u = funit(fmix64(base ^ static_cast<std::uint64_t>(task_crashes)));
      if (u >= fm.p_crash) return true;  // this attempt succeeds
      task_crashes++;
      const std::string what = "sim: injected crash in " + c->stats.filter + "[" +
                               std::to_string(c->copy) + "] on chunk " +
                               std::to_string(h.chunk_id) + " seq " +
                               std::to_string(h.seq) + " (attempt " +
                               std::to_string(task_crashes) + ")";
      if (fm.policy == fs::SupervisePolicy::FailFast) {
        report_.incidents.push_back(
            {fs::CopyIncident::Kind::Fatal, c->stats.filter, c->copy, what});
        throw std::runtime_error(what);
      }
      const bool poison = task_crashes >= fm.poison_threshold;
      const bool budget_left = c->restarts_used < fm.max_restarts;
      if (fm.policy == fs::SupervisePolicy::Quarantine && (poison || !budget_left)) {
        fs::QuarantinedBuffer q;
        q.filter = c->stats.filter;
        q.copy = c->copy;
        q.port = item.port;
        q.chunk_id = h.chunk_id;
        q.seq = h.seq;
        q.from_copy = h.from_copy;
        q.region = h.region2.volume() > 0 ? h.region2 : h.region;
        q.reason = what;
        report_.chunks_quarantined++;
        report_.quarantined.push_back(std::move(q));
        c->stats.meter.chunks_quarantined++;
        // The crashed copy still rebuilds before taking its next buffer.
        record_restart(c, what, failure_delay);
        if (opt_.trace != nullptr) {
          opt_.trace->instant(c->group, c->copy, "quarantine", events_.now(),
                              {{"chunk", h.chunk_id}});
        }
        return false;
      }
      if (poison || !budget_left) {
        report_.incidents.push_back(
            {fs::CopyIncident::Kind::Fatal, c->stats.filter, c->copy, what});
        throw std::runtime_error(what + ": restart budget exhausted");
      }
      c->restarts_used++;
      record_restart(c, what, failure_delay);
    }
  }

  void record_restart(SimCopy* c, const std::string& what, double& failure_delay) {
    failure_delay += opt_.failures.restart_delay_s;
    c->stats.meter.copy_restarts++;
    report_.copy_restarts++;
    report_.incidents.push_back(
        {fs::CopyIncident::Kind::Restart, c->stats.filter, c->copy, what});
    if (opt_.trace != nullptr) {
      opt_.trace->instant(c->group, c->copy, "restart", events_.now(), {});
    }
  }

  void finish_task(SimCopy* c, double completion, double release, bool was_final) {
    SimNode& node = nodes_[static_cast<std::size_t>(c->node)];
    c->busy = false;
    node.busy_cores--;
    c->available_at = release;
    // Blocking-send window: emitted bytes still draining through the NIC.
    c->stats.blocked_output_seconds += std::max(0.0, release - completion);

    if (was_final) {
      // Source completed or flush completed: emit EOS downstream and retire.
      c->done = true;
      c->stats.finish_time = release;
      finish_time_ = std::max(finish_time_, release);
      send_eos(c, release);
    } else {
      request_run(c);
    }
    node_dispatch(node);
  }

  // ---- streams and network ----

  /// Route one buffer; returns the sender-release time (when its bytes have
  /// left the NIC — equal to `when` for local deliveries).
  double route_emission(SimCopy* from, int port, const BufferPtr& buffer, double when) {
    double release = when;
    for (EdgeRt& e : edges_) {
      if (e.spec->from != from->group || e.spec->port != port) continue;
      const int eport = e.spec->port;
      switch (e.spec->policy) {
        case Policy::Broadcast:
          for (SimCopy* dst : e.consumers) {
            release = std::max(release, deliver(from, dst, eport, buffer, when, false));
          }
          break;
        case Policy::RoundRobin: {
          SimCopy* dst = e.consumers[static_cast<std::size_t>(
              e.rr_next++ % static_cast<std::uint64_t>(e.consumers.size()))];
          release = std::max(release, deliver(from, dst, eport, buffer, when, false));
          break;
        }
        case Policy::DemandDriven: {
          SimCopy* best = e.consumers[0];
          double best_load = load_of(best);
          for (SimCopy* dst : e.consumers) {
            const double l = load_of(dst);
            if (l < best_load) {
              best = dst;
              best_load = l;
            }
          }
          release = std::max(release, deliver(from, best, eport, buffer, when, false));
          break;
        }
        case Policy::Explicit: {
          const int k = e.spec->route(buffer->header, static_cast<int>(e.consumers.size()));
          if (k < 0 || k >= static_cast<int>(e.consumers.size())) {
            throw std::out_of_range("sim: explicit route out of range");
          }
          release = std::max(release,
                             deliver(from, e.consumers[static_cast<std::size_t>(k)], eport,
                                     buffer, when, false));
          break;
        }
      }
    }
    return release;
  }

  /// Load metric for demand-driven distribution (paper Sec. 4.1: route to
  /// the copy with the highest buffer *consumption rate*): outstanding work
  /// divided by the hosting node's speed. In-flight deliveries count because
  /// routing decisions for a burst are made before their arrivals run.
  double load_of(const SimCopy* c) const {
    const double backlog = static_cast<double>(c->inbox.size()) +
                           static_cast<double>(c->pending_deliveries) +
                           (c->busy ? 1.0 : 0.0);
    return backlog / nodes_[static_cast<std::size_t>(c->node)].spec.speed;
  }

  /// Deliver a buffer (or EOS when eos==true). Returns sender-release time.
  double deliver(SimCopy* from, SimCopy* to, int port, const BufferPtr& buffer, double when,
                 bool eos) {
    const std::size_t bytes = eos ? kEosBytes : buffer->wire_bytes();
    from->stats.meter.buffers_out += eos ? 0 : 1;
    if (!eos) to->pending_deliveries++;
    if (opt_.trace != nullptr && !eos) {
      opt_.trace->instant(from->group, from->copy, "handoff:" + to->stats.filter, when,
                          {{"bytes", static_cast<std::int64_t>(bytes)},
                           {"to_copy", to->copy},
                           {"remote", from->node == to->node ? 0 : 1}});
    }

    if (from->node == to->node) {
      // Co-located: pointer copy, no wire cost, arrival immediate.
      schedule_arrival(to, port, buffer, when, false, eos);
      return when;
    }

    from->stats.meter.bytes_out += static_cast<std::int64_t>(bytes);
    // Send CPU extends the sender's blocking window.
    const double send_cpu =
        opt_.cost.send_cpu_seconds(bytes) / nodes_[static_cast<std::size_t>(from->node)].spec.speed;

    const auto [sender_release, arrival] = transfer(from->node, to->node, bytes, when);
    schedule_arrival(to, port, buffer, arrival, true, eos);
    return sender_release + send_cpu;
  }

  void schedule_arrival(SimCopy* to, int port, const BufferPtr& buffer, double at,
                        bool remote, bool eos) {
    events_.schedule(at, [this, to, port, buffer, remote, eos] {
      if (eos) {
        if (--to->remaining_eos == 0 && !to->flush_enqueued) {
          to->flush_enqueued = true;
          to->inbox.push_back(Item{Item::Kind::Flush, 0, nullptr, false});
          request_run(to);
        }
        return;
      }
      to->pending_deliveries--;
      to->inbox.push_back(Item{Item::Kind::Data, port, buffer, remote});
      to->stats.max_inbox = std::max(to->stats.max_inbox, to->inbox.size());
      request_run(to);
    });
  }

  /// (start+duration, arrival) of a network transfer.
  std::pair<double, double> transfer(int from_node, int to_node, std::size_t bytes,
                                     double ready) {
    SimNode& a = nodes_[static_cast<std::size_t>(from_node)];
    SimNode& b = nodes_[static_cast<std::size_t>(to_node)];
    const ClusterNet& ca = opt_.cluster.clusters[static_cast<std::size_t>(a.spec.cluster)];
    const ClusterNet& cb = opt_.cluster.clusters[static_cast<std::size_t>(b.spec.cluster)];

    double bw = std::min(ca.nic_bandwidth, cb.nic_bandwidth);
    double latency = 0.0;
    double* link_slot = nullptr;

    if (a.spec.cluster == b.spec.cluster) {
      latency = ca.latency;
    } else {
      const int li = opt_.cluster.find_inter_link(a.spec.cluster, b.spec.cluster);
      if (li < 0) {
        throw std::invalid_argument("sim: no link between clusters " +
                                    std::to_string(a.spec.cluster) + " and " +
                                    std::to_string(b.spec.cluster));
      }
      const InterLink& l = opt_.cluster.inter_links[static_cast<std::size_t>(li)];
      bw = std::min(bw, l.bandwidth);
      latency = ca.latency + l.latency + cb.latency;
      const std::size_t slot =
          l.shared_group >= 0
              ? static_cast<std::size_t>(l.shared_group)
              : num_shared_groups_() + static_cast<std::size_t>(li);
      link_slot = &link_free_[slot];
    }

    double start = std::max(ready, std::max(a.nic_free, b.nic_free));
    if (link_slot != nullptr) start = std::max(start, *link_slot);
    const double dur = static_cast<double>(bytes) / bw;
    a.nic_free = start + dur;
    b.nic_free = start + dur;
    if (link_slot != nullptr) *link_slot = start + dur;

    net_transfers_++;
    net_bytes_ += static_cast<std::int64_t>(bytes);
    net_busy_ += dur;
    return {start + dur, start + dur + latency};
  }

  std::size_t num_shared_groups_() const {
    int max_group = -1;
    for (const InterLink& l : opt_.cluster.inter_links) {
      max_group = std::max(max_group, l.shared_group);
    }
    return static_cast<std::size_t>(max_group + 1);
  }

  void send_eos(SimCopy* from, double when) {
    for (EdgeRt& e : edges_) {
      if (e.spec->from != from->group) continue;
      for (SimCopy* dst : e.consumers) {
        deliver(from, dst, e.spec->port, nullptr, when, true);
      }
    }
  }

  const FilterGraph& graph_;
  const SimOptions& opt_;
  EventQueue events_;
  std::vector<SimNode> nodes_;
  std::vector<std::vector<std::unique_ptr<SimCopy>>> copies_;
  std::vector<EdgeRt> edges_;
  std::vector<double> link_free_;
  fs::ExecutionReport report_;
  double finish_time_ = 0.0;
  std::int64_t net_transfers_ = 0;
  std::int64_t net_bytes_ = 0;
  double net_busy_ = 0.0;
};

}  // namespace

FailureModel FailureModel::parse(const std::string& spec) {
  FailureModel fm;
  if (spec.empty() || spec == "off") return fm;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("failure spec item needs key=value: " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        fm.seed = std::stoull(value);
      } else if (key == "crash") {
        fm.p_crash = std::stod(value);
      } else if (key == "delay") {
        fm.restart_delay_s = std::stod(value);
      } else if (key == "max_restarts") {
        fm.max_restarts = std::stoi(value);
      } else if (key == "poison") {
        fm.poison_threshold = std::stoi(value);
      } else if (key == "policy") {
        fm.policy = fs::supervise_policy_from_name(value);
      } else {
        throw std::runtime_error("unknown failure spec key: " + key);
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("bad failure spec value for " + key + ": " + value);
    }
  }
  if (fm.p_crash < 0.0 || fm.p_crash > 1.0) {
    throw std::runtime_error("failure crash probability outside [0,1]");
  }
  return fm;
}

std::string FailureModel::str() const {
  std::ostringstream os;
  os << "seed=" << seed << ",crash=" << p_crash << ",delay=" << restart_delay_s
     << ",max_restarts=" << max_restarts << ",poison=" << poison_threshold
     << ",policy=" << fs::supervise_policy_name(policy);
  return os.str();
}

SimStats run_simulated(const fs::FilterGraph& graph, const SimOptions& options) {
  Simulator sim(graph, options);
  return sim.run();
}

}  // namespace h4d::sim
