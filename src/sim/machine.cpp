#include "sim/machine.hpp"

#include <stdexcept>

namespace h4d::sim {

int ClusterSpec::add_cluster(const std::string& name, int count, double speed, int cores,
                             double nic_bandwidth, double latency) {
  if (count < 1) throw std::invalid_argument("add_cluster: count must be >= 1");
  if (speed <= 0.0) throw std::invalid_argument("add_cluster: speed must be positive");
  if (cores < 1) throw std::invalid_argument("add_cluster: cores must be >= 1");
  const int id = static_cast<int>(clusters.size());
  clusters.push_back(ClusterNet{name, nic_bandwidth, latency});
  for (int i = 0; i < count; ++i) {
    nodes.push_back(NodeSpec{name + "_" + std::to_string(i), id, speed, cores});
  }
  return id;
}

void ClusterSpec::link_clusters(int a, int b, double bandwidth, double latency,
                                int shared_group) {
  if (a == b) throw std::invalid_argument("link_clusters: a == b");
  inter_links.push_back(InterLink{a, b, bandwidth, latency, shared_group});
}

std::vector<int> ClusterSpec::nodes_in_cluster(int cluster) const {
  std::vector<int> ids;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes[static_cast<std::size_t>(i)].cluster == cluster) ids.push_back(i);
  }
  return ids;
}

int ClusterSpec::find_inter_link(int cluster_a, int cluster_b) const {
  for (std::size_t i = 0; i < inter_links.size(); ++i) {
    const InterLink& l = inter_links[i];
    if ((l.cluster_a == cluster_a && l.cluster_b == cluster_b) ||
        (l.cluster_a == cluster_b && l.cluster_b == cluster_a)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

ClusterSpec make_piii_cluster(int nodes) {
  ClusterSpec spec;
  spec.add_cluster("piii", nodes, kPiiiSpeed, 1, 100 * kMbit, 100e-6);
  return spec;
}

ClusterSpec make_paper_testbed() {
  ClusterSpec spec;
  const int piii = spec.add_cluster("piii", 24, kPiiiSpeed, 1, 100 * kMbit, 100e-6);
  const int xeon = spec.add_cluster("xeon", 5, kXeonSpeed, 2, kGbit, 50e-6);
  const int opteron = spec.add_cluster("opteron", 6, kOpteronSpeed, 2, kGbit, 50e-6);
  // PIII reaches both Gigabit clusters through one shared 100 Mbit/s uplink.
  spec.link_clusters(piii, xeon, 100 * kMbit, 500e-6, /*shared_group=*/0);
  spec.link_clusters(piii, opteron, 100 * kMbit, 500e-6, /*shared_group=*/0);
  spec.link_clusters(xeon, opteron, kGbit, 200e-6);
  return spec;
}

}  // namespace h4d::sim
