// Cluster hardware model for the discrete-event executor.
//
// Nodes have a relative CPU speed (PIII @ ~900 MHz == 1.0) and a core count;
// every node belongs to a cluster with an intra-cluster switch (per-NIC
// bandwidth + latency). Clusters are joined by inter-cluster links that may
// be shared (a single resource all flows serialize through, like the paper's
// 100 Mbit/s link between PIII and the XEON/OPTERON clusters).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace h4d::sim {

inline constexpr double kMbit = 1e6 / 8.0;  ///< bytes/s in one Mbit/s
inline constexpr double kGbit = 1e9 / 8.0;

struct NodeSpec {
  std::string name;
  int cluster = 0;
  double speed = 1.0;  ///< relative to a PIII reference node
  int cores = 1;
};

struct ClusterNet {
  std::string name;
  double nic_bandwidth = 100 * kMbit;  ///< per-node NIC/switch port
  double latency = 100e-6;             ///< one-way message latency (s)
};

struct InterLink {
  int cluster_a = 0;
  int cluster_b = 0;
  double bandwidth = 100 * kMbit;
  double latency = 500e-6;
  /// Links with the same non-negative group id serialize on one physical
  /// resource (the paper's single 100 Mbit/s uplink carries both the
  /// PIII<->XEON and PIII<->OPTERON flows). -1: dedicated link.
  int shared_group = -1;
};

/// A complete machine description.
struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  std::vector<ClusterNet> clusters;
  std::vector<InterLink> inter_links;

  /// Append `count` identical nodes forming a new cluster; returns cluster id.
  int add_cluster(const std::string& name, int count, double speed, int cores,
                  double nic_bandwidth, double latency);

  /// Connect two clusters.
  void link_clusters(int a, int b, double bandwidth, double latency, int shared_group = -1);

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  /// Node ids belonging to a cluster.
  std::vector<int> nodes_in_cluster(int cluster) const;

  /// Find the inter-link joining two clusters; -1 when none (throws on use).
  int find_inter_link(int cluster_a, int cluster_b) const;
};

/// The paper's testbed (Sec. 5.2-5.3).
///
/// PIII: 24 single-CPU nodes, 512 MB, Fast Ethernet (100 Mbit/s).
/// XEON: 5 nodes, dual Xeon 2.4 GHz, 2 GB, Gigabit.
/// OPTERON: 6 nodes, dual Opteron 1.4 GHz, 8 GB, Gigabit.
/// PIII <-> XEON and PIII <-> OPTERON share one 100 Mbit/s uplink;
/// XEON <-> OPTERON have a Gigabit path.
ClusterSpec make_piii_cluster(int nodes = 24);
ClusterSpec make_paper_testbed();

/// Cluster ids inside make_paper_testbed()'s spec.
inline constexpr int kPiii = 0;
inline constexpr int kXeon = 1;
inline constexpr int kOpteron = 2;

/// Relative CPU speeds used by the presets. Roughly clock x IPC scaled to a
/// ~900 MHz PIII reference; Haralick inner loops are integer/cache bound so
/// scaling is sublinear in clock.
inline constexpr double kPiiiSpeed = 1.0;
inline constexpr double kXeonSpeed = 2.6;
inline constexpr double kOpteronSpeed = 1.9;

}  // namespace h4d::sim
