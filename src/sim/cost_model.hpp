// Converts measured work (WorkMeter deltas) into virtual execution time on a
// reference node.
//
// All constants are seconds-per-operation on a speed-1.0 node (the paper's
// ~900 MHz Pentium III with 2004-era disk, memory and TCP/IP stack). They
// were calibrated so the relative filter costs the paper reports hold:
//   * HCC (co-occurrence construction) ~4-5x the cost of HPC (features)
//     for the paper's four evaluation features at Ng=32 (Sec. 5.2);
//   * sparse representation adds compression overhead that outweighs its
//     savings when no communication is involved (Fig. 7a) but wins once
//     matrices travel on streams (Fig. 7b);
//   * per-message CPU overheads make a single IIC copy the bottleneck at
//     ~16 texture nodes (Fig. 9).
// Absolute values are *model parameters*, not measurements of this host.
#pragma once

#include "fs/meter.hpp"

namespace h4d::sim {

struct CostModel {
  // Texture math (a ~900 MHz PIII runs the cache-unfriendly co-occurrence
  // update in a few tens of cycles).
  double glcm_update = 30e-9;           ///< one co-occurrence cell increment
  double feature_cell_scan = 8e-9;      ///< visiting one dense matrix cell
  double feature_cell_op = 20e-9;       ///< one per-cell multiply-accumulate
  double sparse_entry = 50e-9;          ///< building/accessing one sparse entry
  double sparse_compress_cell = 8e-9;   ///< scan+test+append when compressing
  double matrix_overhead = 5e-6;        ///< fixed per-matrix handling cost

  // Memory, requantization and the IIC's chunk reorganization. The stitch
  // constant is deliberately large: it stands for the measured per-element
  // cost of DataCutter's input stitching on the PIII testbed (TCP receive
  // processing, buffer management and strided multi-dimensional copies),
  // calibrated so a single IIC copy saturates at ~16 texture nodes (Fig. 9).
  double memcpy_byte = 2e-9;
  double stitch_element = 600e-9;
  double quantize_element = 20e-9;

  // Disk (2004 IDE-class).
  double disk_seek = 8e-3;
  double disk_read_byte = 1.0 / (25e6);   ///< 25 MB/s
  double disk_write_byte = 1.0 / (25e6);

  // Messaging CPU cost (TCP/IP stack, buffer management). Charged on the
  // CPU of the endpoint, on top of wire time.
  double msg_overhead_send = 60e-6;
  double msg_overhead_recv = 120e-6;
  double cpu_byte_send = 3e-9;    ///< user->kernel copy etc.
  double cpu_byte_recv = 10e-9;

  /// CPU seconds for a work delta on a speed-1 node, excluding messaging.
  double compute_seconds(const fs::WorkMeter& d) const {
    const auto& w = d.work;
    double s = 0.0;
    s += static_cast<double>(w.glcm_pair_updates) * glcm_update;
    s += static_cast<double>(w.feature_cells_scanned) * feature_cell_scan;
    s += static_cast<double>(w.feature_cell_ops) * feature_cell_op;
    s += static_cast<double>(w.sparse_entries_emitted) * sparse_entry;
    s += static_cast<double>(w.sparse_compress_cells) * sparse_compress_cell;
    s += static_cast<double>(w.matrices_built) * matrix_overhead;
    s += static_cast<double>(d.bytes_memcpy) * memcpy_byte;
    s += static_cast<double>(d.stitch_elements) * stitch_element;
    s += static_cast<double>(d.elements_quantized) * quantize_element;
    s += static_cast<double>(d.disk_seeks) * disk_seek;
    s += static_cast<double>(d.disk_bytes_read) * disk_read_byte;
    s += static_cast<double>(d.disk_bytes_written) * disk_write_byte;
    return s;
  }

  /// CPU seconds to hand one outgoing message of `bytes` to the stack.
  double send_cpu_seconds(std::size_t bytes) const {
    return msg_overhead_send + static_cast<double>(bytes) * cpu_byte_send;
  }
  /// CPU seconds to receive one incoming message of `bytes`.
  double recv_cpu_seconds(std::size_t bytes) const {
    return msg_overhead_recv + static_cast<double>(bytes) * cpu_byte_recv;
  }
};

}  // namespace h4d::sim
