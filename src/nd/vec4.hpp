// 4-component integer vector used for coordinates, sizes and displacement
// directions in (x, y, z, t) order. x is the fastest-varying storage axis.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

namespace h4d {

/// Number of spatial+temporal dimensions handled by the library.
inline constexpr int kDims = 4;

/// A 4-vector of 64-bit integers in (x, y, z, t) order.
///
/// Used both for points/sizes (non-negative) and for GLCM displacement
/// directions (components in [-d, d]).
struct Vec4 {
  std::array<std::int64_t, kDims> v{0, 0, 0, 0};

  constexpr Vec4() = default;
  constexpr Vec4(std::int64_t x, std::int64_t y, std::int64_t z, std::int64_t t)
      : v{x, y, z, t} {}

  constexpr std::int64_t& operator[](int i) { return v[static_cast<std::size_t>(i)]; }
  constexpr std::int64_t operator[](int i) const { return v[static_cast<std::size_t>(i)]; }

  constexpr std::int64_t x() const { return v[0]; }
  constexpr std::int64_t y() const { return v[1]; }
  constexpr std::int64_t z() const { return v[2]; }
  constexpr std::int64_t t() const { return v[3]; }

  friend constexpr bool operator==(const Vec4&, const Vec4&) = default;

  friend constexpr Vec4 operator+(const Vec4& a, const Vec4& b) {
    return {a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]};
  }
  friend constexpr Vec4 operator-(const Vec4& a, const Vec4& b) {
    return {a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2], a.v[3] - b.v[3]};
  }
  friend constexpr Vec4 operator*(const Vec4& a, std::int64_t s) {
    return {a.v[0] * s, a.v[1] * s, a.v[2] * s, a.v[3] * s};
  }
  friend constexpr Vec4 operator-(const Vec4& a) { return {-a.v[0], -a.v[1], -a.v[2], -a.v[3]}; }

  /// Component-wise minimum.
  static constexpr Vec4 min(const Vec4& a, const Vec4& b) {
    Vec4 r;
    for (int i = 0; i < kDims; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];
    return r;
  }
  /// Component-wise maximum.
  static constexpr Vec4 max(const Vec4& a, const Vec4& b) {
    Vec4 r;
    for (int i = 0; i < kDims; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
    return r;
  }

  /// Product of all components. For a size vector this is the element count.
  constexpr std::int64_t volume() const { return v[0] * v[1] * v[2] * v[3]; }

  /// True when every component is strictly positive.
  constexpr bool all_positive() const {
    return v[0] > 0 && v[1] > 0 && v[2] > 0 && v[3] > 0;
  }
  /// True when every component is >= 0.
  constexpr bool all_non_negative() const {
    return v[0] >= 0 && v[1] >= 0 && v[2] >= 0 && v[3] >= 0;
  }
  /// True when every component of *this is <= the matching component of o.
  constexpr bool all_le(const Vec4& o) const {
    return v[0] <= o.v[0] && v[1] <= o.v[1] && v[2] <= o.v[2] && v[3] <= o.v[3];
  }
  /// True when every component of *this is < the matching component of o.
  constexpr bool all_lt(const Vec4& o) const {
    return v[0] < o.v[0] && v[1] < o.v[1] && v[2] < o.v[2] && v[3] < o.v[3];
  }

  std::string str() const {
    return "(" + std::to_string(v[0]) + "," + std::to_string(v[1]) + "," +
           std::to_string(v[2]) + "," + std::to_string(v[3]) + ")";
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec4& a) { return os << a.str(); }
};

/// Strict total order for use as a map key (lexicographic, x major).
struct Vec4Less {
  constexpr bool operator()(const Vec4& a, const Vec4& b) const {
    for (int i = 0; i < kDims; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
  }
};

}  // namespace h4d
