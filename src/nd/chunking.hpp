// Chunk partitioners for out-of-core processing.
//
// The texture pipeline retrieves data in 4D chunks rather than per-ROI so
// overlapped ROI data is read once (paper Sec. 4.4). Adjacent chunks overlap
// by (roi - 1) elements per dimension (paper Eqs. 1-2, generalized to 4D), so
// every ROI is fully contained in exactly one chunk, and each chunk "owns" a
// disjoint range of ROI origins.
#pragma once

#include <cstdint>
#include <vector>

#include "nd/region.hpp"
#include "nd/vec4.hpp"

namespace h4d {

/// One chunk of an overlapping partition.
struct Chunk {
  /// Sequential id, row-major over the chunk grid (x fastest).
  std::int64_t id = 0;
  /// Grid coordinate of this chunk.
  Vec4 grid;
  /// Data region the chunk covers (includes overlap with neighbours).
  Region4 region;
  /// ROI origins this chunk exclusively owns. Every ROI whose origin lies in
  /// `owned_origins` fits entirely inside `region`. Union over all chunks ==
  /// all valid ROI origins, pairwise disjoint.
  Region4 owned_origins;
};

/// Overlapping chunk partition of a volume for a given ROI size.
///
/// Throws std::invalid_argument when roi or chunk sizes are infeasible
/// (roi > dims, chunk < roi, non-positive entries).
std::vector<Chunk> partition_overlapping(const Vec4& dims, const Vec4& chunk_dims,
                                         const Vec4& roi_dims);

/// Per-dimension overlap between adjacent chunks: roi - 1 (paper Eqs. 1-2).
Vec4 chunk_overlap(const Vec4& roi_dims);

/// Total number of valid ROI origins for a volume/ROI combination.
std::int64_t num_roi_origins(const Vec4& dims, const Vec4& roi_dims);

/// Region of all valid ROI origins: [0, dims - roi + 1).
Region4 roi_origin_region(const Vec4& dims, const Vec4& roi_dims);

/// Plain (non-overlapping) partition into blocks of at most `block_dims`,
/// used for I/O-granularity chunks (RFR->IIC).
std::vector<Region4> partition_plain(const Vec4& dims, const Vec4& block_dims);

/// One 2D slice of the 4D volume (the on-disk I/O unit: one raw file).
struct SliceCoord {
  std::int64_t z = 0;
  std::int64_t t = 0;
};

/// The distinct slices the chunk sequence touches, in first-need order over
/// the raster-scan chunk ids (t-major, z-minor within each chunk). This is
/// the prefetch schedule of the tile cache: issuing reads in this order pulls
/// the next chunk's ghost-overlap slices in while the current chunk computes
/// (overlapping slices appear once, at their first use).
std::vector<SliceCoord> raster_slice_order(const std::vector<Chunk>& chunks);

}  // namespace h4d
