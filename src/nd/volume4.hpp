// Owning and non-owning 4D array types with strided element access and
// subregion copy helpers. Storage is row-major with x fastest and t slowest.
#pragma once

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "nd/region.hpp"
#include "nd/vec4.hpp"

namespace h4d {

/// Non-owning strided view over 4D data.
///
/// `dims` are the logical extents; `strides` are element (not byte) strides
/// per axis. A contiguous view has strides {1, Nx, Nx*Ny, Nx*Ny*Nz}.
template <typename T>
class Vol4View {
 public:
  Vol4View() = default;
  Vol4View(T* data, Vec4 dims)
      : data_(data),
        dims_(dims),
        strides_{1, dims[0], dims[0] * dims[1], dims[0] * dims[1] * dims[2]} {}
  Vol4View(T* data, Vec4 dims, Vec4 strides) : data_(data), dims_(dims), strides_(strides) {}

  /// Implicit widening conversion Vol4View<U> -> Vol4View<const U>.
  template <typename U>
    requires(std::is_same_v<T, const U> && !std::is_const_v<U>)
  Vol4View(const Vol4View<U>& o)  // NOLINT(google-explicit-constructor)
      : data_(o.data()), dims_(o.dims()), strides_(o.strides()) {}

  T* data() const { return data_; }
  const Vec4& dims() const { return dims_; }
  const Vec4& strides() const { return strides_; }
  std::int64_t size() const { return dims_.volume(); }
  bool valid() const { return data_ != nullptr; }

  T& at(std::int64_t x, std::int64_t y, std::int64_t z, std::int64_t t) const {
    assert(x >= 0 && x < dims_[0] && y >= 0 && y < dims_[1] && z >= 0 && z < dims_[2] &&
           t >= 0 && t < dims_[3]);
    return data_[x * strides_[0] + y * strides_[1] + z * strides_[2] + t * strides_[3]];
  }
  T& at(const Vec4& p) const { return at(p[0], p[1], p[2], p[3]); }

  /// Subview covering region r (expressed in this view's coordinates).
  Vol4View<T> subview(const Region4& r) const {
    assert(Region4::whole(dims_).contains(r));
    T* base = &at(r.origin);
    return Vol4View<T>(base, r.size, strides_);
  }

  Vol4View<const T> as_const() const { return Vol4View<const T>(data_, dims_, strides_); }

 private:
  T* data_ = nullptr;
  Vec4 dims_{};
  Vec4 strides_{};
};

/// Owning contiguous 4D array.
template <typename T>
class Volume4 {
 public:
  Volume4() = default;
  explicit Volume4(Vec4 dims, T fill = T{})
      : dims_(validated(dims)), data_(static_cast<std::size_t>(dims.volume()), fill) {}

  const Vec4& dims() const { return dims_; }
  std::int64_t size() const { return dims_.volume(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  T& at(std::int64_t x, std::int64_t y, std::int64_t z, std::int64_t t) {
    return data_[static_cast<std::size_t>(linear_index({x, y, z, t}, dims_))];
  }
  const T& at(std::int64_t x, std::int64_t y, std::int64_t z, std::int64_t t) const {
    return data_[static_cast<std::size_t>(linear_index({x, y, z, t}, dims_))];
  }
  T& at(const Vec4& p) { return at(p[0], p[1], p[2], p[3]); }
  const T& at(const Vec4& p) const { return at(p[0], p[1], p[2], p[3]); }

  Vol4View<T> view() { return Vol4View<T>(data_.data(), dims_); }
  Vol4View<const T> view() const { return Vol4View<const T>(data_.data(), dims_); }

  /// View of a subregion (must be inside the volume).
  Vol4View<T> subview(const Region4& r) { return view().subview(r); }
  Vol4View<const T> subview(const Region4& r) const { return view().subview(r); }

 private:
  static Vec4 validated(Vec4 dims) {
    if (!dims.all_positive()) throw std::invalid_argument("Volume4: dims must be positive");
    return dims;
  }

  Vec4 dims_{};
  std::vector<T> data_;
};

/// Copy the overlap of `src_region` (coordinates of `src`'s frame) into `dst`.
///
/// `src` covers `src_region` of some global space; `dst` covers `dst_region`.
/// Elements in the intersection are copied; x-runs are memcpy'd.
template <typename T>
void copy_region(Vol4View<const T> src, const Region4& src_region, Vol4View<T> dst,
                 const Region4& dst_region) {
  const Region4 common = src_region.intersect(dst_region);
  if (common.empty()) return;
  const Vec4 so = common.origin - src_region.origin;
  const Vec4 dpo = common.origin - dst_region.origin;
  const std::int64_t run = common.size[0];
  for (std::int64_t t = 0; t < common.size[3]; ++t) {
    for (std::int64_t z = 0; z < common.size[2]; ++z) {
      for (std::int64_t y = 0; y < common.size[1]; ++y) {
        const T* s = &src.at(so[0], so[1] + y, so[2] + z, so[3] + t);
        T* d = &dst.at(dpo[0], dpo[1] + y, dpo[2] + z, dpo[3] + t);
        if (src.strides()[0] == 1 && dst.strides()[0] == 1) {
          std::memcpy(d, s, static_cast<std::size_t>(run) * sizeof(T));
        } else {
          for (std::int64_t x = 0; x < run; ++x) {
            d[x * dst.strides()[0]] = s[x * src.strides()[0]];
          }
        }
      }
    }
  }
}

template <typename T>
void copy_region(const Volume4<T>& src, const Region4& src_region, Volume4<T>& dst,
                 const Region4& dst_region) {
  copy_region<T>(src.view(), src_region, dst.view(), dst_region);
}

}  // namespace h4d
