// Axis-aligned 4D boxes (origin + size) with intersection/containment math.
#pragma once

#include <optional>
#include <string>

#include "nd/vec4.hpp"

namespace h4d {

/// A half-open axis-aligned box: points p with origin[i] <= p[i] < origin[i]+size[i].
struct Region4 {
  Vec4 origin;
  Vec4 size;

  constexpr Region4() = default;
  constexpr Region4(Vec4 o, Vec4 s) : origin(o), size(s) {}

  /// Region covering an entire volume of the given dimensions.
  static constexpr Region4 whole(Vec4 dims) { return {Vec4{}, dims}; }

  constexpr Vec4 end() const { return origin + size; }
  constexpr std::int64_t volume() const { return size.volume(); }
  constexpr bool empty() const { return !size.all_positive(); }

  friend constexpr bool operator==(const Region4&, const Region4&) = default;

  /// True when point p lies inside this region.
  constexpr bool contains(const Vec4& p) const {
    for (int i = 0; i < kDims; ++i) {
      if (p[i] < origin[i] || p[i] >= origin[i] + size[i]) return false;
    }
    return true;
  }

  /// True when r is fully inside this region.
  constexpr bool contains(const Region4& r) const {
    if (r.empty()) return true;
    return origin.all_le(r.origin) && r.end().all_le(end());
  }

  /// Intersection; returns an empty region when disjoint.
  constexpr Region4 intersect(const Region4& r) const {
    const Vec4 o = Vec4::max(origin, r.origin);
    const Vec4 e = Vec4::min(end(), r.end());
    Region4 out;
    out.origin = o;
    for (int i = 0; i < kDims; ++i) out.size[i] = e[i] > o[i] ? e[i] - o[i] : 0;
    return out;
  }

  constexpr bool intersects(const Region4& r) const { return !intersect(r).empty(); }

  std::string str() const { return origin.str() + "+" + size.str(); }
};

/// Linear offset of point p inside a row-major (t slowest, x fastest) box of
/// dimensions `dims`, with p expressed relative to the box origin.
constexpr std::int64_t linear_index(const Vec4& p, const Vec4& dims) {
  return ((p[3] * dims[2] + p[2]) * dims[1] + p[1]) * dims[0] + p[0];
}

/// Inverse of linear_index.
constexpr Vec4 delinearize(std::int64_t idx, const Vec4& dims) {
  Vec4 p;
  p[0] = idx % dims[0];
  idx /= dims[0];
  p[1] = idx % dims[1];
  idx /= dims[1];
  p[2] = idx % dims[2];
  idx /= dims[2];
  p[3] = idx;
  return p;
}

}  // namespace h4d
