#include "nd/quantize.hpp"

#include <algorithm>

namespace h4d {

EqualizedQuantizer::EqualizedQuantizer(std::vector<double> samples, int num_levels)
    : ng_(num_levels) {
  if (num_levels < 2 || num_levels > 256) {
    throw std::invalid_argument("EqualizedQuantizer: Ng must be in [2, 256]");
  }
  if (samples.empty()) {
    throw std::invalid_argument("EqualizedQuantizer: need at least one sample");
  }
  std::sort(samples.begin(), samples.end());
  thresholds_.reserve(static_cast<std::size_t>(ng_ - 1));
  const auto n = static_cast<std::int64_t>(samples.size());
  for (int level = 1; level < ng_; ++level) {
    // Threshold at the level/Ng quantile. upper_bound semantics in
    // operator() mean a value equal to the threshold falls below it.
    const auto idx = std::min<std::int64_t>(n - 1, (n * level) / ng_);
    thresholds_.push_back(samples[static_cast<std::size_t>(idx)]);
  }
}

}  // namespace h4d
