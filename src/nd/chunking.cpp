#include "nd/chunking.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace h4d {

Vec4 chunk_overlap(const Vec4& roi_dims) {
  return roi_dims - Vec4{1, 1, 1, 1};
}

Region4 roi_origin_region(const Vec4& dims, const Vec4& roi_dims) {
  Region4 r;
  r.origin = Vec4{};
  r.size = dims - roi_dims + Vec4{1, 1, 1, 1};
  return r;
}

std::int64_t num_roi_origins(const Vec4& dims, const Vec4& roi_dims) {
  const Region4 r = roi_origin_region(dims, roi_dims);
  return r.empty() ? 0 : r.volume();
}

std::vector<Chunk> partition_overlapping(const Vec4& dims, const Vec4& chunk_dims,
                                         const Vec4& roi_dims) {
  if (!dims.all_positive() || !chunk_dims.all_positive() || !roi_dims.all_positive()) {
    throw std::invalid_argument("partition_overlapping: all extents must be positive");
  }
  if (!roi_dims.all_le(dims)) {
    throw std::invalid_argument("partition_overlapping: roi " + roi_dims.str() +
                                " exceeds volume " + dims.str());
  }
  if (!roi_dims.all_le(chunk_dims)) {
    throw std::invalid_argument("partition_overlapping: chunk " + chunk_dims.str() +
                                " smaller than roi " + roi_dims.str());
  }

  // Per-dim stride between chunk origins; each chunk owns `step` ROI origins.
  Vec4 step;
  Vec4 grid;  // number of chunks per dim
  const Region4 origins = roi_origin_region(dims, roi_dims);
  for (int d = 0; d < kDims; ++d) {
    step[d] = chunk_dims[d] - roi_dims[d] + 1;
    grid[d] = (origins.size[d] + step[d] - 1) / step[d];
  }

  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<std::size_t>(grid.volume()));
  std::int64_t id = 0;
  Vec4 g;
  for (g[3] = 0; g[3] < grid[3]; ++g[3]) {
    for (g[2] = 0; g[2] < grid[2]; ++g[2]) {
      for (g[1] = 0; g[1] < grid[1]; ++g[1]) {
        for (g[0] = 0; g[0] < grid[0]; ++g[0]) {
          Chunk c;
          c.id = id++;
          c.grid = g;
          for (int d = 0; d < kDims; ++d) {
            const std::int64_t o = g[d] * step[d];
            c.owned_origins.origin[d] = o;
            c.owned_origins.size[d] = std::min(step[d], origins.size[d] - o);
            c.region.origin[d] = o;
            // Must cover the last owned origin's full ROI extent.
            c.region.size[d] =
                std::min(chunk_dims[d], dims[d] - o);
            // Shrink to exactly what the owned ROIs need (last chunk in a dim
            // may own fewer origins than `step`).
            const std::int64_t needed = c.owned_origins.size[d] - 1 + roi_dims[d];
            if (c.region.size[d] > needed) c.region.size[d] = needed;
          }
          chunks.push_back(c);
        }
      }
    }
  }
  return chunks;
}

std::vector<SliceCoord> raster_slice_order(const std::vector<Chunk>& chunks) {
  std::vector<SliceCoord> order;
  std::vector<std::pair<std::int64_t, std::int64_t>> seen;  // sorted (t, z)
  for (const Chunk& c : chunks) {
    for (std::int64_t t = c.region.origin[3]; t < c.region.origin[3] + c.region.size[3];
         ++t) {
      for (std::int64_t z = c.region.origin[2]; z < c.region.origin[2] + c.region.size[2];
           ++z) {
        const std::pair<std::int64_t, std::int64_t> key{t, z};
        const auto it = std::lower_bound(seen.begin(), seen.end(), key);
        if (it != seen.end() && *it == key) continue;
        seen.insert(it, key);
        order.push_back({z, t});
      }
    }
  }
  return order;
}

std::vector<Region4> partition_plain(const Vec4& dims, const Vec4& block_dims) {
  if (!dims.all_positive() || !block_dims.all_positive()) {
    throw std::invalid_argument("partition_plain: all extents must be positive");
  }
  Vec4 grid;
  for (int d = 0; d < kDims; ++d) {
    grid[d] = (dims[d] + block_dims[d] - 1) / block_dims[d];
  }
  std::vector<Region4> blocks;
  blocks.reserve(static_cast<std::size_t>(grid.volume()));
  Vec4 g;
  for (g[3] = 0; g[3] < grid[3]; ++g[3]) {
    for (g[2] = 0; g[2] < grid[2]; ++g[2]) {
      for (g[1] = 0; g[1] < grid[1]; ++g[1]) {
        for (g[0] = 0; g[0] < grid[0]; ++g[0]) {
          Region4 r;
          for (int d = 0; d < kDims; ++d) {
            r.origin[d] = g[d] * block_dims[d];
            r.size[d] = std::min(block_dims[d], dims[d] - r.origin[d]);
          }
          blocks.push_back(r);
        }
      }
    }
  }
  return blocks;
}

}  // namespace h4d
