// Raster-scan iteration over 4D index ranges (paper Sec. 3, Fig. 1-2).
#pragma once

#include <cstdint>
#include <iterator>

#include "nd/region.hpp"

namespace h4d {

/// Forward iterator enumerating every point of a Region4 in raster order
/// (x fastest, then y, z, t) — the scan order of the sequential algorithm
/// in the paper's Figure 2.
class RasterIterator {
 public:
  using iterator_category = std::forward_iterator_tag;
  using value_type = Vec4;
  using difference_type = std::int64_t;
  using pointer = const Vec4*;
  using reference = const Vec4&;

  RasterIterator() = default;
  RasterIterator(const Region4& r, std::int64_t idx) : region_(r), idx_(idx) {}

  reference operator*() const {
    cur_ = region_.origin + delinearize(idx_, region_.size);
    return cur_;
  }
  pointer operator->() const { return &operator*(); }

  RasterIterator& operator++() {
    ++idx_;
    return *this;
  }
  RasterIterator operator++(int) {
    RasterIterator t = *this;
    ++idx_;
    return t;
  }

  friend bool operator==(const RasterIterator& a, const RasterIterator& b) {
    return a.idx_ == b.idx_;
  }

 private:
  Region4 region_{};
  std::int64_t idx_ = 0;
  mutable Vec4 cur_{};
};

/// Range adaptor: `for (Vec4 p : raster(region)) ...`
class RasterRange {
 public:
  explicit RasterRange(const Region4& r) : region_(r) {}
  RasterIterator begin() const { return {region_, 0}; }
  RasterIterator end() const { return {region_, region_.empty() ? 0 : region_.volume()}; }
  std::int64_t size() const { return region_.empty() ? 0 : region_.volume(); }

 private:
  Region4 region_;
};

inline RasterRange raster(const Region4& r) { return RasterRange(r); }

}  // namespace h4d
