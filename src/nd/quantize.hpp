// Gray-level requantization.
//
// Haralick analysis is performed on images requantized to a small number of
// gray levels Ng (the paper uses Ng=32; levels > 32 rarely improve results).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "nd/volume4.hpp"

namespace h4d {

/// Gray level type after requantization. Ng <= 256.
using Level = std::uint8_t;

/// Linear min/max requantizer mapping [lo, hi] onto [0, Ng-1].
class Quantizer {
 public:
  Quantizer(double lo, double hi, int num_levels) : lo_(lo), hi_(hi), ng_(num_levels) {
    if (num_levels < 2 || num_levels > 256) {
      throw std::invalid_argument("Quantizer: Ng must be in [2, 256]");
    }
    if (!(hi > lo)) {
      // Degenerate (constant) input: everything maps to level 0.
      scale_ = 0.0;
    } else {
      scale_ = static_cast<double>(ng_) / (hi - lo);
    }
  }

  int num_levels() const { return ng_; }

  Level operator()(double v) const {
    if (scale_ == 0.0) return 0;
    const double q = (v - lo_) * scale_;
    const auto l = static_cast<std::int64_t>(q);
    return static_cast<Level>(std::clamp<std::int64_t>(l, 0, ng_ - 1));
  }

 private:
  double lo_;
  double hi_;
  int ng_;
  double scale_;
};

/// Histogram-equalizing requantizer: thresholds are placed so each output
/// level receives an approximately equal share of the sampled intensity
/// distribution. Compared to linear min/max quantization this spreads
/// co-occurrence mass evenly over the Ng levels, which stabilizes Haralick
/// features under intensity-scale drift (e.g. scanner gain between visits).
class EqualizedQuantizer {
 public:
  /// Build from sampled intensities (need not be the full dataset).
  /// Thresholds t_1 <= ... <= t_{Ng-1}; level(v) = #\{ t_i < v \}, so a
  /// constant distribution collapses onto level 0.
  EqualizedQuantizer(std::vector<double> samples, int num_levels);

  int num_levels() const { return ng_; }
  const std::vector<double>& thresholds() const { return thresholds_; }

  Level operator()(double v) const {
    const auto it = std::lower_bound(thresholds_.begin(), thresholds_.end(), v);
    return static_cast<Level>(it - thresholds_.begin());
  }

 private:
  int ng_;
  std::vector<double> thresholds_;  // size Ng-1, non-decreasing
};

/// Min/max over a view.
template <typename T>
std::pair<double, double> min_max(Vol4View<const T> v) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const Vec4 d = v.dims();
  for (std::int64_t t = 0; t < d[3]; ++t)
    for (std::int64_t z = 0; z < d[2]; ++z)
      for (std::int64_t y = 0; y < d[1]; ++y)
        for (std::int64_t x = 0; x < d[0]; ++x) {
          const double val = static_cast<double>(v.at(x, y, z, t));
          lo = std::min(lo, val);
          hi = std::max(hi, val);
        }
  return {lo, hi};
}

/// Requantize a whole volume to Ng levels using its global min/max.
template <typename T>
Volume4<Level> quantize_volume(const Volume4<T>& src, int num_levels) {
  const auto [lo, hi] = min_max<T>(src.view());
  const Quantizer q(lo, hi, num_levels);
  Volume4<Level> out(src.dims());
  const T* s = src.data();
  Level* d = out.data();
  const std::int64_t n = src.size();
  for (std::int64_t i = 0; i < n; ++i) d[i] = q(static_cast<double>(s[i]));
  return out;
}

/// Requantize with an externally supplied quantizer (used when the global
/// min/max is known from dataset metadata, so distributed readers agree).
template <typename T>
void quantize_into(Vol4View<const T> src, const Quantizer& q, Vol4View<Level> dst) {
  const Vec4 d = src.dims();
  for (std::int64_t t = 0; t < d[3]; ++t)
    for (std::int64_t z = 0; z < d[2]; ++z)
      for (std::int64_t y = 0; y < d[1]; ++y)
        for (std::int64_t x = 0; x < d[0]; ++x)
          dst.at(x, y, z, t) = q(static_cast<double>(src.at(x, y, z, t)));
}

}  // namespace h4d
