#include "haralick/glcm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace h4d::haralick {

Glcm::Glcm(int num_levels) : ng_(num_levels) {
  if (num_levels < 2 || num_levels > 256) {
    throw std::invalid_argument("Glcm: Ng must be in [2, 256]");
  }
  counts_.assign(static_cast<std::size_t>(ng_) * static_cast<std::size_t>(ng_), 0);
}

void Glcm::clear() {
  std::fill(counts_.begin(), counts_.end(), 0u);
  total_ = 0;
}

void Glcm::set_raw(std::vector<std::uint32_t> table, std::int64_t total) {
  if (table.size() != static_cast<std::size_t>(ng_) * static_cast<std::size_t>(ng_)) {
    throw std::invalid_argument("Glcm::set_raw: table size mismatch");
  }
  counts_ = std::move(table);
  total_ = total;
}

std::int64_t Glcm::accumulate(Vol4View<const Level> vol, const Region4& roi,
                              const std::vector<Vec4>& dirs) {
  if (!Region4::whole(vol.dims()).contains(roi)) {
    throw std::invalid_argument("Glcm::accumulate: roi " + roi.str() +
                                " outside volume " + vol.dims().str());
  }
  std::int64_t updates = 0;
  const Vec4 o = roi.origin;
  for (const Vec4& d : dirs) {
    // Valid anchor points p such that both p and p+d are inside the ROI.
    Vec4 lo, hi;  // inclusive lo, exclusive hi, relative to roi origin
    bool any = true;
    for (int k = 0; k < kDims; ++k) {
      lo[k] = d[k] < 0 ? -d[k] : 0;
      hi[k] = roi.size[k] - (d[k] > 0 ? d[k] : 0);
      if (hi[k] <= lo[k]) any = false;
    }
    if (!any) continue;
    for (std::int64_t t = lo[3]; t < hi[3]; ++t) {
      for (std::int64_t z = lo[2]; z < hi[2]; ++z) {
        for (std::int64_t y = lo[1]; y < hi[1]; ++y) {
          for (std::int64_t x = lo[0]; x < hi[0]; ++x) {
            const Level a = vol.at(o[0] + x, o[1] + y, o[2] + z, o[3] + t);
            const Level b =
                vol.at(o[0] + x + d[0], o[1] + y + d[1], o[2] + z + d[2], o[3] + t + d[3]);
            // Forward and backward relation: symmetric accumulation.
            counts_[static_cast<std::size_t>(a) * static_cast<std::size_t>(ng_) + b]++;
            counts_[static_cast<std::size_t>(b) * static_cast<std::size_t>(ng_) + a]++;
            total_ += 2;
            updates += 2;
          }
        }
      }
    }
  }
  return updates;
}

void Glcm::adjust_pair(Level a, Level b, int sign) {
  auto& fwd = counts_[static_cast<std::size_t>(a) * static_cast<std::size_t>(ng_) + b];
  auto& bwd = counts_[static_cast<std::size_t>(b) * static_cast<std::size_t>(ng_) + a];
  assert(sign > 0 || (fwd > 0 && bwd > 0));
  fwd = static_cast<std::uint32_t>(static_cast<std::int64_t>(fwd) + sign);
  if (a != b) {
    bwd = static_cast<std::uint32_t>(static_cast<std::int64_t>(bwd) + sign);
  } else {
    fwd = static_cast<std::uint32_t>(static_cast<std::int64_t>(fwd) + sign);
  }
  total_ += 2 * sign;
}

std::int64_t Glcm::nonzero_upper() const {
  std::int64_t n = 0;
  for (int i = 0; i < ng_; ++i) {
    for (int j = i; j < ng_; ++j) {
      if (count(i, j) != 0) ++n;
    }
  }
  return n;
}

bool Glcm::is_symmetric() const {
  for (int i = 0; i < ng_; ++i) {
    for (int j = i + 1; j < ng_; ++j) {
      if (count(i, j) != count(j, i)) return false;
    }
  }
  return true;
}

}  // namespace h4d::haralick
