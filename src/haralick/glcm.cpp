#include "haralick/glcm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "haralick/kernel.hpp"

namespace h4d::haralick {

Glcm::Glcm(int num_levels) : ng_(num_levels) {
  if (num_levels < 2 || num_levels > 256) {
    throw std::invalid_argument("Glcm: Ng must be in [2, 256]");
  }
  counts_.assign(static_cast<std::size_t>(ng_) * static_cast<std::size_t>(ng_), 0);
}

void Glcm::clear() {
  std::fill(counts_.begin(), counts_.end(), 0u);
  total_ = 0;
  row_bits_.fill(0);
}

void Glcm::rebuild_row_bits() {
  row_bits_.fill(0);
  for (int i = 0; i < ng_; ++i) {
    const std::uint32_t* row = counts_.data() + static_cast<std::size_t>(i) * ng_;
    for (int j = 0; j < ng_; ++j) {
      if (row[j] != 0) {
        mark_row(i);
        break;
      }
    }
  }
}

void Glcm::set_raw(std::vector<std::uint32_t> table, std::int64_t total) {
  if (table.size() != static_cast<std::size_t>(ng_) * static_cast<std::size_t>(ng_)) {
    throw std::invalid_argument("Glcm::set_raw: table size mismatch");
  }
  counts_ = std::move(table);
  total_ = total;
  rebuild_row_bits();
}

std::int64_t Glcm::accumulate(Vol4View<const Level> vol, const Region4& roi,
                              const std::vector<Vec4>& dirs, KernelScratch* scratch) {
  if (scratch != nullptr) {
    scratch->configure(ng_);
    const std::int64_t updates = scratch->accumulate(vol, roi, dirs);
    scratch->finalize_add(*this);
    return updates;
  }
  KernelScratch local(ng_);
  const std::int64_t updates = local.accumulate(vol, roi, dirs);
  local.finalize_add(*this);
  return updates;
}

std::int64_t Glcm::accumulate_reference(Vol4View<const Level> vol, const Region4& roi,
                                        const std::vector<Vec4>& dirs) {
  if (!Region4::whole(vol.dims()).contains(roi)) {
    throw std::invalid_argument("Glcm::accumulate: roi " + roi.str() +
                                " outside volume " + vol.dims().str());
  }
  std::int64_t updates = 0;
  const Vec4 o = roi.origin;
  const Vec4 st = vol.strides();
  for (const Vec4& d : dirs) {
    // Valid anchor points p such that both p and p+d are inside the ROI.
    Vec4 lo, hi;  // inclusive lo, exclusive hi, relative to roi origin
    bool any = true;
    for (int k = 0; k < kDims; ++k) {
      lo[k] = d[k] < 0 ? -d[k] : 0;
      hi[k] = roi.size[k] - (d[k] > 0 ? d[k] : 0);
      if (hi[k] <= lo[k]) any = false;
    }
    if (!any) continue;
    // Element offset between a pair's two endpoints; constant per direction.
    const std::int64_t doff = d[0] * st[0] + d[1] * st[1] + d[2] * st[2] + d[3] * st[3];
    const std::int64_t run = hi[0] - lo[0];
    for (std::int64_t t = lo[3]; t < hi[3]; ++t) {
      for (std::int64_t z = lo[2]; z < hi[2]; ++z) {
        for (std::int64_t y = lo[1]; y < hi[1]; ++y) {
          // Hoisted per-row base pointer: x advances by st[0] only.
          const Level* pa = &vol.at(o[0] + lo[0], o[1] + y, o[2] + z, o[3] + t);
          const Level* pb = pa + doff;
          for (std::int64_t x = 0; x < run; ++x) {
            const Level a = pa[x * st[0]];
            const Level b = pb[x * st[0]];
            // Forward and backward relation: symmetric accumulation.
            counts_[static_cast<std::size_t>(a) * static_cast<std::size_t>(ng_) + b]++;
            counts_[static_cast<std::size_t>(b) * static_cast<std::size_t>(ng_) + a]++;
            mark_row(a);
            mark_row(b);
          }
          total_ += 2 * run;
          updates += 2 * run;
        }
      }
    }
  }
  return updates;
}

void Glcm::adjust_pair(Level a, Level b, int sign) {
  (void)adjust_pair_counted(a, b, sign);
}

std::uint32_t Glcm::adjust_pair_counted(Level a, Level b, int sign) {
  auto& fwd = counts_[static_cast<std::size_t>(a) * static_cast<std::size_t>(ng_) + b];
  auto& bwd = counts_[static_cast<std::size_t>(b) * static_cast<std::size_t>(ng_) + a];
  assert(sign > 0 || (fwd > 0 && bwd > 0));
  const std::uint32_t before = fwd;
  fwd = static_cast<std::uint32_t>(static_cast<std::int64_t>(fwd) + sign);
  if (a != b) {
    bwd = static_cast<std::uint32_t>(static_cast<std::int64_t>(bwd) + sign);
  } else {
    fwd = static_cast<std::uint32_t>(static_cast<std::int64_t>(fwd) + sign);
  }
  if (sign > 0) {
    // Removal keeps the bits set: occupancy is a conservative superset.
    mark_row(a);
    mark_row(b);
  }
  total_ += 2 * sign;
  return before;
}

std::int64_t Glcm::nonzero_upper() const {
  std::int64_t n = 0;
  for (int i = 0; i < ng_; ++i) {
    if (!row_possibly_occupied(i)) continue;
    for (int j = i; j < ng_; ++j) {
      if (count(i, j) != 0) ++n;
    }
  }
  return n;
}

bool Glcm::is_symmetric() const {
  for (int i = 0; i < ng_; ++i) {
    for (int j = i + 1; j < ng_; ++j) {
      if (count(i, j) != count(j, i)) return false;
    }
  }
  return true;
}

}  // namespace h4d::haralick
